// Trace tooling: generate the synthetic stand-in traces, export them to
// files, read them back, and print their vital statistics — the workflow
// for swapping in real traces (any tool that writes the same line format
// plugs straight into the benches).
//
//   $ ./examples/trace_tools [output-directory]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/fs_trace.hpp"
#include "trace/nfs_trace.hpp"
#include "trace/parallel_trace.hpp"
#include "trace/trace_io.hpp"
#include "trace/usage_trace.hpp"

int main(int argc, char** argv) {
  using namespace now;
  const std::string dir = argc > 1 ? argv[1] : ".";

  // --- File-system trace (Table 3's input) -----------------------------
  trace::FsWorkloadParams fsp;
  fsp.clients = 42;
  fsp.accesses_per_client = 5'000;
  const auto fs = trace::generate_fs_trace(fsp);
  {
    std::ofstream out(dir + "/fs_trace.txt");
    trace::write_fs_trace(out, fs);
  }
  std::size_t shared = 0;
  for (const auto& a : fs) {
    if (a.block < fsp.shared_blocks) ++shared;
  }
  std::printf("fs trace:        %zu accesses, %.0f%% to the shared pool "
              "-> %s/fs_trace.txt\n",
              fs.size(), 100.0 * shared / fs.size(), dir.c_str());

  // --- Interactive usage trace (Figure 3's sequential side) ------------
  trace::UsageParams up;
  up.workstations = 53;  // the original DECstation cluster's width
  up.seed = 12;
  const trace::UsageTrace usage(up);
  {
    std::ofstream out(dir + "/usage_trace.txt");
    trace::write_usage_trace(out, usage);
  }
  std::printf("usage trace:     %u workstations, %.0f%% of machine-time "
              "idle -> %s/usage_trace.txt\n",
              usage.workstations(),
              100 * usage.average_idle_fraction(2 * sim::kMinute),
              dir.c_str());

  // --- Parallel-job trace (Figure 3's parallel side) -------------------
  trace::ParallelJobParams jp;
  jp.seed = 4;
  const auto jobs = trace::generate_parallel_jobs(jp);
  {
    std::ofstream out(dir + "/parallel_jobs.txt");
    trace::write_parallel_jobs(out, jobs);
  }
  std::printf("parallel trace:  %zu jobs, %.0f processor-hours "
              "-> %s/parallel_jobs.txt\n",
              jobs.size(), trace::total_processor_seconds(jobs) / 3600,
              dir.c_str());

  // --- Round-trip check --------------------------------------------------
  {
    std::ifstream in(dir + "/fs_trace.txt");
    const auto reloaded = trace::read_fs_trace(in);
    std::printf("\nround trip:      re-read %zu fs accesses (%s)\n",
                reloaded.size(),
                reloaded.size() == fs.size() ? "intact" : "MISMATCH");
  }

  std::printf("\nformat: '#'-comments + one record per line; see "
              "src/trace/trace_io.hpp.\n"
              "Replace any of these files with a real trace and feed it "
              "to the benches.\n");
  return 0;
}
