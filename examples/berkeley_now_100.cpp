// The Berkeley prototype, end to end: "Our 100-node NOW prototype aims to
// demonstrate practical solutions to these challenges."
//
// One hundred workstations on switched ATM, running everything this
// library implements at once for a simulated half hour:
//   - interactive owners coming and going (synthetic usage trace),
//   - a batch queue on GLUnix, migrating off machines whose owners return,
//   - a gang-scheduled parallel application on Active Messages,
//   - xFS file traffic over the building-wide software RAID,
//   - a workstation crash (detected by heartbeats, xFS manager takeover,
//     RAID degraded mode) and its reboot back into the pool.
//
//   $ ./examples/berkeley_now_100
#include <cstdio>
#include <functional>
#include <memory>

#include "core/cluster.hpp"
#include "glunix/coschedule.hpp"
#include "glunix/spmd.hpp"
#include "sim/random.hpp"
#include "trace/usage_trace.hpp"

int main() {
  using namespace now;
  constexpr std::uint32_t kNodes = 100;
  constexpr sim::Duration kDay = 30 * sim::kMinute;

  ClusterConfig cfg;
  cfg.workstations = kNodes;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 128;
  cfg.xfs.segment_blocks = 28;  // four full rows of an 8-member group
  cfg.glunix.poll_interval = 4 * sim::kSecond;
  cfg.glunix.heartbeat_interval = 2 * sim::kSecond;
  Cluster c(cfg);

  std::printf("Berkeley NOW prototype: %u workstations, switched ATM, "
              "GLUnix + xFS + AM\n\n",
              c.size());

  // --- Interactive owners ---------------------------------------------
  trace::UsageParams up;
  up.workstations = kNodes;
  up.duration = kDay;
  up.owner_present_probability = 0.5;
  up.seed = 31;
  const trace::UsageTrace usage(up);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    for (const auto& b : usage.intervals(n)) {
      for (sim::SimTime t = b.begin; t < b.end; t += 2 * sim::kSecond) {
        c.engine().schedule_at(t, [&c, n] { c.node(n).user_activity(); });
      }
    }
  }

  // --- Batch queue ------------------------------------------------------
  sim::Pcg32 rng(13, 0x62657273);
  int batch_done = 0, batch_submitted = 0;
  for (sim::SimTime t = 10 * sim::kSecond; t < kDay;
       t += sim::from_sec(rng.uniform(20, 60))) {
    const auto work = sim::from_sec(rng.uniform(30, 300));
    ++batch_submitted;
    c.engine().schedule_at(t, [&c, &batch_done, work] {
      c.glunix().run_remote(work, 16ull << 20,
                            [&batch_done](net::NodeId) { ++batch_done; });
    });
  }

  // --- A coscheduled parallel application ------------------------------
  glunix::SpmdParams sp;
  sp.pattern = glunix::CommPattern::kEm3d;
  sp.iterations = 200;
  sp.compute_per_iteration = 25 * sim::kMillisecond;
  sp.msg_bytes = 2048;
  std::vector<os::Node*> gang_nodes;
  for (std::uint32_t i = 60; i < 92; ++i) {  // a 32-node partition
    gang_nodes.push_back(&c.node(i));
  }
  sim::Duration app_elapsed = 0;
  glunix::SpmdApp app(c.am(), gang_nodes, sp,
                      [&](sim::Duration d) { app_elapsed = d; });
  app.start();

  // --- xFS traffic from everywhere --------------------------------------
  auto fs_rng = std::make_shared<sim::Pcg32>(17);
  auto fs_ops = std::make_shared<int>(0);
  auto issue = std::make_shared<std::function<void(int)>>();
  *issue = [&c, fs_rng, fs_ops, issue](int remaining) {
    if (remaining == 0) {
      *issue = nullptr;
      return;
    }
    auto node = fs_rng->next_below(kNodes);
    if (!c.node(node).alive()) node = (node + 1) % kNodes;
    const xfs::BlockId b = fs_rng->next_below(20'000);
    auto cont = [&c, fs_ops, issue, remaining] {
      ++*fs_ops;
      c.engine().schedule_in(30 * sim::kMillisecond,
                             [issue, remaining] {
                               if (*issue) (*issue)(remaining - 1);
                             });
    };
    if (fs_rng->bernoulli(0.3)) {
      c.fs().write(node, b, cont);
    } else {
      c.fs().read(node, b, cont);
    }
  };
  (*issue)(20'000);

  // --- Disaster ---------------------------------------------------------
  net::NodeId down = net::kInvalidNode, back = net::kInvalidNode;
  c.glunix().set_node_down_handler([&](net::NodeId n) { down = n; });
  c.glunix().set_node_up_handler([&](net::NodeId n) { back = n; });
  c.engine().schedule_at(8 * sim::kMinute, [&] {
    std::printf("[%5.1f min] workstation 23 crashes\n",
                sim::to_sec(c.engine().now()) / 60);
    c.crash_node(23);
    c.fs().manager_takeover(23, 24, [&] {
      std::printf("[%5.1f min] workstation 24 took over 23's xFS manager "
                  "duty\n",
                  sim::to_sec(c.engine().now()) / 60);
    });
  });
  c.engine().schedule_at(16 * sim::kMinute, [&] {
    std::printf("[%5.1f min] workstation 23 reboots\n",
                sim::to_sec(c.engine().now()) / 60);
    c.node(23).reboot();
  });

  // --- Run the half hour -------------------------------------------------
  for (int m = 5; m <= 30; m += 5) {
    c.engine().schedule_at(m * sim::kMinute, [&c, &batch_done, m] {
      std::printf("[%5d min] idle: %2zu   batch done: %3d   "
                  "migrations: %llu\n",
                  m, c.glunix().idle_node_count(), batch_done,
                  static_cast<unsigned long long>(
                      c.glunix().stats().migrations));
    });
  }
  c.run_until(kDay + 5 * sim::kMinute);

  // End of day: commit everyone's write-behind state to the log.
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    if (c.node(n).alive()) c.fs().sync(n, [] {});
  }
  c.run_until(kDay + 10 * sim::kMinute);

  std::printf("\n--- the half hour, in numbers ---\n");
  std::printf("batch jobs: %d submitted, %d completed, %llu migrations, "
              "%llu crash restarts\n",
              batch_submitted, batch_done,
              static_cast<unsigned long long>(c.glunix().stats().migrations),
              static_cast<unsigned long long>(
                  c.glunix().stats().crash_restarts));
  std::printf("parallel app (32 ranks): %s in %.0f s\n",
              app.finished() ? "finished" : "still running",
              sim::to_sec(app_elapsed));
  const auto& fsst = c.fs().stats();
  std::printf("xFS: %d ops; %llu cooperative peer fetches, %llu log reads, "
              "%llu segments flushed\n",
              *fs_ops,
              static_cast<unsigned long long>(fsst.peer_fetches),
              static_cast<unsigned long long>(fsst.log_reads),
              static_cast<unsigned long long>(fsst.segments_flushed));
  std::printf("RAID: %llu full-stripe writes, degraded mode: %s\n",
              static_cast<unsigned long long>(
                  c.storage_stats().full_stripe_writes),
              c.storage_degraded() ? "yes (one member down)" : "no");
  std::printf("failures: node %u down, node %u rejoined, xFS invariant "
              "holds: %s\n",
              down, back,
              c.fs().coherence_invariant_holds() ? "yes" : "NO");
  std::printf("\none building, one system. nobody bought a supercomputer.\n");
  return 0;
}
