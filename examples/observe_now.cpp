// Observing a NOW: a Figure-3-style mixed workload with the observability
// subsystem turned all the way up.
//
// A 24-workstation cluster runs three things at once — interactive owners
// coming and going, a GLUnix batch queue stealing the idle machines, and
// shared xFS traffic over the striped log — while now::obs records it all:
//
//   * every subsystem's counters/gauges/summaries in the metrics registry
//     (dumped as sorted JSON, bit-identical across runs for a fixed seed),
//   * spans and instants in simulated time, exported as Chrome trace-event
//     JSON — load observe_now.trace.json in Perfetto (ui.perfetto.dev) and
//     read it as "what was every layer of node 7 doing at t = 1.83 s",
//   * a periodic sampler producing utilization-over-time CSV.
//
//   $ ./examples/observe_now
//   $ ls observe_now.*       # trace JSON, metrics JSON, timeline CSV
#include <cstdio>
#include <functional>
#include <memory>

#include "core/cluster.hpp"
#include "sim/random.hpp"
#include "trace/usage_trace.hpp"

int main() {
  using namespace now;
  constexpr std::uint32_t kNodes = 24;
  constexpr sim::Duration kRun = 4 * sim::kMinute;

  ClusterConfig cfg;
  cfg.workstations = kNodes;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 96;
  cfg.xfs.segment_blocks = 14;
  cfg.glunix.poll_interval = 2 * sim::kSecond;
  cfg.glunix.heartbeat_interval = sim::kSecond;
  Cluster c(cfg);

  // Observability on: record up to 1M events; sample key series at 250 ms.
  c.enable_tracing();
  obs::Sampler sampler(c.engine(), c.metrics(), 250 * sim::kMillisecond);
  for (const char* path :
       {"glunix.idle_nodes", "glunix.completed", "net.packets_sent",
        "xfs.log.utilization", "os.disk.queue_depth", "am.retransmits"}) {
    sampler.watch(path);
  }
  sampler.start();

  std::printf("observe_now: %u workstations, GLUnix + xFS + AM, "
              "tracing on\n",
              c.size());

  // --- Interactive owners (they make machines non-idle) -----------------
  trace::UsageParams up;
  up.workstations = kNodes;
  up.duration = kRun;
  up.owner_present_probability = 0.5;
  up.seed = 7;
  const trace::UsageTrace usage(up);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    for (const auto& b : usage.intervals(n)) {
      for (sim::SimTime t = b.begin; t < b.end; t += 2 * sim::kSecond) {
        c.engine().schedule_at(t, [&c, n] { c.node(n).user_activity(); });
      }
    }
  }

  // --- GLUnix batch queue ------------------------------------------------
  sim::Pcg32 rng(11, 0x6f627376);
  int batch_done = 0, batch_submitted = 0;
  for (sim::SimTime t = 5 * sim::kSecond; t < kRun - 60 * sim::kSecond;
       t += sim::from_sec(rng.uniform(4, 12))) {
    const auto work = sim::from_sec(rng.uniform(10, 40));
    ++batch_submitted;
    c.engine().schedule_at(t, [&c, &batch_done, work] {
      c.glunix().run_remote(work, 16ull << 20,
                            [&batch_done](net::NodeId) { ++batch_done; });
    });
  }
  // Plus one gang, so gang spans/pauses show up in the trace.
  bool gang_done = false;
  c.engine().schedule_at(20 * sim::kSecond, [&] {
    c.glunix().run_parallel(4, 30 * sim::kSecond, 8ull << 20,
                            [&gang_done] { gang_done = true; });
  });

  // --- Shared xFS traffic ------------------------------------------------
  auto fs_rng = std::make_shared<sim::Pcg32>(5, 0x786673);
  auto fs_ops = std::make_shared<int>(0);
  auto issue = std::make_shared<std::function<void(int)>>();
  *issue = [&c, fs_rng, fs_ops, issue](int remaining) {
    if (remaining == 0) {
      *issue = nullptr;
      return;
    }
    auto node = fs_rng->next_below(kNodes);
    if (!c.node(node).alive()) node = (node + 1) % kNodes;
    const xfs::BlockId b = fs_rng->next_below(4'000);
    auto cont = [&c, fs_ops, issue, remaining] {
      ++*fs_ops;
      c.engine().schedule_in(15 * sim::kMillisecond, [issue, remaining] {
        if (*issue) (*issue)(remaining - 1);
      });
    };
    if (fs_rng->bernoulli(0.3)) {
      c.fs().write(node, b, cont);
    } else {
      c.fs().read(node, b, cont);
    }
  };
  (*issue)(6'000);

  c.run_until(kRun);
  sampler.stop();

  // --- Dump everything ---------------------------------------------------
  const bool trace_ok = c.trace_to("observe_now.trace.json");
  const bool metrics_ok = c.metrics().dump_json_to("observe_now.metrics.json");
  const bool csv_ok = sampler.dump_csv_to("observe_now.timeline.csv");

  std::printf("\nworkload: %d/%d batch jobs done, gang %s, %d xFS ops\n",
              batch_done, batch_submitted, gang_done ? "done" : "running",
              *fs_ops);
  std::printf("trace:    observe_now.trace.json    (%zu events, %llu "
              "dropped) %s\n",
              obs::tracer().size(),
              static_cast<unsigned long long>(obs::tracer().dropped()),
              trace_ok ? "ok" : "WRITE FAILED");
  std::printf("metrics:  observe_now.metrics.json  %s\n",
              metrics_ok ? "ok" : "WRITE FAILED");
  std::printf("timeline: observe_now.timeline.csv  (%zu samples) %s\n",
              sampler.rows(), csv_ok ? "ok" : "WRITE FAILED");
  std::printf("\nopen the trace at ui.perfetto.dev - one process row per "
              "workstation,\none thread track per layer (net, proto, os, "
              "xfs, glunix).\n");
  return (trace_ok && metrics_ok && csv_ok) ? 0 : 1;
}
