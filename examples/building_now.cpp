// A building-wide NOW: 256 workstations in racks of 32 behind a 4:1
// oversubscribed spine — the fabric the paper's "building-sized computer"
// actually gets wired with.  Shows the two prices of hierarchy: rack-local
// RPCs ride one edge switch, cross-rack RPCs pay the spine, and when a
// whole rack hammers one remote rack the thin trunks queue.
//
//   $ ./examples/building_now
#include <cstdio>

#include "core/cluster.hpp"
#include "net/hierarchical.hpp"

int main() {
  using namespace now;

  ClusterConfig cfg;
  cfg.workstations = 256;
  cfg.fabric = Fabric::kBuildingNow;
  cfg.building = net::building_now(/*racks=*/8, /*nodes_per_rack=*/32,
                                   /*oversubscription=*/4.0);
  cfg.with_glunix = false;
  Cluster cluster(cfg);

  auto& fabric = static_cast<net::HierarchicalNetwork&>(cluster.network());
  std::printf("building NOW: %u workstations, %s\n\n", cluster.size(),
              fabric.topology().describe().c_str());

  constexpr proto::MethodId kEcho = 1;
  for (std::uint32_t i = 0; i < cluster.size(); ++i) {
    cluster.rpc().register_method(
        i, kEcho, [](net::NodeId, std::any req, proto::RpcLayer::ReplyFn r) {
          r(64, std::move(req));
        });
  }

  // One RPC within the rack, one across the building, measured unloaded.
  const auto timed_call = [&](std::uint32_t src, std::uint32_t dst,
                              const char* what) {
    const sim::SimTime t0 = cluster.engine().now();
    bool done = false;
    cluster.rpc().call(src, dst, kEcho, 4096, std::any{}, [&](std::any) {
      std::printf("  %-36s %2u -> %3u   %7.1f us\n", what, src, dst,
                  sim::to_us(cluster.engine().now() - t0));
      done = true;
    });
    cluster.run_for(10 * sim::kMillisecond);
    if (!done) std::printf("  %s: lost?\n", what);
  };
  std::printf("unloaded 4 KB RPC:\n");
  timed_call(0, 1, "rack-local (1 switch, 2 links)");
  timed_call(0, 200, "cross-rack (3 switches, 4 links)");

  // Now rack 0 collectively reads from rack 6: thirty-two 4 KB transfers
  // converge on eight spine trunks at once and the tail stretches.
  std::printf("\nrack 0 bursts 32 RPCs into rack 6 (4 KB each, 8 trunks):\n");
  const sim::SimTime burst0 = cluster.engine().now();
  auto last = std::make_shared<sim::SimTime>(0);
  auto left = std::make_shared<int>(32);
  for (std::uint32_t i = 0; i < 32; ++i) {
    cluster.rpc().call(i, 6 * 32 + i, kEcho, 4096, std::any{},
                       [&cluster, last, left](std::any) {
                         *last = cluster.engine().now();
                         --*left;
                       });
  }
  cluster.run_for(50 * sim::kMillisecond);
  std::printf("  %d outstanding; last reply after %.1f us\n", *left,
              sim::to_us(*last - burst0));

  const auto& hs = fabric.hier_stats();
  std::printf("\nfabric saw %llu rack-local and %llu cross-rack packets.\n",
              static_cast<unsigned long long>(hs.rack_local_packets),
              static_cast<unsigned long long>(hs.cross_rack_packets));
  std::printf("locality is the building's currency: stay in the rack when "
              "you can.\n");
  return 0;
}
