// Quickstart: assemble a NOW, borrow an idle machine for a batch job, and
// use the serverless file system — the two faces of the paper's pitch in
// ~60 lines of user code.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/cluster.hpp"

int main() {
  using namespace now;

  // A small building: 8 workstations on switched ATM, GLUnix managing the
  // pool and xFS spread across everyone's disks.
  ClusterConfig cfg;
  cfg.workstations = 8;
  cfg.fabric = Fabric::kAtm;
  cfg.with_xfs = true;
  Cluster cluster(cfg);

  std::printf("NOW quickstart: %u workstations, switched ATM, GLUnix + xFS\n\n",
              cluster.size());

  // 1. Someone at workstation 1 runs a 2-minute compute job.  GLUnix finds
  //    an idle machine and runs it there.
  cluster.glunix().run_remote(
      120 * sim::kSecond, /*memory=*/32ull << 20, [&](net::NodeId where) {
        std::printf("[%7.1fs] batch job finished on workstation %u\n",
                    sim::to_sec(cluster.engine().now()), where);
      });

  // 2. Meanwhile workstation 2 writes a file; workstation 5 reads it back
  //    through the cooperative cache (no server anywhere).
  for (xfs::BlockId b = 0; b < 8; ++b) {
    cluster.fs().write(2, b, [] {});
  }
  cluster.run_for(1 * sim::kSecond);
  int got = 0;
  for (xfs::BlockId b = 0; b < 8; ++b) {
    cluster.fs().read(5, b, [&] { ++got; });
  }
  cluster.run_for(1 * sim::kSecond);
  std::printf("[%7.1fs] workstation 5 read %d blocks written by "
              "workstation 2 (%llu came from peer memory)\n",
              sim::to_sec(cluster.engine().now()), got,
              static_cast<unsigned long long>(
                  cluster.fs().stats().peer_fetches));

  // 3. The owner of the machine hosting the batch job comes back: GLUnix
  //    migrates the guest away within seconds.
  cluster.engine().schedule_at(30 * sim::kSecond, [&] {
    for (std::uint32_t i = 0; i < cluster.size(); ++i) {
      if (!cluster.node(i).cpu().idle()) {
        std::printf("[%7.1fs] owner returns to workstation %u - evicting "
                    "the guest\n",
                    sim::to_sec(cluster.engine().now()), i);
        cluster.node(i).user_activity();
        return;
      }
    }
  });
  // Keep the owner typing for a while so the machine stays off-limits.
  for (int k = 1; k < 60; ++k) {
    cluster.engine().schedule_at((30 + k) * sim::kSecond, [&] {
      for (std::uint32_t i = 0; i < cluster.size(); ++i) {
        if (!cluster.node(i).user_idle_for(2 * sim::kSecond)) {
          cluster.node(i).user_activity();
        }
      }
    });
  }

  cluster.run_until(10 * sim::kMinute);

  const auto& g = cluster.glunix().stats();
  std::printf("\nsummary: %llu guest launched, %llu completed, "
              "%llu migrations, %llu crash restarts\n",
              static_cast<unsigned long long>(g.launched),
              static_cast<unsigned long long>(g.completed),
              static_cast<unsigned long long>(g.migrations),
              static_cast<unsigned long long>(g.crash_restarts));
  std::printf("the pool did the work; nobody bought a supercomputer.\n");
  return 0;
}
