// Serverless file service under fire: a 12-workstation xFS cluster serves
// a shared workload while a node dies mid-run.  Another client takes over
// its manager duty, in-flight operations retry through the takeover, and
// the software RAID keeps serving the dead node's stripe units from
// parity.  There is no server to page, replace, or mourn.
//
//   $ ./examples/serverless_fs
#include <cstdio>
#include <functional>
#include <memory>

#include "core/cluster.hpp"
#include "sim/random.hpp"

int main() {
  using namespace now;

  ClusterConfig cfg;
  cfg.workstations = 12;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 128;
  cfg.xfs.segment_blocks = 14;  // two full rows of an 8-member group
  Cluster c(cfg);

  std::printf("xFS: %u workstations, every one of them client + manager + "
              "storage server\n\n",
              c.size());

  // A steady shared workload: each op picks a client and a block; 30 %
  // writes.  Issued paced (one op per simulated 2 ms).
  sim::Pcg32 rng(3, 0x736c6673);
  auto ops_done = std::make_shared<int>(0);
  auto issue = std::make_shared<std::function<void(int)>>();
  auto& cl = c;
  *issue = [&cl, &rng, ops_done, issue](int remaining) {
    if (remaining == 0) {
      *issue = nullptr;
      return;
    }
    auto node = rng.next_below(12);
    if (!cl.node(node).alive()) node = (node + 1) % 12;
    const xfs::BlockId block = rng.next_below(2'000);
    auto cont = [&cl, ops_done, issue, remaining] {
      ++*ops_done;
      cl.engine().schedule_in(2 * sim::kMillisecond, [issue, remaining] {
        if (*issue) (*issue)(remaining - 1);
      });
    };
    if (rng.bernoulli(0.3)) {
      cl.fs().write(node, block, cont);
    } else {
      cl.fs().read(node, block, cont);
    }
  };
  (*issue)(4'000);

  // Disaster strikes at t=3s: workstation 7 dies with cached state and a
  // slice of the manager map.
  c.engine().schedule_at(3 * sim::kSecond, [&] {
    std::printf("[%6.2fs] workstation 7 crashes (client + manager + "
                "storage member)\n",
                sim::to_sec(c.engine().now()));
    c.crash_node(7);
    // The membership layer appoints workstation 8 as the new manager for
    // 7's slice of the block space.
    c.fs().manager_takeover(7, 8, [&] {
      std::printf("[%6.2fs] workstation 8 rebuilt 7's directory from the "
                  "survivors - service continues\n",
                  sim::to_sec(c.engine().now()));
    });
  });

  c.run();

  const auto& s = c.fs().stats();
  std::printf("\n%d operations completed across the crash\n", *ops_done);
  std::printf("  local hits:          %llu\n",
              static_cast<unsigned long long>(s.local_hits));
  std::printf("  cooperative fetches: %llu (peer DRAM instead of disk)\n",
              static_cast<unsigned long long>(s.peer_fetches));
  std::printf("  log reads:           %llu (RAID-5, %s)\n",
              static_cast<unsigned long long>(s.log_reads),
              c.storage_degraded() ? "degraded mode" : "whole");
  std::printf("  segments flushed:    %llu (full-stripe writes: %llu)\n",
              static_cast<unsigned long long>(s.segments_flushed),
              static_cast<unsigned long long>(
                  c.storage_stats().full_stripe_writes));
  std::printf("  ops retried through the takeover: %llu\n",
              static_cast<unsigned long long>(s.op_retries));
  std::printf("  unflushed blocks lost with node 7: %llu (their last "
              "logged versions survive)\n",
              static_cast<unsigned long long>(s.lost_dirty_blocks));
  std::printf("\na central-server design loses the building when the "
              "server dies; xFS lost one\ntwelfth of its cache and kept "
              "serving.\n");
  return 0;
}
