// Serving real traffic from a NOW: now::serve end to end.
//
// A 16-workstation cluster acts as one service.  A hybrid client
// population — twelve open clients firing diurnal Poisson arrivals,
// four closed clients looping with heavy-tailed (Pareto) think times —
// offers a four-class mix: xFS file reads and writes, cooperative-cache
// reads charged at the study's per-level costs, and GLUnix batch jobs
// that really queue for idle machines.  Every completion is judged
// against its class SLO; the run ends with a tail-latency report per
// class (p50/p99/p999, attainment, goodput) plus the serving counters
// the SloTracker mirrored into now::obs.
//
//   $ ./examples/serve_now
#include <cstdio>

#include "core/cluster.hpp"
#include "serve/workload.hpp"

int main() {
  using namespace now;
  constexpr std::uint32_t kNodes = 16;
  constexpr sim::SimTime kHorizon = 20 * sim::kSecond;

  ClusterConfig cfg;
  cfg.workstations = kNodes;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 64;
  // Short runs need a short idle window or GLUnix never classifies a
  // machine as idle before the horizon.
  cfg.glunix.idle_window = sim::kSecond;
  Cluster c(cfg);

  serve::ServeConfig sc;
  sc.population.clients = 16;
  sc.population.open_fraction = 0.75;  // 12 open, 4 closed
  sc.population.offered_per_sec = 120.0;
  sc.population.think = serve::ThinkDist::kPareto;
  sc.population.think_mean_ms = 80.0;
  sc.population.diurnal.amplitude = 0.5;       // 1.5x peak, 0.5x trough
  sc.population.diurnal.period = 8 * sim::kSecond;  // a compressed "day"
  sc.population.horizon = kHorizon;

  serve::RequestClass rd, wr, cache, job;
  rd.name = "read";
  rd.op = serve::RequestOp::kFileRead;
  rd.weight = 0.55;
  rd.slo = 25 * sim::kMillisecond;
  rd.working_set = 2'000;
  wr.name = "write";
  wr.op = serve::RequestOp::kFileWrite;
  wr.weight = 0.20;
  wr.slo = 100 * sim::kMillisecond;
  wr.working_set = 2'000;
  cache.name = "cache";
  cache.op = serve::RequestOp::kCacheRead;
  cache.weight = 0.20;
  cache.slo = 20 * sim::kMillisecond;
  cache.working_set = 4'096;
  job.name = "job";
  job.op = serve::RequestOp::kCompute;
  job.weight = 0.05;
  job.slo = 2 * sim::kSecond;
  job.compute_work = 200 * sim::kMillisecond;
  job.compute_memory_bytes = 8ull << 20;
  sc.classes = {rd, wr, cache, job};
  for (std::uint32_t i = 0; i < kNodes; ++i) sc.client_nodes.push_back(i);
  sc.seed = 1995;

  coopcache::CoopCacheConfig cc;
  cc.clients = kNodes;
  cc.client_cache_blocks = 2'048;
  cc.server_cache_blocks = 16'384;
  cc.policy = coopcache::Policy::kNChance;
  cc.seed = sc.seed;
  coopcache::CoopCacheSim coop(cc);

  serve::Backends b;
  b.xfs = &c.fs();
  b.coop = &coop;
  b.glunix = &c.glunix();

  serve::ServeWorkload w(c.engine(), b, sc);
  w.start();
  // GLUnix heartbeats tick forever, so bound the run instead of draining.
  c.run_until(kHorizon + 10 * sim::kSecond);

  const serve::ServeTotals t = w.totals();
  std::printf("serving run: %llu arrivals (%llu open, %llu closed), "
              "%llu completed, %llu still in flight\n",
              (unsigned long long)t.arrivals,
              (unsigned long long)t.open_arrivals,
              (unsigned long long)t.closed_arrivals,
              (unsigned long long)t.completed,
              (unsigned long long)w.in_flight());
  std::printf("offered %.1f req/s over %.0f s\n\n", t.offered_per_sec,
              sim::to_sec(kHorizon));

  std::printf("%-8s %8s %9s %8s %8s %8s %7s %9s\n", "class", "slo ms",
              "completed", "p50 ms", "p99 ms", "p999 ms", "attain",
              "goodput/s");
  for (std::size_t i = 0; i < w.mix().size(); ++i) {
    const serve::SloClassReport r = w.slo().report(i, kHorizon);
    std::printf("%-8s %8.0f %9llu %8.2f %8.2f %8.2f %6.1f%% %9.1f\n",
                r.name.c_str(), sim::to_ms(r.slo),
                (unsigned long long)r.completed, r.p50_ms, r.p99_ms,
                r.p999_ms, 100.0 * r.attainment, r.goodput_per_sec);
  }
  const serve::SloClassReport all = w.slo().overall(kHorizon);
  std::printf("%-8s %8s %9llu %8.2f %8.2f %8.2f %6.1f%% %9.1f\n", "all",
              "-", (unsigned long long)all.completed, all.p50_ms,
              all.p99_ms, all.p999_ms, 100.0 * all.attainment,
              all.goodput_per_sec);

  std::printf("\nserving counters (from now::obs):\n");
  for (const char* path :
       {"serve.read.completed", "serve.write.completed",
        "serve.cache.completed", "serve.job.completed"}) {
    double v = 0;
    if (c.metrics().read(path, &v)) std::printf("  %s = %.0f\n", path, v);
  }
  return 0;
}
