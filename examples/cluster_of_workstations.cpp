// A day in the life of a building-wide NOW.
//
// Interactive owners come and go per a synthetic usage trace; a stream of
// batch jobs arrives at GLUnix, runs on whatever machines are idle, and is
// migrated away — memory state and all — the moment an owner touches a
// keyboard.  The interactive users keep their machines; the batch queue
// gets a free MPP's worth of cycles.
//
//   $ ./examples/cluster_of_workstations
#include <cstdio>

#include "core/cluster.hpp"
#include "sim/random.hpp"
#include "trace/usage_trace.hpp"

int main() {
  using namespace now;

  constexpr std::uint32_t kWorkstations = 24;
  ClusterConfig cfg;
  cfg.workstations = kWorkstations;
  cfg.glunix.poll_interval = 2 * sim::kSecond;
  Cluster c(cfg);

  // Owners' behaviour for a 4-hour stretch of the day.
  trace::UsageParams up;
  up.workstations = kWorkstations;
  up.duration = 4 * sim::kHour;
  up.owner_present_probability = 0.6;
  up.seed = 23;
  const trace::UsageTrace usage(up);

  // Feed the trace into the nodes' consoles: activity every 2 seconds for
  // the span of each busy interval (like the original logging daemons,
  // run in reverse).
  for (std::uint32_t n = 0; n < kWorkstations; ++n) {
    for (const auto& b : usage.intervals(n)) {
      for (sim::SimTime t = b.begin; t < b.end; t += 2 * sim::kSecond) {
        c.engine().schedule_at(t, [&c, n] { c.node(n).user_activity(); });
      }
    }
  }

  // The batch queue: a job every few minutes, 1-10 minutes of CPU each.
  sim::Pcg32 rng(11, 0x6e6f7764);
  int submitted = 0;
  int completed = 0;
  for (sim::SimTime t = 30 * sim::kSecond; t < up.duration;
       t += sim::from_sec(rng.uniform(120, 360))) {
    const auto work = sim::from_sec(rng.uniform(60, 600));
    c.engine().schedule_at(t, [&c, &completed, work] {
      c.glunix().run_remote(work, 32ull << 20, [&completed](net::NodeId) {
        ++completed;
      });
    });
    ++submitted;
  }

  std::printf("building-wide NOW: %u workstations, 4-hour weekday "
              "afternoon\n",
              kWorkstations);
  std::printf("interactive owners present on %.0f%% of machines; %d batch "
              "jobs submitted\n\n",
              100 * (1 - usage.fraction_always_idle()), submitted);

  // Hourly progress reports.
  for (int h = 1; h <= 4; ++h) {
    c.engine().schedule_at(h * sim::kHour, [&c, &completed, h] {
      const auto& s = c.glunix().stats();
      std::printf("[hour %d] idle machines: %2zu   jobs done: %3d   "
                  "migrations so far: %llu\n",
                  h, c.glunix().idle_node_count(), completed,
                  static_cast<unsigned long long>(s.migrations));
    });
  }

  c.run_until(up.duration + 30 * sim::kMinute);

  const auto& s = c.glunix().stats();
  std::printf("\nend of day: %d/%d jobs completed\n", completed, submitted);
  std::printf("  evictions (owner returned, guest migrated): %llu\n",
              static_cast<unsigned long long>(s.migrations));
  std::printf("  each migration moved 32 MB of state in ~%.1f s "
              "(owner waits only for the freeze)\n",
              sim::to_sec(c.glunix().migration_downtime(32ull << 20)));
  std::printf("  deepest backlog waiting for idle machines: %llu\n",
              static_cast<unsigned long long>(s.waiting_peak));
  std::printf("\nno user lost their machine; the batch queue got its "
              "cycles from thin air.\n");
  return 0;
}
