// Out-of-core workload on network RAM: an external merge-sort-shaped
// program whose working set is 3x the machine's DRAM.  Classical virtual
// memory thrashes the local disk; the NOW pages to idle remote DRAM and
// "fulfills the original promise of virtual memory."
//
//   $ ./examples/netram_sort
#include <cstdio>
#include <functional>
#include <memory>

#include "core/cluster.hpp"
#include "netram/pager.hpp"

namespace {

using namespace now;

// Sort-like page reference pattern: sequential generation pass, then
// log(N) merge passes that stream two halves alternately.
class SortRun {
 public:
  SortRun(os::Node& node, os::AddressSpace& space, std::uint64_t pages,
          std::function<void(sim::Duration)> done)
      : node_(node), space_(space), pages_(pages), done_(std::move(done)) {}

  void start() {
    pid_ = node_.cpu().spawn("sort", os::SchedClass::kBatch, [this] {
      t0_ = node_.engine().now();
      step();
    });
  }

 private:
  // Each step touches one page after ~1.5 ms of comparison/copy work.
  void step() {
    if (pass_ == kPasses) {
      const sim::Duration d = node_.engine().now() - t0_;
      node_.cpu().exit(pid_);
      done_(d);
      return;
    }
    node_.cpu().compute(pid_, sim::from_ms(1.5), [this] {
      // Merge pattern: alternate between the two halves of the data.
      const std::uint64_t half = pages_ / 2;
      const std::uint64_t page =
          (i_ % 2 == 0) ? (i_ / 2) % half : half + (i_ / 2) % half;
      space_.access_from_process(node_.cpu(), pid_, page, /*write=*/true,
                                 [this] {
                                   if (++i_ == pages_) {
                                     i_ = 0;
                                     ++pass_;
                                   }
                                   step();
                                 });
    });
  }

  static constexpr int kPasses = 3;
  os::Node& node_;
  os::AddressSpace& space_;
  std::uint64_t pages_;
  std::function<void(sim::Duration)> done_;
  os::ProcessId pid_ = os::kNoProcess;
  sim::SimTime t0_ = 0;
  std::uint64_t i_ = 0;
  int pass_ = 0;
};

double run_sort(bool use_netram) {
  ClusterConfig cfg;
  cfg.workstations = 8;
  cfg.with_glunix = false;
  cfg.with_netram_registry = true;
  Cluster c(cfg);
  if (use_netram) {
    for (std::uint32_t i = 1; i < 8; ++i) {
      c.memory_registry().add_donor(c.node(i));
    }
  }

  const std::uint32_t page = 8192;
  const std::uint64_t data_bytes = 96ull << 20;  // 96 MB of records
  const auto frames = static_cast<std::uint32_t>((32ull << 20) / page);

  std::unique_ptr<os::Pager> pager;
  if (use_netram) {
    pager = std::make_unique<netram::NetworkRamPager>(
        c.node(0), page, c.memory_registry(), c.rpc());
  } else {
    pager = std::make_unique<netram::DiskPager>(c.node(0), page);
  }
  os::AddressSpace space(c.engine(), frames, page, *pager);

  sim::Duration elapsed = 0;
  SortRun sort(c.node(0), space, data_bytes / page,
               [&](sim::Duration d) { elapsed = d; });
  sort.start();
  c.run();
  return sim::to_sec(elapsed);
}

}  // namespace

int main() {
  std::printf("out-of-core sort: 96 MB of records on a 32 MB "
              "workstation, 3 passes\n\n");
  const double disk = run_sort(false);
  std::printf("  paging to the local disk:       %8.1f s  (the reason "
              "people 'arrange never to\n"
              "                                             run problems "
              "bigger than physical memory')\n",
              disk);
  const double netram = run_sort(true);
  std::printf("  paging to idle remote DRAM:     %8.1f s\n", netram);
  std::printf("\nnetwork RAM is %.1fx faster; the idle half of the "
              "building just became your\nmemory extension.\n",
              disk / netram);
  return 0;
}
