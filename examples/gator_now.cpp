// Gator on a NOW: the paper's motivating application, twice.
//
// First the Demmel-Smith analytic model (Table 4) shows why the
// infrastructure matters.  Then a scaled-down Gator — compute-heavy ODE
// phase plus a communication-heavy transport phase — actually *runs* on
// the simulated cluster, once with PVM-class messaging and once with
// Active Messages, to show the same order-of-magnitude gap emerging from
// the executable system rather than from arithmetic.
//
//   $ ./examples/gator_now
#include <cstdio>
#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "glunix/spmd.hpp"
#include "models/gator.hpp"
#include "sim/engine.hpp"

namespace {

using namespace now;

// Runs the mini-Gator transport phase (neighbor exchange + barrier per
// step) on a fresh cluster and returns the wall-clock seconds.
double run_mini_gator(proto::ProtocolCosts costs, std::uint32_t msg_bytes) {
  ClusterConfig cfg;
  cfg.workstations = 16;
  cfg.fabric = Fabric::kAtm;
  cfg.with_glunix = false;
  cfg.am.costs = costs;
  cfg.am.window = 64;
  Cluster c(cfg);

  glunix::SpmdParams sp;
  sp.pattern = glunix::CommPattern::kEm3d;  // boundary exchange + barrier
  sp.iterations = 40;
  sp.compute_per_iteration = 10 * sim::kMillisecond;  // the ODE share
  sp.msg_bytes = msg_bytes;
  sim::Duration elapsed = 0;
  glunix::SpmdApp app(c.am(), c.node_ptrs(), sp,
                      [&](sim::Duration d) { elapsed = d; });
  app.start();
  c.run_until(30 * sim::kMinute);
  return app.finished() ? sim::to_sec(elapsed) : -1;
}

// Input-phase bandwidth, executable: stream `mb` megabytes either from
// one server disk (the sequential-file-system baseline) or from the
// building's striped storage.
double input_mbps(bool parallel_fs, std::uint32_t mb) {
  ClusterConfig cfg;
  cfg.workstations = 17;  // 1 reader + 16 storage servers
  cfg.with_glunix = false;
  cfg.with_xfs = true;    // brings up the storage array
  cfg.stripe_group_size = 8;
  Cluster c(cfg);
  const std::uint64_t total = std::uint64_t{mb} << 20;
  const std::uint32_t chunk = 512 * 1024;
  auto offset = std::make_shared<std::uint64_t>(0);
  sim::SimTime done_at = -1;
  auto step = std::make_shared<std::function<void()>>();
  *step = [&c, offset, step, total, chunk, parallel_fs, &done_at] {
    if (*offset >= total) {
      done_at = c.engine().now();
      c.engine().schedule_in(0, [step] { *step = nullptr; });
      return;
    }
    const std::uint64_t off = *offset;
    *offset += chunk;
    auto cont = [step] {
      if (*step) (*step)();
    };
    if (parallel_fs) {
      c.storage_backend().read(0, off, chunk, cont);
    } else {
      // One server's one disk, sequentially.
      c.node(1).disk().read(off, chunk, cont);
    }
  };
  (*step)();
  c.run();
  return static_cast<double>(total) / (1 << 20) / sim::to_sec(done_at);
}

}  // namespace

int main() {
  using namespace now::models;

  std::printf("Gator (LA-basin atmospheric chemistry) on six machines\n");
  std::printf("------------------------------------------------------\n");
  const GatorWorkload w;
  std::printf("%-32s %8s %10s %8s %8s\n", "machine", "ODE", "transport",
              "input", "total");
  for (const auto& m : table4_machines()) {
    const auto t = gator_time(w, m);
    std::printf("%-32s %7.0fs %9.0fs %7.0fs %7.0fs\n", m.name.c_str(),
                t.ode_sec, t.transport_sec, t.input_sec, t.total_sec);
  }

  std::printf("\nmini-Gator actually running on the simulated NOW "
              "(16 nodes, ATM):\n");
  const double pvm = run_mini_gator(now::proto::pvm(), 4096);
  const double am = run_mini_gator(now::proto::am_medusa(), 4096);
  std::printf("  transport phase with PVM-class messaging: %7.2f s\n", pvm);
  std::printf("  transport phase with Active Messages:     %7.2f s\n", am);
  std::printf("  speedup from cutting per-message overhead: %.1fx\n",
              pvm / am);
  std::printf("\nmini input phase, 32 MB streamed through the executable "
              "storage stack:\n");
  const double seq = input_mbps(false, 32);
  const double pfs = input_mbps(true, 32);
  std::printf("  sequential file system (one disk): %6.1f MB/s\n", seq);
  std::printf("  parallel FS over stripe groups:    %6.1f MB/s  (%0.1fx)\n",
              pfs, pfs / seq);
  std::printf("\nthe paper's conclusion: good floating point + scalable "
              "bandwidth + a parallel\nfile system + low-overhead "
              "communication, and the NOW competes with the C-90\nat a "
              "fraction of the cost.\n");
  return 0;
}
