// Breaking a NOW on purpose: the fault-injection subsystem end to end.
//
// A 16-workstation cluster runs GLUnix gangs, xFS traffic over stripe
// groups, and a network-RAM donor pool while a FaultPlan tears pieces out
// of it: a scripted crash/restart pair, a disk failure and replacement, a
// pulled network cable, returning owners, plus seeded stochastic churn on
// top.  Every injection drives the real reaction paths — manager
// takeover, degraded RAID reads, background rebuild, gang displacement,
// donor revocation — and every one of them lands in the metrics registry
// and the trace.
//
//   $ ./examples/break_now
//   $ ls break_now.trace.json   # open at ui.perfetto.dev
#include <cstdio>
#include <functional>
#include <memory>

#include "core/cluster.hpp"
#include "sim/random.hpp"

int main() {
  using namespace now;
  constexpr std::uint32_t kNodes = 16;
  constexpr sim::SimTime kHorizon = 120 * sim::kSecond;
  constexpr sim::SimTime kRun = 150 * sim::kSecond;  // drain + re-admit

  ClusterConfig cfg;
  cfg.workstations = kNodes;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 96;
  cfg.with_netram_registry = true;
  cfg.glunix.heartbeat_interval = sim::kSecond;
  cfg.fault_policy.rebuild_bytes_per_member = 256 * 1024;
  // The script: node 3 (a gang member and block manager) dies and comes
  // back; node 5's disk fails and is swapped; node 7's cable gets pulled
  // for two seconds; the owner of donor machine 12 comes back.  On top,
  // seeded churn keeps nodes 1-2, link 9, and owner 13 restless.
  cfg.fault_plan.crash_at(10 * sim::kSecond, 3)
      .restart_at(25 * sim::kSecond, 3)
      .owner_return_at(15 * sim::kSecond, 12)
      .disk_fail_at(30 * sim::kSecond, 5)
      .disk_replace_at(40 * sim::kSecond, 5)
      .link_down_at(50 * sim::kSecond, 7)
      .link_up_at(52 * sim::kSecond, 7)
      .with_node_churn(60 * sim::kSecond, 8 * sim::kSecond, {1, 2})
      .with_link_flaps(40 * sim::kSecond, 2 * sim::kSecond, {9})
      .with_owner_returns(30 * sim::kSecond, {13})
      .until(kHorizon);
  Cluster c(cfg);
  c.enable_tracing();
  c.memory_registry().add_donor(c.node(12));
  c.memory_registry().add_donor(c.node(13));
  c.memory_registry().add_donor(c.node(14));

  std::printf("break_now: %u workstations, GLUnix + xFS + netram, "
              "fault plan armed\n\n",
              c.size());

  // A gang lands on nodes 1..4, so the scripted crash of node 3 displaces
  // it mid-run; GLUnix restarts the gang and it still completes.
  bool gang_done = false;
  c.engine().schedule_at(2 * sim::kSecond, [&] {
    c.glunix().run_parallel(4, 20 * sim::kSecond, 8ull << 20,
                            [&gang_done] { gang_done = true; });
  });
  int batch_done = 0;
  for (int j = 0; j < 6; ++j) {
    c.engine().schedule_at((5 + 15 * j) * sim::kSecond, [&c, &batch_done] {
      c.glunix().run_remote(8 * sim::kSecond, 4ull << 20,
                            [&batch_done](net::NodeId) { ++batch_done; });
    });
  }

  // Steady xFS traffic from every live machine, so the failures always
  // have in-flight work to disturb.
  auto rng = std::make_shared<sim::Pcg32>(3, 0x62726b);
  auto fs_ops = std::make_shared<int>(0);
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [&c, rng, fs_ops, issue] {
    if (c.engine().now() >= kHorizon) {
      *issue = nullptr;
      return;
    }
    auto node = rng->next_below(kNodes);
    if (!c.node(node).alive()) node = (node + 1) % kNodes;
    const xfs::BlockId b = rng->next_below(4'000);
    auto cont = [&c, fs_ops, issue] {
      ++*fs_ops;
      c.engine().schedule_in(25 * sim::kMillisecond, [issue] {
        if (*issue) (*issue)();
      });
    };
    if (rng->bernoulli(0.3)) {
      c.fs().write(node, b, cont);
    } else {
      c.fs().read(node, b, cont);
    }
  };
  (*issue)();

  c.run_until(kRun);

  const fault::FaultStats& f = c.faults().stats();
  const xfs::XfsStats& x = c.fs().stats();
  const raid::RaidStats r = c.storage_stats();
  std::printf("injected:  %llu crashes, %llu restarts, %llu disk fails, "
              "%llu replacements,\n           %llu link downs, %llu owner "
              "returns\n",
              static_cast<unsigned long long>(f.node_crashes),
              static_cast<unsigned long long>(f.node_restarts),
              static_cast<unsigned long long>(f.disk_fails),
              static_cast<unsigned long long>(f.disk_replacements),
              static_cast<unsigned long long>(f.link_downs),
              static_cast<unsigned long long>(f.owner_returns));
  std::printf("reactions: %llu manager takeovers, %llu/%llu rebuilds "
              "done, %llu degraded reads,\n           %llu donor "
              "revocations, %llu gang crash-restarts\n",
              static_cast<unsigned long long>(f.manager_takeovers),
              static_cast<unsigned long long>(f.rebuilds_completed),
              static_cast<unsigned long long>(f.rebuilds_started),
              static_cast<unsigned long long>(r.degraded_reads),
              static_cast<unsigned long long>(f.donor_revocations),
              static_cast<unsigned long long>(
                  c.glunix().stats().crash_restarts));
  std::printf("workload:  %d xFS ops (%llu retried, %llu failed), gang "
              "%s, %d/6 batch jobs\n",
              *fs_ops, static_cast<unsigned long long>(x.op_retries),
              static_cast<unsigned long long>(x.failed_ops),
              gang_done ? "completed" : "NOT DONE", batch_done);
  std::printf("health:    storage %s, %u/%u nodes up\n",
              c.storage_degraded() ? "DEGRADED" : "whole",
              c.size() - static_cast<std::uint32_t>(
                             c.faults().nodes_down()),
              c.size());

  const bool trace_ok = c.trace_to("break_now.trace.json");
  std::printf("trace:     break_now.trace.json (%zu events) %s\n",
              obs::tracer().size(), trace_ok ? "ok" : "WRITE FAILED");

  // The example doubles as a smoke test: the scripted half of the plan
  // must have fired and the cluster must have ridden it out.
  const bool ok = trace_ok && gang_done && f.node_crashes >= 1 &&
                  f.node_restarts >= 1 && f.disk_fails >= 1 &&
                  f.disk_replacements >= 1 && f.rebuilds_completed >= 1 &&
                  f.link_downs >= 1 && f.owner_returns >= 1 &&
                  f.manager_takeovers >= 1 && f.donor_revocations >= 1 &&
                  *fs_ops > 0;
  std::printf("\n%s\n", ok ? "the building kept serving files."
                           : "SMOKE CHECK FAILED");
  return ok ? 0 : 1;
}
