// Ablation: disk request scheduling under load.  The paper's Table 2 uses
// a flat average access cost; under the deep queues that network RAM and
// xFS storage daemons generate, the elevator (SCAN/LOOK) discipline
// meaningfully beats FIFO — one of the knobs a NOW storage node has that a
// dumb hardware RAID box does not.
//
// The queue depths are independent sweep points (--jobs N).  FIFO and
// SCAN within a point replay the identical request stream (same derived
// seed), keeping the comparison controlled.
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "os/disk.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace {

using namespace now;

struct Result {
  double mean_response_ms;
  double p95_response_ms;
  double completion_s;
};

Result run(os::DiskSched sched, int depth, std::uint64_t seed) {
  sim::Engine eng;
  os::DiskParams p;
  p.scheduler = sched;
  p.distance_seek = true;
  os::Disk disk(eng, p);
  sim::Pcg32 rng(seed);
  // A closed workload: `depth` outstanding random 8 KB reads, each
  // completion immediately issuing a new one, 400 total.
  int issued = 0, completed = 0;
  const int total = 400;
  sim::Histogram response_ms(0.1);
  std::function<void()> issue = [&] {
    if (issued == total) return;
    ++issued;
    const std::uint64_t off = rng.next_below(120'000) * 8192ull;
    const sim::SimTime t0 = eng.now();
    disk.read(off, 8192, [&, t0] {
      response_ms.add(sim::to_ms(eng.now() - t0));
      ++completed;
      issue();
    });
  };
  for (int i = 0; i < depth; ++i) issue();
  eng.run();
  return Result{response_ms.mean(), response_ms.percentile(0.95),
                sim::to_sec(eng.now())};
}

struct Point {
  Result fifo;
  Result scan;
};

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "Ablation - disk scheduling (FIFO vs elevator) under queue depth",
      "storage-node design choice; 400 random 8 KB reads, closed workload");
  now::bench::Sweep sweep(argc, argv, "bench/bench_ablation_disk_sched");

  now::bench::row("%-8s %18s %18s %14s %14s", "depth", "FIFO mean (ms)",
                  "SCAN mean (ms)", "FIFO done (s)", "SCAN done (s)");
  const std::vector<int> depths{1, 4, 8, 16, 32};
  std::vector<std::string> names;
  for (const int depth : depths) {
    names.push_back("depth_" + std::to_string(depth));
  }
  const auto points = sweep.run(names, [&](now::exp::RunContext& ctx) {
    const int depth = depths[ctx.task_index];
    Point p;
    p.fifo = run(os::DiskSched::kFifo, depth, ctx.seed);
    p.scan = run(os::DiskSched::kElevator, depth, ctx.seed);
    return p;
  });
  for (std::size_t i = 0; i < depths.size(); ++i) {
    now::bench::row("%-8d %18.1f %18.1f %14.2f %14.2f", depths[i],
                    points[i].fifo.mean_response_ms,
                    points[i].scan.mean_response_ms,
                    points[i].fifo.completion_s,
                    points[i].scan.completion_s);
  }
  now::bench::row("");
  now::bench::row("expected shape: identical at depth 1; the elevator's "
                  "advantage grows with queue");
  now::bench::row("depth as the sweep amortizes seeks the FIFO order "
                  "scatters.");
  return 0;
}
