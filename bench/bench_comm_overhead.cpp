// The low-overhead-communication measurements from the text:
//   - kernel TCP: 456 us overhead+latency on Ethernet at 9 Mb/s peak;
//     626 us on ATM at 78 Mb/s (bandwidth alone doesn't fix overhead);
//   - Active Messages on Medusa FDDI: 8 us overhead + 8 us latency;
//   - sockets on AM: ~25 us one-way, ~10x faster than TCP;
//   - half-power message sizes: ~175 B (AM), 760 B (1-copy TCP),
//     1,350 B (TCP).
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "net/presets.hpp"
#include "net/shared_bus.hpp"
#include "net/switched.hpp"
#include "proto/am.hpp"
#include "proto/am_sockets.hpp"
#include "proto/costs.hpp"
#include "proto/nic_mux.hpp"
#include "proto/tcp.hpp"
#include "sim/engine.hpp"

namespace {

using namespace now;

struct TcpRun {
  double one_way_us = 0;
  double peak_mbps = 0;
};

TcpRun measure_tcp(bool atm, proto::ProtocolCosts costs) {
  sim::Engine engine;
  std::unique_ptr<net::Network> fabric;
  if (atm) {
    fabric = std::make_unique<net::SwitchedNetwork>(engine,
                                                    net::atm_155mbps());
  } else {
    fabric = std::make_unique<net::SharedBusNetwork>(
        engine, net::ethernet_10mbps());
  }
  proto::NicMux mux(*fabric);
  os::Node n0(engine, 0, os::NodeParams{});
  os::Node n1(engine, 1, os::NodeParams{});
  mux.attach_node(n0);
  mux.attach_node(n1);
  proto::TcpParams tp;
  tp.costs = costs;
  tp.mtu_bytes = atm ? 9'180 : 1'500;
  proto::TcpLayer tcp(mux, tp);

  TcpRun r;
  sim::SimTime at = -1;
  tcp.listen(1, 80, [&](proto::TcpMessage&&) { at = engine.now(); });
  tcp.send(0, 9, 1, 80, 100, {});
  engine.run();
  r.one_way_us = sim::to_us(at);

  // Bandwidth: one big transfer.
  sim::Engine eng2;
  std::unique_ptr<net::Network> fabric2;
  if (atm) {
    fabric2 = std::make_unique<net::SwitchedNetwork>(eng2,
                                                     net::atm_155mbps());
  } else {
    fabric2 = std::make_unique<net::SharedBusNetwork>(
        eng2, net::ethernet_10mbps());
  }
  proto::NicMux mux2(*fabric2);
  os::Node m0(eng2, 0, os::NodeParams{});
  os::Node m1(eng2, 1, os::NodeParams{});
  mux2.attach_node(m0);
  mux2.attach_node(m1);
  proto::TcpLayer tcp2(mux2, tp);
  const std::uint32_t total = 4 << 20;
  sim::SimTime done = -1;
  tcp2.listen(1, 80, [&](proto::TcpMessage&&) { done = eng2.now(); });
  tcp2.send(0, 9, 1, 80, total, {});
  eng2.run();
  r.peak_mbps = total * 8.0 / sim::to_sec(done) / 1e6;
  return r;
}

struct AmRun {
  double one_way_us = 0;
  double peak_mbps = 0;
  double half_power_bytes = 0;
};

double am_one_way_us(proto::AmLayer& am, net::SwitchedNetwork& net,
                     std::uint32_t bytes) {
  return sim::to_us(
      am.unloaded_one_way(bytes, net.unloaded_transit(bytes + 16)));
}

AmRun measure_am() {
  sim::Engine engine;
  net::SwitchedNetwork medusa(engine, net::fddi_medusa());
  proto::NicMux mux(medusa);
  os::Node n0(engine, 0, os::NodeParams{});
  os::Node n1(engine, 1, os::NodeParams{});
  mux.attach_node(n0);
  mux.attach_node(n1);
  proto::AmParams ap;
  ap.costs = proto::am_medusa();
  ap.window = 64;
  proto::AmLayer am(mux, ap);
  const auto e0 = am.create_endpoint(n0, proto::AmLayer::Mode::kInterrupt);
  const auto e1 = am.create_endpoint(n1, proto::AmLayer::Mode::kInterrupt);
  int handled = 0;
  am.register_handler(e1, 1, [&](const proto::AmMessage&) { ++handled; });

  AmRun r;
  sim::SimTime at = -1;
  am.register_handler(e1, 2,
                      [&](const proto::AmMessage&) { at = engine.now(); });
  am.send(e0, e1, 2, 32, {});
  engine.run();
  r.one_way_us = sim::to_us(at);

  // Bandwidth sweep to find the half-power point.
  const double peak_time_per_byte =
      am_one_way_us(am, medusa, 1 << 20) / static_cast<double>(1 << 20);
  r.peak_mbps = 8.0 / peak_time_per_byte;
  for (std::uint32_t n = 16; n < (1u << 20); n += 8) {
    const double bw = n / am_one_way_us(am, medusa, n);
    if (bw >= 0.5 / peak_time_per_byte) {
      r.half_power_bytes = n;
      break;
    }
  }
  return r;
}

double model_half_power(const proto::ProtocolCosts& c,
                        const net::FabricParams& fabric) {
  // n_1/2: message size where achieved bandwidth is half the peak.
  const double fixed_us =
      sim::to_us(c.send_fixed + c.recv_fixed + fabric.latency);
  const double per_byte_us =
      (c.send_per_byte_ns + c.recv_per_byte_ns) / 1000.0 +
      8.0 / (fabric.link_bandwidth_bps / 1e6);
  return fixed_us / per_byte_us;
}

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "Low-overhead communication (text measurements)",
      "'A Case for NOW', 'Low-overhead communication' section");
  now::bench::JsonReport report(argc, argv, "bench/bench_comm_overhead",
                                "us_one_way_and_mbps");
  report.method(
      "end-to-end one-way latency and peak bandwidth measured on "
      "two-node simulated fabrics; half-power from the analytic cost "
      "model");

  const TcpRun eth = measure_tcp(false, proto::tcp_kernel());
  const TcpRun atm = measure_tcp(true, proto::tcp_kernel_atm());
  now::bench::row("%-28s %16s %14s", "path", "one-way (us)",
                  "peak (Mb/s)");
  now::bench::row("%-28s %16.0f %14.1f   (paper: 456 us, 9 Mb/s)",
                  "kernel TCP over Ethernet", eth.one_way_us,
                  eth.peak_mbps);
  now::bench::row("%-28s %16.0f %14.1f   (paper: 626 us, 78 Mb/s)",
                  "kernel TCP over ATM", atm.one_way_us, atm.peak_mbps);

  const AmRun am = measure_am();
  now::bench::row("%-28s %16.1f %14.1f   (paper: 8 us o/side + 8 us L "
                  "=> ~24 us one-way)",
                  "Active Messages on Medusa", am.one_way_us, am.peak_mbps);
  // Sockets on AM, measured through the real shim layer.
  double sockets_us = 0;
  {
    sim::Engine eng;
    net::SwitchedNetwork medusa(eng, net::fddi_medusa());
    proto::NicMux mux(medusa);
    os::Node n0(eng, 0, os::NodeParams{});
    os::Node n1(eng, 1, os::NodeParams{});
    mux.attach_node(n0);
    mux.attach_node(n1);
    proto::AmParams ap;
    ap.costs = proto::am_medusa();
    proto::AmLayer am2(mux, ap);
    proto::AmSockets socks(am2);
    socks.bind_node(n0);
    socks.bind_node(n1);
    sim::SimTime at = -1;
    socks.listen(1, 80,
                 [&](proto::AmSocketMessage&&) { at = eng.now(); });
    socks.send(0, 9, 1, 80, 64, {});
    eng.run();
    sockets_us = sim::to_us(at);
  }
  now::bench::row("%-28s %16.1f %14s   (paper: ~25 us, ~10x beats TCP)",
                  "sockets on AM (measured)", sockets_us, "-");

  report.value("tcp_ethernet", "one_way_us", eth.one_way_us);
  report.value("tcp_ethernet", "peak_mbps", eth.peak_mbps);
  report.value("tcp_ethernet", "paper_one_way_us", 456);
  report.value("tcp_atm", "one_way_us", atm.one_way_us);
  report.value("tcp_atm", "peak_mbps", atm.peak_mbps);
  report.value("tcp_atm", "paper_one_way_us", 626);
  report.value("am_medusa", "one_way_us", am.one_way_us);
  report.value("am_medusa", "peak_mbps", am.peak_mbps);
  report.value("am_medusa", "half_power_bytes", am.half_power_bytes);
  report.value("sockets_on_am", "one_way_us", sockets_us);
  report.note("paper claim: overhead, not bandwidth, governs real "
              "communication performance");

  now::bench::row("");
  now::bench::row("half-power message sizes on the Medusa fabric:");
  now::bench::row("  %-26s %8.0f B   (paper: 175 B)", "Active Messages",
                  am.half_power_bytes);
  now::bench::row("  %-26s %8.0f B   (paper: 760 B)", "single-copy TCP",
                  model_half_power(proto::tcp_single_copy(),
                                   net::fddi_medusa()));
  now::bench::row("  %-26s %8.0f B   (paper: 1,350 B)", "standard TCP",
                  model_half_power(proto::tcp_kernel(),
                                   net::fddi_medusa()));
  now::bench::row("");
  now::bench::row("paper claim: 8x more bandwidth (Ethernet->ATM) but "
                  "*higher* per-message cost;");
  now::bench::row("overhead, not bandwidth, governs real communication "
                  "performance.");
  return 0;
}
