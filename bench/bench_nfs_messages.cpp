// The NFS trace analysis from the text: 95 % of messages under 200 bytes,
// so an 8x bandwidth upgrade alone improves NFS by only ~20 %.
#include "bench_util.hpp"
#include "trace/nfs_trace.hpp"

int main() {
  using namespace now::trace;
  now::bench::heading(
      "NFS message-size analysis",
      "'A Case for NOW', departmental file-server trace (230 clients, one "
      "week -> synthetic equivalent)");

  NfsWorkloadParams p;
  p.messages = 500'000;
  const auto msgs = generate_nfs_messages(p);

  now::bench::row("messages: %zu", msgs.size());
  now::bench::row("fraction under 200 bytes: %.1f%%   (paper: 95%%)",
                  100 * fraction_below(msgs, 201));
  for (const std::uint32_t cut : {128u, 256u, 512u, 1024u, 1500u}) {
    now::bench::row("  cumulative under %4u B: %5.1f%%", cut,
                    100 * fraction_below(msgs, cut));
  }

  const double overhead_us = 456;  // kernel TCP overhead + latency
  const double eth_us_per_byte = 8.0 / 10.0;
  const double atm_us_per_byte = 8.0 / 78.0;
  const double before = total_time_us(msgs, overhead_us, eth_us_per_byte);
  const double after = total_time_us(msgs, overhead_us, atm_us_per_byte);
  const double am_after = total_time_us(msgs, 16 + 8, atm_us_per_byte);

  now::bench::row("");
  now::bench::row("applying the cost coefficients to the trace:");
  now::bench::row("  Ethernet + TCP:            %12.1f s",
                  before / 1e6);
  now::bench::row("  ATM + TCP (8x bandwidth):  %12.1f s  -> %4.1f%% "
                  "better   (paper: ~20%%)",
                  after / 1e6, 100 * (1 - after / before));
  now::bench::row("  ATM + Active Messages:     %12.1f s  -> %4.1f%% "
                  "better",
                  am_after / 1e6, 100 * (1 - am_after / before));
  now::bench::row("");
  now::bench::row("paper claim: metadata queries gate NFS; high bandwidth "
                  "helps only if overhead+latency also drop.");
  return 0;
}
