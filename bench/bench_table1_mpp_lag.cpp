// Table 1: MPPs ship with microprocessors workstations had 1-2 years
// earlier, and what that lag costs at 50 %/yr improvement.
#include "bench_util.hpp"
#include "models/cost.hpp"
#include "models/techtrend.hpp"

int main() {
  using namespace now::models;
  now::bench::heading(
      "Table 1 - MPPs vs workstations with the same microprocessor",
      "Anderson/Culler/Patterson, 'A Case for NOW', IEEE Micro 1995, "
      "Table 1");

  now::bench::row("%-10s %-16s %-12s %-14s %-10s %-12s", "MPP",
                  "node processor", "MPP year", "WS year", "lag (yr)",
                  "perf cost");
  for (const auto& r : table1_rows()) {
    now::bench::row("%-10s %-16s %-12.1f %-14.1f %-10.1f %.2fx",
                    r.mpp.c_str(), r.node_processor.c_str(),
                    r.mpp_ship_year, r.equivalent_ws_year, r.lag_years(),
                    performance_lag_factor(r.lag_years()));
  }
  now::bench::row("");
  now::bench::row("paper claim: 'a two-year lag costs more than a factor "
                  "of two'");
  now::bench::row("model:       2 years at 50%%/yr = %.2fx",
                  performance_lag_factor(2.0));
  now::bench::row("");
  now::bench::row("price/performance divergence (80%%/yr workstation vs "
                  "25%%/yr supercomputer):");
  for (const double years : {1.0, 3.0, 5.0, 10.0}) {
    now::bench::row("  after %4.0f years: %8.1fx", years,
                    price_performance_divergence(years));
  }
  now::bench::row("");
  now::bench::row("Bell's volume rule, PCs vs supercomputers at 30,000:1:");
  now::bench::row("  predicted unit-cost advantage: %.1fx (paper: ~5x)",
                  bell_cost_multiplier(30'000));
  return 0;
}
