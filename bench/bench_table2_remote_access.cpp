// Table 2: time to service an 8 KB file-cache miss from remote memory or
// remote disk, Ethernet vs 155 Mb/s ATM — the arithmetic, cross-checked
// against the wire simulator and the full netram RPC path.
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "models/access.hpp"
#include "net/presets.hpp"
#include "net/switched.hpp"
#include "netram/pager.hpp"
#include "netram/registry.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "proto/rpc.hpp"
#include "sim/engine.hpp"

namespace {

// End-to-end remote-memory page fetch through the real protocol stack.
double simulated_rpc_fetch_us() {
  using namespace now;
  sim::Engine engine;
  net::SwitchedNetwork atm(engine, net::atm_155mbps());
  proto::NicMux mux(atm);
  proto::AmLayer am(mux, proto::AmParams{});
  proto::RpcLayer rpc(am);
  std::vector<std::unique_ptr<os::Node>> nodes;
  for (int i = 0; i < 2; ++i) {
    nodes.push_back(std::make_unique<os::Node>(
        engine, static_cast<net::NodeId>(i), os::NodeParams{}));
    mux.attach_node(*nodes.back());
    rpc.bind(*nodes.back());
  }
  netram::IdleMemoryRegistry reg;
  reg.add_donor(*nodes[1]);
  netram::install_donor_service(rpc, *nodes[1]);
  netram::NetworkRamPager pager(*nodes[0], 8192, reg, rpc);
  pager.page_out(1, [] {});
  engine.run();
  const now::sim::SimTime start = engine.now();
  now::sim::SimTime end = 0;
  pager.page_in(1, [&] { end = engine.now(); });
  engine.run();
  return now::sim::to_us(end - start);
}

}  // namespace

int main() {
  using namespace now::models;
  now::bench::heading(
      "Table 2 - servicing an 8 KB cache miss from remote memory vs disk",
      "'A Case for NOW', Table 2 (DEC AXP 3000/400, standard drivers)");

  now::bench::row("%-14s %-14s %10s %10s %10s %10s %12s", "network",
                  "source", "memcpy", "overhead", "transfer", "disk",
                  "total (us)");
  const double paper_totals[4] = {6'900, 21'700, 1'050, 15'850};
  int i = 0;
  for (const auto& r : table2_rows()) {
    now::bench::row("%-14s %-14s %10.0f %10.0f %10.0f %10.0f %12.0f  "
                    "(paper: %.0f)",
                    r.network.c_str(),
                    r.from_disk ? "remote disk" : "remote memory",
                    r.memcpy_us, r.net_overhead_us, r.transfer_us,
                    r.disk_us, r.total_us(), paper_totals[i]);
    ++i;
  }

  now::bench::row("");
  now::bench::row("cross-checks against the simulator:");
  now::bench::row("  wire model, Ethernet remote memory: %8.0f us "
                  "(paper 6,900)",
                  simulated_remote_memory_us(false));
  now::bench::row("  wire model, ATM remote memory:      %8.0f us "
                  "(paper 1,050)",
                  simulated_remote_memory_us(true));
  now::bench::row("  full netram RPC fetch over ATM:     %8.0f us "
                  "(paper 1,050; ours pays AM overheads + donor copy)",
                  simulated_rpc_fetch_us());
  now::bench::row("");
  now::bench::row("paper claim: switched-LAN remote memory is an order of "
                  "magnitude faster than disk");
  const auto rows = table2_rows();
  now::bench::row("reproduced:  ATM disk/memory ratio = %.1fx",
                  rows[3].total_us() / rows[2].total_us());
  return 0;
}
