// Intra-run parallel execution: one big cluster on N worker threads.
//
// PR 3's now::exp parallelizes *across* independent sweep points; this
// bench exercises the other axis — partitioning a single >=256-node
// simulation across lanes with conservative lookahead (DESIGN.md §12).
// Every node runs an RPC echo loop against a partner half the cluster
// away, so nearly every message crosses a partition boundary at any
// thread count: the worst case for the epoch-barrier machinery and the
// honest one to time.
//
// stdout is 100% simulated results (integer op counts, latency sums in
// ticks, an order-sensitive digest) and is byte-identical for every
// --threads value — the CI intra-run-determinism job diffs --threads 1
// against --threads 4 verbatim.  Wall-clock, lane counts, and epoch
// counters are nondeterministic measurement and go only to --json.
//
//   --nodes N     cluster size (default 256)
//   --threads N   partition lanes (default 1 = the serial engine)
//   --sim-ms M    simulated horizon in milliseconds (default 200)
//   --json PATH   machine-readable report (BENCH_parallel.json shape)
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "sim/random.hpp"

namespace {

using namespace now;

constexpr proto::MethodId kEcho = 77;
constexpr std::uint32_t kReqBytes = 512;
constexpr std::uint32_t kRespBytes = 512;

struct NodeState {
  sim::Pcg32 rng{1};
  std::uint64_t ops = 0;
  std::uint64_t latency_ticks = 0;  // integer sim ticks: exact, order-free
};

std::uint32_t parse_u32(int argc, char** argv, const char* flag,
                        std::uint32_t def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      const unsigned long v = std::strtoul(argv[i + 1], nullptr, 10);
      if (v > 0) return static_cast<std::uint32_t>(v);
    }
  }
  return def;
}

// FNV-1a over the per-node (ops, latency) sequence: any reordering or
// off-by-one anywhere in the cluster flips the digest.
std::uint64_t digest(const std::vector<NodeState>& st) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const NodeState& s : st) {
    mix(s.ops);
    mix(s.latency_ticks);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "parallel intra-run engine - one cluster partitioned across threads",
      "'A Case for NOW': the simulator of the building-sized computer "
      "should itself scale with cores");
  const std::uint32_t nodes = parse_u32(argc, argv, "--nodes", 256);
  const unsigned threads = now::bench::parse_threads(argc, argv);
  const sim::SimTime horizon =
      static_cast<sim::SimTime>(parse_u32(argc, argv, "--sim-ms", 200)) *
      sim::kMillisecond;
  now::bench::JsonReport json(argc, argv, "bench/bench_parallel_cluster",
                              "wall_ms");
  json.method(
      "every node RPC-echoes 512 B to the node half the cluster away "
      "(almost always a different partition) with 30-90 us jittered think "
      "time; ClusterConfig{kNodeLocal, threads} vs the serial engine");

  ClusterConfig cfg;
  cfg.workstations = nodes;
  cfg.fabric = Fabric::kMyrinet;  // 1 us one-way latency = the lookahead
  cfg.with_glunix = false;        // partition-clean: nodes interact only
  cfg.threads = threads;          // through the switched fabric
  cfg.partitioning = Partitioning::kNodeLocal;
  Cluster c(cfg);

  auto state = std::make_shared<std::vector<NodeState>>(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    (*state)[i].rng = sim::Pcg32(cfg.seed * 7919 + i + 1);
    c.rpc().register_method(
        i, kEcho, [](net::NodeId, std::any req, proto::RpcLayer::ReplyFn r) {
          r(kRespBytes, std::move(req));
        });
  }

  // Each node's loop touches only its own NodeState slot and is confined
  // to its own lane (calls issue there, replies return there), so the
  // shared vector is race-free under partitioning.
  auto issue = std::make_shared<std::function<void(std::uint32_t)>>();
  *issue = [&c, state, issue, nodes, horizon](std::uint32_t i) {
    sim::Engine& e = c.network().engine_for(i);
    if (e.now() >= horizon) return;
    const std::uint32_t partner = (i + nodes / 2) % nodes;
    const sim::SimTime t0 = e.now();
    c.rpc().call(i, partner, kEcho, kReqBytes, std::any{},
                 [&c, state, issue, i, t0](std::any) {
                   NodeState& s2 = (*state)[i];
                   ++s2.ops;
                   s2.latency_ticks += static_cast<std::uint64_t>(
                       c.network().engine_for(i).now() - t0);
                   const sim::Duration think =
                       30 * sim::kMicrosecond +
                       static_cast<sim::Duration>(s2.rng.next_below(
                           static_cast<std::uint32_t>(60 *
                                                      sim::kMicrosecond)));
                   c.network().engine_for(i).schedule_in(
                       think, [issue, i] {
                         if (*issue) (*issue)(i);
                       });
                 });
  };
  // Desynchronised start so the fabric sees a stream, not a thundering
  // herd; the jitter comes from each node's own RNG (thread-invariant).
  for (std::uint32_t i = 0; i < nodes; ++i) {
    const sim::Duration at =
        static_cast<sim::Duration>((*state)[i].rng.next_below(
            static_cast<std::uint32_t>(50 * sim::kMicrosecond)));
    c.network().engine_for(i).schedule_at(at, [issue, i] {
      if (*issue) (*issue)(i);
    });
  }

  const auto w0 = std::chrono::steady_clock::now();
  c.run_until(horizon + 5 * sim::kMillisecond);  // drain in-flight echoes
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - w0)
                             .count();
  *issue = nullptr;

  std::uint64_t ops = 0, lat = 0;
  std::uint64_t min_ops = ~0ull, max_ops = 0;
  for (const NodeState& s : *state) {
    ops += s.ops;
    lat += s.latency_ticks;
    if (s.ops < min_ops) min_ops = s.ops;
    if (s.ops > max_ops) max_ops = s.ops;
  }
  const std::uint64_t d = digest(*state);

  // Simulated results only below this line: byte-identical at any
  // --threads (the CI job depends on it).
  now::bench::row("nodes: %u    simulated: %u ms    rpc: 512 B echo, "
                  "partner = (i + %u) %% %u",
                  nodes, parse_u32(argc, argv, "--sim-ms", 200), nodes / 2,
                  nodes);
  now::bench::row("echo ops completed:   %llu (per node min %llu, max %llu)",
                  static_cast<unsigned long long>(ops),
                  static_cast<unsigned long long>(min_ops),
                  static_cast<unsigned long long>(max_ops));
  now::bench::row("latency sum:          %llu ticks (mean %.3f us)",
                  static_cast<unsigned long long>(lat),
                  ops ? sim::to_us(static_cast<sim::Duration>(lat / ops))
                      : 0.0);
  now::bench::row("result digest:        %016llx",
                  static_cast<unsigned long long>(d));
  now::bench::row("");
  now::bench::row("this table is pure simulation output - identical for "
                  "every --threads value.");
  now::bench::row("wall-clock, lanes, and epoch counters go to --json "
                  "(nondeterministic).");

  json.value("run", "nodes", nodes);
  json.value("run", "threads_requested", threads);
  json.value("run", "threads_effective", c.effective_threads());
  json.value("run", "hardware_concurrency",
             std::thread::hardware_concurrency());
  json.value("run", "wall_ms", wall_ms);
  json.value("run", "ops", static_cast<double>(ops));
  json.value("run", "digest_lo32", static_cast<double>(d & 0xffffffffull));
  if (c.parallel_engine() != nullptr) {
    json.value("run", "epochs",
               static_cast<double>(c.parallel_engine()->epochs()));
    json.value("run", "cross_lane_messages",
               static_cast<double>(c.parallel_engine()->messages_posted()));
  }
  json.note("stdout (ops, latency sum, digest) is byte-identical across "
            "--threads; wall_ms is measurement");
  json.note("speedup on a multi-core machine ~ min(threads, cores): lanes "
            "run concurrently inside each lookahead epoch");
  return 0;
}
