// xFS end-to-end: where reads are served (local / cooperative peer / log),
// write-behind segment flushing, and serverless recovery timings.
#include <functional>
#include <memory>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "sim/random.hpp"

namespace {

using namespace now;

}  // namespace

int main() {
  now::bench::heading(
      "xFS - serverless network file service",
      "'A Case for NOW', 'xFS: serverless network file service'");

  ClusterConfig cfg;
  cfg.workstations = 16;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 64;  // small caches force write-behind
  // Stripe groups of 8 (the default): 7 data units per row, so 14-block
  // segments land as exactly two full-stripe rows.
  cfg.xfs.segment_blocks = 14;
  Cluster c(cfg);

  // A shared workload: every node writes its own files, everyone reads a
  // mix of its own and others' blocks.
  sim::Pcg32 rng(7, 0x78667362);
  const int kOps = 8'000;
  auto ops_done = std::make_shared<int>(0);
  auto issue = std::make_shared<std::function<void(int)>>();
  *issue = [&c, &rng, ops_done, issue](int remaining) {
    if (remaining == 0) {
      *issue = nullptr;
      return;
    }
    const auto node = rng.next_below(16);
    const bool write = rng.bernoulli(0.35);
    // Most traffic goes to a node's own range; some crosses nodes.
    const auto owner = rng.bernoulli(0.55) ? node : rng.next_below(16);
    const xfs::BlockId block = owner * 1'000 + rng.next_below(160);
    auto cont = [ops_done, issue, remaining] {
      ++*ops_done;
      if (*issue) (*issue)(remaining - 1);
    };
    if (write) {
      c.fs().write(node, block, cont);
    } else {
      c.fs().read(node, block, cont);
    }
  };
  const sim::SimTime t0 = c.engine().now();
  (*issue)(kOps);
  c.run();
  // Commit all write-behind state so the log sees real segment traffic.
  for (std::uint32_t n = 0; n < 16; ++n) {
    c.fs().sync(n, [] {});
  }
  c.run();
  const double elapsed = sim::to_sec(c.engine().now() - t0);

  const auto& s = c.fs().stats();
  now::bench::row("%d sequential ops in %.2f simulated seconds", *ops_done,
                  elapsed);
  now::bench::row("latency: reads mean %.2f ms (max %.1f), writes mean "
                  "%.2f ms (max %.1f)",
                  s.read_latency_us.mean() / 1000.0,
                  s.read_latency_us.max() / 1000.0,
                  s.write_latency_us.mean() / 1000.0,
                  s.write_latency_us.max() / 1000.0);
  now::bench::row("");
  now::bench::row("where reads were served:");
  const double reads = static_cast<double>(s.reads);
  now::bench::row("  local cache:        %6.1f%%",
                  100 * s.local_hits / (reads + s.writes));
  now::bench::row("  peer memory (coop): %6llu fetches",
                  static_cast<unsigned long long>(s.peer_fetches));
  now::bench::row("  log (RAID disks):   %6llu reads",
                  static_cast<unsigned long long>(s.log_reads));
  now::bench::row("  zero fill (new):    %6llu",
                  static_cast<unsigned long long>(s.zero_fills));
  now::bench::row("write-back machinery: %llu invalidations, %llu "
                  "ownership transfers, %llu segments flushed",
                  static_cast<unsigned long long>(s.invalidations),
                  static_cast<unsigned long long>(s.ownership_transfers),
                  static_cast<unsigned long long>(s.segments_flushed));
  now::bench::row("RAID: %llu full-stripe writes vs %llu "
                  "read-modify-writes (log batching wins)",
                  static_cast<unsigned long long>(
                      c.storage_stats().full_stripe_writes),
                  static_cast<unsigned long long>(
                      c.storage_stats().parity_updates));

  // Serverless availability: kill a node, take over its manager duty.
  const sim::SimTime t1 = c.engine().now();
  c.crash_node(5);
  sim::SimTime recovered_at = -1;
  c.fs().manager_takeover(5, 6, [&] { recovered_at = c.engine().now(); });
  c.run();
  now::bench::row("");
  now::bench::row("node 5 crashed: manager takeover + directory rebuild "
                  "took %.1f ms",
                  sim::to_ms(recovered_at - t1));
  now::bench::row("unflushed dirty blocks lost with the node: %llu "
                  "(readers fall back to the last logged version)",
                  static_cast<unsigned long long>(
                      c.fs().stats().lost_dirty_blocks));

  // Cleaner.
  sim::SimTime cleaned_at = -1;
  const sim::SimTime t2 = c.engine().now();
  std::uint32_t cleaned = 0;
  c.fs().clean(0, [&](std::uint32_t n) {
    cleaned = n;
    cleaned_at = c.engine().now();
  });
  c.run();
  now::bench::row("log cleaner: compacted %u segments in %.1f ms", cleaned,
                  cleaned_at >= t2 ? sim::to_ms(cleaned_at - t2) : 0.0);
  now::bench::row("");
  now::bench::row("paper claims: no central server bottleneck or single "
                  "point of failure; any client");
  now::bench::row("can take over for any failed client; storage is a "
                  "software RAID in the log.");
  return 0;
}
