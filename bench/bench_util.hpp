// Shared formatting helpers for the reproduction benches.
//
// Every bench prints the paper's reported numbers next to the reproduced
// ones so the comparison is visible in the raw output (EXPERIMENTS.md
// records the same pairs).
// Passing `--json <path>` to a bench additionally writes the reproduced
// numbers as a machine-readable report in the BENCH_engine.json shape
// ({benchmark, units, machine, method, results, notes}) via JsonReport.
//
// Sweep-shaped benches additionally take:
//   --jobs N         run independent sweep points on N worker threads via
//                    now::exp (default: one per hardware thread; 1 = the
//                    serial path, no pool).  stdout is byte-identical for
//                    every N: points compute results on workers, the main
//                    thread formats rows in index order.
//   --sweep-json P   write per-point wall-clock and the aggregate speedup
//                    (busy_ms / wall_ms) as a JsonReport-shaped file.
//   --seed S         base seed for exp::derive_seed (default 1).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exp/runner.hpp"

namespace now::bench {

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vprintf(fmt, ap);
  va_end(ap);
  std::printf("\n");
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

namespace detail {
inline void append_json_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

inline void append_json_number(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) &&
      std::fabs(v) < 9.0e15) {  // integral and exactly representable
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(v));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", std::isfinite(v) ? v : 0.0);
    out += buf;
  }
}
}  // namespace detail

/// Machine-readable bench results, in the shape of BENCH_engine.json:
/// {"benchmark", "units", "machine", "method", "results": {name: {field:
/// value}}, "notes": [...]}.  Construct it from main's argv: it activates
/// only when `--json <path>` was passed, and writes the file when write()
/// is called (or at destruction).  Insertion order of results and fields
/// is preserved, so output is deterministic for a deterministic bench.
class JsonReport {
 public:
  JsonReport(int argc, char** argv, std::string benchmark,
             std::string units)
      : benchmark_(std::move(benchmark)), units_(std::move(units)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
    }
    default_machine();
  }

  /// Reports to a known path (the Sweep helper's --sweep-json file).
  JsonReport(std::string path, std::string benchmark, std::string units)
      : path_(std::move(path)), benchmark_(std::move(benchmark)),
        units_(std::move(units)) {
    default_machine();
  }
  ~JsonReport() { write(); }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  bool active() const { return !path_.empty(); }
  void machine(std::string m) { machine_ = std::move(m); }
  void method(std::string m) { method_ = std::move(m); }
  void note(std::string text) { notes_.push_back(std::move(text)); }

  /// Sets results[result][field] = v (fields merge into an existing
  /// result row of the same name).
  void value(const std::string& result, const std::string& field,
             double v) {
    for (auto& r : results_) {
      if (r.name == result) {
        r.fields.emplace_back(field, v);
        return;
      }
    }
    results_.push_back({result, {{field, v}}});
  }

  /// Writes the report if `--json` was given; true on success or when
  /// inactive.  Idempotent: the destructor's write is a no-op after a
  /// successful explicit call.
  bool write() {
    if (path_.empty() || written_) return true;
    std::string out = "{\n";
    const auto field = [&out](const char* key, const std::string& v,
                              bool comma) {
      out += "  \"";
      out += key;
      out += "\": \"";
      detail::append_json_escaped(out, v);
      out += comma ? "\",\n" : "\"\n";
    };
    field("benchmark", benchmark_, true);
    field("units", units_, true);
    field("machine", machine_, true);
    field("method", method_, true);
    out += "  \"results\": {";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      out += i ? ",\n    \"" : "\n    \"";
      detail::append_json_escaped(out, results_[i].name);
      out += "\": {";
      const auto& fields = results_[i].fields;
      for (std::size_t j = 0; j < fields.size(); ++j) {
        out += j ? ", \"" : "\"";
        detail::append_json_escaped(out, fields[j].first);
        out += "\": ";
        detail::append_json_number(out, fields[j].second);
      }
      out += "}";
    }
    out += results_.empty() ? "},\n" : "\n  },\n";
    out += "  \"notes\": [";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      out += i ? ",\n    \"" : "\n    \"";
      detail::append_json_escaped(out, notes_[i]);
      out += "\"";
    }
    out += notes_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    std::ofstream f(path_, std::ios::trunc);
    if (!f) return false;
    f << out;
    written_ = f.good();
    return written_;
  }

 private:
  struct Result {
    std::string name;
    std::vector<std::pair<std::string, double>> fields;
  };

  void default_machine() {
#if defined(__clang__)
    machine_ = std::string("clang ") + __clang_version__;
#elif defined(__VERSION__)
    machine_ = std::string("g++ ") + __VERSION__;
#endif
  }

  std::string path_;
  std::string benchmark_;
  std::string units_;
  std::string machine_;
  std::string method_;
  std::vector<Result> results_;
  std::vector<std::string> notes_;
  bool written_ = false;
};

/// `--jobs N` (0 = hardware concurrency), or 0 when absent/garbled.
inline unsigned parse_jobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      return static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return 0;
}

/// `--threads N` (default 1): worker threads *inside* each simulation —
/// ClusterConfig::threads for benches whose cluster supports partitioned
/// execution.  1 = the serial engine; every bench's stdout is
/// byte-identical at --threads 1 to builds that predate the flag.
inline unsigned parse_threads(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      const unsigned n =
          static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
      return n == 0 ? 1 : n;
    }
  }
  return 1;
}

/// `--nodes N`: caller-interpreted cluster-size override shared by the
/// building-scale benches (0 when absent).  Scaled benches treat it as a
/// cap on their size axis — see cap_axis — so CI can run the same binary
/// at 256 nodes that EXPERIMENTS.md runs at 1024+.
inline std::uint32_t parse_nodes(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0) {
      return static_cast<std::uint32_t>(
          std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return 0;
}

/// `--trace <path>`: a recorded trace to replay (native fs or nfsdump-
/// style text, auto-detected by now::replay) instead of — or, for benches
/// that print both, next to — the synthetic generator.  Empty when absent.
/// Shared by the replay-capable benches (bench_table3_coopcache,
/// bench_xfs_vs_central, bench_serving); each prints its replay section
/// only when the flag is given, so default stdout is unchanged.
inline std::string parse_trace(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) return argv[i + 1];
  }
  return {};
}

/// `--trace-scale S` (default 1): recorded timestamps are divided by S, so
/// 2 replays the trace at twice the recorded rate.  Values <= 0 fall back
/// to 1.
inline double parse_trace_scale(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-scale") == 0) {
      const double s = std::strtod(argv[i + 1], nullptr);
      return s > 0 ? s : 1.0;
    }
  }
  return 1.0;
}

/// Applies a --nodes cap to a size axis: sizes above the cap are dropped;
/// if the cap removes everything (or matches nothing exactly), the cap
/// itself becomes a point, so `--nodes 256` always measures 256.  cap = 0
/// (flag absent) leaves the axis untouched.
inline std::vector<std::uint32_t> cap_axis(std::vector<std::uint32_t> sizes,
                                           std::uint32_t cap) {
  if (cap == 0) return sizes;
  std::vector<std::uint32_t> out;
  for (const std::uint32_t s : sizes) {
    if (s <= cap) out.push_back(s);
  }
  if (out.empty() || out.back() != cap) out.push_back(cap);
  return out;
}

/// Drives a bench's sweep points through now::exp::run_sweep behind the
/// --jobs / --sweep-json / --seed flags.
///
/// Each run() call hands every point a fresh exp::RunContext (derived
/// seed, private metrics/tracer/log) and returns the results in point
/// order; the bench then formats its rows from them on the main thread,
/// which is what keeps stdout byte-identical across --jobs values.  Sweep
/// itself never prints.  Wall-clock per point and the aggregate speedup
/// (busy_ms / wall_ms — how much serial compute the elapsed time bought)
/// go to the --sweep-json report only, since they are nondeterministic.
class Sweep {
 public:
  Sweep(int argc, char** argv, std::string benchmark)
      : benchmark_(std::move(benchmark)), jobs_(parse_jobs(argc, argv)),
        threads_(parse_threads(argc, argv)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--sweep-json") == 0) path_ = argv[i + 1];
      if (std::strcmp(argv[i], "--seed") == 0) {
        base_seed_ = std::strtoull(argv[i + 1], nullptr, 10);
      }
    }
  }
  ~Sweep() { write(); }
  Sweep(const Sweep&) = delete;
  Sweep& operator=(const Sweep&) = delete;

  /// Workers the sweep will actually use.  With --threads > 1, capped so
  /// that jobs x threads stays within the machine: sweep-level and
  /// intra-run parallelism multiply, and oversubscribing both ways is
  /// strictly slower than either alone.
  unsigned jobs() const {
    unsigned j = now::exp::effective_jobs(jobs_);
    if (threads_ > 1) {
      unsigned hw = std::thread::hardware_concurrency();
      if (hw == 0) hw = 1;
      const unsigned cap = hw / threads_ > 0 ? hw / threads_ : 1;
      if (j > cap) j = cap;
    }
    return j;
  }
  /// Per-simulation worker threads (--threads, default 1).
  unsigned threads() const { return threads_; }
  std::uint64_t base_seed() const { return base_seed_; }

  /// Runs fn(ctx) for one point per entry of `names` (the point labels in
  /// the sweep report) and returns the per-point results in order.
  /// Callable several times; later calls continue the task-index space.
  template <typename Fn>
  auto run(const std::vector<std::string>& names, Fn&& fn) {
    now::exp::SweepOptions opt;
    opt.jobs = jobs_;
    opt.base_seed = base_seed_;
    opt.first_index = next_index_;
    std::vector<double> wall;
    opt.wall_ms = &wall;
    const auto t0 = std::chrono::steady_clock::now();
    auto results = now::exp::run_sweep(names.size(), fn, opt);
    wall_ms_ += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    for (std::size_t i = 0; i < names.size(); ++i) {
      busy_ms_ += wall[i];
      points_.emplace_back(names[i], wall[i]);
    }
    next_index_ += names.size();
    return results;
  }

  /// Writes the --sweep-json report (no-op without the flag; idempotent).
  void write() {
    if (path_.empty() || written_) return;
    written_ = true;
    JsonReport r(path_, benchmark_ + ".sweep", "wall_ms");
    r.method("now::exp::run_sweep; speedup = busy_ms / wall_ms (serial "
             "compute bought per elapsed unit)");
    for (const auto& [name, ms] : points_) r.value(name, "wall_ms", ms);
    r.value("aggregate", "jobs", jobs());
    r.value("aggregate", "hardware_concurrency",
            std::thread::hardware_concurrency());
    r.value("aggregate", "points", static_cast<double>(points_.size()));
    r.value("aggregate", "wall_ms", wall_ms_);
    r.value("aggregate", "busy_ms", busy_ms_);
    r.value("aggregate", "speedup", wall_ms_ > 0 ? busy_ms_ / wall_ms_ : 0);
    r.note("wall times are nondeterministic; every simulated result and "
           "stdout byte is --jobs-invariant");
    r.write();
  }

 private:
  std::string benchmark_;
  std::string path_;
  unsigned jobs_ = 0;
  unsigned threads_ = 1;
  std::uint64_t base_seed_ = 1;
  std::size_t next_index_ = 0;
  double wall_ms_ = 0;
  double busy_ms_ = 0;
  std::vector<std::pair<std::string, double>> points_;
  bool written_ = false;
};

}  // namespace now::bench
