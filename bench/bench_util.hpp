// Shared formatting helpers for the reproduction benches.
//
// Every bench prints the paper's reported numbers next to the reproduced
// ones so the comparison is visible in the raw output (EXPERIMENTS.md
// records the same pairs).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace now::bench {

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vprintf(fmt, ap);
  va_end(ap);
  std::printf("\n");
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

}  // namespace now::bench
