// Shared formatting helpers for the reproduction benches.
//
// Every bench prints the paper's reported numbers next to the reproduced
// ones so the comparison is visible in the raw output (EXPERIMENTS.md
// records the same pairs).
// Passing `--json <path>` to a bench additionally writes the reproduced
// numbers as a machine-readable report in the BENCH_engine.json shape
// ({benchmark, units, machine, method, results, notes}) via JsonReport.
#pragma once

#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace now::bench {

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vprintf(fmt, ap);
  va_end(ap);
  std::printf("\n");
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

namespace detail {
inline void append_json_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

inline void append_json_number(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) &&
      std::fabs(v) < 9.0e15) {  // integral and exactly representable
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(v));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", std::isfinite(v) ? v : 0.0);
    out += buf;
  }
}
}  // namespace detail

/// Machine-readable bench results, in the shape of BENCH_engine.json:
/// {"benchmark", "units", "machine", "method", "results": {name: {field:
/// value}}, "notes": [...]}.  Construct it from main's argv: it activates
/// only when `--json <path>` was passed, and writes the file when write()
/// is called (or at destruction).  Insertion order of results and fields
/// is preserved, so output is deterministic for a deterministic bench.
class JsonReport {
 public:
  JsonReport(int argc, char** argv, std::string benchmark,
             std::string units)
      : benchmark_(std::move(benchmark)), units_(std::move(units)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
    }
#if defined(__clang__)
    machine_ = std::string("clang ") + __clang_version__;
#elif defined(__VERSION__)
    machine_ = std::string("g++ ") + __VERSION__;
#endif
  }
  ~JsonReport() { write(); }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  bool active() const { return !path_.empty(); }
  void machine(std::string m) { machine_ = std::move(m); }
  void method(std::string m) { method_ = std::move(m); }
  void note(std::string text) { notes_.push_back(std::move(text)); }

  /// Sets results[result][field] = v (fields merge into an existing
  /// result row of the same name).
  void value(const std::string& result, const std::string& field,
             double v) {
    for (auto& r : results_) {
      if (r.name == result) {
        r.fields.emplace_back(field, v);
        return;
      }
    }
    results_.push_back({result, {{field, v}}});
  }

  /// Writes the report if `--json` was given; true on success or when
  /// inactive.  Idempotent: the destructor's write is a no-op after a
  /// successful explicit call.
  bool write() {
    if (path_.empty() || written_) return true;
    std::string out = "{\n";
    const auto field = [&out](const char* key, const std::string& v,
                              bool comma) {
      out += "  \"";
      out += key;
      out += "\": \"";
      detail::append_json_escaped(out, v);
      out += comma ? "\",\n" : "\"\n";
    };
    field("benchmark", benchmark_, true);
    field("units", units_, true);
    field("machine", machine_, true);
    field("method", method_, true);
    out += "  \"results\": {";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      out += i ? ",\n    \"" : "\n    \"";
      detail::append_json_escaped(out, results_[i].name);
      out += "\": {";
      const auto& fields = results_[i].fields;
      for (std::size_t j = 0; j < fields.size(); ++j) {
        out += j ? ", \"" : "\"";
        detail::append_json_escaped(out, fields[j].first);
        out += "\": ";
        detail::append_json_number(out, fields[j].second);
      }
      out += "}";
    }
    out += results_.empty() ? "},\n" : "\n  },\n";
    out += "  \"notes\": [";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      out += i ? ",\n    \"" : "\n    \"";
      detail::append_json_escaped(out, notes_[i]);
      out += "\"";
    }
    out += notes_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    std::ofstream f(path_, std::ios::trunc);
    if (!f) return false;
    f << out;
    written_ = f.good();
    return written_;
  }

 private:
  struct Result {
    std::string name;
    std::vector<std::pair<std::string, double>> fields;
  };

  std::string path_;
  std::string benchmark_;
  std::string units_;
  std::string machine_;
  std::string method_;
  std::vector<Result> results_;
  std::vector<std::string> notes_;
  bool written_ = false;
};

}  // namespace now::bench
