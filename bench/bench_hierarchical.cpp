// Building-scale fabric: RPC traffic over the hierarchical fat tree, swept
// across node count x traffic locality x spine oversubscription.
//
// The paper's NOW is a *building*, not a lab: thousands of machines behind
// edge switches and an oversubscribed spine.  This bench puts numbers on
// the defining trade of that topology — rack-local traffic never touches a
// trunk and is immune to the oversubscription knob, while cross-rack
// traffic queues on the spine trunks and slows as they thin out.
//
// Every sweep point is an independent simulation (--jobs N parallelizes
// them); inside each point the cluster can itself run partitioned
// (--threads N, lanes aligned to racks).  stdout is pure simulated results
// — integer op counts, latency sums, FNV digests — and is byte-identical
// across every --jobs and --threads value; wall-clock, rss, and events/sec
// go to --json only.
//
//   --nodes N     cap the size axis (default sweep: 256 and 1024)
//   --threads N   partition lanes inside each simulation (default 1)
//   --sim-ms M    simulated horizon per point (default 20)
//   --jobs N      sweep points in parallel (stdout invariant)
//   --json PATH   machine-readable report (BENCH_hierarchical.json)
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "net/hierarchical.hpp"
#include "sim/random.hpp"

namespace {

using namespace now;

constexpr proto::MethodId kEcho = 91;
constexpr std::uint32_t kReqBytes = 4096;  // one page: 51 us on a trunk
constexpr std::uint32_t kRespBytes = 64;
constexpr std::uint32_t kNodesPerRack = 32;

struct NodeState {
  sim::Pcg32 rng{1};
  std::uint64_t ops = 0;
  std::uint64_t latency_ticks = 0;
};

struct PointResult {
  std::uint64_t ops = 0;
  std::uint64_t latency_ticks = 0;
  std::uint64_t digest = 0;
  std::uint64_t rack_local_packets = 0;
  std::uint64_t cross_rack_packets = 0;
  double wall_ms = 0;  // measurement: --json only
};

std::uint32_t parse_u32(int argc, char** argv, const char* flag,
                        std::uint32_t def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      const unsigned long v = std::strtoul(argv[i + 1], nullptr, 10);
      if (v > 0) return static_cast<std::uint32_t>(v);
    }
  }
  return def;
}

std::uint64_t digest(const std::vector<NodeState>& st) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const NodeState& s : st) {
    mix(s.ops);
    mix(s.latency_ticks);
  }
  return h;
}

// One sweep point: a kBuildingNow cluster where every node runs a closed
// RPC loop against a fixed partner — the next node in its own rack
// (rack-local) or the node half the building away (cross-rack, which with
// size a multiple of the rack size pairs rack r with rack r + R/2).  Each
// destination receives from exactly one source, so host downlinks never
// contend and the cross-rack latency delta is pure trunk queueing.
//
// `seed` depends on (size, traffic) but NOT on the oversubscription, so
// the points along the oversub axis run the identical workload: the
// rack-local rows print the same ops/latency/digest at 1:1 and 8:1 —
// trunks literally do not appear on their path — while cross-rack rows
// diverge only through the fabric.
PointResult run_point(std::uint64_t seed, std::uint32_t nodes,
                      double oversub, bool cross_rack, unsigned threads,
                      sim::SimTime horizon) {
  const auto w0 = std::chrono::steady_clock::now();
  ClusterConfig cfg;
  cfg.workstations = nodes;
  cfg.fabric = Fabric::kBuildingNow;
  cfg.building = net::building_now((nodes + kNodesPerRack - 1) / kNodesPerRack,
                                   kNodesPerRack, oversub);
  cfg.with_glunix = false;  // partition-clean: only the fabric is shared
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kNodeLocal;
  cfg.seed = seed;
  // No cfg.run: the seed must not vary per sweep point.  run_sweep still
  // installs each point's private metrics/tracer context on the worker
  // thread, and the cluster picks those up ambiently, so points stay
  // isolated under --jobs.
  Cluster c(cfg);

  auto state = std::make_shared<std::vector<NodeState>>(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    (*state)[i].rng = sim::Pcg32(seed * 7919 + i + 1);
    c.rpc().register_method(
        i, kEcho, [](net::NodeId, std::any req, proto::RpcLayer::ReplyFn r) {
          r(kRespBytes, std::move(req));
        });
  }

  const auto partner = [nodes, cross_rack](std::uint32_t i) -> std::uint32_t {
    if (cross_rack) return (i + nodes / 2) % nodes;
    const std::uint32_t base = (i / kNodesPerRack) * kNodesPerRack;
    const std::uint32_t width = std::min(kNodesPerRack, nodes - base);
    return base + (i - base + 1) % width;
  };

  auto issue = std::make_shared<std::function<void(std::uint32_t)>>();
  *issue = [&c, state, issue, partner, horizon](std::uint32_t i) {
    sim::Engine& e = c.network().engine_for(i);
    if (e.now() >= horizon) return;
    const sim::SimTime t0 = e.now();
    c.rpc().call(i, partner(i), kEcho, kReqBytes, std::any{},
                 [&c, state, issue, i, t0](std::any) {
                   NodeState& s = (*state)[i];
                   ++s.ops;
                   s.latency_ticks += static_cast<std::uint64_t>(
                       c.network().engine_for(i).now() - t0);
                   const sim::Duration think =
                       100 * sim::kMicrosecond +
                       static_cast<sim::Duration>(s.rng.next_below(
                           static_cast<std::uint32_t>(200 *
                                                      sim::kMicrosecond)));
                   c.network().engine_for(i).schedule_in(
                       think, [issue, i] {
                         if (*issue) (*issue)(i);
                       });
                 });
  };
  for (std::uint32_t i = 0; i < nodes; ++i) {
    const sim::Duration at =
        static_cast<sim::Duration>((*state)[i].rng.next_below(
            static_cast<std::uint32_t>(100 * sim::kMicrosecond)));
    c.network().engine_for(i).schedule_at(at, [issue, i] {
      if (*issue) (*issue)(i);
    });
  }

  c.run_until(horizon + 5 * sim::kMillisecond);  // drain in-flight echoes
  *issue = nullptr;

  PointResult r;
  for (const NodeState& s : *state) {
    r.ops += s.ops;
    r.latency_ticks += s.latency_ticks;
  }
  r.digest = digest(*state);
  const auto& hs =
      static_cast<net::HierarchicalNetwork&>(c.network()).hier_stats();
  r.rack_local_packets = hs.rack_local_packets;
  r.cross_rack_packets = hs.cross_rack_packets;
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - w0)
                  .count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "building-scale fabric - locality x oversubscription on the fat tree",
      "'A Case for NOW': building-wide NOWs ride hierarchical switched "
      "fabrics; rack locality is free, the spine is what you pay for");
  const std::uint32_t cap = now::bench::parse_nodes(argc, argv);
  const std::vector<std::uint32_t> sizes =
      now::bench::cap_axis({256, 1024}, cap);
  const std::vector<double> oversubs{1.0, 4.0, 8.0};
  const sim::SimTime horizon =
      static_cast<sim::SimTime>(parse_u32(argc, argv, "--sim-ms", 20)) *
      sim::kMillisecond;

  now::bench::JsonReport json(argc, argv, "bench/bench_hierarchical",
                              "mean_latency_us");
  json.method(
      "closed-loop 4 KB RPC echo per node, partner either the next node in "
      "the same rack or the node half the building away; 32-node racks on "
      "Myrinet-class links; spine thinned to oversubscription ratio; "
      "D-mod-k routing");
  now::bench::Sweep sweep(argc, argv, "bench/bench_hierarchical");
  const unsigned threads = sweep.threads();

  struct Point {
    std::uint32_t nodes;
    double oversub;
    bool cross;
    std::string name;
  };
  std::vector<Point> points;
  std::vector<std::string> names;
  for (const std::uint32_t n : sizes) {
    for (const double o : oversubs) {
      for (const bool cross : {false, true}) {
        Point p;
        p.nodes = n;
        p.oversub = o;
        p.cross = cross;
        p.name = "n" + std::to_string(n) + "_o" +
                 std::to_string(static_cast<int>(o)) +
                 (cross ? "_cross" : "_local");
        names.push_back(p.name);
        points.push_back(std::move(p));
      }
    }
  }

  const auto results = sweep.run(names, [&](now::exp::RunContext& ctx) {
    const Point& p = points[ctx.task_index];
    const std::uint64_t seed =
        sweep.base_seed() * 1000003ull + p.nodes * 31ull + (p.cross ? 1 : 0);
    return run_point(seed, p.nodes, p.oversub, p.cross, threads, horizon);
  });

  now::bench::row("%u nodes/rack; spine trunks per rack = 32/oversub; "
                  "simulated %u ms/point",
                  kNodesPerRack, parse_u32(argc, argv, "--sim-ms", 20));
  now::bench::row("");
  now::bench::row("%-7s %-6s %-9s %-11s %10s %10s %18s", "nodes", "racks",
                  "oversub", "traffic", "ops", "mean us", "digest");
  double mean_us[2][2] = {{0, 0}, {0, 0}};  // [cross][edge-vs-thin spine]
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const PointResult& r = results[i];
    const double us =
        r.ops ? sim::to_us(static_cast<sim::Duration>(r.latency_ticks /
                                                      r.ops))
              : 0.0;
    now::bench::row("%-7u %-6u %-9s %-11s %10llu %10.3f   %016llx",
                    p.nodes, (p.nodes + kNodesPerRack - 1) / kNodesPerRack,
                    (std::to_string(static_cast<int>(p.oversub)) + ":1")
                        .c_str(),
                    p.cross ? "cross-rack" : "rack-local",
                    static_cast<unsigned long long>(r.ops), us,
                    static_cast<unsigned long long>(r.digest));
    json.value(p.name, "ops", static_cast<double>(r.ops));
    json.value(p.name, "mean_latency_us", us);
    json.value(p.name, "digest_lo32",
               static_cast<double>(r.digest & 0xffffffffull));
    json.value(p.name, "rack_local_packets",
               static_cast<double>(r.rack_local_packets));
    json.value(p.name, "cross_rack_packets",
               static_cast<double>(r.cross_rack_packets));
    json.value(p.name, "wall_ms", r.wall_ms);
    if (p.nodes == sizes.back()) {
      if (p.oversub == oversubs.front()) mean_us[p.cross][0] = us;
      if (p.oversub == oversubs.back()) mean_us[p.cross][1] = us;
    }
  }

  now::bench::row("");
  now::bench::row("at %u nodes: rack-local latency %.3f -> %.3f us across "
                  "the oversubscription axis (the spine is invisible from "
                  "inside a rack);",
                  sizes.back(), mean_us[0][0], mean_us[0][1]);
  now::bench::row("cross-rack latency %.3f -> %.3f us as the spine thins "
                  "from %d:1 to %d:1 - trunk queueing, the price of a "
                  "cheap building-wide fabric.",
                  mean_us[1][0], mean_us[1][1],
                  static_cast<int>(oversubs.front()),
                  static_cast<int>(oversubs.back()));

  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  const double rss_mb = static_cast<double>(ru.ru_maxrss) / 1024.0;
  json.value("aggregate", "max_rss_mb", rss_mb);
  json.value("aggregate", "threads", threads);
  char prof[256];
  std::snprintf(prof, sizeof prof,
                "profile: at %u nodes cross-rack mean latency went %.1f -> "
                "%.1f us from 1:1 to 8:1 oversubscription while rack-local "
                "stayed at %.1f us; peak rss %.0f MB - memory scales with "
                "nodes (flat SoA busy/gauge arrays), time with packets",
                sizes.back(), mean_us[1][0], mean_us[1][1], mean_us[0][1],
                rss_mb);
  json.note(prof);
  json.note("saturation: the hot path is per-hop busy-horizon arithmetic "
            "on flat arrays; the sweep saturates the spine trunks "
            "(simulated) long before the simulator itself - events/sec is "
            "bounded by the slab engine, not by fabric bookkeeping");
  json.note("stdout is byte-identical across --jobs and --threads; wall_ms "
            "and rss are measurement");
  return 0;
}
