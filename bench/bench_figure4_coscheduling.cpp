// Figure 4: slowdown of four parallel programs under local scheduling,
// referenced to coscheduling, as the number of competing jobs grows.
//
// Each (program, competing-jobs) cell is an independent pair of
// simulations — local and coscheduled — so the 16 cells run as a parallel
// sweep (--jobs N) with byte-identical output to the serial run.  Every
// cell constructs all of its randomness (node quantum jitter, filler
// phases) from its own derived seed.
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exp/seed.hpp"
#include "glunix/coschedule.hpp"
#include "glunix/spmd.hpp"
#include "net/presets.hpp"
#include "net/switched.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"

namespace {

using namespace now;
using namespace now::sim::literals;

constexpr int kNodes = 8;

struct Rig {
  explicit Rig(std::uint64_t seed) {
    network = std::make_unique<net::SwitchedNetwork>(engine,
                                                     net::cm5_fabric());
    mux = std::make_unique<proto::NicMux>(*network);
    proto::AmParams ap;
    ap.costs = proto::am_cm5();
    ap.window = 64;
    am = std::make_unique<proto::AmLayer>(*mux, ap);
    for (int i = 0; i < kNodes; ++i) {
      os::NodeParams p;
      p.cpu.quantum_jitter = 0.25;  // real nodes' schedules drift
      p.cpu.seed = exp::derive_seed(seed, static_cast<std::uint64_t>(i));
      nodes.push_back(std::make_unique<os::Node>(
          engine, static_cast<net::NodeId>(i), p));
      mux->attach_node(*nodes.back());
    }
  }
  std::vector<os::Node*> ptrs() {
    std::vector<os::Node*> v;
    for (auto& n : nodes) v.push_back(n.get());
    return v;
  }
  sim::Engine engine;
  std::unique_ptr<net::SwitchedNetwork> network;
  std::unique_ptr<proto::NicMux> mux;
  std::unique_ptr<proto::AmLayer> am;
  std::vector<std::unique_ptr<os::Node>> nodes;
};

glunix::SpmdParams app_params(glunix::CommPattern pattern) {
  glunix::SpmdParams p;
  p.pattern = pattern;
  p.iterations = 30;
  p.compute_per_iteration = 15_ms;
  p.msg_bytes = 1024;
  p.burst = 24;  // fixed-partner column overruns the 64-credit window
  p.rpcs_per_iteration = 6;
  return p;
}

// Both halves of a cell (local, coscheduled) rebuild the identical rig
// from the same cell seed: the comparison stays controlled, and the cell
// is a pure function of its seed.
double run_once(glunix::CommPattern pattern, int competing, bool coscheduled,
                std::uint64_t seed) {
  Rig rig(seed);
  sim::Duration app_time = 0;
  glunix::SpmdParams ap = app_params(pattern);
  ap.seed = exp::derive_seed(seed, 99);
  glunix::SpmdApp app(*rig.am, rig.ptrs(), ap,
                      [&](sim::Duration d) { app_time = d; });
  std::vector<std::unique_ptr<glunix::SpmdApp>> fillers;
  for (int j = 0; j < competing; ++j) {
    auto cp = app_params(glunix::CommPattern::kComputeOnly);
    cp.iterations = 1'000'000;  // competitors outlive the measured app
    cp.seed = exp::derive_seed(seed, 100 + static_cast<std::uint64_t>(j));
    fillers.push_back(std::make_unique<glunix::SpmdApp>(
        *rig.am, rig.ptrs(), cp, nullptr));
  }
  app.start();
  for (auto& f : fillers) f->start();
  std::unique_ptr<glunix::Coscheduler> cs;
  if (coscheduled && competing > 0) {
    cs = std::make_unique<glunix::Coscheduler>(rig.engine, 100_ms);
    cs->add_gang(app.gang());
    for (auto& f : fillers) cs->add_gang(f->gang());
    cs->start();
  }
  rig.engine.run_until(60 * 60 * sim::kSecond);
  return app.finished() ? sim::to_sec(app_time) : -1.0;
}

struct Cell {
  double local = 0;
  double cosched = 0;
};

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "Figure 4 - local scheduling vs coscheduling, by competing jobs",
      "'A Case for NOW', Figure 4 (slowdown referenced to coscheduling; "
      "CM-5-class nodes, user-level polling Active Messages)");
  now::bench::Sweep sweep(argc, argv, "bench/bench_figure4_coscheduling");

  now::bench::row("%-14s %8s %12s %12s %10s", "program", "jobs",
                  "local (s)", "cosched (s)", "slowdown");
  const std::vector<glunix::CommPattern> patterns{
      glunix::CommPattern::kRandomSmall, glunix::CommPattern::kColumn,
      glunix::CommPattern::kEm3d, glunix::CommPattern::kConnect};
  std::vector<std::string> names;
  for (const auto pattern : patterns) {
    for (int competing = 0; competing <= 3; ++competing) {
      names.push_back(std::string(glunix::pattern_name(pattern)) + "_jobs" +
                      std::to_string(competing));
    }
  }
  const auto cells = sweep.run(names, [&](now::exp::RunContext& ctx) {
    const auto pattern = patterns[ctx.task_index / 4];
    const int competing = static_cast<int>(ctx.task_index % 4);
    Cell c;
    c.local = run_once(pattern, competing, false, ctx.seed);
    c.cosched = run_once(pattern, competing, true, ctx.seed);
    return c;
  });

  for (std::size_t i = 0; i < cells.size(); ++i) {
    now::bench::row("%-14s %8d %12.2f %12.2f %9.2fx",
                    glunix::pattern_name(patterns[i / 4]),
                    static_cast<int>(i % 4), cells[i].local,
                    cells[i].cosched, cells[i].local / cells[i].cosched);
  }
  now::bench::row("");
  now::bench::row("paper's Figure 4 reading:");
  now::bench::row("  - random small messages: not significantly slowed "
                  "(buffering absorbs them)");
  now::bench::row("  - Column: slow despite infrequent communication "
                  "(overflows destination buffers)");
  now::bench::row("  - Em3d: suffers at synchronization points");
  now::bench::row("  - Connect: performs very poorly (frequent remote "
                  "data dependences)");
  return 0;
}
