// Ablation: network-RAM readahead.  Sequential sweeps (the multigrid
// pattern of Figure 2) telegraph their next fault; prefetching the
// successor page overlaps fetch latency with compute and closes most of
// the gap to all-in-DRAM.
//
// The problem sizes are independent sweep points (--jobs N); each point
// runs its DRAM / netRAM / netRAM+readahead trio serially inside the
// point (the simulation itself is deterministic — no RNG involved).
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/presets.hpp"
#include "net/switched.hpp"
#include "netram/multigrid.hpp"
#include "netram/pager.hpp"
#include "netram/registry.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "proto/rpc.hpp"
#include "sim/engine.hpp"

namespace {

using namespace now;

double run(std::uint64_t problem_mb, bool readahead, bool dram_baseline,
           std::uint64_t* prefetch_hits = nullptr) {
  sim::Engine engine;
  net::SwitchedNetwork atm(engine, net::atm_155mbps());
  proto::NicMux mux(atm);
  proto::AmLayer am(mux, proto::AmParams{});
  proto::RpcLayer rpc(am);
  std::vector<std::unique_ptr<os::Node>> nodes;
  for (int i = 0; i < 9; ++i) {
    os::NodeParams p;
    p.dram_bytes = 64ull << 20;
    nodes.push_back(std::make_unique<os::Node>(
        engine, static_cast<net::NodeId>(i), p));
    mux.attach_node(*nodes.back());
    rpc.bind(*nodes.back());
  }
  const std::uint32_t page = 8192;
  const auto frames = static_cast<std::uint32_t>(
      ((dram_baseline ? 512ull : 32ull) << 20) / page);

  netram::IdleMemoryRegistry registry;
  for (int i = 1; i < 9; ++i) {
    registry.add_donor(*nodes[i]);
    netram::install_donor_service(rpc, *nodes[i]);
  }
  netram::NetworkRamPager pager(*nodes[0], page, registry, rpc, readahead);
  os::AddressSpace space(engine, frames, page, pager);
  netram::MultigridParams mp;
  mp.problem_bytes = problem_mb << 20;
  mp.sweeps = 3;
  sim::Duration elapsed = 0;
  netram::MultigridRun mg(*nodes[0], space, mp,
                          [&](sim::Duration d) { elapsed = d; });
  mg.start();
  engine.run();
  if (prefetch_hits != nullptr) *prefetch_hits = pager.stats().prefetch_hits;
  return sim::to_sec(elapsed);
}

struct Point {
  double dram = 0;
  double plain = 0;
  double ra = 0;
  std::uint64_t hits = 0;
};

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "Ablation - network-RAM readahead on the multigrid sweep",
      "extension of Figure 2: prefetching the successor page");
  now::bench::Sweep sweep(argc, argv, "bench/bench_ablation_readahead");

  now::bench::row("%-14s %12s %14s %16s %14s", "problem (MB)", "DRAM (s)",
                  "netRAM (s)", "netRAM+RA (s)", "RA overhead");
  const std::vector<std::uint64_t> sizes{64, 96, 128};
  std::vector<std::string> names;
  for (const std::uint64_t mb : sizes) {
    names.push_back("problem_mb_" + std::to_string(mb));
  }
  const auto points = sweep.run(names, [&](now::exp::RunContext& ctx) {
    const std::uint64_t mb = sizes[ctx.task_index];
    Point p;
    p.dram = run(mb, false, true);
    p.plain = run(mb, false, false);
    p.ra = run(mb, true, false, &p.hits);
    return p;
  });
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Point& p = points[i];
    now::bench::row("%-14llu %12.1f %14.1f %16.1f %13.0f%%  "
                    "(%llu prefetch hits)",
                    static_cast<unsigned long long>(sizes[i]), p.dram,
                    p.plain, p.ra, 100.0 * (p.ra / p.dram - 1.0),
                    static_cast<unsigned long long>(p.hits));
  }
  now::bench::row("");
  now::bench::row("expected shape: plain netRAM pays the full remote fetch "
                  "per fault (~30%% over");
  now::bench::row("DRAM); readahead overlaps fetches with compute and "
                  "closes most of that gap.");
  return 0;
}
