// xFS vs the central server it replaces: throughput and availability.
//
// "Any centralized resource will become a bottleneck with enough users" —
// sweep the client count over the same workload on both architectures and
// watch the central server's disk and CPU saturate while xFS spreads the
// load over everyone.  Then kill one machine in each design.
//
// The five client counts are independent sweep points (--jobs N).  Both
// designs inside a point draw the identical request stream from the
// point's derived seed, so the comparison stays controlled and the point
// is a pure function of (base seed, index).
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "sim/random.hpp"
#include "xfs/central_server.hpp"

namespace {

using namespace now;

struct RunResult {
  double ops_per_sec = 0;
  double mean_ms = 0;
};

// Each client issues `per_client` ops with 20 ms think time; reads draw
// from a shared pool with Zipf-ish reuse, 25 % writes.
RunResult run_central(std::uint32_t nclients, int per_client,
                      exp::RunContext& ctx, unsigned threads) {
  ClusterConfig cfg;
  cfg.workstations = nclients + 1;  // +1 server
  cfg.with_glunix = false;
  // --threads is accepted but the workload is not partition-clean: the
  // CentralServerFs driver lives outside the cluster and every request
  // crosses client/server node state.  kAllGlobal keeps every event on
  // the serial path — output is byte-identical at any --threads value by
  // construction (same pattern as bench_availability).
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kAllGlobal;
  cfg.run = &ctx;
  Cluster c(cfg);
  xfs::CentralFsParams p;
  p.client_cache_blocks = 64;
  std::vector<os::Node*> clients;
  for (std::uint32_t i = 1; i <= nclients; ++i) {
    clients.push_back(&c.node(i));
  }
  xfs::CentralServerFs fs(c.rpc(), c.node(0), clients, p);
  fs.start();

  auto rng = std::make_shared<sim::Pcg32>(ctx.seed);
  auto total_ms = std::make_shared<double>(0);
  auto done_ops = std::make_shared<int>(0);
  auto issue = std::make_shared<
      std::function<void(std::uint32_t, int)>>();
  *issue = [&c, &fs, rng, total_ms, done_ops, issue](std::uint32_t client,
                                                     int remaining) {
    if (remaining == 0) return;
    const xfs::BlockId b = rng->next_below(2'000);
    const sim::SimTime t0 = c.engine().now();
    auto cont = [&c, client, remaining, t0, total_ms, done_ops,
                 issue](bool) {
      *total_ms += sim::to_ms(c.engine().now() - t0);
      ++*done_ops;
      c.engine().schedule_in(20 * sim::kMillisecond,
                             [issue, client, remaining] {
                               if (*issue) (*issue)(client, remaining - 1);
                             });
    };
    if (rng->bernoulli(0.25)) {
      fs.write(client, b, cont);
    } else {
      fs.read(client, b, cont);
    }
  };
  for (std::uint32_t cl = 1; cl <= nclients; ++cl) (*issue)(cl, per_client);
  c.run();
  *issue = nullptr;
  RunResult r;
  r.ops_per_sec = *done_ops / sim::to_sec(c.engine().now());
  r.mean_ms = *total_ms / *done_ops;
  return r;
}

RunResult run_xfs(std::uint32_t nclients, int per_client,
                  exp::RunContext& ctx, unsigned threads) {
  ClusterConfig cfg;
  cfg.workstations = nclients + 1;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 64;
  cfg.xfs.segment_blocks = std::min<std::uint32_t>(nclients, 16);
  // xFS manager/RAID traffic spans nodes; see run_central's note.
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kAllGlobal;
  cfg.run = &ctx;
  Cluster c(cfg);

  auto rng = std::make_shared<sim::Pcg32>(ctx.seed);
  auto total_ms = std::make_shared<double>(0);
  auto done_ops = std::make_shared<int>(0);
  auto issue = std::make_shared<
      std::function<void(std::uint32_t, int)>>();
  *issue = [&c, rng, total_ms, done_ops, issue](std::uint32_t client,
                                                int remaining) {
    if (remaining == 0) return;
    const xfs::BlockId b = rng->next_below(2'000);
    const sim::SimTime t0 = c.engine().now();
    auto cont = [&c, client, remaining, t0, total_ms, done_ops, issue] {
      *total_ms += sim::to_ms(c.engine().now() - t0);
      ++*done_ops;
      c.engine().schedule_in(20 * sim::kMillisecond,
                             [issue, client, remaining] {
                               if (*issue) (*issue)(client, remaining - 1);
                             });
    };
    if (rng->bernoulli(0.25)) {
      c.fs().write(client, b, cont);
    } else {
      c.fs().read(client, b, cont);
    }
  };
  for (std::uint32_t cl = 1; cl <= nclients; ++cl) (*issue)(cl, per_client);
  c.run();
  *issue = nullptr;
  RunResult r;
  r.ops_per_sec = *done_ops / sim::to_sec(c.engine().now());
  r.mean_ms = *total_ms / *done_ops;
  return r;
}

struct Point {
  RunResult central;
  RunResult xfs;
};

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "xFS vs central-server file service - scalability",
      "'A Case for NOW', xFS motivation: 'any centralized resource will "
      "become a bottleneck with enough users'");
  now::bench::Sweep sweep(argc, argv, "bench/bench_xfs_vs_central");

  now::bench::row("%-10s %16s %14s %16s %14s", "clients",
                  "central ops/s", "central ms", "xFS ops/s", "xFS ms");
  const std::vector<std::uint32_t> client_counts{2, 4, 8, 16, 24};
  std::vector<std::string> names;
  for (const std::uint32_t n : client_counts) {
    names.push_back("clients_" + std::to_string(n));
  }
  const auto points = sweep.run(names, [&](now::exp::RunContext& ctx) {
    const std::uint32_t n = client_counts[ctx.task_index];
    Point p;
    p.central = run_central(n, 120, ctx, sweep.threads());
    p.xfs = run_xfs(n, 120, ctx, sweep.threads());
    return p;
  });
  for (std::size_t i = 0; i < points.size(); ++i) {
    now::bench::row("%-10u %16.0f %14.2f %16.0f %14.2f", client_counts[i],
                    points[i].central.ops_per_sec, points[i].central.mean_ms,
                    points[i].xfs.ops_per_sec, points[i].xfs.mean_ms);
  }
  now::bench::row("");
  now::bench::row("expected shape: the central design's response time "
                  "grows with client count as");
  now::bench::row("the one server's disk queue deepens; xFS response "
                  "stays flat because managers,");
  now::bench::row("caches, and disks scale with the building.");
  now::bench::row("");
  now::bench::row("availability: kill one machine -");
  now::bench::row("  central server dies  -> every client op fails "
                  "(stats.failed_ops)");
  now::bench::row("  one xFS node dies    -> manager takeover + degraded "
                  "RAID reads (see bench_xfs)");
  return 0;
}
