// xFS vs the central server it replaces: throughput and availability.
//
// "Any centralized resource will become a bottleneck with enough users" —
// sweep the client count over the same workload on both architectures and
// watch the central server's disk and CPU saturate while xFS spreads the
// load over everyone.  Then kill one machine in each design.
//
// The five client counts are independent sweep points (--jobs N).  Both
// designs inside a point draw the identical request stream from the
// point's derived seed, so the comparison stays controlled and the point
// is a pure function of (base seed, index).
#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "replay/cursor.hpp"
#include "replay/driver.hpp"
#include "sim/random.hpp"
#include "xfs/central_server.hpp"

namespace {

using namespace now;

struct RunResult {
  double ops_per_sec = 0;
  double mean_ms = 0;
};

// Each client issues `per_client` ops with 20 ms think time; reads draw
// from a shared pool with Zipf-ish reuse, 25 % writes.
RunResult run_central(std::uint32_t nclients, int per_client,
                      exp::RunContext& ctx, unsigned threads) {
  ClusterConfig cfg;
  cfg.workstations = nclients + 1;  // +1 server
  cfg.with_glunix = false;
  // --threads is accepted but the workload is not partition-clean: the
  // CentralServerFs driver lives outside the cluster and every request
  // crosses client/server node state.  kAllGlobal keeps every event on
  // the serial path — output is byte-identical at any --threads value by
  // construction (same pattern as bench_availability).
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kAllGlobal;
  cfg.run = &ctx;
  Cluster c(cfg);
  xfs::CentralFsParams p;
  p.client_cache_blocks = 64;
  std::vector<os::Node*> clients;
  for (std::uint32_t i = 1; i <= nclients; ++i) {
    clients.push_back(&c.node(i));
  }
  xfs::CentralServerFs fs(c.rpc(), c.node(0), clients, p);
  fs.start();

  auto rng = std::make_shared<sim::Pcg32>(ctx.seed);
  auto total_ms = std::make_shared<double>(0);
  auto done_ops = std::make_shared<int>(0);
  auto issue = std::make_shared<
      std::function<void(std::uint32_t, int)>>();
  *issue = [&c, &fs, rng, total_ms, done_ops, issue](std::uint32_t client,
                                                     int remaining) {
    if (remaining == 0) return;
    const xfs::BlockId b = rng->next_below(2'000);
    const sim::SimTime t0 = c.engine().now();
    auto cont = [&c, client, remaining, t0, total_ms, done_ops,
                 issue](bool) {
      *total_ms += sim::to_ms(c.engine().now() - t0);
      ++*done_ops;
      c.engine().schedule_in(20 * sim::kMillisecond,
                             [issue, client, remaining] {
                               if (*issue) (*issue)(client, remaining - 1);
                             });
    };
    if (rng->bernoulli(0.25)) {
      fs.write(client, b, cont);
    } else {
      fs.read(client, b, cont);
    }
  };
  for (std::uint32_t cl = 1; cl <= nclients; ++cl) (*issue)(cl, per_client);
  c.run();
  *issue = nullptr;
  RunResult r;
  r.ops_per_sec = *done_ops / sim::to_sec(c.engine().now());
  r.mean_ms = *total_ms / *done_ops;
  return r;
}

RunResult run_xfs(std::uint32_t nclients, int per_client,
                  exp::RunContext& ctx, unsigned threads) {
  ClusterConfig cfg;
  cfg.workstations = nclients + 1;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 64;
  cfg.xfs.segment_blocks = std::min<std::uint32_t>(nclients, 16);
  // xFS manager/RAID traffic spans nodes; see run_central's note.
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kAllGlobal;
  cfg.run = &ctx;
  Cluster c(cfg);

  auto rng = std::make_shared<sim::Pcg32>(ctx.seed);
  auto total_ms = std::make_shared<double>(0);
  auto done_ops = std::make_shared<int>(0);
  auto issue = std::make_shared<
      std::function<void(std::uint32_t, int)>>();
  *issue = [&c, rng, total_ms, done_ops, issue](std::uint32_t client,
                                                int remaining) {
    if (remaining == 0) return;
    const xfs::BlockId b = rng->next_below(2'000);
    const sim::SimTime t0 = c.engine().now();
    auto cont = [&c, client, remaining, t0, total_ms, done_ops, issue] {
      *total_ms += sim::to_ms(c.engine().now() - t0);
      ++*done_ops;
      c.engine().schedule_in(20 * sim::kMillisecond,
                             [issue, client, remaining] {
                               if (*issue) (*issue)(client, remaining - 1);
                             });
    };
    if (rng->bernoulli(0.25)) {
      c.fs().write(client, b, cont);
    } else {
      c.fs().read(client, b, cont);
    }
  };
  for (std::uint32_t cl = 1; cl <= nclients; ++cl) (*issue)(cl, per_client);
  c.run();
  *issue = nullptr;
  RunResult r;
  r.ops_per_sec = *done_ops / sim::to_sec(c.engine().now());
  r.mean_ms = *total_ms / *done_ops;
  return r;
}

struct Point {
  RunResult central;
  RunResult xfs;
};

struct ReplayResult {
  double ops_per_sec = 0;
  double mean_ms = 0;
  replay::ReplayStats stats;
};

// Replays a recorded trace against either design.  Open loop re-offers
// each record at its recorded (scaled) instant; closed loop ("afap")
// keeps one request per recorded client outstanding and ignores the
// timestamps — the capacity measurement.  Trace clients fold onto the
// cluster's client nodes and recorded blocks onto the bench's 2,000-block
// working set, so both designs see exactly the recorded reference string.
ReplayResult run_replay(const std::string& path, bool use_xfs,
                        bool open_loop, double time_scale,
                        const replay::TraceSummary& ts, exp::RunContext& ctx,
                        unsigned threads) {
  const std::uint32_t nclients = std::max<std::uint32_t>(ts.clients, 1);
  ClusterConfig cfg;
  cfg.workstations = nclients + 1;
  cfg.with_glunix = false;
  cfg.with_xfs = use_xfs;
  if (use_xfs) {
    cfg.xfs.client_cache_blocks = 64;
    cfg.xfs.segment_blocks = std::min<std::uint32_t>(nclients, 16);
  }
  // Not partition-clean (see run_central's note): kAllGlobal keeps output
  // byte-identical at any --threads value.
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kAllGlobal;
  cfg.run = &ctx;
  Cluster c(cfg);

  xfs::CentralFsParams p;
  p.client_cache_blocks = 64;
  std::vector<os::Node*> clients;
  for (std::uint32_t i = 1; i <= nclients; ++i) {
    clients.push_back(&c.node(i));
  }
  std::unique_ptr<xfs::CentralServerFs> fs;
  if (!use_xfs) {
    fs = std::make_unique<xfs::CentralServerFs>(c.rpc(), c.node(0), clients,
                                                p);
    fs->start();
  }

  auto total_ms = std::make_shared<double>(0);
  auto cur = replay::open_trace(path);
  replay::IssueFn issue = [&c, &fs, use_xfs, nclients, total_ms](
                              const trace::FsAccess& a,
                              std::function<void()> done) {
    const std::uint32_t client = 1 + a.client % nclients;
    const xfs::BlockId b = a.block % 2'000;
    const sim::SimTime t0 = c.engine().now();
    if (use_xfs) {
      auto cont = [&c, t0, total_ms, done = std::move(done)] {
        *total_ms += sim::to_ms(c.engine().now() - t0);
        done();
      };
      if (a.is_write) {
        c.fs().write(client, b, cont);
      } else {
        c.fs().read(client, b, cont);
      }
    } else {
      auto cont = [&c, t0, total_ms, done = std::move(done)](bool) {
        *total_ms += sim::to_ms(c.engine().now() - t0);
        done();
      };
      if (a.is_write) {
        fs->write(client, b, cont);
      } else {
        fs->read(client, b, cont);
      }
    }
  };

  ReplayResult r;
  if (open_loop) {
    replay::OpenLoopReplay drv(c.engine(), *cur, time_scale, issue);
    drv.start();
    c.run();
    r.stats = drv.stats();
  } else {
    replay::ClosedLoopReplay drv(c.engine(), *cur, nclients, issue);
    drv.start();
    c.run();
    r.stats = drv.stats();
  }
  if (r.stats.completed > 0) {
    r.ops_per_sec = static_cast<double>(r.stats.completed) /
                    sim::to_sec(c.engine().now());
    r.mean_ms = *total_ms / static_cast<double>(r.stats.completed);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "xFS vs central-server file service - scalability",
      "'A Case for NOW', xFS motivation: 'any centralized resource will "
      "become a bottleneck with enough users'");
  now::bench::Sweep sweep(argc, argv, "bench/bench_xfs_vs_central");

  now::bench::row("%-10s %16s %14s %16s %14s", "clients",
                  "central ops/s", "central ms", "xFS ops/s", "xFS ms");
  const std::vector<std::uint32_t> client_counts{2, 4, 8, 16, 24};
  std::vector<std::string> names;
  for (const std::uint32_t n : client_counts) {
    names.push_back("clients_" + std::to_string(n));
  }
  const auto points = sweep.run(names, [&](now::exp::RunContext& ctx) {
    const std::uint32_t n = client_counts[ctx.task_index];
    Point p;
    p.central = run_central(n, 120, ctx, sweep.threads());
    p.xfs = run_xfs(n, 120, ctx, sweep.threads());
    return p;
  });
  for (std::size_t i = 0; i < points.size(); ++i) {
    now::bench::row("%-10u %16.0f %14.2f %16.0f %14.2f", client_counts[i],
                    points[i].central.ops_per_sec, points[i].central.mean_ms,
                    points[i].xfs.ops_per_sec, points[i].xfs.mean_ms);
  }
  now::bench::row("");
  now::bench::row("expected shape: the central design's response time "
                  "grows with client count as");
  now::bench::row("the one server's disk queue deepens; xFS response "
                  "stays flat because managers,");
  now::bench::row("caches, and disks scale with the building.");
  now::bench::row("");
  now::bench::row("availability: kill one machine -");
  now::bench::row("  central server dies  -> every client op fails "
                  "(stats.failed_ops)");
  now::bench::row("  one xFS node dies    -> manager takeover + degraded "
                  "RAID reads (see bench_xfs)");

  // --- Recorded-trace replay (--trace <path>) ----------------------------
  // Four more sweep points: each design replays the recorded stream under
  // both drivers.  Open loop preserves the recorded arrival schedule
  // (response time under the workload as it happened); closed loop retires
  // the trace as fast as possible (capacity on the recorded reference
  // string).
  const std::string trace_path = now::bench::parse_trace(argc, argv);
  if (!trace_path.empty()) {
    const double scale = now::bench::parse_trace_scale(argc, argv);
    const auto ts = replay::summarize(trace_path);
    now::bench::JsonReport report(argc, argv,
                                  "bench/bench_xfs_vs_central.replay",
                                  "ops_per_sec, ms");
    report.method("recorded-trace replay via now::replay: open loop "
                  "(as-recorded schedule / --trace-scale) and closed loop "
                  "(as fast as possible, one outstanding request per "
                  "recorded client)");
    now::bench::row("");
    now::bench::row("replayed trace: %s", trace_path.c_str());
    now::bench::row("  format %s, %llu records, %u clients, %.1f s "
                    "recorded, time scale %gx",
                    replay::to_string(ts.format),
                    static_cast<unsigned long long>(ts.records),
                    std::max<std::uint32_t>(ts.clients, 1),
                    sim::to_sec(ts.last_at - ts.first_at), scale);
    now::bench::row("");
    now::bench::row("%-22s %12s %12s %12s %8s", "design / driver", "ops/s",
                    "mean ms", "completed", "late");
    struct RPoint {
      const char* name;
      bool use_xfs;
      bool open_loop;
    };
    const std::vector<RPoint> rpoints{
        {"central open-loop", false, true},
        {"xFS open-loop", true, true},
        {"central closed-afap", false, false},
        {"xFS closed-afap", true, false},
    };
    std::vector<std::string> rnames;
    for (const RPoint& rp : rpoints) {
      std::string n = std::string("replay_") + rp.name;
      for (char& ch : n) {
        if (ch == ' ' || ch == '-') ch = '_';
      }
      rnames.push_back(n);
    }
    const std::size_t replay_first = names.size();
    const auto rresults = sweep.run(rnames, [&](now::exp::RunContext& ctx) {
      const RPoint& rp = rpoints[ctx.task_index - replay_first];
      return run_replay(trace_path, rp.use_xfs, rp.open_loop, scale, ts,
                        ctx, sweep.threads());
    });
    for (std::size_t i = 0; i < rpoints.size(); ++i) {
      const ReplayResult& r = rresults[i];
      now::bench::row("%-22s %12.0f %12.2f %12llu %8llu", rpoints[i].name,
                      r.ops_per_sec, r.mean_ms,
                      static_cast<unsigned long long>(r.stats.completed),
                      static_cast<unsigned long long>(r.stats.late));
      report.value(rnames[i], "ops_per_sec", r.ops_per_sec);
      report.value(rnames[i], "mean_ms", r.mean_ms);
      report.value(rnames[i], "issued",
                   static_cast<double>(r.stats.issued));
      report.value(rnames[i], "completed",
                   static_cast<double>(r.stats.completed));
      report.value(rnames[i], "late", static_cast<double>(r.stats.late));
    }
    report.note("trace: " + trace_path);
    now::bench::row("");
    now::bench::row("open loop holds the recorded schedule (late = records "
                    "the design could not accept on time); closed loop is "
                    "the capacity bound on the recorded reference string.");
  }
  return 0;
}
