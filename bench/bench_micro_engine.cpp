// Microbenchmarks (google-benchmark): how fast is the simulator itself?
// Event throughput of the engine, CPU scheduler churn, and the full
// Active-Message round-trip machinery — wall-clock costs of the substrate,
// not simulated time.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "coopcache/coopcache.hpp"
#include "coopcache/lru.hpp"
#include "net/hierarchical.hpp"
#include "net/presets.hpp"
#include "net/switched.hpp"
#include "obs/metrics.hpp"
#include "os/node.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "trace/fs_trace.hpp"

namespace {

using namespace now;

void BM_EngineScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 10'000; ++i) {
      eng.schedule_at(i, [] {});
    }
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EngineScheduleDispatch);

void BM_EngineCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    std::vector<sim::EventId> ids;
    ids.reserve(10'000);
    for (int i = 0; i < 10'000; ++i) {
      ids.push_back(eng.schedule_at(i, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) eng.cancel(ids[i]);
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EngineCancelHeavy);

// Retransmit-timer churn: a wheel of pending timers that keep getting pushed
// out as (simulated) acks arrive, so they are rearmed many times and rarely
// fire — the am.cpp / cpu.cpp slice-timer pattern.  Uses the in-place
// reschedule() path; the seed engine had to cancel + re-schedule a fresh
// closure for every push.
void BM_EngineTimerWheelChurn(benchmark::State& state) {
  constexpr int kTimers = 256;
  constexpr int kPushes = 40;
  for (auto _ : state) {
    sim::Engine eng;
    std::vector<sim::EventId> timers(kTimers);
    int fired = 0;
    for (int t = 0; t < kTimers; ++t) {
      timers[t] = eng.schedule_at(1'000 + t, [&fired] { ++fired; });
    }
    for (int round = 1; round <= kPushes; ++round) {
      for (int t = 0; t < kTimers; ++t) {
        timers[t] = eng.reschedule(timers[t], 1'000 + 10 * round + t);
      }
    }
    benchmark::DoNotOptimize(eng.run());
    if (fired != kTimers) state.SkipWithError("timer lost in churn");
  }
  state.SetItemsProcessed(state.iterations() * kTimers * kPushes);
}
BENCHMARK(BM_EngineTimerWheelChurn);

void BM_Pcg32Stream(benchmark::State& state) {
  sim::Pcg32 rng(42);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += rng.next_u32();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Pcg32Stream);

void BM_CpuScheduleRoundRobin(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    os::CpuParams cp;
    cp.context_switch = 0;
    os::Cpu cpu(eng, cp);
    std::vector<os::ProcessId> pids(8);
    int done = 0;
    for (int i = 0; i < 8; ++i) {
      pids[i] = cpu.spawn("p", os::SchedClass::kBatch,
                          [&cpu, &pids, &done, i] {
                            cpu.compute(pids[i], 5 * sim::kSecond,
                                        [&cpu, &pids, &done, i] {
                                          ++done;
                                          cpu.exit(pids[i]);
                                        });
                          });
    }
    eng.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_CpuScheduleRoundRobin);

void BM_AmRoundTrips(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    net::SwitchedNetwork fabric(eng, net::myrinet());
    proto::NicMux mux(fabric);
    proto::AmLayer am(mux, proto::AmParams{});
    os::Node n0(eng, 0, os::NodeParams{});
    os::Node n1(eng, 1, os::NodeParams{});
    mux.attach_node(n0);
    mux.attach_node(n1);
    const auto e0 = am.create_endpoint(n0, proto::AmLayer::Mode::kInterrupt);
    const auto e1 = am.create_endpoint(n1, proto::AmLayer::Mode::kInterrupt);
    int pongs = 0;
    am.register_handler(e1, 1, [&](const proto::AmMessage&) {
      am.send(e1, e0, 2, 16, {});
    });
    am.register_handler(e0, 2, [&](const proto::AmMessage&) {
      if (++pongs < 200) am.send(e0, e1, 1, 16, {});
    });
    am.send(e0, e1, 1, 16, {});
    eng.run();
    benchmark::DoNotOptimize(pongs);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_AmRoundTrips);

// The per-port instrument pattern the fabrics moved away from: building a
// dotted path and walking the registry map on every packet.  Paired with
// BM_ObsGaugeCachedHandle below, this is the measured win of registering
// gauge handles once at attach() time (SwitchedNetwork/HierarchicalNetwork
// keep them in flat per-node vectors).
void BM_ObsGaugeDottedLookup(benchmark::State& state) {
  obs::MetricsRegistry reg;
  for (int i = 0; i < 256; ++i) {
    reg.gauge("net.link" + std::to_string(i) + ".queue_us");
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    reg.gauge("net.link" + std::to_string(i & 255u) + ".queue_us")
        .set(static_cast<double>(i));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsGaugeDottedLookup);

void BM_ObsGaugeCachedHandle(benchmark::State& state) {
  obs::MetricsRegistry reg;
  std::vector<obs::Gauge*> handles;
  for (int i = 0; i < 256; ++i) {
    handles.push_back(&reg.gauge("net.link" + std::to_string(i) +
                                 ".queue_us"));
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    handles[i & 255u]->set(static_cast<double>(i));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsGaugeCachedHandle);

// Full per-packet path of the flat switched fabric: send() + the scheduled
// finish/delivery events, 256 attached nodes, every send crossing the
// switch.  Wall-clock cost per simulated packet.
void BM_SwitchedSendHotPath(benchmark::State& state) {
  sim::Engine eng;
  net::SwitchedNetwork fabric(eng, net::myrinet());
  constexpr std::uint32_t kNodes = 256;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    fabric.attach(n, [](net::Packet&&) {});
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    net::Packet p;
    p.src = i & (kNodes - 1);
    p.dst = (p.src + kNodes / 2) & (kNodes - 1);
    p.size_bytes = 512;
    fabric.send(std::move(p));
    eng.run();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchedSendHotPath);

// Same measurement through the hierarchical fat tree at building scale:
// 1024 nodes in 32 racks, every packet cross-rack (4 links, 3 switch
// crossings, trunk busy-horizon bookkeeping).  The SoA hot path keeps this
// within sight of the flat fabric's cost despite doing twice the hops.
void BM_HierarchicalSendHotPath(benchmark::State& state) {
  sim::Engine eng;
  net::HierarchicalNetwork fabric(eng, net::building_now(32, 32, 4.0));
  constexpr std::uint32_t kNodes = 1024;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    fabric.attach(n, [](net::Packet&&) {});
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    net::Packet p;
    p.src = i & (kNodes - 1);
    p.dst = (p.src + kNodes / 2) & (kNodes - 1);
    p.size_bytes = 512;
    fabric.send(std::move(p));
    eng.run();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchicalSendHotPath);

void BM_LruCacheOps(benchmark::State& state) {
  coopcache::LruCache cache(1024);
  sim::Pcg32 rng(3);
  for (auto _ : state) {
    const std::uint64_t k = rng.next_below(4096);
    if (!cache.touch(k)) cache.insert(k);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheOps);

void BM_CoopCacheReplay(benchmark::State& state) {
  trace::FsWorkloadParams wp;
  wp.clients = 8;
  wp.accesses_per_client = 4'000;
  const auto accesses = trace::generate_fs_trace(wp);
  for (auto _ : state) {
    coopcache::CoopCacheConfig cfg;
    cfg.clients = wp.clients;
    cfg.client_cache_blocks = 256;
    cfg.server_cache_blocks = 1'024;
    cfg.policy = coopcache::Policy::kNChance;
    coopcache::CoopCacheSim sim(cfg);
    for (const auto& a : accesses) {
      sim.access(a.client, a.block, a.is_write);
    }
    benchmark::DoNotOptimize(sim.results().disk_reads);
  }
  state.SetItemsProcessed(state.iterations() * accesses.size());
}
BENCHMARK(BM_CoopCacheReplay);

}  // namespace

BENCHMARK_MAIN();
