// Software RAID over workstation disks: aggregate bandwidth scales with
// the member count; parity survives failures; any node can drive the
// array.  ("Redundant arrays of workstation disks" section.)
//
// The member-count sweep points are independent simulations and run in
// parallel (--jobs N); the availability demo at the end is a single
// serial scenario.
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/presets.hpp"
#include "net/switched.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "proto/rpc.hpp"
#include "raid/raid.hpp"
#include "sim/engine.hpp"

namespace {

using namespace now;

struct Rig {
  explicit Rig(int n) {
    network = std::make_unique<net::SwitchedNetwork>(engine,
                                                     net::atm_155mbps());
    mux = std::make_unique<proto::NicMux>(*network);
    am = std::make_unique<proto::AmLayer>(*mux, proto::AmParams{});
    rpc = std::make_unique<proto::RpcLayer>(*am);
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<os::Node>(
          engine, static_cast<net::NodeId>(i), os::NodeParams{}));
      mux->attach_node(*nodes.back());
      rpc->bind(*nodes.back());
      raid::install_storage_service(*rpc, *nodes.back());
    }
  }
  std::vector<os::Node*> members(int first, int count) {
    std::vector<os::Node*> v;
    for (int i = first; i < first + count; ++i) v.push_back(nodes[i].get());
    return v;
  }
  sim::Engine engine;
  std::unique_ptr<net::SwitchedNetwork> network;
  std::unique_ptr<proto::NicMux> mux;
  std::unique_ptr<proto::AmLayer> am;
  std::unique_ptr<proto::RpcLayer> rpc;
  std::vector<std::unique_ptr<os::Node>> nodes;
};

double sequential_mbps(int members, raid::Level level, bool write) {
  Rig rig(members + 1);  // node 0 drives, 1..members store
  raid::RaidParams rp;
  rp.level = level;
  raid::SoftwareRaid raid(*rig.rpc, rig.members(1, members), rp);
  const std::uint32_t total = 8 << 20;
  // Stripe-aligned chunks: writes land as whole rows (a real client, like
  // the xFS log, batches to full stripes on purpose).
  const std::uint32_t row_bytes =
      rp.stripe_unit *
      static_cast<std::uint32_t>(level == raid::Level::kRaid5
                                     ? members - 1
                                     : members);
  const std::uint32_t chunk = ((384u * 1024) / row_bytes + 1) * row_bytes;
  auto offset = std::make_shared<std::uint64_t>(0);
  sim::SimTime done_at = -1;
  auto step = std::make_shared<std::function<void()>>();
  *step = [&raid, offset, step, total, chunk, write, &rig, &done_at] {
    if (*offset >= total) {
      done_at = rig.engine.now();
      *step = nullptr;
      return;
    }
    const std::uint64_t off = *offset;
    *offset += chunk;
    if (write) {
      raid.write(0, off, chunk, [step] {
        if (*step) (*step)();
      });
    } else {
      raid.read(0, off, chunk, [step] {
        if (*step) (*step)();
      });
    }
  };
  (*step)();
  rig.engine.run();
  return static_cast<double>(total) / (1 << 20) / sim::to_sec(done_at);
}

struct ScalePoint {
  double raid0_read = 0;
  double raid0_write = 0;
  double raid5_write = 0;
};

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "Software RAID over workstation disks - bandwidth scaling + "
      "availability",
      "'A Case for NOW', 'Redundant arrays of workstation disks'");
  now::bench::Sweep sweep(argc, argv, "bench/bench_raid_scaling");

  now::bench::row("single workstation disk media rate: 4.0 MB/s; ATM link "
                  "~19.4 MB/s");
  now::bench::row("");
  now::bench::row("%-10s %16s %16s %16s", "members", "RAID-0 read",
                  "RAID-0 write", "RAID-5 write");
  const std::vector<int> member_counts{2, 4, 8, 12};
  std::vector<std::string> names;
  for (const int m : member_counts) {
    names.push_back("members_" + std::to_string(m));
  }
  const auto points = sweep.run(names, [&](now::exp::RunContext& ctx) {
    const int m = member_counts[ctx.task_index];
    ScalePoint p;
    p.raid0_read = sequential_mbps(m, raid::Level::kRaid0, false);
    p.raid0_write = sequential_mbps(m, raid::Level::kRaid0, true);
    p.raid5_write =
        m >= 3 ? sequential_mbps(m, raid::Level::kRaid5, true) : 0.0;
    return p;
  });
  for (std::size_t i = 0; i < points.size(); ++i) {
    now::bench::row("%-10d %13.1f MB/s %13.1f MB/s %13.1f MB/s",
                    member_counts[i], points[i].raid0_read,
                    points[i].raid0_write, points[i].raid5_write);
  }
  now::bench::row("");
  now::bench::row("paper claim: striping across enough disks gives each "
                  "workstation disk bandwidth");
  now::bench::row("limited only by its network link; parallel programs "
                  "get the aggregate.");

  // Availability: degraded reads and reconstruction.
  Rig rig(6);
  raid::RaidParams rp;
  rp.level = raid::Level::kRaid5;
  raid::SoftwareRaid raid5(*rig.rpc, rig.members(1, 4), rp);
  rig.nodes[2]->crash();
  raid5.member_failed(2);
  sim::SimTime t0 = rig.engine.now();
  sim::SimTime read_done = -1;
  raid5.read(0, 0, 256 * 1024, [&] { read_done = rig.engine.now(); });
  rig.engine.run();
  now::bench::row("");
  now::bench::row("degraded 256 KB read with one member dead: %.1f ms "
                  "(reconstructed from parity)",
                  sim::to_ms(read_done - t0));
  t0 = rig.engine.now();
  sim::SimTime rebuilt_at = -1;
  raid5.reconstruct(2, *rig.nodes[5], [&] { rebuilt_at = rig.engine.now(); },
                    /*rebuild_bytes_per_member=*/16 << 20);
  rig.engine.run();
  now::bench::row("rebuilding 16 MB/member onto a spare workstation: "
                  "%.1f s; array whole again: %s",
                  sim::to_sec(rebuilt_at - t0),
                  raid5.degraded() ? "no" : "yes");
  now::bench::row("");
  now::bench::row("paper claim: no central RAID host to fail - any "
                  "workstation can take over control.");
  return 0;
}
