// Figure 2: estimated multigrid execution time as the problem grows, on
// three systems: a 32 MB workstation paging to disk, a 128 MB workstation,
// and a 32 MB workstation paging to remote DRAM over the network.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "net/presets.hpp"
#include "net/switched.hpp"
#include "netram/multigrid.hpp"
#include "netram/pager.hpp"
#include "netram/registry.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "proto/rpc.hpp"
#include "sim/engine.hpp"

namespace {

using namespace now;

enum class Config { kDisk32, kDram128, kNetram32 };

double run_multigrid(Config config, std::uint64_t problem_mb) {
  sim::Engine engine;
  net::SwitchedNetwork atm(engine, net::atm_155mbps());
  proto::NicMux mux(atm);
  proto::AmLayer am(mux, proto::AmParams{});
  proto::RpcLayer rpc(am);

  std::vector<std::unique_ptr<os::Node>> nodes;
  for (int i = 0; i < 9; ++i) {  // 1 client + 8 idle donors
    os::NodeParams p;
    p.dram_bytes = 64ull << 20;
    nodes.push_back(std::make_unique<os::Node>(
        engine, static_cast<net::NodeId>(i), p));
    mux.attach_node(*nodes.back());
    rpc.bind(*nodes.back());
  }

  const std::uint32_t page = 8192;
  const std::uint64_t local_mb = config == Config::kDram128 ? 128 : 32;
  const auto frames = static_cast<std::uint32_t>((local_mb << 20) / page);

  netram::MultigridParams mp;
  mp.problem_bytes = problem_mb << 20;
  mp.sweeps = 3;

  std::unique_ptr<os::Pager> pager;
  netram::IdleMemoryRegistry registry;
  if (config == Config::kNetram32) {
    for (int i = 1; i < 9; ++i) {
      registry.add_donor(*nodes[i]);
      netram::install_donor_service(rpc, *nodes[i]);
    }
    pager = std::make_unique<netram::NetworkRamPager>(*nodes[0], page,
                                                      registry, rpc);
  } else {
    pager = std::make_unique<netram::DiskPager>(*nodes[0], page);
  }

  os::AddressSpace space(engine, frames, page, *pager);
  sim::Duration elapsed = 0;
  netram::MultigridRun run(*nodes[0], space, mp,
                           [&](sim::Duration d) { elapsed = d; });
  run.start();
  engine.run();
  return sim::to_sec(elapsed);
}

}  // namespace

int main() {
  now::bench::heading(
      "Figure 2 - multigrid execution time vs problem size",
      "'A Case for NOW', Figure 2 (32 MB + disk, 128 MB DRAM, 32 MB + "
      "network RAM)");

  now::bench::row("%-14s %14s %14s %14s %12s %12s", "problem (MB)",
                  "32MB+disk (s)", "128MB DRAM (s)", "32MB+netRAM (s)",
                  "netRAM/DRAM", "disk/netRAM");
  for (const std::uint64_t mb : {16ull, 24ull, 32ull, 48ull, 64ull, 96ull,
                                 128ull, 160ull}) {
    const double disk = run_multigrid(Config::kDisk32, mb);
    const double dram = run_multigrid(Config::kDram128, mb);
    const double netram = run_multigrid(Config::kNetram32, mb);
    now::bench::row("%-14llu %14.1f %14.1f %14.1f %11.2fx %11.2fx",
                    static_cast<unsigned long long>(mb), disk, dram, netram,
                    netram / dram, disk / netram);
  }
  now::bench::row("");
  now::bench::row("paper claims (for problems past local DRAM):");
  now::bench::row("  network RAM runs 10-30%% slower than all-in-DRAM");
  now::bench::row("  network RAM is 5-10x faster than thrashing to disk");
  now::bench::note("beyond 128 MB even the big-DRAM machine starts paging "
                   "to disk, which is why its curve takes off last");
  return 0;
}
