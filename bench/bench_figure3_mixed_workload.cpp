// Figure 3: slowdown of a 32-node MPP workload (LANL CM-5 mix) overlaid on
// a NOW that also serves interactive users, as the NOW grows.
//
// The eight NOW sizes are independent simulations, so they run as one
// parallel sweep (--jobs N); rows are formatted on the main thread in
// sweep order, so the output is byte-identical to the serial run.
#include <cstdint>
#include <vector>

#include "bench_util.hpp"
#include "glunix/overlay_sim.hpp"
#include "trace/parallel_trace.hpp"
#include "trace/usage_trace.hpp"

int main(int argc, char** argv) {
  using namespace now;
  now::bench::heading(
      "Figure 3 - MPP workload overlaid on interactively-used workstations",
      "'A Case for NOW', Figure 3 (32-node LANL CM-5 job mix + "
      "53-DECstation usage traces -> synthetic equivalents)");
  now::bench::JsonReport report(argc, argv, "bench/bench_figure3_mixed_workload",
                                "slowdown_factor");
  report.method(
      "synthetic LANL CM-5 job mix overlaid on synthetic DECstation usage "
      "traces; one overlay simulation per NOW size");
  now::bench::Sweep sweep(argc, argv, "bench/bench_figure3_mixed_workload");

  // The workload is the sweep's *input*, shared read-only by every point:
  // all NOW sizes face the same owners and the same job arrivals.
  trace::UsageParams up;
  up.workstations = 128;
  up.duration = 12 * sim::kHour;
  // A working weekday: calibrated so ~60 % of machines see no input at
  // all (the paper's availability statistic).
  up.owner_present_probability = 0.62;
  up.mean_busy = 5 * sim::kMinute;
  up.idle_tail_alpha = 1.15;
  up.seed = 17;
  const trace::UsageTrace usage(up);
  now::bench::row("interactive trace: %.0f%% of machine-time idle under "
                  "the 1-minute rule (paper: >60%% of workstations "
                  "available even in daytime); %.0f%% see no input at all",
                  100 * usage.average_idle_fraction(2 * sim::kMinute),
                  100 * usage.fraction_always_idle());

  trace::ParallelJobParams jp;
  jp.duration = 12 * sim::kHour;
  jp.seed = 9;
  const auto jobs = trace::generate_parallel_jobs(jp);
  now::bench::row("parallel trace: %zu jobs, %.0f processor-hours offered "
                  "to a 32-node partition",
                  jobs.size(), trace::total_processor_seconds(jobs) / 3600);
  now::bench::row("");
  now::bench::row("%-14s %12s %12s %10s %16s", "workstations", "slowdown",
                  "migrations", "stalls", "owner delay");

  // The paper's figure stops at 128 (its prototype's scale); the tail
  // extends the same sweep to building scale — usage traces repeat
  // round-robin past the 128 recorded machines, so the original eight
  // rows are bit-identical to every release before the extension.
  // --nodes N caps the axis (CI runs small, EXPERIMENTS.md runs it all).
  const std::vector<std::uint32_t> sizes = now::bench::cap_axis(
      {36, 40, 48, 56, 64, 80, 96, 128, 256, 512, 1024, 1536},
      now::bench::parse_nodes(argc, argv));
  std::vector<std::string> names;
  for (const std::uint32_t n : sizes) {
    names.push_back("workstations_" + std::to_string(n));
  }
  const auto results = sweep.run(
      names, [&](now::exp::RunContext& ctx) {
        glunix::OverlayParams op;
        op.workstations = sizes[ctx.task_index];
        op.guest_memory_bytes = 64ull << 20;  // full-size rank images
        return glunix::simulate_overlay(usage, jobs, op);
      });

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::uint32_t n = sizes[i];
    const auto& r = results[i];
    if (r.jobs_completed != jobs.size()) {
      now::bench::row("%-14u %12s %12s %10s  (only %llu/%zu jobs finished)",
                      n, "-", "-", "-",
                      static_cast<unsigned long long>(r.jobs_completed),
                      jobs.size());
      continue;
    }
    now::bench::row("%-14u %11.2fx %12llu %10llu %14.1f s", n,
                    r.workload_slowdown,
                    static_cast<unsigned long long>(r.migrations),
                    static_cast<unsigned long long>(r.stalls_for_machines),
                    r.mean_user_delay_sec);
    report.value(names[i], "slowdown", r.workload_slowdown);
    report.value(names[i], "migrations", static_cast<double>(r.migrations));
    report.value(names[i], "stalls",
                 static_cast<double>(r.stalls_for_machines));
    report.value(names[i], "owner_delay_sec", r.mean_user_delay_sec);
  }
  report.note("paper claim: at 64 workstations the 32-node MPP workload "
              "runs only ~10% slower");
  now::bench::row("");
  now::bench::row("paper claim: at 64 workstations the 32-node MPP "
                  "workload runs only ~10%% slower");
  now::bench::row("             - 'like getting almost a CM-5 for free'");
  now::bench::row("the other half of the bargain: a disturbed owner waits "
                  "only for the freeze+save");
  now::bench::row("(~4 s for a 64 MB guest), and the per-machine "
                  "disturbance budget caps how often.");
  return 0;
}
