// Availability under failures: xFS vs the central server it replaces.
//
// "Unfortunately, a central server design has performance, availability,
// and cost drawbacks" — here the availability half of that sentence.  Node
// 0 is the single server in the central design and just another
// manager/RAID member in xFS.  A scripted FaultPlan crashes it every T
// seconds (the sweep axis) and repairs it 10 s later while sixteen clients
// hammer the file service; availability is the fraction of issued
// operations that completed successfully by the end of the run.  The
// schedule is scripted rather than stochastic so the availability curve is
// a pure function of the failure period — seeded exponential churn (the
// same machinery, higher variance) is exercised by tests/fault_test.cpp
// and examples/break_now.cpp.
//
// Expected shape: the central design loses every op issued during an
// outage (clients burn a 500 ms RPC timeout each), so its availability
// tracks the server's uptime — and each repair returns a server whose
// memory cache died with the machine ("cold" column), so post-outage
// reads pay the disk until it re-warms.  xFS rides out the same crashes: the
// failure detector re-points the dead machine's manager duty in ~500 ms,
// degraded RAID reads reconstruct its disk's data from survivors, and a
// background rebuild makes the array whole again after each restart —
// client ops retry through the outage instead of failing.
//
// The failure periods are independent sweep points (--jobs N).  Both
// designs inside a point draw the identical request stream from the
// point's derived seed and share the identical crash/restart schedule, so
// the comparison stays controlled and stdout is byte-identical for any
// --jobs value.
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "net/placement.hpp"
#include "sim/random.hpp"
#include "xfs/central_server.hpp"

namespace {

using namespace now;

constexpr std::uint32_t kClients = 16;
constexpr sim::SimTime kHorizon = 120 * sim::kSecond;
constexpr sim::Duration kOutage = 10 * sim::kSecond;  // crash-to-repair
constexpr sim::Duration kThink = 50 * sim::kMillisecond;
constexpr std::uint32_t kBlockPool = 2'000;

struct DesignResult {
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  double availability = 1.0;  // ok / issued
  double mean_ms = 0;         // over completed ops, failures included
  std::uint64_t crashes = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t cold_restarts = 0;  // central only: server came back empty
};

// Cluster shape shared by both designs in one sweep point.  The original
// Table rows use the 17-node flat default; the building-scale rows swap in
// a 1024-workstation fat tree and move the clients around it.
struct Shape {
  std::uint32_t workstations = kClients + 1;
  Fabric fabric = Fabric::kAtm;
  net::HierarchicalParams building = net::building_now(32, 32, 4.0);
  /// xFS storage servers per stripe group (0 = one RAID over everyone —
  /// right for 17 nodes, absurd for 1024).
  std::size_t stripe_group_size = 0;
  /// The client node ids (node 0 is always the server / first manager).
  std::vector<std::uint32_t> clients;

  static Shape flat17() {
    Shape s;
    for (std::uint32_t i = 1; i <= kClients; ++i) s.clients.push_back(i);
    return s;
  }
};

// Node 0 dies every `period` of uptime and comes back kOutage later.
fault::FaultPlan outage_plan(sim::Duration period) {
  fault::FaultPlan plan;
  if (period <= 0) return plan;
  for (sim::SimTime t = period; t < kHorizon; t += period + kOutage) {
    plan.crash_at(t, 0).restart_at(t + kOutage, 0);
  }
  return plan;
}

// Clients 1..16 issue ops back-to-back (50 ms think time, 25 % writes)
// until the horizon; the run then drains in-flight ops.  Every op ends —
// with success, or with a timeout/retry-exhaustion failure — so
// issued - ok is exactly the failure count.
DesignResult run_central(sim::Duration period, exp::RunContext& ctx,
                         unsigned threads, const Shape& shape) {
  ClusterConfig cfg;
  cfg.workstations = shape.workstations;
  cfg.fabric = shape.fabric;
  cfg.building = shape.building;
  cfg.with_glunix = false;
  cfg.fault_plan = outage_plan(period);
  // --threads is accepted but the workload is not partition-clean: the
  // CentralServerFs driver lives outside the cluster and touches many
  // nodes' requests per event, so node-local execution would race.
  // kAllGlobal keeps every event on the serial path — output is
  // byte-identical at any --threads value by construction.
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kAllGlobal;
  cfg.run = &ctx;
  Cluster c(cfg);
  xfs::CentralFsParams p;
  p.client_cache_blocks = 64;
  std::vector<os::Node*> clients;
  for (const std::uint32_t i : shape.clients) clients.push_back(&c.node(i));
  xfs::CentralServerFs fs(c.rpc(), c.node(0), clients, p);
  fs.start();
  // Crashes of node 0 now drop the server's in-memory cache, so each
  // restart is cold: post-outage reads pay the disk until it re-warms.
  c.faults().attach_central(&fs);

  auto rng = std::make_shared<sim::Pcg32>(ctx.seed);
  auto issued = std::make_shared<std::uint64_t>(0);
  auto ok = std::make_shared<std::uint64_t>(0);
  auto done = std::make_shared<std::uint64_t>(0);
  auto total_ms = std::make_shared<double>(0);
  auto issue = std::make_shared<std::function<void(std::uint32_t)>>();
  *issue = [&c, &fs, rng, issued, ok, done, total_ms,
            issue](std::uint32_t client) {
    if (c.engine().now() >= kHorizon) return;
    ++*issued;
    const xfs::BlockId b = rng->next_below(kBlockPool);
    const sim::SimTime t0 = c.engine().now();
    auto cont = [&c, client, t0, ok, done, total_ms, issue](bool success) {
      ++*done;
      if (success) ++*ok;
      *total_ms += sim::to_ms(c.engine().now() - t0);
      c.engine().schedule_in(kThink, [issue, client] {
        if (*issue) (*issue)(client);
      });
    };
    if (rng->bernoulli(0.25)) {
      fs.write(client, b, cont);
    } else {
      fs.read(client, b, cont);
    }
  };
  for (const std::uint32_t cl : shape.clients) (*issue)(cl);
  c.run_until(kHorizon + 10 * sim::kSecond);  // drain in-flight ops
  *issue = nullptr;

  DesignResult r;
  r.issued = *issued;
  r.ok = *ok;
  r.availability = *issued ? static_cast<double>(*ok) / *issued : 1.0;
  r.mean_ms = *done ? *total_ms / *done : 0;
  r.crashes = c.faults().stats().node_crashes;
  r.cold_restarts = fs.stats().cold_restarts;
  return r;
}

DesignResult run_xfs(sim::Duration period, exp::RunContext& ctx,
                     unsigned threads, const Shape& shape) {
  ClusterConfig cfg;
  cfg.workstations = shape.workstations;
  cfg.fabric = shape.fabric;
  cfg.building = shape.building;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 64;
  cfg.stripe_group_size = shape.stripe_group_size;
  cfg.fault_plan = outage_plan(period);
  // xFS manager/RAID traffic spans nodes; see run_central's note.
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kAllGlobal;
  cfg.run = &ctx;
  Cluster c(cfg);

  auto rng = std::make_shared<sim::Pcg32>(ctx.seed);
  auto issued = std::make_shared<std::uint64_t>(0);
  auto done = std::make_shared<std::uint64_t>(0);
  auto total_ms = std::make_shared<double>(0);
  auto issue = std::make_shared<std::function<void(std::uint32_t)>>();
  *issue = [&c, rng, issued, done, total_ms, issue](std::uint32_t client) {
    if (c.engine().now() >= kHorizon) return;
    ++*issued;
    const xfs::BlockId b = rng->next_below(kBlockPool);
    const sim::SimTime t0 = c.engine().now();
    auto cont = [&c, client, t0, done, total_ms, issue] {
      ++*done;
      *total_ms += sim::to_ms(c.engine().now() - t0);
      c.engine().schedule_in(kThink, [issue, client] {
        if (*issue) (*issue)(client);
      });
    };
    if (rng->bernoulli(0.25)) {
      c.fs().write(client, b, cont);
    } else {
      c.fs().read(client, b, cont);
    }
  };
  for (const std::uint32_t cl : shape.clients) (*issue)(cl);
  c.run_until(kHorizon + 10 * sim::kSecond);
  *issue = nullptr;

  DesignResult r;
  r.issued = *issued;
  // xFS ops call done() even when the retry budget runs out; the failures
  // are in stats().failed_ops (plus anything still in flight at the end).
  const std::uint64_t failed = c.fs().stats().failed_ops;
  r.ok = *done > failed ? *done - failed : 0;
  r.availability = *issued ? static_cast<double>(r.ok) / *issued : 1.0;
  r.mean_ms = *done ? *total_ms / *done : 0;
  r.crashes = c.faults().stats().node_crashes;
  r.takeovers = c.faults().stats().manager_takeovers;
  r.rebuilds = c.faults().stats().rebuilds_completed;
  return r;
}

struct Point {
  DesignResult central;
  DesignResult xfs;
};

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "availability under failures - xFS vs central server",
      "'A Case for NOW': 'a central server design has performance, "
      "availability, and cost drawbacks'");
  now::bench::Sweep sweep(argc, argv, "bench/bench_availability");
  now::bench::JsonReport json(argc, argv, "bench_availability",
                              "availability_fraction");
  json.method(
      "16 clients, 120 s simulated; node 0 (central server / xFS "
      "manager+RAID member) crashes every <period> of uptime and is "
      "repaired 10 s later; availability = ops ok / ops issued");

  const std::vector<now::sim::Duration> periods{
      0, 60 * now::sim::kSecond, 30 * now::sim::kSecond,
      15 * now::sim::kSecond};
  const std::vector<std::string> labels{"none", "60 s", "30 s", "15 s"};
  const std::vector<std::string> names{"period_none", "period_60s",
                                       "period_30s", "period_15s"};

  const Shape flat = Shape::flat17();
  const auto points = sweep.run(names, [&](now::exp::RunContext& ctx) {
    Point p;
    p.central =
        run_central(periods[ctx.task_index], ctx, sweep.threads(), flat);
    p.xfs = run_xfs(periods[ctx.task_index], ctx, sweep.threads(), flat);
    return p;
  });

  now::bench::row("%-12s %9s %15s %8s %5s %3s %9s %15s %8s %6s %8s",
                  "fail period", "cen avail", "failed/issued", "ms", "cold",
                  "|", "xFS avail", "failed/issued", "ms", "tkovr",
                  "rebuilds");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DesignResult& ce = points[i].central;
    const DesignResult& xf = points[i].xfs;
    const std::string cf = std::to_string(ce.issued - ce.ok) + "/" +
                           std::to_string(ce.issued);
    const std::string xff = std::to_string(xf.issued - xf.ok) + "/" +
                            std::to_string(xf.issued);
    now::bench::row(
        "%-12s %8.1f%% %15s %8.2f %5llu %3s %8.1f%% %15s %8.2f %6llu %8llu",
        labels[i].c_str(), 100.0 * ce.availability, cf.c_str(), ce.mean_ms,
        static_cast<unsigned long long>(ce.cold_restarts), "|",
        100.0 * xf.availability, xff.c_str(), xf.mean_ms,
        static_cast<unsigned long long>(xf.takeovers),
        static_cast<unsigned long long>(xf.rebuilds));
    json.value(names[i], "central_availability", ce.availability);
    json.value(names[i], "central_failed",
               static_cast<double>(ce.issued - ce.ok));
    json.value(names[i], "central_issued", static_cast<double>(ce.issued));
    json.value(names[i], "central_mean_ms", ce.mean_ms);
    json.value(names[i], "central_cold_restarts",
               static_cast<double>(ce.cold_restarts));
    json.value(names[i], "xfs_availability", xf.availability);
    json.value(names[i], "xfs_failed",
               static_cast<double>(xf.issued - xf.ok));
    json.value(names[i], "xfs_issued", static_cast<double>(xf.issued));
    json.value(names[i], "xfs_mean_ms", xf.mean_ms);
    json.value(names[i], "node0_crashes", static_cast<double>(xf.crashes));
    json.value(names[i], "xfs_takeovers", static_cast<double>(xf.takeovers));
    json.value(names[i], "xfs_rebuilds", static_cast<double>(xf.rebuilds));
  }
  // --- Building scale: the same duel inside a 1024-node fat tree --------
  // Node 0 still serves (or managers) and still dies every 30 s; the
  // cluster around it is now a building — racks of 32 on a 4:1
  // oversubscribed spine — and the sixteen clients sit either in the
  // server's own rack or spread one-per-rack across the building.  The
  // availability verdict must not change with scale (it is a property of
  // the design, not the fabric), while the latency column picks up the
  // spine: that separation is the point of the section.
  const std::uint32_t cap = now::bench::parse_nodes(argc, argv);
  std::uint32_t bsize = cap == 0 ? 1024 : cap;
  if (bsize < 64) bsize = 64;    // need >= 2 racks for a spread placement
  if (bsize > 1024) bsize = 1024;
  const std::uint32_t npr = 32;
  const std::uint32_t racks = bsize / npr;
  Shape in_rack;
  in_rack.workstations = bsize;
  in_rack.fabric = Fabric::kBuildingNow;
  in_rack.building = now::net::building_now(racks, npr, 4.0);
  in_rack.stripe_group_size = 8;  // xFS-style groups, not one 1024-disk RAID
  in_rack.clients =
      now::net::rack_local_clients(in_rack.building.topo, 0, kClients);
  Shape spread = in_rack;
  spread.clients = now::net::spread_clients(spread.building.topo, 0, kClients);
  const std::vector<std::pair<std::string, const Shape*>> placements{
      {"rack-local", &in_rack}, {"cross-rack", &spread}};
  std::vector<std::string> bnames;
  for (const auto& [label, s] : placements) {
    bnames.push_back("building_" + label);
  }
  const sim::Duration bperiod = 30 * now::sim::kSecond;
  const std::size_t first_section = names.size();
  const auto bpoints = sweep.run(bnames, [&](now::exp::RunContext& ctx) {
    Point p;
    const Shape& s = *placements[ctx.task_index - first_section].second;
    p.central = run_central(bperiod, ctx, sweep.threads(), s);
    p.xfs = run_xfs(bperiod, ctx, sweep.threads(), s);
    return p;
  });

  now::bench::row("");
  now::bench::row("building scale: %u workstations (%u racks of %u, 4:1 "
                  "spine), node 0 fails every 30 s;", bsize, racks, npr);
  now::bench::row("16 clients in the server's rack vs spread one-per-rack "
                  "(--nodes caps the size)");
  now::bench::row("");
  now::bench::row("%-12s %9s %8s %5s %3s %9s %8s %6s %8s", "clients",
                  "cen avail", "ms", "cold", "|", "xFS avail", "ms",
                  "tkovr", "rebuilds");
  for (std::size_t i = 0; i < bpoints.size(); ++i) {
    const DesignResult& ce = bpoints[i].central;
    const DesignResult& xf = bpoints[i].xfs;
    now::bench::row(
        "%-12s %8.1f%% %8.2f %5llu %3s %8.1f%% %8.2f %6llu %8llu",
        placements[i].first.c_str(), 100.0 * ce.availability, ce.mean_ms,
        static_cast<unsigned long long>(ce.cold_restarts), "|",
        100.0 * xf.availability, xf.mean_ms,
        static_cast<unsigned long long>(xf.takeovers),
        static_cast<unsigned long long>(xf.rebuilds));
    json.value(bnames[i], "central_availability", ce.availability);
    json.value(bnames[i], "central_mean_ms", ce.mean_ms);
    json.value(bnames[i], "xfs_availability", xf.availability);
    json.value(bnames[i], "xfs_mean_ms", xf.mean_ms);
    json.value(bnames[i], "workstations", bsize);
  }
  now::bench::row("");
  now::bench::row("expected shape: central availability tracks the one "
                  "server's uptime - every op");
  now::bench::row("issued during an outage burns a timeout and fails, and "
                  "each repair restarts the");
  now::bench::row("server cache cold.  xFS stays near 100%%: manager");
  now::bench::row("takeover re-points the dead machine's duty in ~500 ms, "
                  "degraded reads reconstruct");
  now::bench::row("its disk from survivors, and a background rebuild "
                  "repairs the array after each");
  now::bench::row("restart, so client ops retry through the outage "
                  "instead of failing.");
  return 0;
}
