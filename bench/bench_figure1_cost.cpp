// Figure 1: the price of 128 processors + 128x32 MB + 128 GB + 128
// screens, assembled six ways.
#include "bench_util.hpp"
#include "models/cost.hpp"

int main() {
  using namespace now::models;
  now::bench::heading(
      "Figure 1 - price of a 128-processor capability, six ways",
      "'A Case for NOW', Figure 1 (128 x 40-MHz SuperSparc, 32 MB, 1 GB, "
      "screen, scalable interconnect)");

  const double best = figure1_best_price();
  now::bench::row("%-28s %14s %10s", "system", "price ($M)", "vs best");
  for (const auto& q : figure1_systems()) {
    const double p = figure1_system_price(q);
    now::bench::row("%-28s %14.2f %9.2fx", q.name.c_str(), p / 1e6,
                    p / best);
  }
  now::bench::row("");
  now::bench::row("paper claim: 'The price is twice as high for either the "
                  "large multiprocessor");
  now::bench::row("servers or MPPs compared to the most cost-effective "
                  "workstation.'");
  now::bench::note(
      "component prices reconstructed from the article's anchors "
      "($40/MB desktop DRAM, Bell's rule) and 1994 university pricing; "
      "the ratios are the reproduced result");
  return 0;
}
