// Serving traffic with tail-latency SLOs: xFS vs the central server.
//
// The paper's pitch is a building-wide machine you can point real users
// at.  This bench treats the file service as that product: an open
// Poisson arrival stream (requests keep coming whether or not earlier
// ones finished — nobody's browser waits for a stranger's RPC) of 75 %
// reads / 25 % writes is offered to sixteen client workstations at a
// swept rate, against both file system designs, with and without a
// scripted crash of node 0 — the central design's one server, just
// another manager/RAID member to xFS.  now::serve records every
// end-to-end latency and judges it against per-class SLOs (reads 25 ms,
// writes 100 ms); the cells report p50/p99/p999, SLO attainment, and
// goodput (SLO-meeting successes per second).
//
// Expected shape: at low load both designs serve from cache and meet SLO.
// As offered load grows, the central design's write-through disk
// saturates first — queues build, replies outrun the 500 ms RPC timeout,
// and attainment collapses; xFS spreads the same bytes over every disk
// via log striping and degrades much later.  Under the fault plan the
// divergence widens: the central design loses every op issued during the
// outage *and* comes back with a cold server cache (satellite of this
// PR: DRAM does not survive a power cycle), while xFS re-points manager
// duty in ~500 ms and serves degraded reads from the surviving stripes.
//
// Part two scales the population to the building (docs/
// capacity-planning.md walks the numbers): thousands of streaming open
// clients on Fabric::kBuildingNow, central backend only, comparing
// rack-local placement (clients beside the server) against spread
// placement (clients dealt across every other rack, all traffic over the
// 4:1 oversubscribed spine).  Those cells run partitioned
// (Partitioning::kNodeLocal, --threads N) with the ServeWorkload's state
// lane-confined and SLO shards merged exactly at report time.
//
// Determinism: every cell is one exp::run_sweep point (--jobs N) whose
// arrivals/mix draws derive from the point seed.  The classic cells pin
// Partitioning::kAllGlobal (xFS and the fault plan's shared services);
// the building cells are partition-clean.  stdout is byte-identical for
// any --jobs/--threads combination (DESIGN.md §13, §15).
#include <sys/resource.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "exp/grid.hpp"
#include "net/placement.hpp"
#include "replay/cursor.hpp"
#include "serve/workload.hpp"
#include "xfs/central_server.hpp"

namespace {

using namespace now;

constexpr std::uint32_t kClients = 16;
constexpr sim::SimTime kHorizon = 30 * sim::kSecond;
constexpr sim::Duration kDrain = 5 * sim::kSecond;
constexpr sim::SimTime kCrashAt = 15 * sim::kSecond;
constexpr sim::Duration kOutage = 5 * sim::kSecond;
constexpr std::uint32_t kWorkingSet = 2'000;
constexpr sim::Duration kReadSlo = 25 * sim::kMillisecond;
constexpr sim::Duration kWriteSlo = 100 * sim::kMillisecond;

const std::vector<double> kLoads{25.0, 100.0, 400.0, 1600.0};
const std::vector<std::string> kLoadLabels{"25/s", "100/s", "400/s",
                                           "1600/s"};
const std::vector<std::string> kFaultLabels{"none", "crash@15s"};
const std::vector<std::string> kBackendLabels{"central", "xfs"};

serve::ServeConfig serve_config(double offered, std::uint64_t seed) {
  serve::ServeConfig sc;
  sc.population.clients = kClients;
  sc.population.open_fraction = 1.0;  // pure open arrivals
  sc.population.offered_per_sec = offered;
  sc.population.horizon = kHorizon;
  serve::RequestClass rd;
  rd.name = "read";
  rd.op = serve::RequestOp::kFileRead;
  rd.weight = 0.75;
  rd.slo = kReadSlo;
  rd.working_set = kWorkingSet;
  serve::RequestClass wr;
  wr.name = "write";
  wr.op = serve::RequestOp::kFileWrite;
  wr.weight = 0.25;
  wr.slo = kWriteSlo;
  wr.working_set = kWorkingSet;
  sc.classes = {rd, wr};
  for (std::uint32_t i = 1; i <= kClients; ++i) sc.client_nodes.push_back(i);
  sc.seed = seed;
  return sc;
}

struct CellResult {
  serve::ServeTotals totals;
  serve::SloClassReport read;
  serve::SloClassReport write;
  serve::SloClassReport all;
  std::uint64_t in_flight = 0;
  std::uint64_t cold_restarts = 0;
};

ClusterConfig base_config(bool with_fault, exp::RunContext& ctx,
                          unsigned threads) {
  ClusterConfig cfg;
  cfg.workstations = kClients + 1;  // node 0: server / manager+RAID member
  cfg.with_glunix = false;
  if (with_fault) {
    fault::FaultPlan plan;
    plan.crash_at(kCrashAt, 0).restart_at(kCrashAt + kOutage, 0);
    cfg.fault_plan = plan;
  }
  // The classic grid crosses backends and a fault plan; xFS events touch
  // many nodes' state per event, so these cells stay serial (kAllGlobal —
  // --threads accepted, byte-identical at any value).  The building cells
  // below are partition-clean and genuinely use the lanes.
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kAllGlobal;
  cfg.seed = ctx.seed;
  cfg.run = &ctx;
  return cfg;
}

CellResult harvest(const serve::ServeWorkload& w) {
  CellResult r;
  r.totals = w.totals();
  r.read = w.slo().report(0, kHorizon);
  r.write = w.slo().report(1, kHorizon);
  r.all = w.slo().overall(kHorizon);
  r.in_flight = w.in_flight();
  return r;
}

CellResult run_central(double offered, bool with_fault, exp::RunContext& ctx,
                       unsigned threads) {
  ClusterConfig cfg = base_config(with_fault, ctx, threads);
  Cluster c(cfg);
  xfs::CentralFsParams p;
  p.client_cache_blocks = 64;
  std::vector<os::Node*> clients;
  for (std::uint32_t i = 1; i <= kClients; ++i) clients.push_back(&c.node(i));
  xfs::CentralServerFs fs(c.rpc(), c.node(0), clients, p);
  fs.start();
  c.faults().attach_central(&fs);  // crash drops the server cache

  serve::Backends b;
  b.central = &fs;
  serve::ServeWorkload w(c.engine(), b, serve_config(offered, ctx.seed));
  w.start();
  c.run_until(kHorizon + kDrain);

  CellResult r = harvest(w);
  r.cold_restarts = fs.stats().cold_restarts;
  return r;
}

CellResult run_xfs(double offered, bool with_fault, exp::RunContext& ctx,
                   unsigned threads) {
  ClusterConfig cfg = base_config(with_fault, ctx, threads);
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 64;
  cfg.stripe_group_size = 0;  // one RAID-5 across all seventeen disks
  Cluster c(cfg);

  serve::Backends b;
  b.xfs = &c.fs();
  serve::ServeWorkload w(c.engine(), b, serve_config(offered, ctx.seed));
  w.start();
  c.run_until(kHorizon + kDrain);
  return harvest(w);
}

// ---------------------------------------------------------------------------
// Part two: building-wide serving.  One file server (node 0), thousands of
// streaming thin clients multiplexed over the building's workstations, a
// fat-tree fabric between them.  Read-heavy on purpose: once the server's
// memory cache warms, latency is fabric round-trip plus server service
// time, so the in-rack vs spread gap is the price of the spine — the
// number a capacity planner actually needs.

constexpr std::uint32_t kNodesPerRack = 32;
constexpr double kOversub = 4.0;
constexpr sim::SimTime kBldHorizon = 10 * sim::kSecond;
constexpr sim::Duration kBldDrain = 2 * sim::kSecond;
constexpr std::uint32_t kDefaultBldClients = 2048;

const std::vector<double> kBldLoads{1000.0, 3000.0, 4000.0};
const std::vector<std::string> kBldPlacements{"in-rack", "spread"};

/// `--clients N`: building-section population size (default 2048).
std::uint32_t parse_clients(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0) {
      const auto n = static_cast<std::uint32_t>(
          std::strtoul(argv[i + 1], nullptr, 10));
      if (n > 0) return n;
    }
  }
  return kDefaultBldClients;
}

serve::ServeConfig building_config(std::uint32_t clients, double offered,
                                   std::vector<net::NodeId> nodes,
                                   std::uint64_t seed, bool churn) {
  serve::ServeConfig sc;
  sc.population.clients = clients;
  sc.population.open_fraction = 1.0;
  sc.population.offered_per_sec = offered;
  sc.population.horizon = kBldHorizon;
  if (churn) {
    // A compressed "day": one full diurnal period inside the horizon, so
    // the run sees both the login rush at the peak and the quiet trough.
    sc.population.diurnal.amplitude = 0.6;
    sc.population.diurnal.period = 8 * sim::kSecond;
    sc.population.sessions.mean_on = 3 * sim::kSecond;
    sc.population.sessions.mean_off = 2 * sim::kSecond;
  }
  serve::RequestClass rd;
  rd.name = "read";
  rd.op = serve::RequestOp::kFileRead;
  rd.weight = 1.0;
  rd.slo = kReadSlo;
  rd.working_set = kWorkingSet;
  sc.classes = {rd};
  sc.client_nodes = std::move(nodes);
  sc.seed = seed;
  return sc;
}

struct BldCell {
  serve::ServeTotals totals;
  serve::SloClassReport all;
  std::uint64_t in_flight = 0;
  /// Clients inside a login session at the diurnal peak (t = period/4);
  /// the whole population when churn is off.
  std::uint64_t sessions_at_peak = 0;
};

BldCell run_building(std::uint32_t nodes, std::uint32_t clients, bool spread,
                     double offered, bool churn, std::uint64_t seed,
                     unsigned threads) {
  ClusterConfig cfg;
  cfg.workstations = nodes;
  cfg.fabric = Fabric::kBuildingNow;
  cfg.building =
      net::building_now(nodes / kNodesPerRack, kNodesPerRack, kOversub);
  cfg.with_glunix = false;  // partition-clean: central fs + fabric only
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kNodeLocal;
  cfg.seed = seed;
  Cluster c(cfg);

  // Node 0 is the building's one file server; every other workstation is
  // a potential client.  Thin clients carry no block cache (capacity 0),
  // so every read crosses the fabric and the two placements offer the
  // server the identical remote load; the server cache is prewarmed so
  // cells measure steady-state serving, not cold-disk warmup.
  xfs::CentralFsParams p;
  p.client_cache_blocks = 0;
  std::vector<os::Node*> fs_clients;
  for (std::uint32_t i = 1; i < nodes; ++i) fs_clients.push_back(&c.node(i));
  xfs::CentralServerFs fs(c.rpc(), c.node(0), fs_clients, p);
  fs.prewarm(kWorkingSet);
  fs.start();

  const auto placement =
      spread ? net::spread_clients(cfg.building.topo, 0, clients)
             : net::rack_local_clients(cfg.building.topo, 0, clients);

  serve::Backends b;
  b.central = &fs;
  serve::ServeWorkload w(c.engine(), b,
                         building_config(clients, offered, placement, seed,
                                         churn),
                         c.parallel_engine());
  w.start();
  c.run_until(kBldHorizon + kBldDrain);

  BldCell r;
  r.totals = w.totals();
  r.all = w.slo().overall(kBldHorizon);
  r.in_flight = w.in_flight();
  r.sessions_at_peak = clients;
  if (churn) {
    // Walk fresh SessionTimeline copies (pure functions of the seed) and
    // count who is logged in at the compressed day's peak.
    const sim::SimTime peak = 2 * sim::kSecond;  // period/4
    r.sessions_at_peak = 0;
    for (std::uint32_t cl = 0; cl < clients; ++cl) {
      serve::SessionTimeline tl = w.population().sessions(cl);
      while (const auto s = tl.next()) {
        if (s->login > peak) break;
        if (s->logout > peak) {
          ++r.sessions_at_peak;
          break;
        }
      }
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Part three (--trace <path>): recorded arrivals as the third source.
// The same 16-client open population runs at a gentle background rate
// while a recorded trace is replayed on top by four replay clients — each
// owning an independent stride-filtered cursor over its own file handle,
// so the cell runs partitioned (kNodeLocal) and stays byte-identical at
// any --threads value.  Replayed requests are judged against the same
// read/write SLOs as the synthetic ones.

constexpr std::uint32_t kReplayClients = 4;
constexpr double kReplayBackgroundLoad = 25.0;

CellResult run_replay_cell(const std::string& path, double scale,
                           exp::RunContext& ctx, unsigned threads) {
  ClusterConfig cfg;
  cfg.workstations = kClients + 1;
  cfg.with_glunix = false;  // partition-clean: central backend only
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kNodeLocal;
  cfg.seed = ctx.seed;
  cfg.run = &ctx;
  Cluster c(cfg);

  xfs::CentralFsParams p;
  p.client_cache_blocks = 64;
  std::vector<os::Node*> clients;
  for (std::uint32_t i = 1; i <= kClients; ++i) clients.push_back(&c.node(i));
  xfs::CentralServerFs fs(c.rpc(), c.node(0), clients, p);
  fs.prewarm(kWorkingSet);
  fs.start();

  serve::ServeConfig sc = serve_config(kReplayBackgroundLoad, ctx.seed);
  sc.replay.path = path;
  sc.replay.clients = kReplayClients;
  sc.replay.time_scale = scale;

  serve::Backends b;
  b.central = &fs;
  serve::ServeWorkload w(c.engine(), b, sc, c.parallel_engine());
  w.start();
  c.run_until(kHorizon + kDrain);
  return harvest(w);
}

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "serving traffic under tail-latency SLOs - xFS vs central server",
      "'A Case for NOW': a building-wide system users can be pointed at "
      "must hold its latency tail through load and failures");
  now::bench::Sweep sweep(argc, argv, "bench/bench_serving");
  now::bench::JsonReport json(argc, argv, "bench_serving", "ms / fraction");
  json.method(
      "16 clients, 30 s simulated, open Poisson arrivals (75% reads SLO "
      "25 ms, 25% writes SLO 100 ms, zipf working set of 2000 blocks); "
      "cells cross offered load x fault plan (node 0 crash at 15 s, "
      "repair at 20 s) x backend; attainment = requests that succeeded "
      "and met their class SLO / completed");

  now::exp::Grid grid;
  grid.add("backend", kBackendLabels.size());
  grid.add("fault", kFaultLabels.size());
  grid.add("load", kLoads.size());

  std::vector<std::string> names;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto co = grid.coords(i);
    names.push_back(kBackendLabels[co[0]] + "_" +
                    (co[1] ? "crash15s" : "nofault") + "_" +
                    std::to_string(static_cast<int>(kLoads[co[2]])) + "rps");
  }

  const auto cells = sweep.run(names, [&](now::exp::RunContext& ctx) {
    const auto co = grid.coords(ctx.task_index);
    const bool xfs = co[0] == 1;
    const bool with_fault = co[1] == 1;
    const double load = kLoads[co[2]];
    return xfs ? run_xfs(load, with_fault, ctx, sweep.threads())
               : run_central(load, with_fault, ctx, sweep.threads());
  });

  now::bench::row("%-8s %-10s %-7s %9s %6s %8s %8s %8s %8s %7s %9s",
                  "backend", "fault", "load", "completed", "fail",
                  "p50 ms", "p99 ms", "p999 ms", "max ms", "attain",
                  "goodput/s");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto co = grid.coords(i);
    const CellResult& r = cells[i];
    now::bench::row(
        "%-8s %-10s %-7s %9llu %6llu %8.2f %8.2f %8.2f %8.1f %6.1f%% %9.1f",
        kBackendLabels[co[0]].c_str(), kFaultLabels[co[1]].c_str(),
        kLoadLabels[co[2]].c_str(),
        static_cast<unsigned long long>(r.all.completed),
        static_cast<unsigned long long>(r.all.failed), r.all.p50_ms,
        r.all.p99_ms, r.all.p999_ms, r.all.max_ms, 100.0 * r.all.attainment,
        r.all.goodput_per_sec);
    json.value(names[i], "offered_per_sec", r.totals.offered_per_sec);
    json.value(names[i], "arrivals", static_cast<double>(r.totals.arrivals));
    json.value(names[i], "completed", static_cast<double>(r.all.completed));
    json.value(names[i], "failed", static_cast<double>(r.all.failed));
    json.value(names[i], "in_flight_at_end",
               static_cast<double>(r.in_flight));
    json.value(names[i], "p50_ms", r.all.p50_ms);
    json.value(names[i], "p99_ms", r.all.p99_ms);
    json.value(names[i], "p999_ms", r.all.p999_ms);
    json.value(names[i], "attainment", r.all.attainment);
    json.value(names[i], "goodput_per_sec", r.all.goodput_per_sec);
    json.value(names[i], "read_p99_ms", r.read.p99_ms);
    json.value(names[i], "read_attainment", r.read.attainment);
    json.value(names[i], "write_p99_ms", r.write.p99_ms);
    json.value(names[i], "write_attainment", r.write.attainment);
    json.value(names[i], "cold_restarts",
               static_cast<double>(r.cold_restarts));
  }

  // The headline comparison: same load, same crash schedule, the only
  // difference is the file system architecture.
  now::bench::row("");
  now::bench::row("%-28s %14s %14s", "crash@15s cell", "central", "xfs");
  for (std::size_t li = 0; li < kLoads.size(); ++li) {
    const CellResult& ce = cells[grid.flat({0, 1, li})];
    const CellResult& xf = cells[grid.flat({1, 1, li})];
    now::bench::row("%-7s %-20s %13.2f %14.2f", kLoadLabels[li].c_str(),
                    "p99 ms", ce.all.p99_ms, xf.all.p99_ms);
    now::bench::row("%-7s %-20s %13.1f%% %13.1f%%", "",
                    "SLO attainment", 100.0 * ce.all.attainment,
                    100.0 * xf.all.attainment);
  }
  now::bench::row("");
  now::bench::row("expected shape: the central design's write-through disk "
                  "saturates first - queues");
  now::bench::row("outrun the 500 ms RPC timeout and attainment collapses; "
                  "under the crash it also");
  now::bench::row("restarts with a cold server cache.  xFS stripes the "
                  "same bytes over every disk");
  now::bench::row("and rides the crash out via manager takeover and "
                  "degraded reads, so its tail");
  now::bench::row("diverges from the incumbent's as load and faults "
                  "stack up.");

  // ---- Part two: building-wide serving on the fat-tree fabric ----------
  const std::uint32_t bld_clients = parse_clients(argc, argv);
  std::vector<std::uint32_t> bld_sizes = now::bench::cap_axis(
      {256, 1024}, now::bench::parse_nodes(argc, argv));
  for (std::uint32_t& s : bld_sizes) {
    // Whole racks only, and spread placement needs a rack besides the
    // server's: clamp to multiples of 32, minimum two racks.
    s = std::max<std::uint32_t>(64, s / kNodesPerRack * kNodesPerRack);
  }

  struct BldPoint {
    std::uint32_t nodes;
    bool spread;
    double load;
    bool churn;
  };
  std::vector<BldPoint> pts;
  std::vector<std::string> bld_names;
  for (const std::uint32_t n : bld_sizes) {
    for (int pl = 0; pl < 2; ++pl) {
      for (const double load : kBldLoads) {
        pts.push_back({n, pl == 1, load, false});
        bld_names.push_back("bld_" + std::to_string(n) + "n_" +
                            (pl ? "spread" : "inrack") + "_" +
                            std::to_string(static_cast<int>(load)) + "rps");
      }
    }
  }
  // One churn cell: the largest building, spread placement, low load —
  // compared against its always-on twin below.
  pts.push_back({bld_sizes.back(), true, kBldLoads.front(), true});
  bld_names.push_back("bld_" + std::to_string(bld_sizes.back()) +
                      "n_spread_" +
                      std::to_string(static_cast<int>(kBldLoads.front())) +
                      "rps_churn");

  // Building points share the base seed (not per-point derived seeds) so
  // in-rack and spread rows at the same size/load run the *identical*
  // arrival schedule — the placement column is the only variable.
  const std::size_t bld_base = grid.size();
  const auto bld = sweep.run(bld_names, [&](now::exp::RunContext& ctx) {
    const BldPoint& p = pts[ctx.task_index - bld_base];
    return run_building(p.nodes, bld_clients, p.spread, p.load, p.churn,
                        sweep.base_seed(), sweep.threads());
  });

  now::bench::row("");
  now::bench::row("building-wide serving: %u streaming clients, central "
                  "server at node 0, reads only",
                  bld_clients);
  now::bench::row("%6s %8s %9s %7s %9s %8s %8s %8s %7s %9s", "nodes",
                  "clients", "placement", "load/s", "arrivals", "p50 ms",
                  "p99 ms", "p999 ms", "attain", "goodput/s");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const BldPoint& p = pts[i];
    if (p.churn) continue;  // churn subsection below
    const BldCell& r = bld[i];
    // Three decimals: below the knee the placement delta is tens of
    // microseconds of fabric, and two would round it away.
    now::bench::row(
        "%6u %8u %9s %7d %9llu %8.3f %8.3f %8.3f %6.1f%% %9.1f", p.nodes,
        bld_clients, p.spread ? "spread" : "in-rack",
        static_cast<int>(p.load),
        static_cast<unsigned long long>(r.totals.arrivals), r.all.p50_ms,
        r.all.p99_ms, r.all.p999_ms, 100.0 * r.all.attainment,
        r.all.goodput_per_sec);
  }
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const BldPoint& p = pts[i];
    const BldCell& r = bld[i];
    json.value(bld_names[i], "nodes", static_cast<double>(p.nodes));
    json.value(bld_names[i], "clients", static_cast<double>(bld_clients));
    json.value(bld_names[i], "offered_per_sec", r.totals.offered_per_sec);
    json.value(bld_names[i], "arrivals",
               static_cast<double>(r.totals.arrivals));
    json.value(bld_names[i], "completed",
               static_cast<double>(r.all.completed));
    json.value(bld_names[i], "failed", static_cast<double>(r.all.failed));
    json.value(bld_names[i], "in_flight_at_end",
               static_cast<double>(r.in_flight));
    json.value(bld_names[i], "p50_ms", r.all.p50_ms);
    json.value(bld_names[i], "p99_ms", r.all.p99_ms);
    json.value(bld_names[i], "p999_ms", r.all.p999_ms);
    json.value(bld_names[i], "attainment", r.all.attainment);
    json.value(bld_names[i], "goodput_per_sec", r.all.goodput_per_sec);
    json.value(bld_names[i], "sessions_at_peak",
               static_cast<double>(r.sessions_at_peak));
  }

  // Churn subsection: same building, same load, but clients log in and
  // out riding a compressed diurnal day instead of staying on.
  const BldCell& churn = bld.back();
  std::size_t twin = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const BldPoint& p = pts[i];
    if (!p.churn && p.nodes == bld_sizes.back() && p.spread &&
        p.load == kBldLoads.front()) {
      twin = i;
    }
  }
  now::bench::row("");
  now::bench::row("session churn (%un spread, %d/s): mean-on 3 s / "
                  "mean-off 2 s over an 8 s diurnal day",
                  bld_sizes.back(), static_cast<int>(kBldLoads.front()));
  now::bench::row("%-24s %12s %12s", "", "always-on", "churning");
  now::bench::row("%-24s %12llu %12llu", "arrivals",
                  static_cast<unsigned long long>(bld[twin].totals.arrivals),
                  static_cast<unsigned long long>(churn.totals.arrivals));
  now::bench::row(
      "%-24s %12llu %12llu", "sessions live at peak",
      static_cast<unsigned long long>(bld[twin].sessions_at_peak),
      static_cast<unsigned long long>(churn.sessions_at_peak));
  now::bench::row("%-24s %12.2f %12.2f", "p99 ms", bld[twin].all.p99_ms,
                  churn.all.p99_ms);
  now::bench::row("");
  now::bench::row("expected shape: in-rack and spread rows at one load "
                  "share an arrival schedule,");
  now::bench::row("so below the knee their latency gap is the price of "
                  "the oversubscribed spine -");
  now::bench::row("tens of microseconds on a sub-millisecond floor.  Past "
                  "the knee the one server");
  now::bench::row("saturates and both placements collapse together: at "
                  "building scale the central");
  now::bench::row("bottleneck is the server, never the fabric, which is "
                  "the paper's case against");
  now::bench::row("central servers restated.  Churn only removes arrivals "
                  "(logged-out clients stay");
  now::bench::row("quiet): the churning column offers less load and even "
                  "its peak live-session");
  now::bench::row("count sits below the population.");

  // ---- Part three: replayed arrivals next to the open population -------
  const std::string trace_path = now::bench::parse_trace(argc, argv);
  if (!trace_path.empty()) {
    const double scale = now::bench::parse_trace_scale(argc, argv);
    const auto ts = replay::summarize(trace_path);
    const auto rcell = sweep.run(
        {"replay_cell"},
        [&](now::exp::RunContext& ctx) {
          return run_replay_cell(trace_path, scale, ctx, sweep.threads());
        })[0];
    now::bench::row("");
    now::bench::row("replayed arrivals: %s (%s, %llu records, time scale "
                    "%gx) over %u replay clients,",
                    trace_path.c_str(), replay::to_string(ts.format),
                    static_cast<unsigned long long>(ts.records), scale,
                    kReplayClients);
    now::bench::row("on top of the 16-client open population at %.0f/s; "
                    "central backend, partitioned (kNodeLocal)",
                    kReplayBackgroundLoad);
    now::bench::row("");
    now::bench::row("%-12s %10s %10s %10s %8s %8s %8s %7s", "arrivals",
                    "open", "replayed", "completed", "p50 ms", "p99 ms",
                    "p999 ms", "attain");
    now::bench::row("%-12s %10llu %10llu %10llu %8.2f %8.2f %8.2f %6.1f%%",
                    "",
                    static_cast<unsigned long long>(
                        rcell.totals.open_arrivals),
                    static_cast<unsigned long long>(
                        rcell.totals.replayed_arrivals),
                    static_cast<unsigned long long>(rcell.all.completed),
                    rcell.all.p50_ms, rcell.all.p99_ms, rcell.all.p999_ms,
                    100.0 * rcell.all.attainment);
    json.value("replay_cell", "open_arrivals",
               static_cast<double>(rcell.totals.open_arrivals));
    json.value("replay_cell", "replayed_arrivals",
               static_cast<double>(rcell.totals.replayed_arrivals));
    json.value("replay_cell", "completed",
               static_cast<double>(rcell.all.completed));
    json.value("replay_cell", "p50_ms", rcell.all.p50_ms);
    json.value("replay_cell", "p99_ms", rcell.all.p99_ms);
    json.value("replay_cell", "attainment", rcell.all.attainment);
    now::bench::row("");
    now::bench::row("the recorded stream rides the same lanes, SLOs, and "
                    "report path as the synthetic");
    now::bench::row("sources; replay clients never share cursor state, so "
                    "thread count cannot move a");
    now::bench::row("single arrival.");
  }

  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  json.value("aggregate", "max_rss_mb",
             static_cast<double>(ru.ru_maxrss) / 1024.0);
  json.value("aggregate", "threads", static_cast<double>(sweep.threads()));
  json.note("building cells stream arrivals through bounded k-way merge "
            "state: rss stays flat in the horizon and is measurement, not "
            "part of the deterministic surface");
  return 0;
}
