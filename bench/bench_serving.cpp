// Serving traffic with tail-latency SLOs: xFS vs the central server.
//
// The paper's pitch is a building-wide machine you can point real users
// at.  This bench treats the file service as that product: an open
// Poisson arrival stream (requests keep coming whether or not earlier
// ones finished — nobody's browser waits for a stranger's RPC) of 75 %
// reads / 25 % writes is offered to sixteen client workstations at a
// swept rate, against both file system designs, with and without a
// scripted crash of node 0 — the central design's one server, just
// another manager/RAID member to xFS.  now::serve records every
// end-to-end latency and judges it against per-class SLOs (reads 25 ms,
// writes 100 ms); the cells report p50/p99/p999, SLO attainment, and
// goodput (SLO-meeting successes per second).
//
// Expected shape: at low load both designs serve from cache and meet SLO.
// As offered load grows, the central design's write-through disk
// saturates first — queues build, replies outrun the 500 ms RPC timeout,
// and attainment collapses; xFS spreads the same bytes over every disk
// via log striping and degrades much later.  Under the fault plan the
// divergence widens: the central design loses every op issued during the
// outage *and* comes back with a cold server cache (satellite of this
// PR: DRAM does not survive a power cycle), while xFS re-points manager
// duty in ~500 ms and serves degraded reads from the surviving stripes.
//
// Determinism: every cell is one exp::run_sweep point (--jobs N) whose
// arrivals/mix draws derive from the point seed; serving pins
// Partitioning::kAllGlobal (see DESIGN.md §13), so --threads is accepted
// but execution is serial and stdout is byte-identical for any
// --jobs/--threads combination.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "exp/grid.hpp"
#include "serve/workload.hpp"
#include "xfs/central_server.hpp"

namespace {

using namespace now;

constexpr std::uint32_t kClients = 16;
constexpr sim::SimTime kHorizon = 30 * sim::kSecond;
constexpr sim::Duration kDrain = 5 * sim::kSecond;
constexpr sim::SimTime kCrashAt = 15 * sim::kSecond;
constexpr sim::Duration kOutage = 5 * sim::kSecond;
constexpr std::uint32_t kWorkingSet = 2'000;
constexpr sim::Duration kReadSlo = 25 * sim::kMillisecond;
constexpr sim::Duration kWriteSlo = 100 * sim::kMillisecond;

const std::vector<double> kLoads{25.0, 100.0, 400.0, 1600.0};
const std::vector<std::string> kLoadLabels{"25/s", "100/s", "400/s",
                                           "1600/s"};
const std::vector<std::string> kFaultLabels{"none", "crash@15s"};
const std::vector<std::string> kBackendLabels{"central", "xfs"};

serve::ServeConfig serve_config(double offered, std::uint64_t seed) {
  serve::ServeConfig sc;
  sc.population.clients = kClients;
  sc.population.open_fraction = 1.0;  // pure open arrivals
  sc.population.offered_per_sec = offered;
  sc.population.horizon = kHorizon;
  serve::RequestClass rd;
  rd.name = "read";
  rd.op = serve::RequestOp::kFileRead;
  rd.weight = 0.75;
  rd.slo = kReadSlo;
  rd.working_set = kWorkingSet;
  serve::RequestClass wr;
  wr.name = "write";
  wr.op = serve::RequestOp::kFileWrite;
  wr.weight = 0.25;
  wr.slo = kWriteSlo;
  wr.working_set = kWorkingSet;
  sc.classes = {rd, wr};
  for (std::uint32_t i = 1; i <= kClients; ++i) sc.client_nodes.push_back(i);
  sc.seed = seed;
  return sc;
}

struct CellResult {
  serve::ServeTotals totals;
  serve::SloClassReport read;
  serve::SloClassReport write;
  serve::SloClassReport all;
  std::uint64_t in_flight = 0;
  std::uint64_t cold_restarts = 0;
};

ClusterConfig base_config(bool with_fault, exp::RunContext& ctx,
                          unsigned threads) {
  ClusterConfig cfg;
  cfg.workstations = kClients + 1;  // node 0: server / manager+RAID member
  cfg.with_glunix = false;
  if (with_fault) {
    fault::FaultPlan plan;
    plan.crash_at(kCrashAt, 0).restart_at(kCrashAt + kOutage, 0);
    cfg.fault_plan = plan;
  }
  // Serving drives shared services (the central server, xFS managers), so
  // events touch many nodes' state: not partition-clean.  kAllGlobal keeps
  // execution serial — --threads is accepted, output is byte-identical at
  // any value by construction (DESIGN.md §13).
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kAllGlobal;
  cfg.seed = ctx.seed;
  cfg.run = &ctx;
  return cfg;
}

CellResult harvest(const serve::ServeWorkload& w) {
  CellResult r;
  r.totals = w.totals();
  r.read = w.slo().report(0, kHorizon);
  r.write = w.slo().report(1, kHorizon);
  r.all = w.slo().overall(kHorizon);
  r.in_flight = w.in_flight();
  return r;
}

CellResult run_central(double offered, bool with_fault, exp::RunContext& ctx,
                       unsigned threads) {
  ClusterConfig cfg = base_config(with_fault, ctx, threads);
  Cluster c(cfg);
  xfs::CentralFsParams p;
  p.client_cache_blocks = 64;
  std::vector<os::Node*> clients;
  for (std::uint32_t i = 1; i <= kClients; ++i) clients.push_back(&c.node(i));
  xfs::CentralServerFs fs(c.rpc(), c.node(0), clients, p);
  fs.start();
  c.faults().attach_central(&fs);  // crash drops the server cache

  serve::Backends b;
  b.central = &fs;
  serve::ServeWorkload w(c.engine(), b, serve_config(offered, ctx.seed));
  w.start();
  c.run_until(kHorizon + kDrain);

  CellResult r = harvest(w);
  r.cold_restarts = fs.stats().cold_restarts;
  return r;
}

CellResult run_xfs(double offered, bool with_fault, exp::RunContext& ctx,
                   unsigned threads) {
  ClusterConfig cfg = base_config(with_fault, ctx, threads);
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 64;
  cfg.stripe_group_size = 0;  // one RAID-5 across all seventeen disks
  Cluster c(cfg);

  serve::Backends b;
  b.xfs = &c.fs();
  serve::ServeWorkload w(c.engine(), b, serve_config(offered, ctx.seed));
  w.start();
  c.run_until(kHorizon + kDrain);
  return harvest(w);
}

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "serving traffic under tail-latency SLOs - xFS vs central server",
      "'A Case for NOW': a building-wide system users can be pointed at "
      "must hold its latency tail through load and failures");
  now::bench::Sweep sweep(argc, argv, "bench/bench_serving");
  now::bench::JsonReport json(argc, argv, "bench_serving", "ms / fraction");
  json.method(
      "16 clients, 30 s simulated, open Poisson arrivals (75% reads SLO "
      "25 ms, 25% writes SLO 100 ms, zipf working set of 2000 blocks); "
      "cells cross offered load x fault plan (node 0 crash at 15 s, "
      "repair at 20 s) x backend; attainment = requests that succeeded "
      "and met their class SLO / completed");

  now::exp::Grid grid;
  grid.add("backend", kBackendLabels.size());
  grid.add("fault", kFaultLabels.size());
  grid.add("load", kLoads.size());

  std::vector<std::string> names;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto co = grid.coords(i);
    names.push_back(kBackendLabels[co[0]] + "_" +
                    (co[1] ? "crash15s" : "nofault") + "_" +
                    std::to_string(static_cast<int>(kLoads[co[2]])) + "rps");
  }

  const auto cells = sweep.run(names, [&](now::exp::RunContext& ctx) {
    const auto co = grid.coords(ctx.task_index);
    const bool xfs = co[0] == 1;
    const bool with_fault = co[1] == 1;
    const double load = kLoads[co[2]];
    return xfs ? run_xfs(load, with_fault, ctx, sweep.threads())
               : run_central(load, with_fault, ctx, sweep.threads());
  });

  now::bench::row("%-8s %-10s %-7s %9s %6s %8s %8s %8s %8s %7s %9s",
                  "backend", "fault", "load", "completed", "fail",
                  "p50 ms", "p99 ms", "p999 ms", "max ms", "attain",
                  "goodput/s");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto co = grid.coords(i);
    const CellResult& r = cells[i];
    now::bench::row(
        "%-8s %-10s %-7s %9llu %6llu %8.2f %8.2f %8.2f %8.1f %6.1f%% %9.1f",
        kBackendLabels[co[0]].c_str(), kFaultLabels[co[1]].c_str(),
        kLoadLabels[co[2]].c_str(),
        static_cast<unsigned long long>(r.all.completed),
        static_cast<unsigned long long>(r.all.failed), r.all.p50_ms,
        r.all.p99_ms, r.all.p999_ms, r.all.max_ms, 100.0 * r.all.attainment,
        r.all.goodput_per_sec);
    json.value(names[i], "offered_per_sec", r.totals.offered_per_sec);
    json.value(names[i], "arrivals", static_cast<double>(r.totals.arrivals));
    json.value(names[i], "completed", static_cast<double>(r.all.completed));
    json.value(names[i], "failed", static_cast<double>(r.all.failed));
    json.value(names[i], "in_flight_at_end",
               static_cast<double>(r.in_flight));
    json.value(names[i], "p50_ms", r.all.p50_ms);
    json.value(names[i], "p99_ms", r.all.p99_ms);
    json.value(names[i], "p999_ms", r.all.p999_ms);
    json.value(names[i], "attainment", r.all.attainment);
    json.value(names[i], "goodput_per_sec", r.all.goodput_per_sec);
    json.value(names[i], "read_p99_ms", r.read.p99_ms);
    json.value(names[i], "read_attainment", r.read.attainment);
    json.value(names[i], "write_p99_ms", r.write.p99_ms);
    json.value(names[i], "write_attainment", r.write.attainment);
    json.value(names[i], "cold_restarts",
               static_cast<double>(r.cold_restarts));
  }

  // The headline comparison: same load, same crash schedule, the only
  // difference is the file system architecture.
  now::bench::row("");
  now::bench::row("%-28s %14s %14s", "crash@15s cell", "central", "xfs");
  for (std::size_t li = 0; li < kLoads.size(); ++li) {
    const CellResult& ce = cells[grid.flat({0, 1, li})];
    const CellResult& xf = cells[grid.flat({1, 1, li})];
    now::bench::row("%-7s %-20s %13.2f %14.2f", kLoadLabels[li].c_str(),
                    "p99 ms", ce.all.p99_ms, xf.all.p99_ms);
    now::bench::row("%-7s %-20s %13.1f%% %13.1f%%", "",
                    "SLO attainment", 100.0 * ce.all.attainment,
                    100.0 * xf.all.attainment);
  }
  now::bench::row("");
  now::bench::row("expected shape: the central design's write-through disk "
                  "saturates first - queues");
  now::bench::row("outrun the 500 ms RPC timeout and attainment collapses; "
                  "under the crash it also");
  now::bench::row("restarts with a cold server cache.  xFS stripes the "
                  "same bytes over every disk");
  now::bench::row("and rides the crash out via manager takeover and "
                  "degraded reads, so its tail");
  now::bench::row("diverges from the incumbent's as load and faults "
                  "stack up.");
  return 0;
}
