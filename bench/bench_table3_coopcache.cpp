// Table 3: the impact of cooperative caching — 42 workstations with 16 MB
// caches and a 128 MB server, trace-driven, plus the algorithm ablation
// from the underlying study (Dahlin et al., OSDI '94).
//
// The four policies replay the same trace independently, so they run as a
// parallel sweep (--jobs N) with byte-identical output to the serial run.
// --threads is accepted for flag uniformity but has nothing to fan out:
// CoopCacheSim is an engine-less trace replay with no event queue to
// partition, so each point executes serially regardless (the documented
// serial fallback — output is byte-identical at any --threads value).
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "coopcache/coopcache.hpp"
#include "trace/fs_trace.hpp"

int main(int argc, char** argv) {
  using namespace now;
  now::bench::heading(
      "Table 3 - impact of cooperative caching",
      "'A Case for NOW', Table 3 (42 workstations, 16 MB/workstation, "
      "128 MB server; two-day Berkeley trace -> synthetic equivalent)");
  now::bench::Sweep sweep(argc, argv, "bench/bench_table3_coopcache");
  // Engine-less replay: nothing to partition, so --threads only tightens
  // the Sweep's jobs x threads oversubscription cap (see header note).
  (void)sweep.threads();

  trace::FsWorkloadParams wp;
  wp.clients = 42;
  wp.accesses_per_client = 60'000;
  wp.shared_blocks = 12'288;   // ~96 MB of shared executables/fonts
  wp.private_blocks = 4'096;   // ~32 MB per-client working sets
  wp.zipf_private = 1.10;
  wp.shared_fraction = 0.35;
  const auto accesses = trace::generate_fs_trace(wp);

  now::bench::row("trace: %zu accesses across %u clients (40%% warm-up "
                  "excluded from stats)",
                  accesses.size(), wp.clients);
  now::bench::row("");
  now::bench::row("%-24s %12s %16s %10s %10s", "policy", "miss rate",
                  "read response", "local", "peer");

  const coopcache::CacheCosts costs;
  const std::vector<coopcache::Policy> policies{
      coopcache::Policy::kClientServer,
      coopcache::Policy::kGreedyForwarding,
      coopcache::Policy::kCentrallyCoordinated,
      coopcache::Policy::kNChance};
  std::vector<std::string> names;
  for (const auto policy : policies) {
    names.push_back(coopcache::policy_name(policy));
  }
  const auto results = sweep.run(
      names, [&](now::exp::RunContext& ctx) {
        coopcache::CoopCacheConfig cfg;
        cfg.clients = wp.clients;
        cfg.client_cache_blocks = 2'048;   // 16 MB at 8 KB blocks
        cfg.server_cache_blocks = 16'384;  // 128 MB
        cfg.policy = policies[ctx.task_index];
        cfg.seed = ctx.seed;
        coopcache::CoopCacheSim sim(cfg);
        const std::size_t warm = accesses.size() * 2 / 5;
        for (std::size_t i = 0; i < accesses.size(); ++i) {
          if (i == warm) sim.reset_stats();
          sim.access(accesses[i].client, accesses[i].block,
                     accesses[i].is_write);
        }
        return sim.results();
      });

  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& r = results[i];
    now::bench::row("%-24s %11.1f%% %13.2f ms %9.1f%% %9.1f%%",
                    coopcache::policy_name(policies[i]), 100 * r.miss_rate(),
                    r.mean_read_response_ms(costs),
                    100 * r.local_hit_rate(),
                    100 * static_cast<double>(r.remote_client_hits) /
                        static_cast<double>(r.reads));
  }
  now::bench::row("");
  now::bench::row("paper Table 3:  client-server       16%% miss, 2.8 ms");
  now::bench::row("                cooperative caching  8%% miss, 1.6 ms");
  now::bench::row("paper claim: cooperative caching halves disk reads and "
                  "improves read performance ~80%%");
  return 0;
}
