// Table 3: the impact of cooperative caching — 42 workstations with 16 MB
// caches and a 128 MB server, trace-driven, plus the algorithm ablation
// from the underlying study (Dahlin et al., OSDI '94).
//
// The four policies replay the same trace independently, so they run as a
// parallel sweep (--jobs N) with byte-identical output to the serial run.
// --threads is accepted for flag uniformity but has nothing to fan out:
// CoopCacheSim is an engine-less trace replay with no event queue to
// partition, so each point executes serially regardless (the documented
// serial fallback — output is byte-identical at any --threads value).
#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "coopcache/coopcache.hpp"
#include "replay/cursor.hpp"
#include "trace/fs_trace.hpp"

int main(int argc, char** argv) {
  using namespace now;
  now::bench::heading(
      "Table 3 - impact of cooperative caching",
      "'A Case for NOW', Table 3 (42 workstations, 16 MB/workstation, "
      "128 MB server; two-day Berkeley trace -> synthetic equivalent)");
  now::bench::Sweep sweep(argc, argv, "bench/bench_table3_coopcache");
  // Engine-less replay: nothing to partition, so --threads only tightens
  // the Sweep's jobs x threads oversubscription cap (see header note).
  (void)sweep.threads();

  trace::FsWorkloadParams wp;
  wp.clients = 42;
  wp.accesses_per_client = 60'000;
  wp.shared_blocks = 12'288;   // ~96 MB of shared executables/fonts
  wp.private_blocks = 4'096;   // ~32 MB per-client working sets
  wp.zipf_private = 1.10;
  wp.shared_fraction = 0.35;
  const auto accesses = trace::generate_fs_trace(wp);

  now::bench::row("trace: %zu accesses across %u clients (40%% warm-up "
                  "excluded from stats)",
                  accesses.size(), wp.clients);
  now::bench::row("");
  now::bench::row("%-24s %12s %16s %10s %10s", "policy", "miss rate",
                  "read response", "local", "peer");

  const coopcache::CacheCosts costs;
  const std::vector<coopcache::Policy> policies{
      coopcache::Policy::kClientServer,
      coopcache::Policy::kGreedyForwarding,
      coopcache::Policy::kCentrallyCoordinated,
      coopcache::Policy::kNChance};
  std::vector<std::string> names;
  for (const auto policy : policies) {
    names.push_back(coopcache::policy_name(policy));
  }
  const auto results = sweep.run(
      names, [&](now::exp::RunContext& ctx) {
        coopcache::CoopCacheConfig cfg;
        cfg.clients = wp.clients;
        cfg.client_cache_blocks = 2'048;   // 16 MB at 8 KB blocks
        cfg.server_cache_blocks = 16'384;  // 128 MB
        cfg.policy = policies[ctx.task_index];
        cfg.seed = ctx.seed;
        coopcache::CoopCacheSim sim(cfg);
        const std::size_t warm = accesses.size() * 2 / 5;
        for (std::size_t i = 0; i < accesses.size(); ++i) {
          if (i == warm) sim.reset_stats();
          sim.access(accesses[i].client, accesses[i].block,
                     accesses[i].is_write);
        }
        return sim.results();
      });

  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& r = results[i];
    now::bench::row("%-24s %11.1f%% %13.2f ms %9.1f%% %9.1f%%",
                    coopcache::policy_name(policies[i]), 100 * r.miss_rate(),
                    r.mean_read_response_ms(costs),
                    100 * r.local_hit_rate(),
                    100 * static_cast<double>(r.remote_client_hits) /
                        static_cast<double>(r.reads));
  }
  now::bench::row("");
  now::bench::row("paper Table 3:  client-server       16%% miss, 2.8 ms");
  now::bench::row("                cooperative caching  8%% miss, 1.6 ms");
  now::bench::row("paper claim: cooperative caching halves disk reads and "
                  "improves read performance ~80%%");

  // --- Building scale ----------------------------------------------------
  // The study stopped at 42 clients (one server's worth); a building-wide
  // NOW has a thousand, behind 32-client racks and an oversubscribed
  // spine.  Same replay, scaled: the shared working set grows with the
  // client count (so the aggregate cache stays honest), the manager
  // prefers same-rack holders, and a cross-rack peer fetch pays two extra
  // switch crossings (+800 us on the study's ATM-era numbers).  Total
  // trace size is held constant so every scale costs the same to run.
  now::bench::row("");
  now::bench::row("building scale: 32-client racks; cross-rack peer fetch "
                  "2,050 us vs 1,250 us in-rack; --nodes caps the axis");
  now::bench::row("");
  now::bench::row("%-9s %-18s %10s %14s %8s %8s %14s", "clients", "policy",
                  "miss rate", "read response", "local", "peer",
                  "in-rack peers");

  coopcache::CacheCosts bcosts;
  bcosts.remote_client_cross_rack = sim::from_us(2'050);
  const std::vector<std::uint32_t> scales =
      now::bench::cap_axis({42, 256, 1024}, now::bench::parse_nodes(argc, argv));
  const std::vector<coopcache::Policy> bpolicies{
      coopcache::Policy::kClientServer, coopcache::Policy::kNChance};
  struct BPoint {
    std::uint32_t clients;
    coopcache::Policy policy;
  };
  std::vector<BPoint> bpoints;
  std::vector<std::string> bnames;
  for (const std::uint32_t n : scales) {
    for (const auto policy : bpolicies) {
      bpoints.push_back({n, policy});
      bnames.push_back("clients_" + std::to_string(n) + "_" +
                       coopcache::policy_name(policy));
    }
  }
  // Later sweep.run calls continue the global task-index space (so seeds
  // stay unique); subtract the first section's points to index bpoints.
  const std::size_t first_section = names.size();
  const auto bresults = sweep.run(
      bnames, [&](now::exp::RunContext& ctx) {
        const BPoint& p = bpoints[ctx.task_index - first_section];
        trace::FsWorkloadParams bwp = wp;
        bwp.clients = p.clients;
        bwp.accesses_per_client =
            std::max<std::uint32_t>(wp.accesses_per_client * 42 / p.clients,
                                    2'000);
        bwp.shared_blocks = wp.shared_blocks * p.clients / 42;
        const auto trace = trace::generate_fs_trace(bwp);
        coopcache::CoopCacheConfig cfg;
        cfg.clients = p.clients;
        cfg.client_cache_blocks = 2'048;
        cfg.server_cache_blocks = 16'384;
        cfg.policy = p.policy;
        cfg.rack_size = 32;
        cfg.costs = bcosts;
        cfg.seed = ctx.seed;
        coopcache::CoopCacheSim sim(cfg);
        const std::size_t warm = trace.size() * 2 / 5;
        for (std::size_t i = 0; i < trace.size(); ++i) {
          if (i == warm) sim.reset_stats();
          sim.access(trace[i].client, trace[i].block, trace[i].is_write);
        }
        return sim.results();
      });

  for (std::size_t i = 0; i < bpoints.size(); ++i) {
    const auto& r = bresults[i];
    const double peers = static_cast<double>(r.remote_client_hits);
    now::bench::row("%-9u %-18s %9.1f%% %11.2f ms %7.1f%% %7.1f%% %13.1f%%",
                    bpoints[i].clients,
                    coopcache::policy_name(bpoints[i].policy),
                    100 * r.miss_rate(), r.mean_read_response_ms(bcosts),
                    100 * r.local_hit_rate(),
                    100 * peers / static_cast<double>(r.reads),
                    peers > 0 ? 100 * static_cast<double>(
                                          r.rack_local_peer_hits) /
                                    peers
                              : 0.0);
  }
  now::bench::row("");
  now::bench::row("cooperation keeps paying at building scale: the "
                  "aggregate cache grows with the building while the "
                  "server's memory does not, and rack-preferring "
                  "forwarding keeps part of the peer traffic off the "
                  "oversubscribed spine.");

  // --- Recorded-trace replay (--trace <path>) ----------------------------
  // The study itself was trace-driven; this section swaps the synthetic
  // generator for a recorded stream (native fs or nfsdump-style text) and
  // replays it through the same four policies.  Each sweep point opens its
  // own streaming cursor — O(window) memory however large the recording —
  // so the section parallelizes across --jobs like the synthetic one, and
  // the engine-less replay keeps output byte-identical at any --threads.
  const std::string trace_path = now::bench::parse_trace(argc, argv);
  if (!trace_path.empty()) {
    const auto ts = replay::summarize(trace_path);
    const std::uint32_t tclients = std::max<std::uint32_t>(ts.clients, 1);
    now::bench::row("");
    now::bench::row("replayed trace: %s", trace_path.c_str());
    now::bench::row("  format %s, %llu records, %u clients, %.1f s of "
                    "recorded time (40%% warm-up excluded from stats)",
                    replay::to_string(ts.format),
                    static_cast<unsigned long long>(ts.records), tclients,
                    sim::to_sec(ts.last_at - ts.first_at));
    now::bench::row("");
    now::bench::row("%-24s %12s %16s %10s %10s", "policy", "miss rate",
                    "read response", "local", "peer");
    std::vector<std::string> rnames;
    for (const auto policy : policies) {
      rnames.push_back(std::string("replay_") +
                       coopcache::policy_name(policy));
    }
    const std::size_t replay_first = first_section + bnames.size();
    const auto rresults = sweep.run(
        rnames, [&](now::exp::RunContext& ctx) {
          coopcache::CoopCacheConfig cfg;
          cfg.clients = tclients;
          cfg.client_cache_blocks = 2'048;
          cfg.server_cache_blocks = 16'384;
          cfg.policy = policies[ctx.task_index - replay_first];
          cfg.seed = ctx.seed;
          coopcache::CoopCacheSim sim(cfg);
          const std::uint64_t warm = ts.records * 2 / 5;
          auto cur = replay::open_trace(trace_path);
          std::uint64_t i = 0;
          while (auto a = cur->next()) {
            if (i == warm) sim.reset_stats();
            sim.access(a->client, a->block, a->is_write);
            ++i;
          }
          return sim.results();
        });
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const auto& r = rresults[i];
      now::bench::row("%-24s %11.1f%% %13.2f ms %9.1f%% %9.1f%%",
                      coopcache::policy_name(policies[i]),
                      100 * r.miss_rate(), r.mean_read_response_ms(costs),
                      100 * r.local_hit_rate(),
                      r.reads > 0
                          ? 100 * static_cast<double>(r.remote_client_hits) /
                                static_cast<double>(r.reads)
                          : 0.0);
    }
    now::bench::row("");
    now::bench::row("same ranking on the recorded stream: cooperation's win "
                    "comes from the aggregate cache, not from the synthetic "
                    "generator's shape.");
  }
  return 0;
}
