// Migration costs (text): with ATM + a parallel file system, 64 MB of
// memory state moves in under 4 seconds — and the save/restore design
// beats letting the user's working set page back in from a local disk.
#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "glunix/migration.hpp"
#include "os/disk.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace now;
  now::bench::heading(
      "Process migration and memory save/restore",
      "'A Case for NOW', GLUnix sociology section ('64 Mbytes of DRAM can "
      "be restored in under 4 seconds')");

  glunix::MigrationCostModel model;
  now::bench::row("%-14s %12s %12s %14s", "memory (MB)", "save (s)",
                  "restore (s)", "migrate (s)");
  for (const std::uint64_t mb : {8ull, 16ull, 32ull, 64ull, 128ull}) {
    const std::uint64_t bytes = mb << 20;
    now::bench::row("%-14llu %12.2f %12.2f %14.2f",
                    static_cast<unsigned long long>(mb),
                    sim::to_sec(model.save_time(bytes)),
                    sim::to_sec(model.restore_time(bytes)),
                    sim::to_sec(model.migrate_time(bytes)));
  }
  now::bench::row("");
  now::bench::row("paper claim: 64 MB restored in < 4 s -> reproduced: "
                  "%.2f s",
                  sim::to_sec(model.restore_time(64ull << 20)));

  // Ablation: explicit save/restore vs the naive policy of letting the
  // returning user's working set demand-page back from the local disk.
  sim::Engine eng;
  os::Disk disk(eng, os::DiskParams{});
  const std::uint64_t ws_bytes = 64ull << 20;
  const std::uint64_t pages = ws_bytes / 8192;
  const double page_in_sec =
      sim::to_sec(disk.service_time(8192, /*sequential=*/false)) *
      static_cast<double>(pages);
  now::bench::row("");
  now::bench::row("ablation - how long until the returning user has their "
                  "64 MB working set back:");
  now::bench::row("  explicit restore via network + PFS: %8.2f s",
                  sim::to_sec(model.restore_time(ws_bytes)));
  now::bench::row("  demand paging from local disk:      %8.2f s",
                  page_in_sec);
  now::bench::row("  (the paper's anecdote: users tapped keyboards to keep "
                  "their memory from being evicted)");

  // Gang migration: "while one process is migrating, the rest of the
  // parallel program is unlikely to make much progress."  Run a 4-wide
  // gang through GLUnix, disturb one rank's machine mid-run, and compare
  // wall time with the undisturbed run.
  auto run_gang = [](bool disturb) {
    ClusterConfig cfg;
    cfg.workstations = 8;
    Cluster c(cfg);
    sim::SimTime done_at = -1;
    c.glunix().run_parallel(4, 120 * sim::kSecond, 32ull << 20,
                            [&] { done_at = c.engine().now(); });
    if (disturb) {
      c.engine().schedule_at(30 * sim::kSecond, [&c] {
        for (std::uint32_t i = 1; i < 8; ++i) {
          if (!c.node(i).cpu().idle()) {
            for (int k = 0; k < 90; ++k) {
              c.engine().schedule_in(k * sim::kSecond, [&c, i] {
                c.node(i).user_activity();
              });
            }
            return;
          }
        }
      });
    }
    c.run_until(30 * sim::kMinute);
    return sim::to_sec(done_at);
  };
  const double clean = run_gang(false);
  const double disturbed = run_gang(true);
  now::bench::row("");
  now::bench::row("gang of 4 x 120 s through GLUnix:");
  now::bench::row("  undisturbed:                        %8.1f s", clean);
  now::bench::row("  one owner returns mid-run:          %8.1f s  "
                  "(whole gang pauses for one 32 MB migration)",
                  disturbed);
  return 0;
}
