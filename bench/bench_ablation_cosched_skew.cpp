// Ablation: how tightly must the coscheduler's global slots align?
// Ousterhout-style coscheduling degrades gracefully with skew — until the
// skew approaches the slot length and "coscheduling" stops being co.
//
// The skew values are independent sweep points (--jobs N).  Each point
// runs the skewed configuration AND its own perfectly-aligned reference
// on the identical rig (same derived seed), so the "vs aligned" ratio is
// a controlled within-point comparison and every point is a pure function
// of its seed.
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exp/seed.hpp"
#include "glunix/coschedule.hpp"
#include "glunix/spmd.hpp"
#include "net/presets.hpp"
#include "net/switched.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"

namespace {

using namespace now;
using namespace now::sim::literals;

double run_connect(sim::Duration skew, std::uint64_t seed) {
  sim::Engine engine;
  net::SwitchedNetwork fabric(engine, net::cm5_fabric());
  proto::NicMux mux(fabric);
  proto::AmParams ap;
  ap.costs = proto::am_cm5();
  ap.window = 64;
  proto::AmLayer am(mux, ap);
  std::vector<std::unique_ptr<os::Node>> nodes;
  for (int i = 0; i < 4; ++i) {
    os::NodeParams p;
    p.cpu.quantum_jitter = 0.25;
    p.cpu.seed = exp::derive_seed(seed, static_cast<std::uint64_t>(i));
    nodes.push_back(std::make_unique<os::Node>(
        engine, static_cast<net::NodeId>(i), p));
    mux.attach_node(*nodes.back());
  }
  std::vector<os::Node*> ptrs;
  for (auto& n : nodes) ptrs.push_back(n.get());

  glunix::SpmdParams sp;
  sp.pattern = glunix::CommPattern::kConnect;
  sp.iterations = 30;
  sp.compute_per_iteration = 15_ms;
  sp.rpcs_per_iteration = 6;
  sp.seed = exp::derive_seed(seed, 99);
  sim::Duration app_time = 0;
  glunix::SpmdApp app(am, ptrs, sp,
                      [&](sim::Duration d) { app_time = d; });
  glunix::SpmdParams cp;
  cp.pattern = glunix::CommPattern::kComputeOnly;
  cp.iterations = 1'000'000;
  cp.compute_per_iteration = 15_ms;
  cp.seed = exp::derive_seed(seed, 100);
  glunix::SpmdApp filler(am, ptrs, cp, nullptr);
  app.start();
  filler.start();
  glunix::Coscheduler cs(engine, 100_ms, skew);
  cs.add_gang(app.gang());
  cs.add_gang(filler.gang());
  cs.start();
  engine.run_until(60 * 60 * sim::kSecond);
  return app.finished() ? sim::to_sec(app_time) : -1;
}

struct Point {
  double skewed = 0;
  double aligned = 0;
};

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "Ablation - coscheduling slot-alignment skew (Connect, 1 competitor)",
      "design-choice check for the global time-slice matrix (100 ms slots)");
  now::bench::Sweep sweep(argc, argv, "bench/bench_ablation_cosched_skew");

  const std::vector<sim::Duration> skews{0, 1_ms, 5_ms, 10_ms,
                                         25_ms, 50_ms, 90_ms};
  std::vector<std::string> names;
  for (const auto skew : skews) {
    names.push_back("skew_" + sim::format_duration(skew));
  }
  const auto points = sweep.run(names, [&](now::exp::RunContext& ctx) {
    const sim::Duration skew = skews[ctx.task_index];
    Point p;
    p.aligned = run_connect(0, ctx.seed);
    p.skewed = skew == 0 ? p.aligned : run_connect(skew, ctx.seed);
    return p;
  });

  now::bench::row("%-14s %14s %10s", "skew", "runtime (s)", "vs aligned");
  now::bench::row("%-14s %14.2f %10s", "0 (perfect)", points[0].aligned,
                  "1.00x");
  for (std::size_t i = 1; i < skews.size(); ++i) {
    now::bench::row("%-14s %14.2f %9.2fx",
                    sim::format_duration(skews[i]).c_str(), points[i].skewed,
                    points[i].skewed / points[i].aligned);
  }
  now::bench::row("");
  now::bench::row("expected shape: tolerant of skew well under the slot "
                  "length; a building-wide NOW");
  now::bench::row("does not need microsecond-synchronized clocks to "
                  "coschedule effectively.");
  return 0;
}
