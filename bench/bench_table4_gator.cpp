// Table 4: the Gator atmospheric-chemistry model's predicted execution
// time on the C-90, the Paragon, and four NOW configurations.
#include "bench_util.hpp"
#include "models/gator.hpp"

int main() {
  using namespace now::models;
  now::bench::heading(
      "Table 4 - Gator execution-time model (Demmel-Smith)",
      "'A Case for NOW', Table 4 (36 GFLOP, 3.9 GB input, 51 MB output)");

  struct PaperRow {
    double ode, transport, input, total;
  };
  const PaperRow paper[] = {
      {7, 4, 16, 27},          {12, 24, 10, 46}, {4, 23'340, 4'030, 27'374},
      {4, 192, 2'015, 2'211},  {4, 192, 10, 205}, {4, 8, 10, 21},
  };

  const GatorWorkload w;
  now::bench::row("%-32s %10s %12s %10s %10s %8s", "machine", "ODE (s)",
                  "transport", "input", "total", "$M");
  int i = 0;
  for (const auto& m : table4_machines()) {
    const auto t = gator_time(w, m);
    now::bench::row("%-32s %10.0f %12.0f %10.0f %10.0f %8.0f",
                    m.name.c_str(), t.ode_sec, t.transport_sec, t.input_sec,
                    t.total_sec, m.cost_millions);
    now::bench::row("%-32s %10.0f %12.0f %10.0f %10.0f", "  (paper)",
                    paper[i].ode, paper[i].transport, paper[i].input,
                    paper[i].total);
    ++i;
  }
  now::bench::row("");
  now::bench::row("paper claims reproduced:");
  const double base = gator_time(w, rs6000_ethernet_pvm()).total_sec;
  const double c90 = gator_time(w, c90_16()).total_sec;
  const double final_now = gator_time(w, rs6000_atm_pfs_am()).total_sec;
  const double paragon = gator_time(w, paragon_256()).total_sec;
  now::bench::row("  baseline NOW vs C-90:       %8.0fx slower "
                  "('three orders of magnitude')",
                  base / c90);
  now::bench::row("  final NOW vs Paragon:       %8.2fx (beats it)",
                  final_now / paragon);
  now::bench::row("  final NOW vs C-90:          %8.2fx at %.0f%% of the "
                  "cost",
                  final_now / c90,
                  100.0 * rs6000_atm_pfs_am().cost_millions /
                      c90_16().cost_millions);
  return 0;
}
