// Ablation: how much destination buffering (the AM credit window) does the
// Column workload need before local scheduling stops hurting it?
// ("...as long as enough buffering exists on the destination processor,
// the sending processor is not significantly slowed.")
//
// The seven window sizes are independent sweep points (--jobs N); each
// point derives all of its randomness from its own seed and runs the
// local/coscheduled pair on identical rigs.
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exp/seed.hpp"
#include "glunix/coschedule.hpp"
#include "glunix/spmd.hpp"
#include "net/presets.hpp"
#include "net/switched.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"

namespace {

using namespace now;
using namespace now::sim::literals;

double run_column(std::uint32_t window, bool coscheduled,
                  std::uint64_t seed) {
  sim::Engine engine;
  net::SwitchedNetwork fabric(engine, net::cm5_fabric());
  proto::NicMux mux(fabric);
  proto::AmParams ap;
  ap.costs = proto::am_cm5();
  ap.window = window;
  proto::AmLayer am(mux, ap);
  std::vector<std::unique_ptr<os::Node>> nodes;
  for (int i = 0; i < 4; ++i) {
    os::NodeParams p;
    p.cpu.quantum_jitter = 0.25;
    p.cpu.seed = exp::derive_seed(seed, static_cast<std::uint64_t>(i));
    nodes.push_back(std::make_unique<os::Node>(
        engine, static_cast<net::NodeId>(i), p));
    mux.attach_node(*nodes.back());
  }
  std::vector<os::Node*> ptrs;
  for (auto& n : nodes) ptrs.push_back(n.get());

  glunix::SpmdParams sp;
  sp.pattern = glunix::CommPattern::kColumn;
  sp.iterations = 30;
  sp.compute_per_iteration = 15_ms;
  sp.burst = 24;
  sp.seed = exp::derive_seed(seed, 99);
  sim::Duration app_time = 0;
  glunix::SpmdApp app(am, ptrs, sp,
                      [&](sim::Duration d) { app_time = d; });
  glunix::SpmdParams cp;
  cp.pattern = glunix::CommPattern::kComputeOnly;
  cp.iterations = 1'000'000;
  cp.compute_per_iteration = 15_ms;
  cp.seed = exp::derive_seed(seed, 100);
  glunix::SpmdApp filler(am, ptrs, cp, nullptr);
  app.start();
  filler.start();
  std::unique_ptr<glunix::Coscheduler> cs;
  if (coscheduled) {
    cs = std::make_unique<glunix::Coscheduler>(engine, 100_ms);
    cs->add_gang(app.gang());
    cs->add_gang(filler.gang());
    cs->start();
  }
  engine.run_until(60 * 60 * sim::kSecond);
  return app.finished() ? sim::to_sec(app_time) : -1;
}

struct Point {
  double local = 0;
  double cosched = 0;
};

}  // namespace

int main(int argc, char** argv) {
  now::bench::heading(
      "Ablation - Column vs destination buffering (AM credit window)",
      "'A Case for NOW', Figure 4 discussion: buffering absorbs bursts "
      "until it doesn't");
  now::bench::Sweep sweep(argc, argv, "bench/bench_ablation_am_window");

  now::bench::row("%-10s %12s %12s %10s", "window", "local (s)",
                  "cosched (s)", "slowdown");
  const std::vector<std::uint32_t> windows{8, 16, 32, 64, 128, 256, 512};
  std::vector<std::string> names;
  for (const std::uint32_t w : windows) {
    names.push_back("window_" + std::to_string(w));
  }
  const auto points = sweep.run(names, [&](now::exp::RunContext& ctx) {
    const std::uint32_t w = windows[ctx.task_index];
    Point p;
    p.local = run_column(w, false, ctx.seed);
    p.cosched = run_column(w, true, ctx.seed);
    return p;
  });
  for (std::size_t i = 0; i < windows.size(); ++i) {
    now::bench::row("%-10u %12.2f %12.2f %9.2fx", windows[i],
                    points[i].local, points[i].cosched,
                    points[i].local / points[i].cosched);
  }
  now::bench::row("");
  now::bench::row("expected shape: small windows stall the senders under "
                  "local scheduling; once the");
  now::bench::row("window covers a full descheduling epoch of bursts, the "
                  "slowdown collapses toward 1x.");
  return 0;
}
