#include "obs/sampler.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace now::obs {

void Sampler::watch(std::string path) {
  columns_.push_back(std::move(path));
}

void Sampler::start() {
  if (pending_ != 0) return;
  // Priority +1: sample after all same-instant simulation events have run.
  pending_ = engine_.schedule_in(period_, [this] { tick(); }, 1);
}

void Sampler::stop() {
  if (pending_ == 0) return;
  engine_.cancel(pending_);
  pending_ = 0;
}

void Sampler::tick() {
  times_.push_back(engine_.now());
  for (const std::string& path : columns_) {
    double v = 0.0;
    registry_.read(path, &v);
    values_.push_back(v);
  }
  pending_ = engine_.schedule_in(period_, [this] { tick(); }, 1);
}

namespace {
void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}
}  // namespace

void Sampler::dump_csv(std::ostream& os) const {
  std::string out = "time_ms";
  for (const std::string& c : columns_) {
    out += ',';
    out += c;
  }
  out += '\n';
  const std::size_t width = columns_.size();
  for (std::size_t r = 0; r < times_.size(); ++r) {
    append_number(out, sim::to_ms(times_[r]));
    for (std::size_t c = 0; c < width; ++c) {
      out += ',';
      append_number(out, values_[r * width + c]);
    }
    out += '\n';
  }
  os << out;
}

bool Sampler::dump_csv_to(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  dump_csv(f);
  return static_cast<bool>(f);
}

void Sampler::dump_json(std::ostream& os) const {
  std::string out = "{\"columns\": [\"time_ms\"";
  for (const std::string& c : columns_) {
    out += ", \"";
    out += c;
    out += '"';
  }
  out += "], \"rows\": [";
  const std::size_t width = columns_.size();
  for (std::size_t r = 0; r < times_.size(); ++r) {
    out += r == 0 ? "\n[" : ",\n[";
    append_number(out, sim::to_ms(times_[r]));
    for (std::size_t c = 0; c < width; ++c) {
      out += ", ";
      append_number(out, values_[r * width + c]);
    }
    out += ']';
  }
  out += "\n]}\n";
  os << out;
}

}  // namespace now::obs
