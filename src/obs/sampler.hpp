// now::obs — periodic time-series sampler.
//
// A Sampler is a simulated actor: every `period` of *simulated* time it
// snapshots a chosen set of registry instruments (via MetricsRegistry::read,
// so gauges read their level and counters their running total) and appends
// one row to an in-memory table.  After the run the table dumps as CSV
// ("time_ms,net.link0.queue_depth,...") or JSON — the raw material for the
// utilization-over-time plots in the paper's Figure 3 discussion.
//
// Like every obs component the sampler only consumes simulated time; its
// tick is an ordinary engine event, so sampling is deterministic and, at
// priority +1, observes the state *after* all same-instant simulation work.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace now::obs {

class Sampler {
 public:
  Sampler(sim::Engine& engine, MetricsRegistry& registry, sim::Duration period)
      : engine_(engine), registry_(registry), period_(period) {}
  ~Sampler() { stop(); }
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Adds `path` as a column.  Unregistered paths sample as 0 until the
  /// instrument appears.  Call before start().
  void watch(std::string path);

  /// Begins ticking every `period`, first sample one period from now.
  void start();
  /// Cancels the pending tick; recorded rows are kept.
  void stop();

  std::size_t rows() const { return times_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }

  /// "time_ms,<path>,..." header then one row per sample.
  void dump_csv(std::ostream& os) const;
  bool dump_csv_to(const std::string& path) const;
  /// {"columns": [...], "rows": [[t_ms, v, ...], ...]}
  void dump_json(std::ostream& os) const;

 private:
  void tick();

  sim::Engine& engine_;
  MetricsRegistry& registry_;
  sim::Duration period_;
  sim::EventId pending_ = 0;
  std::vector<std::string> columns_;
  std::vector<sim::SimTime> times_;
  std::vector<double> values_;  // rows() * columns() row-major samples
};

}  // namespace now::obs
