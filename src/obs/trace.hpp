// now::obs — span tracing in simulated time.
//
// Spans and instant events are recorded into a bounded ring buffer and
// exported as Chrome trace-event JSON, loadable in Perfetto (ui.perfetto.dev)
// or chrome://tracing.  The mapping puts one *process* row per workstation
// (pid = node id) and one *thread* track per module (tid = interned track:
// "net", "proto", "xfs", "glunix", ...), so a trace reads as "what was every
// layer of node 7 doing at t = 1.83 s".
//
// Timestamps are simulated time — the tracer holds a pointer to the engine's
// clock (set_clock), never the wall clock, so traces are as deterministic as
// the simulation itself.  Most instrumentation sites use the explicit
// complete(node, track, name, start, end) form because interesting intervals
// (message lifetimes, page-fault service, migrations) span many callbacks;
// the RAII Span covers the lexically scoped cases.
//
// Everything is a no-op until enable() is called, and each site guards on
// enabled() before doing any string work, so an untraced run pays one load
// and branch per site.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/log.hpp"
#include "sim/spinlock.hpp"
#include "sim/time.hpp"

namespace now::sim {
class Engine;
}

namespace now::obs {

using TrackId = std::uint16_t;

/// Events whose node is the cluster itself, not a workstation (the GLUnix
/// master's global decisions, log lines without a node).
inline constexpr std::uint32_t kClusterNode = 0xFFFFFFFFu;

class Tracer {
 public:
  /// Starts recording, with room for `capacity` events; once full, the ring
  /// overwrites the oldest events (dropped() counts them).
  void enable(std::size_t capacity = 1u << 20);
  void disable() { recording_ = false; }
  bool enabled() const { return recording_ && obs::enabled(); }
  void clear();

  /// Binds the simulated clock used by instant()/Span.  The explicit-time
  /// overloads work without one.
  void set_clock(const sim::Engine* engine) { clock_ = engine; }
  sim::SimTime clock_now() const;

  /// Interns a module track name ("net", "xfs", ...).  Stable for the
  /// tracer's lifetime; callable before enable().
  TrackId track(std::string_view module);

  /// Records a completed span [start, end] on `node`'s `track`.
  void complete(std::uint32_t node, TrackId track, std::string_view name,
                sim::SimTime start, sim::SimTime end);

  /// Records a point event at the bound clock's current time / at `at`.
  void instant(std::uint32_t node, TrackId track, std::string_view name);
  void instant_at(std::uint32_t node, TrackId track, std::string_view name,
                  sim::SimTime at);

  std::size_t size() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  /// Chrome trace-event JSON ({"traceEvents": [...]}), with process/thread
  /// metadata naming the node and module tracks.  Event order is the
  /// deterministic recording order.
  void export_chrome_json(std::ostream& os) const;
  bool export_chrome_json(const std::string& path) const;

 private:
  struct Event {
    enum class Phase : std::uint8_t { kComplete, kInstant };
    Phase phase = Phase::kInstant;
    TrackId track = 0;
    std::uint32_t node = 0;
    sim::SimTime ts = 0;
    sim::Duration dur = 0;
    std::string name;
  };

  void push(Event e);

  bool recording_ = false;
  const sim::Engine* clock_ = nullptr;
  std::vector<Event> events_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // next overwrite position once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<std::string> tracks_;
  // Serializes ring pushes and track interning: the lanes of one partitioned
  // simulation share a single tracer.  Uncontended (serial runs) this is one
  // atomic exchange per recorded event, nothing per untraced site.
  sim::SpinLock lock_;
};

/// The calling thread's active tracer: its override if one is installed,
/// else the process-wide default.  Recording (push/track) is spinlocked so
/// the lanes of a partitioned run can share one tracer, but enable/clear/
/// export remain single-threaded; concurrent *simulations* must each run
/// against their own tracer — which the per-thread override (and
/// exp::ScopedRunContext, which installs it) provides.
Tracer& tracer();

/// Rebinds obs::tracer() on this thread to `t` (nullptr = back to the
/// process default) and returns the previous override.  The caller owns
/// `t`'s lifetime.
Tracer* set_thread_tracer(Tracer* t);

/// Lexically scoped span on the process-wide tracer, stamped with the bound
/// simulated clock.  Nest freely; Perfetto renders the nesting.
class Span {
 public:
  Span(std::uint32_t node, TrackId track, std::string_view name)
      : node_(node), track_(track) {
    if (tracer().enabled()) {
      open_ = true;
      start_ = tracer().clock_now();
      name_ = name;
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Closes the span early (idempotent).
  void end() {
    if (!open_) return;
    open_ = false;
    tracer().complete(node_, track_, name_, start_, tracer().clock_now());
  }

 private:
  std::uint32_t node_;
  TrackId track_;
  bool open_ = false;
  sim::SimTime start_ = 0;
  std::string name_;
};

/// Mirrors sim::log lines at or above `min_level` into the tracer as instant
/// events (track = the log component) while still printing them to stderr —
/// the "obs sink" behind src/sim/log.  Call stop_log_mirror() to restore the
/// plain stderr sink.
void mirror_logs_to_trace(sim::LogLevel min_level = sim::LogLevel::kInfo);
void stop_log_mirror();

}  // namespace now::obs
