#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "sim/engine.hpp"

namespace now::obs {

namespace {
Tracer& process_tracer() {
  static Tracer t;
  return t;
}
thread_local Tracer* t_tracer = nullptr;
}  // namespace

Tracer& tracer() {
  return t_tracer != nullptr ? *t_tracer : process_tracer();
}

Tracer* set_thread_tracer(Tracer* t) {
  Tracer* prev = t_tracer;
  t_tracer = t;
  return prev;
}

sim::SimTime Tracer::clock_now() const {
  return clock_ == nullptr ? 0 : clock_->now();
}

void Tracer::enable(std::size_t capacity) {
  recording_ = true;
  if (capacity == 0) capacity = 1;
  capacity_ = capacity;
  events_.clear();
  events_.reserve(std::min<std::size_t>(capacity, 4096));
  head_ = 0;
  dropped_ = 0;
}

void Tracer::clear() {
  events_.clear();
  head_ = 0;
  dropped_ = 0;
}

TrackId Tracer::track(std::string_view module) {
  sim::SpinGuard g(lock_);
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == module) return static_cast<TrackId>(i);
  }
  tracks_.emplace_back(module);
  return static_cast<TrackId>(tracks_.size() - 1);
}

void Tracer::push(Event e) {
  sim::SpinGuard g(lock_);
  if (events_.size() < capacity_) {
    events_.push_back(std::move(e));
    return;
  }
  // Ring is full: overwrite the oldest event.
  events_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void Tracer::complete(std::uint32_t node, TrackId track, std::string_view name,
                      sim::SimTime start, sim::SimTime end) {
  if (!enabled()) return;
  if (end < start) std::swap(start, end);
  push(Event{Event::Phase::kComplete, track, node, start, end - start,
             std::string(name)});
}

void Tracer::instant(std::uint32_t node, TrackId track,
                     std::string_view name) {
  instant_at(node, track, name, clock_now());
}

void Tracer::instant_at(std::uint32_t node, TrackId track,
                        std::string_view name, sim::SimTime at) {
  if (!enabled()) return;
  push(Event{Event::Phase::kInstant, track, node, at, 0, std::string(name)});
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Chrome trace timestamps are microseconds.  Emitted as "<us>.<frac>" from
/// the integral nanosecond clock, so no floating-point formatting is
/// involved and dumps are bit-stable.
void append_us(std::string& out, sim::SimTime ns) {
  out += std::to_string(ns / 1000);
  const auto frac = static_cast<int>(ns % 1000);
  if (frac != 0) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), ".%03d", frac);
    out += buf;
  }
}

}  // namespace

void Tracer::export_chrome_json(std::ostream& os) const {
  std::string out;
  out.reserve(events_.size() * 96 + 4096);
  out += "{\"traceEvents\": [\n";

  // Metadata first: name each (node, track) pair that actually appears.
  std::set<std::uint32_t> nodes;
  std::set<std::pair<std::uint32_t, TrackId>> threads;
  for (const Event& e : events_) {
    nodes.insert(e.node);
    threads.insert({e.node, e.track});
  }
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const std::uint32_t n : nodes) {
    sep();
    out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ";
    out += std::to_string(n);
    out += ", \"args\": {\"name\": \"";
    out += n == kClusterNode ? std::string("cluster")
                             : "node " + std::to_string(n);
    out += "\"}}";
  }
  for (const auto& [n, t] : threads) {
    sep();
    out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": ";
    out += std::to_string(n);
    out += ", \"tid\": ";
    out += std::to_string(t);
    out += ", \"args\": {\"name\": \"";
    append_escaped(out, t < tracks_.size() ? tracks_[t] : "track");
    out += "\"}}";
  }

  // Ring order: oldest surviving event first.
  const std::size_t n_events = events_.size();
  for (std::size_t i = 0; i < n_events; ++i) {
    const Event& e =
        events_[n_events == capacity_ ? (head_ + i) % n_events : i];
    sep();
    out += "{\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"cat\": \"";
    append_escaped(out, e.track < tracks_.size() ? tracks_[e.track] : "track");
    if (e.phase == Event::Phase::kComplete) {
      out += "\", \"ph\": \"X\", \"ts\": ";
      append_us(out, e.ts);
      out += ", \"dur\": ";
      append_us(out, e.dur);
    } else {
      out += "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": ";
      append_us(out, e.ts);
    }
    out += ", \"pid\": ";
    out += std::to_string(e.node);
    out += ", \"tid\": ";
    out += std::to_string(e.track);
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  os << out;
}

bool Tracer::export_chrome_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  export_chrome_json(f);
  return static_cast<bool>(f);
}

// --- Log mirroring ------------------------------------------------------

void mirror_logs_to_trace(sim::LogLevel min_level) {
  sim::set_log_sink([min_level](sim::LogLevel level, sim::SimTime at,
                                const std::string& component,
                                const std::string& message) {
    std::fprintf(stderr, "%s\n",
                 sim::format_log_line(level, at, component, message).c_str());
    Tracer& t = tracer();
    if (level >= min_level && t.enabled()) {
      t.instant_at(kClusterNode, t.track(component), component + ": " + message,
                   at);
    }
  });
}

void stop_log_mirror() { sim::set_log_sink(nullptr); }

}  // namespace now::obs
