#include "obs/metrics.hpp"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace now::obs {

namespace {
MetricsRegistry& process_metrics() {
  static MetricsRegistry registry;
  return registry;
}
thread_local MetricsRegistry* t_metrics = nullptr;
}  // namespace

MetricsRegistry& metrics() {
  return t_metrics != nullptr ? *t_metrics : process_metrics();
}

MetricsRegistry* set_thread_metrics(MetricsRegistry* r) {
  MetricsRegistry* prev = t_metrics;
  t_metrics = r;
  return prev;
}

template <typename T>
T& MetricsRegistry::get(std::string_view path) {
  auto it = instruments_.find(path);
  if (it == instruments_.end()) {
    it = instruments_.emplace(std::string(path), Instrument(T{})).first;
    return std::get<T>(it->second);
  }
  T* existing = std::get_if<T>(&it->second);
  assert(existing != nullptr && "instrument re-registered with another kind");
  if (existing != nullptr) return *existing;
  // Release-build fallback: park the mismatched caller on a suffixed path so
  // neither party corrupts the other's instrument.
  return get<T>(std::string(path) + ".kind_conflict");
}

Counter& MetricsRegistry::counter(std::string_view path) {
  return get<Counter>(path);
}

Gauge& MetricsRegistry::gauge(std::string_view path) {
  return get<Gauge>(path);
}

Summary& MetricsRegistry::summary(std::string_view path) {
  return get<Summary>(path);
}

Histogram& MetricsRegistry::histogram(std::string_view path, double lo,
                                      double growth) {
  auto it = instruments_.find(path);
  if (it == instruments_.end()) {
    it = instruments_.emplace(std::string(path), Instrument(Histogram(lo, growth)))
             .first;
  }
  Histogram* existing = std::get_if<Histogram>(&it->second);
  assert(existing != nullptr && "instrument re-registered with another kind");
  if (existing != nullptr) return *existing;
  return histogram(std::string(path) + ".kind_conflict", lo, growth);
}

const Counter* MetricsRegistry::find_counter(std::string_view path) const {
  const auto it = instruments_.find(path);
  return it == instruments_.end() ? nullptr : std::get_if<Counter>(&it->second);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view path) const {
  const auto it = instruments_.find(path);
  return it == instruments_.end() ? nullptr : std::get_if<Gauge>(&it->second);
}

const Summary* MetricsRegistry::find_summary(std::string_view path) const {
  const auto it = instruments_.find(path);
  return it == instruments_.end() ? nullptr : std::get_if<Summary>(&it->second);
}

const Histogram* MetricsRegistry::find_histogram(std::string_view path) const {
  const auto it = instruments_.find(path);
  return it == instruments_.end() ? nullptr
                                  : std::get_if<Histogram>(&it->second);
}

bool MetricsRegistry::read(std::string_view path, double* out) const {
  const auto it = instruments_.find(path);
  if (it == instruments_.end()) return false;
  struct Reader {
    double operator()(const Counter& c) const {
      return static_cast<double>(c.value());
    }
    double operator()(const Gauge& g) const { return g.value(); }
    double operator()(const Summary& s) const { return s.value().mean(); }
    double operator()(const Histogram& h) const { return h.value().mean(); }
  };
  *out = std::visit(Reader{}, it->second);
  return true;
}

namespace {

/// Shortest round-trippable rendering, identical across platforms for
/// identical doubles — what keeps two-run dump diffs empty.
void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_summary_json(std::string& out, const sim::Summary& s) {
  out += "{\"count\": ";
  out += std::to_string(s.count());
  out += ", \"mean\": ";
  append_number(out, s.mean());
  out += ", \"min\": ";
  append_number(out, s.min());
  out += ", \"max\": ";
  append_number(out, s.max());
  out += ", \"stddev\": ";
  append_number(out, s.stddev());
  out += "}";
}

struct JsonValue {
  std::string& out;
  void operator()(const Counter& c) const { out += std::to_string(c.value()); }
  void operator()(const Gauge& g) const { append_number(out, g.value()); }
  void operator()(const Summary& s) const {
    append_summary_json(out, s.value());
  }
  void operator()(const Histogram& h) const {
    out += "{\"count\": ";
    out += std::to_string(h.value().count());
    out += ", \"mean\": ";
    append_number(out, h.value().mean());
    out += ", \"p50\": ";
    append_number(out, h.value().percentile(0.50));
    out += ", \"p95\": ";
    append_number(out, h.value().percentile(0.95));
    out += ", \"p99\": ";
    append_number(out, h.value().percentile(0.99));
    out += ", \"max\": ";
    append_number(out, h.value().max());
    out += "}";
  }
};

}  // namespace

std::string MetricsRegistry::dump_json() const {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [path, inst] : instruments_) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"";
    out += path;  // paths are registered from code literals; no escaping
    out += "\": ";
    std::visit(JsonValue{out}, inst);
  }
  out += "\n}\n";
  return out;
}

void MetricsRegistry::dump_json(std::ostream& os) const { os << dump_json(); }

bool MetricsRegistry::dump_json_to(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << dump_json();
  return static_cast<bool>(f);
}

void MetricsRegistry::dump_text(std::ostream& os) const {
  struct Text {
    std::ostream& os;
    void operator()(const Counter& c) const { os << c.value(); }
    void operator()(const Gauge& g) const { os << g.value(); }
    void operator()(const Summary& s) const {
      os << "count=" << s.value().count() << " mean=" << s.value().mean()
         << " min=" << s.value().min() << " max=" << s.value().max();
    }
    void operator()(const Histogram& h) const {
      os << "count=" << h.value().count() << " mean=" << h.value().mean()
         << " p50=" << h.value().percentile(0.5)
         << " p99=" << h.value().percentile(0.99);
    }
  };
  for (const auto& [path, inst] : instruments_) {
    os << "  " << path << " = ";
    std::visit(Text{os}, inst);
    os << "\n";
  }
}

}  // namespace now::obs
