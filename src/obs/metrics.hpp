// now::obs — cluster-wide observability: the metrics registry.
//
// Every subsystem registers instruments under dotted paths
// ("net.drops", "xfs.manager.takeovers", "am.msg_latency_us") and caches the
// returned handle, so the hot path is one pointer dereference plus a branch
// on the global enable flag — no string lookups after construction.  The
// registry itself is process-wide (obs::metrics()): modules deep inside the
// stack instrument themselves without threading a registry pointer through
// every constructor, and the Cluster facade simply re-exports it.
//
// Determinism contract: instruments are only ever updated from simulated
// events, dumps iterate in sorted path order, and no wall-clock value is
// recorded anywhere — two runs with the same seed produce byte-identical
// dumps.  Disabling observability (set_enabled(false), or compiling with
// -DNOW_OBS_DISABLED) reduces every update to a dead branch.
//
// Threading model: a MetricsRegistry (like the Engine whose events update
// it) is engine-confined — one simulation, one thread, no locks.  The
// process-wide default returned by obs::metrics() can be rebound per
// thread (set_thread_metrics), which is how now::exp gives each of N
// concurrent simulations its own registry while every instrumentation
// site keeps calling plain obs::metrics().
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <variant>

#include "sim/stats.hpp"

namespace now::obs {

namespace detail {
/// Single process-wide kill switch shared by every instrument update and
/// trace emission.  Atomic (relaxed) so concurrent simulations may read it
/// while a test toggles it; the toggle itself is not synchronized with
/// in-flight updates.
inline std::atomic<bool> g_enabled{true};
}  // namespace detail

/// True when instrumentation should record.  Compiled to `false` (and the
/// guarded updates to nothing) under -DNOW_OBS_DISABLED.
inline bool enabled() {
#ifdef NOW_OBS_DISABLED
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic event count ("packets dropped", "segments cleaned").
class Counter {
 public:
  void inc(std::uint64_t by = 1) {
    if (enabled()) v_ += by;
  }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Instantaneous level ("run-queue length", "log utilization").
class Gauge {
 public:
  void set(double v) {
    if (enabled()) v_ = v;
  }
  void add(double d) {
    if (enabled()) v_ += d;
  }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// Streaming distribution without percentile queries (min/mean/max/stddev).
class Summary {
 public:
  void observe(double x) {
    if (enabled()) s_.add(x);
  }
  const sim::Summary& value() const { return s_; }

 private:
  sim::Summary s_;
};

/// Log-binned distribution with percentile queries.
class Histogram {
 public:
  explicit Histogram(double lo = 1.0, double growth = 1.05) : h_(lo, growth) {}
  void observe(double x) {
    if (enabled()) h_.add(x);
  }
  const sim::Histogram& value() const { return h_; }

 private:
  sim::Histogram h_;
};

/// Hierarchical instrument registry keyed by dotted paths.
///
/// counter()/gauge()/summary()/histogram() create on first use and return a
/// stable reference (node-based storage: handles never move); asking for an
/// existing path with a different kind aborts in debug builds and returns a
/// freshly suffixed instrument in release ones.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view path);
  Gauge& gauge(std::string_view path);
  Summary& summary(std::string_view path);
  Histogram& histogram(std::string_view path, double lo = 1.0,
                       double growth = 1.05);

  const Counter* find_counter(std::string_view path) const;
  const Gauge* find_gauge(std::string_view path) const;
  const Summary* find_summary(std::string_view path) const;

  /// Scalar reading of any instrument: counter value, gauge value, or the
  /// mean of a summary/histogram.  False if `path` is not registered.
  bool read(std::string_view path, double* out) const;

  /// All registered paths, sorted (the registry's native order).
  std::size_t size() const { return instruments_.size(); }

  /// Deterministic dumps: sorted key order, no wall-clock anything.
  void dump_json(std::ostream& os) const;
  void dump_text(std::ostream& os) const;
  std::string dump_json() const;
  bool dump_json_to(const std::string& path) const;

  /// Drops every instrument.  Outstanding handles dangle; only call between
  /// experiments, before the next round of constructors re-register.
  void reset() { instruments_.clear(); }

 private:
  using Instrument = std::variant<Counter, Gauge, Summary, Histogram>;

  template <typename T>
  T& get(std::string_view path);

  std::map<std::string, Instrument, std::less<>> instruments_;
};

/// The calling thread's active registry: its override if one is installed,
/// else the process-wide default.  Handles cached from it are confined to
/// the simulation that cached them.
MetricsRegistry& metrics();

/// Rebinds obs::metrics() on this thread to `r` (nullptr = back to the
/// process default) and returns the previous override.  The caller owns
/// `r`'s lifetime; exp::ScopedRunContext pairs install/restore with a run.
MetricsRegistry* set_thread_metrics(MetricsRegistry* r);

}  // namespace now::obs
