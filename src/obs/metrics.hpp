// now::obs — cluster-wide observability: the metrics registry.
//
// Every subsystem registers instruments under dotted paths
// ("net.drops", "xfs.manager.takeovers", "am.msg_latency_us") and caches the
// returned handle, so the hot path is one pointer dereference plus a branch
// on the global enable flag — no string lookups after construction.  The
// registry itself is process-wide (obs::metrics()): modules deep inside the
// stack instrument themselves without threading a registry pointer through
// every constructor, and the Cluster facade simply re-exports it.
//
// Determinism contract: instruments are only ever updated from simulated
// events, dumps iterate in sorted path order, and no wall-clock value is
// recorded anywhere — two runs with the same seed produce byte-identical
// dumps.  Disabling observability (set_enabled(false), or compiling with
// -DNOW_OBS_DISABLED) reduces every update to a dead branch.
//
// Threading model: the registry's *structure* (instrument registration,
// dumps) is engine-confined — one simulation, one thread — and the
// process-wide default returned by obs::metrics() can be rebound per
// thread (set_thread_metrics), which is how now::exp gives each of N
// concurrent simulations its own registry.  Instrument *updates* through
// cached handles are additionally thread-safe, because one partitioned
// simulation (sim::ParallelEngine) updates a single registry from several
// lanes at once: Counter/Gauge are relaxed atomics (their final values are
// exact sums/last-stores either way) and Summary/Histogram serialize
// observe() behind a spinlock.  Registration stays single-threaded:
// partitioned components resolve every path before the run starts.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <variant>

#include "sim/spinlock.hpp"
#include "sim/stats.hpp"

namespace now::obs {

namespace detail {
/// Single process-wide kill switch shared by every instrument update and
/// trace emission.  Atomic (relaxed) so concurrent simulations may read it
/// while a test toggles it; the toggle itself is not synchronized with
/// in-flight updates.
inline std::atomic<bool> g_enabled{true};
}  // namespace detail

/// True when instrumentation should record.  Compiled to `false` (and the
/// guarded updates to nothing) under -DNOW_OBS_DISABLED.
inline bool enabled() {
#ifdef NOW_OBS_DISABLED
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic event count ("packets dropped", "segments cleaned").
/// Updates are relaxed atomic adds: lanes of a partitioned run may bump the
/// same counter concurrently, and the total is exact regardless of order.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& o) : v_(o.value()) {}
  Counter(Counter&& o) noexcept : v_(o.value()) {}
  void inc(std::uint64_t by = 1) {
    if (enabled()) v_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level ("run-queue length", "log utilization").
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& o) : v_(o.value()) {}
  Gauge(Gauge&& o) noexcept : v_(o.value()) {}
  void set(double v) {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  void add(double d) {
    if (!enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Streaming distribution without percentile queries (min/mean/max/stddev).
/// observe() serializes behind a spinlock; count/min/max stay exact under
/// partitioned execution, while sum-derived moments (mean/stddev) depend on
/// floating-point accumulation order — see DESIGN.md §12.
class Summary {
 public:
  Summary() = default;
  Summary(const Summary& o) : s_(o.s_) {}
  Summary(Summary&& o) noexcept : s_(o.s_) {}
  void observe(double x) {
    if (!enabled()) return;
    sim::SpinGuard g(lock_);
    s_.add(x);
  }
  const sim::Summary& value() const { return s_; }

 private:
  sim::Summary s_;
  mutable sim::SpinLock lock_;
};

/// Log-binned distribution with percentile queries.  Same locking
/// discipline as Summary; bin counts are exact under partitioning.
class Histogram {
 public:
  explicit Histogram(double lo = 1.0, double growth = 1.05) : h_(lo, growth) {}
  Histogram(const Histogram& o) : h_(o.h_) {}
  Histogram(Histogram&& o) noexcept : h_(o.h_) {}
  void observe(double x) {
    if (!enabled()) return;
    sim::SpinGuard g(lock_);
    h_.add(x);
  }
  const sim::Histogram& value() const { return h_; }

 private:
  sim::Histogram h_;
  mutable sim::SpinLock lock_;
};

/// Hierarchical instrument registry keyed by dotted paths.
///
/// counter()/gauge()/summary()/histogram() create on first use and return a
/// stable reference (node-based storage: handles never move); asking for an
/// existing path with a different kind aborts in debug builds and returns a
/// freshly suffixed instrument in release ones.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view path);
  Gauge& gauge(std::string_view path);
  Summary& summary(std::string_view path);
  Histogram& histogram(std::string_view path, double lo = 1.0,
                       double growth = 1.05);

  const Counter* find_counter(std::string_view path) const;
  const Gauge* find_gauge(std::string_view path) const;
  const Summary* find_summary(std::string_view path) const;
  const Histogram* find_histogram(std::string_view path) const;

  /// Scalar reading of any instrument: counter value, gauge value, or the
  /// mean of a summary/histogram.  False if `path` is not registered.
  bool read(std::string_view path, double* out) const;

  /// All registered paths, sorted (the registry's native order).
  std::size_t size() const { return instruments_.size(); }

  /// Deterministic dumps: sorted key order, no wall-clock anything.
  void dump_json(std::ostream& os) const;
  void dump_text(std::ostream& os) const;
  std::string dump_json() const;
  bool dump_json_to(const std::string& path) const;

  /// Drops every instrument.  Outstanding handles dangle; only call between
  /// experiments, before the next round of constructors re-register.
  void reset() { instruments_.clear(); }

 private:
  using Instrument = std::variant<Counter, Gauge, Summary, Histogram>;

  template <typename T>
  T& get(std::string_view path);

  std::map<std::string, Instrument, std::less<>> instruments_;
};

/// The calling thread's active registry: its override if one is installed,
/// else the process-wide default.  Handles cached from it are confined to
/// the simulation that cached them.
MetricsRegistry& metrics();

/// Rebinds obs::metrics() on this thread to `r` (nullptr = back to the
/// process default) and returns the previous override.  The caller owns
/// `r`'s lifetime; exp::ScopedRunContext pairs install/restore with a run.
MetricsRegistry* set_thread_metrics(MetricsRegistry* r);

}  // namespace now::obs
