// now::serve — mapping arrivals onto the real subsystems.
//
// A serving request is not an abstract token: each arrival becomes an
// actual operation against the stack this repo already has — an xFS read
// or write (or the central-server incumbent, for comparison), a
// cooperative-cache-mediated read charged at the study's per-level costs,
// or a GLUnix compute-job submission that really queues for an idle
// machine.  RequestMix owns the *choice*: weighted request classes, each
// with its own working set (Zipf-skewed block popularity), SLO threshold,
// and — for compute — CPU demand.  All draws come from per-client
// seed-derived streams, so the request sequence is as reproducible as the
// arrival schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace now::serve {

enum class RequestOp : std::uint8_t {
  kFileRead,   // xFS / CentralServerFs read
  kFileWrite,  // xFS / CentralServerFs write
  kCacheRead,  // cooperative-cache read (CoopCacheSim, per-level costs)
  kCompute,    // GLUnix remote batch job
};

const char* to_string(RequestOp op);

struct RequestClass {
  std::string name = "read";
  RequestOp op = RequestOp::kFileRead;
  /// Relative share of arrivals (normalized across the mix).
  double weight = 1.0;
  /// End-to-end latency threshold this class is judged against.
  sim::Duration slo = 50 * sim::kMillisecond;
  /// Distinct blocks file/cache requests of this class touch.
  std::uint32_t working_set = 2'000;
  /// Zipf exponent for block popularity (0 = uniform).
  double zipf_s = 0.8;
  /// kCompute: CPU demand and checkpointable state per job.
  sim::Duration compute_work = 50 * sim::kMillisecond;
  std::uint64_t compute_memory_bytes = 8ull << 20;
};

class RequestMix {
 public:
  /// At least one class with positive weight is required.
  RequestMix(std::vector<RequestClass> classes, std::uint64_t seed);

  std::size_t size() const { return classes_.size(); }
  const RequestClass& at(std::size_t i) const { return classes_.at(i); }

  /// Pre-creates the per-client streams for clients [0, n).  Each stream
  /// depends only on (seed, client) — eager creation draws nothing — so
  /// this changes no sequence; it exists because lane-partitioned runs
  /// draw for *different* clients concurrently, and pre-sizing makes
  /// those draws touch disjoint, never-reallocated slots.  Serial callers
  /// can skip it: rng() grows the table on demand.
  void ensure_clients(std::uint32_t n);

  /// Draws the class index of `client`'s next request (weighted).
  std::size_t pick_class(std::uint32_t client);

  /// Draws the block a file/cache request of class `cls` touches
  /// (Zipf-skewed over the class working set, from the same per-client
  /// stream as pick_class so the whole request is one deterministic
  /// sequence per client).
  std::uint64_t pick_block(std::size_t cls, std::uint32_t client);

 private:
  sim::Pcg32& rng(std::uint32_t client);

  std::vector<RequestClass> classes_;
  std::vector<double> cum_weight_;  // inclusive prefix sums
  std::vector<sim::ZipfSampler> zipf_;
  std::vector<sim::Pcg32> rng_;  // per client, indexed by client id
  std::uint64_t seed_;
};

}  // namespace now::serve
