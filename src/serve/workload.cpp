#include "serve/workload.hpp"

#include <cassert>

namespace now::serve {

ServeWorkload::ServeWorkload(sim::Engine& engine, Backends backends,
                             ServeConfig cfg)
    : engine_(engine),
      b_(backends),
      cfg_(std::move(cfg)),
      pop_(cfg_.population, cfg_.seed),
      mix_(cfg_.classes, cfg_.seed),
      obs_track_(obs::tracer().track("serve")) {
  assert(!cfg_.client_nodes.empty());
  for (std::size_t i = 0; i < mix_.size(); ++i) {
    slo_.add_class(mix_.at(i).name, mix_.at(i).slo);
  }
  if (b_.xfs != nullptr) xfs_failed_seen_ = b_.xfs->stats().failed_ops;
}

void ServeWorkload::start() {
  assert(!started_ && "start() is one-shot");
  started_ = true;
  for (std::uint32_t c = 0; c < pop_.clients(); ++c) {
    if (pop_.is_open(c)) {
      for (const sim::SimTime t : pop_.arrivals(c)) {
        engine_.schedule_at(t, [this, c] { issue(c, /*closed=*/false); });
      }
    } else {
      // Closed loop: the first request fires after one think time, which
      // also staggers the closed clients' start instants.
      schedule_closed(c);
    }
  }
}

bool ServeWorkload::xfs_op_failed() {
  if (b_.xfs == nullptr) return false;
  const std::uint64_t f = b_.xfs->stats().failed_ops;
  const bool failed = f > xfs_failed_seen_;
  xfs_failed_seen_ = f;
  return failed;
}

void ServeWorkload::issue(std::uint32_t client, bool closed) {
  ++arrivals_;
  if (closed) {
    ++closed_arrivals_;
  } else {
    ++open_arrivals_;
  }
  const std::size_t cls = mix_.pick_class(client);
  const RequestClass& rc = mix_.at(cls);
  const sim::SimTime t0 = engine_.now();
  const net::NodeId node = node_of(client);

  switch (rc.op) {
    case RequestOp::kFileRead:
    case RequestOp::kFileWrite: {
      const xfs::BlockId block = mix_.pick_block(cls, client);
      const bool is_write = rc.op == RequestOp::kFileWrite;
      if (b_.central != nullptr) {
        auto done = [this, client, cls, t0, closed](bool ok) {
          finish(client, cls, t0, ok, closed);
        };
        if (is_write) {
          b_.central->write(node, block, done);
        } else {
          b_.central->read(node, block, done);
        }
      } else {
        assert(b_.xfs != nullptr &&
               "file request class needs an xfs or central backend");
        auto done = [this, client, cls, t0, closed] {
          finish(client, cls, t0, !xfs_op_failed(), closed);
        };
        if (is_write) {
          b_.xfs->write(node, block, done);
        } else {
          b_.xfs->read(node, block, done);
        }
      }
      break;
    }
    case RequestOp::kCacheRead: {
      assert(b_.coop != nullptr &&
             "cache request class needs a coopcache backend");
      const std::uint64_t block = mix_.pick_block(cls, client);
      // CoopCacheSim resolves the access instantly; recover which level
      // served it from the counter deltas and charge the study's cost for
      // that level as simulated latency.
      const auto before = b_.coop->results();
      b_.coop->access(client % b_.coop->config().clients, block,
                      /*is_write=*/false);
      const auto& after = b_.coop->results();
      sim::Duration cost = b_.coop_costs.server_disk;
      if (after.local_hits > before.local_hits) {
        cost = b_.coop_costs.local_hit;
      } else if (after.remote_client_hits > before.remote_client_hits) {
        cost = b_.coop_costs.remote_client;
      } else if (after.server_mem_hits > before.server_mem_hits) {
        cost = b_.coop_costs.server_mem;
      }
      engine_.schedule_in(cost, [this, client, cls, t0, closed] {
        finish(client, cls, t0, /*ok=*/true, closed);
      });
      break;
    }
    case RequestOp::kCompute: {
      assert(b_.glunix != nullptr &&
             "compute request class needs a glunix backend");
      b_.glunix->run_remote(rc.compute_work, rc.compute_memory_bytes,
                            [this, client, cls, t0, closed](net::NodeId) {
                              finish(client, cls, t0, /*ok=*/true, closed);
                            });
      break;
    }
  }
}

void ServeWorkload::finish(std::uint32_t client, std::size_t cls,
                           sim::SimTime t0, bool ok, bool closed) {
  ++completed_;
  slo_.record(cls, engine_.now() - t0, ok);
  obs::tracer().complete(node_of(client), obs_track_, mix_.at(cls).name,
                         t0, engine_.now());
  if (closed) schedule_closed(client);
}

void ServeWorkload::schedule_closed(std::uint32_t client) {
  if (engine_.now() >= pop_.params().horizon) return;
  engine_.schedule_in(pop_.think_time(client), [this, client] {
    if (engine_.now() >= pop_.params().horizon) return;
    issue(client, /*closed=*/true);
  });
}

ServeTotals ServeWorkload::totals() const {
  ServeTotals t;
  t.arrivals = arrivals_;
  t.open_arrivals = open_arrivals_;
  t.closed_arrivals = closed_arrivals_;
  t.completed = completed_;
  t.offered_per_sec = pop_.params().horizon > 0
                          ? static_cast<double>(arrivals_) /
                                sim::to_sec(pop_.params().horizon)
                          : 0.0;
  return t;
}

}  // namespace now::serve
