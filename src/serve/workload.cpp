#include "serve/workload.hpp"

#include <cassert>

namespace now::serve {

ServeWorkload::ServeWorkload(sim::Engine& engine, Backends backends,
                             ServeConfig cfg, sim::ExecDomain* domain)
    : engine_(engine),
      domain_(domain),
      b_(backends),
      cfg_(std::move(cfg)),
      pop_(cfg_.population, cfg_.seed),
      mix_(cfg_.classes, cfg_.seed),
      obs_track_(obs::tracer().track("serve")) {
  assert(!cfg_.client_nodes.empty());
  assert((domain_ == nullptr ||
          (b_.xfs == nullptr && b_.coop == nullptr &&
           b_.glunix == nullptr)) &&
         "only the central backend is lane-clean; xFS/coop/GLUnix "
         "workloads must run serial (domain == nullptr)");
  for (std::size_t i = 0; i < mix_.size(); ++i) {
    slo_.add_class(mix_.at(i).name, mix_.at(i).slo);
  }
  const unsigned lanes = domain_ != nullptr ? domain_->lanes() : 1;
  slo_.set_lanes(lanes);
  lane_counts_.assign(lanes, LaneCounters{});
  mix_.ensure_clients(pop_.clients());
  if (cfg_.replay.enabled()) {
    assert((b_.central != nullptr || b_.xfs != nullptr) &&
           "replayed arrivals issue file ops and need a file backend");
    bool have_read = false, have_write = false;
    for (std::size_t i = 0; i < mix_.size(); ++i) {
      if (!have_read && mix_.at(i).op == RequestOp::kFileRead) {
        replay_read_cls_ = i;
        have_read = true;
      }
      if (!have_write && mix_.at(i).op == RequestOp::kFileWrite) {
        replay_write_cls_ = i;
        have_write = true;
      }
    }
    assert(have_read && have_write &&
           "replayed arrivals need a kFileRead and a kFileWrite class "
           "to report against");
    (void)have_read;
    (void)have_write;
  }
  sessions_gauge_ = &obs::metrics().gauge("serve.sessions_active");
  if (b_.xfs != nullptr) xfs_failed_seen_ = b_.xfs->stats().failed_ops;
}

void ServeWorkload::start() {
  assert(!started_ && "start() is one-shot");
  started_ = true;
  // Open clients: one lazy arrival chain each — the engine holds at most
  // one pending arrival per client, and the stream behind it is O(1)
  // state, so queue depth and memory stay O(clients) at any horizon.
  open_streams_.reserve(pop_.open_clients());
  for (std::uint32_t c = 0; c < pop_.open_clients(); ++c) {
    open_streams_.push_back(pop_.stream(c));
  }
  for (std::uint32_t c = 0; c < pop_.open_clients(); ++c) arm_open(c);
  // Closed loop: the first request fires after one think time, which
  // also staggers the closed clients' start instants.
  closed_sessions_.reserve(pop_.clients() - pop_.open_clients());
  for (std::uint32_t c = pop_.open_clients(); c < pop_.clients(); ++c) {
    ClosedSession cs{pop_.sessions(c), std::nullopt};
    cs.window = cs.timeline.next();
    closed_sessions_.push_back(std::move(cs));
    schedule_closed(c);
  }
  // Replayed arrivals: each replay client opens its own cursor over the
  // trace file (stride-filtered to its residue) and runs the same lazy
  // one-pending-event chain as the open clients.  Cursor state never
  // crosses a lane boundary, so thread count cannot change the schedule.
  if (cfg_.replay.enabled()) {
    replay::CursorOptions opt;
    opt.window_bytes = cfg_.replay.window_bytes;
    replay_cursors_.reserve(cfg_.replay.clients);
    for (std::uint32_t r = 0; r < cfg_.replay.clients; ++r) {
      replay_cursors_.push_back(std::make_unique<replay::ClientStrideCursor>(
          replay::open_trace(cfg_.replay.path, opt), cfg_.replay.clients, r));
    }
    for (std::uint32_t r = 0; r < cfg_.replay.clients; ++r) arm_replay(r);
  }
  if (!pop_.params().sessions.enabled()) {
    // No churn: the whole population is logged in for the whole run.
    sessions_gauge_->set(static_cast<double>(pop_.clients()));
    return;
  }
  presence_.reserve(pop_.clients());
  for (std::uint32_t c = 0; c < pop_.clients(); ++c) {
    presence_.push_back(pop_.sessions(c));
  }
  for (std::uint32_t c = 0; c < pop_.clients(); ++c) {
    arm_presence(c, presence_[c].next());
  }
}

void ServeWorkload::arm_open(std::uint32_t client) {
  if (auto t = open_streams_[client].next()) {
    engine_of(client).schedule_at(*t, [this, client] {
      issue(client, /*closed=*/false);
      arm_open(client);
    });
  }
}

void ServeWorkload::arm_replay(std::uint32_t replay_client) {
  const auto rec = replay_cursors_[replay_client]->next();
  if (!rec) return;
  const std::uint32_t client = pop_.clients() + replay_client;
  sim::SimTime at =
      cfg_.replay.time_scale == 1.0
          ? rec->at
          : static_cast<sim::SimTime>(static_cast<double>(rec->at) /
                                      cfg_.replay.time_scale);
  // Timestamps are monotonic per cursor: once past the horizon the rest
  // of this client's trace is too, so the chain just ends.
  if (at >= pop_.params().horizon) return;
  sim::Engine& eng = engine_of(client);
  if (at < eng.now()) at = eng.now();
  eng.schedule_at(
      at, [this, replay_client, client, block = rec->block,
           is_write = rec->is_write] {
        issue_replayed(client, block, is_write);
        arm_replay(replay_client);
      });
}

void ServeWorkload::arm_presence(std::uint32_t client,
                                 std::optional<Session> window) {
  // Login/logout bookkeeping rides the client's own lane; Gauge::add is
  // atomic and commutative, and the lane tally is shard-local, so the
  // live headcount needs no lock and no cross-lane message.
  if (!window) return;
  engine_of(client).schedule_at(
      window->login, [this, client, logout = window->logout] {
        sessions_gauge_->add(1.0);
        ++lane_counts_[lane_of(client)].sessions;
        engine_of(client).schedule_at(logout, [this, client] {
          sessions_gauge_->add(-1.0);
          --lane_counts_[lane_of(client)].sessions;
          arm_presence(client, presence_[client].next());
        });
      });
}

bool ServeWorkload::xfs_op_failed() {
  if (b_.xfs == nullptr) return false;
  const std::uint64_t f = b_.xfs->stats().failed_ops;
  const bool failed = f > xfs_failed_seen_;
  xfs_failed_seen_ = f;
  return failed;
}

void ServeWorkload::issue(std::uint32_t client, bool closed) {
  LaneCounters& lc = lane_counts_[lane_of(client)];
  ++lc.arrivals;
  if (closed) {
    ++lc.closed_arrivals;
  } else {
    ++lc.open_arrivals;
  }
  const std::size_t cls = mix_.pick_class(client);
  const RequestClass& rc = mix_.at(cls);
  const sim::SimTime t0 = engine_of(client).now();
  const net::NodeId node = node_of(client);

  switch (rc.op) {
    case RequestOp::kFileRead:
    case RequestOp::kFileWrite: {
      const xfs::BlockId block = mix_.pick_block(cls, client);
      const bool is_write = rc.op == RequestOp::kFileWrite;
      if (b_.central != nullptr) {
        auto done = [this, client, cls, t0, closed](bool ok) {
          finish(client, cls, t0, ok, closed);
        };
        if (is_write) {
          b_.central->write(node, block, done);
        } else {
          b_.central->read(node, block, done);
        }
      } else {
        assert(b_.xfs != nullptr &&
               "file request class needs an xfs or central backend");
        auto done = [this, client, cls, t0, closed] {
          finish(client, cls, t0, !xfs_op_failed(), closed);
        };
        if (is_write) {
          b_.xfs->write(node, block, done);
        } else {
          b_.xfs->read(node, block, done);
        }
      }
      break;
    }
    case RequestOp::kCacheRead: {
      assert(b_.coop != nullptr &&
             "cache request class needs a coopcache backend");
      const std::uint64_t block = mix_.pick_block(cls, client);
      // CoopCacheSim resolves the access instantly; recover which level
      // served it from the counter deltas and charge the study's cost for
      // that level as simulated latency.
      const auto before = b_.coop->results();
      b_.coop->access(client % b_.coop->config().clients, block,
                      /*is_write=*/false);
      const auto& after = b_.coop->results();
      sim::Duration cost = b_.coop_costs.server_disk;
      if (after.local_hits > before.local_hits) {
        cost = b_.coop_costs.local_hit;
      } else if (after.remote_client_hits > before.remote_client_hits) {
        cost = b_.coop_costs.remote_client;
      } else if (after.server_mem_hits > before.server_mem_hits) {
        cost = b_.coop_costs.server_mem;
      }
      engine_of(client).schedule_in(cost, [this, client, cls, t0, closed] {
        finish(client, cls, t0, /*ok=*/true, closed);
      });
      break;
    }
    case RequestOp::kCompute: {
      assert(b_.glunix != nullptr &&
             "compute request class needs a glunix backend");
      b_.glunix->run_remote(rc.compute_work, rc.compute_memory_bytes,
                            [this, client, cls, t0, closed](net::NodeId) {
                              finish(client, cls, t0, /*ok=*/true, closed);
                            });
      break;
    }
  }
}

void ServeWorkload::issue_replayed(std::uint32_t client, std::uint64_t block,
                                   bool is_write) {
  // Replay bypasses mix_.pick_class/pick_block entirely — the trace fixes
  // both choices — so the population clients' RNG draw order is untouched
  // and synthetic results are identical with or without a replay source.
  LaneCounters& lc = lane_counts_[lane_of(client)];
  ++lc.arrivals;
  ++lc.replayed_arrivals;
  const std::size_t cls = is_write ? replay_write_cls_ : replay_read_cls_;
  const RequestClass& rc = mix_.at(cls);
  const sim::SimTime t0 = engine_of(client).now();
  const net::NodeId node = node_of(client);
  const xfs::BlockId b = block % rc.working_set;
  if (b_.central != nullptr) {
    auto done = [this, client, cls, t0](bool ok) {
      finish(client, cls, t0, ok, /*closed=*/false);
    };
    if (is_write) {
      b_.central->write(node, b, done);
    } else {
      b_.central->read(node, b, done);
    }
  } else {
    auto done = [this, client, cls, t0] {
      finish(client, cls, t0, !xfs_op_failed(), /*closed=*/false);
    };
    if (is_write) {
      b_.xfs->write(node, b, done);
    } else {
      b_.xfs->read(node, b, done);
    }
  }
}

void ServeWorkload::finish(std::uint32_t client, std::size_t cls,
                           sim::SimTime t0, bool ok, bool closed) {
  // Completions run on the issuing client's lane (RPC caller state is
  // lane-confined), so the shard index is stable for the whole request.
  const unsigned lane = lane_of(client);
  ++lane_counts_[lane].completed;
  const sim::SimTime now = engine_of(client).now();
  slo_.record(cls, now - t0, ok, lane);
  obs::tracer().complete(node_of(client), obs_track_, mix_.at(cls).name,
                         t0, now);
  if (closed) schedule_closed(client);
}

void ServeWorkload::schedule_closed(std::uint32_t client) {
  sim::Engine& eng = engine_of(client);
  if (eng.now() >= pop_.params().horizon) return;
  eng.schedule_in(pop_.think_time(client), [this, client] {
    issue_closed_in_session(client);
  });
}

void ServeWorkload::issue_closed_in_session(std::uint32_t client) {
  sim::Engine& eng = engine_of(client);
  const sim::SimTime now = eng.now();
  if (now >= pop_.params().horizon) return;
  ClosedSession& cs = closed_sessions_.at(client - pop_.open_clients());
  while (cs.window && cs.window->logout <= now) {
    cs.window = cs.timeline.next();
  }
  if (!cs.window) return;  // logged out for the rest of the run
  if (now < cs.window->login) {
    // Logged out right now: the loop parks until the next login instead
    // of burning think-time draws while nobody is at the keyboard.
    eng.schedule_at(cs.window->login,
                    [this, client] { issue_closed_in_session(client); });
    return;
  }
  issue(client, /*closed=*/true);
}

ServeTotals ServeWorkload::totals() const {
  ServeTotals t;
  for (const LaneCounters& lc : lane_counts_) {
    t.arrivals += lc.arrivals;
    t.open_arrivals += lc.open_arrivals;
    t.closed_arrivals += lc.closed_arrivals;
    t.replayed_arrivals += lc.replayed_arrivals;
    t.completed += lc.completed;
  }
  t.offered_per_sec = pop_.params().horizon > 0
                          ? static_cast<double>(t.arrivals) /
                                sim::to_sec(pop_.params().horizon)
                          : 0.0;
  return t;
}

std::uint64_t ServeWorkload::in_flight() const {
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  for (const LaneCounters& lc : lane_counts_) {
    arrivals += lc.arrivals;
    completed += lc.completed;
  }
  return arrivals - completed;
}

std::uint64_t ServeWorkload::sessions_active() const {
  if (!pop_.params().sessions.enabled()) return pop_.clients();
  std::int64_t n = 0;
  for (const LaneCounters& lc : lane_counts_) n += lc.sessions;
  return n > 0 ? static_cast<std::uint64_t>(n) : 0;
}

}  // namespace now::serve
