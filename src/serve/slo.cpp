#include "serve/slo.hpp"

#include <cassert>

namespace now::serve {

SloTracker::SloTracker(std::string prefix) : prefix_(std::move(prefix)) {}

std::size_t SloTracker::add_class(const std::string& name,
                                  sim::Duration slo) {
  PerClass pc;
  pc.name = name;
  pc.slo = slo;
  const std::string base = prefix_ + "." + name;
  obs::MetricsRegistry& m = obs::metrics();
  pc.obs_latency = &m.histogram(base + ".latency_us", 1.0, 1.02);
  pc.obs_completed = &m.counter(base + ".completed");
  pc.obs_failed = &m.counter(base + ".failed");
  pc.obs_slo_miss = &m.counter(base + ".slo_miss");
  classes_.push_back(std::move(pc));
  return classes_.size() - 1;
}

void SloTracker::record(std::size_t cls, sim::Duration latency, bool ok) {
  PerClass& pc = classes_.at(cls);
  const double us = sim::to_us(latency);
  pc.latency_us.add(us);
  all_us_.add(us);
  ++total_completed_;
  pc.obs_latency->observe(us);
  pc.obs_completed->inc();
  if (ok) {
    ++pc.ok;
  } else {
    ++pc.failed;
    pc.obs_failed->inc();
  }
  if (ok && latency <= pc.slo) {
    ++pc.slo_met;
  } else {
    pc.obs_slo_miss->inc();
  }
}

namespace {
void fill_latency(SloClassReport& r, const sim::Histogram& h) {
  r.completed = h.count();
  r.mean_ms = h.mean() / 1'000.0;
  r.p50_ms = h.percentile(0.50) / 1'000.0;
  r.p99_ms = h.percentile(0.99) / 1'000.0;
  r.p999_ms = h.percentile(0.999) / 1'000.0;
  r.max_ms = h.max() / 1'000.0;
}
}  // namespace

SloClassReport SloTracker::report(std::size_t cls,
                                  sim::Duration elapsed) const {
  const PerClass& pc = classes_.at(cls);
  SloClassReport r;
  r.name = pc.name;
  r.slo = pc.slo;
  fill_latency(r, pc.latency_us);
  r.ok = pc.ok;
  r.failed = pc.failed;
  r.slo_met = pc.slo_met;
  r.attainment = r.completed > 0
                     ? static_cast<double>(pc.slo_met) /
                           static_cast<double>(r.completed)
                     : 1.0;
  r.goodput_per_sec =
      elapsed > 0 ? static_cast<double>(pc.slo_met) / sim::to_sec(elapsed)
                  : 0.0;
  return r;
}

SloClassReport SloTracker::overall(sim::Duration elapsed) const {
  SloClassReport r;
  r.name = "all";
  fill_latency(r, all_us_);
  for (const PerClass& pc : classes_) {
    r.ok += pc.ok;
    r.failed += pc.failed;
    r.slo_met += pc.slo_met;
  }
  r.attainment = r.completed > 0
                     ? static_cast<double>(r.slo_met) /
                           static_cast<double>(r.completed)
                     : 1.0;
  r.goodput_per_sec =
      elapsed > 0 ? static_cast<double>(r.slo_met) / sim::to_sec(elapsed)
                  : 0.0;
  return r;
}

}  // namespace now::serve
