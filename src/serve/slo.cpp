#include "serve/slo.hpp"

#include <cassert>

namespace now::serve {

SloTracker::SloTracker(std::string prefix)
    : prefix_(std::move(prefix)), shards_(1) {}

std::size_t SloTracker::add_class(const std::string& name,
                                  sim::Duration slo) {
  ClassMeta meta;
  meta.name = name;
  meta.slo = slo;
  const std::string base = prefix_ + "." + name;
  obs::MetricsRegistry& m = obs::metrics();
  meta.obs_latency = &m.histogram(base + ".latency_us", 1.0, 1.02);
  meta.obs_completed = &m.counter(base + ".completed");
  meta.obs_failed = &m.counter(base + ".failed");
  meta.obs_slo_miss = &m.counter(base + ".slo_miss");
  classes_.push_back(std::move(meta));
  for (LaneShard& lane : shards_) lane.classes.emplace_back();
  return classes_.size() - 1;
}

void SloTracker::set_lanes(unsigned lanes) {
  assert(lanes >= 1);
  assert(completed() == 0 && "set_lanes() must precede record()");
  shards_.assign(lanes, LaneShard{});
  for (LaneShard& lane : shards_) lane.classes.resize(classes_.size());
}

void SloTracker::record(std::size_t cls, sim::Duration latency, bool ok,
                        unsigned lane) {
  LaneShard& shard = shards_.at(lane);
  ClassShard& cs = shard.classes.at(cls);
  const ClassMeta& meta = classes_[cls];
  const double us = sim::to_us(latency);
  cs.latency_us.add(us);
  cs.sum_ns += static_cast<std::uint64_t>(latency);
  shard.all_us.add(us);
  shard.all_sum_ns += static_cast<std::uint64_t>(latency);
  ++shard.completed;
  meta.obs_latency->observe(us);
  meta.obs_completed->inc();
  if (ok) {
    ++cs.ok;
  } else {
    ++cs.failed;
    meta.obs_failed->inc();
  }
  if (ok && latency <= meta.slo) {
    ++cs.slo_met;
  } else {
    meta.obs_slo_miss->inc();
  }
}

std::uint64_t SloTracker::completed() const {
  std::uint64_t n = 0;
  for (const LaneShard& lane : shards_) n += lane.completed;
  return n;
}

SloTracker::ClassShard SloTracker::merged(std::size_t cls) const {
  ClassShard out;
  for (const LaneShard& lane : shards_) {
    const ClassShard& cs = lane.classes.at(cls);
    out.latency_us.merge(cs.latency_us);
    out.sum_ns += cs.sum_ns;
    out.ok += cs.ok;
    out.failed += cs.failed;
    out.slo_met += cs.slo_met;
  }
  return out;
}

void SloTracker::fill(SloClassReport& r, const sim::Histogram& h,
                      std::uint64_t sum_ns, sim::Duration elapsed) {
  r.completed = h.count();
  // Mean from the exact integer nanosecond sum: grouping-invariant, so the
  // report is byte-identical whether one lane recorded everything or
  // sixteen shared the work.
  r.mean_ms = r.completed > 0 ? static_cast<double>(sum_ns) /
                                    static_cast<double>(r.completed) /
                                    1'000'000.0
                              : 0.0;
  r.p50_ms = h.percentile(0.50) / 1'000.0;
  r.p99_ms = h.percentile(0.99) / 1'000.0;
  r.p999_ms = h.percentile(0.999) / 1'000.0;
  r.max_ms = h.max() / 1'000.0;
  r.attainment = r.completed > 0 ? static_cast<double>(r.slo_met) /
                                       static_cast<double>(r.completed)
                                 : 1.0;
  r.goodput_per_sec =
      elapsed > 0 ? static_cast<double>(r.slo_met) / sim::to_sec(elapsed)
                  : 0.0;
}

SloClassReport SloTracker::report(std::size_t cls,
                                  sim::Duration elapsed) const {
  const ClassMeta& meta = classes_.at(cls);
  const ClassShard m = merged(cls);
  SloClassReport r;
  r.name = meta.name;
  r.slo = meta.slo;
  r.ok = m.ok;
  r.failed = m.failed;
  r.slo_met = m.slo_met;
  fill(r, m.latency_us, m.sum_ns, elapsed);
  return r;
}

SloClassReport SloTracker::overall(sim::Duration elapsed) const {
  SloClassReport r;
  r.name = "all";
  sim::Histogram all{1.0, 1.02};
  std::uint64_t sum_ns = 0;
  for (const LaneShard& lane : shards_) {
    all.merge(lane.all_us);
    sum_ns += lane.all_sum_ns;
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const ClassShard m = merged(c);
    r.ok += m.ok;
    r.failed += m.failed;
    r.slo_met += m.slo_met;
  }
  fill(r, all, sum_ns, elapsed);
  return r;
}

}  // namespace now::serve
