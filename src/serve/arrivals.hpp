// now::serve — client populations for open-arrival request serving.
//
// Every bench so far replays a closed batch: N clients, each issuing the
// next request only after the previous one completed.  A building acting
// as one service (Gray's "Locally Served Network Computers": thin clients
// firing millions of requests at a local cluster) does not behave like
// that — requests keep *arriving* whether or not the cluster is keeping
// up, which is exactly why overload shows up as a latency tail instead of
// a throughput plateau.  ClientPopulation models that:
//
//   * open clients    — timer-driven Poisson arrivals, modulated by a
//                       diurnal load curve (thinned non-homogeneous
//                       Poisson), independent of completions;
//   * closed clients  — the classic loop (issue, wait, think, repeat)
//                       with exponential / bounded-Pareto / lognormal
//                       think times, for hybrid populations;
//   * sessions        — optional login/logout churn riding the diurnal
//                       curve: clients only generate traffic while a
//                       session is live, and logins cluster at the
//                       daytime peak (SessionTimeline);
//   * determinism     — every draw comes from a per-client Pcg32 seeded
//                       with exp::derive_seed(seed, stream|client), so a
//                       population's entire arrival schedule is a pure
//                       function of its seed: identical under --jobs 1
//                       and --jobs N and at any --threads value.
//
// Schedules are *streamed*, not materialized: ArrivalStream generates one
// client's arrivals lazily (O(1) state per client), and MergedArrivals
// merges any client range through a bounded k-way heap — memory stays
// O(clients) however long the horizon or high the rate, which is what
// lets a population scale to thousands of thin clients.  arrivals()
// still materializes one client's full schedule for tests and small
// runs; golden tests pin that the two paths agree timestamp for
// timestamp.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace now::serve {

enum class ThinkDist : std::uint8_t {
  kExponential,  // memoryless think times (Poisson closed loop)
  kPareto,       // bounded Pareto: heavy-tailed bursts of activity
  kLognormal,    // multiplicative human timing (log-space normal)
};

const char* to_string(ThinkDist d);

/// Day/night load shape: multiplier(t) = max(0, 1 + amplitude *
/// sin(2*pi*t/period + phase)).  amplitude 0 is a flat curve; 0.6 gives a
/// 1.6x daytime peak over a 0.4x night trough.  Pure function of t, so it
/// never perturbs determinism.
struct DiurnalCurve {
  double amplitude = 0.0;
  sim::Duration period = 24 * sim::kHour;
  /// Radians added to the phase; 0 puts the first peak a quarter period in.
  double phase = 0.0;

  double multiplier(sim::SimTime t) const;
  /// Upper bound of multiplier() over all t (the thinning envelope).
  double peak() const;
};

/// Login/logout churn.  Disabled (the default) means every client is
/// logged in for the whole horizon — byte-identical schedules to builds
/// that predate sessions.  Enabled, each client alternates logged-in
/// spells (mean `mean_on`) and logged-out gaps whose *login hazard* rides
/// the diurnal curve (rate multiplier(t)/mean_off, Lewis-Shedler
/// thinning): more of the population is live at the daytime peak, which
/// is how a building's load curve actually moves.
struct SessionParams {
  /// Mean logged-in spell.  0 disables churn.
  sim::Duration mean_on = 0;
  /// Mean logged-out gap at diurnal multiplier 1.  0 disables churn.
  sim::Duration mean_off = 0;

  bool enabled() const { return mean_on > 0 && mean_off > 0; }
};

struct PopulationParams {
  std::uint32_t clients = 16;
  /// Fraction of clients issuing open arrivals; the rest run closed
  /// loops.  Clients [0, open_clients()) are the open ones.
  double open_fraction = 1.0;
  /// Aggregate arrival rate (requests/second) across all open clients
  /// when the diurnal multiplier is 1; split evenly between them.
  double offered_per_sec = 200.0;
  /// Closed-loop think-time distribution and its mean.
  ThinkDist think = ThinkDist::kExponential;
  double think_mean_ms = 50.0;
  /// kPareto shape (smaller = heavier tail; support [mean/3, 200*mean]).
  double pareto_alpha = 1.5;
  /// kLognormal log-space standard deviation (mean is preserved).
  double lognormal_sigma = 1.0;
  DiurnalCurve diurnal;
  /// Login/logout churn layer (applies to open and closed clients).
  SessionParams sessions;
  /// No arrival is generated at or past this instant; closed loops stop
  /// re-issuing once the clock reaches it.
  sim::SimTime horizon = 30 * sim::kSecond;
};

/// One logged-in spell, [login, logout), clipped to the horizon.
struct Session {
  sim::SimTime login = 0;
  sim::SimTime logout = 0;
};

/// Lazy generator of one client's login/logout intervals.  Pure function
/// of (seed, client): any number of independently constructed timelines
/// for the same client yield the identical interval sequence, so the
/// arrival filter and the sessions_active gauge can each walk their own
/// copy without coordinating.  With churn disabled it yields exactly one
/// session spanning [0, horizon) and draws nothing from the RNG.
class SessionTimeline {
 public:
  SessionTimeline(const PopulationParams& params, std::uint64_t seed,
                  std::uint32_t client);

  /// Next logged-in interval with login < horizon, in increasing order;
  /// nullopt once the horizon is exhausted.
  std::optional<Session> next();

 private:
  sim::Pcg32 rng_;
  DiurnalCurve diurnal_;
  double mean_on_sec_ = 0.0;
  double mean_off_sec_ = 0.0;
  double horizon_sec_ = 0.0;
  sim::SimTime horizon_ = 0;
  double t_sec_ = 0.0;  // generation cursor
  bool enabled_ = false;
  bool done_ = false;
  bool first_ = true;
};

/// Lazy generator of one open client's arrival instants: a homogeneous
/// Poisson envelope at the diurnal peak rate, thinned to the diurnal
/// curve (Lewis-Shedler) and filtered to logged-in session intervals.
/// O(1) state per client — one RNG, one cursor, one session window.  The
/// draw sequence is identical to the materialized path, so
/// ClientPopulation::arrivals(c) == collecting stream(c) to exhaustion.
class ArrivalStream {
 public:
  ArrivalStream(const PopulationParams& params, std::uint64_t seed,
                std::uint32_t client, double per_client_rate);

  std::uint32_t client() const { return client_; }

  /// Next arrival instant < horizon, strictly increasing; nullopt once
  /// the horizon is exhausted.
  std::optional<sim::SimTime> next();

 private:
  sim::Pcg32 rng_;
  SessionTimeline sessions_;
  DiurnalCurve diurnal_;
  std::uint32_t client_ = 0;
  double envelope_rate_ = 0.0;  // per-client rate * diurnal peak
  double peak_ = 1.0;
  double horizon_sec_ = 0.0;
  sim::SimTime horizon_ = 0;
  double t_sec_ = 0.0;
  std::optional<Session> cur_;  // current/next session window
  bool done_ = false;
};

/// One merged arrival: when, and whose.
struct Arrival {
  sim::SimTime time = 0;
  std::uint32_t client = 0;

  bool operator==(const Arrival&) const = default;
};

class ClientPopulation;

/// Bounded k-way merge of every open client's ArrivalStream, ordered by
/// (time, client).  Memory is O(open clients) — one stream plus one
/// pending arrival each — at any population size, horizon, or rate; this
/// is the building-scale replacement for materializing per-client
/// schedule vectors.  next() is amortized O(log k).
class MergedArrivals {
 public:
  explicit MergedArrivals(const ClientPopulation& pop);

  /// Open-client streams still live in the heap.
  std::size_t streams() const { return heap_.size(); }

  /// Next arrival across the whole population; nullopt when every stream
  /// is exhausted.
  std::optional<Arrival> next();

 private:
  struct Entry {
    sim::SimTime time;
    std::uint32_t index;  // into streams_
  };

  void sift_down(std::size_t i);
  void sift_up(std::size_t i);

  std::vector<ArrivalStream> streams_;
  std::vector<Entry> heap_;  // min-heap on (time, streams_[index].client())
};

class ClientPopulation {
 public:
  ClientPopulation(PopulationParams params, std::uint64_t seed);

  std::uint32_t clients() const {
    return static_cast<std::uint32_t>(params_.clients);
  }
  std::uint32_t open_clients() const { return open_clients_; }
  bool is_open(std::uint32_t client) const { return client < open_clients_; }

  /// `client`'s lazy arrival generator (empty stream for closed clients).
  /// Streams are independent: any call order, any number of copies.
  ArrivalStream stream(std::uint32_t client) const;

  /// `client`'s lazy session timeline (login/logout churn; one full-
  /// horizon session when churn is disabled).
  SessionTimeline sessions(std::uint32_t client) const;

  /// Materializes `client`'s complete open-arrival schedule by running
  /// its stream to exhaustion.  Pure function of (seed, client); the
  /// reference the golden equivalence tests hold MergedArrivals against.
  /// O(arrivals) memory — building-scale callers use stream()/
  /// MergedArrivals instead.
  std::vector<sim::SimTime> arrivals(std::uint32_t client) const;

  /// Draws `client`'s next closed-loop think time (advances the client's
  /// private stream).  Always >= 1 ns.
  sim::Duration think_time(std::uint32_t client);

  /// Per-open-client arrival rate at diurnal multiplier 1 (0 when there
  /// are no open clients).
  double per_client_rate() const;

  const PopulationParams& params() const { return params_; }
  std::uint64_t seed() const { return seed_; }

 private:
  PopulationParams params_;
  std::uint64_t seed_;
  std::uint32_t open_clients_;
  std::vector<sim::Pcg32> think_rng_;  // one stream per client
};

}  // namespace now::serve
