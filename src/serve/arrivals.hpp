// now::serve — client populations for open-arrival request serving.
//
// Every bench so far replays a closed batch: N clients, each issuing the
// next request only after the previous one completed.  A building acting
// as one service (Gray's "Locally Served Network Computers": thin clients
// firing millions of requests at a local cluster) does not behave like
// that — requests keep *arriving* whether or not the cluster is keeping
// up, which is exactly why overload shows up as a latency tail instead of
// a throughput plateau.  ClientPopulation models that:
//
//   * open clients    — timer-driven Poisson arrivals, modulated by a
//                       diurnal load curve (thinned non-homogeneous
//                       Poisson), independent of completions;
//   * closed clients  — the classic loop (issue, wait, think, repeat)
//                       with exponential / bounded-Pareto / lognormal
//                       think times, for hybrid populations;
//   * determinism     — every draw comes from a per-client Pcg32 seeded
//                       with exp::derive_seed(seed, stream|client), so a
//                       population's entire arrival schedule is a pure
//                       function of its seed: identical under --jobs 1
//                       and --jobs N, and --threads-invariant because
//                       serving workloads pin Partitioning::kAllGlobal.
//
// Open-arrival schedules are materialized up front (like FaultPlan's
// stochastic draws): arrivals(c) returns the client's full timestamp
// list, which is also what the golden-sequence test pins down.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace now::serve {

enum class ThinkDist : std::uint8_t {
  kExponential,  // memoryless think times (Poisson closed loop)
  kPareto,       // bounded Pareto: heavy-tailed bursts of activity
  kLognormal,    // multiplicative human timing (log-space normal)
};

const char* to_string(ThinkDist d);

/// Day/night load shape: multiplier(t) = max(0, 1 + amplitude *
/// sin(2*pi*t/period + phase)).  amplitude 0 is a flat curve; 0.6 gives a
/// 1.6x daytime peak over a 0.4x night trough.  Pure function of t, so it
/// never perturbs determinism.
struct DiurnalCurve {
  double amplitude = 0.0;
  sim::Duration period = 24 * sim::kHour;
  /// Radians added to the phase; 0 puts the first peak a quarter period in.
  double phase = 0.0;

  double multiplier(sim::SimTime t) const;
  /// Upper bound of multiplier() over all t (the thinning envelope).
  double peak() const;
};

struct PopulationParams {
  std::uint32_t clients = 16;
  /// Fraction of clients issuing open arrivals; the rest run closed
  /// loops.  Clients [0, open_clients()) are the open ones.
  double open_fraction = 1.0;
  /// Aggregate arrival rate (requests/second) across all open clients
  /// when the diurnal multiplier is 1; split evenly between them.
  double offered_per_sec = 200.0;
  /// Closed-loop think-time distribution and its mean.
  ThinkDist think = ThinkDist::kExponential;
  double think_mean_ms = 50.0;
  /// kPareto shape (smaller = heavier tail; support [mean/3, 200*mean]).
  double pareto_alpha = 1.5;
  /// kLognormal log-space standard deviation (mean is preserved).
  double lognormal_sigma = 1.0;
  DiurnalCurve diurnal;
  /// No arrival is generated at or past this instant; closed loops stop
  /// re-issuing once the clock reaches it.
  sim::SimTime horizon = 30 * sim::kSecond;
};

class ClientPopulation {
 public:
  ClientPopulation(PopulationParams params, std::uint64_t seed);

  std::uint32_t clients() const {
    return static_cast<std::uint32_t>(params_.clients);
  }
  std::uint32_t open_clients() const { return open_clients_; }
  bool is_open(std::uint32_t client) const { return client < open_clients_; }

  /// Materializes `client`'s complete open-arrival schedule (sorted,
  /// all < horizon) by thinning a homogeneous Poisson envelope down to
  /// the diurnal rate.  Pure function of (seed, client): repeated calls
  /// return identical vectors, in any call order.  Empty for closed
  /// clients.
  std::vector<sim::SimTime> arrivals(std::uint32_t client) const;

  /// Draws `client`'s next closed-loop think time (advances the client's
  /// private stream).  Always >= 1 ns.
  sim::Duration think_time(std::uint32_t client);

  const PopulationParams& params() const { return params_; }
  std::uint64_t seed() const { return seed_; }

 private:
  PopulationParams params_;
  std::uint64_t seed_;
  std::uint32_t open_clients_;
  std::vector<sim::Pcg32> think_rng_;  // one stream per client
};

}  // namespace now::serve
