#include "serve/arrivals.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "exp/seed.hpp"

namespace now::serve {

namespace {
// Derive-seed stream ids for the per-client RNGs, disjoint from the small
// task indices exp::run_sweep burns and from now::fault's streams 1-3.
constexpr std::uint64_t kArrivalStream = 9;
constexpr std::uint64_t kThinkStream = 10;
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

const char* to_string(ThinkDist d) {
  switch (d) {
    case ThinkDist::kExponential: return "exponential";
    case ThinkDist::kPareto: return "pareto";
    case ThinkDist::kLognormal: return "lognormal";
  }
  return "?";
}

double DiurnalCurve::multiplier(sim::SimTime t) const {
  if (amplitude == 0.0) return 1.0;
  const double cycle =
      static_cast<double>(t) / static_cast<double>(period);
  const double m = 1.0 + amplitude * std::sin(kTwoPi * cycle + phase);
  return m > 0.0 ? m : 0.0;
}

double DiurnalCurve::peak() const { return 1.0 + std::fabs(amplitude); }

ClientPopulation::ClientPopulation(PopulationParams params,
                                   std::uint64_t seed)
    : params_(params), seed_(seed) {
  const double of = std::clamp(params_.open_fraction, 0.0, 1.0);
  open_clients_ = static_cast<std::uint32_t>(
      std::lround(of * static_cast<double>(params_.clients)));
  think_rng_.reserve(params_.clients);
  for (std::uint32_t c = 0; c < params_.clients; ++c) {
    think_rng_.emplace_back(
        exp::derive_seed(seed_, (kThinkStream << 32) | c), c);
  }
}

std::vector<sim::SimTime> ClientPopulation::arrivals(
    std::uint32_t client) const {
  std::vector<sim::SimTime> out;
  if (!is_open(client) || params_.offered_per_sec <= 0.0 ||
      params_.horizon <= 0) {
    return out;
  }
  // Thinning (Lewis-Shedler): draw a homogeneous Poisson stream at the
  // diurnal peak rate, keep each candidate with probability
  // multiplier(t)/peak.  Candidate times and accept draws both come from
  // the client's private stream, so the schedule depends only on
  // (seed, client) — never on how many other clients exist or when the
  // caller asks.
  const double rate =
      params_.offered_per_sec / static_cast<double>(open_clients_);
  const double peak = params_.diurnal.peak();
  const double envelope_rate = rate * peak;
  assert(envelope_rate > 0.0);
  sim::Pcg32 rng(exp::derive_seed(seed_, (kArrivalStream << 32) | client),
                 client);
  const double horizon_sec = sim::to_sec(params_.horizon);
  double t_sec = 0.0;
  while (true) {
    t_sec += rng.exponential(1.0 / envelope_rate);
    if (t_sec >= horizon_sec) break;
    const sim::SimTime t = sim::from_sec(t_sec);
    if (t >= params_.horizon) break;  // integral-ns rounding guard
    const double accept = rng.next_double() * peak;
    if (accept <= params_.diurnal.multiplier(t)) out.push_back(t);
  }
  return out;
}

sim::Duration ClientPopulation::think_time(std::uint32_t client) {
  sim::Pcg32& rng = think_rng_.at(client);
  const double mean = params_.think_mean_ms;
  double ms = mean;
  switch (params_.think) {
    case ThinkDist::kExponential:
      ms = rng.exponential(mean);
      break;
    case ThinkDist::kPareto:
      // Bounded Pareto over [mean/3, 200*mean]: most thinks are short,
      // but the tail parks a client for hundreds of means at a time.
      ms = rng.pareto(params_.pareto_alpha, mean / 3.0, mean * 200.0);
      break;
    case ThinkDist::kLognormal: {
      // mu chosen so E[exp(N(mu, sigma^2))] = mean.
      const double sigma = params_.lognormal_sigma;
      const double mu = std::log(mean) - sigma * sigma / 2.0;
      ms = std::exp(rng.normal(mu, sigma));
      break;
    }
  }
  return std::max<sim::Duration>(1, sim::from_ms(ms));
}

}  // namespace now::serve
