#include "serve/arrivals.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "exp/seed.hpp"

namespace now::serve {

namespace {
// Derive-seed stream ids for the per-client RNGs, disjoint from the small
// task indices exp::run_sweep burns and from now::fault's streams 1-3.
constexpr std::uint64_t kArrivalStream = 9;
constexpr std::uint64_t kThinkStream = 10;
constexpr std::uint64_t kSessionStream = 12;  // 11 is kMixStream
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

const char* to_string(ThinkDist d) {
  switch (d) {
    case ThinkDist::kExponential: return "exponential";
    case ThinkDist::kPareto: return "pareto";
    case ThinkDist::kLognormal: return "lognormal";
  }
  return "?";
}

double DiurnalCurve::multiplier(sim::SimTime t) const {
  if (amplitude == 0.0) return 1.0;
  const double cycle =
      static_cast<double>(t) / static_cast<double>(period);
  const double m = 1.0 + amplitude * std::sin(kTwoPi * cycle + phase);
  return m > 0.0 ? m : 0.0;
}

double DiurnalCurve::peak() const { return 1.0 + std::fabs(amplitude); }

// --- SessionTimeline -----------------------------------------------------

SessionTimeline::SessionTimeline(const PopulationParams& params,
                                 std::uint64_t seed, std::uint32_t client)
    : rng_(exp::derive_seed(seed, (kSessionStream << 32) | client), client),
      diurnal_(params.diurnal),
      mean_on_sec_(sim::to_sec(params.sessions.mean_on)),
      mean_off_sec_(sim::to_sec(params.sessions.mean_off)),
      horizon_sec_(sim::to_sec(params.horizon)),
      horizon_(params.horizon),
      enabled_(params.sessions.enabled()) {
  if (horizon_ <= 0) done_ = true;
}

std::optional<Session> SessionTimeline::next() {
  if (done_) return std::nullopt;
  if (!enabled_) {
    // One session spanning the whole horizon; no RNG draws, so enabling
    // churn later never perturbs the arrival/think streams of runs that
    // keep it off.
    done_ = true;
    return Session{0, horizon_};
  }
  const double peak = diurnal_.peak();
  if (first_) {
    first_ = false;
    // Warm start: the population is already in steady state at t = 0, so
    // each client is logged in with the renewal-process odds, and (the
    // exponential being memoryless) a client caught mid-session has a
    // full Exp(mean_on) spell still ahead of it.
    const double p_on = mean_on_sec_ / (mean_on_sec_ + mean_off_sec_);
    if (rng_.bernoulli(p_on)) {
      t_sec_ = rng_.exponential(mean_on_sec_);
      Session s;
      s.login = 0;
      s.logout = std::min(std::max<sim::SimTime>(sim::from_sec(t_sec_), 1),
                          horizon_);
      return s;
    }
  }
  // Next login by thinning: the login hazard is multiplier(t) / mean_off,
  // so the logged-out population re-enters fastest at the diurnal peak.
  while (true) {
    t_sec_ += rng_.exponential(mean_off_sec_ / peak);
    if (t_sec_ >= horizon_sec_) break;
    const sim::SimTime login = sim::from_sec(t_sec_);
    if (login >= horizon_) break;  // integral-ns rounding guard
    const double accept = rng_.next_double() * peak;
    if (accept > diurnal_.multiplier(login)) continue;
    t_sec_ += rng_.exponential(mean_on_sec_);
    Session s;
    s.login = login;
    s.logout = std::min(std::max<sim::SimTime>(sim::from_sec(t_sec_),
                                               login + 1),
                        horizon_);
    return s;
  }
  done_ = true;
  return std::nullopt;
}

// --- ArrivalStream -------------------------------------------------------

ArrivalStream::ArrivalStream(const PopulationParams& params,
                             std::uint64_t seed, std::uint32_t client,
                             double per_client_rate)
    : rng_(exp::derive_seed(seed, (kArrivalStream << 32) | client), client),
      sessions_(params, seed, client),
      diurnal_(params.diurnal),
      client_(client),
      peak_(params.diurnal.peak()),
      horizon_sec_(sim::to_sec(params.horizon)),
      horizon_(params.horizon) {
  envelope_rate_ = per_client_rate * peak_;
  if (per_client_rate <= 0.0 || horizon_ <= 0) {
    done_ = true;
    return;
  }
  cur_ = sessions_.next();
  if (!cur_) done_ = true;
}

std::optional<sim::SimTime> ArrivalStream::next() {
  // Thinning (Lewis-Shedler): a homogeneous Poisson envelope at the
  // diurnal peak rate, each candidate kept with probability
  // multiplier(t)/peak.  Candidate gaps and accept draws come from the
  // client's private stream in a fixed order, and the session filter uses
  // a *separate* stream — so enabling churn only removes arrivals, never
  // moves the surviving timestamps, and with churn off the sequence is
  // bit-identical to the original materialized schedule.
  while (!done_) {
    t_sec_ += rng_.exponential(1.0 / envelope_rate_);
    if (t_sec_ >= horizon_sec_) break;
    const sim::SimTime t = sim::from_sec(t_sec_);
    if (t >= horizon_) break;  // integral-ns rounding guard
    const double accept = rng_.next_double() * peak_;
    if (accept > diurnal_.multiplier(t)) continue;  // thinned out
    while (cur_ && cur_->logout <= t) cur_ = sessions_.next();
    if (!cur_) break;               // logged out for the rest of the run
    if (t < cur_->login) continue;  // logged out right now: never issued
    return t;
  }
  done_ = true;
  return std::nullopt;
}

// --- MergedArrivals ------------------------------------------------------

MergedArrivals::MergedArrivals(const ClientPopulation& pop) {
  streams_.reserve(pop.open_clients());
  for (std::uint32_t c = 0; c < pop.open_clients(); ++c) {
    ArrivalStream s = pop.stream(c);
    if (auto t = s.next()) {
      const auto index = static_cast<std::uint32_t>(streams_.size());
      streams_.push_back(std::move(s));
      heap_.push_back(Entry{*t, index});
    }
  }
  // streams_ fills in client order, so comparing (time, index) is
  // comparing (time, client) — the published merge order.
  if (heap_.size() > 1) {
    for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
  }
}

std::optional<Arrival> MergedArrivals::next() {
  if (heap_.empty()) return std::nullopt;
  Entry& top = heap_.front();
  const Arrival out{top.time, streams_[top.index].client()};
  if (auto t = streams_[top.index].next()) {
    top.time = *t;  // same stream: time only moves forward
  } else {
    top = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) return out;
  }
  sift_down(0);
  return out;
}

void MergedArrivals::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  auto less = [&](const Entry& a, const Entry& b) {
    return a.time < b.time || (a.time == b.time && a.index < b.index);
  };
  while (true) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && less(heap_[l], heap_[best])) best = l;
    if (r < n && less(heap_[r], heap_[best])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void MergedArrivals::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    const bool less =
        heap_[i].time < heap_[parent].time ||
        (heap_[i].time == heap_[parent].time &&
         heap_[i].index < heap_[parent].index);
    if (!less) return;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

// --- ClientPopulation ----------------------------------------------------

ClientPopulation::ClientPopulation(PopulationParams params,
                                   std::uint64_t seed)
    : params_(params), seed_(seed) {
  const double of = std::clamp(params_.open_fraction, 0.0, 1.0);
  open_clients_ = static_cast<std::uint32_t>(
      std::lround(of * static_cast<double>(params_.clients)));
  think_rng_.reserve(params_.clients);
  for (std::uint32_t c = 0; c < params_.clients; ++c) {
    think_rng_.emplace_back(
        exp::derive_seed(seed_, (kThinkStream << 32) | c), c);
  }
}

double ClientPopulation::per_client_rate() const {
  if (open_clients_ == 0 || params_.offered_per_sec <= 0.0) return 0.0;
  return params_.offered_per_sec / static_cast<double>(open_clients_);
}

ArrivalStream ClientPopulation::stream(std::uint32_t client) const {
  const double rate = is_open(client) ? per_client_rate() : 0.0;
  return ArrivalStream(params_, seed_, client, rate);
}

SessionTimeline ClientPopulation::sessions(std::uint32_t client) const {
  return SessionTimeline(params_, seed_, client);
}

std::vector<sim::SimTime> ClientPopulation::arrivals(
    std::uint32_t client) const {
  std::vector<sim::SimTime> out;
  ArrivalStream s = stream(client);
  while (auto t = s.next()) out.push_back(*t);
  return out;
}

sim::Duration ClientPopulation::think_time(std::uint32_t client) {
  sim::Pcg32& rng = think_rng_.at(client);
  const double mean = params_.think_mean_ms;
  double ms = mean;
  switch (params_.think) {
    case ThinkDist::kExponential:
      ms = rng.exponential(mean);
      break;
    case ThinkDist::kPareto:
      // Bounded Pareto over [mean/3, 200*mean]: most thinks are short,
      // but the tail parks a client for hundreds of means at a time.
      ms = rng.pareto(params_.pareto_alpha, mean / 3.0, mean * 200.0);
      break;
    case ThinkDist::kLognormal: {
      // mu chosen so E[exp(N(mu, sigma^2))] = mean.
      const double sigma = params_.lognormal_sigma;
      const double mu = std::log(mean) - sigma * sigma / 2.0;
      ms = std::exp(rng.normal(mu, sigma));
      break;
    }
  }
  return std::max<sim::Duration>(1, sim::from_ms(ms));
}

}  // namespace now::serve
