// now::serve — the serving driver: population x mix x SLOs over one
// cluster.
//
// ServeWorkload is what turns the reproduction into a service.  It owns a
// ClientPopulation (when requests arrive), a RequestMix (what each request
// does), and an SloTracker (how the answer is judged), and drives them
// against real backends:
//
//   file classes    -> xfs::Xfs (serverless) or xfs::CentralServerFs (the
//                      incumbent), whichever the Backends struct carries;
//   cache classes   -> coopcache::CoopCacheSim, charged at the study's
//                      per-level costs (local / peer memory / server
//                      memory / server disk);
//   compute classes -> glunix::Glunix::run_remote — the job really queues
//                      for an idle machine and really migrates.
//
// Determinism contract: every draw comes from seed-derived per-client
// streams; open-arrival schedules are materialized before the first event
// fires.  The workload touches many nodes' state per event (managers, the
// central server, GLUnix), so clusters it drives must pin
// Partitioning::kAllGlobal — --threads is then accepted but execution is
// serial, making output trivially thread-count-invariant (see
// DESIGN.md §13).
//
// Failure attribution: CentralServerFs reports success per op.  xFS calls
// its completion even when the retry budget is exhausted and counts the
// failure in stats().failed_ops; because that increment happens in the
// same event as the completion callback, the workload attributes it to
// the finishing request by watching the counter — valid while the
// workload is the only xFS client issuing reads/writes (benches and
// examples here always are).
#pragma once

#include <cstdint>
#include <vector>

#include "coopcache/coopcache.hpp"
#include "glunix/glunix.hpp"
#include "obs/trace.hpp"
#include "serve/arrivals.hpp"
#include "serve/request_mix.hpp"
#include "serve/slo.hpp"
#include "sim/engine.hpp"
#include "xfs/central_server.hpp"
#include "xfs/xfs.hpp"

namespace now::serve {

/// The subsystems requests are served by.  File classes need exactly one
/// of xfs/central; cache classes need coop; compute classes need glunix.
/// Null pointers for classes the mix never draws are fine.
struct Backends {
  xfs::Xfs* xfs = nullptr;
  xfs::CentralServerFs* central = nullptr;
  coopcache::CoopCacheSim* coop = nullptr;
  glunix::Glunix* glunix = nullptr;
  /// Per-level costs charged to kCacheRead requests.
  coopcache::CacheCosts coop_costs;
};

struct ServeConfig {
  PopulationParams population;
  std::vector<RequestClass> classes;
  /// Cluster node each population client issues from (client i uses
  /// client_nodes[i % size]).  Must be non-empty.
  std::vector<net::NodeId> client_nodes;
  std::uint64_t seed = 1;
};

struct ServeTotals {
  std::uint64_t arrivals = 0;  // requests issued
  std::uint64_t open_arrivals = 0;
  std::uint64_t closed_arrivals = 0;
  std::uint64_t completed = 0;
  /// arrivals / horizon — the offered load actually generated.
  double offered_per_sec = 0.0;
};

class ServeWorkload {
 public:
  /// The workload must outlive the run; completions reference it.
  ServeWorkload(sim::Engine& engine, Backends backends, ServeConfig cfg);
  ServeWorkload(const ServeWorkload&) = delete;
  ServeWorkload& operator=(const ServeWorkload&) = delete;

  /// Schedules every open arrival (materialized up front) and arms the
  /// closed loops.  Call once, then run the engine.
  void start();

  SloTracker& slo() { return slo_; }
  const SloTracker& slo() const { return slo_; }
  ClientPopulation& population() { return pop_; }
  RequestMix& mix() { return mix_; }
  ServeTotals totals() const;
  /// Requests issued but not yet completed (in flight when the run ended).
  std::uint64_t in_flight() const { return arrivals_ - completed_; }

 private:
  void issue(std::uint32_t client, bool closed);
  void finish(std::uint32_t client, std::size_t cls, sim::SimTime t0,
              bool ok, bool closed);
  void schedule_closed(std::uint32_t client);
  /// True iff xFS counted a new failed op since the last call (see the
  /// attribution note in the header comment).
  bool xfs_op_failed();
  net::NodeId node_of(std::uint32_t client) const {
    return cfg_.client_nodes[client % cfg_.client_nodes.size()];
  }

  sim::Engine& engine_;
  Backends b_;
  ServeConfig cfg_;
  ClientPopulation pop_;
  RequestMix mix_;
  SloTracker slo_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t open_arrivals_ = 0;
  std::uint64_t closed_arrivals_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t xfs_failed_seen_ = 0;
  obs::TrackId obs_track_;
  bool started_ = false;
};

}  // namespace now::serve
