// now::serve — the serving driver: population x mix x SLOs over one
// cluster.
//
// ServeWorkload is what turns the reproduction into a service.  It owns a
// ClientPopulation (when requests arrive), a RequestMix (what each request
// does), and an SloTracker (how the answer is judged), and drives them
// against real backends:
//
//   file classes    -> xfs::Xfs (serverless) or xfs::CentralServerFs (the
//                      incumbent), whichever the Backends struct carries;
//   cache classes   -> coopcache::CoopCacheSim, charged at the study's
//                      per-level costs (local / peer memory / server
//                      memory / server disk);
//   compute classes -> glunix::Glunix::run_remote — the job really queues
//                      for an idle machine and really migrates.
//
// Determinism contract: every draw comes from seed-derived per-client
// streams (pure functions of the seed), and arrivals are *streamed* — each
// open client lazily pulls its next instant from its ArrivalStream and
// re-arms one timer, so memory and engine-queue depth stay O(clients)
// at any horizon or rate.
//
// Partition discipline: serving is lane-clean when the backend is.  Pass
// the cluster's ExecDomain and every client's timers, issue events, and
// completions run on the lane owning its node; per-lane counter shards
// and a sharded SloTracker keep the completion path lock-free, merged
// exactly at report time (thread-count-invariant output — DESIGN.md §15).
// CentralServerFs is the lane-clean backend (its RPCs cross lanes through
// the deterministic barrier merge).  xFS, the cooperative cache, and
// GLUnix touch many nodes' state per event, so workloads driving them
// must stay serial (domain == nullptr, Partitioning::kAllGlobal) — the
// constructor asserts this.
//
// Session churn: when PopulationParams::sessions is enabled, clients log
// in and out over the run.  Open arrivals are filtered inside
// ArrivalStream; closed loops check their own SessionTimeline cursor and
// park until the next login; the live headcount is published as the
// serve.sessions_active obs gauge (gauge updates ride each client's lane,
// and Gauge::add is atomic and commutative).
//
// Failure attribution: CentralServerFs reports success per op.  xFS calls
// its completion even when the retry budget is exhausted and counts the
// failure in stats().failed_ops; because that increment happens in the
// same event as the completion callback, the workload attributes it to
// the finishing request by watching the counter — valid while the
// workload is the only xFS client issuing reads/writes (benches and
// examples here always are).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "coopcache/coopcache.hpp"
#include "glunix/glunix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "replay/cursor.hpp"
#include "serve/arrivals.hpp"
#include "serve/request_mix.hpp"
#include "serve/slo.hpp"
#include "sim/engine.hpp"
#include "sim/exec_domain.hpp"
#include "xfs/central_server.hpp"
#include "xfs/xfs.hpp"

namespace now::serve {

/// The subsystems requests are served by.  File classes need exactly one
/// of xfs/central; cache classes need coop; compute classes need glunix.
/// Null pointers for classes the mix never draws are fine.
struct Backends {
  xfs::Xfs* xfs = nullptr;
  xfs::CentralServerFs* central = nullptr;
  coopcache::CoopCacheSim* coop = nullptr;
  glunix::Glunix* glunix = nullptr;
  /// Per-level costs charged to kCacheRead requests.
  coopcache::CacheCosts coop_costs;
};

/// The third arrival source, next to the population's open and closed
/// clients: a recorded trace replayed open-loop.  The trace's recorded
/// client ids are folded onto `clients` replay clients (id % clients),
/// each of which owns an *independent* cursor over its own file handle —
/// no reader state is shared across clients, so lane-partitioned runs
/// stay byte-identical at any thread count.  Replay clients get ids above
/// the population's and issue file reads/writes through the first
/// kFileRead / kFileWrite class in the mix (both must exist); recorded
/// blocks fold onto that class's working set.
struct ReplayArrivals {
  std::string path;  // empty = replay disabled
  std::uint32_t clients = 0;
  /// Recorded timestamps are divided by this (2 = replay twice as fast).
  double time_scale = 1.0;
  std::size_t window_bytes = replay::LineCursor::kDefaultWindow;
  bool enabled() const { return !path.empty() && clients > 0; }
};

struct ServeConfig {
  PopulationParams population;
  std::vector<RequestClass> classes;
  /// Cluster node each population client issues from (client i uses
  /// client_nodes[i % size]).  Must be non-empty.
  std::vector<net::NodeId> client_nodes;
  ReplayArrivals replay;
  std::uint64_t seed = 1;
};

struct ServeTotals {
  std::uint64_t arrivals = 0;  // requests issued
  std::uint64_t open_arrivals = 0;
  std::uint64_t closed_arrivals = 0;
  std::uint64_t replayed_arrivals = 0;
  std::uint64_t completed = 0;
  /// arrivals / horizon — the offered load actually generated.
  double offered_per_sec = 0.0;
};

class ServeWorkload {
 public:
  /// The workload must outlive the run; completions reference it.
  /// `domain` non-null runs partitioned: each client's events live on the
  /// lane owning its node (requires a lane-clean backend — central only).
  /// Null is the serial path, byte-identical to partitioned output.
  ServeWorkload(sim::Engine& engine, Backends backends, ServeConfig cfg,
                sim::ExecDomain* domain = nullptr);
  ServeWorkload(const ServeWorkload&) = delete;
  ServeWorkload& operator=(const ServeWorkload&) = delete;

  /// Arms every open client's lazy arrival chain and the closed loops
  /// (one pending timer per client).  Call once, then run the engine.
  void start();

  SloTracker& slo() { return slo_; }
  const SloTracker& slo() const { return slo_; }
  ClientPopulation& population() { return pop_; }
  RequestMix& mix() { return mix_; }
  ServeTotals totals() const;
  /// Requests issued but not yet completed (in flight when the run ended).
  std::uint64_t in_flight() const;
  /// Clients currently inside a login session (== the sessions_active
  /// gauge; constant clients() when churn is disabled).
  std::uint64_t sessions_active() const;

 private:
  /// Per-lane tallies: each lane bumps only its own block, totals() sums.
  struct LaneCounters {
    std::uint64_t arrivals = 0;
    std::uint64_t open_arrivals = 0;
    std::uint64_t closed_arrivals = 0;
    std::uint64_t replayed_arrivals = 0;
    std::uint64_t completed = 0;
    /// Net login count on this lane (logins - logouts); summed across
    /// lanes it is the live session headcount.
    std::int64_t sessions = 0;
  };
  /// A closed client's session cursor (open clients filter inside their
  /// ArrivalStream instead).
  struct ClosedSession {
    SessionTimeline timeline;
    std::optional<Session> window;
  };

  void arm_open(std::uint32_t client);
  void arm_replay(std::uint32_t replay_client);
  void arm_presence(std::uint32_t client, std::optional<Session> window);
  void issue(std::uint32_t client, bool closed);
  void issue_replayed(std::uint32_t client, std::uint64_t block,
                      bool is_write);
  void finish(std::uint32_t client, std::size_t cls, sim::SimTime t0,
              bool ok, bool closed);
  void schedule_closed(std::uint32_t client);
  void issue_closed_in_session(std::uint32_t client);
  /// True iff xFS counted a new failed op since the last call (see the
  /// attribution note in the header comment).
  bool xfs_op_failed();
  net::NodeId node_of(std::uint32_t client) const {
    return cfg_.client_nodes[client % cfg_.client_nodes.size()];
  }
  sim::Engine& engine_of(std::uint32_t client) {
    return domain_ != nullptr ? domain_->engine_for(node_of(client))
                              : engine_;
  }
  unsigned lane_of(std::uint32_t client) const {
    return domain_ != nullptr ? domain_->lane_of(node_of(client)) : 0;
  }

  sim::Engine& engine_;
  sim::ExecDomain* domain_ = nullptr;
  Backends b_;
  ServeConfig cfg_;
  ClientPopulation pop_;
  RequestMix mix_;
  SloTracker slo_;
  std::vector<LaneCounters> lane_counts_;
  std::vector<ArrivalStream> open_streams_;     // one per open client
  std::vector<ClosedSession> closed_sessions_;  // one per closed client
  /// One independent trace cursor per replay client (own file handle).
  std::vector<std::unique_ptr<replay::TraceCursor>> replay_cursors_;
  std::size_t replay_read_cls_ = 0;
  std::size_t replay_write_cls_ = 0;
  std::vector<SessionTimeline> presence_;       // gauge chains (churn only)
  std::uint64_t xfs_failed_seen_ = 0;
  obs::Gauge* sessions_gauge_ = nullptr;
  obs::TrackId obs_track_;
  bool started_ = false;
};

}  // namespace now::serve
