#include "serve/request_mix.hpp"

#include <cassert>

#include "exp/seed.hpp"

namespace now::serve {

namespace {
constexpr std::uint64_t kMixStream = 11;  // disjoint from arrivals.cpp's 9/10
}  // namespace

const char* to_string(RequestOp op) {
  switch (op) {
    case RequestOp::kFileRead: return "file_read";
    case RequestOp::kFileWrite: return "file_write";
    case RequestOp::kCacheRead: return "cache_read";
    case RequestOp::kCompute: return "compute";
  }
  return "?";
}

RequestMix::RequestMix(std::vector<RequestClass> classes, std::uint64_t seed)
    : classes_(std::move(classes)), seed_(seed) {
  assert(!classes_.empty());
  double total = 0.0;
  cum_weight_.reserve(classes_.size());
  zipf_.reserve(classes_.size());
  for (const RequestClass& rc : classes_) {
    assert(rc.weight >= 0.0);
    total += rc.weight;
    cum_weight_.push_back(total);
    zipf_.emplace_back(rc.working_set > 0 ? rc.working_set : 1, rc.zipf_s);
  }
  assert(total > 0.0 && "RequestMix needs at least one positive weight");
}

void RequestMix::ensure_clients(std::uint32_t n) {
  rng_.reserve(n);
  while (rng_.size() < n) {
    const auto client = static_cast<std::uint32_t>(rng_.size());
    rng_.emplace_back(exp::derive_seed(seed_, (kMixStream << 32) | client),
                      client);
  }
}

sim::Pcg32& RequestMix::rng(std::uint32_t client) {
  // Serial growth path; lane-partitioned drivers call ensure_clients()
  // first so this never reallocates under their feet.  Either way the
  // stream depends only on (seed, client): creation order is irrelevant
  // to the draws.
  if (client >= rng_.size()) ensure_clients(client + 1);
  return rng_[client];
}

std::size_t RequestMix::pick_class(std::uint32_t client) {
  const double u = rng(client).next_double() * cum_weight_.back();
  for (std::size_t i = 0; i < cum_weight_.size(); ++i) {
    if (u < cum_weight_[i]) return i;
  }
  return cum_weight_.size() - 1;
}

std::uint64_t RequestMix::pick_block(std::size_t cls, std::uint32_t client) {
  return zipf_.at(cls).sample(rng(client));
}

}  // namespace now::serve
