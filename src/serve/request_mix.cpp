#include "serve/request_mix.hpp"

#include <cassert>

#include "exp/seed.hpp"

namespace now::serve {

namespace {
constexpr std::uint64_t kMixStream = 11;  // disjoint from arrivals.cpp's 9/10
}  // namespace

const char* to_string(RequestOp op) {
  switch (op) {
    case RequestOp::kFileRead: return "file_read";
    case RequestOp::kFileWrite: return "file_write";
    case RequestOp::kCacheRead: return "cache_read";
    case RequestOp::kCompute: return "compute";
  }
  return "?";
}

RequestMix::RequestMix(std::vector<RequestClass> classes, std::uint64_t seed)
    : classes_(std::move(classes)), seed_(seed) {
  assert(!classes_.empty());
  double total = 0.0;
  cum_weight_.reserve(classes_.size());
  zipf_.reserve(classes_.size());
  for (const RequestClass& rc : classes_) {
    assert(rc.weight >= 0.0);
    total += rc.weight;
    cum_weight_.push_back(total);
    zipf_.emplace_back(rc.working_set > 0 ? rc.working_set : 1, rc.zipf_s);
  }
  assert(total > 0.0 && "RequestMix needs at least one positive weight");
}

sim::Pcg32& RequestMix::rng(std::uint32_t client) {
  auto it = rng_.find(client);
  if (it == rng_.end()) {
    // Lazily created, but the stream depends only on (seed, client), so
    // creation order — and therefore sweep/thread scheduling — is
    // irrelevant to the draws.
    it = rng_.emplace(client,
                      sim::Pcg32(exp::derive_seed(
                                     seed_, (kMixStream << 32) | client),
                                 client))
             .first;
  }
  return it->second;
}

std::size_t RequestMix::pick_class(std::uint32_t client) {
  const double u = rng(client).next_double() * cum_weight_.back();
  for (std::size_t i = 0; i < cum_weight_.size(); ++i) {
    if (u < cum_weight_[i]) return i;
  }
  return cum_weight_.size() - 1;
}

std::uint64_t RequestMix::pick_block(std::size_t cls, std::uint32_t client) {
  return zipf_.at(cls).sample(rng(client));
}

}  // namespace now::serve
