// now::serve — tail-latency SLO accounting.
//
// A serving system is judged on its tail, not its mean: the paper-era
// argument for dedicating a building to a service only holds if p99/p999
// end-to-end latency stays inside a service-level objective while load
// and failures do their worst.  SloTracker records every completed
// request into a fine-grained log-spaced histogram (2 % relative
// quantile error) per request class, judges it against the class SLO,
// and reports p50/p99/p999, attainment (fraction of completed requests
// that succeeded *and* met the SLO), and goodput (SLO-meeting successes
// per second of offered interval).
//
// Partitioned runs record from many lanes at once, so the tracker shards:
// set_lanes(P) gives every lane its own histogram + counter block, and
// record(cls, latency, ok, lane) touches only that lane's shard — no lock
// on the completion path.  Reports merge the shards with *exact*
// arithmetic (integer bin counts, integer latency sums, min/max), so
// every printed number is identical at any thread count and any lane
// layout; nothing order-dependent (like Welford mean merging) sits on the
// report path.
//
// Each class is mirrored into now::obs under serve.<class>.* — the
// latency histogram plus completed/failed/slo_miss counters — so serving
// runs show up in metrics dumps and the periodic sampler like every
// other subsystem.  The obs instruments are themselves thread-safe
// (relaxed atomics / spinlock) and shared by all lanes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace now::serve {

struct SloClassReport {
  std::string name;
  sim::Duration slo = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;      // completed successfully (no backend failure)
  std::uint64_t failed = 0;  // backend reported failure (EIO / timeout)
  std::uint64_t slo_met = 0; // ok and latency <= slo
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  /// slo_met / completed; 1.0 before any completion.
  double attainment = 1.0;
  /// slo_met per second of the reporting interval.
  double goodput_per_sec = 0.0;
};

class SloTracker {
 public:
  /// Instruments register under "<prefix>.<class>.*" in the calling
  /// thread's obs registry (the run's private one inside a sweep).
  explicit SloTracker(std::string prefix = "serve");

  /// Adds a request class; returns its index.  Call before record().
  std::size_t add_class(const std::string& name, sim::Duration slo);

  /// Shards the tracker for `lanes` concurrent recorders (default 1 —
  /// the serial layout).  Call after add_class() and before record().
  void set_lanes(unsigned lanes);

  std::size_t classes() const { return classes_.size(); }
  unsigned lanes() const { return static_cast<unsigned>(shards_.size()); }

  /// Records one completed request of class `cls`: end-to-end `latency`,
  /// and whether the backend succeeded.  A failed request can never meet
  /// the SLO, whatever its latency.  `lane` must be the recording lane's
  /// index (ExecDomain::lane_of); each lane owns its shard, so concurrent
  /// calls from *different* lanes are race-free.
  void record(std::size_t cls, sim::Duration latency, bool ok,
              unsigned lane = 0);

  /// Per-class report; `elapsed` is the interval goodput is judged over.
  /// Merges all lane shards exactly — byte-identical at any lane count.
  SloClassReport report(std::size_t cls, sim::Duration elapsed) const;

  /// All classes merged (each request judged against its own class SLO).
  SloClassReport overall(sim::Duration elapsed) const;

  std::uint64_t completed() const;

 private:
  struct ClassMeta {
    std::string name;
    sim::Duration slo = 0;
    obs::Histogram* obs_latency = nullptr;
    obs::Counter* obs_completed = nullptr;
    obs::Counter* obs_failed = nullptr;
    obs::Counter* obs_slo_miss = nullptr;
  };
  struct ClassShard {
    // 1 us floor, 2 % bins: tight enough for honest p999 readings.
    sim::Histogram latency_us{1.0, 1.02};
    /// Exact latency sum — integer addition is associative, so the merged
    /// mean does not depend on how samples were grouped into lanes.
    std::uint64_t sum_ns = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t slo_met = 0;
  };
  struct LaneShard {
    std::vector<ClassShard> classes;
    sim::Histogram all_us{1.0, 1.02};
    std::uint64_t all_sum_ns = 0;
    std::uint64_t completed = 0;
  };

  /// All lanes' shards for `cls` merged into one (plus summed tallies).
  ClassShard merged(std::size_t cls) const;
  static void fill(SloClassReport& r, const sim::Histogram& h,
                   std::uint64_t sum_ns, sim::Duration elapsed);

  std::string prefix_;
  std::vector<ClassMeta> classes_;
  std::vector<LaneShard> shards_;  // one per lane; [0] exists from birth
};

}  // namespace now::serve
