// now::serve — tail-latency SLO accounting.
//
// A serving system is judged on its tail, not its mean: the paper-era
// argument for dedicating a building to a service only holds if p99/p999
// end-to-end latency stays inside a service-level objective while load
// and failures do their worst.  SloTracker records every completed
// request into a fine-grained log-spaced histogram (2 % relative
// quantile error) per request class, judges it against the class SLO,
// and reports p50/p99/p999, attainment (fraction of completed requests
// that succeeded *and* met the SLO), and goodput (SLO-meeting successes
// per second of offered interval).
//
// Each class is mirrored into now::obs under serve.<class>.* — the
// latency histogram plus completed/failed/slo_miss counters — so serving
// runs show up in metrics dumps and the periodic sampler like every
// other subsystem, and dumps stay byte-deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace now::serve {

struct SloClassReport {
  std::string name;
  sim::Duration slo = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;      // completed successfully (no backend failure)
  std::uint64_t failed = 0;  // backend reported failure (EIO / timeout)
  std::uint64_t slo_met = 0; // ok and latency <= slo
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  /// slo_met / completed; 1.0 before any completion.
  double attainment = 1.0;
  /// slo_met per second of the reporting interval.
  double goodput_per_sec = 0.0;
};

class SloTracker {
 public:
  /// Instruments register under "<prefix>.<class>.*" in the calling
  /// thread's obs registry (the run's private one inside a sweep).
  explicit SloTracker(std::string prefix = "serve");

  /// Adds a request class; returns its index.  Call before record().
  std::size_t add_class(const std::string& name, sim::Duration slo);

  std::size_t classes() const { return classes_.size(); }

  /// Records one completed request of class `cls`: end-to-end `latency`,
  /// and whether the backend succeeded.  A failed request can never meet
  /// the SLO, whatever its latency.
  void record(std::size_t cls, sim::Duration latency, bool ok);

  /// Per-class report; `elapsed` is the interval goodput is judged over.
  SloClassReport report(std::size_t cls, sim::Duration elapsed) const;

  /// All classes merged (each request judged against its own class SLO).
  SloClassReport overall(sim::Duration elapsed) const;

  std::uint64_t completed() const { return total_completed_; }

 private:
  struct PerClass {
    std::string name;
    sim::Duration slo = 0;
    // 1 us floor, 2 % bins: tight enough for honest p999 readings.
    sim::Histogram latency_us{1.0, 1.02};
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t slo_met = 0;
    obs::Histogram* obs_latency = nullptr;
    obs::Counter* obs_completed = nullptr;
    obs::Counter* obs_failed = nullptr;
    obs::Counter* obs_slo_miss = nullptr;
  };

  std::string prefix_;
  std::vector<PerClass> classes_;
  sim::Histogram all_us_{1.0, 1.02};
  std::uint64_t total_completed_ = 0;
};

}  // namespace now::serve
