// Table 1 and the surrounding technology-trend arithmetic.
//
// MPPs ship one to two years after workstations built from the same
// microprocessor; at 50 % performance improvement per year, a two-year lag
// costs more than a factor of two in delivered performance.  The
// price/performance slopes (80 %/yr for workstations vs 20-30 %/yr for
// supercomputers) compound the same way.
#pragma once

#include <string>
#include <vector>

namespace now::models {

struct MppLagRow {
  std::string mpp;
  std::string node_processor;
  double mpp_ship_year;         // midpoint of the paper's range
  double equivalent_ws_year;    // when workstations had the same CPU
  double lag_years() const { return mpp_ship_year - equivalent_ws_year; }
};

/// Table 1's three rows (T3D, Paragon, CM-5).
std::vector<MppLagRow> table1_rows();

/// Performance forgone by shipping `lag_years` late at `annual_improvement`
/// (0.5 = 50 %/yr): returns the factor (e.g. 2.25 for two years at 50 %).
double performance_lag_factor(double lag_years,
                              double annual_improvement = 0.5);

/// Compounded price/performance advantage after `years` when one curve
/// improves at `fast` per year and the other at `slow` (the workstation
/// 80 %/yr vs supercomputer 20-30 %/yr argument).
double price_performance_divergence(double years, double fast = 0.8,
                                    double slow = 0.25);

}  // namespace now::models
