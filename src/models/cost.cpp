#include "models/cost.hpp"

#include <algorithm>
#include <cmath>

namespace now::models {

double bell_cost_multiplier(double volume_ratio) {
  // Each doubling of volume cuts unit cost to 90 %: the low-volume product
  // costs (1/0.9)^log2(ratio) times as much.
  return std::pow(1.0 / 0.9, std::log2(volume_ratio));
}

double figure1_system_price(const SystemQuote& q) {
  const int boxes = (128 + q.cpus_per_box - 1) / q.cpus_per_box;
  const double cpus = 128.0;
  double total = boxes * q.box_price_usd;
  total += 128.0 * 32.0 * q.dram_per_mb_usd;  // 128 x 32 MB
  total += 128.0 * q.disk_per_gb_usd;         // 128 x 1 GB
  total += 128.0 * q.display_usd;             // a screen per user
  total += cpus * q.interconnect_per_cpu_usd;
  return total;
}

std::vector<SystemQuote> figure1_systems() {
  std::vector<SystemQuote> v;

  SystemQuote ss1{"SparcStation-10 (1 cpu)", 1, 10'000, 40, 1'000, 1'500,
                  200};
  SystemQuote ss2{"SparcStation-10 (2 cpu)", 2, 14'000, 40, 1'000, 1'500,
                  200};
  SystemQuote ss4{"SparcStation-10 (4 cpu)", 4, 22'000, 40, 1'000, 1'500,
                  200};
  // Servers: higher-margin chassis, server-priced DRAM and disk, X
  // terminals on the desks, an external interconnect between boxes.
  SystemQuote sc1000{"SparcCenter-1000 (8 cpu)", 8, 95'000, 100, 2'000,
                     1'500, 400};
  SystemQuote sc2000{"SparcCenter-2000 (20 cpu)", 20, 260'000, 100, 2'000,
                     1'500, 400};
  // MPP: one 128-node machine; the interconnect is integral, the
  // engineering effort is amortized over very few units.
  SystemQuote mpp{"CM-5 / CS-2 (128 nodes)", 128, 1'600'000, 150, 2'000,
                  1'500, 0};

  v.push_back(ss1);
  v.push_back(ss2);
  v.push_back(ss4);
  v.push_back(sc1000);
  v.push_back(sc2000);
  v.push_back(mpp);
  return v;
}

double figure1_best_price() {
  double best = 0;
  for (const SystemQuote& q : figure1_systems()) {
    const double p = figure1_system_price(q);
    if (best == 0 || p < best) best = p;
  }
  return best;
}

}  // namespace now::models
