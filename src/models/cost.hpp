// Cost models: Bell's volume rule and the Figure 1 price comparison.
//
// Figure 1 prices a fixed capability — 128 x (40 MHz SuperSparc, 32 MB
// DRAM, 1 GB disk, a screen) plus a scalable interconnect — built six
// ways: desktops (1-, 2-, 4-processor SparcStation-10s), large SMP servers
// (SparcCenter-1000/2000), and 128-node MPPs (CM-5 / CS-2).  The paper's
// finding: the servers and MPPs cost about TWICE the most cost-effective
// workstation build, because their engineering is amortized over far fewer
// units.  Component prices below are reconstructed from the article's
// anchors (DRAM at $40/MB for a PC vs $600/MB for a Cray, Bell's rule) and
// typical 1994 university pricing; the *ratios* are what Figure 1 claims.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace now::models {

/// Gordon Bell's rule of thumb: doubling the manufacturing volume reduces
/// unit cost to 90 %.  Returns the predicted cost ratio between a
/// low-volume and a high-volume product given their volume ratio.
double bell_cost_multiplier(double volume_ratio);

/// One way of assembling the 128-processor capability.
struct SystemQuote {
  std::string name;
  /// Processors per enclosure.
  int cpus_per_box = 1;
  /// Price of one enclosure with its CPUs (chassis, boards, packaging).
  double box_price_usd = 0;
  /// $/MB of DRAM in this class of machine.
  double dram_per_mb_usd = 40;
  /// $/GB of disk in this class of machine.
  double disk_per_gb_usd = 1'000;
  /// Display: built-in screen for desktops, X terminal otherwise.
  double display_usd = 1'500;
  /// Scalable interconnect cost per processor (switch ports, cabling);
  /// zero when it is integral to the chassis price.
  double interconnect_per_cpu_usd = 0;
};

/// Total price of `quote` scaled to 128 processors, 128 x 32 MB, 128 GB of
/// disk, and 128 displays.
double figure1_system_price(const SystemQuote& quote);

/// The six systems of Figure 1, in the paper's order.
std::vector<SystemQuote> figure1_systems();

/// Price of the cheapest configuration (the paper: the 4-way SS-10).
double figure1_best_price();

}  // namespace now::models
