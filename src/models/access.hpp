// Table 2: the time to service an 8 KB file-system cache miss from remote
// memory or remote disk, over Ethernet and over 155 Mb/s ATM.
//
// Four components: the software memory copy, fixed network driver
// overhead, wire transfer of the 8 KB, and (for the disk cases) the disk
// access itself.  The table's message: with a switched LAN, remote DRAM is
// an order of magnitude faster than any disk — the foundation for network
// RAM and cooperative caching.
#pragma once

#include <string>
#include <vector>

namespace now::models {

struct AccessComponents {
  std::string network;       // "Ethernet" or "155-Mbps ATM"
  bool from_disk = false;    // remote disk vs remote memory
  double memcpy_us = 250;    // software copy of 8 KB
  double net_overhead_us = 400;
  double transfer_us = 0;    // 8 KB on the wire
  double disk_us = 0;        // 14,800 us when from_disk

  double total_us() const {
    return memcpy_us + net_overhead_us + transfer_us + disk_us;
  }
};

/// The four columns of Table 2, in paper order: Ethernet remote memory,
/// Ethernet remote disk, ATM remote memory, ATM remote disk.
std::vector<AccessComponents> table2_rows();

/// The same remote-memory totals computed from the fabric models in
/// src/net (cross-check that the simulator agrees with the arithmetic).
double simulated_remote_memory_us(bool atm);

}  // namespace now::models
