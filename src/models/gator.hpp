// The Demmel-Smith execution-time model for the Gator atmospheric-chemistry
// application (Table 4).
//
// Gator models air pollution in the Los Angeles basin.  Its runtime splits
// into an ODE phase (embarrassingly parallel floating point), a transport
// phase (communication-intensive: many small boundary-exchange messages),
// and input I/O (3.9 GB of initial data).  The model predicts wall-clock
// time from machine parameters: per-node FLOPS, per-message overhead, link
// or shared-medium bandwidth, and delivered file-system bandwidth.  The
// paper validated it within 30 % against a C-90, a CM-5, and an Alpha farm.
//
// Table 4's punchline falls straight out: a 256-node workstation NOW on
// Ethernet+PVM+NFS takes three orders of magnitude longer than a C-90, and
// each infrastructure upgrade — switched ATM, a parallel file system,
// low-overhead messages — buys back roughly an order of magnitude until
// the NOW beats the Paragon and rivals the C-90 at a sixth of the cost.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace now::models {

struct GatorWorkload {
  /// Total floating-point work (the paper: 36 billion operations).
  double total_flops = 36e9;
  /// Input data set (3.9 GB) plus the 51 MB of output.
  double io_mbytes = 3'900.0 + 51.0;
  /// Aggregate bytes exchanged during the transport phase.
  double transport_volume_mbytes = 29'200.0;
  /// Boundary-exchange messages each node sends during transport.
  double msgs_per_node = 274'000.0;
};

struct MachineConfig {
  std::string name;
  int nodes = 1;
  double mflops_per_node = 40.0;
  /// Total CPU overhead per message, sender + receiver, microseconds.
  double msg_overhead_us = 16.0;
  /// Per-node network bandwidth (switched fabric), MB/s.
  double link_mbytes_per_sec = 19.4;
  /// If > 0 the medium is shared (Ethernet): aggregate bandwidth cap.
  double shared_medium_mbytes_per_sec = 0.0;
  /// Delivered file-system bandwidth, MB/s.
  double fs_mbytes_per_sec = 2.0;
  /// Network ceiling on file-system traffic (NFS over Ethernet chokes at
  /// ~1 MB/s regardless of the disk).
  double net_fs_mbytes_per_sec = std::numeric_limits<double>::infinity();
  /// Approximate system price, millions of dollars (Table 4's last column).
  double cost_millions = 0.0;
};

struct GatorTimes {
  double ode_sec = 0;
  double transport_sec = 0;
  double input_sec = 0;
  double total_sec = 0;
};

/// Evaluates the model.
GatorTimes gator_time(const GatorWorkload& w, const MachineConfig& m);

// --- Table 4's machine configurations --------------------------------
MachineConfig c90_16();
MachineConfig paragon_256();
MachineConfig rs6000_ethernet_pvm();   // the dreadful baseline
MachineConfig rs6000_atm_pvm();        // + "killer network"
MachineConfig rs6000_atm_pfs();        // + parallel file system
MachineConfig rs6000_atm_pfs_am();     // + low-overhead messages

/// All six rows in the paper's order.
std::vector<MachineConfig> table4_machines();

}  // namespace now::models
