#include "models/logp.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace now::models {

LogGpParams derive_loggp(const proto::ProtocolCosts& costs,
                         const net::FabricParams& fabric, int processors,
                         std::uint32_t small_bytes) {
  LogGpParams p;
  p.P = processors;
  // Overhead: mean of send and receive sides for the small message.
  p.o_us = 0.5 * (sim::to_us(costs.send_overhead(small_bytes)) +
                  sim::to_us(costs.recv_overhead(small_bytes)));
  // Latency: fabric transit for the small message (one serialization when
  // cut-through, two otherwise) — the part that can overlap computation.
  const sim::Duration ser = fabric.serialization(small_bytes);
  p.L_us = sim::to_us((fabric.cut_through ? ser : 2 * ser) + fabric.latency);
  // Gap: the per-message rate limit at one processor is its own protocol
  // processing (the simulator serializes stack work per node).
  p.g_us = sim::to_us(costs.send_overhead(small_bytes));
  // Per-byte gap: CPU copy cost plus wire serialization, whichever path a
  // byte takes twice (send-side copy) dominates throughput.
  p.G_us_per_byte = costs.send_per_byte_ns / 1000.0 +
                    8.0 / fabric.link_bandwidth_bps * 1e6;
  return p;
}

double logp_one_way_us(const LogGpParams& p) {
  return 2 * p.o_us + p.L_us;
}

double logp_round_trip_us(const LogGpParams& p) {
  return 2 * logp_one_way_us(p);
}

double loggp_long_message_us(const LogGpParams& p, std::uint64_t bytes) {
  const double body = bytes > 0 ? (static_cast<double>(bytes) - 1.0) *
                                      p.G_us_per_byte
                                : 0.0;
  return 2 * p.o_us + body + p.L_us;
}

double loggp_half_power_bytes(const LogGpParams& p) {
  // n such that n/T(n) = (1/G)/2  =>  n G = 2o + L (approximately).
  return (2 * p.o_us + p.L_us) / p.G_us_per_byte;
}

double logp_broadcast_us(const LogGpParams& p) {
  if (p.P <= 1) return 0.0;
  // Greedy optimal tree: every processor that knows the value sends to a
  // new one every max(g, o); a message sent at t is usable at
  // t + o + L + o.
  const double interval = std::max(p.g_us, p.o_us);
  const double delivery = p.o_us + p.L_us + p.o_us;
  // Min-heap of times at which informed processors can next *send*.
  std::priority_queue<double, std::vector<double>, std::greater<>> senders;
  senders.push(0.0);
  double finish = 0.0;
  for (int informed = 1; informed < p.P; ++informed) {
    const double send_at = senders.top();
    senders.pop();
    const double arrives = send_at + delivery;
    finish = std::max(finish, arrives);
    senders.push(send_at + interval);  // the sender goes again
    senders.push(arrives);             // the newcomer joins in
  }
  return finish;
}

double logp_send_train_us(const LogGpParams& p, int k) {
  if (k <= 0) return 0.0;
  return p.o_us + (k - 1) * std::max(p.g_us, p.o_us);
}

double logp_barrier_us(const LogGpParams& p) {
  return 2 * logp_broadcast_us(p);
}

}  // namespace now::models
