#include "models/access.hpp"

#include "net/presets.hpp"
#include "net/shared_bus.hpp"
#include "net/switched.hpp"
#include "sim/engine.hpp"

namespace now::models {

namespace {
AccessComponents make_row(bool atm, bool from_disk) {
  AccessComponents c;
  c.network = atm ? "155-Mbps ATM" : "Ethernet";
  c.from_disk = from_disk;
  // Wire time for 8 KB: the paper rounds to 6,250 us (Ethernet) and
  // 400 us (ATM).
  c.transfer_us = atm ? 400 : 6'250;
  c.disk_us = from_disk ? 14'800 : 0;
  return c;
}
}  // namespace

std::vector<AccessComponents> table2_rows() {
  return {make_row(false, false), make_row(false, true),
          make_row(true, false), make_row(true, true)};
}

double simulated_remote_memory_us(bool atm) {
  sim::Engine eng;
  sim::SimTime delivered = -1;
  net::Packet pkt;
  pkt.src = 0;
  pkt.dst = 1;
  pkt.size_bytes = 8192;
  if (atm) {
    net::SwitchedNetwork net(eng, net::atm_155mbps());
    net.attach(0, [](net::Packet&&) {});
    net.attach(1, [&](net::Packet&&) { delivered = eng.now(); });
    net.send(std::move(pkt));
    eng.run();
  } else {
    net::SharedBusNetwork net(eng, net::ethernet_10mbps());
    net.attach(0, [](net::Packet&&) {});
    net.attach(1, [&](net::Packet&&) { delivered = eng.now(); });
    net.send(std::move(pkt));
    eng.run();
  }
  // Wire time plus the driver overhead and copy of Table 2's model.
  return sim::to_us(delivered) + 250.0 + 400.0;
}

}  // namespace now::models
