#include "models/gator.hpp"

#include <algorithm>

namespace now::models {

GatorTimes gator_time(const GatorWorkload& w, const MachineConfig& m) {
  GatorTimes t;

  // ODE phase: perfectly parallel floating point.
  t.ode_sec = w.total_flops / (m.nodes * m.mflops_per_node * 1e6);

  // Transport phase: per-node message overhead vs wire occupancy,
  // whichever limits (communication overlaps across nodes).
  const double overhead_sec = w.msgs_per_node * m.msg_overhead_us * 1e-6;
  double wire_sec;
  if (m.shared_medium_mbytes_per_sec > 0) {
    // Shared Ethernet: every byte crosses one medium.
    wire_sec = w.transport_volume_mbytes / m.shared_medium_mbytes_per_sec;
  } else {
    // Switched fabric: per-node links carry each node's share.
    wire_sec = (w.transport_volume_mbytes / m.nodes) /
               m.link_mbytes_per_sec;
  }
  t.transport_sec = std::max(overhead_sec, wire_sec);

  // Input: limited by the file system or the network path to it.
  const double fs = std::min(m.fs_mbytes_per_sec, m.net_fs_mbytes_per_sec);
  t.input_sec = w.io_mbytes / fs;

  t.total_sec = t.ode_sec + t.transport_sec + t.input_sec;
  return t;
}

MachineConfig c90_16() {
  MachineConfig m;
  m.name = "C-90 (16)";
  m.nodes = 16;
  m.mflops_per_node = 300.0;
  m.msg_overhead_us = 1.0;  // shared-memory exchange
  m.link_mbytes_per_sec = 500.0;
  // 16 CPUs x 10 MB/s disks plus a high-end I/O subsystem: ~244 MB/s
  // delivered (calibrated to the paper's 16 s input row).
  m.fs_mbytes_per_sec = 244.0;
  m.cost_millions = 30.0;
  return m;
}

MachineConfig paragon_256() {
  MachineConfig m;
  m.name = "Paragon (256)";
  m.nodes = 256;
  m.mflops_per_node = 12.0;
  m.msg_overhead_us = 86.0;  // NX message passing
  m.link_mbytes_per_sec = 20.0;
  // 256 x 2 MB/s disks behind a parallel file system at ~80 % efficiency.
  m.fs_mbytes_per_sec = 0.8 * 256 * 2.0;
  m.cost_millions = 10.0;
  return m;
}

MachineConfig rs6000_ethernet_pvm() {
  MachineConfig m;
  m.name = "RS-6000 (256)";
  m.nodes = 256;
  m.mflops_per_node = 40.0;
  m.msg_overhead_us = 700.0;  // PVM daemon path, both sides
  m.shared_medium_mbytes_per_sec = 10.0e6 / 8.0 / 1e6;  // 1.25 MB/s
  // Sequential (NFS-class) file server: ~2 MB/s disk, but the shared
  // Ethernet caps delivered FS bandwidth near 1 MB/s.
  m.fs_mbytes_per_sec = 1.94;
  m.net_fs_mbytes_per_sec = 0.97;
  m.cost_millions = 4.0;
  return m;
}

MachineConfig rs6000_atm_pvm() {
  MachineConfig m = rs6000_ethernet_pvm();
  m.name = "RS-6000 + ATM";
  m.shared_medium_mbytes_per_sec = 0.0;  // switched now
  m.link_mbytes_per_sec = 19.4;          // 155 Mb/s payload
  m.net_fs_mbytes_per_sec =
      std::numeric_limits<double>::infinity();  // net no longer the cap
  m.cost_millions = 5.0;
  return m;
}

MachineConfig rs6000_atm_pfs() {
  MachineConfig m = rs6000_atm_pvm();
  m.name = "RS-6000 + parallel file system";
  m.fs_mbytes_per_sec = 0.8 * 256 * 2.0;  // 80 % of aggregate disks
  return m;
}

MachineConfig rs6000_atm_pfs_am() {
  MachineConfig m = rs6000_atm_pfs();
  m.name = "RS-6000 + low-overhead msgs";
  m.msg_overhead_us = 16.0;  // Active Messages, both sides
  return m;
}

std::vector<MachineConfig> table4_machines() {
  return {c90_16(),          paragon_256(),    rs6000_ethernet_pvm(),
          rs6000_atm_pvm(),  rs6000_atm_pfs(), rs6000_atm_pfs_am()};
}

}  // namespace now::models
