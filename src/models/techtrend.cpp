#include "models/techtrend.hpp"

#include <cmath>

namespace now::models {

std::vector<MppLagRow> table1_rows() {
  return {
      {"T3D", "150-MHz Alpha", 1993.5, 1992.5},
      {"Paragon", "50-MHz i860", 1992.5, 1991.0},
      {"CM-5", "32-MHz SS-2", 1991.5, 1989.5},
  };
}

double performance_lag_factor(double lag_years, double annual_improvement) {
  return std::pow(1.0 + annual_improvement, lag_years);
}

double price_performance_divergence(double years, double fast, double slow) {
  return std::pow((1.0 + fast) / (1.0 + slow), years);
}

}  // namespace now::models
