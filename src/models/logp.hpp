// LogP: the paper's model of parallel computation (Culler et al., ref 3).
//
// "In discussing communication performance, we must distinguish the time
// spent in the actual network hardware, called latency, from time spent in
// the processor preparing to send or receive a message, called overhead."
// LogP makes the distinction quantitative: L (latency), o (overhead per
// send or receive), g (gap, the reciprocal of per-processor message
// bandwidth), and P (processors).  LogGP adds G, the per-byte gap for long
// messages.
//
// This module derives LogGP parameters from the simulator's protocol and
// fabric models and predicts standard communication kernels analytically —
// the same predictions the DES then validates (see logp tests).
#pragma once

#include <cstdint>

#include "net/types.hpp"
#include "proto/costs.hpp"

namespace now::models {

struct LogGpParams {
  /// One-way network latency (wire + switch), microseconds.
  double L_us = 0;
  /// CPU overhead per send or per receive, microseconds.
  double o_us = 0;
  /// Minimum inter-message gap at one processor (1/msg-bandwidth), us.
  double g_us = 0;
  /// Per-byte gap for long messages (1/bandwidth), us per byte.
  double G_us_per_byte = 0;
  /// Processors.
  int P = 2;
};

/// Derives LogGP constants from a protocol cost model and a fabric, for
/// small messages of `small_bytes`.
LogGpParams derive_loggp(const proto::ProtocolCosts& costs,
                         const net::FabricParams& fabric, int processors,
                         std::uint32_t small_bytes = 64);

/// One-way small-message time: o + L + o.
double logp_one_way_us(const LogGpParams& p);

/// Request/reply round trip: 2(o + L + o) — the Connect pattern's unit.
double logp_round_trip_us(const LogGpParams& p);

/// Long-message one-way time under LogGP: o + (n-1)G + L + o.
double loggp_long_message_us(const LogGpParams& p, std::uint64_t bytes);

/// Half-power message size: where achieved bandwidth is half of 1/G.
double loggp_half_power_bytes(const LogGpParams& p);

/// Optimal single-item broadcast time to all P processors: the classic
/// LogP broadcast tree, where every informed processor keeps sending at
/// interval max(g, o) and each transmission lands o + L + o later.
double logp_broadcast_us(const LogGpParams& p);

/// Time for one processor to issue k back-to-back small sends: o + (k-1)
/// max(g, o) (the sender-side pipeline rate the Column pattern stresses).
double logp_send_train_us(const LogGpParams& p, int k);

/// Barrier estimate: gather to root + broadcast release, each an optimal
/// tree: ~2x broadcast.
double logp_barrier_us(const LogGpParams& p);

}  // namespace now::models
