// Cooperative file caching (Dahlin et al., OSDI '94) — the study behind
// Table 3.
//
// A building's client workstations manage their file caches as one large
// cooperative cache: on a local miss, a block found in *another client's*
// memory is fetched from there (fast) instead of from the server's disk
// (slow).  This module is a trace-driven simulator, mirroring the paper's
// methodology (they replayed a two-day Berkeley trace), with the algorithm
// variants of the original study available for ablation:
//
//   kClientServer        — no cooperation: local cache, server cache, disk.
//   kGreedyForwarding    — misses may be served from any client caching the
//                          block (located via a manager directory).
//   kCentrallyCoordinated— most of each client's cache is managed as one
//                          global LRU coordinated by the server.
//   kNChance             — greedy forwarding + singlets (last cached copy)
//                          are forwarded to a random peer instead of being
//                          dropped, recirculating up to N times.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coopcache/lru.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace now::coopcache {

enum class Policy {
  kClientServer,
  kGreedyForwarding,
  kCentrallyCoordinated,
  kNChance,
};

const char* policy_name(Policy p);

/// Per-level access costs.  Defaults reproduce the study's ATM-era numbers
/// (consistent with Table 2): local memory 250 us, another client's memory
/// 1,250 us, server memory 1,050 us, server disk 15,850 us.
struct CacheCosts {
  sim::Duration local_hit = sim::from_us(250);
  sim::Duration remote_client = sim::from_us(1'250);
  /// A peer in *another rack* of a hierarchical building (two extra switch
  /// crossings plus spine queueing).  Defaults to remote_client, so flat
  /// (rack-less) configurations and every pre-building result are
  /// unchanged; building-scale benches raise it.
  sim::Duration remote_client_cross_rack = sim::from_us(1'250);
  sim::Duration server_mem = sim::from_us(1'050);
  sim::Duration server_disk = sim::from_us(15'850);
};

struct CoopCacheConfig {
  std::uint32_t clients = 42;
  /// 16 MB per client at 8 KB blocks.
  std::uint32_t client_cache_blocks = 2048;
  /// 128 MB server cache.
  std::uint32_t server_cache_blocks = 16384;
  Policy policy = Policy::kNChance;
  /// N-chance recirculation count.
  std::uint32_t nchance_limit = 2;
  /// Centrally coordinated: fraction of each client cache under global
  /// management.
  double coordinated_fraction = 0.8;
  /// Clients per rack of the building's fabric (ids map in blocks, like
  /// net::FatTreeTopology).  When > 0, forwarding prefers a same-rack
  /// holder and results split peer hits by locality.  0 = flat building,
  /// the original study's shape.
  std::uint32_t rack_size = 0;
  CacheCosts costs;
  std::uint64_t seed = 1;
};

struct CoopCacheResults {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t remote_client_hits = 0;
  /// Of remote_client_hits, how many were served from the requester's own
  /// rack (only ever non-zero with rack_size > 0).
  std::uint64_t rack_local_peer_hits = 0;
  std::uint64_t server_mem_hits = 0;
  std::uint64_t disk_reads = 0;

  double miss_rate() const {  // fraction of reads served from disk
    return reads ? static_cast<double>(disk_reads) /
                       static_cast<double>(reads)
                 : 0.0;
  }
  double local_hit_rate() const {
    return reads ? static_cast<double>(local_hits) /
                       static_cast<double>(reads)
                 : 0.0;
  }
  /// Mean read response time in milliseconds (Table 3's second column).
  double mean_read_response_ms(const CacheCosts& c) const;
};

class CoopCacheSim {
 public:
  explicit CoopCacheSim(CoopCacheConfig config);

  /// Replays one access.  Blocks are global identifiers.
  void access(std::uint32_t client, std::uint64_t block, bool is_write);

  const CoopCacheResults& results() const { return results_; }
  const CoopCacheConfig& config() const { return config_; }

  /// Clears counters but keeps cache contents — call after replaying a
  /// warm-up prefix so results reflect steady state, as the original study
  /// measured.
  void reset_stats() { results_ = CoopCacheResults{}; }

  /// How many clients currently cache `block` (directory fan-out).
  std::size_t holders(std::uint64_t block) const;

  /// Invariant check: the manager directory exactly mirrors the client
  /// caches.  O(directory size).
  bool directory_consistent() const;

 private:
  void read(std::uint32_t client, std::uint64_t block);
  void write(std::uint32_t client, std::uint64_t block);
  void insert_local(std::uint32_t client, std::uint64_t block);
  void handle_eviction(std::uint32_t client, std::uint64_t victim);
  void directory_add(std::uint64_t block, std::uint32_t client);
  void directory_remove(std::uint64_t block, std::uint32_t client);
  /// A client (other than `except`) caching `block`, or -1.
  std::int64_t find_holder(std::uint64_t block, std::uint32_t except) const;

  CoopCacheConfig config_;
  sim::Pcg32 rng_;
  std::vector<LruCache> client_caches_;
  LruCache server_cache_;
  /// Centrally coordinated global cache: one LRU over most of the
  /// aggregate client memory (kCentrallyCoordinated only).
  LruCache coordinated_;
  /// Directory: block -> clients holding it in their local caches.
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint32_t>>
      directory_;
  /// N-chance: times each at-large singlet has been forwarded.
  std::unordered_map<std::uint64_t, std::uint32_t> recirculations_;
  CoopCacheResults results_;
  obs::Counter* obs_reads_;
  obs::Counter* obs_local_hits_;
  obs::Counter* obs_remote_hits_;
  obs::Counter* obs_server_hits_;
  obs::Counter* obs_disk_reads_;
  obs::Counter* obs_forwards_;
};

}  // namespace now::coopcache
