#include "coopcache/coopcache.hpp"

#include <algorithm>
#include <cassert>

namespace now::coopcache {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kClientServer: return "client-server";
    case Policy::kGreedyForwarding: return "greedy-forwarding";
    case Policy::kCentrallyCoordinated: return "centrally-coordinated";
    case Policy::kNChance: return "n-chance";
  }
  return "?";
}

double CoopCacheResults::mean_read_response_ms(const CacheCosts& c) const {
  if (reads == 0) return 0.0;
  // Peer hits split by locality; with the default costs (cross-rack ==
  // in-rack) the split collapses to the original flat-building formula.
  const std::uint64_t cross = remote_client_hits - rack_local_peer_hits;
  const double total_us =
      sim::to_us(c.local_hit) * static_cast<double>(local_hits) +
      sim::to_us(c.remote_client) *
          static_cast<double>(rack_local_peer_hits) +
      sim::to_us(c.remote_client_cross_rack) * static_cast<double>(cross) +
      sim::to_us(c.server_mem) * static_cast<double>(server_mem_hits) +
      sim::to_us(c.server_disk) * static_cast<double>(disk_reads);
  return total_us / static_cast<double>(reads) / 1000.0;
}

namespace {
std::size_t local_capacity(const CoopCacheConfig& cfg) {
  if (cfg.policy == Policy::kCentrallyCoordinated) {
    return static_cast<std::size_t>(
        static_cast<double>(cfg.client_cache_blocks) *
        (1.0 - cfg.coordinated_fraction));
  }
  return cfg.client_cache_blocks;
}

std::size_t coordinated_capacity(const CoopCacheConfig& cfg) {
  if (cfg.policy != Policy::kCentrallyCoordinated) return 0;
  return static_cast<std::size_t>(
      static_cast<double>(cfg.client_cache_blocks) * cfg.clients *
      cfg.coordinated_fraction);
}
}  // namespace

CoopCacheSim::CoopCacheSim(CoopCacheConfig config)
    : config_(config), rng_(config.seed, /*stream=*/0x636f6f70),
      server_cache_(config.server_cache_blocks),
      coordinated_(coordinated_capacity(config)),
      obs_reads_(&obs::metrics().counter("coopcache.reads")),
      obs_local_hits_(&obs::metrics().counter("coopcache.local_hits")),
      obs_remote_hits_(&obs::metrics().counter("coopcache.remote_hits")),
      obs_server_hits_(&obs::metrics().counter("coopcache.server_mem_hits")),
      obs_disk_reads_(&obs::metrics().counter("coopcache.disk_reads")),
      obs_forwards_(&obs::metrics().counter("coopcache.singlet_forwards")) {
  assert(config_.clients > 0);
  client_caches_.reserve(config_.clients);
  for (std::uint32_t i = 0; i < config_.clients; ++i) {
    client_caches_.emplace_back(local_capacity(config_));
  }
}

bool CoopCacheSim::directory_consistent() const {
  // Every directory entry must be backed by the cache it names...
  for (const auto& [block, clients] : directory_) {
    if (clients.empty()) return false;  // empty sets should be erased
    for (const std::uint32_t c : clients) {
      if (!client_caches_[c].contains(block)) return false;
    }
  }
  // ...and every cached block must appear in the directory.
  std::size_t cached_total = 0;
  for (const auto& cache : client_caches_) cached_total += cache.size();
  std::size_t directory_total = 0;
  for (const auto& [block, clients] : directory_) {
    directory_total += clients.size();
  }
  return cached_total == directory_total;
}

std::size_t CoopCacheSim::holders(std::uint64_t block) const {
  const auto it = directory_.find(block);
  return it == directory_.end() ? 0 : it->second.size();
}

void CoopCacheSim::directory_add(std::uint64_t block, std::uint32_t client) {
  directory_[block].insert(client);
}

void CoopCacheSim::directory_remove(std::uint64_t block,
                                    std::uint32_t client) {
  const auto it = directory_.find(block);
  if (it == directory_.end()) return;
  it->second.erase(client);
  if (it->second.empty()) directory_.erase(it);
}

std::int64_t CoopCacheSim::find_holder(std::uint64_t block,
                                       std::uint32_t except) const {
  const auto it = directory_.find(block);
  if (it == directory_.end()) return -1;
  // Deterministic choice: the smallest id other than the requester — but
  // with rack awareness a same-rack holder always beats a cross-rack one
  // (the manager knows the topology; forwarding from the next rack over
  // costs two extra switch crossings).
  const std::uint32_t rs = config_.rack_size;
  std::int64_t best = -1;
  bool best_local = false;
  for (const std::uint32_t c : it->second) {
    if (c == except) continue;
    const bool local = rs > 0 && c / rs == except / rs;
    if (best < 0 || (local && !best_local) ||
        (local == best_local && static_cast<std::int64_t>(c) < best)) {
      best = c;
      best_local = local;
    }
  }
  return best;
}

void CoopCacheSim::access(std::uint32_t client, std::uint64_t block,
                          bool is_write) {
  assert(client < config_.clients);
  if (is_write) {
    write(client, block);
  } else {
    read(client, block);
  }
}

void CoopCacheSim::insert_local(std::uint32_t client, std::uint64_t block) {
  std::uint64_t victim = 0;
  if (client_caches_[client].contains(block)) {
    client_caches_[client].touch(block);
    return;
  }
  const bool evicted = client_caches_[client].insert(block, &victim);
  directory_add(block, client);
  if (evicted) handle_eviction(client, victim);
}

void CoopCacheSim::handle_eviction(std::uint32_t client,
                                   std::uint64_t victim) {
  directory_remove(victim, client);
  switch (config_.policy) {
    case Policy::kClientServer:
    case Policy::kGreedyForwarding:
      break;  // dropped
    case Policy::kCentrallyCoordinated: {
      // Demote into the coordinated global cache.
      std::uint64_t global_victim = 0;
      coordinated_.insert(victim, &global_victim);
      break;
    }
    case Policy::kNChance: {
      if (holders(victim) > 0) break;  // duplicate: drop quietly
      std::uint32_t& count = recirculations_[victim];
      if (count >= config_.nchance_limit) {
        recirculations_.erase(victim);
        break;  // circled enough; let it die
      }
      ++count;
      obs_forwards_->inc();
      // Forward the singlet to a random other client.
      if (config_.clients < 2) break;
      std::uint32_t peer = rng_.next_below(config_.clients);
      if (peer == client) peer = (peer + 1) % config_.clients;
      std::uint64_t peer_victim = 0;
      const bool evicted =
          client_caches_[peer].insert(victim, &peer_victim);
      directory_add(victim, peer);
      if (evicted) handle_eviction(peer, peer_victim);
      break;
    }
  }
}

void CoopCacheSim::read(std::uint32_t client, std::uint64_t block) {
  ++results_.reads;
  obs_reads_->inc();

  if (client_caches_[client].touch(block)) {
    ++results_.local_hits;
    obs_local_hits_->inc();
    recirculations_.erase(block);
    return;
  }

  const bool cooperative = config_.policy == Policy::kGreedyForwarding ||
                           config_.policy == Policy::kNChance;
  if (cooperative) {
    const std::int64_t holder = find_holder(block, client);
    if (holder >= 0) {
      ++results_.remote_client_hits;
      if (config_.rack_size > 0 &&
          static_cast<std::uint32_t>(holder) / config_.rack_size ==
              client / config_.rack_size) {
        ++results_.rack_local_peer_hits;
      }
      obs_remote_hits_->inc();
      client_caches_[static_cast<std::uint32_t>(holder)].touch(block);
      recirculations_.erase(block);
      insert_local(client, block);
      return;
    }
  }
  if (config_.policy == Policy::kCentrallyCoordinated &&
      coordinated_.contains(block)) {
    ++results_.remote_client_hits;  // served from coordinated client DRAM
    obs_remote_hits_->inc();
    coordinated_.erase(block);      // promoted into the reader's local cache
    insert_local(client, block);
    return;
  }

  if (server_cache_.touch(block)) {
    ++results_.server_mem_hits;
    obs_server_hits_->inc();
    insert_local(client, block);
    return;
  }

  ++results_.disk_reads;
  obs_disk_reads_->inc();
  server_cache_.insert(block);
  insert_local(client, block);
}

void CoopCacheSim::write(std::uint32_t client, std::uint64_t block) {
  ++results_.writes;
  // Write-through: the block lands in the local cache and the server cache
  // (timing of writes is not part of Table 3's read-response metric).
  insert_local(client, block);
  server_cache_.insert(block);
}

}  // namespace now::coopcache
