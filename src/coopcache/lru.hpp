// A small intrusive-free LRU cache keyed by 64-bit block ids.
//
// Used by the cooperative-caching simulator for client and server caches
// and reused by xFS's client block cache.
#pragma once

#include <cassert>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace now::coopcache {

class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return map_.size(); }
  bool full() const { return map_.size() >= capacity_; }

  bool contains(std::uint64_t key) const { return map_.contains(key); }

  /// Marks `key` most-recently-used.  Returns false if absent.
  bool touch(std::uint64_t key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  /// Inserts `key` as MRU.  If the cache is full, evicts the LRU entry and
  /// returns it via `evicted` (returns true when an eviction happened).
  /// Inserting a present key just touches it.
  bool insert(std::uint64_t key, std::uint64_t* evicted = nullptr) {
    if (touch(key)) return false;
    bool evd = false;
    if (capacity_ == 0) return false;  // degenerate: cache disabled
    if (map_.size() >= capacity_) {
      const std::uint64_t victim = order_.back();
      order_.pop_back();
      map_.erase(victim);
      if (evicted != nullptr) *evicted = victim;
      evd = true;
    }
    order_.push_front(key);
    map_[key] = order_.begin();
    return evd;
  }

  /// Removes `key` if present; returns whether it was there.
  bool erase(std::uint64_t key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    order_.erase(it->second);
    map_.erase(it);
    return true;
  }

  /// The least-recently-used key.  Cache must be non-empty.
  std::uint64_t lru() const {
    assert(!order_.empty());
    return order_.back();
  }

  void clear() {
    order_.clear();
    map_.clear();
  }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;  // front = MRU
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
};

}  // namespace now::coopcache
