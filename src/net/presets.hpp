// Fabric parameter presets for the networks the paper measures or cites.
//
// Latency numbers follow the text: ATM switch latency 10-100 us depending on
// configuration plus up to 100 us of adapter latency; Medusa FDDI adds 8 us
// of network+adapter latency; the CM-5 data network crosses 1,024 nodes in
// under 4 us.
#pragma once

#include <cstdint>

#include "net/topology.hpp"
#include "net/types.hpp"

namespace now::net {

/// 10 Mb/s shared Ethernet, the departmental LAN of 1994.
FabricParams ethernet_10mbps();

/// 155 Mb/s switched ATM (OC-3) with 53-byte cells, mid-range switch.
FabricParams atm_155mbps();

/// Medusa FDDI: 100 Mb/s, network + adapter latency ~8 us (Martin, HPAM).
FabricParams fddi_medusa();

/// Myrinet-class retargeted MPP network: 640 Mb/s links, ~1 us fabric.
FabricParams myrinet();

/// CM-5 data network: 4 us across the machine, ~20 MB/s per link.
FabricParams cm5_fabric();

/// The building-wide NOW: `racks` racks of `nodes_per_rack` workstations
/// under edge switches, Myrinet-class 640 Mb/s cut-through links with 1 us
/// per switch crossing, and enough spine uplinks per rack for an
/// `oversubscription`:1 ratio (1.0 = non-blocking fat tree; commodity
/// buildings run 4:1 to 8:1).  Feed it to HierarchicalNetwork or
/// ClusterConfig{fabric = Fabric::kBuildingNow}.
HierarchicalParams building_now(std::uint32_t racks,
                                std::uint32_t nodes_per_rack,
                                double oversubscription);

}  // namespace now::net
