// Shared-medium LAN: 10 Mb/s Ethernet as the paper's baseline network.
//
// All nodes contend for one medium.  Bandwidth does NOT scale with the
// number of nodes — the property that makes the RS-6000+Ethernet row of
// Table 4 three orders of magnitude slower than the MPPs, and that made
// network RAM impractical before switched LANs (Table 2 discussion).
//
// Arbitration is FIFO over the single medium with a small randomized access
// delay standing in for CSMA/CD backoff under load.
#pragma once

#include "net/network.hpp"
#include "sim/random.hpp"

namespace now::net {

class SharedBusNetwork final : public Network {
 public:
  SharedBusNetwork(sim::Engine& engine, FabricParams params,
                   std::uint64_t seed = 1)
      : Network(engine), params_(params), rng_(seed, /*stream=*/0x6e657462) {}

  void send(Packet pkt) override;

  const FabricParams& params() const { return params_; }

  /// Unloaded wire-to-wire time: one serialization plus propagation.
  sim::Duration unloaded_transit(std::uint32_t bytes) const {
    return params_.serialization(bytes) + params_.latency;
  }

  /// Fraction of elapsed time the medium has been busy so far.
  double utilization() const;

 private:
  FabricParams params_;
  sim::Pcg32 rng_;
  sim::SimTime medium_busy_until_ = 0;
  sim::Duration medium_busy_total_ = 0;
};

}  // namespace now::net
