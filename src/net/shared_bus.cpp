#include "net/shared_bus.hpp"

#include <algorithm>
#include <cassert>

namespace now::net {

void SharedBusNetwork::send(Packet pkt) {
  assert(attached(pkt.src) && attached(pkt.dst));
  ++stats_.packets_sent;
  obs_sent_->inc();
  stats_.bytes_sent += pkt.size_bytes;
  pkt.sent_at = engine_.now();

  const sim::Duration ser = params_.serialization(pkt.size_bytes);

  // Wait for the medium, plus a small random backoff if it was busy
  // (a stand-in for CSMA/CD collision resolution under contention).
  sim::SimTime start = engine_.now();
  if (medium_busy_until_ > start) {
    start = medium_busy_until_ +
            static_cast<sim::Duration>(rng_.uniform(0.0, 51.2)) *
                sim::kMicrosecond / 10;  // up to ~5 slot times
  }
  const sim::SimTime done = start + ser;
  medium_busy_total_ += ser;
  medium_busy_until_ = done;

  engine_.schedule_at(done + params_.latency,
                      [this, p = std::move(pkt)]() mutable {
                        deliver_now(std::move(p));
                      });
}

double SharedBusNetwork::utilization() const {
  if (engine_.now() == 0) return 0.0;
  return static_cast<double>(medium_busy_total_) /
         static_cast<double>(engine_.now());
}

}  // namespace now::net
