// Common network-layer types.
#pragma once

#include <any>
#include <cstdint>

#include "sim/time.hpp"

namespace now::net {

/// Identifies a workstation (or MPP node) attached to the network.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// One message travelling through the network.  The payload is opaque to the
/// wire: the simulator carries metadata, not real bytes, and upper layers
/// (Active Messages, the TCP model, xFS RPCs) define its meaning.
struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t size_bytes = 0;
  /// Protocol-level multiplexing tag (e.g. AM endpoint, TCP port).
  std::uint32_t tag = 0;
  /// Time the sender handed the packet to the wire (set by the network).
  sim::SimTime sent_at = 0;
  std::any payload;
};

/// Physical parameters of one fabric, in the paper's own vocabulary:
/// wire/switch *latency* (time in the network, overlappable with compute)
/// and link *bandwidth* (serialization).  CPU *overhead* is charged by the
/// protocol layers, not here — keeping the paper's overhead-vs-latency
/// distinction explicit in the code structure.
struct FabricParams {
  /// Bits per second on each link (shared-medium fabrics: on the medium).
  double link_bandwidth_bps = 10e6;
  /// One-way latency through wire + switch fabric, excluding serialization.
  sim::Duration latency = 50 * sim::kMicrosecond;
  /// Fixed per-packet framing bytes added on the wire (headers, ATM cell
  /// padding is modelled separately by cell_bytes below).
  std::uint32_t header_bytes = 0;
  /// If nonzero, payloads are carried in fixed-size cells (ATM: 53-byte
  /// cells with a 48-byte payload) and serialization rounds up accordingly.
  std::uint32_t cell_bytes = 0;
  std::uint32_t cell_payload_bytes = 0;
  /// Cut-through / wormhole switching: a packet's head exits the switch
  /// while its tail is still entering, so an uncontended transfer pays one
  /// serialization, not two.  True for ATM (cell pipelining), Myrinet and
  /// MPP fabrics; false models store-and-forward.
  bool cut_through = false;

  /// Serialization time for `bytes` of payload on one link.
  sim::Duration serialization(std::uint32_t bytes) const;
};

}  // namespace now::net
