// Abstract network: attach a delivery handler per node, send packets.
//
// Implementations model *where time goes on the wire* (serialization,
// contention, switch latency) and where packets are dropped (receive-buffer
// overflow).  CPU costs live in now::proto.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/exec_domain.hpp"
#include "sim/spinlock.hpp"
#include "sim/stats.hpp"

namespace now::net {

/// Invoked at the simulated instant the last byte of a packet reaches the
/// destination NIC buffer.
using DeliveryHandler = std::function<void(Packet&&)>;

/// Aggregate wire statistics.
struct NetworkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  /// Packets lost because an endpoint's link was administratively down
  /// (fault injection); counted separately from buffer-overflow drops.
  std::uint64_t link_drops = 0;
  std::uint64_t bytes_sent = 0;
  /// Wire time (send call to delivery) in microseconds.
  sim::Summary wire_time_us;
};

/// Base class for all fabric models.
class Network {
 public:
  explicit Network(sim::Engine& engine)
      : engine_(engine),
        obs_sent_(&obs::metrics().counter("net.packets_sent")),
        obs_delivered_(&obs::metrics().counter("net.packets_delivered")),
        obs_dropped_(&obs::metrics().counter("net.packets_dropped")),
        obs_link_drops_(&obs::metrics().counter("net.link_drops")),
        obs_wire_us_(&obs::metrics().summary("net.wire_time_us")),
        obs_track_(obs::tracer().track("net")) {}
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers `node`'s NIC.  `rx_buffer_bytes` bounds how much undelivered
  /// data the NIC will hold; packets arriving into a full buffer are dropped
  /// (upper layers provide timeout/retry or credit flow control).
  /// 0 means unbounded.
  void attach(NodeId node, DeliveryHandler handler,
              std::uint32_t rx_buffer_bytes = 0);

  /// True if `node` has been attached.
  bool attached(NodeId node) const;

  /// Injects a packet.  The caller is responsible for having charged any
  /// sender CPU overhead first.  Delivery (or drop) happens asynchronously.
  virtual void send(Packet pkt) = 0;

  /// Upper layers call this when they have consumed a delivered packet's
  /// buffer space (AM handlers free it immediately; the TCP model frees it
  /// when the application reads).
  void release_rx(NodeId node, std::uint32_t bytes);

  /// Administratively takes `node`'s link down (or back up) — the cable
  /// is pulled but the machine keeps running.  While down, packets whose
  /// source or destination is `node` are dropped at delivery time; upper
  /// layers see silence and recover through their own timeout/retry.
  void set_link_up(NodeId node, bool up);
  /// True unless the node's link has been taken down (unattached nodes
  /// report true: there is no cable to pull).
  bool link_up(NodeId node) const;

  const NetworkStats& stats() const { return stats_; }
  sim::Engine& engine() { return engine_; }

  /// Installs the execution domain for partitioned runs (nullptr = serial).
  /// Must be called after every node is attached and before the run starts;
  /// backends pre-size their per-node state here so no container grows once
  /// lanes are live.
  void set_domain(sim::ExecDomain* domain) {
    domain_ = domain;
    on_domain_set();
  }
  sim::ExecDomain* domain() { return domain_; }

  /// The engine that `node`'s events run on: its partition lane when a
  /// domain is installed, the cluster engine otherwise.  Every site that
  /// reads "now" or schedules work *at a node* goes through this.
  sim::Engine& engine_for(NodeId node) {
    return domain_ != nullptr ? domain_->engine_for(node) : engine_;
  }

  /// Minimum one-way latency between distinct nodes — the upper bound for a
  /// conservative lookahead window.  0 means "no safe lookahead" (shared
  /// media where one node's send instantly contends with every other's);
  /// such fabrics cannot be partitioned.
  virtual sim::Duration min_latency() const { return 0; }

 protected:
  struct Port {
    DeliveryHandler handler;
    std::uint32_t rx_capacity = 0;  // 0 = unbounded
    std::uint32_t rx_used = 0;
    bool in_use = false;
    bool link_up = true;
  };

  /// Delivers (or drops, if the RX buffer is full) at the current simulated
  /// time.  Subclasses call this from their scheduled completion events; in
  /// a partitioned run those events execute on the destination's lane, so
  /// Port state stays lane-confined.
  void deliver_now(Packet&& pkt);

  /// Hook for backends to react to set_domain (pre-sizing per-node state).
  virtual void on_domain_set() {}

  /// Called at the end of attach(): backends size per-node link state and
  /// register per-port instruments *here*, once, so the packet path does
  /// pure indexed loads — no registry lookups, no grow-on-demand branches.
  /// Runs on the construction thread, before any traffic.
  virtual void on_attach(NodeId node) { (void)node; }

  Port* port(NodeId node);
  const Port* port(NodeId node) const;
  /// One past the highest attached node id (backends pre-size per-node
  /// state to this at set_domain time).
  std::size_t port_count() const { return ports_.size(); }

  sim::Engine& engine_;
  sim::ExecDomain* domain_ = nullptr;
  NetworkStats stats_;
  // Guards stats_: sends mutate it from source lanes, deliveries from
  // destination lanes.  Uncontended in serial runs.
  sim::SpinLock stats_lock_;
  // Cached obs handles (resolved once here; hot-path updates are one
  // dereference plus the global enable branch).
  obs::Counter* obs_sent_;
  obs::Counter* obs_delivered_;
  obs::Counter* obs_dropped_;
  obs::Counter* obs_link_drops_;
  obs::Summary* obs_wire_us_;
  obs::TrackId obs_track_;

 private:
  std::vector<Port> ports_;
};

}  // namespace now::net
