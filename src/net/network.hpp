// Abstract network: attach a delivery handler per node, send packets.
//
// Implementations model *where time goes on the wire* (serialization,
// contention, switch latency) and where packets are dropped (receive-buffer
// overflow).  CPU costs live in now::proto.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"

namespace now::net {

/// Invoked at the simulated instant the last byte of a packet reaches the
/// destination NIC buffer.
using DeliveryHandler = std::function<void(Packet&&)>;

/// Aggregate wire statistics.
struct NetworkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  /// Packets lost because an endpoint's link was administratively down
  /// (fault injection); counted separately from buffer-overflow drops.
  std::uint64_t link_drops = 0;
  std::uint64_t bytes_sent = 0;
  /// Wire time (send call to delivery) in microseconds.
  sim::Summary wire_time_us;
};

/// Base class for all fabric models.
class Network {
 public:
  explicit Network(sim::Engine& engine)
      : engine_(engine),
        obs_sent_(&obs::metrics().counter("net.packets_sent")),
        obs_delivered_(&obs::metrics().counter("net.packets_delivered")),
        obs_dropped_(&obs::metrics().counter("net.packets_dropped")),
        obs_link_drops_(&obs::metrics().counter("net.link_drops")),
        obs_wire_us_(&obs::metrics().summary("net.wire_time_us")),
        obs_track_(obs::tracer().track("net")) {}
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers `node`'s NIC.  `rx_buffer_bytes` bounds how much undelivered
  /// data the NIC will hold; packets arriving into a full buffer are dropped
  /// (upper layers provide timeout/retry or credit flow control).
  /// 0 means unbounded.
  void attach(NodeId node, DeliveryHandler handler,
              std::uint32_t rx_buffer_bytes = 0);

  /// True if `node` has been attached.
  bool attached(NodeId node) const;

  /// Injects a packet.  The caller is responsible for having charged any
  /// sender CPU overhead first.  Delivery (or drop) happens asynchronously.
  virtual void send(Packet pkt) = 0;

  /// Upper layers call this when they have consumed a delivered packet's
  /// buffer space (AM handlers free it immediately; the TCP model frees it
  /// when the application reads).
  void release_rx(NodeId node, std::uint32_t bytes);

  /// Administratively takes `node`'s link down (or back up) — the cable
  /// is pulled but the machine keeps running.  While down, packets whose
  /// source or destination is `node` are dropped at delivery time; upper
  /// layers see silence and recover through their own timeout/retry.
  void set_link_up(NodeId node, bool up);
  /// True unless the node's link has been taken down (unattached nodes
  /// report true: there is no cable to pull).
  bool link_up(NodeId node) const;

  const NetworkStats& stats() const { return stats_; }
  sim::Engine& engine() { return engine_; }

 protected:
  struct Port {
    DeliveryHandler handler;
    std::uint32_t rx_capacity = 0;  // 0 = unbounded
    std::uint32_t rx_used = 0;
    bool in_use = false;
    bool link_up = true;
  };

  /// Delivers (or drops, if the RX buffer is full) at the current simulated
  /// time.  Subclasses call this from their scheduled completion events.
  void deliver_now(Packet&& pkt);

  Port* port(NodeId node);
  const Port* port(NodeId node) const;

  sim::Engine& engine_;
  NetworkStats stats_;
  // Cached obs handles (resolved once here; hot-path updates are one
  // dereference plus the global enable branch).
  obs::Counter* obs_sent_;
  obs::Counter* obs_delivered_;
  obs::Counter* obs_dropped_;
  obs::Counter* obs_link_drops_;
  obs::Summary* obs_wire_us_;
  obs::TrackId obs_track_;

 private:
  std::vector<Port> ports_;
};

}  // namespace now::net
