#include "net/placement.hpp"

#include <cassert>

namespace now::net {

std::vector<NodeId> rack_local_clients(const TopologyParams& topo,
                                       NodeId server, std::uint32_t count) {
  assert(topo.nodes_per_rack >= 2 && "need room for clients beside the server");
  const std::uint32_t npr = topo.nodes_per_rack;
  const NodeId base = (server / npr) * npr;
  // The rack's nodes minus the server, in increasing id order.
  std::vector<NodeId> slots;
  slots.reserve(npr - 1);
  for (std::uint32_t i = 0; i < npr; ++i) {
    const NodeId n = base + i;
    if (n != server) slots.push_back(n);
  }
  std::vector<NodeId> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.push_back(slots[i % slots.size()]);
  }
  return out;
}

std::vector<NodeId> spread_clients(const TopologyParams& topo,
                                   NodeId server, std::uint32_t count) {
  const std::uint32_t npr = topo.nodes_per_rack;
  const std::uint32_t racks = topo.racks;
  assert(racks >= 2 && "spread placement needs a rack besides the server's");
  const std::uint32_t server_rack = server / npr;
  // Every rack except the server's, in increasing order.
  std::vector<std::uint32_t> other;
  other.reserve(racks - 1);
  for (std::uint32_t r = 0; r < racks; ++r) {
    if (r != server_rack) other.push_back(r);
  }
  std::vector<NodeId> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t rack = other[i % other.size()];
    const std::uint32_t slot =
        (i / static_cast<std::uint32_t>(other.size())) % npr;
    out.push_back(rack * npr + slot);
  }
  return out;
}

}  // namespace now::net
