#include "net/switched.hpp"

#include <algorithm>
#include <cassert>

namespace now::net {

SwitchedNetwork::LinkState& SwitchedNetwork::uplink(NodeId n) {
  if (n >= uplinks_.size()) uplinks_.resize(n + 1);
  return uplinks_[n];
}

SwitchedNetwork::LinkState& SwitchedNetwork::downlink(NodeId n) {
  if (n >= downlinks_.size()) downlinks_.resize(n + 1);
  return downlinks_[n];
}

obs::Gauge& SwitchedNetwork::downlink_queue_gauge(NodeId n) {
  if (n >= obs_downlink_q_.size()) obs_downlink_q_.resize(n + 1, nullptr);
  if (obs_downlink_q_[n] == nullptr) {
    obs_downlink_q_[n] = &obs::metrics().gauge(
        "net.link" + std::to_string(n) + ".queue_us");
  }
  return *obs_downlink_q_[n];
}

sim::Duration SwitchedNetwork::unloaded_transit(std::uint32_t bytes) const {
  const sim::Duration ser = params_.serialization(bytes);
  return (params_.cut_through ? ser : 2 * ser) + params_.latency;
}

// Partitioned runs must not grow per-node vectors (or register gauges) from
// concurrent lanes, so everything lazy is materialized up front.  Serial
// runs keep the lazy behavior: their metric dumps list only the links that
// actually carried traffic, exactly as before.
void SwitchedNetwork::on_domain_set() {
  if (domain() == nullptr) return;
  const NodeId n = static_cast<NodeId>(port_count());
  if (n == 0) return;
  uplink(n - 1);
  downlink(n - 1);
  for (NodeId i = 0; i < n; ++i) downlink_queue_gauge(i);
}

void SwitchedNetwork::send(Packet pkt) {
  assert(attached(pkt.src) && attached(pkt.dst));
  sim::Engine& src_engine = engine_for(pkt.src);
  pkt.sent_at = src_engine.now();
  {
    sim::SpinGuard g(stats_lock_);
    ++stats_.packets_sent;
    stats_.bytes_sent += pkt.size_bytes;
  }
  obs_sent_->inc();

  const sim::Duration ser = params_.serialization(pkt.size_bytes);

  // Serialize onto the source uplink (FIFO behind earlier packets).  The
  // uplink belongs to the sender, so under partitioning this state is
  // confined to the source lane.
  LinkState& up = uplink(pkt.src);
  const sim::SimTime up_start = std::max(pkt.sent_at, up.busy_until);
  const sim::SimTime up_done = up_start + ser;
  up.busy_until = up_done;

  if (domain() != nullptr) {
    // Two-phase delivery: the downlink belongs to the receiver, and its
    // busy horizon orders *all* senders' packets, so the reservation is
    // posted as a cross-lane message and applied at the next barrier in
    // the deterministic merge order (sent_at, src_node, seq) — replaying
    // the serial send-order evolution of busy_until regardless of which
    // lane ran first.  Same-lane sends take this path too; bypassing the
    // mailbox would make contention order depend on the partition layout.
    domain()->post(
        pkt.src, pkt.dst, pkt.sent_at,
        [this, up_start, up_done, ser, p = std::move(pkt)]() mutable {
          finish_send(std::move(p), up_start, up_done, ser);
        });
    return;
  }
  finish_send(std::move(pkt), up_start, up_done, ser);
}

// Downlink contention + delivery scheduling.  Serial: called inline from
// send().  Partitioned: called at the epoch barrier; the delivery time is
// always >= sent_at + latency >= the epoch bound, so scheduling on the
// destination lane never lands in its past.
void SwitchedNetwork::finish_send(Packet pkt, sim::SimTime up_start,
                                  sim::SimTime up_done, sim::Duration ser) {
  LinkState& down = downlink(pkt.dst);
  sim::SimTime down_done;
  if (params_.cut_through) {
    // The head crosses the fabric while the tail is still serializing, so
    // an uncontended transfer finishes one serialization after it starts;
    // a busy downlink still queues the whole packet.
    const sim::SimTime head_at_dst = up_start + params_.latency;
    const sim::SimTime down_start = std::max(head_at_dst, down.busy_until);
    down_done = std::max(down_start + ser, up_done + params_.latency);
  } else {
    // Store-and-forward: the switch holds the packet until it is complete.
    const sim::SimTime at_switch = up_done + params_.latency;
    const sim::SimTime down_start = std::max(at_switch, down.busy_until);
    down_done = down_start + ser;
  }
  down.busy_until = down_done;
  if (obs::enabled()) {
    // Backlog on the destination link: how far its busy horizon extends
    // beyond the send instant (0 when uncontended).
    downlink_queue_gauge(pkt.dst).set(
        sim::to_us(down_done - pkt.sent_at - ser));
  }

  const NodeId dst = pkt.dst;
  engine_for(dst).schedule_at(down_done, [this, p = std::move(pkt)]() mutable {
    deliver_now(std::move(p));
  });
}

}  // namespace now::net
