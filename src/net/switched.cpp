#include "net/switched.hpp"

#include <algorithm>
#include <cassert>

namespace now::net {

SwitchedNetwork::LinkState& SwitchedNetwork::uplink(NodeId n) {
  if (n >= uplinks_.size()) uplinks_.resize(n + 1);
  return uplinks_[n];
}

SwitchedNetwork::LinkState& SwitchedNetwork::downlink(NodeId n) {
  if (n >= downlinks_.size()) downlinks_.resize(n + 1);
  return downlinks_[n];
}

obs::Gauge& SwitchedNetwork::downlink_queue_gauge(NodeId n) {
  if (n >= obs_downlink_q_.size()) obs_downlink_q_.resize(n + 1, nullptr);
  if (obs_downlink_q_[n] == nullptr) {
    obs_downlink_q_[n] = &obs::metrics().gauge(
        "net.link" + std::to_string(n) + ".queue_us");
  }
  return *obs_downlink_q_[n];
}

sim::Duration SwitchedNetwork::unloaded_transit(std::uint32_t bytes) const {
  const sim::Duration ser = params_.serialization(bytes);
  return (params_.cut_through ? ser : 2 * ser) + params_.latency;
}

void SwitchedNetwork::send(Packet pkt) {
  assert(attached(pkt.src) && attached(pkt.dst));
  ++stats_.packets_sent;
  stats_.bytes_sent += pkt.size_bytes;
  pkt.sent_at = engine_.now();

  const sim::Duration ser = params_.serialization(pkt.size_bytes);

  // Serialize onto the source uplink (FIFO behind earlier packets).
  LinkState& up = uplink(pkt.src);
  const sim::SimTime up_start = std::max(engine_.now(), up.busy_until);
  const sim::SimTime up_done = up_start + ser;
  up.busy_until = up_done;

  LinkState& down = downlink(pkt.dst);
  sim::SimTime down_done;
  if (params_.cut_through) {
    // The head crosses the fabric while the tail is still serializing, so
    // an uncontended transfer finishes one serialization after it starts;
    // a busy downlink still queues the whole packet.
    const sim::SimTime head_at_dst = up_start + params_.latency;
    const sim::SimTime down_start = std::max(head_at_dst, down.busy_until);
    down_done = std::max(down_start + ser, up_done + params_.latency);
  } else {
    // Store-and-forward: the switch holds the packet until it is complete.
    const sim::SimTime at_switch = up_done + params_.latency;
    const sim::SimTime down_start = std::max(at_switch, down.busy_until);
    down_done = down_start + ser;
  }
  down.busy_until = down_done;
  obs_sent_->inc();
  if (obs::enabled()) {
    // Backlog on the destination link: how far its busy horizon extends
    // beyond now (0 when uncontended).
    downlink_queue_gauge(pkt.dst).set(
        sim::to_us(down_done - engine_.now() - ser));
  }

  engine_.schedule_at(down_done,
                      [this, p = std::move(pkt)]() mutable {
                        deliver_now(std::move(p));
                      });
}

}  // namespace now::net
