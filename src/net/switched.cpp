#include "net/switched.hpp"

#include <algorithm>
#include <cassert>

namespace now::net {

sim::Duration SwitchedNetwork::unloaded_transit(std::uint32_t bytes) const {
  const sim::Duration ser = params_.serialization(bytes);
  return (params_.cut_through ? ser : 2 * ser) + params_.latency;
}

// Link state and the per-downlink gauge are sized/registered here, once per
// node on the construction thread — nothing on the packet path grows a
// vector or resolves a dotted path, and partitioned lanes never mutate
// shared containers.
void SwitchedNetwork::on_attach(NodeId node) {
  if (node >= uplink_busy_.size()) {
    uplink_busy_.resize(node + 1, 0);
    downlink_busy_.resize(node + 1, 0);
    obs_downlink_q_.resize(node + 1, nullptr);
  }
  obs_downlink_q_[node] = &obs::metrics().gauge(
      "net.link" + std::to_string(node) + ".queue_us");
}

void SwitchedNetwork::send(Packet pkt) {
  assert(attached(pkt.src) && attached(pkt.dst));
  sim::Engine& src_engine = engine_for(pkt.src);
  pkt.sent_at = src_engine.now();
  {
    sim::SpinGuard g(stats_lock_);
    ++stats_.packets_sent;
    stats_.bytes_sent += pkt.size_bytes;
  }
  obs_sent_->inc();

  const sim::Duration ser = params_.serialization(pkt.size_bytes);

  // Serialize onto the source uplink (FIFO behind earlier packets).  The
  // uplink belongs to the sender, so under partitioning this state is
  // confined to the source lane.
  sim::SimTime& up = uplink_busy_[pkt.src];
  const sim::SimTime up_start = std::max(pkt.sent_at, up);
  const sim::SimTime up_done = up_start + ser;
  up = up_done;

  if (domain() != nullptr) {
    // Two-phase delivery: the downlink belongs to the receiver, and its
    // busy horizon orders *all* senders' packets, so the reservation is
    // posted as a cross-lane message and applied at the next barrier in
    // the deterministic merge order (sent_at, src_node, seq) — replaying
    // the serial send-order evolution of busy_until regardless of which
    // lane ran first.  Same-lane sends take this path too; bypassing the
    // mailbox would make contention order depend on the partition layout.
    domain()->post(
        pkt.src, pkt.dst, pkt.sent_at,
        [this, up_start, up_done, ser, p = std::move(pkt)]() mutable {
          finish_send(std::move(p), up_start, up_done, ser);
        });
    return;
  }
  finish_send(std::move(pkt), up_start, up_done, ser);
}

// Downlink contention + delivery scheduling.  Serial: called inline from
// send().  Partitioned: called at the epoch barrier; the delivery time is
// always >= sent_at + latency >= the epoch bound, so scheduling on the
// destination lane never lands in its past.
void SwitchedNetwork::finish_send(Packet pkt, sim::SimTime up_start,
                                  sim::SimTime up_done, sim::Duration ser) {
  sim::SimTime& down = downlink_busy_[pkt.dst];
  sim::SimTime down_done;
  if (params_.cut_through) {
    // The head crosses the fabric while the tail is still serializing, so
    // an uncontended transfer finishes one serialization after it starts;
    // a busy downlink still queues the whole packet.
    const sim::SimTime head_at_dst = up_start + params_.latency;
    const sim::SimTime down_start = std::max(head_at_dst, down);
    down_done = std::max(down_start + ser, up_done + params_.latency);
  } else {
    // Store-and-forward: the switch holds the packet until it is complete.
    const sim::SimTime at_switch = up_done + params_.latency;
    const sim::SimTime down_start = std::max(at_switch, down);
    down_done = down_start + ser;
  }
  down = down_done;
  if (obs::enabled()) {
    // Backlog on the destination link: how far its busy horizon extends
    // beyond the send instant (0 when uncontended).
    obs_downlink_q_[pkt.dst]->set(
        sim::to_us(down_done - pkt.sent_at - ser));
  }

  const NodeId dst = pkt.dst;
  engine_for(dst).schedule_at(down_done, [this, p = std::move(pkt)]() mutable {
    deliver_now(std::move(p));
  });
}

}  // namespace now::net
