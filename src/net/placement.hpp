// Client-placement helpers for hierarchical (building-scale) fabrics.
//
// Every building bench asks the same two questions about where load
// comes from: what if the clients sit *next to* the service (inside the
// server's rack, all traffic one hop through the rack switch) and what
// if they are *everywhere* (dealt round-robin across every other rack,
// all traffic over the oversubscribed spine)?  Those two placements
// bracket reality — a real population is some mixture — so capacity
// planning reports both and reads the spread between them as the price
// of the spine (docs/capacity-planning.md).
//
// Both helpers are pure functions of the topology parameters, so the
// node lists — and everything downstream of them — are deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace now::net {

/// `count` client node ids inside `server`'s rack, skipping the server
/// itself, in increasing id order; cycles over the rack's other nodes
/// when `count` exceeds them (callers multiplex several clients onto one
/// workstation, as ServeConfig::client_nodes does).  The rack must hold
/// at least two nodes.
std::vector<NodeId> rack_local_clients(const TopologyParams& topo,
                                       NodeId server, std::uint32_t count);

/// `count` client node ids dealt round-robin across every rack EXCEPT
/// `server`'s — one per rack, then a second per rack, and so on, cycling
/// through each rack's slots when `count` exceeds the remaining capacity.
/// Requires at least two racks.
std::vector<NodeId> spread_clients(const TopologyParams& topo,
                                   NodeId server, std::uint32_t count);

}  // namespace now::net
