#include "net/presets.hpp"

namespace now::net {

FabricParams ethernet_10mbps() {
  FabricParams p;
  p.link_bandwidth_bps = 10e6;
  p.latency = 5 * sim::kMicrosecond;  // propagation + repeaters
  p.header_bytes = 18;                // Ethernet framing
  return p;
}

FabricParams atm_155mbps() {
  FabricParams p;
  p.link_bandwidth_bps = 155e6;
  // Switch latency 10-100 us depending on configuration, plus adapter
  // latency up to 100 us; we take a mid-range switch + adapter.
  p.latency = 50 * sim::kMicrosecond;
  p.cell_bytes = 53;
  p.cell_payload_bytes = 48;
  p.cut_through = true;  // cells pipeline through the switch
  return p;
}

FabricParams fddi_medusa() {
  FabricParams p;
  p.link_bandwidth_bps = 100e6;
  p.latency = 8 * sim::kMicrosecond;  // network + adapter (Martin, HPAM)
  p.header_bytes = 28;                // FDDI framing
  p.cut_through = true;
  return p;
}

FabricParams myrinet() {
  FabricParams p;
  p.link_bandwidth_bps = 640e6;
  p.latency = 1 * sim::kMicrosecond;  // short wires
  p.header_bytes = 8;
  p.cut_through = true;               // wormhole routing
  return p;
}

HierarchicalParams building_now(std::uint32_t racks,
                                std::uint32_t nodes_per_rack,
                                double oversubscription) {
  HierarchicalParams p;
  p.fabric = myrinet();  // the paper's killer network, per hop
  p.topo.racks = racks;
  p.topo.nodes_per_rack = nodes_per_rack;
  if (oversubscription < 1.0) oversubscription = 1.0;
  const double uplinks =
      static_cast<double>(nodes_per_rack) / oversubscription;
  p.topo.uplinks_per_rack =
      uplinks < 1.0 ? 1u : static_cast<std::uint32_t>(uplinks + 0.5);
  return p;
}

FabricParams cm5_fabric() {
  FabricParams p;
  p.link_bandwidth_bps = 160e6;       // ~20 MB/s per link
  p.latency = 4 * sim::kMicrosecond;  // across 1,024 processors
  p.header_bytes = 4;
  p.cut_through = true;
  return p;
}

}  // namespace now::net
