#include "net/hierarchical.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace now::net {

HierarchicalNetwork::HierarchicalNetwork(sim::Engine& engine,
                                         HierarchicalParams params)
    : Network(engine),
      params_(params),
      topo_(params.topo),
      obs_rack_local_(&obs::metrics().counter("net.hier.rack_local")),
      obs_cross_rack_(&obs::metrics().counter("net.hier.cross_rack")) {
  if (topo_.configured_racks() > 0) ensure_racks(topo_.configured_racks());
}

// All per-node and per-trunk state is sized (and its gauges registered)
// here, at attach time on the construction thread — the packet path below
// is pure indexed loads on flat arrays.
void HierarchicalNetwork::on_attach(NodeId node) {
  if (node >= host_up_busy_.size()) {
    host_up_busy_.resize(node + 1, 0);
    host_down_busy_.resize(node + 1, 0);
    host_down_q_.resize(node + 1, nullptr);
  }
  host_down_q_[node] = &obs::metrics().gauge(
      "net.link" + std::to_string(node) + ".queue_us");
  ensure_racks(topo_.racks_for(node));
}

void HierarchicalNetwork::ensure_racks(std::uint32_t racks) {
  const std::size_t trunks = topo_.trunk_index(racks, 0);
  if (trunks <= trunk_up_busy_.size()) return;
  const std::size_t first_new =
      trunk_up_busy_.size() / topo_.uplinks_per_rack();
  trunk_up_busy_.resize(trunks, 0);
  trunk_down_busy_.resize(trunks, 0);
  trunk_up_q_.resize(trunks, nullptr);
  for (std::uint32_t r = static_cast<std::uint32_t>(first_new); r < racks;
       ++r) {
    for (std::uint32_t s = 0; s < topo_.uplinks_per_rack(); ++s) {
      trunk_up_q_[topo_.trunk_index(r, s)] = &obs::metrics().gauge(
          "net.rack" + std::to_string(r) + ".spine" + std::to_string(s) +
          ".queue_us");
    }
  }
}

sim::Duration HierarchicalNetwork::unloaded_transit(
    NodeId src, NodeId dst, std::uint32_t bytes) const {
  const Route rt = topo_.route(src, dst);
  const sim::Duration ser = params_.fabric.serialization(bytes);
  const sim::Duration lat = rt.switch_hops * params_.fabric.latency;
  // Cut-through pipelines the serializations of consecutive links; store-
  // and-forward pays one full serialization per link occupied.
  return (params_.fabric.cut_through ? ser : rt.links * ser) + lat;
}

void HierarchicalNetwork::send(Packet pkt) {
  assert(attached(pkt.src) && attached(pkt.dst));
  sim::Engine& src_engine = engine_for(pkt.src);
  pkt.sent_at = src_engine.now();
  const bool local = topo_.rack_local(pkt.src, pkt.dst);
  {
    sim::SpinGuard g(stats_lock_);
    ++stats_.packets_sent;
    stats_.bytes_sent += pkt.size_bytes;
    if (local) {
      ++hstats_.rack_local_packets;
    } else {
      ++hstats_.cross_rack_packets;
    }
  }
  obs_sent_->inc();
  (local ? obs_rack_local_ : obs_cross_rack_)->inc();

  const sim::Duration ser = params_.fabric.serialization(pkt.size_bytes);

  // Hop 0, the source host uplink: owned by the sender, so under
  // partitioning this mutation is confined to the source lane.
  sim::SimTime& up = host_up_busy_[pkt.src];
  const sim::SimTime up_start = std::max(pkt.sent_at, up);
  const sim::SimTime up_done = up_start + ser;
  up = up_done;

  if (domain() != nullptr) {
    // Every hop past the source uplink touches state shared across
    // senders (trunks belong to racks, the downlink to the receiver), so
    // it is applied at the next barrier in the deterministic merge order —
    // exactly the SwitchedNetwork two-phase discipline, per hop.
    domain()->post(
        pkt.src, pkt.dst, pkt.sent_at,
        [this, up_start, up_done, ser, p = std::move(pkt)]() mutable {
          finish_send(std::move(p), up_start, up_done, ser);
        });
    return;
  }
  finish_send(std::move(pkt), up_start, up_done, ser);
}

// Walks the remaining hops — [trunk up, trunk down,] host downlink — each
// with its own busy horizon.  Serial: inline from send().  Partitioned: at
// the epoch barrier; the delivery lands at least one hop latency after
// sent_at, so scheduling on the destination lane never rewinds its clock.
void HierarchicalNetwork::finish_send(Packet pkt, sim::SimTime up_start,
                                      sim::SimTime up_done,
                                      sim::Duration ser) {
  const sim::Duration lat = params_.fabric.latency;
  const bool ct = params_.fabric.cut_through;
  sim::SimTime prev_start = up_start;
  sim::SimTime prev_done = up_done;
  sim::Duration trunk_wait = 0;  // ticks queued on the trunk uplink (obs)
  const auto hop = [&](sim::SimTime& busy) {
    // Cut-through: the head leaves the previous link one switch latency
    // after it *started* there; store-and-forward: after it *finished*.
    const sim::SimTime head = (ct ? prev_start : prev_done) + lat;
    const sim::SimTime start = std::max(head, busy);
    const sim::SimTime done =
        ct ? std::max(start + ser, prev_done + lat) : start + ser;
    busy = done;
    prev_start = start;
    prev_done = done;
    return start - head;  // time spent queued behind earlier packets
  };

  const Route rt = topo_.route(pkt.src, pkt.dst);
  if (!rt.rack_local) {
    trunk_wait =
        hop(trunk_up_busy_[topo_.trunk_index(rt.src_rack, rt.spine)]);
    hop(trunk_down_busy_[topo_.trunk_index(rt.dst_rack, rt.spine)]);
  }
  hop(host_down_busy_[pkt.dst]);

  if (obs::enabled()) {
    if (!rt.rack_local) {
      trunk_up_q_[topo_.trunk_index(rt.src_rack, rt.spine)]->set(
          sim::to_us(trunk_wait));
    }
    // Backlog on the destination host link: how far its busy horizon
    // extends beyond the send instant (0 when uncontended) — the same
    // receive-contention signal the flat fabric exposes.
    host_down_q_[pkt.dst]->set(sim::to_us(prev_done - pkt.sent_at - ser));
  }

  const NodeId dst = pkt.dst;
  engine_for(dst).schedule_at(prev_done,
                              [this, p = std::move(pkt)]() mutable {
                                deliver_now(std::move(p));
                              });
}

}  // namespace now::net
