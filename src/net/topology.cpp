#include "net/topology.hpp"

#include <cassert>
#include <cstdio>

namespace now::net {

FatTreeTopology::FatTreeTopology(TopologyParams p) : p_(p) {
  assert(p_.nodes_per_rack >= 1 && "a rack holds at least one node");
  if (p_.uplinks_per_rack == 0) p_.uplinks_per_rack = 1;
  // More trunks than hosts buys nothing: a host can only drive one link.
  if (p_.uplinks_per_rack > p_.nodes_per_rack) {
    p_.uplinks_per_rack = p_.nodes_per_rack;
  }
}

double FatTreeTopology::oversubscription() const {
  return static_cast<double>(p_.nodes_per_rack) /
         static_cast<double>(p_.uplinks_per_rack);
}

Route FatTreeTopology::route(NodeId src, NodeId dst) const {
  Route r;
  r.src_rack = rack_of(src);
  r.dst_rack = rack_of(dst);
  r.rack_local = r.src_rack == r.dst_rack;
  if (r.rack_local) {
    r.switch_hops = 1;
    r.links = 2;
  } else {
    r.spine = spine_of(dst);
    r.switch_hops = 3;
    r.links = 4;
  }
  return r;
}

std::string FatTreeTopology::describe() const {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "%u nodes/rack, %u spine uplinks/rack (%.2g:1 %s)",
                p_.nodes_per_rack, p_.uplinks_per_rack, oversubscription(),
                oversubscription() > 1.0 ? "oversubscribed" : "non-blocking");
  return buf;
}

}  // namespace now::net
