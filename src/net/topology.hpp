// Building-scale fabric topology: racks of workstations under edge
// switches, spine uplinks, and deterministic fat-tree-style routing.
//
// The paper's vision is a *building-wide* NOW — thousands of machines, not
// one lab.  A single crossbar does not wire a building; real installations
// are hierarchical: each rack's nodes hang off an edge switch, and edge
// switches reach each other through a spine layer whose aggregate trunk
// bandwidth is usually *less* than the sum of the host links below it (the
// oversubscription ratio, the defining knob of commodity cluster fabrics).
//
// This header is pure arithmetic — no time, no queues.  Given a node id it
// answers "which rack", "which spine trunk", and "how many switch
// crossings"; the HierarchicalNetwork turns those answers into per-hop
// serialization and contention.  Routing is deterministic D-mod-k (cf.
// SimGrid's FatTreeZone): the spine serving a packet is chosen by the
// *destination* id alone, so every packet for one node rides the same
// trunks, contention is reproducible, and no RNG touches the wire.
#pragma once

#include <cstdint>
#include <string>

#include "net/types.hpp"

namespace now::net {

/// Shape of the two-level fat tree.  Node ids map onto racks in blocks:
/// rack r owns nodes [r * nodes_per_rack, (r+1) * nodes_per_rack).
struct TopologyParams {
  /// Hosts under one edge switch.
  std::uint32_t nodes_per_rack = 32;
  /// Trunks from each edge switch up to the spine layer (= spines used).
  /// The oversubscription ratio is nodes_per_rack / uplinks_per_rack:
  /// 1 uplink per host is a non-blocking (1:1) tree, fewer is cheaper and
  /// slower under cross-rack load.
  std::uint32_t uplinks_per_rack = 8;
  /// Expected rack count, used only to pre-size trunk state up front
  /// (attach() grows it on demand either way).  0 = derive from traffic.
  std::uint32_t racks = 0;
};

/// One resolved path through the tree (tests assert against these).
struct Route {
  bool rack_local = false;
  std::uint32_t src_rack = 0;
  std::uint32_t dst_rack = 0;
  /// Spine index in [0, uplinks_per_rack); meaningful when !rack_local.
  std::uint32_t spine = 0;
  /// Switch crossings: 1 inside a rack (edge only), 3 across racks
  /// (edge -> spine -> edge).
  std::uint32_t switch_hops = 1;
  /// Links occupied end to end: 2 inside a rack (host up, host down),
  /// 4 across racks (host up, trunk up, trunk down, host down).
  std::uint32_t links = 2;
};

/// Everything a hierarchical fabric needs: the per-link physics (shared by
/// host links and spine trunks — commodity fabrics run the same wire both
/// places, which is exactly why oversubscription bites) plus the tree shape.
struct HierarchicalParams {
  FabricParams fabric;
  TopologyParams topo;
};

class FatTreeTopology {
 public:
  explicit FatTreeTopology(TopologyParams p);

  std::uint32_t nodes_per_rack() const { return p_.nodes_per_rack; }
  std::uint32_t uplinks_per_rack() const { return p_.uplinks_per_rack; }
  std::uint32_t configured_racks() const { return p_.racks; }
  /// nodes_per_rack / uplinks_per_rack — 1.0 is non-blocking.
  double oversubscription() const;

  std::uint32_t rack_of(NodeId n) const { return n / p_.nodes_per_rack; }
  bool rack_local(NodeId a, NodeId b) const {
    return rack_of(a) == rack_of(b);
  }
  /// D-mod-k spine selection: all traffic *to* one destination converges
  /// on one spine, so trunk contention mirrors downlink contention.
  std::uint32_t spine_of(NodeId dst) const {
    return dst % p_.uplinks_per_rack;
  }
  /// Flat index of rack `r`'s trunk to spine `s` in the SoA trunk arrays.
  std::size_t trunk_index(std::uint32_t rack, std::uint32_t spine) const {
    return static_cast<std::size_t>(rack) * p_.uplinks_per_rack + spine;
  }
  /// Racks needed to cover node ids [0, max_node].
  std::uint32_t racks_for(NodeId max_node) const {
    return rack_of(max_node) + 1;
  }

  Route route(NodeId src, NodeId dst) const;

  /// "32 racks x 32 nodes, 8 uplinks (4:1 oversubscribed)" — for bench
  /// headers and traces.
  std::string describe() const;

 private:
  TopologyParams p_;
};

}  // namespace now::net
