// Hierarchical (fat-tree) fabric: the building-scale NOW.
//
// Racks of workstations hang off edge switches; edge switches reach each
// other through spine trunks.  A rack-local packet behaves exactly like the
// flat SwitchedNetwork: serialize on the source host link, cross the edge
// switch, serialize on the destination host link.  A cross-rack packet
// additionally occupies a spine trunk up and a spine trunk down — four
// links, three switch crossings — and each hop has its own busy_until
// horizon, so contention queues *per hop*: many racks converging on one
// destination rack queue on its trunk downlink before they ever reach the
// host link, and an oversubscribed rack (fewer trunks than hosts) saturates
// its uplinks under cross-rack load while rack-local traffic sails.
//
// Hot-path layout (the 1024-4096-node design point): all link state lives
// in flat structure-of-arrays vectors indexed by node id / trunk index —
// no hash maps, no pointer-chasing, no growth once traffic flows — and
// every per-port observability gauge is a handle cached at attach() time,
// so a send touches the metrics registry zero times.
//
// Partitioned runs reuse the SwitchedNetwork discipline unchanged: send()
// mutates only the source host uplink (source-lane-confined), and every
// downstream hop is applied at the epoch barrier in the deterministic
// (sent_at, src, dst, seq) merge order.  min_latency() is the *edge-hop*
// bound: one switch crossing is the soonest a packet can touch any other
// node's state, so ParallelEngine lanes aligned to racks get the full
// rack-local event stream inside each epoch.
#pragma once

#include "net/network.hpp"
#include "net/topology.hpp"

namespace now::net {

/// Wire statistics split by locality — the sweep axis of the building NOW.
struct HierarchicalStats {
  std::uint64_t rack_local_packets = 0;
  std::uint64_t cross_rack_packets = 0;
};

class HierarchicalNetwork final : public Network {
 public:
  HierarchicalNetwork(sim::Engine& engine, HierarchicalParams params);

  void send(Packet pkt) override;

  const HierarchicalParams& params() const { return params_; }
  const FatTreeTopology& topology() const { return topo_; }
  const HierarchicalStats& hier_stats() const { return hstats_; }

  /// One edge-switch crossing: the soonest any send can take effect at
  /// another node, hence the conservative lookahead bound for partitioned
  /// runs (rack-aligned lanes included — rack-local delivery is the
  /// earliest cross-node interaction there is).
  sim::Duration min_latency() const override {
    return params_.fabric.latency;
  }

  /// Contention-free wire-to-wire time between two specific nodes: 2 or 4
  /// serializations (1 pipelined under cut-through) plus one hop latency
  /// per switch crossed.
  sim::Duration unloaded_transit(NodeId src, NodeId dst,
                                 std::uint32_t bytes) const;

 protected:
  void on_attach(NodeId node) override;

 private:
  void finish_send(Packet pkt, sim::SimTime up_start, sim::SimTime up_done,
                   sim::Duration ser);
  /// Grows the trunk SoA arrays (and their cached gauges) to cover `racks`.
  void ensure_racks(std::uint32_t racks);

  HierarchicalParams params_;
  FatTreeTopology topo_;
  HierarchicalStats hstats_;

  // --- SoA link state, all indexed, none hashed -------------------------
  // Host links, indexed by node id.
  std::vector<sim::SimTime> host_up_busy_;
  std::vector<sim::SimTime> host_down_busy_;
  // Spine trunks, indexed by topo_.trunk_index(rack, spine).
  std::vector<sim::SimTime> trunk_up_busy_;
  std::vector<sim::SimTime> trunk_down_busy_;

  // --- Cached observability handles (resolved at attach, never on the
  // --- packet path) -----------------------------------------------------
  // Per host downlink: "net.link<N>.queue_us" (same signal as the flat
  // fabric's Figure 4 receive-contention gauge).
  std::vector<obs::Gauge*> host_down_q_;
  // Per trunk pair: "net.rack<R>.spine<S>.queue_us" (uplink backlog — the
  // oversubscription signal).
  std::vector<obs::Gauge*> trunk_up_q_;
  obs::Counter* obs_rack_local_;
  obs::Counter* obs_cross_rack_;
};

}  // namespace now::net
