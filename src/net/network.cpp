#include "net/network.hpp"

#include <cassert>

namespace now::net {

sim::Duration FabricParams::serialization(std::uint32_t bytes) const {
  std::uint64_t wire_bytes = bytes + header_bytes;
  if (cell_bytes > 0 && cell_payload_bytes > 0) {
    const std::uint64_t cells =
        (bytes + cell_payload_bytes - 1) / cell_payload_bytes;
    wire_bytes = (cells == 0 ? 1 : cells) * cell_bytes;
  }
  const double seconds =
      static_cast<double>(wire_bytes) * 8.0 / link_bandwidth_bps;
  return sim::from_sec(seconds);
}

void Network::attach(NodeId node, DeliveryHandler handler,
                     std::uint32_t rx_buffer_bytes) {
  if (node >= ports_.size()) ports_.resize(node + 1);
  Port& p = ports_[node];
  assert(!p.in_use && "node attached twice");
  p.handler = std::move(handler);
  p.rx_capacity = rx_buffer_bytes;
  p.rx_used = 0;
  p.in_use = true;
  on_attach(node);
}

bool Network::attached(NodeId node) const {
  return node < ports_.size() && ports_[node].in_use;
}

Network::Port* Network::port(NodeId node) {
  if (node >= ports_.size() || !ports_[node].in_use) return nullptr;
  return &ports_[node];
}

const Network::Port* Network::port(NodeId node) const {
  if (node >= ports_.size() || !ports_[node].in_use) return nullptr;
  return &ports_[node];
}

void Network::set_link_up(NodeId node, bool up) {
  Port* p = port(node);
  assert(p != nullptr && "set_link_up on unattached node");
  p->link_up = up;
}

bool Network::link_up(NodeId node) const {
  const Port* p = port(node);
  return p == nullptr || p->link_up;
}

void Network::release_rx(NodeId node, std::uint32_t bytes) {
  Port* p = port(node);
  if (p == nullptr || p->rx_capacity == 0) return;
  assert(p->rx_used >= bytes);
  p->rx_used -= bytes;
}

void Network::deliver_now(Packet&& pkt) {
  Port* p = port(pkt.dst);
  assert(p != nullptr && "send to unattached node");
  // "Now" is the destination's clock: in partitioned runs this event
  // executes on the destination lane, whose engine carries the local time.
  const sim::SimTime at = engine_for(pkt.dst).now();
  if (!p->link_up || !link_up(pkt.src)) {
    // An endpoint's cable is pulled: the packet vanishes on the wire.
    {
      sim::SpinGuard g(stats_lock_);
      ++stats_.link_drops;
    }
    obs_link_drops_->inc();
    obs::tracer().instant_at(pkt.dst, obs_track_, "link_drop", at);
    return;
  }
  if (p->rx_capacity != 0 &&
      p->rx_used + pkt.size_bytes > p->rx_capacity) {
    {
      sim::SpinGuard g(stats_lock_);
      ++stats_.packets_dropped;
    }
    obs_dropped_->inc();
    obs::tracer().instant_at(pkt.dst, obs_track_, "rx_drop", at);
    return;
  }
  if (p->rx_capacity != 0) p->rx_used += pkt.size_bytes;
  {
    sim::SpinGuard g(stats_lock_);
    ++stats_.packets_delivered;
    stats_.wire_time_us.add(sim::to_us(at - pkt.sent_at));
  }
  obs_delivered_->inc();
  obs_wire_us_->observe(sim::to_us(at - pkt.sent_at));
  obs::tracer().complete(pkt.dst, obs_track_, "pkt", pkt.sent_at, at);
  p->handler(std::move(pkt));
}

}  // namespace now::net
