// Switched fabric: the "killer network" of the paper (ATM, Myrinet, FDDI
// with a switch, or an MPP interconnect).
//
// Each node has a dedicated full-duplex link to the switch, so aggregate
// bandwidth scales with the number of nodes.  A packet serializes once onto
// the source link, crosses the fabric after `latency`, then occupies the
// destination link for its serialization time (modelling receive-side
// contention: many senders targeting one node queue on its downlink — the
// mechanism behind the Column benchmark's trouble in Figure 4).
#pragma once

#include "net/network.hpp"

namespace now::net {

class SwitchedNetwork final : public Network {
 public:
  SwitchedNetwork(sim::Engine& engine, FabricParams params)
      : Network(engine), params_(params) {}

  void send(Packet pkt) override;

  const FabricParams& params() const { return params_; }

  /// The fabric crossing time: a packet handed to the wire at t cannot
  /// start occupying its destination link before t + latency, which makes
  /// `latency` the conservative lookahead bound for partitioned runs.
  sim::Duration min_latency() const override { return params_.latency; }

  /// Time a minimal `bytes`-byte packet takes wire-to-wire with no
  /// contention: serialization (twice: uplink + downlink) + fabric latency.
  sim::Duration unloaded_transit(std::uint32_t bytes) const;

 protected:
  void on_attach(NodeId node) override;

 private:
  void finish_send(Packet pkt, sim::SimTime up_start, sim::SimTime up_done,
                   sim::Duration ser);

  FabricParams params_;
  // Flat SoA link state indexed by node id, sized at attach() time: the
  // send path does two indexed loads, no growth checks.
  std::vector<sim::SimTime> uplink_busy_;
  std::vector<sim::SimTime> downlink_busy_;
  // Per-downlink queue-depth gauges ("net.link<N>.queue_us"), the Figure 4
  // receive-contention signal.  Registered once per node at attach() — the
  // packet path never touches the metrics registry (the dotted-path lookup
  // it replaces is measured in bench_micro_engine's BM_ObsGauge* pair).
  std::vector<obs::Gauge*> obs_downlink_q_;
};

}  // namespace now::net
