#include "os/vm.hpp"

#include <cassert>

namespace now::os {

AddressSpace::AddressSpace(sim::Engine& engine, std::uint32_t frames,
                           std::uint32_t page_bytes, Pager& pager)
    : engine_(engine), frames_(frames), page_bytes_(page_bytes),
      pager_(pager),
      obs_faults_(&obs::metrics().counter("os.vm.faults")),
      obs_evictions_(&obs::metrics().counter("os.vm.evictions")),
      obs_writebacks_(&obs::metrics().counter("os.vm.writebacks")),
      obs_track_(obs::tracer().track("os")) {
  assert(frames > 0 && page_bytes > 0);
}

bool AddressSpace::resident(std::uint64_t page) const {
  return table_.contains(page);
}

void AddressSpace::reference(std::uint64_t page, bool write) {
  ++stats_.references;
  auto it = table_.find(page);
  assert(it != table_.end() && "reference() on non-resident page");
  ++stats_.hits;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(page);
  it->second.lru_pos = lru_.begin();
  it->second.dirty = it->second.dirty || write;
}

void AddressSpace::access(std::uint64_t page, bool write,
                          std::function<void()> done) {
  if (resident(page)) {
    reference(page, write);
    done();
    return;
  }
  fault(page, write, std::move(done));
}

void AddressSpace::access_from_process(Cpu& cpu, ProcessId pid,
                                       std::uint64_t page, bool write,
                                       std::function<void()> then) {
  if (resident(page)) {
    reference(page, write);
    then();
    return;
  }
  // Faulting process sleeps until the pager delivers the page.  The fault
  // path always crosses at least one engine event, so the wake cannot beat
  // the block below.
  fault(page, write, [&cpu, pid] { cpu.wake(pid); });
  cpu.block(pid, std::move(then));
}

void AddressSpace::evict_one(std::function<void()> then) {
  assert(!lru_.empty());
  const std::uint64_t victim = lru_.back();
  lru_.pop_back();
  const auto it = table_.find(victim);
  assert(it != table_.end());
  const bool dirty = it->second.dirty;
  table_.erase(it);
  ++stats_.evictions;
  obs_evictions_->inc();
  if (dirty) {
    // Asynchronous writeback, as a real page daemon's write buffer would
    // do: the faulting process does not wait for the victim to land, but
    // the writeback still occupies the backing store (so a thrashing swap
    // disk serves the write before the next read — queueing is preserved).
    ++stats_.writebacks;
    obs_writebacks_->inc();
    pager_.page_out(victim, [] {});
  }
  then();
}

void AddressSpace::fault(std::uint64_t page, bool write,
                         std::function<void()> done) {
  ++stats_.references;
  assert(!resident(page));

  auto [it, fresh] = inflight_.try_emplace(page);
  it->second.push_back(std::move(done));
  if (!fresh) return;  // fetch already in progress; piggyback
  ++stats_.faults;
  obs_faults_->inc();
  if (obs::tracer().enabled()) {
    // Fault service span: fault instant to the page landing in memory.
    const sim::SimTime t0 = engine_.now();
    it->second.back() = [this, t0, cb = std::move(it->second.back())] {
      obs::tracer().complete(obs::kClusterNode, obs_track_, "page_fault", t0,
                             engine_.now());
      cb();
    };
  }

  auto fetch = [this, page, write] {
    pager_.page_in(page, [this, page, write] { finish_fetch(page, write); });
  };

  if (table_.size() + frames_reserved_ >= frames_) {
    ++frames_reserved_;
    evict_one([this, fetch = std::move(fetch)] {
      --frames_reserved_;
      // Reserve the freed frame for this fetch until it lands.
      ++frames_reserved_;
      fetch();
    });
  } else {
    ++frames_reserved_;
    fetch();
  }
}

void AddressSpace::finish_fetch(std::uint64_t page, bool write) {
  --frames_reserved_;
  lru_.push_front(page);
  table_.emplace(page, Entry{lru_.begin(), write});
  auto node = inflight_.extract(page);
  assert(!node.empty());
  for (auto& cb : node.mapped()) cb();
}

void AddressSpace::discard_all() {
  lru_.clear();
  table_.clear();
}

}  // namespace now::os
