#include "os/cpu.hpp"

#include <algorithm>
#include <cassert>

namespace now::os {

namespace {
const std::string kUnknownName = "?";
}

Cpu::Cpu(sim::Engine& engine, CpuParams params)
    : engine_(engine), params_(params),
      rng_(params.seed, /*stream=*/0x637075),
      obs_dispatches_(&obs::metrics().counter("os.cpu.dispatches")),
      obs_preempts_(&obs::metrics().counter("os.cpu.preemptions")),
      obs_runq_(&obs::metrics().summary("os.cpu.run_queue_len")) {
  assert(params_.quantum > 0 && params_.mflops > 0);
  assert(params_.quantum_jitter >= 0.0 && params_.quantum_jitter < 1.0);
}

sim::Duration Cpu::jittered_quantum() {
  if (params_.quantum_jitter == 0.0) return params_.quantum;
  const double f =
      1.0 + params_.quantum_jitter * (2.0 * rng_.next_double() - 1.0);
  return static_cast<sim::Duration>(static_cast<double>(params_.quantum) *
                                    f);
}

std::deque<ProcessId>& Cpu::queue_for(SchedClass s) {
  return s == SchedClass::kInteractive ? run_queue_inter_ : run_queue_batch_;
}

ProcessId Cpu::spawn(std::string name, SchedClass sched, Continuation entry) {
  const auto pid = static_cast<ProcessId>(table_.size());
  table_.push_back(Process{std::move(name), sched, PState::kReady,
                           /*suspended=*/false,
                           /*pending_work=*/0, std::move(entry)});
  enqueue(pid);
  // Defer the dispatch one event so the caller can finish recording the
  // returned pid before the entry continuation can possibly run.
  engine_.schedule_in(0, [this] { maybe_dispatch(); });
  return pid;
}

void Cpu::enqueue(ProcessId pid) {
  proc(pid).state = PState::kReady;
  queue_for(proc(pid).sched).push_back(pid);
}

std::size_t Cpu::runnable_count() const {
  return run_queue_batch_.size() + run_queue_inter_.size() +
         (current_ != kNoProcess ? 1 : 0);
}

bool Cpu::exists(ProcessId pid) const {
  return pid < table_.size() && table_[pid].state != PState::kDead;
}

bool Cpu::blocked(ProcessId pid) const {
  return pid < table_.size() && table_[pid].state == PState::kBlocked;
}

const std::string& Cpu::name(ProcessId pid) const {
  return pid < table_.size() ? table_[pid].name : kUnknownName;
}

double Cpu::utilization() const {
  const sim::SimTime t = engine_.now();
  if (t == 0) return 0.0;
  return static_cast<double>(busy_) / static_cast<double>(t);
}

ProcessId Cpu::pick_next() {
  if (!run_queue_inter_.empty()) {
    const ProcessId pid = run_queue_inter_.front();
    run_queue_inter_.pop_front();
    return pid;
  }
  if (!run_queue_batch_.empty()) {
    const ProcessId pid = run_queue_batch_.front();
    run_queue_batch_.pop_front();
    return pid;
  }
  return kNoProcess;
}

void Cpu::maybe_dispatch() {
  while (current_ == kNoProcess) {
    const ProcessId pid = pick_next();
    if (pid == kNoProcess) return;
    Process& p = proc(pid);
    if (p.state == PState::kDead || p.suspended) continue;  // stale entry
    assert(p.state == PState::kReady);
    current_ = pid;
    p.state = PState::kRunning;
    quantum_deadline_ = engine_.now() + jittered_quantum();
    obs_dispatches_->inc();
    if (obs::enabled()) {
      obs_runq_->observe(static_cast<double>(run_queue_batch_.size() +
                                             run_queue_inter_.size()));
    }
    for (const auto& obs : dispatch_observers_) obs(pid);
    if (current_ != pid) continue;  // an observer killed/blocked it
    if (p.pending_work == 0) {
      // Control transfer only: run the continuation now.  It will normally
      // request compute, block, or exit.
      run_continuation(pid);
    } else {
      start_slice();
    }
  }
}

void Cpu::run_continuation(ProcessId pid) {
  Process& p = proc(pid);
  assert(p.cont && "process resumed with no continuation");
  Continuation fn = std::move(p.cont);
  p.cont = nullptr;
  in_continuation_ = true;
  fn();
  in_continuation_ = false;

  if (current_ != pid) return;  // continuation exited/killed this process
  Process& q = proc(pid);
  switch (q.state) {
    case PState::kRunning:
      if (q.pending_work > 0) {
        start_slice();
      } else {
        // A continuation that neither computes, blocks, nor exits is done.
        current_ = kNoProcess;
        q.state = PState::kDead;
        q.cont = nullptr;
      }
      break;
    case PState::kBlocked:
    case PState::kReady:  // blocked and immediately re-woken inside cont
      current_ = kNoProcess;
      break;
    case PState::kDead:
      current_ = kNoProcess;
      break;
  }
}

void Cpu::start_slice() {
  Process& p = proc(current_);
  assert(p.pending_work > 0);
  const bool others =
      !run_queue_batch_.empty() || !run_queue_inter_.empty();
  sim::Duration target = p.pending_work;
  if (others) {
    const sim::Duration budget = quantum_deadline_ - engine_.now();
    if (budget <= 0) {
      // Quantum exhausted across continuation segments: yield.
      p.state = PState::kReady;
      queue_for(p.sched).push_back(current_);
      current_ = kNoProcess;
      maybe_dispatch();
      return;
    }
    target = std::min(target, budget);
  }
  slice_target_ = target;
  seg_start_ = engine_.now() + params_.context_switch;
  account_busy(params_.context_switch);
  slice_event_ = engine_.schedule_at(seg_start_ + target,
                                     [this] { on_slice_end(); });
}

void Cpu::on_slice_end() {
  slice_event_ = 0;
  assert(current_ != kNoProcess);
  Process& p = proc(current_);
  p.pending_work -= slice_target_;
  account_busy(slice_target_);
  assert(p.pending_work >= 0);
  if (p.pending_work == 0) {
    run_continuation(current_);
    if (current_ == kNoProcess) maybe_dispatch();
  } else {
    // Quantum expired with work left: round-robin to the tail.
    p.state = PState::kReady;
    queue_for(p.sched).push_back(current_);
    current_ = kNoProcess;
    maybe_dispatch();
  }
}

void Cpu::compute(ProcessId pid, sim::Duration work, Continuation then) {
  assert(in_continuation_ && pid == current_ &&
         "compute() must be called from the process's own continuation");
  Process& p = proc(pid);
  p.pending_work = std::max<sim::Duration>(work, 1);
  p.cont = std::move(then);
}

void Cpu::compute_flops(ProcessId pid, double flops, Continuation then) {
  const double seconds = flops / (params_.mflops * 1e6);
  compute(pid, sim::from_sec(seconds), std::move(then));
}

void Cpu::block(ProcessId pid, Continuation then) {
  assert(in_continuation_ && pid == current_ &&
         "block() must be called from the process's own continuation");
  Process& p = proc(pid);
  p.state = PState::kBlocked;
  p.pending_work = 0;
  p.cont = std::move(then);
}

void Cpu::wake(ProcessId pid) {
  if (!exists(pid)) return;
  Process& p = proc(pid);
  if (p.state != PState::kBlocked) return;  // already runnable
  if (p.suspended) {
    // Remember the wake; resume() will enqueue.
    p.state = PState::kReady;
    return;
  }
  make_runnable(pid);
}

void Cpu::make_runnable(ProcessId pid) {
  Process& p = proc(pid);
  enqueue(pid);
  if (current_ == kNoProcess) {
    if (!in_continuation_) maybe_dispatch();
    // If inside a continuation, dispatch happens when it unwinds.
    return;
  }
  // Interactive wakeups preempt batch work immediately — the "fast and
  // predictable interactive performance" guarantee of the local OS.
  if (p.sched == SchedClass::kInteractive &&
      proc(current_).sched == SchedClass::kBatch && !in_continuation_) {
    preempt_current();
    return;
  }
  // Same-class wake: the running process may hold an oversized slice
  // granted while it was alone.  Trim it back to the quantum boundary so
  // the newcomer is served with round-robin latency, not slice latency.
  if (!in_continuation_ && slice_event_ != 0) trim_slice_to_quantum();
}

void Cpu::trim_slice_to_quantum() {
  assert(current_ != kNoProcess && slice_event_ != 0);
  const sim::SimTime slice_end = seg_start_ + slice_target_;
  if (slice_end <= quantum_deadline_) return;  // already within quantum
  if (quantum_deadline_ <= engine_.now()) {
    // Quantum already exhausted: rotate right now.
    engine_.cancel(slice_event_);
    slice_event_ = 0;
    Process& p = proc(current_);
    sim::Duration retired = engine_.now() - seg_start_;
    retired = std::clamp<sim::Duration>(retired, 0, slice_target_);
    p.pending_work -= retired;
    account_busy(retired);
    p.state = PState::kReady;
    queue_for(p.sched).push_back(current_);
    current_ = kNoProcess;
    maybe_dispatch();
    return;
  }
  slice_target_ = quantum_deadline_ - seg_start_;
  assert(slice_target_ > 0);
  // Same closure, earlier deadline: move the pending event in place instead
  // of cancel + schedule churn.
  slice_event_ = engine_.reschedule(slice_event_, quantum_deadline_);
  assert(slice_event_ != 0);
}

void Cpu::preempt_current() {
  assert(current_ != kNoProcess && slice_event_ != 0);
  obs_preempts_->inc();
  engine_.cancel(slice_event_);
  slice_event_ = 0;
  Process& p = proc(current_);
  // Work retired so far in this segment (steal() pushes seg_start_ forward,
  // so elapsed-minus-stolen is already folded in).
  sim::Duration retired = engine_.now() - seg_start_;
  retired = std::clamp<sim::Duration>(retired, 0, slice_target_);
  p.pending_work -= retired;
  account_busy(retired);
  p.state = PState::kReady;
  queue_for(p.sched).push_front(current_);  // resumes next among its class
  current_ = kNoProcess;
  maybe_dispatch();
}

void Cpu::suspend(ProcessId pid) {
  if (!exists(pid)) return;
  Process& p = proc(pid);
  if (p.suspended) return;
  p.suspended = true;
  if (pid == current_) {
    assert(!in_continuation_ && "cannot suspend from its own continuation");
    assert(slice_event_ != 0);
    engine_.cancel(slice_event_);
    slice_event_ = 0;
    sim::Duration retired = engine_.now() - seg_start_;
    retired = std::clamp<sim::Duration>(retired, 0, slice_target_);
    p.pending_work -= retired;
    account_busy(retired);
    p.state = PState::kReady;  // runnable again once resumed
    current_ = kNoProcess;
    maybe_dispatch();
    return;
  }
  if (p.state == PState::kReady) {
    auto& q = queue_for(p.sched);
    q.erase(std::remove(q.begin(), q.end(), pid), q.end());
  }
  // Blocked processes just carry the flag; wake() will park them as
  // kReady-suspended until resume().
}

void Cpu::resume(ProcessId pid) {
  if (!exists(pid)) return;
  Process& p = proc(pid);
  if (!p.suspended) return;
  p.suspended = false;
  if (p.state == PState::kReady) make_runnable(pid);
}

bool Cpu::suspended(ProcessId pid) const {
  return pid < table_.size() && table_[pid].state != PState::kDead &&
         table_[pid].suspended;
}

void Cpu::exit(ProcessId pid) {
  assert(in_continuation_ && pid == current_);
  Process& p = proc(pid);
  p.state = PState::kDead;
  p.cont = nullptr;
  p.pending_work = 0;
  current_ = kNoProcess;
  // Dispatch resumes when the continuation unwinds (run_continuation).
}

void Cpu::kill(ProcessId pid) {
  if (!exists(pid)) return;
  Process& p = proc(pid);
  if (pid == current_) {
    if (slice_event_ != 0) {
      engine_.cancel(slice_event_);
      slice_event_ = 0;
      sim::Duration retired = engine_.now() - seg_start_;
      retired = std::clamp<sim::Duration>(retired, 0, slice_target_);
      account_busy(retired);
    }
    current_ = kNoProcess;
    p.state = PState::kDead;
    p.cont = nullptr;
    if (!in_continuation_) maybe_dispatch();
    return;
  }
  if (p.state == PState::kReady) {
    auto& q = queue_for(p.sched);
    q.erase(std::remove(q.begin(), q.end(), pid), q.end());
  }
  p.state = PState::kDead;
  p.cont = nullptr;
  p.pending_work = 0;
}

void Cpu::steal(sim::Duration t) {
  assert(t >= 0);
  account_busy(t);
  if (current_ == kNoProcess || slice_event_ == 0) return;
  // Delay the running process: shift its segment and its quantum, pushing
  // the pending slice-end event out in place (reschedule clamps to now).
  seg_start_ += t;
  quantum_deadline_ += t;
  slice_event_ = engine_.reschedule(slice_event_, seg_start_ + slice_target_);
  assert(slice_event_ != 0);
}

void Cpu::reset() {
  if (slice_event_ != 0) {
    engine_.cancel(slice_event_);
    slice_event_ = 0;
  }
  current_ = kNoProcess;
  run_queue_batch_.clear();
  run_queue_inter_.clear();
  for (auto& p : table_) {
    p.state = PState::kDead;
    p.cont = nullptr;
    p.pending_work = 0;
  }
}

}  // namespace now::os
