// A complete commodity workstation: CPU + DRAM + disk + console, attachable
// to a network.  The NOW building block.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/types.hpp"
#include "os/cpu.hpp"
#include "os/disk.hpp"
#include "sim/engine.hpp"

namespace now::os {

struct NodeParams {
  CpuParams cpu;
  DiskParams disk;
  /// Installed DRAM.  The paper's scenarios use 16-128 MB per workstation.
  std::uint64_t dram_bytes = 64ull << 20;
  /// Software page-copy cost for one 8 KB page (Table 2: 250 us "memory
  /// copy"), expressed per byte so other transfer sizes scale.
  sim::Duration copy_cost_per_kb = sim::from_us(250.0 / 8.0);
};

/// One workstation.
class Node {
 public:
  Node(sim::Engine& engine, net::NodeId id, NodeParams params)
      : engine_(engine), id_(id), params_(params),
        cpu_(engine, params.cpu), disk_(engine, params.disk),
        last_activity_(-(1ll << 62)) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  net::NodeId id() const { return id_; }
  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }
  Disk& disk() { return disk_; }
  const Disk& disk() const { return disk_; }
  sim::Engine& engine() { return engine_; }
  const NodeParams& params() const { return params_; }

  /// Software copy cost for `bytes` (kernel buffer copies, page moves).
  sim::Duration copy_cost(std::uint64_t bytes) const {
    return static_cast<sim::Duration>(
        static_cast<double>(params_.copy_cost_per_kb) *
        (static_cast<double>(bytes) / 1024.0));
  }

  // --- Interactive console -------------------------------------------------
  /// Records keyboard/mouse activity at the current time.  GLUnix's idle
  /// detector (the "one minute" rule) reads last_activity().
  void user_activity() { last_activity_ = engine_.now(); }
  sim::SimTime last_activity() const { return last_activity_; }
  /// True if no console input for at least `window`.
  bool user_idle_for(sim::Duration window) const {
    return engine_.now() - last_activity_ >= window;
  }

  // --- Memory accounting ---------------------------------------------------
  /// DRAM not pinned by local work; the Network RAM registry recruits this.
  std::uint64_t dram_bytes() const { return params_.dram_bytes; }
  std::uint64_t dram_in_use() const { return dram_in_use_; }
  std::uint64_t dram_free() const {
    return params_.dram_bytes > dram_in_use_
               ? params_.dram_bytes - dram_in_use_
               : 0;
  }
  /// Claims DRAM; returns false if it would overcommit.
  bool reserve_dram(std::uint64_t bytes);
  void release_dram(std::uint64_t bytes);

  // --- Failure injection ---------------------------------------------------
  bool alive() const { return alive_; }
  /// Kills the node: every process dies, DRAM contents are lost, the NIC
  /// goes deaf (protocol layers check alive() before delivering).
  void crash();
  /// Brings the node back with empty memory.
  void reboot();

 private:
  sim::Engine& engine_;
  net::NodeId id_;
  NodeParams params_;
  Cpu cpu_;
  Disk disk_;
  sim::SimTime last_activity_;
  std::uint64_t dram_in_use_ = 0;
  bool alive_ = true;
};

}  // namespace now::os
