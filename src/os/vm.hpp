// Virtual memory: the subsystem Network RAM revitalises (Figure 2).
//
// An AddressSpace owns a fixed number of physical frames and an LRU
// replacement policy.  Where evicted dirty pages go — the local swap disk or
// a remote workstation's idle DRAM — is decided by the Pager plugged in,
// which is exactly the paper's point: network RAM is implemented "most
// easily by replacing the swap device driver".
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace now::os {

/// Backing store for an address space: local swap partition or network RAM.
class Pager {
 public:
  virtual ~Pager() = default;
  /// Fetches `page` from backing store; `done` fires when the data is in
  /// memory.
  virtual void page_in(std::uint64_t page, std::function<void()> done) = 0;
  /// Writes a dirty evicted `page` to backing store.
  virtual void page_out(std::uint64_t page, std::function<void()> done) = 0;
};

struct VmStats {
  std::uint64_t references = 0;
  std::uint64_t hits = 0;
  std::uint64_t faults = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
};

/// One process's pageable address space.
class AddressSpace {
 public:
  /// `frames` physical page frames of `page_bytes` each, backed by `pager`.
  AddressSpace(sim::Engine& engine, std::uint32_t frames,
               std::uint32_t page_bytes, Pager& pager);
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  /// True if `page` is in memory (no fault needed).
  bool resident(std::uint64_t page) const;

  /// Records a reference to a *resident* page: LRU update + dirty marking.
  /// Costs no simulated time (cache effects are folded into compute time).
  void reference(std::uint64_t page, bool write);

  /// Services a fault on a non-resident page: evicts an LRU victim (writing
  /// it back first if dirty), fetches `page`, then fires `done`.  Multiple
  /// concurrent faults on the same page coalesce onto one fetch.
  void fault(std::uint64_t page, bool write, std::function<void()> done);

  /// Convenience: reference if resident, otherwise fault.  `done` runs
  /// synchronously on a hit.
  void access(std::uint64_t page, bool write, std::function<void()> done);

  /// Process-context access: on a hit `then` runs synchronously; on a miss
  /// the calling process blocks (as a faulting process does) and `then`
  /// runs when it is re-dispatched after the page arrives.  Must be called
  /// from within `pid`'s own continuation.
  void access_from_process(Cpu& cpu, ProcessId pid, std::uint64_t page,
                           bool write, std::function<void()> then);

  std::uint32_t frames() const { return frames_; }
  std::uint32_t page_bytes() const { return page_bytes_; }
  std::uint32_t resident_count() const {
    return static_cast<std::uint32_t>(table_.size());
  }
  const VmStats& stats() const { return stats_; }

  /// Drops every resident page without writeback (process killed) — used by
  /// GLUnix when an evicted job's state has already been checkpointed.
  void discard_all();

 private:
  struct Entry {
    std::list<std::uint64_t>::iterator lru_pos;
    bool dirty = false;
  };

  void evict_one(std::function<void()> then);
  void finish_fetch(std::uint64_t page, bool write);

  sim::Engine& engine_;
  std::uint32_t frames_;
  std::uint32_t page_bytes_;
  Pager& pager_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, Entry> table_;
  // Faults in flight: page -> waiting continuations (first entry drives the
  // fetch; later ones piggyback).
  std::unordered_map<std::uint64_t, std::vector<std::function<void()>>>
      inflight_;
  std::uint32_t frames_reserved_ = 0;  // frames held by in-flight fetches
  VmStats stats_;
  obs::Counter* obs_faults_;
  obs::Counter* obs_evictions_;
  obs::Counter* obs_writebacks_;
  obs::TrackId obs_track_;
};

}  // namespace now::os
