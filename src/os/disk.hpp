// Workstation disk model, 1994 vintage.
//
// An access costs positioning (seek + rotational latency, skipped when the
// access is sequential with the previous one) plus transfer at the media
// rate, served FIFO.  Default parameters reproduce the paper's Table 2
// figure of 14,800 us for an 8-Kbyte access.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace now::os {

/// Request-queue discipline.  kElevator is the classic SCAN/LOOK sweep:
/// it serves the request nearest ahead of the head, reversing at the ends,
/// which cuts positioning time under deep queues at the cost of fairness.
enum class DiskSched : std::uint8_t { kFifo, kElevator };

struct DiskParams {
  /// Average seek + rotational delay for a random access.
  sim::Duration positioning = sim::from_us(12'800);
  /// Media transfer rate in bytes per second (8 KB in 2 ms => 4 MB/s).
  double transfer_bps = 4.0 * 1024 * 1024;
  /// Aggregate capacity, for the RAID layer's placement bookkeeping.
  std::uint64_t capacity_bytes = 1ull << 30;  // 1 GB
  DiskSched scheduler = DiskSched::kFifo;
  /// If true, positioning scales with seek distance:
  /// min_positioning + (positioning - min_positioning) * sqrt(d/capacity),
  /// the standard seek curve.  False keeps the flat Table 2 cost.
  bool distance_seek = false;
  sim::Duration min_positioning = sim::from_us(2'500);
};

/// One spindle with a FIFO request queue.
class Disk {
 public:
  using Done = std::function<void()>;

  Disk(sim::Engine& engine, DiskParams params)
      : engine_(engine), params_(params),
        obs_reads_(&obs::metrics().counter("os.disk.reads")),
        obs_writes_(&obs::metrics().counter("os.disk.writes")),
        obs_service_us_(&obs::metrics().summary("os.disk.service_us")),
        obs_queue_(&obs::metrics().gauge("os.disk.queue_depth")),
        obs_track_(obs::tracer().track("os")) {}
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Queues a read of `bytes` at `offset`; `done` fires at completion.
  void read(std::uint64_t offset, std::uint32_t bytes, Done done);

  /// Queues a write of `bytes` at `offset`.
  void write(std::uint64_t offset, std::uint32_t bytes, Done done);

  const DiskParams& params() const { return params_; }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }
  /// Service-time distribution (queueing excluded), microseconds.
  const sim::Summary& service_time_us() const { return service_us_; }
  /// Response-time distribution (queueing included), microseconds.
  const sim::Summary& response_time_us() const { return response_us_; }

  /// Pure service time for an access, without queueing: what Table 2 calls
  /// the "disk" component.
  sim::Duration service_time(std::uint32_t bytes, bool sequential) const;

  /// Positioning cost for a head movement of `distance` bytes (flat unless
  /// distance_seek is enabled).
  sim::Duration positioning_time(std::uint64_t distance) const;

 private:
  struct Request {
    std::uint64_t offset;
    std::uint32_t bytes;
    bool is_write;
    sim::SimTime enqueued;
    Done done;
  };

  void start_next();
  /// Index into queue_ of the next request under the active discipline.
  std::size_t pick_next() const;

  sim::Engine& engine_;
  DiskParams params_;
  std::deque<Request> queue_;
  bool busy_ = false;
  bool sweeping_up_ = true;  // elevator direction
  // Byte offset after the last access; starts "nowhere" so the first access
  // always pays positioning.
  std::uint64_t head_pos_ = ~0ull;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  sim::Summary service_us_;
  sim::Summary response_us_;
  obs::Counter* obs_reads_;
  obs::Counter* obs_writes_;
  obs::Summary* obs_service_us_;
  obs::Gauge* obs_queue_;
  obs::TrackId obs_track_;
};

}  // namespace now::os
