// Per-workstation CPU with a commodity-Unix-style time-sliced scheduler.
//
// This is the "unmodified local operating system" the paper insists NOW must
// build on.  Processes are continuation-driven: user code asks for a span of
// compute and supplies a callback for when it completes; blocking and waking
// go through explicit calls.  The scheduler round-robins runnable processes
// with a fixed quantum per priority level — which is exactly the behaviour
// that destroys fine-grain parallel programs under *local* scheduling
// (Figure 4): a message for a descheduled process waits up to a full quantum
// before its handler runs.  GLUnix's coscheduler defeats this by aligning
// quanta across nodes (src/glunix/coschedule.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace now::os {

using ProcessId = std::uint32_t;
inline constexpr ProcessId kNoProcess = 0xffffffffu;

/// Scheduling class.  Interactive preempts batch, mirroring the priority
/// decay of 4.3BSD-era schedulers in the coarse.
enum class SchedClass : std::uint8_t { kBatch = 0, kInteractive = 1 };

struct CpuParams {
  /// Round-robin time slice.  1990s Unix used ~100 ms.
  sim::Duration quantum = 100 * sim::kMillisecond;
  /// Direct cost of a context switch (register/TLB/cache disturbance).
  sim::Duration context_switch = 25 * sim::kMicrosecond;
  /// Peak floating-point rate, for compute_flops() (e.g. 40 MFLOPS for the
  /// paper's hypothetical NOW node).
  double mflops = 40.0;
  /// Per-dispatch random variation of the quantum, as a fraction (0.2 =>
  /// +/-20 %).  Real Unix quanta vary with tick aliasing and priority
  /// decay; in a cluster simulation this is what keeps the nodes' local
  /// schedules from staying accidentally phase-locked — give each node a
  /// distinct `seed`.  Zero (the default) keeps scheduling exact.
  double quantum_jitter = 0.0;
  std::uint64_t seed = 0;
};

/// One simulated processor running many processes.
class Cpu {
 public:
  using Continuation = std::function<void()>;

  Cpu(sim::Engine& engine, CpuParams params);
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Creates a runnable process whose `entry` continuation runs when first
  /// scheduled.
  ProcessId spawn(std::string name, SchedClass sched, Continuation entry);

  /// From within a process continuation: run for `work` of CPU time, then
  /// call `then`.  The wall-clock span is >= work under contention.
  void compute(ProcessId pid, sim::Duration work, Continuation then);

  /// Convenience: compute time for `flops` floating-point operations at the
  /// CPU's peak rate.
  void compute_flops(ProcessId pid, double flops, Continuation then);

  /// From within a process continuation: deschedule until wake(pid); `then`
  /// runs once the process is next dispatched.
  void block(ProcessId pid, Continuation then);

  /// Makes a blocked process runnable (callable from any event context,
  /// e.g. a message-arrival handler).  No-op if not blocked.
  void wake(ProcessId pid);

  /// Terminates the process.  Must be its final call.
  void exit(ProcessId pid);

  /// Forcibly terminates a process from outside (GLUnix eviction/migration).
  void kill(ProcessId pid);

  /// Takes a process off the CPU and keeps it off (SIGSTOP semantics).
  /// GLUnix's coscheduler uses this to implement the global time-slice
  /// matrix: only the currently coscheduled gang is resumed.  A suspended
  /// process keeps its pending work; wake() on it is remembered but does
  /// not run it until resume().
  void suspend(ProcessId pid);

  /// Undoes suspend(); the process becomes runnable again if it has work
  /// or a remembered wake (SIGCONT semantics).
  void resume(ProcessId pid);

  bool suspended(ProcessId pid) const;

  /// Charges interrupt/system time at the highest priority: the currently
  /// running process is delayed by `t` and the time counts as CPU busy.
  /// This is where receive-side protocol *overhead* lands.
  void steal(sim::Duration t);

  /// Kills every process (node crash).  The CPU can be reused afterwards.
  void reset();

  bool idle() const { return current_ == kNoProcess; }
  ProcessId current() const { return current_; }
  std::size_t runnable_count() const;
  bool exists(ProcessId pid) const;
  bool blocked(ProcessId pid) const;
  const std::string& name(ProcessId pid) const;

  /// Busy time / elapsed time since construction.
  double utilization() const;
  sim::Duration busy_time() const { return busy_; }

  const CpuParams& params() const { return params_; }

  /// Registers a callback invoked whenever a process is dispatched onto the
  /// CPU.  User-level (polling) Active Messages use this to model the fact
  /// that a descheduled process cannot poll its network endpoint — the root
  /// cause of the local-scheduling slowdowns in Figure 4.
  void add_dispatch_observer(std::function<void(ProcessId)> fn) {
    dispatch_observers_.push_back(std::move(fn));
  }

 private:
  enum class PState : std::uint8_t { kReady, kRunning, kBlocked, kDead };

  struct Process {
    std::string name;
    SchedClass sched = SchedClass::kBatch;
    PState state = PState::kDead;
    /// SIGSTOP flag, orthogonal to state: a suspended process is never
    /// enqueued; kReady while suspended means "runnable once resumed".
    bool suspended = false;
    sim::Duration pending_work = 0;
    Continuation cont;
  };

  Process& proc(ProcessId pid) { return table_[pid]; }
  std::deque<ProcessId>& queue_for(SchedClass s);
  void enqueue(ProcessId pid);
  void make_runnable(ProcessId pid);
  void maybe_dispatch();
  void run_continuation(ProcessId pid);
  void start_slice();
  void on_slice_end();
  void preempt_current();
  void trim_slice_to_quantum();
  ProcessId pick_next();
  void account_busy(sim::Duration d) { busy_ += d; }

  sim::Duration jittered_quantum();

  sim::Engine& engine_;
  CpuParams params_;
  sim::Pcg32 rng_;
  std::vector<Process> table_;
  std::deque<ProcessId> run_queue_batch_;
  std::deque<ProcessId> run_queue_inter_;

  ProcessId current_ = kNoProcess;
  sim::EventId slice_event_ = 0;
  /// When the current compute segment started retiring work (steal() shifts
  /// this forward so interrupt time never counts as process progress).
  sim::SimTime seg_start_ = 0;
  /// Absolute time at which the current process's quantum runs out.
  sim::SimTime quantum_deadline_ = 0;
  sim::Duration slice_target_ = 0;  // work this slice should retire
  bool in_continuation_ = false;
  sim::Duration busy_ = 0;
  std::vector<std::function<void(ProcessId)>> dispatch_observers_;
  // Cached obs handles (see src/obs/metrics.hpp).
  obs::Counter* obs_dispatches_;
  obs::Counter* obs_preempts_;
  obs::Summary* obs_runq_;
};

}  // namespace now::os
