#include "os/node.hpp"

namespace now::os {

bool Node::reserve_dram(std::uint64_t bytes) {
  if (dram_in_use_ + bytes > params_.dram_bytes) return false;
  dram_in_use_ += bytes;
  return true;
}

void Node::release_dram(std::uint64_t bytes) {
  dram_in_use_ = bytes > dram_in_use_ ? 0 : dram_in_use_ - bytes;
}

void Node::crash() {
  alive_ = false;
  cpu_.reset();
  dram_in_use_ = 0;
}

void Node::reboot() {
  alive_ = true;
  last_activity_ = engine_.now();
}

}  // namespace now::os
