#include "os/disk.hpp"

#include <cassert>
#include <cmath>

namespace now::os {

sim::Duration Disk::positioning_time(std::uint64_t distance) const {
  if (!params_.distance_seek) return params_.positioning;
  const double frac = std::min(
      1.0, static_cast<double>(distance) /
               static_cast<double>(params_.capacity_bytes));
  const auto span =
      static_cast<double>(params_.positioning - params_.min_positioning);
  return params_.min_positioning +
         static_cast<sim::Duration>(span * std::sqrt(frac));
}

sim::Duration Disk::service_time(std::uint32_t bytes, bool sequential) const {
  const double xfer_s = static_cast<double>(bytes) / params_.transfer_bps;
  sim::Duration t = sim::from_sec(xfer_s);
  if (!sequential) t += params_.positioning;
  return t;
}

void Disk::read(std::uint64_t offset, std::uint32_t bytes, Done done) {
  queue_.push_back(Request{offset, bytes, false, engine_.now(),
                           std::move(done)});
  if (!busy_) start_next();
}

void Disk::write(std::uint64_t offset, std::uint32_t bytes, Done done) {
  queue_.push_back(Request{offset, bytes, true, engine_.now(),
                           std::move(done)});
  if (!busy_) start_next();
}

std::size_t Disk::pick_next() const {
  if (params_.scheduler == DiskSched::kFifo || queue_.size() == 1) return 0;
  // LOOK: nearest request in the sweep direction; reverse at the end.
  const auto choose = [this](bool up) -> std::ptrdiff_t {
    std::ptrdiff_t best = -1;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const bool ahead = up ? queue_[i].offset >= head_pos_ ||
                                  head_pos_ == ~0ull
                            : queue_[i].offset <= head_pos_;
      if (!ahead) continue;
      if (best < 0) {
        best = static_cast<std::ptrdiff_t>(i);
        continue;
      }
      const auto& b = queue_[static_cast<std::size_t>(best)];
      const bool closer = up ? queue_[i].offset < b.offset
                             : queue_[i].offset > b.offset;
      if (closer) best = static_cast<std::ptrdiff_t>(i);
    }
    return best;
  };
  std::ptrdiff_t best = choose(sweeping_up_);
  if (best < 0) best = choose(!sweeping_up_);  // reverse the sweep
  return best < 0 ? 0 : static_cast<std::size_t>(best);
}

void Disk::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const std::size_t idx = pick_next();
  Request req = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));

  const bool sequential = req.offset == head_pos_;
  sim::Duration svc;
  if (sequential) {
    svc = service_time(req.bytes, true);
  } else {
    const std::uint64_t distance =
        head_pos_ == ~0ull
            ? req.offset
            : (req.offset > head_pos_ ? req.offset - head_pos_
                                      : head_pos_ - req.offset);
    svc = service_time(req.bytes, true) + positioning_time(distance);
  }
  if (head_pos_ != ~0ull) sweeping_up_ = req.offset >= head_pos_;
  head_pos_ = req.offset + req.bytes;
  if (req.is_write) {
    ++writes_;
    obs_writes_->inc();
  } else {
    ++reads_;
    obs_reads_->inc();
  }
  service_us_.add(sim::to_us(svc));
  obs_service_us_->observe(sim::to_us(svc));
  obs_queue_->set(static_cast<double>(queue_depth()));

  engine_.schedule_in(svc, [this, r = std::move(req)]() mutable {
    response_us_.add(sim::to_us(engine_.now() - r.enqueued));
    obs::tracer().complete(obs::kClusterNode, obs_track_,
                           r.is_write ? "disk.write" : "disk.read", r.enqueued,
                           engine_.now());
    obs_queue_->set(static_cast<double>(queue_depth()));
    if (r.done) r.done();
    start_next();
  });
}

}  // namespace now::os
