#include "netram/multigrid.hpp"

#include <cassert>

namespace now::netram {

MultigridRun::MultigridRun(os::Node& node, os::AddressSpace& space,
                           MultigridParams params, DoneFn done)
    : node_(node), space_(space), params_(params), done_(std::move(done)),
      pages_((params.problem_bytes + params.page_bytes - 1) /
             params.page_bytes) {
  assert(pages_ > 0);
}

void MultigridRun::start() {
  assert(pid_ == os::kNoProcess && "start() is one-shot");
  pid_ = node_.cpu().spawn("multigrid", os::SchedClass::kBatch, [this] {
    started_at_ = node_.engine().now();
    step();
  });
}

void MultigridRun::step() {
  if (sweep_ == params_.sweeps) {
    const sim::Duration elapsed = node_.engine().now() - started_at_;
    os::ProcessId pid = pid_;
    DoneFn done = std::move(done_);
    node_.cpu().exit(pid);
    if (done) done(elapsed);
    return;
  }
  node_.cpu().compute(pid_, params_.compute_per_page, [this] {
    space_.access_from_process(node_.cpu(), pid_, page_, /*write=*/true,
                               [this] {
                                 if (++page_ == pages_) {
                                   page_ = 0;
                                   ++sweep_;
                                 }
                                 step();
                               });
  });
}

}  // namespace now::netram
