// Idle-memory registry: who has spare DRAM to donate?
//
// "A huge pool of memory potentially exists on the network; this memory can
// be accessed far more quickly than local-disk storage."  The registry
// tracks which workstations currently donate DRAM and parcels it out to
// network-RAM pagers.  GLUnix flips nodes in and out of the donor set as
// users come and go; donors can also be revoked (user returned) or crash,
// and registered observers must then re-home or write off their pages.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/types.hpp"
#include "os/node.hpp"

namespace now::netram {

class IdleMemoryRegistry {
 public:
  /// Observer invoked when a donor leaves the pool.  `graceful` is true for
  /// a revocation (data can still be fetched while it drains) and false for
  /// a crash (contents lost).
  using DonorGone = std::function<void(net::NodeId, bool graceful)>;

  /// Marks `node` as donating its free DRAM.
  void add_donor(os::Node& node);

  /// Gracefully withdraws a donor (user came back): observers re-home their
  /// pages, then the node stops accepting new ones.
  void revoke_donor(net::NodeId id);

  /// Reports a donor crash: its contents are gone.
  void donor_crashed(net::NodeId id);

  bool is_donor(net::NodeId id) const;

  /// Claims `bytes` on some donor other than `exclude`; round-robin over
  /// donors with room.  Returns kInvalidNode if the pool is exhausted.
  net::NodeId acquire(std::uint64_t bytes, net::NodeId exclude);

  /// Returns `bytes` previously acquired on `id`.
  void release(net::NodeId id, std::uint64_t bytes);

  void add_observer(DonorGone fn) { observers_.push_back(std::move(fn)); }

  /// Total bytes currently donable across all donors.
  std::uint64_t pool_bytes() const;
  std::size_t donor_count() const { return donors_.size(); }

 private:
  std::unordered_map<net::NodeId, os::Node*> donors_;
  std::vector<net::NodeId> order_;  // round-robin order
  std::size_t cursor_ = 0;
  std::vector<DonorGone> observers_;

  void remove(net::NodeId id);
};

}  // namespace now::netram
