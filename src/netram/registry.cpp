#include "netram/registry.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"

namespace now::netram {

void IdleMemoryRegistry::add_donor(os::Node& node) {
  if (donors_.contains(node.id())) return;
  donors_.emplace(node.id(), &node);
  order_.push_back(node.id());
}

void IdleMemoryRegistry::remove(net::NodeId id) {
  donors_.erase(id);
  const auto it = std::find(order_.begin(), order_.end(), id);
  if (it != order_.end()) {
    const auto idx = static_cast<std::size_t>(it - order_.begin());
    order_.erase(it);
    if (cursor_ > idx) --cursor_;
    if (cursor_ >= order_.size()) cursor_ = 0;
  }
}

void IdleMemoryRegistry::revoke_donor(net::NodeId id) {
  if (!donors_.contains(id)) return;
  remove(id);
  obs::metrics().counter("netram.donor_revocations").inc();
  for (const auto& obs : observers_) obs(id, /*graceful=*/true);
}

void IdleMemoryRegistry::donor_crashed(net::NodeId id) {
  if (!donors_.contains(id)) return;
  remove(id);
  obs::metrics().counter("netram.donor_crashes").inc();
  for (const auto& obs : observers_) obs(id, /*graceful=*/false);
}

bool IdleMemoryRegistry::is_donor(net::NodeId id) const {
  return donors_.contains(id);
}

net::NodeId IdleMemoryRegistry::acquire(std::uint64_t bytes,
                                        net::NodeId exclude) {
  if (order_.empty()) return net::kInvalidNode;
  for (std::size_t probe = 0; probe < order_.size(); ++probe) {
    const net::NodeId id = order_[(cursor_ + probe) % order_.size()];
    if (id == exclude) continue;
    os::Node* n = donors_.at(id);
    if (n->alive() && n->reserve_dram(bytes)) {
      cursor_ = (cursor_ + probe + 1) % order_.size();
      return id;
    }
  }
  return net::kInvalidNode;
}

void IdleMemoryRegistry::release(net::NodeId id, std::uint64_t bytes) {
  const auto it = donors_.find(id);
  if (it == donors_.end()) return;  // donor already left the pool
  it->second->release_dram(bytes);
}

std::uint64_t IdleMemoryRegistry::pool_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& [id, n] : donors_) {
    if (n->alive()) sum += n->dram_free();
  }
  return sum;
}

}  // namespace now::netram
