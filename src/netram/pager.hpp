// Pagers: local swap disk vs network RAM.
//
// DiskPager is the classic swap device.  NetworkRamPager "replaces the swap
// device driver" (the paper's minimal-kernel-change route): evicted pages
// travel over Active-Message RPC to idle remote DRAM and come back an order
// of magnitude faster than from disk (Table 2).  When the donor pool is
// exhausted the pager falls back to the local disk, and when a donor is
// revoked or crashes it re-homes or writes off the affected pages.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netram/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "os/disk.hpp"
#include "os/node.hpp"
#include "os/vm.hpp"
#include "proto/rpc.hpp"

namespace now::netram {

/// Swap-to-local-disk pager (the baseline of Figure 2).
class DiskPager final : public os::Pager {
 public:
  DiskPager(os::Node& node, std::uint32_t page_bytes,
            std::uint64_t swap_offset = 1ull << 30)
      : node_(node), page_bytes_(page_bytes), swap_offset_(swap_offset) {}

  void page_in(std::uint64_t page, std::function<void()> done) override;
  void page_out(std::uint64_t page, std::function<void()> done) override;

  std::uint64_t disk_reads() const { return reads_; }
  std::uint64_t disk_writes() const { return writes_; }

 private:
  /// Pages never written out read as zero fill (first touch): a cheap
  /// in-memory clear rather than a disk access.
  bool materialized(std::uint64_t page) const {
    return written_.contains(page);
  }

  os::Node& node_;
  std::uint32_t page_bytes_;
  std::uint64_t swap_offset_;
  std::unordered_map<std::uint64_t, bool> written_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

/// RPC method ids used by network-RAM donors.
inline constexpr proto::MethodId kNetRamWrite = 100;
inline constexpr proto::MethodId kNetRamRead = 101;

/// Serves donor-side page storage for a node.  Install once per donor.
void install_donor_service(proto::RpcLayer& rpc, os::Node& node);

struct NetRamStats {
  std::uint64_t remote_reads = 0;
  std::uint64_t remote_writes = 0;
  std::uint64_t disk_fallback_reads = 0;
  std::uint64_t disk_fallback_writes = 0;
  std::uint64_t rehomed_pages = 0;   // moved when a donor was revoked
  std::uint64_t lost_pages = 0;      // donor crashed before writeback
  std::uint64_t prefetches = 0;      // readahead fetches issued
  std::uint64_t prefetch_hits = 0;   // faults absorbed by readahead
};

class NetworkRamPager final : public os::Pager {
 public:
  /// Pages for a process on `client`; remote placement via `registry`,
  /// transport via `rpc`, overflow to the client's local disk.  With
  /// `readahead` on, each fault also streams the successor page in the
  /// background — sequential sweeps (the multigrid pattern) then overlap
  /// most fetch latency with compute.
  /// `readahead_window` bounds the prefetch buffer: only the most recent
  /// prefetches are retained, as in a real (memory-bounded) readahead.
  NetworkRamPager(os::Node& client, std::uint32_t page_bytes,
                  IdleMemoryRegistry& registry, proto::RpcLayer& rpc,
                  bool readahead = false, std::size_t readahead_window = 8);

  void page_in(std::uint64_t page, std::function<void()> done) override;
  void page_out(std::uint64_t page, std::function<void()> done) override;

  const NetRamStats& stats() const { return stats_; }
  /// Pages currently resident on remote donors.
  std::size_t remote_pages() const;

 private:
  struct Location {
    bool on_disk = false;
    net::NodeId donor = net::kInvalidNode;
  };

  void on_donor_gone(net::NodeId id, bool graceful);
  void store_remote(std::uint64_t page, net::NodeId donor,
                    std::function<void()> done);
  void store_disk(std::uint64_t page, std::function<void()> done);
  void maybe_prefetch(std::uint64_t page);

  os::Node& client_;
  std::uint32_t page_bytes_;
  IdleMemoryRegistry& registry_;
  proto::RpcLayer& rpc_;
  bool readahead_;
  DiskPager disk_fallback_;
  std::unordered_map<std::uint64_t, Location> where_;
  /// Pages already streamed in by readahead, awaiting their fault.
  /// Bounded FIFO: stale prefetches fall out of the window.
  std::unordered_set<std::uint64_t> prefetched_;
  std::deque<std::uint64_t> prefetch_order_;
  std::size_t readahead_window_;
  std::unordered_set<std::uint64_t> prefetch_inflight_;
  NetRamStats stats_;
  obs::Counter* obs_remote_reads_;
  obs::Counter* obs_remote_writes_;
  obs::Counter* obs_disk_fallbacks_;
  obs::Counter* obs_prefetch_hits_;
  obs::Counter* obs_rehomed_;
  obs::Counter* obs_lost_;
  obs::TrackId obs_track_;
};

}  // namespace now::netram
