#include "netram/pager.hpp"

#include <cassert>

namespace now::netram {

void DiskPager::page_in(std::uint64_t page, std::function<void()> done) {
  if (!materialized(page)) {
    // Zero-fill: first touch of a virtual page never costs a disk access.
    node_.engine().schedule_in(node_.copy_cost(page_bytes_) / 4,
                               std::move(done));
    return;
  }
  ++reads_;
  node_.disk().read(swap_offset_ + page * page_bytes_, page_bytes_,
                    std::move(done));
}

void DiskPager::page_out(std::uint64_t page, std::function<void()> done) {
  ++writes_;
  written_[page] = true;
  node_.disk().write(swap_offset_ + page * page_bytes_, page_bytes_,
                     std::move(done));
}

void install_donor_service(proto::RpcLayer& rpc, os::Node& node) {
  const net::NodeId id = node.id();
  // Donor-side handlers only pay a page copy: the data lands in (or leaves)
  // donated DRAM.  Capacity accounting happens at the registry.
  rpc.register_method(
      id, kNetRamWrite,
      [&node](net::NodeId, std::any req, proto::RpcLayer::ReplyFn reply) {
        const auto bytes = std::any_cast<std::uint32_t>(req);
        node.engine().schedule_in(node.copy_cost(bytes),
                                  [reply = std::move(reply)] {
                                    reply(16, {});
                                  });
      });
  rpc.register_method(
      id, kNetRamRead,
      [&node](net::NodeId, std::any req, proto::RpcLayer::ReplyFn reply) {
        const auto bytes = std::any_cast<std::uint32_t>(req);
        node.engine().schedule_in(node.copy_cost(bytes),
                                  [reply = std::move(reply), bytes] {
                                    reply(bytes, {});
                                  });
      });
}

NetworkRamPager::NetworkRamPager(os::Node& client, std::uint32_t page_bytes,
                                 IdleMemoryRegistry& registry,
                                 proto::RpcLayer& rpc, bool readahead,
                                 std::size_t readahead_window)
    : client_(client), page_bytes_(page_bytes), registry_(registry),
      rpc_(rpc), readahead_(readahead),
      readahead_window_(readahead_window),
      disk_fallback_(client, page_bytes),
      obs_remote_reads_(&obs::metrics().counter("netram.remote_reads")),
      obs_remote_writes_(&obs::metrics().counter("netram.remote_writes")),
      obs_disk_fallbacks_(&obs::metrics().counter("netram.disk_fallbacks")),
      obs_prefetch_hits_(&obs::metrics().counter("netram.prefetch_hits")),
      obs_rehomed_(&obs::metrics().counter("netram.rehomed_pages")),
      obs_lost_(&obs::metrics().counter("netram.lost_pages")),
      obs_track_(obs::tracer().track("netram")) {
  registry_.add_observer([this](net::NodeId id, bool graceful) {
    on_donor_gone(id, graceful);
  });
}

std::size_t NetworkRamPager::remote_pages() const {
  std::size_t n = 0;
  for (const auto& [page, loc] : where_) {
    if (!loc.on_disk) ++n;
  }
  return n;
}

void NetworkRamPager::page_out(std::uint64_t page,
                               std::function<void()> done) {
  // A dirty eviction supersedes any readahead copy of this page.
  prefetched_.erase(page);
  prefetch_inflight_.erase(page);
  const auto it = where_.find(page);
  if (it != where_.end() && !it->second.on_disk) {
    // Rewrite in place on the donor already holding this page.
    store_remote(page, it->second.donor, std::move(done));
    return;
  }
  const net::NodeId donor = registry_.acquire(page_bytes_, client_.id());
  if (donor != net::kInvalidNode) {
    where_[page] = Location{false, donor};
    store_remote(page, donor, std::move(done));
    return;
  }
  // Donor pool exhausted: thrash to the local disk like it's 1989.
  where_[page] = Location{true, net::kInvalidNode};
  store_disk(page, std::move(done));
}

void NetworkRamPager::store_remote(std::uint64_t page, net::NodeId donor,
                                   std::function<void()> done) {
  ++stats_.remote_writes;
  obs_remote_writes_->inc();
  (void)page;
  const sim::SimTime t0 = client_.engine().now();
  rpc_.call(client_.id(), donor, kNetRamWrite, page_bytes_ + 64,
            std::uint32_t{page_bytes_},
            [this, t0, done = std::move(done)](std::any) {
              obs::tracer().complete(client_.id(), obs_track_, "remote_write",
                                     t0, client_.engine().now());
              done();
            });
}

void NetworkRamPager::store_disk(std::uint64_t page,
                                 std::function<void()> done) {
  ++stats_.disk_fallback_writes;
  obs_disk_fallbacks_->inc();
  disk_fallback_.page_out(page, std::move(done));
}

void NetworkRamPager::page_in(std::uint64_t page,
                              std::function<void()> done) {
  if (readahead_) maybe_prefetch(page + 1);
  if (prefetched_.erase(page) > 0) {
    // Readahead already streamed it in; only the local copy remains.
    ++stats_.prefetch_hits;
    obs_prefetch_hits_->inc();
    client_.engine().schedule_in(client_.copy_cost(page_bytes_),
                                 std::move(done));
    return;
  }
  const auto it = where_.find(page);
  if (it == where_.end()) {
    // Never paged out: zero-fill.
    client_.engine().schedule_in(client_.copy_cost(page_bytes_) / 4,
                                 std::move(done));
    return;
  }
  if (it->second.on_disk) {
    ++stats_.disk_fallback_reads;
    obs_disk_fallbacks_->inc();
    disk_fallback_.page_in(page, std::move(done));
    return;
  }
  ++stats_.remote_reads;
  obs_remote_reads_->inc();
  const sim::SimTime t0 = client_.engine().now();
  rpc_.call(client_.id(), it->second.donor, kNetRamRead, 64,
            std::uint32_t{page_bytes_},
            [this, t0, done = std::move(done)](std::any) {
              obs::tracer().complete(client_.id(), obs_track_, "remote_read",
                                     t0, client_.engine().now());
              done();
            });
}

void NetworkRamPager::maybe_prefetch(std::uint64_t page) {
  if (prefetched_.contains(page) || prefetch_inflight_.contains(page)) {
    return;
  }
  const auto it = where_.find(page);
  if (it == where_.end() || it->second.on_disk) return;
  prefetch_inflight_.insert(page);
  ++stats_.prefetches;
  rpc_.call(client_.id(), it->second.donor, kNetRamRead, 64,
            std::uint32_t{page_bytes_}, [this, page](std::any) {
              if (prefetch_inflight_.erase(page) == 0) return;
              prefetched_.insert(page);
              prefetch_order_.push_back(page);
              while (prefetch_order_.size() > readahead_window_) {
                prefetched_.erase(prefetch_order_.front());
                prefetch_order_.pop_front();
              }
            });
}

void NetworkRamPager::on_donor_gone(net::NodeId id, bool graceful) {
  obs::tracer().instant(client_.id(), obs_track_,
                        graceful ? "donor_revoked" : "donor_crashed");
  for (auto& [page, loc] : where_) {
    if (loc.on_disk || loc.donor != id) continue;
    if (graceful) {
      // Re-home: fetch from the departing donor and push to a new one (or
      // disk).  Costs one read plus one write.
      ++stats_.rehomed_pages;
      obs_rehomed_->inc();
      const net::NodeId fresh = registry_.acquire(page_bytes_, client_.id());
      const std::uint64_t p = page;
      auto finish = [this, p, fresh] {
        if (fresh != net::kInvalidNode) {
          store_remote(p, fresh, [] {});
        } else {
          store_disk(p, [] {});
        }
      };
      rpc_.call(client_.id(), id, kNetRamRead, 64,
                std::uint32_t{page_bytes_},
                [finish = std::move(finish)](std::any) { finish(); });
      loc = fresh != net::kInvalidNode
                ? Location{false, fresh}
                : Location{true, net::kInvalidNode};
    } else {
      // Crash: contents gone; the page reads as zero-fill next time.
      ++stats_.lost_pages;
      obs_lost_->inc();
      loc = Location{};
      // Erasing while iterating is awkward; mark instead.
    }
  }
  if (!graceful) {
    std::erase_if(where_, [](const auto& kv) {
      return !kv.second.on_disk && kv.second.donor == net::kInvalidNode;
    });
  }
}

}  // namespace now::netram
