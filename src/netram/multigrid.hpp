// The multigrid workload behind Figure 2.
//
// A multigrid solver sweeps its grid hierarchy repeatedly: each sweep walks
// the problem's pages in order, doing a fixed amount of floating-point work
// per page and then touching the page (read-modify-write).  Sequential
// sweeps over a working set larger than physical memory are LRU's worst
// case — every page faults on every sweep — which is precisely why
// classical virtual memory "broke down" and why the paper proposes paging
// to remote DRAM instead.
#pragma once

#include <cstdint>
#include <functional>

#include "os/node.hpp"
#include "os/vm.hpp"
#include "sim/time.hpp"

namespace now::netram {

struct MultigridParams {
  /// Total problem size in bytes (Figure 2's x-axis).
  std::uint64_t problem_bytes = 64ull << 20;
  std::uint32_t page_bytes = 8192;
  /// Smoothing sweeps over the data.
  int sweeps = 5;
  /// CPU time per page per sweep.  Calibrated so a 1994 workstation doing
  /// relaxation + residual work on 1 K doubles spends ~4 ms — which puts
  /// network-RAM slowdown in the paper's 10-30 % band and disk thrashing
  /// in its 5-10x band.
  sim::Duration compute_per_page = 4 * sim::kMillisecond;
};

/// Runs the sweep workload as a process on `node`, paging through `space`.
/// `done(elapsed)` fires with the wall-clock runtime.
class MultigridRun {
 public:
  using DoneFn = std::function<void(sim::Duration)>;

  MultigridRun(os::Node& node, os::AddressSpace& space,
               MultigridParams params, DoneFn done);

  /// Spawns the solver process.  One-shot.
  void start();

  std::uint64_t pages() const { return pages_; }

 private:
  void step();

  os::Node& node_;
  os::AddressSpace& space_;
  MultigridParams params_;
  DoneFn done_;
  std::uint64_t pages_;
  os::ProcessId pid_ = os::kNoProcess;
  int sweep_ = 0;
  std::uint64_t page_ = 0;
  sim::SimTime started_at_ = 0;
};

}  // namespace now::netram
