// xFS: the serverless network file system.
//
// No central server: every participating workstation is client, storage
// server, and (for a slice of the block space) *manager*.  The four xFS
// ingredients from the paper, all here:
//
//  1. Anything can live anywhere and move: manager duty is a hash ring that
//     is re-pointed on failure; any client can take over for any failed
//     client, rebuilding the manager's directory from the survivors.
//  2. Multiprocessor-style write-back ownership coherence: one writer
//     (owner) xor many readers per block, invalidation on ownership
//     transfer, directory kept by the block's manager.
//  3. Storage is a log striped over the software RAID (src/raid): dirty
//     blocks batch into segments, so writes land as full-stripe RAID-5
//     writes, and a cleaner compacts dead space (src/xfs/log.hpp).
//  4. Cooperative caching: a read miss is satisfied from another client's
//     memory when the directory knows of a cached copy — the server-disk
//     trip of a central-server file system becomes a peer memory fetch.
//
// Simplification (documented): on an ownership transfer the dirty data is
// relayed through the manager (owner -> manager -> new owner) rather than
// forwarded directly; this costs one extra data hop but makes invalidation
// ordering trivially airtight.  Read forwarding IS direct (requester
// fetches from the caching peer).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coopcache/lru.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/rpc.hpp"
#include "sim/stats.hpp"
#include "xfs/log.hpp"

namespace now::xfs {

struct XfsParams {
  std::uint32_t block_bytes = 8192;
  /// Per-client cache capacity in blocks.
  std::uint32_t client_cache_blocks = 2048;
  /// Blocks per log segment (write-behind batch).
  std::uint32_t segment_blocks = 64;
  /// Cleaner threshold: segments at or below this live fraction are
  /// compacted.
  double clean_threshold = 0.5;
  /// Per-attempt timeout for manager operations, and the retry budget —
  /// this is what rides out a manager takeover.
  sim::Duration op_timeout = 500 * sim::kMillisecond;
  std::uint32_t max_op_retries = 12;
  sim::Duration retry_backoff = 100 * sim::kMillisecond;
};

struct XfsStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t peer_fetches = 0;     // cooperative-cache reads
  std::uint64_t log_reads = 0;
  std::uint64_t zero_fills = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t ownership_transfers = 0;
  std::uint64_t segments_flushed = 0;
  std::uint64_t evict_notices = 0;
  std::uint64_t op_retries = 0;
  std::uint64_t failed_ops = 0;  // retry budget exhausted (EIO)
  std::uint64_t lost_dirty_blocks = 0;  // owner crashed before flush
  std::uint64_t manager_takeovers = 0;
  /// End-to-end operation latencies, microseconds.
  sim::Summary read_latency_us;
  sim::Summary write_latency_us;
};

class Xfs {
 public:
  using Done = std::function<void()>;

  /// All of `nodes` act as clients and managers; storage is `log`'s RAID.
  Xfs(proto::RpcLayer& rpc, LogStore& log, std::vector<os::Node*> nodes,
      XfsParams params);
  Xfs(const Xfs&) = delete;
  Xfs& operator=(const Xfs&) = delete;

  /// Registers every node's manager + client RPC services.
  void start();

  /// Reads block `b` on behalf of `client`.
  void read(net::NodeId client, BlockId b, Done done);

  /// Writes block `b` on behalf of `client` (write-back: returns once the
  /// client holds ownership; data reaches the log on eviction or sync).
  void write(net::NodeId client, BlockId b, Done done);

  /// Flushes `client`'s write-behind buffer to the log.
  void sync(net::NodeId client, Done done);

  /// One cleaner pass driven by `driver`.
  void clean(net::NodeId driver, std::function<void(std::uint32_t)> done);

  /// Reflects a client crash (call after the node itself crashed):
  /// directory entries are purged; unflushed dirty blocks are lost and
  /// subsequent reads serve the last logged version.
  void client_crashed(net::NodeId client);

  /// Re-points the failed node's manager duty at `successor`, which
  /// rebuilds the directory by polling the surviving clients.  In-flight
  /// operations ride it out through timeout+retry.
  void manager_takeover(net::NodeId failed, net::NodeId successor,
                        Done done);

  net::NodeId manager_of(BlockId b) const;
  /// True if `id` currently holds manager duty for any slice of the block
  /// space (fault injection asks before arranging a takeover).
  bool is_manager(net::NodeId id) const;
  const XfsStats& stats() const { return stats_; }
  /// Blocks currently cached by `client` (test introspection).
  std::size_t cached_blocks(net::NodeId client) const;
  bool is_cached(net::NodeId client, BlockId b) const;
  /// True if `client` holds `b` dirty (owner with unflushed data).
  bool is_dirty(net::NodeId client, BlockId b) const;
  /// Invariant check: every block has at most one dirty holder, and that
  /// holder matches the manager's owner record.  O(total cached blocks).
  bool coherence_invariant_holds() const;
  /// The manager's current owner record for `b` (test introspection).
  net::NodeId debug_owner(BlockId b) const;

 private:
  struct BlockMeta {
    net::NodeId owner = net::kInvalidNode;
    std::unordered_set<net::NodeId> readers;
    /// Ownership transfers serialize at the manager: while one is running,
    /// later write requests queue here.  Per-pair FIFO delivery then
    /// guarantees a queued writer's revoke can never overtake the previous
    /// writer's grant.
    bool write_in_progress = false;
    std::deque<std::pair<net::NodeId, proto::RpcLayer::ReplyFn>>
        pending_writes;
  };
  struct ClientState {
    ClientState(std::uint32_t capacity) : cache(capacity) {}
    coopcache::LruCache cache;
    std::unordered_set<BlockId> dirty;   // owned, modified, still cached
    std::deque<BlockId> staged;          // evicted dirty, awaiting flush
    std::unordered_set<BlockId> staged_set;
    bool flushing = false;
  };
  void install_services(os::Node& node);
  /// Runs one ownership-transfer transaction at manager `self`.
  void manager_write(net::NodeId self, BlockId b, net::NodeId requester,
                     proto::RpcLayer::ReplyFn reply);
  ClientState& cstate(net::NodeId c) { return clients_.at(c); }
  std::unordered_map<BlockId, BlockMeta>& mstate(net::NodeId m) {
    return managers_[m];
  }

  void insert_cached(net::NodeId c, BlockId b, bool dirty);
  void handle_evicted(net::NodeId c, BlockId victim);
  void flush_segment(net::NodeId c, Done done);
  void finish_read(net::NodeId c, BlockId b, Done done);
  void retry_op(net::NodeId c, BlockId b, bool is_write, Done done,
                std::uint32_t attempts);
  void do_read(net::NodeId c, BlockId b, Done done, std::uint32_t attempts);
  void do_write(net::NodeId c, BlockId b, Done done,
                std::uint32_t attempts);
  bool client_has_block(net::NodeId c, BlockId b) const;

  proto::RpcLayer& rpc_;
  LogStore& log_;
  std::vector<os::Node*> nodes_;
  XfsParams params_;
  std::vector<net::NodeId> ring_;  // block -> manager assignment
  std::unordered_map<net::NodeId, ClientState> clients_;
  std::unordered_map<net::NodeId,
                     std::unordered_map<BlockId, BlockMeta>>
      managers_;
  std::unordered_set<net::NodeId> recovering_;  // managers mid-takeover
  XfsStats stats_;
  bool started_ = false;
  obs::Counter* obs_reads_;
  obs::Counter* obs_writes_;
  obs::Counter* obs_peer_fetches_;
  obs::Counter* obs_invalidations_;
  obs::Counter* obs_transfers_;
  obs::Counter* obs_retries_;
  obs::Counter* obs_failed_ops_;
  obs::Counter* obs_flushes_;
  obs::Counter* obs_takeovers_;
  obs::Summary* obs_read_us_;
  obs::Summary* obs_write_us_;
  obs::TrackId obs_track_;

  sim::Engine& engine() { return rpc_.engine(); }
  os::Node* node(net::NodeId id) const;
};

}  // namespace now::xfs
