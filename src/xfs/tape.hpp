// Robotic tape archive — the bottom of the paper's storage hierarchy.
//
// xFS "cooperatively manage[s] ... client disk as a giant cache for
// robotic tape storage": cold log segments migrate from the workstation-
// disk RAID down to tape, and a read of archived data pays a robot mount
// plus streaming.  The archive keeps the last tape mounted for a while so
// batched restores amortize the arm movement.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace now::xfs {

struct TapeParams {
  /// Robot arm + load + seek-to-file: tens of seconds in the early '90s.
  sim::Duration mount_time = 25 * sim::kSecond;
  /// Streaming rate once mounted.
  double stream_bps = 1.0 * 1024 * 1024;
  /// The drive stays mounted this long after the last access.
  sim::Duration keep_mounted = 60 * sim::kSecond;
};

struct TapeStats {
  std::uint64_t mounts = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
};

class TapeArchive {
 public:
  using Done = std::function<void()>;

  TapeArchive(sim::Engine& engine, TapeParams params = {})
      : engine_(engine), params_(params) {}
  TapeArchive(const TapeArchive&) = delete;
  TapeArchive& operator=(const TapeArchive&) = delete;

  /// Streams `bytes` to tape; `done` fires when the archive is durable.
  void write(std::uint64_t bytes, Done done) {
    stats_.bytes_written += bytes;
    access(bytes, std::move(done));
  }

  /// Streams `bytes` back from tape (mount charged if the drive is idle).
  void read(std::uint64_t bytes, Done done) {
    stats_.bytes_read += bytes;
    access(bytes, std::move(done));
  }

  const TapeStats& stats() const { return stats_; }

 private:
  void access(std::uint64_t bytes, Done done) {
    sim::SimTime start = std::max(engine_.now(), drive_busy_until_);
    if (start > mounted_until_) {
      ++stats_.mounts;
      start += params_.mount_time;
    }
    const auto stream = sim::from_sec(static_cast<double>(bytes) /
                                      params_.stream_bps);
    drive_busy_until_ = start + stream;
    mounted_until_ = drive_busy_until_ + params_.keep_mounted;
    engine_.schedule_at(drive_busy_until_, std::move(done));
  }

  sim::Engine& engine_;
  TapeParams params_;
  sim::SimTime drive_busy_until_ = 0;
  /// The drive counts as mounted until this instant.
  sim::SimTime mounted_until_ = -1;
  TapeStats stats_;
};

}  // namespace now::xfs
