#include "xfs/central_server.hpp"

#include <cassert>

namespace now::xfs {

namespace {
struct CfsReq {
  BlockId block;
  bool is_write;
};
struct CfsResp {
  bool from_memory;
};
constexpr sim::Duration kOpTimeout = 500 * sim::kMillisecond;
}  // namespace

CentralServerFs::CentralServerFs(proto::RpcLayer& rpc, os::Node& server,
                                 std::vector<os::Node*> clients,
                                 CentralFsParams params)
    : rpc_(rpc), server_(server), params_(params),
      server_cache_(params.server_cache_blocks),
      obs_reads_(&obs::metrics().counter("cfs.reads")),
      obs_writes_(&obs::metrics().counter("cfs.writes")),
      obs_failed_ops_(&obs::metrics().counter("cfs.failed_ops")),
      obs_cold_restarts_(&obs::metrics().counter("central.cold_restarts")),
      obs_track_(obs::tracer().track("cfs")) {
  for (os::Node* c : clients) {
    clients_.emplace(c->id(), ClientState(params_.client_cache_blocks, c));
  }
}

double CentralServerFs::availability() const {
  const CentralFsStats s = stats();
  const std::uint64_t issued = s.reads + s.writes;
  if (issued == 0) return 1.0;
  return 1.0 - static_cast<double>(s.failed_ops) /
                   static_cast<double>(issued);
}

void CentralServerFs::start() { install_server(); }

void CentralServerFs::server_crashed() {
  // The server's DRAM cache dies with the machine.  Before this hook the
  // model wrongly kept the warm cache across the outage, which flattered
  // the incumbent's recovery: the first post-restart reads hit memory
  // instead of paying the disk.
  server_cache_.clear();
}

void CentralServerFs::server_restarted() {
  count(&CentralFsStats::cold_restarts);
  obs_cold_restarts_->inc();
  obs::tracer().instant(server_.id(), obs_track_, "cold_restart");
}

void CentralServerFs::install_server() {
  rpc_.register_method(
      server_.id(), kCfsRead,
      [this](net::NodeId, std::any req, proto::RpcLayer::ReplyFn reply) {
        const auto r = std::any_cast<CfsReq>(req);
        if (server_cache_.touch(r.block)) {
          reply(params_.block_bytes + 32, CfsResp{true});
          return;
        }
        // Disk read, then install in the server cache.
        server_.disk().read(r.block * params_.block_bytes,
                            params_.block_bytes,
                            [this, b = r.block,
                             reply = std::move(reply)]() mutable {
                              server_cache_.insert(b);
                              reply(params_.block_bytes + 32,
                                    CfsResp{false});
                            });
      });
  rpc_.register_method(
      server_.id(), kCfsWrite,
      [this](net::NodeId, std::any req, proto::RpcLayer::ReplyFn reply) {
        const auto r = std::any_cast<CfsReq>(req);
        server_cache_.insert(r.block);
        on_disk_.insert(r.block);
        // Write-through to the server disk.
        server_.disk().write(r.block * params_.block_bytes,
                             params_.block_bytes,
                             [reply = std::move(reply)]() mutable {
                               reply(32, {});
                             });
      });
}

void CentralServerFs::read(net::NodeId client, BlockId b,
                           std::function<void(bool)> done) {
  count(&CentralFsStats::reads);
  obs_reads_->inc();
  ClientState& cs = cstate(client);
  if (cs.cache.touch(b)) {
    count(&CentralFsStats::local_hits);
    // Local hit costs one block copy (Table 2's memcpy component),
    // charged on the client's own lane engine: a hit never leaves the
    // client machine, so it must not schedule into another lane's queue.
    cs.node->engine().schedule_in(sim::from_us(250),
                                  [done = std::move(done)] { done(true); });
    return;
  }
  rpc_.call(
      client, server_.id(), kCfsRead, 48, CfsReq{b, false},
      [this, client, b, done](std::any resp) mutable {
        const auto r = std::any_cast<CfsResp>(resp);
        count(r.from_memory ? &CentralFsStats::server_mem_hits
                            : &CentralFsStats::server_disk_reads);
        cstate(client).cache.insert(b);
        done(true);
      },
      kOpTimeout,
      [this, client, done]() mutable {
        // The building just lost its file system.
        count(&CentralFsStats::failed_ops);
        obs_failed_ops_->inc();
        obs::tracer().instant(client, obs_track_, "op_failed");
        done(false);
      });
}

void CentralServerFs::write(net::NodeId client, BlockId b,
                            std::function<void(bool)> done) {
  count(&CentralFsStats::writes);
  obs_writes_->inc();
  cstate(client).cache.insert(b);
  rpc_.call(
      client, server_.id(), kCfsWrite, params_.block_bytes + 48,
      CfsReq{b, true},
      [done](std::any) mutable { done(true); }, kOpTimeout,
      [this, client, done]() mutable {
        count(&CentralFsStats::failed_ops);
        obs_failed_ops_->inc();
        obs::tracer().instant(client, obs_track_, "op_failed");
        done(false);
      });
}

}  // namespace now::xfs
