// Log-structured storage for xFS, striped over the software RAID.
//
// xFS stores file data and metadata in a log (as in LFS): clients batch
// dirty blocks into segments and append whole segments to the storage
// array, which turns most writes into full-stripe RAID-5 writes — no
// read-modify-write parity penalty.  An imap tracks each block's current
// home; overwritten blocks leave dead space behind, and a cleaner compacts
// segments whose live fraction drops below a threshold.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "raid/raid.hpp"
#include "xfs/tape.hpp"

namespace now::xfs {

using BlockId = std::uint64_t;
using SegmentId = std::uint32_t;
inline constexpr SegmentId kNoSegment = 0xffffffffu;

struct LogStats {
  std::uint64_t segments_written = 0;
  std::uint64_t blocks_appended = 0;
  std::uint64_t blocks_read = 0;
  std::uint64_t segments_cleaned = 0;
  std::uint64_t live_blocks_copied = 0;
  std::uint64_t segments_archived = 0;
  std::uint64_t tape_reads = 0;
};

class LogStore {
 public:
  using Done = std::function<void()>;

  /// Segments hold `segment_blocks` blocks of `block_bytes` each.
  LogStore(raid::Storage& storage, std::uint32_t segment_blocks,
           std::uint32_t block_bytes);
  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  /// Appends `blocks` (possibly a partial segment) as a new segment,
  /// driven by `writer`.  Blocks previously in the log are superseded
  /// (their old copies become dead space).  `done` fires when the segment
  /// is on the array.
  void append_segment(net::NodeId writer, const std::vector<BlockId>& blocks,
                      Done done);

  /// True if the log holds a copy of `b`.
  bool in_log(BlockId b) const { return imap_.contains(b); }

  /// Reads `b`'s current copy, driven by `reader`.  `b` must be in the log.
  void read_block(net::NodeId reader, BlockId b, Done done);

  /// Live fraction of a segment (0 for free segments).
  double utilization(SegmentId s) const;

  /// One cleaning pass driven by `driver`: every segment with live
  /// fraction in (0, threshold] has its live blocks copied into fresh
  /// segments and is then freed.  `done(cleaned)` reports how many
  /// segments were reclaimed.
  void clean(net::NodeId driver, double threshold,
             std::function<void(std::uint32_t)> done);

  std::size_t segment_count() const { return segments_.size(); }
  const LogStats& stats() const { return stats_; }

  // --- Tape tier ------------------------------------------------------
  /// Attaches a robotic tape archive as the tier below the RAID.
  void set_tape(TapeArchive* tape) { tape_ = tape; }

  /// Migrates segment `s` (must be live, not already archived) to tape,
  /// driven by `driver`: its data is read off the RAID, streamed to tape,
  /// and the RAID space is freed.  Reads of its blocks then pay the tape.
  void archive_segment(net::NodeId driver, SegmentId s, Done done);

  /// Segments eligible for archival: on the RAID with any live data.
  std::vector<SegmentId> archivable_segments() const;

  bool archived(SegmentId s) const {
    return s < segments_.size() && segments_[s].on_tape;
  }
  /// True if `b`'s current copy lives on tape.
  bool on_tape(BlockId b) const;

 private:
  struct Segment {
    std::vector<BlockId> blocks;  // slot -> block id
    std::vector<bool> live;
    std::uint32_t live_count = 0;
    bool free = true;
    bool on_tape = false;
  };
  struct Location {
    SegmentId segment = kNoSegment;
    std::uint32_t slot = 0;
  };

  SegmentId allocate_segment();
  void kill_old_copy(BlockId b);
  /// Refreshes the "xfs.log.utilization" gauge (live / allocated blocks).
  void update_util_gauge();
  std::uint64_t segment_offset(SegmentId s) const {
    return static_cast<std::uint64_t>(s) * segment_blocks_ * block_bytes_;
  }

  raid::Storage& storage_;
  std::uint32_t segment_blocks_;
  std::uint32_t block_bytes_;
  std::vector<Segment> segments_;
  std::unordered_map<BlockId, Location> imap_;
  TapeArchive* tape_ = nullptr;
  LogStats stats_;
  obs::Counter* obs_segments_written_;
  obs::Counter* obs_segments_cleaned_;
  obs::Counter* obs_blocks_read_;
  obs::Gauge* obs_util_;
};

}  // namespace now::xfs
