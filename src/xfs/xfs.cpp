#include "xfs/xfs.hpp"

#include <cassert>
#include <memory>

#include "sim/log.hpp"

namespace now::xfs {

namespace {
constexpr proto::MethodId kXfsRead = 130;
constexpr proto::MethodId kXfsWrite = 131;
constexpr proto::MethodId kInvalidate = 132;
constexpr proto::MethodId kRevoke = 133;
constexpr proto::MethodId kPeerFetch = 134;
constexpr proto::MethodId kFlushed = 135;
constexpr proto::MethodId kEvicted = 136;
constexpr proto::MethodId kReport = 137;

struct BlockReq {
  BlockId block;
  net::NodeId requester;
};
enum class ReadSource : std::uint8_t { kZero, kPeer, kLog, kRetry };
struct ReadDirective {
  ReadSource source = ReadSource::kZero;
  net::NodeId peer = net::kInvalidNode;
};
struct WriteGrant {
  bool had_data = false;
  bool retry = false;
};
struct FetchReply {
  bool found = false;
};
struct FlushNotice {
  std::vector<BlockId> blocks;
  net::NodeId writer;
};
struct EvictNotice {
  BlockId block;
  net::NodeId client;
};
struct ReportEntry {
  BlockId block;
  bool dirty;
};
}  // namespace

Xfs::Xfs(proto::RpcLayer& rpc, LogStore& log, std::vector<os::Node*> nodes,
         XfsParams params)
    : rpc_(rpc), log_(log), nodes_(std::move(nodes)), params_(params),
      obs_reads_(&obs::metrics().counter("xfs.reads")),
      obs_writes_(&obs::metrics().counter("xfs.writes")),
      obs_peer_fetches_(&obs::metrics().counter("xfs.peer_fetches")),
      obs_invalidations_(&obs::metrics().counter("xfs.invalidations")),
      obs_transfers_(&obs::metrics().counter("xfs.ownership_transfers")),
      obs_retries_(&obs::metrics().counter("xfs.op_retries")),
      obs_failed_ops_(&obs::metrics().counter("xfs.failed_ops")),
      obs_flushes_(&obs::metrics().counter("xfs.segments_flushed")),
      obs_takeovers_(&obs::metrics().counter("xfs.manager.takeovers")),
      obs_read_us_(&obs::metrics().summary("xfs.read_latency_us")),
      obs_write_us_(&obs::metrics().summary("xfs.write_latency_us")),
      obs_track_(obs::tracer().track("xfs")) {
  assert(nodes_.size() >= 2);
  for (os::Node* n : nodes_) {
    ring_.push_back(n->id());
    clients_.emplace(n->id(), ClientState(params_.client_cache_blocks));
    managers_.emplace(n->id(),
                      std::unordered_map<BlockId, BlockMeta>{});
  }
}

net::NodeId Xfs::manager_of(BlockId b) const {
  return ring_[b % ring_.size()];
}

bool Xfs::is_manager(net::NodeId id) const {
  for (net::NodeId m : ring_) {
    if (m == id) return true;
  }
  return false;
}

os::Node* Xfs::node(net::NodeId id) const {
  for (os::Node* n : nodes_) {
    if (n->id() == id) return n;
  }
  return nullptr;
}

std::size_t Xfs::cached_blocks(net::NodeId client) const {
  return clients_.at(client).cache.size();
}

bool Xfs::is_cached(net::NodeId client, BlockId b) const {
  return clients_.at(client).cache.contains(b);
}

bool Xfs::is_dirty(net::NodeId client, BlockId b) const {
  const ClientState& cs = clients_.at(client);
  return cs.dirty.contains(b) || cs.staged_set.contains(b);
}

net::NodeId Xfs::debug_owner(BlockId b) const {
  const auto mit = managers_.find(manager_of(b));
  if (mit == managers_.end()) return net::kInvalidNode;
  const auto it = mit->second.find(b);
  return it == mit->second.end() ? net::kInvalidNode : it->second.owner;
}

bool Xfs::coherence_invariant_holds() const {
  // 1. At most one dirty holder per block.
  std::unordered_map<BlockId, net::NodeId> dirty_holder;
  for (const auto& [c, cs] : clients_) {
    auto check = [&](BlockId b) {
      const auto [it, fresh] = dirty_holder.emplace(b, c);
      return fresh || it->second == c;
    };
    for (const BlockId b : cs.dirty) {
      if (!check(b)) return false;
    }
    for (const BlockId b : cs.staged) {
      if (!check(b)) return false;
    }
  }
  // 2. A manager's owner record points at a node that actually holds the
  //    block dirty (or the record is for in-flight state, tolerated only
  //    when the node still caches the block).
  for (const auto& [mgr, map] : managers_) {
    for (const auto& [b, meta] : map) {
      if (meta.owner == net::kInvalidNode) continue;
      const auto it = clients_.find(meta.owner);
      if (it == clients_.end()) return false;
      if (!it->second.cache.contains(b) &&
          !it->second.staged_set.contains(b)) {
        return false;
      }
    }
  }
  return true;
}

bool Xfs::client_has_block(net::NodeId c, BlockId b) const {
  const ClientState& cs = clients_.at(c);
  return cs.cache.contains(b) || cs.staged_set.contains(b);
}

void Xfs::start() {
  assert(!started_);
  started_ = true;
  for (os::Node* n : nodes_) install_services(*n);
}

void Xfs::install_services(os::Node& node) {
  const net::NodeId self = node.id();

  // ---- Manager-side services ----------------------------------------
  rpc_.register_method(
      self, kXfsRead,
      [this, self](net::NodeId, std::any req,
                   proto::RpcLayer::ReplyFn reply) {
        if (recovering_.contains(self)) {
          reply(32, ReadDirective{ReadSource::kRetry, net::kInvalidNode});
          return;
        }
        const auto r = std::any_cast<BlockReq>(req);
        auto& map = mstate(self);
        BlockMeta& meta = map[r.block];
        ReadDirective d;
        const auto alive = [this](net::NodeId id) {
          const os::Node* n = this->node(id);
          return n != nullptr && n->alive();
        };
        if (meta.owner != net::kInvalidNode && meta.owner != r.requester &&
            alive(meta.owner)) {
          d = ReadDirective{ReadSource::kPeer, meta.owner};
        } else {
          d.source = ReadSource::kZero;
          for (const net::NodeId peer : meta.readers) {
            if (peer != r.requester && alive(peer) &&
                client_has_block(peer, r.block)) {
              d = ReadDirective{ReadSource::kPeer, peer};
              break;
            }
          }
          if (d.source != ReadSource::kPeer) {
            d.source = log_.in_log(r.block) ? ReadSource::kLog
                                            : ReadSource::kZero;
          }
        }
        meta.readers.insert(r.requester);
        reply(32, d);
      });

  rpc_.register_method(
      self, kXfsWrite,
      [this, self](net::NodeId, std::any req,
                   proto::RpcLayer::ReplyFn reply) {
        if (recovering_.contains(self)) {
          reply(32, WriteGrant{false, true});
          return;
        }
        const auto r = std::any_cast<BlockReq>(req);
        BlockMeta& meta = mstate(self)[r.block];
        if (meta.write_in_progress) {
          // Serialize ownership transfers per block; see BlockMeta.
          meta.pending_writes.emplace_back(r.requester, std::move(reply));
          return;
        }
        manager_write(self, r.block, r.requester, std::move(reply));
      });

  rpc_.register_method(
      self, kFlushed,
      [this, self](net::NodeId, std::any req,
                   proto::RpcLayer::ReplyFn reply) {
        const auto notice = std::any_cast<FlushNotice>(req);
        auto& map = mstate(self);
        for (const BlockId b : notice.blocks) {
          const auto it = map.find(b);
          if (it == map.end()) continue;
          if (it->second.owner == notice.writer) {
            it->second.owner = net::kInvalidNode;
          }
          it->second.readers.erase(notice.writer);
          if (it->second.owner == net::kInvalidNode &&
              it->second.readers.empty()) {
            map.erase(it);
          }
        }
        reply(16, {});
      });

  rpc_.register_method(
      self, kEvicted,
      [this, self](net::NodeId, std::any req,
                   proto::RpcLayer::ReplyFn reply) {
        const auto notice = std::any_cast<EvictNotice>(req);
        auto& map = mstate(self);
        const auto it = map.find(notice.block);
        if (it != map.end()) {
          it->second.readers.erase(notice.client);
          if (it->second.owner == net::kInvalidNode &&
              it->second.readers.empty()) {
            map.erase(it);
          }
        }
        reply(16, {});
      });

  // ---- Client-side services ------------------------------------------
  rpc_.register_method(
      self, kInvalidate,
      [this, self](net::NodeId, std::any req,
                   proto::RpcLayer::ReplyFn reply) {
        const auto b = std::any_cast<BlockId>(req);
        ClientState& cs = cstate(self);
        cs.cache.erase(b);
        cs.dirty.erase(b);
        reply(16, {});
      });

  rpc_.register_method(
      self, kRevoke,
      [this, self](net::NodeId, std::any req,
                   proto::RpcLayer::ReplyFn reply) {
        const auto b = std::any_cast<BlockId>(req);
        ClientState& cs = cstate(self);
        cs.cache.erase(b);
        cs.dirty.erase(b);
        if (cs.staged_set.erase(b) > 0) {
          std::erase(cs.staged, b);
        }
        // The reply carries the (possibly dirty) data to the manager.
        reply(params_.block_bytes + 16, {});
      });

  rpc_.register_method(
      self, kPeerFetch,
      [this, self](net::NodeId, std::any req,
                   proto::RpcLayer::ReplyFn reply) {
        const auto b = std::any_cast<BlockId>(req);
        ClientState& cs = cstate(self);
        const bool found = client_has_block(self, b);
        if (cs.cache.contains(b)) cs.cache.touch(b);
        reply(found ? params_.block_bytes + 16 : 16, FetchReply{found});
      });

  rpc_.register_method(
      self, kReport,
      [this, self](net::NodeId, std::any req,
                   proto::RpcLayer::ReplyFn reply) {
        const auto mgr = std::any_cast<net::NodeId>(req);
        const ClientState& cs = clients_.at(self);
        std::vector<ReportEntry> entries;
        auto consider = [&](BlockId b, bool dirty) {
          if (manager_of(b) == mgr) entries.push_back({b, dirty});
        };
        // LruCache has no iteration; report from the coherence-relevant
        // sets the client keeps: dirty + staged, plus reads are rebuilt
        // lazily (a stale directory miss just falls back to the log).
        for (const BlockId b : cs.dirty) consider(b, true);
        for (const BlockId b : cs.staged) consider(b, true);
        const auto bytes =
            static_cast<std::uint32_t>(16 + entries.size() * 16);
        reply(bytes, std::move(entries));
      });
}

void Xfs::manager_write(net::NodeId self, BlockId b, net::NodeId requester,
                        proto::RpcLayer::ReplyFn reply) {
  BlockMeta& meta = mstate(self)[b];
  meta.write_in_progress = true;

  // Collect everyone who must give up their copy.
  std::vector<net::NodeId> to_invalidate;
  for (const net::NodeId peer : meta.readers) {
    if (peer != requester && peer != meta.owner) {
      to_invalidate.push_back(peer);
    }
  }
  const net::NodeId prev_owner =
      (meta.owner != net::kInvalidNode && meta.owner != requester)
          ? meta.owner
          : net::kInvalidNode;

  meta.owner = requester;
  meta.readers.clear();
  meta.readers.insert(requester);

  auto complete = [this, self, b](proto::RpcLayer::ReplyFn rep,
                                  bool had_data) {
    rep(had_data ? params_.block_bytes + 32 : 32,
        WriteGrant{had_data, false});
    BlockMeta& m = mstate(self)[b];
    if (m.pending_writes.empty()) {
      m.write_in_progress = false;
      return;
    }
    auto [next_requester, next_reply] = std::move(m.pending_writes.front());
    m.pending_writes.pop_front();
    // The grant reply above was sent before the revoke this transaction is
    // about to issue, and the AM pair is FIFO, so ordering is safe.
    manager_write(self, b, next_requester, std::move(next_reply));
  };

  const std::size_t parties =
      to_invalidate.size() + (prev_owner != net::kInvalidNode ? 1 : 0);
  if (parties == 0) {
    complete(std::move(reply), false);
    return;
  }
  auto remaining = std::make_shared<std::size_t>(parties);
  auto had_data = std::make_shared<bool>(false);
  auto finish = [remaining, had_data, complete = std::move(complete),
                 reply = std::move(reply)]() mutable {
    if (--*remaining > 0) return;
    complete(std::move(reply), *had_data);
  };
  for (const net::NodeId peer : to_invalidate) {
    ++stats_.invalidations;
    obs_invalidations_->inc();
    rpc_.call(self, peer, kInvalidate, 32, b,
              [finish](std::any) mutable { finish(); },
              params_.op_timeout, [finish]() mutable { finish(); });
  }
  if (prev_owner != net::kInvalidNode) {
    ++stats_.ownership_transfers;
    obs_transfers_->inc();
    rpc_.call(self, prev_owner, kRevoke, 32, b,
              [finish, had_data](std::any) mutable {
                *had_data = true;
                finish();
              },
              params_.op_timeout, [finish]() mutable { finish(); });
  }
}

void Xfs::read(net::NodeId client, BlockId b, Done done) {
  ++stats_.reads;
  obs_reads_->inc();
  const sim::SimTime t0 = engine().now();
  do_read(client, b,
          [this, client, t0, done = std::move(done)]() mutable {
            stats_.read_latency_us.add(sim::to_us(engine().now() - t0));
            obs_read_us_->observe(sim::to_us(engine().now() - t0));
            obs::tracer().complete(client, obs_track_, "xfs.read", t0,
                                   engine().now());
            done();
          },
          0);
}

void Xfs::finish_read(net::NodeId c, BlockId b, Done done) {
  insert_cached(c, b, /*dirty=*/false);
  done();
}

void Xfs::retry_op(net::NodeId c, BlockId b, bool is_write, Done done,
                   std::uint32_t attempts) {
  ++stats_.op_retries;
  obs_retries_->inc();
  engine().schedule_in(params_.retry_backoff,
                       [this, c, b, is_write, done = std::move(done),
                        attempts]() mutable {
                         if (is_write) {
                           do_write(c, b, std::move(done), attempts + 1);
                         } else {
                           do_read(c, b, std::move(done), attempts + 1);
                         }
                       });
}

void Xfs::do_read(net::NodeId c, BlockId b, Done done,
                  std::uint32_t attempts) {
  ClientState& cs = cstate(c);
  if (cs.cache.contains(b) || cs.staged_set.contains(b)) {
    ++stats_.local_hits;
    cs.cache.touch(b);
    engine().schedule_in(node(c)->copy_cost(params_.block_bytes),
                         std::move(done));
    return;
  }
  if (attempts > params_.max_op_retries) {
    // Out of patience (manager unreachable): surface as completion; a real
    // FS would return EIO here.  Counted so availability is measurable.
    ++stats_.failed_ops;
    obs_failed_ops_->inc();
    obs::tracer().instant(c, obs_track_, "op_failed");
    done();
    return;
  }
  rpc_.call(
      c, manager_of(b), kXfsRead, 48, BlockReq{b, c},
      [this, c, b, done, attempts](std::any resp) mutable {
        const auto d = std::any_cast<ReadDirective>(resp);
        switch (d.source) {
          case ReadSource::kRetry:
            retry_op(c, b, false, std::move(done), attempts);
            return;
          case ReadSource::kZero:
            ++stats_.zero_fills;
            engine().schedule_in(
                node(c)->copy_cost(params_.block_bytes) / 4,
                [this, c, b, done = std::move(done)]() mutable {
                  finish_read(c, b, std::move(done));
                });
            return;
          case ReadSource::kLog:
            ++stats_.log_reads;
            log_.read_block(c, b,
                            [this, c, b, done = std::move(done)]() mutable {
                              finish_read(c, b, std::move(done));
                            });
            return;
          case ReadSource::kPeer:
            rpc_.call(
                c, d.peer, kPeerFetch, 32, b,
                [this, c, b, done, attempts](std::any fr) mutable {
                  if (std::any_cast<FetchReply>(fr).found) {
                    ++stats_.peer_fetches;
                    obs_peer_fetches_->inc();
                    finish_read(c, b, std::move(done));
                  } else {
                    // Peer dropped it in the meantime: ask again.
                    retry_op(c, b, false, std::move(done), attempts);
                  }
                },
                params_.op_timeout,
                [this, c, b, done, attempts]() mutable {
                  retry_op(c, b, false, std::move(done), attempts);
                });
            return;
        }
      },
      params_.op_timeout,
      [this, c, b, done, attempts]() mutable {
        retry_op(c, b, false, std::move(done), attempts);
      });
}

void Xfs::write(net::NodeId client, BlockId b, Done done) {
  ++stats_.writes;
  obs_writes_->inc();
  const sim::SimTime t0 = engine().now();
  do_write(client, b,
           [this, client, t0, done = std::move(done)]() mutable {
             stats_.write_latency_us.add(sim::to_us(engine().now() - t0));
             obs_write_us_->observe(sim::to_us(engine().now() - t0));
             obs::tracer().complete(client, obs_track_, "xfs.write", t0,
                                    engine().now());
             done();
           },
           0);
}

void Xfs::do_write(net::NodeId c, BlockId b, Done done,
                   std::uint32_t attempts) {
  ClientState& cs = cstate(c);
  if (cs.cache.contains(b) && cs.dirty.contains(b)) {
    ++stats_.local_hits;
    cs.cache.touch(b);
    engine().schedule_in(node(c)->copy_cost(params_.block_bytes),
                         std::move(done));
    return;
  }
  if (attempts > params_.max_op_retries) {
    ++stats_.failed_ops;
    obs_failed_ops_->inc();
    obs::tracer().instant(c, obs_track_, "op_failed");
    done();
    return;
  }
  rpc_.call(
      c, manager_of(b), kXfsWrite, 48, BlockReq{b, c},
      [this, c, b, done, attempts](std::any resp) mutable {
        const auto grant = std::any_cast<WriteGrant>(resp);
        if (grant.retry) {
          retry_op(c, b, true, std::move(done), attempts);
          return;
        }
        ClientState& state = cstate(c);
        // A staged older version is superseded by this new ownership.
        if (state.staged_set.erase(b) > 0) std::erase(state.staged, b);
        insert_cached(c, b, /*dirty=*/true);
        done();
      },
      params_.op_timeout,
      [this, c, b, done, attempts]() mutable {
        retry_op(c, b, true, std::move(done), attempts);
      });
}

void Xfs::insert_cached(net::NodeId c, BlockId b, bool dirty) {
  ClientState& cs = cstate(c);
  if (dirty) cs.dirty.insert(b);
  std::uint64_t victim = 0;
  const bool evicted = cs.cache.insert(b, &victim);
  if (evicted) handle_evicted(c, victim);
}

void Xfs::handle_evicted(net::NodeId c, BlockId victim) {
  ClientState& cs = cstate(c);
  if (cs.dirty.erase(victim) > 0) {
    // Dirty data enters the write-behind buffer bound for the log.
    if (!cs.staged_set.contains(victim)) {
      cs.staged.push_back(victim);
      cs.staged_set.insert(victim);
    }
    if (cs.staged.size() >=
        static_cast<std::size_t>(params_.segment_blocks)) {
      flush_segment(c, [] {});
    }
    return;
  }
  // Clean copy dropped: tell the directory (fire and forget).
  ++stats_.evict_notices;
  rpc_.call(c, manager_of(victim), kEvicted, 48, EvictNotice{victim, c},
            [](std::any) {});
}

void Xfs::flush_segment(net::NodeId c, Done done) {
  ClientState& cs = cstate(c);
  if (cs.flushing) {
    // One flush at a time; the caller re-checks (sync() loops).
    engine().schedule_in(sim::kMillisecond, std::move(done));
    return;
  }
  if (cs.staged.empty()) {
    done();
    return;
  }
  cs.flushing = true;
  const std::size_t take = std::min<std::size_t>(cs.staged.size(),
                                                 params_.segment_blocks);
  std::vector<BlockId> batch(cs.staged.begin(),
                             cs.staged.begin() +
                                 static_cast<std::ptrdiff_t>(take));
  cs.staged.erase(cs.staged.begin(),
                  cs.staged.begin() + static_cast<std::ptrdiff_t>(take));

  const sim::SimTime flush_t0 = engine().now();
  log_.append_segment(c, batch, [this, c, batch, flush_t0,
                                 done = std::move(done)]() mutable {
    ++stats_.segments_flushed;
    obs_flushes_->inc();
    obs::tracer().complete(c, obs_track_, "xfs.flush_segment", flush_t0,
                           engine().now());
    ClientState& state = cstate(c);
    // Group the notifications per manager.
    std::unordered_map<net::NodeId, std::vector<BlockId>> per_mgr;
    for (const BlockId b : batch) {
      state.staged_set.erase(b);
      per_mgr[manager_of(b)].push_back(b);
    }
    for (auto& [mgr, blocks] : per_mgr) {
      const auto bytes =
          static_cast<std::uint32_t>(32 + blocks.size() * 8);
      rpc_.call(c, mgr, kFlushed, bytes,
                FlushNotice{std::move(blocks), c}, [](std::any) {});
    }
    state.flushing = false;
    done();
  });
}

void Xfs::sync(net::NodeId client, Done done) {
  ClientState& cs = cstate(client);
  // Dirty blocks still in the cache are committed too: they stage for the
  // log and stay cached as clean copies (ownership is released when the
  // flush notice reaches their managers).
  for (const BlockId b : cs.dirty) {
    if (!cs.staged_set.contains(b)) {
      cs.staged.push_back(b);
      cs.staged_set.insert(b);
    }
  }
  cs.dirty.clear();
  if (cs.staged.empty() && !cs.flushing) {
    done();
    return;
  }
  flush_segment(client, [this, client, done = std::move(done)]() mutable {
    sync(client, std::move(done));
  });
}

void Xfs::clean(net::NodeId driver,
                std::function<void(std::uint32_t)> done) {
  const sim::SimTime t0 = engine().now();
  log_.clean(driver, params_.clean_threshold,
             [this, driver, t0, done = std::move(done)](std::uint32_t n) {
               if (n > 0) {
                 obs::tracer().complete(driver, obs_track_, "xfs.clean", t0,
                                        engine().now());
               }
               done(n);
             });
}

void Xfs::client_crashed(net::NodeId client) {
  for (auto& [mgr, map] : managers_) {
    for (auto it = map.begin(); it != map.end();) {
      BlockMeta& meta = it->second;
      meta.readers.erase(client);
      if (meta.owner == client) {
        meta.owner = net::kInvalidNode;
        // Whatever wasn't flushed is gone; readers will get the last
        // logged version (or zero fill).
        ++stats_.lost_dirty_blocks;
      }
      if (meta.owner == net::kInvalidNode && meta.readers.empty()) {
        it = map.erase(it);
      } else {
        ++it;
      }
    }
  }
  // The node's memory is gone.
  auto it = clients_.find(client);
  if (it != clients_.end()) {
    clients_.erase(it);
    clients_.emplace(client, ClientState(params_.client_cache_blocks));
  }
}

void Xfs::manager_takeover(net::NodeId failed, net::NodeId successor,
                           Done done) {
  ++stats_.manager_takeovers;
  obs_takeovers_->inc();
  obs::tracer().instant(successor, obs_track_, "manager_takeover");
  sim::LogStream(sim::LogLevel::kInfo, engine().now(), "xfs")
      << "manager takeover: node " << failed << " -> node " << successor;
  for (net::NodeId& m : ring_) {
    if (m == failed) m = successor;
  }
  managers_.erase(failed);  // its directory died with it
  recovering_.insert(successor);

  // Rebuild the directory from the survivors' reports.
  std::vector<net::NodeId> survivors;
  for (os::Node* n : nodes_) {
    if (n->id() != failed && n->alive()) survivors.push_back(n->id());
  }
  if (survivors.empty()) {
    recovering_.erase(successor);
    engine().schedule_in(0, [done = std::move(done)] {
      if (done) done();
    });
    return;
  }
  auto remaining = std::make_shared<std::size_t>(survivors.size());
  auto finish = [this, successor, remaining,
                 done = std::move(done)]() mutable {
    if (--*remaining > 0) return;
    recovering_.erase(successor);
    if (done) done();
  };
  for (const net::NodeId peer : survivors) {
    rpc_.call(successor, peer, kReport, 32, successor,
              [this, successor, peer, finish](std::any resp) mutable {
                const auto entries =
                    std::any_cast<std::vector<ReportEntry>>(resp);
                auto& map = mstate(successor);
                for (const ReportEntry& e : entries) {
                  BlockMeta& meta = map[e.block];
                  meta.readers.insert(peer);
                  if (e.dirty) meta.owner = peer;
                }
                finish();
              },
              params_.op_timeout, [finish]() mutable { finish(); });
  }
}

}  // namespace now::xfs
