#include "xfs/log.hpp"

#include <cassert>
#include <memory>

namespace now::xfs {

LogStore::LogStore(raid::Storage& storage,
                   std::uint32_t segment_blocks, std::uint32_t block_bytes)
    : storage_(storage), segment_blocks_(segment_blocks),
      block_bytes_(block_bytes),
      obs_segments_written_(
          &obs::metrics().counter("xfs.log.segments_written")),
      obs_segments_cleaned_(
          &obs::metrics().counter("xfs.log.segments_cleaned")),
      obs_blocks_read_(&obs::metrics().counter("xfs.log.blocks_read")),
      obs_util_(&obs::metrics().gauge("xfs.log.utilization")) {
  assert(segment_blocks_ > 0 && block_bytes_ > 0);
}

void LogStore::update_util_gauge() {
  if (!obs::enabled()) return;
  std::uint64_t live = 0;
  std::uint64_t allocated = 0;
  for (const Segment& seg : segments_) {
    if (seg.free || seg.on_tape) continue;
    live += seg.live_count;
    allocated += segment_blocks_;
  }
  obs_util_->set(allocated == 0 ? 0.0
                                : static_cast<double>(live) /
                                      static_cast<double>(allocated));
}

SegmentId LogStore::allocate_segment() {
  for (SegmentId s = 0; s < segments_.size(); ++s) {
    if (segments_[s].free) return s;
  }
  segments_.emplace_back();
  return static_cast<SegmentId>(segments_.size() - 1);
}

void LogStore::kill_old_copy(BlockId b) {
  const auto it = imap_.find(b);
  if (it == imap_.end()) return;
  Segment& seg = segments_[it->second.segment];
  // The old home may have been reclaimed by the cleaner already (its
  // survivors are being re-appended right now).
  if (seg.free || it->second.slot >= seg.live.size()) return;
  if (seg.live[it->second.slot]) {
    seg.live[it->second.slot] = false;
    assert(seg.live_count > 0);
    --seg.live_count;
    if (seg.live_count == 0) {
      seg.free = true;
      seg.blocks.clear();
      seg.live.clear();
    }
  }
}

void LogStore::append_segment(net::NodeId writer,
                              const std::vector<BlockId>& blocks,
                              Done done) {
  assert(!blocks.empty() &&
         blocks.size() <= static_cast<std::size_t>(segment_blocks_));
  const SegmentId s = allocate_segment();
  Segment& seg = segments_[s];
  seg.free = false;
  seg.on_tape = false;
  seg.blocks = blocks;
  seg.live.assign(blocks.size(), true);
  seg.live_count = static_cast<std::uint32_t>(blocks.size());
  for (std::uint32_t slot = 0; slot < blocks.size(); ++slot) {
    kill_old_copy(blocks[slot]);
    imap_[blocks[slot]] = Location{s, slot};
  }
  ++stats_.segments_written;
  stats_.blocks_appended += blocks.size();
  obs_segments_written_->inc();
  update_util_gauge();
  storage_.write(writer, segment_offset(s),
                 static_cast<std::uint32_t>(blocks.size()) * block_bytes_,
                 std::move(done));
}

void LogStore::read_block(net::NodeId reader, BlockId b, Done done) {
  const auto it = imap_.find(b);
  assert(it != imap_.end() && "read_block() on block not in the log");
  ++stats_.blocks_read;
  obs_blocks_read_->inc();
  const Segment& seg = segments_[it->second.segment];
  if (seg.on_tape) {
    assert(tape_ != nullptr);
    ++stats_.tape_reads;
    tape_->read(block_bytes_, std::move(done));
    return;
  }
  storage_.read(reader,
                segment_offset(it->second.segment) +
                    static_cast<std::uint64_t>(it->second.slot) *
                        block_bytes_,
                block_bytes_, std::move(done));
}

bool LogStore::on_tape(BlockId b) const {
  const auto it = imap_.find(b);
  if (it == imap_.end()) return false;
  return segments_[it->second.segment].on_tape;
}

std::vector<SegmentId> LogStore::archivable_segments() const {
  std::vector<SegmentId> v;
  for (SegmentId s = 0; s < segments_.size(); ++s) {
    const Segment& seg = segments_[s];
    if (!seg.free && !seg.on_tape && seg.live_count > 0) v.push_back(s);
  }
  return v;
}

void LogStore::archive_segment(net::NodeId driver, SegmentId s, Done done) {
  assert(tape_ != nullptr && "archive without a tape tier");
  assert(s < segments_.size());
  Segment& seg = segments_[s];
  assert(!seg.free && !seg.on_tape);
  ++stats_.segments_archived;
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(seg.live_count) * block_bytes_;
  // Stream off the RAID, then onto tape; the RAID space is then free for
  // fresh segments (the segment keeps its id, now tape-resident).
  storage_.read(driver, segment_offset(s), static_cast<std::uint32_t>(bytes),
                [this, s, bytes, done = std::move(done)]() mutable {
                  segments_[s].on_tape = true;
                  tape_->write(bytes, std::move(done));
                });
}

double LogStore::utilization(SegmentId s) const {
  if (s >= segments_.size() || segments_[s].free) return 0.0;
  return static_cast<double>(segments_[s].live_count) /
         static_cast<double>(segment_blocks_);
}

void LogStore::clean(net::NodeId driver, double threshold,
                     std::function<void(std::uint32_t)> done) {
  // Collect victims first: partially dead, below the threshold.
  std::vector<SegmentId> victims;
  for (SegmentId s = 0; s < segments_.size(); ++s) {
    const Segment& seg = segments_[s];
    if (seg.free || seg.on_tape || seg.live_count == 0) continue;
    if (utilization(s) <= threshold) victims.push_back(s);
  }
  if (victims.empty()) {
    done(0);
    return;
  }

  // Gather all live blocks from the victims.
  std::vector<BlockId> live_blocks;
  for (const SegmentId s : victims) {
    const Segment& seg = segments_[s];
    for (std::uint32_t slot = 0; slot < seg.blocks.size(); ++slot) {
      if (seg.live[slot]) live_blocks.push_back(seg.blocks[slot]);
    }
  }
  stats_.live_blocks_copied += live_blocks.size();
  stats_.segments_cleaned += victims.size();
  obs_segments_cleaned_->inc(victims.size());

  // Read each victim segment (its live data), then append the survivors to
  // fresh segments.  Reads are charged per victim segment.
  auto reads_left = std::make_shared<std::size_t>(victims.size());
  const auto ncleaned = static_cast<std::uint32_t>(victims.size());
  auto after_reads = [this, driver, live_blocks = std::move(live_blocks),
                      ncleaned, done = std::move(done)]() mutable {
    if (live_blocks.empty()) {
      done(ncleaned);
      return;
    }
    // Re-append survivors in segment-sized batches.
    auto batches = std::make_shared<std::vector<std::vector<BlockId>>>();
    for (std::size_t i = 0; i < live_blocks.size();
         i += segment_blocks_) {
      const std::size_t end =
          std::min(i + segment_blocks_, live_blocks.size());
      batches->emplace_back(live_blocks.begin() + i,
                            live_blocks.begin() + end);
    }
    auto writes_left = std::make_shared<std::size_t>(batches->size());
    for (const auto& batch : *batches) {
      append_segment(driver, batch,
                     [writes_left, ncleaned, done]() mutable {
                       if (--*writes_left == 0) done(ncleaned);
                     });
    }
  };
  for (const SegmentId s : victims) {
    const std::uint32_t bytes = segments_[s].live_count * block_bytes_;
    // Free the victim's bookkeeping now; the data is in flight to its new
    // home (crash-consistency of cleaning is out of scope here).
    Segment& seg = segments_[s];
    seg.free = true;
    seg.live_count = 0;
    seg.blocks.clear();
    seg.live.clear();
    storage_.read(driver, segment_offset(s), bytes,
                  [reads_left, after_reads]() mutable {
                    if (--*reads_left == 0) after_reads();
                  });
  }
  update_util_gauge();
}

}  // namespace now::xfs
