// The incumbent xFS replaces: a central-server network file system.
//
// "In most network file systems, a central server machine provides the
// abstraction of a single file system... Unfortunately, a central server
// design has performance, availability, and cost drawbacks.  Any
// centralized resource will become a bottleneck with enough users."
//
// This model is that incumbent: one server node owns the cache and the
// disk; every client miss is an RPC to it, every dirty block is written
// through to it, and when it dies the building's file service dies with
// it.  The xFS comparison bench sweeps client count against both designs.
//
// Lane discipline (partitioned runs): read()/write() must be called from
// the lane owning `client`, like any RPC issue.  Client cache state is
// per-client (lane-confined), server cache/disk state is only touched by
// server-lane RPC handlers, and the shared stats block is the one piece
// both sides write — it takes a spinlock, mirroring net::Network's stats.
// Local hits complete on the client's own lane engine, so a hit never
// schedules into another lane's queue.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>

#include "coopcache/lru.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/rpc.hpp"
#include "sim/spinlock.hpp"
#include "xfs/log.hpp"

namespace now::xfs {

inline constexpr proto::MethodId kCfsRead = 140;
inline constexpr proto::MethodId kCfsWrite = 141;

struct CentralFsParams {
  std::uint32_t block_bytes = 8192;
  std::uint32_t client_cache_blocks = 2048;
  /// Server memory cache (the one machine whose DRAM helps everybody).
  std::uint32_t server_cache_blocks = 16384;
};

struct CentralFsStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t server_mem_hits = 0;
  std::uint64_t server_disk_reads = 0;
  std::uint64_t failed_ops = 0;  // server down
  /// Times the server came back with an empty memory cache (see
  /// server_restarted()).  Every restart is a cold restart here — the
  /// incumbent has no peers to refill from, which is the point.
  std::uint64_t cold_restarts = 0;
};

/// A classic client/server network file system over the same RPC substrate
/// xFS uses, so the comparison isolates the architecture.
class CentralServerFs {
 public:
  using Done = std::function<void()>;

  /// `server` owns cache and disk; `clients` are everyone else.
  CentralServerFs(proto::RpcLayer& rpc, os::Node& server,
                  std::vector<os::Node*> clients, CentralFsParams params);
  CentralServerFs(const CentralServerFs&) = delete;
  CentralServerFs& operator=(const CentralServerFs&) = delete;

  void start();

  /// Reads block `b` on behalf of `client`: local cache, else server
  /// memory, else the server's disk.  `done(ok)` reports failure when the
  /// server is unreachable — the availability story in one bool.
  void read(net::NodeId client, BlockId b, std::function<void(bool)> done);

  /// Write-through to the server.
  void write(net::NodeId client, BlockId b, std::function<void(bool)> done);

  /// Installs blocks [0, n) in the server's memory cache, as if the
  /// working set had been read before the measurement window opened.
  /// Capacity benches call this to measure steady-state serving rather
  /// than the cold-start disk warmup (a 12.8 ms positioning cost per
  /// first touch would dominate a short horizon).  Call before start().
  void prewarm(BlockId n) {
    for (BlockId b = 0; b < n; ++b) server_cache_.insert(b);
  }

  /// Fault hooks, called by now::fault when the server node crashes and
  /// recovers.  A crash drops the server's in-memory cache — DRAM does not
  /// survive a power cycle — so the post-restart server serves every block
  /// from disk until the cache re-warms.  (Client caches survive: only the
  /// server machine died.)
  void server_crashed();
  void server_restarted();

  /// Snapshot of the running tallies.  Safe to call between runs or from
  /// the driving thread after the engine drains; during a partitioned run
  /// it is a consistent point-in-time copy.
  CentralFsStats stats() const {
    std::lock_guard<sim::SpinLock> g(stats_lock_);
    return stats_;
  }
  /// Fraction of issued operations that did NOT fail (1.0 before any op).
  /// This is the central server's availability story in one number — the
  /// xFS-vs-central comparison reports it on both sides.
  double availability() const;
  net::NodeId server_id() const { return server_.id(); }

 private:
  struct ClientState {
    ClientState(std::uint32_t cap, os::Node* n) : cache(cap), node(n) {}
    coopcache::LruCache cache;
    /// The client's own node — local hits complete on its lane engine.
    os::Node* node;
  };

  void install_server();
  ClientState& cstate(net::NodeId c) { return clients_.at(c); }
  void count(std::uint64_t CentralFsStats::* field) {
    std::lock_guard<sim::SpinLock> g(stats_lock_);
    ++(stats_.*field);
  }

  proto::RpcLayer& rpc_;
  os::Node& server_;
  CentralFsParams params_;
  std::unordered_map<net::NodeId, ClientState> clients_;
  coopcache::LruCache server_cache_;
  /// Blocks that exist on the server disk (written at least once).
  std::unordered_set<BlockId> on_disk_;
  /// Written from every client's lane; net::Network's stats pattern.
  mutable sim::SpinLock stats_lock_;
  CentralFsStats stats_;
  obs::Counter* obs_reads_;
  obs::Counter* obs_writes_;
  obs::Counter* obs_failed_ops_;
  obs::Counter* obs_cold_restarts_;
  obs::TrackId obs_track_;
};

}  // namespace now::xfs
