// The public face of the library: a Network Of Workstations in one object.
//
// Cluster wires the whole stack the paper argues for — commodity nodes, a
// switched low-latency fabric, Active-Message transport, RPC, and
// optionally GLUnix (global resource management), xFS (serverless file
// service on a software RAID), and the network-RAM registry — behind one
// configuration struct.  Examples and benches build on this instead of
// hand-assembling layers.
//
//   now::ClusterConfig cfg;
//   cfg.workstations = 100;            // the Berkeley prototype's scale
//   cfg.with_xfs = true;
//   now::Cluster now(cfg);
//   now.glunix().run_remote(...);      // use somebody's idle machine
//   now.fs().write(3, block, ...);     // serverless file service
//   now.run();
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exp/run_context.hpp"
#include "fault/fault.hpp"
#include "glunix/glunix.hpp"
#include "net/network.hpp"
#include "net/presets.hpp"
#include "net/topology.hpp"
#include "netram/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "os/node.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "proto/rpc.hpp"
#include "raid/raid.hpp"
#include "raid/stripe_groups.hpp"
#include "sim/engine.hpp"
#include "sim/parallel_engine.hpp"
#include "xfs/xfs.hpp"

namespace now {

enum class Fabric {
  kEthernet,
  kAtm,
  kFddiMedusa,
  kMyrinet,
  /// Building-scale hierarchical fat tree: racks under edge switches,
  /// spine trunks with a configurable oversubscription ratio.  Shape comes
  /// from ClusterConfig::building (see net::building_now).
  kBuildingNow,
};

/// Where a node's events execute in a multi-threaded run.
enum class Partitioning {
  /// Everything runs on the cluster's own engine — the serial path,
  /// regardless of `threads`.  Always byte-identical to a 1-thread run;
  /// the only safe choice when nodes share state outside the simulated
  /// network (cluster services, external driver objects).
  kAllGlobal,
  /// Each node's events run on its partition lane; cross-node interaction
  /// flows through the network's conservative-lookahead machinery.
  /// Requires a switched fabric (positive one-way latency), no shared
  /// cluster services (glunix/xfs/netram), and no AM loss injection.
  kNodeLocal,
};

struct ClusterConfig {
  std::uint32_t workstations = 32;
  Fabric fabric = Fabric::kAtm;
  /// Tree shape + per-link physics for Fabric::kBuildingNow (ignored by
  /// the flat fabrics).  Default: racks of 32 on Myrinet-class links, 4:1
  /// oversubscribed — override with net::building_now(...).
  net::HierarchicalParams building = net::building_now(32, 32, 4.0);
  /// Template for every node; per-node CPU seeds are derived from it so
  /// local schedulers do not run in lockstep.
  os::NodeParams node;
  proto::AmParams am;

  bool with_glunix = true;
  glunix::GlunixParams glunix;

  /// xFS + the software RAID + log-structured storage over all members.
  bool with_xfs = false;
  xfs::XfsParams xfs;
  raid::RaidParams raid;
  /// Storage servers per stripe group (xFS-style).  Log segments stripe
  /// within one group, so segment-sized appends are full-stripe writes
  /// even in a 100-node building.  0 = one RAID spanning every member.
  std::size_t stripe_group_size = 8;

  /// Idle-memory registry for network RAM (donors managed by the caller).
  bool with_netram_registry = false;

  /// Failure schedule applied at construction (scripted events and/or
  /// seeded stochastic churn — see src/fault).  Empty = nothing breaks.
  fault::FaultPlan fault_plan;
  /// Recovery policy for injected failures (auto manager takeover,
  /// background RAID rebuild).
  fault::FaultPolicy fault_policy;

  std::uint64_t seed = 1;

  /// Worker threads for intra-run parallel execution.  Takes effect only
  /// with partitioning = kNodeLocal; clamped to the workstation count and
  /// to the run context's thread_budget (when part of a sweep).  1 = the
  /// serial engine, byte-identical to every release so far.
  unsigned threads = 1;
  Partitioning partitioning = Partitioning::kAllGlobal;
  /// Epoch-width multiplier for partitioned runs (>= 1.0).  1.0 is strict
  /// conservative execution — results independent of the thread count.
  /// Larger values trade that guarantee for fewer barriers (DARSIM-style);
  /// see DESIGN.md §12 before touching it.
  double relaxed_sync = 1.0;

  /// This run's isolation context, when the cluster is one task of a
  /// parallel sweep (exp::run_sweep sets it up).  When non-null, the
  /// cluster seeds itself from run->seed (overriding `seed`) and expects
  /// the context to be installed on the constructing thread — the
  /// constructor's obs::tracer()/obs::metrics() calls then resolve to the
  /// run's private instances, so concurrent Clusters share no mutable
  /// state.  Construct, drive, and destroy the cluster on that thread.
  exp::RunContext* run = nullptr;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  sim::Engine& engine() { return engine_; }
  os::Node& node(std::uint32_t i) { return *nodes_.at(i); }
  std::vector<os::Node*> node_ptrs();

  net::Network& network() { return *network_; }
  proto::NicMux& mux() { return *mux_; }
  proto::AmLayer& am() { return *am_; }
  proto::RpcLayer& rpc() { return *rpc_; }

  /// Requires with_glunix.
  glunix::Glunix& glunix() { return *glunix_; }
  /// Require with_xfs.
  xfs::Xfs& fs() { return *xfs_; }
  /// The storage backend behind the log (single RAID or stripe groups).
  raid::Storage& storage_backend() { return *storage_; }
  /// Uniform stats/health over either backend.
  raid::RaidStats storage_stats() const;
  bool storage_degraded() const;
  xfs::LogStore& log() { return *log_; }
  /// Requires with_netram_registry.
  netram::IdleMemoryRegistry& memory_registry() { return *registry_; }
  /// Fault injection over every enabled subsystem.  Always available;
  /// config.fault_plan is applied through it at construction.
  fault::FaultInjector& faults() { return *faults_; }

  // --- Observability ---------------------------------------------------
  /// The metrics registry every subsystem reports into: the run context's
  /// private registry when this cluster is a sweep task, else the
  /// process-wide default.
  obs::MetricsRegistry& metrics() {
    return config_.run != nullptr ? config_.run->metrics : obs::metrics();
  }
  /// Starts recording spans/instants into the trace ring buffer
  /// (`capacity` events; oldest are overwritten when it fills).
  void enable_tracing(std::size_t capacity = 1u << 20) {
    (config_.run != nullptr ? config_.run->tracer : obs::tracer())
        .enable(capacity);
  }
  /// Writes everything recorded so far as Chrome trace-event JSON —
  /// load the file in Perfetto (ui.perfetto.dev) or chrome://tracing.
  bool trace_to(const std::string& path) {
    return (config_.run != nullptr ? config_.run->tracer : obs::tracer())
        .export_chrome_json(path);
  }

  /// Drives the simulation — through the partitioned runner when one was
  /// configured, else the serial engine.
  void run() {
    if (pe_) {
      pe_->run();
    } else {
      engine_.run();
    }
  }
  void run_for(sim::Duration d) { run_until(engine_.now() + d); }
  void run_until(sim::SimTime t) {
    if (pe_) {
      pe_->run_until(t);
    } else {
      engine_.run_until(t);
    }
  }

  /// Lanes actually executing this cluster: 1 serially, the (possibly
  /// clamped) thread count under kNodeLocal partitioning.
  unsigned effective_threads() const { return pe_ ? pe_->lanes() : 1; }
  /// The partitioned runner, when one was configured (epoch/message
  /// counters for tests and benches).
  sim::ParallelEngine* parallel_engine() { return pe_.get(); }

  /// Crashes workstation `i` and propagates the failure to every enabled
  /// subsystem (RAID membership, xFS directory, network-RAM registry).
  /// GLUnix notices on its own, through heartbeats.
  void crash_node(std::uint32_t i);

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
  sim::Engine engine_;
  std::unique_ptr<sim::ParallelEngine> pe_;  // kNodeLocal && threads > 1
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<proto::NicMux> mux_;
  std::unique_ptr<proto::AmLayer> am_;
  std::unique_ptr<proto::RpcLayer> rpc_;
  std::vector<std::unique_ptr<os::Node>> nodes_;
  std::unique_ptr<glunix::Glunix> glunix_;
  std::unique_ptr<raid::SoftwareRaid> raid_;          // single-group mode
  std::unique_ptr<raid::StripeGroupArray> groups_;    // grouped mode
  raid::Storage* storage_ = nullptr;
  std::unique_ptr<xfs::LogStore> log_;
  std::unique_ptr<xfs::Xfs> xfs_;
  std::unique_ptr<netram::IdleMemoryRegistry> registry_;
  std::unique_ptr<fault::FaultInjector> faults_;
};

}  // namespace now
