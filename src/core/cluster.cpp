#include "core/cluster.hpp"

#include <algorithm>
#include <cassert>

#include "net/hierarchical.hpp"
#include "net/presets.hpp"
#include "net/shared_bus.hpp"
#include "net/switched.hpp"
#include "netram/pager.hpp"

namespace now {

namespace {
std::unique_ptr<net::Network> make_fabric(sim::Engine& engine,
                                          const ClusterConfig& cfg) {
  switch (cfg.fabric) {
    case Fabric::kEthernet:
      return std::make_unique<net::SharedBusNetwork>(
          engine, net::ethernet_10mbps(), cfg.seed);
    case Fabric::kAtm:
      return std::make_unique<net::SwitchedNetwork>(engine,
                                                    net::atm_155mbps());
    case Fabric::kFddiMedusa:
      return std::make_unique<net::SwitchedNetwork>(engine,
                                                    net::fddi_medusa());
    case Fabric::kMyrinet:
      return std::make_unique<net::SwitchedNetwork>(engine, net::myrinet());
    case Fabric::kBuildingNow:
      return std::make_unique<net::HierarchicalNetwork>(engine,
                                                        cfg.building);
  }
  return nullptr;
}
}  // namespace

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  assert(config_.workstations >= 2);
  if (config_.run != nullptr) {
    assert(exp::current_context() == config_.run &&
           "ClusterConfig::run must be installed on the constructing "
           "thread (exp::ScopedRunContext / exp::run_sweep)");
    config_.seed = config_.run->seed;
  }
  // Trace timestamps follow this cluster's simulated clock.  Inside a run
  // context this binds the run's private tracer, not the process one.
  obs::tracer().set_clock(&engine_);
  network_ = make_fabric(engine_, config_);
  mux_ = std::make_unique<proto::NicMux>(*network_);
  am_ = std::make_unique<proto::AmLayer>(*mux_, config_.am, config_.seed);
  rpc_ = std::make_unique<proto::RpcLayer>(*am_);

  // Partitioned execution (opt-in): each node's events run on a lane of a
  // ParallelEngine instead of the cluster engine.  Only workloads whose
  // nodes interact exclusively through the network qualify — the asserts
  // spell the contract out; release builds fall back to serial if it does
  // not hold rather than race.
  unsigned threads = config_.threads == 0 ? 1 : config_.threads;
  if (config_.run != nullptr && config_.run->thread_budget > 0) {
    threads = std::min(threads, config_.run->thread_budget);
  }
  threads = std::min(threads, config_.workstations);
  if (config_.partitioning == Partitioning::kNodeLocal && threads > 1) {
    const sim::Duration lookahead = network_->min_latency();
    assert(lookahead > 0 &&
           "kNodeLocal needs a switched fabric: shared media (kEthernet) "
           "have zero safe lookahead");
    assert(!config_.with_glunix && !config_.with_xfs &&
           !config_.with_netram_registry &&
           "kNodeLocal requires a partition-clean workload: cluster "
           "services touch many nodes' state per event");
    assert(config_.am.loss_probability == 0.0 &&
           "AM loss injection draws from one RNG shared across lanes");
    const bool clean = lookahead > 0 && !config_.with_glunix &&
                       !config_.with_xfs && !config_.with_netram_registry &&
                       config_.am.loss_probability == 0.0;
    if (clean) {
      sim::ParallelConfig pc;
      pc.threads = threads;
      pc.nodes = config_.workstations;
      pc.lookahead = lookahead;
      pc.relaxed_sync = config_.relaxed_sync;
      if (config_.fabric == Fabric::kBuildingNow) {
        // Align lane boundaries to edge switches: a rack never spans two
        // lanes, so the whole rack-local event stream (the lookahead is
        // exactly one edge hop) runs inside each epoch without a barrier.
        pc.align = config_.building.topo.nodes_per_rack;
      }
      // Workers must resolve obs::metrics()/obs::tracer()/NOW_LOG to the
      // same instances as the constructing thread (which may be inside a
      // sweep's ScopedRunContext), so capture the ambient bindings now and
      // install them on every lane.
      obs::MetricsRegistry* m = &obs::metrics();
      obs::Tracer* tr = &obs::tracer();
      sim::LogConfig* lg =
          config_.run != nullptr ? &config_.run->log : nullptr;
      pc.worker_init = [m, tr, lg] {
        obs::set_thread_metrics(m);
        obs::set_thread_tracer(tr);
        if (lg != nullptr) sim::set_thread_log_config(lg);
      };
      pe_ = std::make_unique<sim::ParallelEngine>(engine_, pc);
    }
  }

  for (std::uint32_t i = 0; i < config_.workstations; ++i) {
    os::NodeParams p = config_.node;
    if (p.cpu.seed == 0) p.cpu.seed = config_.seed * 1000 + i + 1;
    sim::Engine& node_engine = pe_ ? pe_->engine_for(i) : engine_;
    nodes_.push_back(std::make_unique<os::Node>(node_engine, i, p));
    mux_->attach_node(*nodes_.back());
    rpc_->bind(*nodes_.back());
  }
  // After every node is attached, so backends pre-size per-node state.
  if (pe_) network_->set_domain(pe_.get());

  if (config_.with_glunix) {
    glunix_ = std::make_unique<glunix::Glunix>(*rpc_, node_ptrs(),
                                               config_.glunix);
    glunix_->start();
  }

  if (config_.with_xfs) {
    for (auto& n : nodes_) raid::install_storage_service(*rpc_, *n);
    raid::RaidParams rp = config_.raid;
    rp.stripe_unit = config_.xfs.block_bytes;
    const std::size_t g = config_.stripe_group_size;
    if (g >= 2 && nodes_.size() >= 2 * g) {
      // xFS-style stripe groups: one group per log segment band.
      const std::uint64_t band =
          static_cast<std::uint64_t>(config_.xfs.segment_blocks) *
          config_.xfs.block_bytes;
      groups_ = std::make_unique<raid::StripeGroupArray>(
          *rpc_, node_ptrs(), rp, g, band);
      storage_ = groups_.get();
    } else {
      raid_ = std::make_unique<raid::SoftwareRaid>(*rpc_, node_ptrs(), rp);
      storage_ = raid_.get();
    }
    log_ = std::make_unique<xfs::LogStore>(*storage_,
                                           config_.xfs.segment_blocks,
                                           config_.xfs.block_bytes);
    xfs_ = std::make_unique<xfs::Xfs>(*rpc_, *log_, node_ptrs(),
                                      config_.xfs);
    xfs_->start();
  }

  if (config_.with_netram_registry) {
    registry_ = std::make_unique<netram::IdleMemoryRegistry>();
    for (auto& n : nodes_) {
      netram::install_donor_service(*rpc_, *n);
    }
  }

  // Fault injection sits above everything else: it only drives the
  // reaction paths the subsystems already expose.
  fault::FaultTargets targets;
  targets.engine = &engine_;
  targets.nodes = node_ptrs();
  targets.network = network_.get();
  targets.storage = storage_;
  targets.xfs = xfs_.get();
  targets.registry = registry_.get();
  faults_ = std::make_unique<fault::FaultInjector>(
      std::move(targets), config_.seed, config_.fault_policy);
  if (!config_.fault_plan.empty()) faults_->apply(config_.fault_plan);
}

Cluster::~Cluster() = default;

std::vector<os::Node*> Cluster::node_ptrs() {
  std::vector<os::Node*> v;
  v.reserve(nodes_.size());
  for (auto& n : nodes_) v.push_back(n.get());
  return v;
}

raid::RaidStats Cluster::storage_stats() const {
  if (groups_) return groups_->stats();
  if (raid_) return raid_->stats();
  return raid::RaidStats{};
}

bool Cluster::storage_degraded() const {
  return storage_ != nullptr && storage_->degraded();
}

void Cluster::crash_node(std::uint32_t i) {
  os::Node& n = node(i);
  n.crash();
  if (storage_ != nullptr) storage_->member_failed(n.id());
  if (xfs_) xfs_->client_crashed(n.id());
  if (registry_) registry_->donor_crashed(n.id());
  // GLUnix discovers the death through missed heartbeats, as it would in
  // the real system.  Manager takeover stays with the caller (or with
  // FaultInjector::crash_node, whose policy arranges it automatically).
}

}  // namespace now
