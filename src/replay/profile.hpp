// now::replay — streaming trace profiler.
//
// One pass over a trace file (O(window) reader memory plus O(distinct
// blocks) for the popularity table) yielding the distributions the
// synthetic generators claim to model: op mix, transfer-size mean,
// inter-arrival quantiles, and a fitted Zipf popularity exponent.  The
// profiler is how we cross-validate `generate_fs_trace` against a
// replayed recording — same numbers, side by side, in EXPERIMENTS.md.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "replay/cursor.hpp"

namespace now::replay {

inline constexpr std::size_t kNfsOpCount =
    static_cast<std::size_t>(NfsOp::kSymlink) + 1;

struct TraceProfile {
  TraceFormat format = TraceFormat::kFs;
  std::uint64_t records = 0;
  std::uint64_t reads = 0;   // after the op table: non-mutating accesses
  std::uint64_t writes = 0;  // mutating accesses
  std::uint64_t data_ops = 0;  // NFS read/write/commit; for fs, == records
  std::uint64_t meta_ops = 0;  // NFS metadata ops; 0 for fs traces
  std::uint32_t clients = 0;
  std::uint64_t distinct_blocks = 0;
  sim::SimTime first_at = 0;
  sim::SimTime last_at = 0;

  // Inter-arrival gaps between consecutive records, microseconds.
  // Quantiles come from a 64-bucket log2 histogram: exact counts, bucket-
  // resolution values (each estimate is the bucket's lower edge).
  double mean_gap_us = 0;
  double gap_p50_us = 0;
  double gap_p90_us = 0;
  double gap_p99_us = 0;

  // Block popularity: least-squares fit of ln(freq) vs ln(rank) over the
  // most popular blocks — the Zipf exponent the synthetic generators take
  // as a parameter.
  double zipf_s = 0;
  double top1_share = 0;   // fraction of accesses to the hottest block
  double top10_share = 0;  // ... to the ten hottest

  // NFS only: per-op counts (indexed by NfsOp) and mean transfer size of
  // data ops.  All zero for native fs traces.
  std::array<std::uint64_t, kNfsOpCount> op_counts{};
  double mean_data_bytes = 0;
};

/// Profiles the trace at `path` (format auto-detected) in one streaming
/// pass.  NFS traces are profiled on raw records — op mix and sizes — with
/// block popularity computed through `map`, the same mapping replay uses.
TraceProfile profile_trace(const std::string& path, CursorOptions opt = {},
                           NfsMapParams map = {});

/// Renders the profile as aligned `key value` lines (one per field) for
/// tools and EXPERIMENTS.md tables.
std::string format_profile(const TraceProfile& p);

}  // namespace now::replay
