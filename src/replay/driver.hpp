// now::replay — replay drivers: recorded request streams onto a live
// simulation.
//
// A trace fixes *what* happened; a driver decides *when* to re-offer it:
//
//   * OpenLoopReplay   — as recorded.  Each record is scheduled at its
//                        recorded timestamp divided by `time_scale`
//                        (scale 2 replays the trace twice as fast), and
//                        arrivals never wait for completions — exactly the
//                        open-arrival discipline of now::serve, but with
//                        the schedule read from disk instead of drawn from
//                        a Poisson stream.  If the simulation falls behind
//                        (a record's instant is already past when its
//                        predecessor finishes scheduling), the record
//                        fires immediately and is counted in stats().late.
//   * ClosedLoopReplay — as fast as possible.  `concurrency` records are
//                        outstanding at any instant; each completion pulls
//                        the next record.  Timestamps are ignored — this
//                        measures the backend's capacity on the recorded
//                        access pattern, the hornet-style "retire the
//                        trace" mode.
//
// Both drivers pull lazily from a TraceCursor: one pending engine event
// and O(window) reader state however long the trace, so replay memory is
// flat.  Neither driver owns the cursor or the issue function's backend —
// both must outlive the run.
#pragma once

#include <cstdint>
#include <functional>

#include "replay/cursor.hpp"
#include "sim/engine.hpp"

namespace now::replay {

struct ReplayStats {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  /// Open loop only: records whose scaled instant had already passed when
  /// they came up (the simulation could not keep pace with the recording).
  std::uint64_t late = 0;
};

/// Called once per record; the driver's `done` must be invoked exactly
/// once when the simulated operation completes.
using IssueFn =
    std::function<void(const trace::FsAccess&, std::function<void()> done)>;

class OpenLoopReplay {
 public:
  /// `time_scale` > 1 compresses recorded time (2 = twice as fast); must
  /// be > 0.
  OpenLoopReplay(sim::Engine& engine, TraceCursor& cursor, double time_scale,
                 IssueFn issue);
  OpenLoopReplay(const OpenLoopReplay&) = delete;
  OpenLoopReplay& operator=(const OpenLoopReplay&) = delete;

  /// Schedules the first record; call once, then run the engine.
  void start();

  const ReplayStats& stats() const { return stats_; }

 private:
  void arm();

  sim::Engine& engine_;
  TraceCursor& cursor_;
  double scale_;
  IssueFn issue_;
  ReplayStats stats_;
};

class ClosedLoopReplay {
 public:
  /// `concurrency` requests stay outstanding until the trace drains.
  ClosedLoopReplay(sim::Engine& engine, TraceCursor& cursor,
                   unsigned concurrency, IssueFn issue);
  ClosedLoopReplay(const ClosedLoopReplay&) = delete;
  ClosedLoopReplay& operator=(const ClosedLoopReplay&) = delete;

  /// Issues the first `concurrency` records; call once, then run the
  /// engine.
  void start();

  const ReplayStats& stats() const { return stats_; }

 private:
  void pump();

  sim::Engine& engine_;
  TraceCursor& cursor_;
  unsigned concurrency_;
  IssueFn issue_;
  ReplayStats stats_;
};

}  // namespace now::replay
