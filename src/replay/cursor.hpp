// now::replay — streaming trace ingestion: bounded-memory line cursors and
// format adapters that turn recorded request streams into the simulator's
// native records.
//
// The paper's Table 3 and its NFS analysis argue from *recorded*
// workstation traffic (the two-day Berkeley trace, a live departmental NFS
// server); everything in this repo so far replays synthetic generators.
// This module is the ingestion half of the replay frontend:
//
//   * LineCursor        — chunked, pull-based line reader over any istream.
//                         One fixed window buffer, allocated once and never
//                         grown, so a multi-GB trace replays with O(window)
//                         memory; a line longer than the window is a hard
//                         parse error (with its line number), not a silent
//                         reallocation.  Peak memory == window_bytes(),
//                         asserted by tests.
//   * TraceCursor       — the pull interface every replay consumer takes:
//                         next() yields trace::FsAccess records until EOF.
//   * FsTraceCursor     — the repo's native fs format
//                         (`<time_us> <client> <block> <r|w>`).
//   * NfsTraceCursor    — SNIA nfsdump-style text
//                         (`<time_sec> <client> <op> <fh> <offset> <bytes>`),
//                         yielding raw NfsRecords; client and file-handle
//                         tokens are mapped first-seen to dense ids (that
//                         dictionary is O(distinct entities), the only
//                         state beyond the window).
//   * NfsFsCursor       — NfsTraceCursor + the documented op -> access
//                         table, yielding FsAccess for block-level
//                         consumers (coopcache, xFS, serving):
//
//       NFS op                                  access      block
//       read / commit                           read        fh*bpf + off/bs
//       write                                   write       fh*bpf + off/bs
//       getattr lookup access readdir           read        fh*bpf (inode)
//         readlink fsstat
//       setattr create remove rename mkdir      write       fh*bpf (inode)
//         rmdir link symlink
//
//     (bpf = blocks_per_file, bs = block_bytes; offsets past the per-file
//     span clamp to the last block.)
//
//   * ParallelJobCursor / UsageIntervalCursor — the other native line
//     formats, so trace_io's materializing readers are thin wrappers over
//     the same streaming core.
//
// Every parse error cites the offending 1-based line number; timestamped
// formats reject out-of-order records (a recorded stream is a schedule —
// replaying one out of order would silently reorder the simulation).
// Cursors are pure functions of their input bytes: two cursors over the
// same stream yield identical records, which is what keeps trace-driven
// benches byte-identical across --jobs and --threads.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/fs_trace.hpp"
#include "trace/parallel_trace.hpp"
#include "trace/usage_trace.hpp"

namespace now::replay {

/// Chunked line reader: one window-sized buffer, refilled in place.  Yields
/// content lines (blank lines and '#' comments skipped) as string_views
/// into the buffer, valid until the next call.  Memory is exactly the
/// window, allocated at construction and never grown; a line longer than
/// the window throws with its line number.
class LineCursor {
 public:
  static constexpr std::size_t kDefaultWindow = 64 * 1024;

  explicit LineCursor(std::istream& in,
                      std::size_t window_bytes = kDefaultWindow);

  /// Next content line, stripped of a trailing '\r'; nullopt at EOF.
  std::optional<std::string_view> next();

  /// 1-based line number of the last line next() returned.
  std::size_t line_number() const { return lineno_; }

  /// The fixed buffer size — the reader's entire memory footprint.
  std::size_t window_bytes() const { return buf_.size(); }

  /// Total raw bytes consumed from the stream so far.
  std::uint64_t bytes_read() const { return bytes_read_; }

 private:
  void fill();

  std::istream& in_;
  std::vector<char> buf_;
  std::size_t begin_ = 0;  // valid bytes are [begin_, end_)
  std::size_t end_ = 0;
  std::size_t lineno_ = 0;
  std::uint64_t bytes_read_ = 0;
  bool eof_ = false;
};

/// Options shared by the record cursors.
struct CursorOptions {
  std::size_t window_bytes = LineCursor::kDefaultWindow;
  /// Reject records whose timestamp precedes the previous record's.
  bool enforce_monotonic = true;
};

/// Pull interface for a stream of file-system accesses — what every replay
/// consumer (drivers, benches, ServeWorkload) programs against.
class TraceCursor {
 public:
  virtual ~TraceCursor() = default;
  /// Next record, in trace order; nullopt once the trace is exhausted.
  /// Throws std::runtime_error (citing the line) on malformed input.
  virtual std::optional<trace::FsAccess> next() = 0;
};

/// Native fs format: `<time_us> <client> <block> <r|w>`.
class FsTraceCursor : public TraceCursor {
 public:
  explicit FsTraceCursor(std::istream& in, CursorOptions opt = {});

  std::optional<trace::FsAccess> next() override;

  std::uint64_t records() const { return records_; }
  std::size_t window_bytes() const { return lines_.window_bytes(); }

 private:
  LineCursor lines_;
  CursorOptions opt_;
  sim::SimTime last_ = 0;
  std::uint64_t records_ = 0;
};

// --- NFS (SNIA nfsdump-style text) -------------------------------------

enum class NfsOp : std::uint8_t {
  kRead,
  kWrite,
  kCommit,
  kGetattr,
  kSetattr,
  kLookup,
  kAccess,
  kReaddir,
  kReadlink,
  kFsstat,
  kCreate,
  kRemove,
  kRename,
  kMkdir,
  kRmdir,
  kLink,
  kSymlink,
};

const char* to_string(NfsOp op);
/// True for ops that mutate server state (the write column of the table).
bool nfs_op_is_write(NfsOp op);
/// True for read/write/commit — ops that move file data, not metadata.
bool nfs_op_is_data(NfsOp op);

/// One parsed nfsdump-style record.  `client` and `fh` are dense ids
/// assigned in first-appearance order (deterministic for a given file).
struct NfsRecord {
  sim::SimTime at = 0;
  std::uint32_t client = 0;
  NfsOp op = NfsOp::kGetattr;
  std::uint64_t fh = 0;
  std::uint64_t offset = 0;
  std::uint32_t bytes = 0;
};

/// Parses `<time_sec> <client> <op> <fh> <offset> <bytes>` lines, e.g.
/// `12.048310 ws04 read fh01a2 40960 8192`.  Client/fh may be any
/// whitespace-free token (hostname, IP, hex handle).
class NfsTraceCursor {
 public:
  explicit NfsTraceCursor(std::istream& in, CursorOptions opt = {});

  std::optional<NfsRecord> next();

  std::uint64_t records() const { return records_; }
  std::uint32_t distinct_clients() const {
    return static_cast<std::uint32_t>(clients_.size());
  }
  std::uint64_t distinct_fhs() const { return fhs_.size(); }
  std::size_t window_bytes() const { return lines_.window_bytes(); }

 private:
  LineCursor lines_;
  CursorOptions opt_;
  sim::SimTime last_ = 0;
  std::uint64_t records_ = 0;
  std::unordered_map<std::string, std::uint32_t> clients_;
  std::unordered_map<std::string, std::uint64_t> fhs_;
};

/// How NFS (fh, offset) pairs map onto the simulator's flat block space.
struct NfsMapParams {
  std::uint32_t block_bytes = 8192;     // Table 3's 8 KB blocks
  std::uint32_t blocks_per_file = 256;  // 2 MB span per file handle
};

/// NfsTraceCursor adapted to the TraceCursor interface via the op table in
/// the header comment.
class NfsFsCursor : public TraceCursor {
 public:
  explicit NfsFsCursor(std::istream& in, CursorOptions opt = {},
                       NfsMapParams map = {});

  std::optional<trace::FsAccess> next() override;

  const NfsTraceCursor& nfs() const { return nfs_; }

 private:
  NfsTraceCursor nfs_;
  NfsMapParams map_;
};

// --- Other native formats (streaming cores for trace_io) ----------------

/// Parallel-job format: `<arrival_us> <width> <work_us> <p|d>`.
class ParallelJobCursor {
 public:
  explicit ParallelJobCursor(std::istream& in, CursorOptions opt = {});
  std::optional<trace::ParallelJob> next();

 private:
  LineCursor lines_;
  CursorOptions opt_;
  sim::SimTime last_ = 0;
};

/// Busy-interval format: `<node> <begin_us> <end_us>`.
class UsageIntervalCursor {
 public:
  struct Row {
    std::uint32_t node = 0;
    trace::BusyInterval interval;
  };
  explicit UsageIntervalCursor(std::istream& in, CursorOptions opt = {});
  std::optional<Row> next();

 private:
  LineCursor lines_;
};

// --- File-level helpers --------------------------------------------------

enum class TraceFormat : std::uint8_t { kFs, kNfs };

const char* to_string(TraceFormat f);

/// Sniffs the format from the first content line: 4 fields ending in r|w
/// is the native fs format, 6 fields is nfsdump-style.  Throws when the
/// file is missing, empty, or neither shape.
TraceFormat detect_format(const std::string& path);

/// Opens `path`, detects its format, and returns a cursor that owns the
/// file handle — O(window) memory however large the file.  NFS traces are
/// adapted through NfsFsCursor with `map`.
std::unique_ptr<TraceCursor> open_trace(const std::string& path,
                                        CursorOptions opt = {},
                                        NfsMapParams map = {});

/// Filters an owned cursor to records with client % modulo == residue and
/// rewrites their client to `residue` — one replay client's private view
/// of a shared trace.  Each instance owns an independent file handle, so
/// lane-partitioned consumers never share reader state.
class ClientStrideCursor : public TraceCursor {
 public:
  ClientStrideCursor(std::unique_ptr<TraceCursor> inner, std::uint32_t modulo,
                     std::uint32_t residue);
  std::optional<trace::FsAccess> next() override;

 private:
  std::unique_ptr<TraceCursor> inner_;
  std::uint32_t modulo_;
  std::uint32_t residue_;
};

/// One cheap streaming pass over a trace file: record count, client-id
/// bound, and the recorded time span — what benches need before replaying
/// (warm-up index, cluster sizing, horizon).
struct TraceSummary {
  TraceFormat format = TraceFormat::kFs;
  std::uint64_t records = 0;
  /// Max client id + 1 (dense for NFS traces by construction).
  std::uint32_t clients = 0;
  sim::SimTime first_at = 0;
  sim::SimTime last_at = 0;
};

TraceSummary summarize(const std::string& path, CursorOptions opt = {},
                       NfsMapParams map = {});

}  // namespace now::replay
