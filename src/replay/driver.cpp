#include "replay/driver.hpp"

#include <cassert>
#include <utility>

namespace now::replay {

OpenLoopReplay::OpenLoopReplay(sim::Engine& engine, TraceCursor& cursor,
                               double time_scale, IssueFn issue)
    : engine_(engine), cursor_(cursor), scale_(time_scale),
      issue_(std::move(issue)) {
  assert(scale_ > 0 && "time_scale must be positive");
}

void OpenLoopReplay::start() { arm(); }

void OpenLoopReplay::arm() {
  const auto rec = cursor_.next();
  if (!rec) return;
  sim::SimTime at =
      scale_ == 1.0
          ? rec->at
          : static_cast<sim::SimTime>(static_cast<double>(rec->at) / scale_);
  if (at < engine_.now()) {
    at = engine_.now();
    ++stats_.late;
  }
  engine_.schedule_at(at, [this, r = *rec] {
    ++stats_.issued;
    issue_(r, [this] { ++stats_.completed; });
    // Pull the successor only after this arrival fired: timestamps are
    // monotonic, so one pending event is enough and queue depth stays O(1).
    arm();
  });
}

ClosedLoopReplay::ClosedLoopReplay(sim::Engine& engine, TraceCursor& cursor,
                                   unsigned concurrency, IssueFn issue)
    : engine_(engine), cursor_(cursor),
      concurrency_(concurrency > 0 ? concurrency : 1),
      issue_(std::move(issue)) {}

void ClosedLoopReplay::start() {
  // Stagger the initial window through the engine so backends see the
  // records in trace order even at identical issue instants.
  for (unsigned i = 0; i < concurrency_; ++i) {
    engine_.schedule_at(engine_.now(), [this] { pump(); });
  }
}

void ClosedLoopReplay::pump() {
  const auto rec = cursor_.next();
  if (!rec) return;
  ++stats_.issued;
  issue_(*rec, [this] {
    ++stats_.completed;
    pump();
  });
}

}  // namespace now::replay
