#include "replay/cursor.hpp"

#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <stdexcept>

namespace now::replay {

namespace {

[[noreturn]] void bad_line(const std::string& what, std::size_t lineno) {
  throw std::runtime_error("trace parse error (" + what + ") at line " +
                           std::to_string(lineno));
}

/// Splits on runs of spaces/tabs; returns the field count (capped at max).
std::size_t split(std::string_view line, std::string_view* out,
                  std::size_t max) {
  std::size_t n = 0;
  std::size_t i = 0;
  while (i < line.size() && n < max) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size()) break;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    out[n++] = line.substr(start, i - start);
  }
  // Trailing garbage beyond `max` fields still counts as a field so the
  // caller can reject it.
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i < line.size() && n == max) ++n;
  return n;
}

bool parse_f64(std::string_view s, double* out) {
  const auto r = std::from_chars(s.data(), s.data() + s.size(), *out);
  return r.ec == std::errc{} && r.ptr == s.data() + s.size();
}

template <typename T>
bool parse_uint(std::string_view s, T* out) {
  const auto r = std::from_chars(s.data(), s.data() + s.size(), *out);
  return r.ec == std::errc{} && r.ptr == s.data() + s.size();
}

}  // namespace

// --- LineCursor ----------------------------------------------------------

LineCursor::LineCursor(std::istream& in, std::size_t window_bytes)
    : in_(in), buf_(window_bytes > 0 ? window_bytes : 1) {}

void LineCursor::fill() {
  if (begin_ > 0) {
    std::memmove(buf_.data(), buf_.data() + begin_, end_ - begin_);
    end_ -= begin_;
    begin_ = 0;
  }
  if (end_ == buf_.size()) {
    throw std::runtime_error(
        "trace parse error (line exceeds the " + std::to_string(buf_.size()) +
        "-byte window) at line " + std::to_string(lineno_ + 1));
  }
  in_.read(buf_.data() + end_, static_cast<std::streamsize>(buf_.size() - end_));
  const std::size_t got = static_cast<std::size_t>(in_.gcount());
  end_ += got;
  bytes_read_ += got;
  if (got == 0) eof_ = true;
}

std::optional<std::string_view> LineCursor::next() {
  for (;;) {
    const char* base = buf_.data();
    const void* nl =
        std::memchr(base + begin_, '\n', end_ - begin_);
    if (nl == nullptr && !eof_) {
      fill();
      continue;
    }
    std::size_t line_end;
    bool had_newline;
    if (nl != nullptr) {
      line_end = static_cast<std::size_t>(static_cast<const char*>(nl) - base);
      had_newline = true;
    } else {
      if (begin_ == end_) return std::nullopt;  // fully drained
      line_end = end_;  // final line without a trailing newline
      had_newline = false;
    }
    ++lineno_;
    std::string_view line(base + begin_, line_end - begin_);
    begin_ = had_newline ? line_end + 1 : line_end;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string_view::npos) continue;  // blank
    if (line[first] == '#') continue;               // comment
    return line;
  }
}

// --- FsTraceCursor -------------------------------------------------------

FsTraceCursor::FsTraceCursor(std::istream& in, CursorOptions opt)
    : lines_(in, opt.window_bytes), opt_(opt) {}

std::optional<trace::FsAccess> FsTraceCursor::next() {
  const auto line = lines_.next();
  if (!line) return std::nullopt;
  std::string_view f[5];
  if (split(*line, f, 4) != 4) bad_line("fs access", lines_.line_number());
  double time_us = 0;
  trace::FsAccess a;
  if (!parse_f64(f[0], &time_us) || !parse_uint(f[1], &a.client) ||
      !parse_uint(f[2], &a.block) || f[3].size() != 1 ||
      (f[3][0] != 'r' && f[3][0] != 'w')) {
    bad_line("fs access", lines_.line_number());
  }
  a.at = sim::from_us(time_us);
  a.is_write = f[3][0] == 'w';
  if (opt_.enforce_monotonic && records_ > 0 && a.at < last_) {
    bad_line("out-of-order timestamp", lines_.line_number());
  }
  last_ = a.at;
  ++records_;
  return a;
}

// --- NFS -----------------------------------------------------------------

namespace {
struct NfsOpName {
  const char* name;
  NfsOp op;
};
constexpr NfsOpName kNfsOps[] = {
    {"read", NfsOp::kRead},         {"write", NfsOp::kWrite},
    {"commit", NfsOp::kCommit},     {"getattr", NfsOp::kGetattr},
    {"setattr", NfsOp::kSetattr},   {"lookup", NfsOp::kLookup},
    {"access", NfsOp::kAccess},     {"readdir", NfsOp::kReaddir},
    {"readlink", NfsOp::kReadlink}, {"fsstat", NfsOp::kFsstat},
    {"create", NfsOp::kCreate},     {"remove", NfsOp::kRemove},
    {"rename", NfsOp::kRename},     {"mkdir", NfsOp::kMkdir},
    {"rmdir", NfsOp::kRmdir},       {"link", NfsOp::kLink},
    {"symlink", NfsOp::kSymlink},
};
}  // namespace

const char* to_string(NfsOp op) {
  for (const auto& e : kNfsOps) {
    if (e.op == op) return e.name;
  }
  return "?";
}

bool nfs_op_is_write(NfsOp op) {
  switch (op) {
    case NfsOp::kWrite:
    case NfsOp::kCommit:
    case NfsOp::kSetattr:
    case NfsOp::kCreate:
    case NfsOp::kRemove:
    case NfsOp::kRename:
    case NfsOp::kMkdir:
    case NfsOp::kRmdir:
    case NfsOp::kLink:
    case NfsOp::kSymlink:
      return true;
    default:
      return false;
  }
}

bool nfs_op_is_data(NfsOp op) {
  return op == NfsOp::kRead || op == NfsOp::kWrite || op == NfsOp::kCommit;
}

NfsTraceCursor::NfsTraceCursor(std::istream& in, CursorOptions opt)
    : lines_(in, opt.window_bytes), opt_(opt) {}

std::optional<NfsRecord> NfsTraceCursor::next() {
  const auto line = lines_.next();
  if (!line) return std::nullopt;
  std::string_view f[7];
  if (split(*line, f, 6) != 6) bad_line("nfs record", lines_.line_number());
  double time_sec = 0;
  NfsRecord r;
  std::uint64_t bytes = 0;
  if (!parse_f64(f[0], &time_sec) || !parse_uint(f[4], &r.offset) ||
      !parse_uint(f[5], &bytes)) {
    bad_line("nfs record", lines_.line_number());
  }
  r.bytes = bytes > 0xffffffffull ? 0xffffffffu
                                  : static_cast<std::uint32_t>(bytes);
  r.at = sim::from_sec(time_sec);
  bool known = false;
  for (const auto& e : kNfsOps) {
    if (f[2] == e.name) {
      r.op = e.op;
      known = true;
      break;
    }
  }
  if (!known) {
    bad_line("unknown NFS op '" + std::string(f[2]) + "'",
             lines_.line_number());
  }
  // Dense ids in first-appearance order: deterministic for a given file.
  const auto client =
      clients_.emplace(std::string(f[1]),
                       static_cast<std::uint32_t>(clients_.size()));
  r.client = client.first->second;
  const auto fh = fhs_.emplace(std::string(f[3]), fhs_.size());
  r.fh = fh.first->second;
  if (opt_.enforce_monotonic && records_ > 0 && r.at < last_) {
    bad_line("out-of-order timestamp", lines_.line_number());
  }
  last_ = r.at;
  ++records_;
  return r;
}

NfsFsCursor::NfsFsCursor(std::istream& in, CursorOptions opt, NfsMapParams map)
    : nfs_(in, opt), map_(map) {}

std::optional<trace::FsAccess> NfsFsCursor::next() {
  const auto r = nfs_.next();
  if (!r) return std::nullopt;
  trace::FsAccess a;
  a.at = r->at;
  a.client = r->client;
  a.is_write = nfs_op_is_write(r->op);
  std::uint64_t block_in_file = 0;  // metadata ops hit the "inode" block
  if (nfs_op_is_data(r->op)) {
    block_in_file = r->offset / map_.block_bytes;
    if (block_in_file >= map_.blocks_per_file) {
      block_in_file = map_.blocks_per_file - 1;
    }
  }
  a.block = r->fh * map_.blocks_per_file + block_in_file;
  return a;
}

// --- ParallelJobCursor / UsageIntervalCursor -----------------------------

ParallelJobCursor::ParallelJobCursor(std::istream& in, CursorOptions opt)
    : lines_(in, opt.window_bytes), opt_(opt) {}

std::optional<trace::ParallelJob> ParallelJobCursor::next() {
  const auto line = lines_.next();
  if (!line) return std::nullopt;
  std::string_view f[5];
  if (split(*line, f, 4) != 4) bad_line("parallel job", lines_.line_number());
  double arrival_us = 0, work_us = 0;
  trace::ParallelJob j;
  if (!parse_f64(f[0], &arrival_us) || !parse_uint(f[1], &j.width) ||
      !parse_f64(f[2], &work_us) || f[3].size() != 1 ||
      (f[3][0] != 'p' && f[3][0] != 'd') || j.width == 0) {
    bad_line("parallel job", lines_.line_number());
  }
  j.arrival = sim::from_us(arrival_us);
  j.work = sim::from_us(work_us);
  j.development = f[3][0] == 'd';
  if (opt_.enforce_monotonic && j.arrival < last_) {
    bad_line("out-of-order timestamp", lines_.line_number());
  }
  last_ = j.arrival;
  return j;
}

UsageIntervalCursor::UsageIntervalCursor(std::istream& in, CursorOptions opt)
    : lines_(in, opt.window_bytes) {}

std::optional<UsageIntervalCursor::Row> UsageIntervalCursor::next() {
  const auto line = lines_.next();
  if (!line) return std::nullopt;
  std::string_view f[4];
  if (split(*line, f, 3) != 3) bad_line("busy interval", lines_.line_number());
  Row row;
  double begin_us = 0, end_us = 0;
  if (!parse_uint(f[0], &row.node) || !parse_f64(f[1], &begin_us) ||
      !parse_f64(f[2], &end_us) || end_us < begin_us) {
    bad_line("busy interval", lines_.line_number());
  }
  row.interval.begin = sim::from_us(begin_us);
  row.interval.end = sim::from_us(end_us);
  return row;
}

// --- File-level helpers --------------------------------------------------

const char* to_string(TraceFormat f) {
  return f == TraceFormat::kFs ? "fs" : "nfs";
}

TraceFormat detect_format(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  LineCursor lines(in, 4096);
  const auto line = lines.next();
  if (!line) {
    throw std::runtime_error("trace file has no records: " + path);
  }
  std::string_view f[7];
  const std::size_t n = split(*line, f, 6);
  if (n == 4 && f[3].size() == 1 && (f[3][0] == 'r' || f[3][0] == 'w')) {
    return TraceFormat::kFs;
  }
  if (n == 6) return TraceFormat::kNfs;
  throw std::runtime_error(
      "unrecognized trace format (want 4-field fs or 6-field nfs lines): " +
      path);
}

namespace {
/// TraceCursor that owns its ifstream alongside the format parser.
class FileCursor : public TraceCursor {
 public:
  FileCursor(const std::string& path, TraceFormat format, CursorOptions opt,
             NfsMapParams map)
      : in_(path) {
    if (!in_) {
      throw std::runtime_error("cannot open trace file: " + path);
    }
    if (format == TraceFormat::kFs) {
      fs_ = std::make_unique<FsTraceCursor>(in_, opt);
    } else {
      nfs_ = std::make_unique<NfsFsCursor>(in_, opt, map);
    }
  }

  std::optional<trace::FsAccess> next() override {
    return fs_ != nullptr ? fs_->next() : nfs_->next();
  }

 private:
  std::ifstream in_;
  std::unique_ptr<FsTraceCursor> fs_;
  std::unique_ptr<NfsFsCursor> nfs_;
};
}  // namespace

std::unique_ptr<TraceCursor> open_trace(const std::string& path,
                                        CursorOptions opt, NfsMapParams map) {
  return std::make_unique<FileCursor>(path, detect_format(path), opt, map);
}

ClientStrideCursor::ClientStrideCursor(std::unique_ptr<TraceCursor> inner,
                                       std::uint32_t modulo,
                                       std::uint32_t residue)
    : inner_(std::move(inner)), modulo_(modulo > 0 ? modulo : 1),
      residue_(residue) {}

std::optional<trace::FsAccess> ClientStrideCursor::next() {
  while (auto a = inner_->next()) {
    if (a->client % modulo_ == residue_) {
      a->client = residue_;
      return a;
    }
  }
  return std::nullopt;
}

TraceSummary summarize(const std::string& path, CursorOptions opt,
                       NfsMapParams map) {
  TraceSummary s;
  s.format = detect_format(path);
  auto cur = open_trace(path, opt, map);
  while (const auto a = cur->next()) {
    if (s.records == 0) s.first_at = a->at;
    s.last_at = a->at;
    if (a->client + 1 > s.clients) s.clients = a->client + 1;
    ++s.records;
  }
  return s;
}

}  // namespace now::replay
