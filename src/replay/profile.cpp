#include "replay/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace now::replay {
namespace {

// 64-bucket log2 histogram over nanosecond gaps: bucket i holds gaps in
// [2^i, 2^(i+1)) ns (bucket 0 also takes zero gaps).  Exact counts,
// bucket-resolution values.
struct GapHistogram {
  std::array<std::uint64_t, 64> buckets{};
  std::uint64_t n = 0;
  long double sum_ns = 0;

  void add(sim::Duration gap_ns) {
    if (gap_ns < 0) gap_ns = 0;
    unsigned b = 0;
    for (auto g = static_cast<std::uint64_t>(gap_ns); g > 1; g >>= 1) ++b;
    buckets[std::min<unsigned>(b, 63)]++;
    ++n;
    sum_ns += static_cast<long double>(gap_ns);
  }

  /// Lower edge of the bucket containing quantile q, in microseconds.
  double quantile_us(double q) const {
    if (n == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(n - 1));
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < buckets.size(); ++i) {
      seen += buckets[i];
      if (seen > target) {
        return sim::to_us(static_cast<sim::Duration>(
            i == 0 ? 0 : (std::uint64_t{1} << i)));
      }
    }
    return 0;
  }

  double mean_us() const {
    if (n == 0) return 0;
    return static_cast<double>(sum_ns / static_cast<long double>(n)) /
           static_cast<double>(sim::kMicrosecond);
  }
};

struct PopularityFit {
  double zipf_s = 0;
  double top1_share = 0;
  double top10_share = 0;
};

// Least-squares slope of ln(freq) on ln(rank) over the hottest blocks;
// Zipf with exponent s gives slope -s.
PopularityFit fit_popularity(
    const std::unordered_map<std::uint64_t, std::uint64_t>& counts,
    std::uint64_t total) {
  PopularityFit fit;
  if (counts.empty() || total == 0) return fit;
  std::vector<std::uint64_t> freq;
  freq.reserve(counts.size());
  for (const auto& [block, c] : counts) freq.push_back(c);
  std::sort(freq.begin(), freq.end(), std::greater<>());

  fit.top1_share = static_cast<double>(freq[0]) / static_cast<double>(total);
  std::uint64_t top10 = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(10, freq.size()); ++i) {
    top10 += freq[i];
  }
  fit.top10_share = static_cast<double>(top10) / static_cast<double>(total);

  const std::size_t n = std::min<std::size_t>(1000, freq.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(static_cast<double>(freq[i]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom > 0) fit.zipf_s = -(dn * sxy - sx * sy) / denom;
  return fit;
}

}  // namespace

TraceProfile profile_trace(const std::string& path, CursorOptions opt,
                           NfsMapParams map) {
  TraceProfile p;
  p.format = detect_format(path);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);

  GapHistogram gaps;
  std::unordered_map<std::uint64_t, std::uint64_t> block_counts;
  sim::SimTime prev = 0;
  std::uint32_t max_client = 0;
  bool any = false;

  auto account = [&](const trace::FsAccess& a) {
    if (!any) {
      p.first_at = a.at;
    } else {
      gaps.add(a.at - prev);
    }
    any = true;
    prev = a.at;
    p.last_at = a.at;
    ++p.records;
    (a.is_write ? p.writes : p.reads)++;
    max_client = std::max(max_client, a.client);
    ++block_counts[a.block];
  };

  if (p.format == TraceFormat::kFs) {
    FsTraceCursor cur(in, opt);
    while (auto a = cur.next()) account(*a);
    p.data_ops = p.records;
    p.clients = any ? max_client + 1 : 0;
  } else {
    // Profile raw NFS records (op mix, sizes) and run the same op->access
    // mapping replay uses for the popularity/read-write split.
    NfsTraceCursor cur(in, opt);
    long double data_bytes = 0;
    while (auto r = cur.next()) {
      p.op_counts[static_cast<std::size_t>(r->op)]++;
      trace::FsAccess a;
      a.at = r->at;
      a.client = r->client;
      a.is_write = nfs_op_is_write(r->op);
      const std::uint64_t base =
          r->fh * static_cast<std::uint64_t>(map.blocks_per_file);
      if (nfs_op_is_data(r->op)) {
        ++p.data_ops;
        data_bytes += static_cast<long double>(r->bytes);
        a.block = base + std::min<std::uint64_t>(
                             r->offset / map.block_bytes,
                             map.blocks_per_file - 1);
      } else {
        ++p.meta_ops;
        a.block = base;
      }
      account(a);
    }
    p.clients = cur.distinct_clients();
    if (p.data_ops > 0) {
      p.mean_data_bytes =
          static_cast<double>(data_bytes / static_cast<long double>(p.data_ops));
    }
  }

  p.distinct_blocks = block_counts.size();
  p.mean_gap_us = gaps.mean_us();
  p.gap_p50_us = gaps.quantile_us(0.50);
  p.gap_p90_us = gaps.quantile_us(0.90);
  p.gap_p99_us = gaps.quantile_us(0.99);

  const auto fit = fit_popularity(block_counts, p.records);
  p.zipf_s = fit.zipf_s;
  p.top1_share = fit.top1_share;
  p.top10_share = fit.top10_share;
  return p;
}

std::string format_profile(const TraceProfile& p) {
  char line[128];
  std::string out;
  auto emit = [&](const char* key, const char* fmt, auto value) {
    int n = std::snprintf(line, sizeof(line), "%-18s ", key);
    out.append(line, static_cast<std::size_t>(n));
    n = std::snprintf(line, sizeof(line), fmt, value);
    out.append(line, static_cast<std::size_t>(n));
    out.push_back('\n');
  };
  emit("format", "%s", to_string(p.format));
  emit("records", "%llu", static_cast<unsigned long long>(p.records));
  emit("clients", "%u", p.clients);
  emit("distinct_blocks", "%llu",
       static_cast<unsigned long long>(p.distinct_blocks));
  emit("read_fraction", "%.4f",
       p.records ? static_cast<double>(p.reads) / static_cast<double>(p.records)
                 : 0.0);
  emit("write_fraction", "%.4f",
       p.records
           ? static_cast<double>(p.writes) / static_cast<double>(p.records)
           : 0.0);
  emit("data_op_fraction", "%.4f",
       p.records
           ? static_cast<double>(p.data_ops) / static_cast<double>(p.records)
           : 0.0);
  emit("span_sec", "%.3f", sim::to_sec(p.last_at - p.first_at));
  emit("mean_gap_us", "%.1f", p.mean_gap_us);
  emit("gap_p50_us", "%.1f", p.gap_p50_us);
  emit("gap_p90_us", "%.1f", p.gap_p90_us);
  emit("gap_p99_us", "%.1f", p.gap_p99_us);
  emit("zipf_s", "%.3f", p.zipf_s);
  emit("top1_share", "%.4f", p.top1_share);
  emit("top10_share", "%.4f", p.top10_share);
  if (p.format == TraceFormat::kNfs) {
    emit("mean_data_bytes", "%.0f", p.mean_data_bytes);
    for (std::size_t i = 0; i < kNfsOpCount; ++i) {
      if (p.op_counts[i] == 0) continue;
      std::string key = std::string("op_") + to_string(static_cast<NfsOp>(i));
      emit(key.c_str(), "%.4f",
           static_cast<double>(p.op_counts[i]) /
               static_cast<double>(p.records));
    }
  }
  return out;
}

}  // namespace now::replay
