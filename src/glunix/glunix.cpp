#include "glunix/glunix.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "sim/log.hpp"

namespace now::glunix {

namespace {
/// Master-side method: a daemon reports a guest's completion.
constexpr proto::MethodId kGluGuestDone = 124;

struct SpawnReq {
  JobId job;
  std::size_t rank;  // SIZE_MAX for sequential guests
  sim::Duration work;
};
struct SpawnAck {
  os::ProcessId pid;
};
struct DoneNote {
  JobId job;
  std::size_t rank;
};
}  // namespace

Glunix::Glunix(proto::RpcLayer& rpc, std::vector<os::Node*> nodes,
               GlunixParams params, std::size_t master_index)
    : rpc_(rpc), nodes_(std::move(nodes)), params_(params),
      master_(master_index), cost_(params.migration),
      obs_launched_(&obs::metrics().counter("glunix.launched")),
      obs_completed_(&obs::metrics().counter("glunix.completed")),
      obs_migrations_(&obs::metrics().counter("glunix.migrations")),
      obs_crash_restarts_(&obs::metrics().counter("glunix.crash_restarts")),
      obs_gangs_launched_(&obs::metrics().counter("glunix.gangs_launched")),
      obs_gangs_completed_(
          &obs::metrics().counter("glunix.gangs_completed")),
      obs_gang_pauses_(&obs::metrics().counter("glunix.gang_pauses")),
      obs_owner_evictions_(
          &obs::metrics().counter("glunix.owner_evictions")),
      obs_idle_nodes_(&obs::metrics().gauge("glunix.idle_nodes")),
      obs_track_(obs::tracer().track("glunix")) {
  assert(!nodes_.empty() && master_ < nodes_.size());
  info_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) info_[i].node = nodes_[i];
}

void Glunix::start() {
  assert(!started_);
  started_ = true;
  for (os::Node* n : nodes_) install_daemon(*n);

  // Master-side completion notifications.
  rpc_.register_method(
      master_node(), kGluGuestDone,
      [this](net::NodeId from, std::any req, proto::RpcLayer::ReplyFn reply) {
        reply(16, {});
        const auto note = std::any_cast<DoneNote>(req);
        const auto git = gangs_.find(note.job);
        if (git != gangs_.end()) {
          Gang& gang = git->second;
          if (note.rank >= gang.ranks.size()) return;
          Gang::Rank& r = gang.ranks[note.rank];
          if (r.where == SIZE_MAX || info_[r.where].node->id() != from) {
            return;  // orphan from a pre-migration home
          }
          if (r.done) return;
          r.done = true;
          r.running = false;
          info_[r.where].hosting = 0;
          r.where = SIZE_MAX;
          if (++gang.done_ranks == gang.ranks.size()) {
            auto cb = std::move(gang.done);
            const sim::SimTime submitted = gang.submitted_at;
            gangs_.erase(git);
            ++stats_.gangs_completed;
            obs_gangs_completed_->inc();
            obs::tracer().complete(from, obs_track_, "glunix.gang",
                                   submitted, engine().now());
            if (cb) cb();
          }
          schedule_queue_scan();
          return;
        }
        const auto it = guests_.find(note.job);
        if (it == guests_.end()) return;  // stale completion after crash
        if (it->second.where != from) return;  // orphan from an old home
        Guest g = std::move(it->second);
        guests_.erase(it);
        ++stats_.completed;
        obs_completed_->inc();
        obs::tracer().complete(from, obs_track_, "glunix.job",
                               g.submitted_at, engine().now());
        for (NodeInfo& ni : info_) {
          if (ni.hosting == note.job) ni.hosting = 0;
        }
        if (g.done) g.done(from);
        schedule_queue_scan();
      });

  heartbeat_tick();
  poll_tick();
  reset_eviction_budgets();
}

void Glunix::reset_eviction_budgets() {
  for (NodeInfo& ni : info_) ni.evictions_in_window = 0;
  engine().schedule_in(params_.eviction_window,
                       [this] { reset_eviction_budgets(); });
}

void Glunix::install_daemon(os::Node& node) {
  os::Node* n = &node;
  rpc_.register_method(
      node.id(), kGluPing,
      [](net::NodeId, std::any, proto::RpcLayer::ReplyFn reply) {
        reply(16, {});
      });
  rpc_.register_method(
      node.id(), kGluProbeIdle,
      [this, n](net::NodeId, std::any, proto::RpcLayer::ReplyFn reply) {
        reply(16, n->user_idle_for(params_.idle_window));
      });
  rpc_.register_method(
      node.id(), kGluSpawn,
      [this, n](net::NodeId master, std::any req,
                proto::RpcLayer::ReplyFn reply) {
        const auto spawn = std::any_cast<SpawnReq>(req);
        // One boxed pid so the entry continuation can reference itself.
        auto pid_box = std::make_shared<os::ProcessId>(os::kNoProcess);
        *pid_box = n->cpu().spawn(
            "glunix-guest", os::SchedClass::kBatch,
            [this, n, master, spawn, pid_box] {
              n->cpu().compute(*pid_box, spawn.work,
                               [this, n, master, spawn, pid_box] {
                                 n->cpu().exit(*pid_box);
                                 rpc_.call(n->id(), master, kGluGuestDone,
                                           32, DoneNote{spawn.job,
                                                        spawn.rank},
                                           [](std::any) {});
                               });
            });
        reply(16, SpawnAck{*pid_box});
      });
  rpc_.register_method(
      node.id(), kGluKill,
      [n](net::NodeId, std::any req, proto::RpcLayer::ReplyFn reply) {
        n->cpu().kill(std::any_cast<os::ProcessId>(req));
        reply(16, {});
      });
  rpc_.register_method(
      node.id(), kGluSuspend,
      [n](net::NodeId, std::any req, proto::RpcLayer::ReplyFn reply) {
        n->cpu().suspend(std::any_cast<os::ProcessId>(req));
        reply(16, {});
      });
  rpc_.register_method(
      node.id(), kGluResume,
      [n](net::NodeId, std::any req, proto::RpcLayer::ReplyFn reply) {
        n->cpu().resume(std::any_cast<os::ProcessId>(req));
        reply(16, {});
      });
}

void Glunix::heartbeat_tick() {
  for (std::size_t i = 0; i < info_.size(); ++i) {
    if (i == master_) continue;
    // Dead nodes keep getting pinged: a reboot or hot-swapped replacement
    // rejoins the pool the moment it answers, no cluster restart needed.
    rpc_.call(
        master_node(), info_[i].node->id(), kGluPing, 16, {},
        [this, i](std::any) {
          NodeInfo& ni = info_[i];
          ni.missed_beats = 0;
          if (!ni.up) {
            ni.up = true;
            ni.reported_idle = false;
            if (on_up_) on_up_(ni.node->id());
          }
        },
        /*timeout=*/params_.heartbeat_interval,
        [this, i] {
          if (!info_[i].up) return;
          if (++info_[i].missed_beats >= params_.heartbeat_misses) {
            declare_down(i);
          }
        });
  }
  engine().schedule_in(params_.heartbeat_interval,
                       [this] { heartbeat_tick(); });
}

void Glunix::poll_tick() {
  for (std::size_t i = 0; i < info_.size(); ++i) {
    if (!info_[i].up) continue;
    rpc_.call(
        master_node(), info_[i].node->id(), kGluProbeIdle, 16, {},
        [this, i](std::any resp) {
          if (!info_[i].up) return;
          info_[i].reported_idle = std::any_cast<bool>(resp);
          if (!info_[i].reported_idle && info_[i].hosting != 0) {
            // Owner is back: the guest must leave, now — and this counts
            // against the machine's disturbance budget.
            ++info_[i].evictions_in_window;
            ++stats_.owner_evictions;
            obs_owner_evictions_->inc();
            obs::tracer().instant(info_[i].node->id(), obs_track_,
                                  "owner_eviction");
            displace(i, /*node_crashed=*/false);
          }
        },
        /*timeout=*/params_.poll_interval, [] {});
  }
  if (obs::enabled()) {
    obs_idle_nodes_->set(static_cast<double>(idle_node_count()));
  }
  engine().schedule_in(params_.poll_interval, [this] {
    poll_tick();
    schedule_queue_scan();
  });
}

void Glunix::declare_down(std::size_t idx) {
  NodeInfo& ni = info_[idx];
  if (!ni.up) return;
  ni.up = false;
  ni.reported_idle = false;
  if (ni.hosting != 0) {
    displace(idx, /*node_crashed=*/true);
  }
  if (obs::enabled()) {
    obs_idle_nodes_->set(static_cast<double>(idle_node_count()));
  }
  obs::tracer().instant(ni.node->id(), obs_track_, "node_down");
  sim::LogStream(sim::LogLevel::kInfo, engine().now(), "glunix")
      << "node " << ni.node->id() << " declared down ("
      << params_.heartbeat_misses << " missed heartbeats)";
  if (on_down_) on_down_(ni.node->id());
}

std::optional<std::size_t> Glunix::pick_idle_machine() const {
  for (std::size_t i = 0; i < info_.size(); ++i) {
    if (i == master_) continue;  // the control node hosts no guests
    const NodeInfo& ni = info_[i];
    if (ni.up && ni.reported_idle && ni.hosting == 0 &&
        ni.evictions_in_window < params_.max_evictions_per_window) {
      return i;
    }
  }
  return std::nullopt;
}

std::size_t Glunix::idle_node_count() const {
  std::size_t n = 0;
  for (const NodeInfo& ni : info_) {
    if (ni.up && ni.reported_idle) ++n;
  }
  return n;
}

bool Glunix::node_believed_up(net::NodeId id) const {
  for (const NodeInfo& ni : info_) {
    if (ni.node->id() == id) return ni.up;
  }
  return false;
}

JobId Glunix::run_remote(sim::Duration work, std::uint64_t memory_bytes,
                         DoneFn done) {
  const JobId id = next_job_++;
  Guest g;
  g.remaining = work;
  g.checkpointed_remaining = work;
  g.memory_bytes = memory_bytes;
  g.submitted_at = engine().now();
  g.done = std::move(done);
  guests_.emplace(id, std::move(g));
  ++stats_.launched;
  obs_launched_->inc();
  place_guest(id);
  return id;
}

void Glunix::place_guest(JobId id) {
  const auto idx = pick_idle_machine();
  if (!idx) {
    waiting_.push_back(id);
    stats_.waiting_peak = std::max<std::uint64_t>(stats_.waiting_peak,
                                                  waiting_.size());
    return;
  }
  launch_on(id, *idx);
}

void Glunix::launch_on(JobId id, std::size_t idx) {
  Guest& g = guests_.at(id);
  NodeInfo& ni = info_[idx];
  ni.hosting = id;
  g.where = ni.node->id();
  g.in_transit = true;
  // First placement ships nothing; migrations/restarts stream the image.
  const sim::Duration transfer =
      g.has_state ? cost_.restore_time(g.memory_bytes) : 0;
  engine().schedule_in(transfer, [this, id, idx] {
    const auto it = guests_.find(id);
    if (it == guests_.end()) return;
    Guest& guest = it->second;
    NodeInfo& node_info = info_[idx];
    if (!node_info.up || node_info.hosting != id) return;  // world moved on
    const net::NodeId target = node_info.node->id();
    rpc_.call(master_node(), target, kGluSpawn, 64,
              SpawnReq{id, SIZE_MAX, guest.remaining},
              [this, id, target](std::any resp) {
                const auto it2 = guests_.find(id);
                if (it2 == guests_.end()) return;
                Guest& gg = it2->second;
                if (gg.where != target) return;  // evicted mid-spawn
                gg.pid = std::any_cast<SpawnAck>(resp).pid;
                gg.seg_start = engine().now();
                gg.in_transit = false;
                gg.has_state = true;
                arm_checkpoint(id, ++gg.epoch);
              });
  });
}

void Glunix::arm_checkpoint(JobId id, std::uint64_t epoch) {
  engine().schedule_in(params_.checkpoint_interval, [this, id, epoch] {
    const auto it = guests_.find(id);
    if (it == guests_.end()) return;        // completed
    Guest& g = it->second;
    if (g.epoch != epoch || g.in_transit) return;  // moved since armed
    const sim::Duration rem =
        std::max<sim::Duration>(g.remaining - (engine().now() - g.seg_start),
                                0);
    g.checkpointed_remaining = rem;
    arm_checkpoint(id, epoch);
  });
}

void Glunix::evict(JobId id, bool node_crashed) {
  const auto it = guests_.find(id);
  if (it == guests_.end()) return;
  Guest& g = guests_.at(id);

  for (NodeInfo& ni : info_) {
    if (ni.hosting == id) ni.hosting = 0;
  }

  if (node_crashed) {
    // Progress since the last checkpoint is gone.
    g.remaining = g.checkpointed_remaining;
    ++stats_.crash_restarts;
    obs_crash_restarts_->inc();
    if (g.where != net::kInvalidNode) {
      obs::tracer().instant(g.where, obs_track_, "crash_restart");
    }
  } else {
    if (!g.in_transit) {
      g.remaining -= engine().now() - g.seg_start;
      if (g.remaining < 0) g.remaining = 0;
      g.checkpointed_remaining = g.remaining;  // the freeze IS a checkpoint
      // Kill the frozen process; its image travels with the migration.
      rpc_.call(master_node(), g.where, kGluKill, 32, g.pid,
                [](std::any) {});
    }
    ++stats_.migrations;
    obs_migrations_->inc();
    if (g.where != net::kInvalidNode) {
      obs::tracer().instant(g.where, obs_track_, "migrate");
    }
  }
  g.where = net::kInvalidNode;
  g.pid = os::kNoProcess;
  g.in_transit = false;
  place_guest(id);
}

void Glunix::schedule_queue_scan() {
  if (!waiting_.empty()) {
    std::vector<JobId> retry;
    retry.swap(waiting_);
    for (const JobId id : retry) {
      if (guests_.contains(id)) place_guest(id);
    }
  }
  if (!waiting_gangs_.empty()) {
    std::vector<JobId> retry;
    retry.swap(waiting_gangs_);
    for (const JobId id : retry) {
      if (gangs_.contains(id)) try_start_gang(id);
    }
  }
  // Displaced ranks of running gangs keep probing for replacements.
  for (auto& [id, gang] : gangs_) {
    if (gang.started) gang_try_replace(id);
  }
}

void Glunix::displace(std::size_t machine, bool node_crashed) {
  const JobId id = info_[machine].hosting;
  if (id == 0) return;
  const auto git = gangs_.find(id);
  if (git != gangs_.end()) {
    info_[machine].hosting = 0;
    Gang& gang = git->second;
    for (std::size_t r = 0; r < gang.ranks.size(); ++r) {
      if (gang.ranks[r].where == machine) {
        gang_displace(id, r, node_crashed);
        return;
      }
    }
    return;
  }
  evict(id, node_crashed);
}

// --- Gang jobs ---------------------------------------------------------

JobId Glunix::run_parallel(std::uint32_t width, sim::Duration work_per_rank,
                           std::uint64_t memory_per_rank,
                           std::function<void()> done) {
  assert(width >= 1);
  const JobId id = next_job_++;
  Gang gang;
  gang.ranks.resize(width);
  for (auto& r : gang.ranks) r.remaining = work_per_rank;
  gang.memory_bytes = memory_per_rank;
  gang.submitted_at = engine().now();
  gang.done = std::move(done);
  gangs_.emplace(id, std::move(gang));
  ++stats_.gangs_launched;
  obs_gangs_launched_->inc();
  try_start_gang(id);
  return id;
}

void Glunix::try_start_gang(JobId id) {
  Gang& gang = gangs_.at(id);
  assert(!gang.started);
  // All-or-nothing initial placement: holding a partial gang would both
  // waste machines and risk deadlock between queued gangs.
  std::vector<std::size_t> picked;
  for (std::size_t i = 0; i < info_.size(); ++i) {
    if (i == master_) continue;
    const NodeInfo& ni = info_[i];
    if (ni.up && ni.reported_idle && ni.hosting == 0 &&
        ni.evictions_in_window < params_.max_evictions_per_window) {
      picked.push_back(i);
      if (picked.size() == gang.ranks.size()) break;
    }
  }
  if (picked.size() < gang.ranks.size()) {
    waiting_gangs_.push_back(id);
    return;
  }
  gang.started = true;
  for (std::size_t r = 0; r < gang.ranks.size(); ++r) {
    info_[picked[r]].hosting = id;
    gang.ranks[r].where = picked[r];
    gang_rank_spawn(id, r);
  }
}

void Glunix::gang_rank_spawn(JobId id, std::size_t rank) {
  Gang& gang = gangs_.at(id);
  Gang::Rank& r = gang.ranks[rank];
  assert(r.where != SIZE_MAX);
  const net::NodeId target = info_[r.where].node->id();
  rpc_.call(master_node(), target, kGluSpawn, 64,
            SpawnReq{id, rank, r.remaining},
            [this, id, rank, target](std::any resp) {
              const auto git = gangs_.find(id);
              if (git == gangs_.end()) return;
              Gang& g = git->second;
              Gang::Rank& rk = g.ranks[rank];
              if (rk.where == SIZE_MAX ||
                  info_[rk.where].node->id() != target) {
                return;  // displaced while the spawn was in flight
              }
              rk.pid = std::any_cast<SpawnAck>(resp).pid;
              rk.seg_start = engine().now();
              rk.running = true;
              if (g.suspended_count > 0) {
                // The gang is paused for someone's migration: freeze this
                // rank too until the resume.
                gang_account(g);
                rk.running = false;
                rpc_.call(master_node(), target, kGluSuspend, 32, rk.pid,
                          [](std::any) {});
              }
            });
}

void Glunix::gang_account(Gang& g) {
  const sim::SimTime now = engine().now();
  for (auto& r : g.ranks) {
    if (!r.running || r.done) continue;
    r.remaining = std::max<sim::Duration>(r.remaining - (now - r.seg_start),
                                          0);
    r.seg_start = now;
  }
}

void Glunix::gang_pause(JobId id) {
  Gang& gang = gangs_.at(id);
  if (gang.suspended_count++ > 0) return;  // already paused
  ++stats_.gang_pauses;
  obs_gang_pauses_->inc();
  obs::tracer().instant(master_node(), obs_track_, "gang_pause");
  gang_account(gang);
  for (auto& r : gang.ranks) {
    if (r.done || !r.running || r.where == SIZE_MAX ||
        r.pid == os::kNoProcess) {
      continue;
    }
    r.running = false;
    rpc_.call(master_node(), info_[r.where].node->id(), kGluSuspend, 32,
              r.pid, [](std::any) {});
  }
}

void Glunix::gang_resume(JobId id) {
  const auto git = gangs_.find(id);
  if (git == gangs_.end()) return;
  Gang& gang = git->second;
  assert(gang.suspended_count > 0);
  if (--gang.suspended_count > 0) return;  // other migrations in flight
  for (auto& r : gang.ranks) {
    if (r.done || r.where == SIZE_MAX || r.pid == os::kNoProcess) continue;
    r.running = true;
    r.seg_start = engine().now();
    rpc_.call(master_node(), info_[r.where].node->id(), kGluResume, 32,
              r.pid, [](std::any) {});
  }
}

void Glunix::gang_displace(JobId id, std::size_t rank, bool crashed) {
  Gang& gang = gangs_.at(id);
  Gang::Rank& r = gang.ranks[rank];
  gang_pause(id);  // also retires elapsed work on every rank
  if (!crashed && r.pid != os::kNoProcess && r.where != SIZE_MAX) {
    rpc_.call(master_node(), info_[r.where].node->id(), kGluKill, 32,
              r.pid, [](std::any) {});
    ++stats_.migrations;
    obs_migrations_->inc();
    obs::tracer().instant(info_[r.where].node->id(), obs_track_, "migrate");
  } else if (crashed) {
    ++stats_.crash_restarts;
    obs_crash_restarts_->inc();
    if (r.where != SIZE_MAX) {
      obs::tracer().instant(info_[r.where].node->id(), obs_track_,
                            "crash_restart");
    }
  }
  r.where = SIZE_MAX;
  r.pid = os::kNoProcess;
  r.running = false;
  gang_try_replace(id);
}

void Glunix::gang_try_replace(JobId id) {
  Gang& gang = gangs_.at(id);
  if (!gang.started) return;
  for (std::size_t rank = 0; rank < gang.ranks.size(); ++rank) {
    Gang::Rank& r = gang.ranks[rank];
    if (r.done || r.where != SIZE_MAX) continue;
    const auto idx = pick_idle_machine();
    if (!idx) return;  // paused until the next scan finds a machine
    info_[*idx].hosting = id;
    r.where = *idx;
    r.pid = os::kNoProcess;
    // Ship the frozen rank image, then respawn and lift the gang pause.
    engine().schedule_in(
        cost_.migrate_time(gang.memory_bytes), [this, id, rank] {
          const auto git = gangs_.find(id);
          if (git == gangs_.end()) return;
          Gang::Rank& rk = git->second.ranks[rank];
          if (rk.where == SIZE_MAX) {
            // Displaced again mid-transfer: the re-displacement owns a
            // fresh pause and will schedule its own transfer; release
            // this one's.
            gang_resume(id);
            return;
          }
          gang_rank_spawn(id, rank);
          gang_resume(id);
        });
  }
}

}  // namespace now::glunix
