// SPMD parallel applications over user-level Active Messages.
//
// These are the communication patterns of Figure 4.  All use *polling*
// endpoints (the CM-5 user-level AM discipline): a rank only absorbs
// messages while its process is on the CPU, and waiting is spinning.  That
// is why local scheduling hurts: a reply or a credit return stalls until
// the peer's process happens to be dispatched again.
//
//   kComputeOnly — pure computation; the competing-job filler.
//   kRandomSmall — many small messages to random peers, no waiting.  With
//                  enough buffering the sender barely slows (paper: two of
//                  the four apps behave this way).
//   kColumn      — infrequent but intense bursts into a single destination;
//                  overflows the destination's buffering, so senders stall
//                  on flow control ("Column ... overflows the buffers").
//   kEm3d        — bulk-synchronous neighbor exchange + barrier every
//                  iteration; suffers at synchronization points.
//   kConnect     — frequent synchronous request/reply to random peers
//                  (data dependences); performs worst under local
//                  scheduling because every round trip waits out peers'
//                  time slices.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "glunix/coschedule.hpp"
#include "proto/am.hpp"
#include "sim/random.hpp"

namespace now::glunix {

enum class CommPattern {
  kComputeOnly,
  kRandomSmall,
  kColumn,
  kEm3d,
  kConnect,
};

const char* pattern_name(CommPattern p);

struct SpmdParams {
  CommPattern pattern = CommPattern::kEm3d;
  int iterations = 50;
  /// Per-rank computation per iteration.
  sim::Duration compute_per_iteration = 20 * sim::kMillisecond;
  std::uint32_t msg_bytes = 1024;
  /// Messages per iteration for kRandomSmall / kColumn bursts.
  std::uint32_t burst = 32;
  /// Synchronous round trips per iteration for kConnect.
  int rpcs_per_iteration = 8;
  /// Spin-poll granularity while waiting (busy-wait check interval).
  sim::Duration spin_slice = 200 * sim::kMicrosecond;
  std::uint64_t seed = 1;
};

/// One parallel program: a gang of rank processes, one per node.
class SpmdApp {
 public:
  using DoneFn = std::function<void(sim::Duration)>;

  SpmdApp(proto::AmLayer& am, std::vector<os::Node*> nodes,
          SpmdParams params, DoneFn done);
  SpmdApp(const SpmdApp&) = delete;
  SpmdApp& operator=(const SpmdApp&) = delete;

  /// Spawns all rank processes.  One-shot.
  void start();

  /// Gang handle for the coscheduler.
  Coscheduler::Gang gang() const;

  bool finished() const { return finished_ranks_ == ranks_.size(); }
  sim::Duration elapsed() const { return elapsed_; }
  std::uint32_t width() const {
    return static_cast<std::uint32_t>(ranks_.size());
  }

 private:
  struct Rank {
    os::Node* node = nullptr;
    os::ProcessId pid = os::kNoProcess;
    proto::EndpointId ep = proto::kInvalidEndpoint;
    int iter = 0;
    std::uint64_t msgs_received = 0;  // monotonic (em3d progress)
    bool reply_pending = false;       // connect
    std::uint32_t barrier_gen = 0;    // next barrier generation to use
    std::uint32_t released_gen = 0;   // highest release seen
    std::unique_ptr<sim::Pcg32> rng;
  };

  void run_iteration(std::size_t r);
  void communicate(std::size_t r, std::function<void()> then);
  void send_chain(std::size_t r, std::uint32_t count,
                  std::function<std::size_t()> pick_dst,
                  std::function<void()> then);
  void connect_chain(std::size_t r, int remaining,
                     std::function<void()> then);
  void barrier(std::size_t r, std::function<void()> then);
  void send_release_chain(std::size_t r, std::size_t next,
                          std::uint32_t gen, std::function<void()> then);
  void spin_wait(std::size_t r, std::function<bool()> pred,
                 std::function<void()> then);
  void finish_rank(std::size_t r);
  std::size_t random_peer(std::size_t r);

  proto::AmLayer& am_;
  SpmdParams params_;
  DoneFn done_;
  std::vector<Rank> ranks_;
  // Barrier bookkeeping at rank 0: generation -> arrivals so far.
  std::unordered_map<std::uint32_t, std::uint32_t> barrier_arrivals_;
  std::size_t finished_ranks_ = 0;
  sim::SimTime started_at_ = 0;
  sim::Duration elapsed_ = 0;
  bool started_ = false;

  static constexpr proto::HandlerId kMsg = 1;
  static constexpr proto::HandlerId kReq = 2;
  static constexpr proto::HandlerId kRep = 3;
  static constexpr proto::HandlerId kBarArrive = 4;
  static constexpr proto::HandlerId kBarRelease = 5;
};

}  // namespace now::glunix
