// Collective operations over interrupt-mode Active Messages: broadcast,
// reduce, and barrier on binomial trees.
//
// The paper's parallel-computing case needs more than point-to-point
// sends: real SPMD codes are built from collectives, and their cost on a
// NOW is exactly what LogP predicts (models/logp.hpp implements the
// prediction; the logp and collectives tests check that the two agree).
// These collectives use interrupt endpoints — they model system-level
// collectives (GLUnix job control, xFS recovery broadcast), while the
// SPMD app framework keeps its own polling-endpoint barrier for
// application-level synchronization.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "proto/am.hpp"

namespace now::glunix {

/// A fixed communicator over `nodes`: rank i lives on nodes[i].
class Collectives {
 public:
  using Done = std::function<void()>;
  /// Reduction combiner over opaque per-rank contributions.
  using Combine = std::function<double(double, double)>;

  Collectives(proto::AmLayer& am, std::vector<os::Node*> nodes);
  Collectives(const Collectives&) = delete;
  Collectives& operator=(const Collectives&) = delete;

  std::size_t size() const { return endpoints_.size(); }

  /// Broadcasts `bytes` from rank `root` to every rank along a binomial
  /// tree; `done` fires (once, at the caller) when every rank has the
  /// data.
  void broadcast(std::size_t root, std::uint32_t bytes, Done done);

  /// Reduces every rank's `contribution` to rank 0 along the mirrored
  /// tree; `done(value)` fires with the combined result.
  void reduce(const std::vector<double>& contributions, Combine combine,
              std::function<void(double)> done);

  /// Barrier: reduce + broadcast of a token.
  void barrier(Done done);

 private:
  struct Op {
    // Broadcast bookkeeping.
    std::size_t root = 0;
    std::uint32_t bytes = 0;
    std::size_t received = 0;  // non-root ranks holding the data
    Done done;
    // Reduce bookkeeping.
    std::vector<double> partial;
    std::vector<std::size_t> missing;  // children yet to report, per rank
    Combine combine;
    std::function<void(double)> reduce_done;
  };

  void bcast_forward(std::uint64_t op_id, std::size_t rank);
  void reduce_send_up(std::uint64_t op_id, std::size_t rank);
  /// Binomial-tree children of relative rank `rr` (tree rooted at 0).
  std::vector<std::size_t> children_of(std::size_t rr) const;
  static std::size_t parent_of(std::size_t rr);

  proto::AmLayer& am_;
  std::vector<proto::EndpointId> endpoints_;
  std::unordered_map<std::uint64_t, Op> ops_;
  std::uint64_t next_op_ = 1;

  static constexpr proto::HandlerId kBcast = 10;
  static constexpr proto::HandlerId kReduce = 11;
};

}  // namespace now::glunix
