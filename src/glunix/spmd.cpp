#include "glunix/spmd.hpp"

#include <cassert>

namespace now::glunix {

const char* pattern_name(CommPattern p) {
  switch (p) {
    case CommPattern::kComputeOnly: return "compute-only";
    case CommPattern::kRandomSmall: return "random-small";
    case CommPattern::kColumn: return "column";
    case CommPattern::kEm3d: return "em3d";
    case CommPattern::kConnect: return "connect";
  }
  return "?";
}

SpmdApp::SpmdApp(proto::AmLayer& am, std::vector<os::Node*> nodes,
                 SpmdParams params, DoneFn done)
    : am_(am), params_(params), done_(std::move(done)) {
  assert(nodes.size() >= 2 || params.pattern == CommPattern::kComputeOnly);
  ranks_.resize(nodes.size());
  for (std::size_t r = 0; r < nodes.size(); ++r) {
    Rank& rank = ranks_[r];
    rank.node = nodes[r];
    rank.rng = std::make_unique<sim::Pcg32>(params_.seed + r,
                                            /*stream=*/0x73706d64);
    rank.ep = am_.create_endpoint(*nodes[r], proto::AmLayer::Mode::kPolling);

    am_.register_handler(rank.ep, kMsg, [this, r](const proto::AmMessage&) {
      ++ranks_[r].msgs_received;
    });
    am_.register_handler(rank.ep, kReq,
                         [this, r](const proto::AmMessage& m) {
                           // Serve the remote data request immediately (we
                           // are polling, so we are on the CPU right now).
                           am_.send(ranks_[r].ep, m.src_ep, kRep,
                                    params_.msg_bytes, {});
                         });
    am_.register_handler(rank.ep, kRep, [this, r](const proto::AmMessage&) {
      ranks_[r].reply_pending = false;
    });
    am_.register_handler(rank.ep, kBarArrive,
                         [this, r](const proto::AmMessage& m) {
                           assert(r == 0);
                           (void)r;
                           const auto gen =
                               std::any_cast<std::uint32_t>(m.payload);
                           ++barrier_arrivals_[gen];
                         });
    am_.register_handler(rank.ep, kBarRelease,
                         [this, r](const proto::AmMessage& m) {
                           const auto gen =
                               std::any_cast<std::uint32_t>(m.payload);
                           Rank& rk = ranks_[r];
                           if (gen > rk.released_gen) rk.released_gen = gen;
                         });
  }
}

void SpmdApp::start() {
  assert(!started_ && "start() is one-shot");
  started_ = true;
  started_at_ = am_.engine().now();
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    Rank& rank = ranks_[r];
    rank.pid = rank.node->cpu().spawn(
        std::string(pattern_name(params_.pattern)) + "/" +
            std::to_string(r),
        os::SchedClass::kBatch, [this, r] { run_iteration(r); });
    am_.set_owner(rank.ep, rank.pid);
  }
}

Coscheduler::Gang SpmdApp::gang() const {
  Coscheduler::Gang g;
  for (const Rank& r : ranks_) {
    g.push_back(Coscheduler::Member{&r.node->cpu(), r.pid});
  }
  return g;
}

std::size_t SpmdApp::random_peer(std::size_t r) {
  const auto n = static_cast<std::uint32_t>(ranks_.size());
  std::uint32_t peer = ranks_[r].rng->next_below(n);
  if (peer == r) peer = (peer + 1) % n;
  return peer;
}

void SpmdApp::run_iteration(std::size_t r) {
  Rank& rank = ranks_[r];
  if (rank.iter == params_.iterations) {
    // Final barrier so the wall-clock time covers every rank.
    barrier(r, [this, r] { finish_rank(r); });
    return;
  }
  rank.node->cpu().compute(rank.pid, params_.compute_per_iteration,
                           [this, r] {
                             communicate(r, [this, r] {
                               ++ranks_[r].iter;
                               run_iteration(r);
                             });
                           });
}

void SpmdApp::communicate(std::size_t r, std::function<void()> then) {
  Rank& rank = ranks_[r];
  const std::size_t n = ranks_.size();
  switch (params_.pattern) {
    case CommPattern::kComputeOnly:
      then();
      return;

    case CommPattern::kRandomSmall:
      // Fire-and-forget spray; flow control is the only brake.
      send_chain(r, params_.burst,
                 [this, r] { return random_peer(r); }, std::move(then));
      return;

    case CommPattern::kColumn: {
      // Fixed column partner: rank r streams its bursts at (r+1) mod n,
      // iteration after iteration.  The sustained one-to-one concentration
      // is what overflows the destination's buffering when the receiver is
      // descheduled.
      const std::size_t target = (r + 1) % n;
      send_chain(r, params_.burst, [target] { return target; },
                 std::move(then));
      return;
    }

    case CommPattern::kEm3d: {
      // Exchange boundaries with both neighbors, wait for ours, barrier.
      const std::size_t left = (r + n - 1) % n;
      const std::size_t right = (r + 1) % n;
      const std::uint64_t expected =
          2ull * static_cast<std::uint64_t>(rank.iter + 1);
      auto after_sends = [this, r, expected,
                          then = std::move(then)]() mutable {
        spin_wait(r,
                  [this, r, expected] {
                    return ranks_[r].msgs_received >= expected;
                  },
                  [this, r, then = std::move(then)]() mutable {
                    barrier(r, std::move(then));
                  });
      };
      am_.send_from_process(
          rank.pid, rank.ep, ranks_[left].ep, kMsg, params_.msg_bytes, {},
          [this, r, right, after_sends = std::move(after_sends)]() mutable {
            Rank& rk = ranks_[r];
            am_.send_from_process(rk.pid, rk.ep, ranks_[right].ep, kMsg,
                                  params_.msg_bytes, {},
                                  std::move(after_sends));
          });
      return;
    }

    case CommPattern::kConnect:
      connect_chain(r, params_.rpcs_per_iteration, std::move(then));
      return;
  }
}

void SpmdApp::send_chain(std::size_t r, std::uint32_t count,
                         std::function<std::size_t()> pick_dst,
                         std::function<void()> then) {
  if (count == 0) {
    then();
    return;
  }
  Rank& rank = ranks_[r];
  const std::size_t dst = pick_dst();
  am_.send_from_process(
      rank.pid, rank.ep, ranks_[dst].ep, kMsg, params_.msg_bytes, {},
      [this, r, count, pick_dst = std::move(pick_dst),
       then = std::move(then)]() mutable {
        send_chain(r, count - 1, std::move(pick_dst), std::move(then));
      });
}

void SpmdApp::connect_chain(std::size_t r, int remaining,
                            std::function<void()> then) {
  if (remaining == 0) {
    then();
    return;
  }
  Rank& rank = ranks_[r];
  rank.reply_pending = true;
  const std::size_t peer = random_peer(r);
  am_.send_from_process(
      rank.pid, rank.ep, ranks_[peer].ep, kReq, 64, {},
      [this, r, remaining, then = std::move(then)]() mutable {
        spin_wait(r, [this, r] { return !ranks_[r].reply_pending; },
                  [this, r, remaining, then = std::move(then)]() mutable {
                    connect_chain(r, remaining - 1, std::move(then));
                  });
      });
}

void SpmdApp::barrier(std::size_t r, std::function<void()> then) {
  Rank& rank = ranks_[r];
  const std::uint32_t gen = ++rank.barrier_gen;
  const auto n = static_cast<std::uint32_t>(ranks_.size());
  if (n == 1) {
    then();
    return;
  }
  if (r != 0) {
    am_.send_from_process(
        rank.pid, rank.ep, ranks_[0].ep, kBarArrive, 32, gen,
        [this, r, gen, then = std::move(then)]() mutable {
          spin_wait(r,
                    [this, r, gen] {
                      return ranks_[r].released_gen >= gen;
                    },
                    std::move(then));
        });
    return;
  }
  // Rank 0: wait for everyone, then broadcast the release.
  spin_wait(r,
            [this, gen, n] {
              const auto it = barrier_arrivals_.find(gen);
              return it != barrier_arrivals_.end() &&
                     it->second == n - 1;
            },
            [this, r, gen, then = std::move(then)]() mutable {
              barrier_arrivals_.erase(gen);
              send_release_chain(r, 1, gen, std::move(then));
            });
}

void SpmdApp::send_release_chain(std::size_t r, std::size_t next,
                                 std::uint32_t gen,
                                 std::function<void()> then) {
  if (next == ranks_.size()) {
    then();
    return;
  }
  Rank& rank = ranks_[r];
  am_.send_from_process(
      rank.pid, rank.ep, ranks_[next].ep, kBarRelease, 32, gen,
      [this, r, next, gen, then = std::move(then)]() mutable {
        send_release_chain(r, next + 1, gen, std::move(then));
      });
}

void SpmdApp::spin_wait(std::size_t r, std::function<bool()> pred,
                        std::function<void()> then) {
  if (pred()) {
    then();
    return;
  }
  Rank& rank = ranks_[r];
  rank.node->cpu().compute(
      rank.pid, params_.spin_slice,
      [this, r, pred = std::move(pred), then = std::move(then)]() mutable {
        spin_wait(r, std::move(pred), std::move(then));
      });
}

void SpmdApp::finish_rank(std::size_t r) {
  Rank& rank = ranks_[r];
  rank.node->cpu().exit(rank.pid);
  if (++finished_ranks_ == ranks_.size()) {
    elapsed_ = am_.engine().now() - started_at_;
    if (done_) done_(elapsed_);
  }
}

}  // namespace now::glunix
