#include "glunix/collectives.hpp"

#include <cassert>

namespace now::glunix {

namespace {
struct BcastWire {
  std::uint64_t op;
  std::size_t rank;  // absolute rank of the receiver
};
struct ReduceWire {
  std::uint64_t op;
  std::size_t parent;  // absolute rank receiving the partial
  double value;
};
}  // namespace

Collectives::Collectives(proto::AmLayer& am, std::vector<os::Node*> nodes)
    : am_(am) {
  assert(!nodes.empty());
  for (std::size_t r = 0; r < nodes.size(); ++r) {
    const auto ep =
        am_.create_endpoint(*nodes[r], proto::AmLayer::Mode::kInterrupt);
    endpoints_.push_back(ep);
    am_.register_handler(ep, kBcast, [this](const proto::AmMessage& m) {
      const auto w = std::any_cast<BcastWire>(m.payload);
      bcast_forward(w.op, w.rank);
    });
    am_.register_handler(ep, kReduce, [this](const proto::AmMessage& m) {
      const auto w = std::any_cast<ReduceWire>(m.payload);
      Op& op = ops_.at(w.op);
      op.partial[w.parent] = op.combine(op.partial[w.parent], w.value);
      assert(op.missing[w.parent] > 0);
      if (--op.missing[w.parent] == 0) reduce_send_up(w.op, w.parent);
    });
  }
}

std::vector<std::size_t> Collectives::children_of(std::size_t rr) const {
  std::vector<std::size_t> out;
  const std::size_t n = endpoints_.size();
  for (std::size_t step = 1; rr + step < n; step <<= 1) {
    if (step > rr) out.push_back(rr + step);
  }
  return out;
}

std::size_t Collectives::parent_of(std::size_t rr) {
  assert(rr > 0);
  // Clear the highest set bit.
  std::size_t bit = 1;
  while ((bit << 1) <= rr) bit <<= 1;
  return rr - bit;
}

void Collectives::broadcast(std::size_t root, std::uint32_t bytes,
                            Done done) {
  assert(root < endpoints_.size());
  const std::uint64_t id = next_op_++;
  Op op;
  op.root = root;
  op.bytes = bytes;
  op.done = std::move(done);
  ops_.emplace(id, std::move(op));
  if (endpoints_.size() == 1) {
    Op& o = ops_.at(id);
    auto cb = std::move(o.done);
    ops_.erase(id);
    if (cb) cb();
    return;
  }
  bcast_forward(id, root);
}

void Collectives::bcast_forward(std::uint64_t op_id, std::size_t rank) {
  Op& op = ops_.at(op_id);
  const std::size_t n = endpoints_.size();
  if (rank != op.root) {
    ++op.received;
    if (op.received == n - 1) {
      auto cb = std::move(op.done);
      ops_.erase(op_id);
      if (cb) cb();
      return;
    }
  }
  const std::size_t rr = (rank + n - op.root) % n;
  for (const std::size_t child_rr : children_of(rr)) {
    const std::size_t child = (child_rr + op.root) % n;
    am_.send(endpoints_[rank], endpoints_[child], kBcast, op.bytes,
             BcastWire{op_id, child});
  }
}

void Collectives::reduce(const std::vector<double>& contributions,
                         Combine combine,
                         std::function<void(double)> done) {
  const std::size_t n = endpoints_.size();
  assert(contributions.size() == n);
  const std::uint64_t id = next_op_++;
  Op op;
  op.partial = contributions;
  op.combine = std::move(combine);
  op.reduce_done = std::move(done);
  op.missing.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    op.missing[r] = children_of(r).size();
  }
  ops_.emplace(id, std::move(op));
  // Leaves fire immediately (every communicator has at least one).
  for (std::size_t r = 0; r < n; ++r) {
    if (ops_.at(id).missing[r] == 0) {
      reduce_send_up(id, r);
      if (!ops_.contains(id)) return;  // n == 1: completed synchronously
    }
  }
}

void Collectives::reduce_send_up(std::uint64_t op_id, std::size_t rank) {
  Op& op = ops_.at(op_id);
  if (rank == 0) {
    auto cb = std::move(op.reduce_done);
    const double result = op.partial[0];
    ops_.erase(op_id);
    if (cb) cb(result);
    return;
  }
  const std::size_t parent = parent_of(rank);
  am_.send(endpoints_[rank], endpoints_[parent], kReduce, 32,
           ReduceWire{op_id, parent, op.partial[rank]});
}

void Collectives::barrier(Done done) {
  std::vector<double> zeros(endpoints_.size(), 0.0);
  reduce(zeros, [](double a, double b) { return a + b; },
         [this, done = std::move(done)](double) mutable {
           broadcast(0, 8, std::move(done));
         });
}

}  // namespace now::glunix
