// The Figure 3 study: overlaying an MPP workload on a NOW that is also
// serving interactive users (Arpaci et al., "The Interaction of Parallel
// and Sequential Workloads on a Network of Workstations").
//
// A stream of gang-scheduled parallel jobs (the LANL CM-5 mix) is run two
// ways:
//   * on a dedicated MPP partition, FCFS — the baseline response times;
//   * on a NOW of N workstations whose owners come and go per a usage
//     trace.  GLUnix only recruits machines idle for the one-minute window,
//     migrates a rank away (checkpoint + restore, gang paused) the moment
//     its machine's owner returns, and queues jobs when fewer than `width`
//     recruitable machines exist.
//
// The paper's result: with 64 workstations under a typical sequential load,
// the 32-node MPP workload runs only ~10 % slower than on the dedicated
// machine — "like getting almost a CM-5 for free."
#pragma once

#include <cstdint>
#include <vector>

#include "glunix/migration.hpp"
#include "sim/engine.hpp"
#include "trace/parallel_trace.hpp"
#include "trace/usage_trace.hpp"

namespace now::glunix {

struct OverlayParams {
  /// NOW size (Figure 3's x-axis).
  std::uint32_t workstations = 64;
  /// The paper's availability rule: no user activity for one minute.
  sim::Duration idle_window = 60 * sim::kSecond;
  /// Guest (rank) memory image moved at each migration.
  std::uint64_t guest_memory_bytes = 32ull << 20;
  MigrationParams migration;
  /// NOW node speed relative to an MPP node (paper assumes equal).
  double speed_factor = 1.0;
};

struct OverlayResult {
  /// Figure 3's y-axis.  Jobs are replayed with the *dedicated machine's
  /// schedule embedded*: each job becomes ready on the NOW at the instant
  /// it started on the dedicated MPP (the LANL trace came from the real
  /// machine, so its queueing is part of the workload).  Slowdown is then
  /// total NOW execution time (recruiting machines, migrations, stalls
  /// included) over total dedicated execution time; 1.1 = 10 % slower.
  double workload_slowdown = 0.0;
  double mean_response_now_sec = 0.0;
  double mean_response_mpp_sec = 0.0;
  std::uint64_t migrations = 0;
  /// Times a job had to pause because no recruitable machine existed.
  std::uint64_t stalls_for_machines = 0;
  std::uint64_t jobs_completed = 0;
  /// The other half of the bargain: how often a returning owner found a
  /// guest on their machine, and how long the freeze-and-leave took them.
  std::uint64_t user_disturbances = 0;
  double mean_user_delay_sec = 0.0;
};

/// FCFS response times on a dedicated MPP partition.
std::vector<sim::Duration> dedicated_mpp_response_times(
    const std::vector<trace::ParallelJob>& jobs, std::uint32_t partition);

/// FCFS start times on a dedicated MPP partition (the schedule the NOW
/// replay inherits).
std::vector<sim::SimTime> dedicated_mpp_start_times(
    const std::vector<trace::ParallelJob>& jobs, std::uint32_t partition);

/// Full overlay simulation.  `usage` must cover at least
/// `params.workstations` machines (traces are reused round-robin beyond
/// their width, as the original study did to scale past 53 machines).
OverlayResult simulate_overlay(const trace::UsageTrace& usage,
                               const std::vector<trace::ParallelJob>& jobs,
                               const OverlayParams& params);

}  // namespace now::glunix
