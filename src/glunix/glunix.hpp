// GLUnix: a global-layer Unix built *on top of* unmodified local systems.
//
// The paper's discipline, kept in the code structure: GLUnix never reaches
// into a node's internals.  Everything it does goes through a per-node
// daemon spoken to over RPC — spawn a guest process, sample console
// activity (every 2 seconds, like the original tracing daemons), answer
// heartbeats.  On top of those primitives the master layer provides:
//
//   * idle detection      — the one-minute no-input rule;
//   * remote execution    — run a batch job on somebody's idle machine;
//   * the social contract — the moment the owner touches the keyboard, the
//     guest is frozen and migrated away (checkpoint its memory, restore it
//     elsewhere), giving the user their whole machine back;
//   * fault tolerance     — heartbeats detect dead nodes; guests restart
//     from their last checkpoint on another machine, and the rest of the
//     cluster never notices.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "glunix/migration.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/rpc.hpp"

namespace now::glunix {

/// RPC methods served by each node's GLUnix daemon.
inline constexpr proto::MethodId kGluPing = 120;
inline constexpr proto::MethodId kGluSpawn = 121;
inline constexpr proto::MethodId kGluKill = 122;
inline constexpr proto::MethodId kGluProbeIdle = 123;
inline constexpr proto::MethodId kGluSuspend = 125;
inline constexpr proto::MethodId kGluResume = 126;

struct GlunixParams {
  /// A machine is recruitable after this much console silence.
  sim::Duration idle_window = 60 * sim::kSecond;
  /// Daemon console-sampling period (the original study logged every 2 s).
  sim::Duration poll_interval = 2 * sim::kSecond;
  sim::Duration heartbeat_interval = 1 * sim::kSecond;
  std::uint32_t heartbeat_misses = 3;
  /// Guests checkpoint this often; a node crash rolls back to the last one.
  sim::Duration checkpoint_interval = 60 * sim::kSecond;
  /// The social contract's fine print: "we explicitly limit the number of
  /// times per day external processes can delay any interactive user."  A
  /// machine whose owner has been disturbed this many times in the window
  /// is off-limits to new guests until the window rolls over.
  std::uint32_t max_evictions_per_window = 4;
  sim::Duration eviction_window = 24 * sim::kHour;
  MigrationParams migration;
};

using JobId = std::uint64_t;

struct GuestStats {
  std::uint64_t launched = 0;
  std::uint64_t completed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t crash_restarts = 0;
  std::uint64_t waiting_peak = 0;
  std::uint64_t gangs_launched = 0;
  std::uint64_t gangs_completed = 0;
  std::uint64_t gang_pauses = 0;  // whole-gang suspensions for a migration
  std::uint64_t owner_evictions = 0;  // guests displaced by a returning owner
};

class Glunix {
 public:
  /// `done(node)` reports where the job finally completed.
  using DoneFn = std::function<void(net::NodeId)>;
  using NodeDownFn = std::function<void(net::NodeId)>;

  /// The master runs on `nodes[master_index]`.
  Glunix(proto::RpcLayer& rpc, std::vector<os::Node*> nodes,
         GlunixParams params, std::size_t master_index = 0);
  Glunix(const Glunix&) = delete;
  Glunix& operator=(const Glunix&) = delete;

  /// Installs daemons and begins heartbeats + console polling.
  void start();

  /// Submits a batch job needing `work` of CPU and carrying `memory_bytes`
  /// of state.  It runs on an idle machine, migrating as owners return,
  /// and survives node crashes via checkpoints.  Queued if no machine is
  /// idle right now.
  JobId run_remote(sim::Duration work, std::uint64_t memory_bytes,
                   DoneFn done);

  /// Submits a gang of `width` ranks, each needing `work_per_rank` of CPU
  /// and carrying `memory_per_rank` of state.  The gang starts when
  /// `width` idle machines exist.  When an owner returns to a rank's
  /// machine (or it crashes), the *whole gang* is suspended while that
  /// rank migrates — "while one process is migrating, the rest of the
  /// parallel program is unlikely to make much progress."  `done` reports
  /// when every rank has finished.
  JobId run_parallel(std::uint32_t width, sim::Duration work_per_rank,
                     std::uint64_t memory_per_rank, std::function<void()> done);

  /// Nodes whose consoles have been quiet for the idle window (as of the
  /// master's latest poll results).
  std::size_t idle_node_count() const;
  bool node_believed_up(net::NodeId id) const;

  void set_node_down_handler(NodeDownFn fn) { on_down_ = std::move(fn); }
  /// Invoked when a previously-dead node answers heartbeats again
  /// (reboot / hot-swap: the cluster absorbs it without a restart).
  void set_node_up_handler(NodeDownFn fn) { on_up_ = std::move(fn); }
  const GuestStats& stats() const { return stats_; }
  sim::Duration migration_downtime(std::uint64_t bytes) const {
    return cost_.migrate_time(bytes);
  }

 private:
  struct NodeInfo {
    os::Node* node = nullptr;
    bool up = true;
    std::uint32_t missed_beats = 0;
    /// Latest daemon-reported idle state.
    bool reported_idle = false;
    JobId hosting = 0;  // 0 = none
    /// Owner disturbances charged against the per-window budget.
    std::uint32_t evictions_in_window = 0;
  };

  struct Guest {
    sim::Duration remaining = 0;
    sim::Duration checkpointed_remaining = 0;
    std::uint64_t memory_bytes = 0;
    net::NodeId where = net::kInvalidNode;
    os::ProcessId pid = os::kNoProcess;
    sim::SimTime seg_start = 0;
    bool in_transit = false;  // migrating or restarting
    /// True once the guest has run anywhere (so a move must ship state).
    bool has_state = false;
    /// Bumped at every (re)launch; stale checkpoint timers check it.
    std::uint64_t epoch = 0;
    sim::SimTime submitted_at = 0;
    DoneFn done;
  };

  struct Gang {
    struct Rank {
      sim::Duration remaining = 0;
      std::size_t where = SIZE_MAX;  // info_ index, SIZE_MAX = unplaced
      os::ProcessId pid = os::kNoProcess;
      sim::SimTime seg_start = 0;
      bool running = false;  // spawned and not suspended
      bool done = false;
    };
    std::vector<Rank> ranks;
    std::uint64_t memory_bytes = 0;
    bool started = false;    // first placement happened
    std::uint32_t done_ranks = 0;
    std::uint32_t suspended_count = 0;  // outstanding whole-gang pauses
    sim::SimTime submitted_at = 0;
    std::function<void()> done;
  };

  void install_daemon(os::Node& node);
  void heartbeat_tick();
  void poll_tick();
  void reset_eviction_budgets();
  void displace(std::size_t machine, bool node_crashed);
  void try_start_gang(JobId id);
  void gang_rank_spawn(JobId id, std::size_t rank);
  void gang_pause(JobId id);
  void gang_resume(JobId id);
  void gang_displace(JobId id, std::size_t rank, bool crashed);
  void gang_try_replace(JobId id);
  /// Retires elapsed compute on every running rank of a gang.
  void gang_account(Gang& g);
  void declare_down(std::size_t idx);
  std::optional<std::size_t> pick_idle_machine() const;
  void place_guest(JobId id);
  void launch_on(JobId id, std::size_t idx);
  void arm_checkpoint(JobId id, std::uint64_t epoch);
  void evict(JobId id, bool node_crashed);
  void schedule_queue_scan();

  proto::RpcLayer& rpc_;
  std::vector<os::Node*> nodes_;
  GlunixParams params_;
  std::size_t master_;
  MigrationCostModel cost_;
  std::vector<NodeInfo> info_;
  std::unordered_map<JobId, Guest> guests_;
  std::unordered_map<JobId, Gang> gangs_;
  std::vector<JobId> waiting_;
  std::vector<JobId> waiting_gangs_;
  JobId next_job_ = 1;
  NodeDownFn on_down_;
  NodeDownFn on_up_;
  GuestStats stats_;
  bool started_ = false;
  obs::Counter* obs_launched_;
  obs::Counter* obs_completed_;
  obs::Counter* obs_migrations_;
  obs::Counter* obs_crash_restarts_;
  obs::Counter* obs_gangs_launched_;
  obs::Counter* obs_gangs_completed_;
  obs::Counter* obs_gang_pauses_;
  obs::Counter* obs_owner_evictions_;
  obs::Gauge* obs_idle_nodes_;
  obs::TrackId obs_track_;

  net::NodeId master_node() const { return nodes_[master_]->id(); }
  sim::Engine& engine() { return rpc_.engine(); }
};

}  // namespace now::glunix
