#include "glunix/overlay_sim.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>

namespace now::glunix {

namespace {
/// FCFS space sharing on the dedicated partition: computes per-job start
/// and finish times.
void dedicated_mpp_schedule(const std::vector<trace::ParallelJob>& jobs,
                            std::uint32_t partition,
                            std::vector<sim::SimTime>* starts,
                            std::vector<sim::SimTime>* finishes) {
  starts->assign(jobs.size(), 0);
  finishes->assign(jobs.size(), 0);
  std::uint32_t free_nodes = partition;
  std::deque<std::size_t> queue;
  using Finish = std::pair<sim::SimTime, std::size_t>;
  std::priority_queue<Finish, std::vector<Finish>, std::greater<>> running;
  std::size_t next_arrival = 0;
  sim::SimTime now = 0;

  auto try_start = [&](sim::SimTime t) {
    while (!queue.empty()) {
      const std::size_t j = queue.front();
      if (jobs[j].width > free_nodes) break;  // strict FCFS, no backfill
      queue.pop_front();
      free_nodes -= jobs[j].width;
      (*starts)[j] = t;
      running.emplace(t + jobs[j].work, j);
    }
  };

  while (next_arrival < jobs.size() || !running.empty()) {
    const sim::SimTime t_arrive = next_arrival < jobs.size()
                                      ? jobs[next_arrival].arrival
                                      : INT64_MAX;
    const sim::SimTime t_finish =
        !running.empty() ? running.top().first : INT64_MAX;
    if (t_arrive <= t_finish) {
      now = t_arrive;
      queue.push_back(next_arrival++);
    } else {
      now = t_finish;
      const std::size_t j = running.top().second;
      running.pop();
      free_nodes += jobs[j].width;
      (*finishes)[j] = now;
    }
    try_start(now);
  }
}
}  // namespace

std::vector<sim::Duration> dedicated_mpp_response_times(
    const std::vector<trace::ParallelJob>& jobs, std::uint32_t partition) {
  std::vector<sim::SimTime> starts, finishes;
  dedicated_mpp_schedule(jobs, partition, &starts, &finishes);
  std::vector<sim::Duration> response(jobs.size(), 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    response[j] = finishes[j] - jobs[j].arrival;
  }
  return response;
}

std::vector<sim::SimTime> dedicated_mpp_start_times(
    const std::vector<trace::ParallelJob>& jobs, std::uint32_t partition) {
  std::vector<sim::SimTime> starts, finishes;
  dedicated_mpp_schedule(jobs, partition, &starts, &finishes);
  return starts;
}

namespace {

struct Machine {
  std::uint32_t trace_node = 0;
  int hosting = -1;  // job index or -1
};

struct JobState {
  double remaining_sec = 0;
  bool arrived = false;
  bool done = false;
  bool running = false;
  /// Machines currently holding this job's ranks.
  std::vector<std::uint32_t> machines;
  /// Ranks displaced and waiting for a replacement machine.
  std::uint32_t missing_ranks = 0;
  /// Migrations still in flight (gang paused until they land).
  std::uint32_t migrations_in_flight = 0;
  sim::SimTime run_started = 0;
  sim::EventId completion = 0;
  sim::SimTime finished_at = 0;
};

class Overlay {
 public:
  Overlay(const trace::UsageTrace& usage,
          const std::vector<trace::ParallelJob>& jobs,
          const std::vector<sim::SimTime>& ready, const OverlayParams& p)
      : usage_(usage), jobs_(jobs), ready_(ready), p_(p),
        cost_(p.migration) {
    machines_.resize(p.workstations);
    for (std::uint32_t m = 0; m < p.workstations; ++m) {
      machines_[m].trace_node = m % usage.workstations();
    }
    states_.resize(jobs.size());
  }

  OverlayResult run() {
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      states_[j].remaining_sec =
          sim::to_sec(jobs_[j].work) / p_.speed_factor;
      engine_.schedule_at(ready_[j], [this, j] { on_arrival(j); });
    }
    // User-return and machine-eligible edges from the trace.
    for (std::uint32_t m = 0; m < machines_.size(); ++m) {
      const auto& ivals = usage_.intervals(machines_[m].trace_node);
      for (const auto& b : ivals) {
        engine_.schedule_at(b.begin, [this, m] { on_user_return(m); });
        engine_.schedule_at(b.end + p_.idle_window,
                            [this] { service_needs(); });
      }
    }
    engine_.run();

    OverlayResult r;
    r.migrations = migrations_;
    r.stalls_for_machines = stalls_;
    r.user_disturbances = migrations_;
    // The returning owner waits out the freeze + checkpoint save; the
    // restore happens elsewhere, off their clock.
    r.mean_user_delay_sec =
        sim::to_sec(cost_.save_time(p_.guest_memory_bytes));
    double sum_now = 0;
    std::uint64_t n = 0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (!states_[j].done) continue;
      ++n;
      // Execution time from the moment the dedicated machine would have
      // started this job.
      sum_now += sim::to_sec(states_[j].finished_at - ready_[j]);
    }
    r.jobs_completed = n;
    r.mean_response_now_sec = n ? sum_now / static_cast<double>(n) : 0;
    return r;
  }

 private:
  bool recruitable(std::uint32_t m, sim::SimTime t) const {
    if (machines_[m].hosting >= 0) return false;
    const std::uint32_t node = machines_[m].trace_node;
    const sim::SimTime from = t >= p_.idle_window ? t - p_.idle_window : 0;
    return usage_.idle_through(node, from, t - from + 1);
  }

  /// How long machine `m` has been idle (the "likely to stay idle"
  /// predictor: heavy-tailed idle times mean long-idle machines last).
  sim::Duration idle_age(std::uint32_t m, sim::SimTime t) const {
    const auto& ivals = usage_.intervals(machines_[m].trace_node);
    sim::SimTime last_end = 0;
    for (const auto& b : ivals) {
      if (b.end <= t) last_end = b.end;
      if (b.begin > t) break;
    }
    return t - last_end;
  }

  std::vector<std::uint32_t> recruit(std::uint32_t want, sim::SimTime t) {
    std::vector<std::uint32_t> found;
    for (std::uint32_t m = 0; m < machines_.size(); ++m) {
      if (recruitable(m, t)) found.push_back(m);
    }
    std::sort(found.begin(), found.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return idle_age(a, t) > idle_age(b, t);
              });
    if (found.size() > want) found.resize(want);
    return found;
  }

  void on_arrival(std::size_t j) {
    states_[j].arrived = true;
    pending_.push_back(j);
    service_needs();
  }

  void start_running(std::size_t j) {
    JobState& s = states_[j];
    assert(!s.running && s.missing_ranks == 0 &&
           s.migrations_in_flight == 0);
    s.running = true;
    s.run_started = engine_.now();
    s.completion = engine_.schedule_in(sim::from_sec(s.remaining_sec),
                                       [this, j] { on_complete(j); });
  }

  void pause(std::size_t j) {
    JobState& s = states_[j];
    if (!s.running) return;
    s.running = false;
    engine_.cancel(s.completion);
    s.completion = 0;
    s.remaining_sec -= sim::to_sec(engine_.now() - s.run_started);
    if (s.remaining_sec < 0) s.remaining_sec = 0;
  }

  void maybe_resume(std::size_t j) {
    JobState& s = states_[j];
    if (s.done || s.running) return;
    if (s.missing_ranks == 0 && s.migrations_in_flight == 0 &&
        !s.machines.empty()) {
      start_running(j);
    }
  }

  void on_complete(std::size_t j) {
    JobState& s = states_[j];
    s.done = true;
    s.running = false;
    s.finished_at = engine_.now();
    for (const std::uint32_t m : s.machines) machines_[m].hosting = -1;
    s.machines.clear();
    service_needs();
  }

  void on_user_return(std::uint32_t m) {
    const int j = machines_[m].hosting;
    if (j < 0) return;
    // The guest is frozen instantly (the user gets the machine back now);
    // its image then streams to a replacement when one exists.
    JobState& s = states_[static_cast<std::size_t>(j)];
    machines_[m].hosting = -1;
    std::erase(s.machines, m);
    pause(static_cast<std::size_t>(j));
    ++s.missing_ranks;
    service_needs();
  }

  /// Serves displaced ranks first, then queued jobs, FIFO.
  void service_needs() {
    const sim::SimTime t = engine_.now();
    // Displaced ranks.
    for (std::size_t j = 0; j < states_.size(); ++j) {
      JobState& s = states_[j];
      while (s.missing_ranks > 0) {
        auto got = recruit(1, t);
        if (got.empty()) {
          ++stalls_;
          break;
        }
        const std::uint32_t m = got[0];
        machines_[m].hosting = static_cast<int>(j);
        s.machines.push_back(m);
        --s.missing_ranks;
        ++s.migrations_in_flight;
        ++migrations_;
        engine_.schedule_in(
            cost_.migrate_time(p_.guest_memory_bytes), [this, j] {
              JobState& sj = states_[j];
              --sj.migrations_in_flight;
              maybe_resume(j);
            });
      }
    }
    // Queued jobs, FIFO.
    while (!pending_.empty()) {
      const std::size_t j = pending_.front();
      JobState& s = states_[j];
      auto got = recruit(jobs_[j].width, t);
      if (got.size() < jobs_[j].width) break;
      pending_.pop_front();
      for (const std::uint32_t m : got) {
        machines_[m].hosting = static_cast<int>(j);
      }
      s.machines = std::move(got);
      start_running(j);
    }
  }

  const trace::UsageTrace& usage_;
  const std::vector<trace::ParallelJob>& jobs_;
  const std::vector<sim::SimTime>& ready_;
  OverlayParams p_;
  MigrationCostModel cost_;
  sim::Engine engine_;
  std::vector<Machine> machines_;
  std::vector<JobState> states_;
  std::deque<std::size_t> pending_;
  std::uint64_t migrations_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace

OverlayResult simulate_overlay(const trace::UsageTrace& usage,
                               const std::vector<trace::ParallelJob>& jobs,
                               const OverlayParams& params) {
  // The workload inherits the dedicated machine's FCFS schedule: each job
  // becomes ready on the NOW when the MPP would have started it.
  const auto ready = dedicated_mpp_start_times(jobs, /*partition=*/32);
  Overlay sim(usage, jobs, ready, params);
  OverlayResult r = sim.run();

  double sum_ideal = 0;
  for (const auto& j : jobs) {
    sum_ideal += sim::to_sec(j.work) / params.speed_factor;
  }
  r.mean_response_mpp_sec =
      jobs.empty() ? 0 : sum_ideal / static_cast<double>(jobs.size());
  if (r.mean_response_mpp_sec > 0 && r.jobs_completed > 0) {
    // Note: if not every job completed (NOW too small for the trace), the
    // ratio is computed over completed jobs' execution only; callers
    // should check jobs_completed.
    double sum_ideal_done = 0;
    // Recompute the ideal over completed jobs for a fair ratio.
    // (Completed set is not exposed; approximate with all jobs when all
    // completed, which is the common case in the benches.)
    sum_ideal_done = r.jobs_completed == jobs.size()
                         ? sum_ideal
                         : sum_ideal *
                               (static_cast<double>(r.jobs_completed) /
                                static_cast<double>(jobs.size()));
    const double sum_now =
        r.mean_response_now_sec * static_cast<double>(r.jobs_completed);
    r.workload_slowdown = sum_now / sum_ideal_done;
  }
  return r;
}

}  // namespace now::glunix
