#include "glunix/coschedule.hpp"

#include <cassert>

namespace now::glunix {

std::size_t Coscheduler::add_gang(Gang gang) {
  assert(!gang.empty());
  // New gangs start suspended; their slot will resume them.
  for (const Member& m : gang) m.cpu->suspend(m.pid);
  gangs_.push_back(std::move(gang));
  live_.push_back(true);
  return gangs_.size() - 1;
}

void Coscheduler::remove_gang(std::size_t index) {
  assert(index < gangs_.size());
  live_[index] = false;
  gangs_[index].clear();
}

std::size_t Coscheduler::gang_count() const {
  std::size_t n = 0;
  for (const bool l : live_) {
    if (l) ++n;
  }
  return n;
}

void Coscheduler::apply(const Gang& gang, bool run) {
  for (const Member& m : gang) {
    const sim::Duration lag =
        skew_ > 0 ? static_cast<sim::Duration>(
                        rng_.uniform(0.0, static_cast<double>(skew_)))
                  : 0;
    os::Cpu* cpu = m.cpu;
    const os::ProcessId pid = m.pid;
    if (lag == 0) {
      run ? cpu->resume(pid) : cpu->suspend(pid);
    } else {
      engine_.schedule_in(lag, [cpu, pid, run] {
        run ? cpu->resume(pid) : cpu->suspend(pid);
      });
    }
  }
}

void Coscheduler::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void Coscheduler::stop() {
  running_ = false;
  if (timer_ != 0) {
    engine_.cancel(timer_);
    timer_ = 0;
  }
  // Let everything run freely again.
  for (std::size_t g = 0; g < gangs_.size(); ++g) {
    if (live_[g]) apply(gangs_[g], /*run=*/true);
  }
}

void Coscheduler::tick() {
  timer_ = 0;
  if (!running_) return;

  // Suspend the gang whose slot just ended.
  if (current_ < gangs_.size() && live_[current_]) {
    apply(gangs_[current_], /*run=*/false);
  }

  // Advance to the next live gang (if any).
  if (!gangs_.empty()) {
    std::size_t probe = (current_ + 1) % gangs_.size();
    for (std::size_t i = 0; i < gangs_.size(); ++i) {
      if (live_[probe]) break;
      probe = (probe + 1) % gangs_.size();
    }
    current_ = probe;
    if (live_[current_]) {
      apply(gangs_[current_], /*run=*/true);
      ++slots_run_;
    }
  }
  timer_ = engine_.schedule_in(slot_, [this] { tick(); });
}

}  // namespace now::glunix
