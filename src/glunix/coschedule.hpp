// Coscheduling (Ousterhout 1982): the global time-slice matrix.
//
// Each parallel job is a *gang* of processes spread over workstations.  The
// coscheduler rotates through gangs in globally aligned slots: during gang
// g's slot, its member process on every node is resumed and every other
// gang's member is suspended — so the constituents of a parallel program
// actually run in parallel and fine-grain communication completes in
// microseconds instead of waiting out a peer's local time slice (Figure 4).
//
// A per-node `skew` models imperfect clock alignment across the building —
// the knob the ablation bench turns.
#pragma once

#include <cstdint>
#include <vector>

#include "os/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace now::glunix {

class Coscheduler {
 public:
  struct Member {
    os::Cpu* cpu;
    os::ProcessId pid;
  };
  using Gang = std::vector<Member>;

  /// `slot` is the global time slice; `skew` bounds the random per-node lag
  /// in applying each slot switch (0 = perfectly aligned).
  Coscheduler(sim::Engine& engine, sim::Duration slot,
              sim::Duration skew = 0, std::uint64_t seed = 1)
      : engine_(engine), slot_(slot), skew_(skew),
        rng_(seed, /*stream=*/0x636f7363) {}
  Coscheduler(const Coscheduler&) = delete;
  Coscheduler& operator=(const Coscheduler&) = delete;

  /// Registers a gang; it starts suspended until its first slot.
  /// Returns the gang's index.
  std::size_t add_gang(Gang gang);

  /// Removes a finished gang (its processes are left alone).
  void remove_gang(std::size_t index);

  /// Starts rotating.  Gangs added later join the rotation.
  void start();
  void stop();

  std::size_t gang_count() const;
  std::size_t slots_run() const { return slots_run_; }

 private:
  void tick();
  void apply(const Gang& gang, bool run);

  sim::Engine& engine_;
  sim::Duration slot_;
  sim::Duration skew_;
  sim::Pcg32 rng_;
  std::vector<Gang> gangs_;          // empty slot = removed
  std::vector<bool> live_;
  std::size_t current_ = 0;
  bool running_ = false;
  sim::EventId timer_ = 0;
  std::size_t slots_run_ = 0;
};

}  // namespace now::glunix
