// Process-migration cost model.
//
// GLUnix guarantees interactive users their machine back by migrating guest
// processes away when the user returns — including their *memory state*, so
// the returning user's working set is intact.  The paper's arithmetic: with
// ATM bandwidth and a parallel file system, 64 MB of DRAM can be saved or
// restored in under 4 seconds.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace now::glunix {

struct MigrationParams {
  /// Deliverable network bandwidth from one node (155 Mb/s ATM payload).
  double network_mbytes_per_sec = 19.4;
  /// Aggregate parallel-file-system bandwidth available to one writer.
  double pfs_mbytes_per_sec = 32.0;
  /// Fixed cost: freeze the process, walk page tables, reprotect.
  sim::Duration freeze_overhead = 150 * sim::kMillisecond;
};

class MigrationCostModel {
 public:
  explicit MigrationCostModel(MigrationParams p = {}) : p_(p) {}

  /// Effective streaming bandwidth: the slower of the NIC and the PFS.
  double effective_mbytes_per_sec() const {
    return std::min(p_.network_mbytes_per_sec, p_.pfs_mbytes_per_sec);
  }

  /// Time to checkpoint `bytes` of process state off the machine.
  sim::Duration save_time(std::uint64_t bytes) const {
    return p_.freeze_overhead + stream_time(bytes);
  }

  /// Time to restore `bytes` onto a (possibly different) machine.
  sim::Duration restore_time(std::uint64_t bytes) const {
    return p_.freeze_overhead + stream_time(bytes);
  }

  /// Full migration: save at the source + restore at the destination.
  sim::Duration migrate_time(std::uint64_t bytes) const {
    return save_time(bytes) + restore_time(bytes);
  }

  const MigrationParams& params() const { return p_; }

 private:
  sim::Duration stream_time(std::uint64_t bytes) const {
    const double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
    return sim::from_sec(mb / effective_mbytes_per_sec());
  }

  MigrationParams p_;
};

}  // namespace now::glunix
