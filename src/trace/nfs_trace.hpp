// Synthetic NFS message mix, standing in for the week of departmental file
// server traffic (230 clients) the paper analysed.
//
// The headline statistic: 95 % of NFS messages are under 200 bytes —
// metadata queries (getattr/lookup) that must complete before any data
// moves — so round-trip overhead+latency, not bandwidth, governs NFS
// performance.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace now::trace {

struct NfsMessage {
  std::uint32_t bytes = 0;
  bool is_metadata = true;
};

struct NfsWorkloadParams {
  std::uint64_t messages = 100'000;
  /// Fraction of messages that are small metadata operations.
  double metadata_fraction = 0.95;
  /// Metadata message sizes: uniform 64-200 bytes.
  std::uint32_t metadata_min = 64;
  std::uint32_t metadata_max = 200;
  /// Data messages as they appear on the wire: 8 KB NFS reads fragment at
  /// the Ethernet MTU, so individual data packets are 512-1472 bytes.
  std::uint32_t data_min = 512;
  std::uint32_t data_max = 1472;
  std::uint64_t seed = 1;
};

std::vector<NfsMessage> generate_nfs_messages(const NfsWorkloadParams& p);

/// Total one-way wire+CPU time for the mix under a cost model with
/// per-message fixed cost and per-byte cost — used to reproduce the paper's
/// "8x bandwidth, only ~20 % better" arithmetic.
double total_time_us(const std::vector<NfsMessage>& msgs,
                     double fixed_us_per_message, double us_per_byte);

/// Fraction of messages under `bytes` (the 95 % < 200 B check).
double fraction_below(const std::vector<NfsMessage>& msgs,
                      std::uint32_t bytes);

}  // namespace now::trace
