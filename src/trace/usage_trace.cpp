#include "trace/usage_trace.hpp"

#include <algorithm>

#include "sim/random.hpp"

namespace now::trace {

UsageTrace::UsageTrace(const UsageParams& p) : duration_(p.duration) {
  sim::Pcg32 rng(p.seed, /*stream=*/0x75736167);
  per_node_.resize(p.workstations);
  for (std::uint32_t n = 0; n < p.workstations; ++n) {
    if (!rng.bernoulli(p.owner_present_probability)) continue;  // away today
    // The owner arrives some time in the first third of the day.
    sim::SimTime t = static_cast<sim::SimTime>(
        rng.uniform(0.0, static_cast<double>(p.duration) / 3.0));
    while (t < p.duration) {
      const auto busy_len = static_cast<sim::Duration>(
          rng.exponential(static_cast<double>(p.mean_busy)));
      const sim::SimTime end = std::min<sim::SimTime>(t + busy_len,
                                                      p.duration);
      if (end > t) per_node_[n].push_back(BusyInterval{t, end});
      const auto idle_len = static_cast<sim::Duration>(
          rng.pareto(p.idle_tail_alpha, static_cast<double>(p.min_idle),
                     static_cast<double>(p.max_idle)));
      t = end + idle_len;
    }
  }
}

bool UsageTrace::busy(std::uint32_t node, sim::SimTime t) const {
  const auto& v = per_node_[node];
  // First interval beginning after t; the one before may cover t.
  auto it = std::upper_bound(v.begin(), v.end(), t,
                             [](sim::SimTime x, const BusyInterval& b) {
                               return x < b.begin;
                             });
  if (it == v.begin()) return false;
  --it;
  return t < it->end;
}

bool UsageTrace::idle_through(std::uint32_t node, sim::SimTime t,
                              sim::Duration window) const {
  const auto& v = per_node_[node];
  const sim::SimTime end = t + window;
  for (const BusyInterval& b : v) {
    if (b.begin >= end) break;
    if (b.end > t) return false;  // overlaps [t, end)
  }
  return true;
}

double UsageTrace::fraction_always_idle() const {
  if (per_node_.empty()) return 1.0;
  std::size_t idle = 0;
  for (const auto& v : per_node_) {
    if (v.empty()) ++idle;
  }
  return static_cast<double>(idle) / static_cast<double>(per_node_.size());
}

double UsageTrace::average_idle_fraction(sim::Duration step) const {
  if (per_node_.empty() || duration_ <= 0) return 1.0;
  std::uint64_t samples = 0, idle = 0;
  for (std::uint32_t n = 0; n < per_node_.size(); ++n) {
    for (sim::SimTime t = 0; t < duration_; t += step) {
      ++samples;
      if (!busy(n, t)) ++idle;
    }
  }
  return static_cast<double>(idle) / static_cast<double>(samples);
}

}  // namespace now::trace
