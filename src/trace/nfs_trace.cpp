#include "trace/nfs_trace.hpp"

#include "sim/random.hpp"

namespace now::trace {

std::vector<NfsMessage> generate_nfs_messages(const NfsWorkloadParams& p) {
  sim::Pcg32 rng(p.seed, /*stream=*/0x6e6673);
  std::vector<NfsMessage> out;
  out.reserve(p.messages);
  for (std::uint64_t i = 0; i < p.messages; ++i) {
    NfsMessage m;
    if (rng.bernoulli(p.metadata_fraction)) {
      m.is_metadata = true;
      m.bytes = static_cast<std::uint32_t>(
          rng.uniform_int(p.metadata_min, p.metadata_max));
    } else {
      m.is_metadata = false;
      m.bytes = static_cast<std::uint32_t>(
          rng.uniform_int(p.data_min, p.data_max));
    }
    out.push_back(m);
  }
  return out;
}

double total_time_us(const std::vector<NfsMessage>& msgs,
                     double fixed_us_per_message, double us_per_byte) {
  double sum = 0;
  for (const NfsMessage& m : msgs) {
    sum += fixed_us_per_message + us_per_byte * m.bytes;
  }
  return sum;
}

double fraction_below(const std::vector<NfsMessage>& msgs,
                      std::uint32_t bytes) {
  if (msgs.empty()) return 0;
  std::uint64_t n = 0;
  for (const NfsMessage& m : msgs) {
    if (m.bytes < bytes) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(msgs.size());
}

}  // namespace now::trace
