#include "trace/parallel_trace.hpp"

#include <cmath>

#include "sim/random.hpp"

namespace now::trace {

std::vector<ParallelJob> generate_parallel_jobs(
    const ParallelJobParams& p) {
  sim::Pcg32 rng(p.seed, /*stream=*/0x6a6f6273);
  std::vector<ParallelJob> jobs;
  sim::SimTime t = 0;
  for (;;) {
    t += static_cast<sim::Duration>(
        rng.exponential(static_cast<double>(p.mean_interarrival)));
    if (t >= p.duration) break;
    ParallelJob j;
    j.arrival = t;
    j.development = rng.bernoulli(p.development_fraction);
    // Widths: development jobs small (4-16), production often full width.
    std::uint32_t w = 4;
    if (j.development) {
      const int shift = static_cast<int>(rng.next_below(3));  // 4,8,16
      w = 4u << shift;
    } else {
      const int shift = static_cast<int>(rng.next_below(3));  // 8,16,32
      w = 8u << shift;
    }
    j.width = std::min(w, p.partition);
    if (j.development) {
      j.work = static_cast<sim::Duration>(
          rng.exponential(static_cast<double>(2 * sim::kMinute)));
    } else {
      // Log-uniform between 5 minutes and 2 hours.
      const double lo = std::log(5.0 * 60.0);
      const double hi = std::log(2.0 * 3600.0);
      j.work = sim::from_sec(std::exp(rng.uniform(lo, hi)));
    }
    if (j.work < sim::kSecond) j.work = sim::kSecond;
    jobs.push_back(j);
  }
  return jobs;
}

double total_processor_seconds(const std::vector<ParallelJob>& jobs) {
  double sum = 0;
  for (const ParallelJob& j : jobs) {
    sum += sim::to_sec(j.work) * j.width;
  }
  return sum;
}

}  // namespace now::trace
