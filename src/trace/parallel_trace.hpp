// Synthetic parallel-job trace, standing in for the month of LANL CM-5
// accounting data (32-node partition, mix of production and development
// runs) used in the Figure 3 study.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace now::trace {

struct ParallelJob {
  sim::SimTime arrival = 0;
  /// Processors the gang needs (power of two, <= partition width).
  std::uint32_t width = 32;
  /// Per-processor CPU demand when run undisturbed.
  sim::Duration work = 0;
  bool development = false;  // short debugging run vs production run
};

struct ParallelJobParams {
  sim::Duration duration = 12 * sim::kHour;
  /// Partition size of the traced MPP.
  std::uint32_t partition = 32;
  /// Mean time between job arrivals.
  sim::Duration mean_interarrival = 12 * sim::kMinute;
  /// Development runs: short (mean 2 min); production: log-uniform
  /// 5 min - 2 h.
  double development_fraction = 0.6;
  std::uint64_t seed = 1;
};

std::vector<ParallelJob> generate_parallel_jobs(
    const ParallelJobParams& params);

/// Aggregate demand in processor-seconds, for utilization sanity checks.
double total_processor_seconds(const std::vector<ParallelJob>& jobs);

}  // namespace now::trace
