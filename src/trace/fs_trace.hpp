// Synthetic file-system trace, standing in for the two-day Berkeley trace
// behind Table 3.
//
// What matters for cooperative caching is the *sharing structure*: a pool
// of widely shared blocks (executables, font files) that many clients read,
// plus a per-client private working set larger than one client's cache.
// Popularities are Zipf; read/write mix and rates are parameterised.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace now::trace {

struct FsAccess {
  sim::SimTime at = 0;
  std::uint32_t client = 0;
  std::uint64_t block = 0;
  bool is_write = false;
};

struct FsWorkloadParams {
  std::uint32_t clients = 42;
  std::uint64_t accesses_per_client = 40'000;
  /// Widely shared blocks (executables/fonts): ~96 MB at 8 KB blocks.
  std::uint32_t shared_blocks = 12'288;
  /// Per-client private blocks: ~56 MB — deliberately bigger than the
  /// 16 MB client cache of Table 3.
  std::uint32_t private_blocks = 7'168;
  /// Fraction of accesses that go to the shared pool.
  double shared_fraction = 0.30;
  double zipf_shared = 1.0;
  double zipf_private = 0.80;
  double write_fraction = 0.12;
  /// Activity skew, as in the real Berkeley trace: a minority of clients do
  /// most of the work while the rest are nearly idle — idle clients' cache
  /// memory is exactly what cooperative caching recruits.
  double heavy_client_fraction = 0.35;
  /// Light clients issue this fraction of a heavy client's accesses.
  double light_activity_scale = 0.08;
  /// Mean inter-access gap per client (only used for timestamps).
  sim::Duration mean_gap = 50 * sim::kMillisecond;
  std::uint64_t seed = 1;
};

/// Generates a time-ordered access stream.
std::vector<FsAccess> generate_fs_trace(const FsWorkloadParams& params);

}  // namespace now::trace
