// Trace file I/O: simple line-oriented formats so real traces (or traces
// from other tools) can replace the synthetic generators, and synthetic
// ones can be exported for inspection.
//
// Formats (one record per line, '#' comments and blank lines ignored):
//   file-system access : <time_us> <client> <block> <r|w>
//   busy interval      : <node> <begin_us> <end_us>
//   parallel job       : <arrival_us> <width> <work_us> <p|d>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/fs_trace.hpp"
#include "trace/parallel_trace.hpp"
#include "trace/usage_trace.hpp"

namespace now::trace {

// --- File-system traces -----------------------------------------------
void write_fs_trace(std::ostream& out, const std::vector<FsAccess>& trace);
/// Throws std::runtime_error on malformed input, with the line number.
std::vector<FsAccess> read_fs_trace(std::istream& in);

// --- Usage (busy-interval) traces -------------------------------------
void write_usage_trace(std::ostream& out, const UsageTrace& trace);
/// Returns per-node busy intervals (node ids may be sparse; the result is
/// sized to the largest id + 1).
std::vector<std::vector<BusyInterval>> read_usage_intervals(
    std::istream& in);

// --- Parallel-job traces -----------------------------------------------
void write_parallel_jobs(std::ostream& out,
                         const std::vector<ParallelJob>& jobs);
std::vector<ParallelJob> read_parallel_jobs(std::istream& in);

}  // namespace now::trace
