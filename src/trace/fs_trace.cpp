#include "trace/fs_trace.hpp"

#include <algorithm>

#include "sim/random.hpp"

namespace now::trace {

std::vector<FsAccess> generate_fs_trace(const FsWorkloadParams& p) {
  sim::Pcg32 rng(p.seed, /*stream=*/0x66737472);
  const sim::ZipfSampler shared(p.shared_blocks, p.zipf_shared);
  const sim::ZipfSampler priv(p.private_blocks, p.zipf_private);

  std::vector<FsAccess> out;
  out.reserve(p.clients * p.accesses_per_client);

  // Per-client virtual clocks; the final stream is merged by time.
  for (std::uint32_t c = 0; c < p.clients; ++c) {
    sim::SimTime t = 0;
    // Each client walks the shared popularity ranking through its own
    // random permutation-offset so different clients favour overlapping
    // but not identical hot sets.
    const std::uint32_t rotate = rng.next_below(p.shared_blocks / 8 + 1);
    const bool heavy = rng.bernoulli(p.heavy_client_fraction);
    const auto n_accesses = static_cast<std::uint64_t>(
        heavy ? static_cast<double>(p.accesses_per_client)
              : static_cast<double>(p.accesses_per_client) *
                    p.light_activity_scale);
    for (std::uint64_t i = 0; i < n_accesses; ++i) {
      t += static_cast<sim::Duration>(
          rng.exponential(static_cast<double>(p.mean_gap)));
      FsAccess a;
      a.at = t;
      a.client = c;
      a.is_write = rng.bernoulli(p.write_fraction);
      if (rng.bernoulli(p.shared_fraction)) {
        const std::uint32_t rank =
            (shared.sample(rng) + rotate) % p.shared_blocks;
        a.block = rank;
      } else {
        a.block = p.shared_blocks +
                  static_cast<std::uint64_t>(c) * p.private_blocks +
                  priv.sample(rng);
      }
      out.push_back(a);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FsAccess& a, const FsAccess& b) {
                     return a.at < b.at;
                   });
  return out;
}

}  // namespace now::trace
