// Synthetic interactive-usage trace, standing in for the paper's two months
// of logs from 53 DECstations (CPU/keyboard/mouse sampled every 2 s).
//
// The finding that matters: "even during the daytime hours, more than 60
// percent of workstations were available 100 percent of the time" — idleness
// is plentiful and heavy-tailed.  Each workstation alternates busy bursts
// and long-tailed idle gaps; only a subset of machines see any use on a
// given day.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace now::trace {

struct BusyInterval {
  sim::SimTime begin = 0;
  sim::SimTime end = 0;
};

struct UsageParams {
  std::uint32_t workstations = 53;
  sim::Duration duration = 12 * sim::kHour;  // one working day
  /// Probability a workstation's owner shows up at all.
  double owner_present_probability = 0.55;
  /// Busy-burst length: exponential with this mean.
  sim::Duration mean_busy = 4 * sim::kMinute;
  /// Idle-gap length: bounded Pareto (heavy tail) with this minimum.
  sim::Duration min_idle = 2 * sim::kMinute;
  sim::Duration max_idle = 3 * sim::kHour;
  double idle_tail_alpha = 1.1;
  std::uint64_t seed = 1;
};

/// A day of per-workstation busy intervals, queryable by time.
class UsageTrace {
 public:
  explicit UsageTrace(const UsageParams& params);

  std::uint32_t workstations() const {
    return static_cast<std::uint32_t>(per_node_.size());
  }
  sim::Duration duration() const { return duration_; }

  /// True if a user was active on `node` at `t`.
  bool busy(std::uint32_t node, sim::SimTime t) const;

  /// True if `node` sees no activity anywhere in [t, t+window].
  bool idle_through(std::uint32_t node, sim::SimTime t,
                    sim::Duration window) const;

  const std::vector<BusyInterval>& intervals(std::uint32_t node) const {
    return per_node_[node];
  }

  /// Fraction of workstations with zero activity across the whole trace —
  /// the paper's ">60 % available 100 % of the time" statistic.
  double fraction_always_idle() const;

  /// Fraction of (node, t) samples that are idle, sampling every `step`.
  double average_idle_fraction(sim::Duration step) const;

 private:
  sim::Duration duration_;
  std::vector<std::vector<BusyInterval>> per_node_;
};

}  // namespace now::trace
