#include "trace/trace_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace now::trace {

namespace {
/// Pulls the next content line; returns false at EOF.
bool next_line(std::istream& in, std::string* line, std::size_t* lineno) {
  while (std::getline(in, *line)) {
    ++*lineno;
    const auto first = line->find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;     // blank
    if ((*line)[first] == '#') continue;          // comment
    return true;
  }
  return false;
}

[[noreturn]] void bad_line(const char* what, std::size_t lineno) {
  throw std::runtime_error(std::string("trace parse error (") + what +
                           ") at line " + std::to_string(lineno));
}
}  // namespace

void write_fs_trace(std::ostream& out, const std::vector<FsAccess>& trace) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# fs trace: <time_us> <client> <block> <r|w>\n";
  for (const FsAccess& a : trace) {
    out << sim::to_us(a.at) << ' ' << a.client << ' ' << a.block << ' '
        << (a.is_write ? 'w' : 'r') << '\n';
  }
}

std::vector<FsAccess> read_fs_trace(std::istream& in) {
  std::vector<FsAccess> out;
  std::string line;
  std::size_t lineno = 0;
  while (next_line(in, &line, &lineno)) {
    std::istringstream ls(line);
    double time_us = 0;
    FsAccess a;
    char rw = '?';
    if (!(ls >> time_us >> a.client >> a.block >> rw) ||
        (rw != 'r' && rw != 'w')) {
      bad_line("fs access", lineno);
    }
    a.at = sim::from_us(time_us);
    a.is_write = rw == 'w';
    out.push_back(a);
  }
  return out;
}

void write_usage_trace(std::ostream& out, const UsageTrace& trace) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# usage trace: <node> <begin_us> <end_us>\n";
  for (std::uint32_t n = 0; n < trace.workstations(); ++n) {
    for (const BusyInterval& b : trace.intervals(n)) {
      out << n << ' ' << sim::to_us(b.begin) << ' ' << sim::to_us(b.end)
          << '\n';
    }
  }
}

std::vector<std::vector<BusyInterval>> read_usage_intervals(
    std::istream& in) {
  std::vector<std::vector<BusyInterval>> out;
  std::string line;
  std::size_t lineno = 0;
  while (next_line(in, &line, &lineno)) {
    std::istringstream ls(line);
    std::uint32_t node = 0;
    double begin_us = 0, end_us = 0;
    if (!(ls >> node >> begin_us >> end_us) || end_us < begin_us) {
      bad_line("busy interval", lineno);
    }
    if (node >= out.size()) out.resize(node + 1);
    out[node].push_back(
        BusyInterval{sim::from_us(begin_us), sim::from_us(end_us)});
  }
  return out;
}

void write_parallel_jobs(std::ostream& out,
                         const std::vector<ParallelJob>& jobs) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# parallel jobs: <arrival_us> <width> <work_us> <p|d>\n";
  for (const ParallelJob& j : jobs) {
    out << sim::to_us(j.arrival) << ' ' << j.width << ' '
        << sim::to_us(j.work) << ' ' << (j.development ? 'd' : 'p') << '\n';
  }
}

std::vector<ParallelJob> read_parallel_jobs(std::istream& in) {
  std::vector<ParallelJob> out;
  std::string line;
  std::size_t lineno = 0;
  while (next_line(in, &line, &lineno)) {
    std::istringstream ls(line);
    double arrival_us = 0, work_us = 0;
    ParallelJob j;
    char kind = '?';
    if (!(ls >> arrival_us >> j.width >> work_us >> kind) ||
        (kind != 'p' && kind != 'd') || j.width == 0) {
      bad_line("parallel job", lineno);
    }
    j.arrival = sim::from_us(arrival_us);
    j.work = sim::from_us(work_us);
    j.development = kind == 'd';
    out.push_back(j);
  }
  return out;
}

}  // namespace now::trace
