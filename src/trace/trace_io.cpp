#include "trace/trace_io.hpp"

#include <istream>
#include <limits>
#include <ostream>

#include "replay/cursor.hpp"

// The readers here materialize whole traces into vectors for callers that
// want random access (tests, generators round-tripping).  They are thin
// wrappers over the streaming cursors in replay/cursor.hpp — one parser,
// one error-message convention ("trace parse error (...) at line N"), and
// the same monotonic-timestamp enforcement whether a trace is replayed
// incrementally or loaded whole.

namespace now::trace {

void write_fs_trace(std::ostream& out, const std::vector<FsAccess>& trace) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# fs trace: <time_us> <client> <block> <r|w>\n";
  for (const FsAccess& a : trace) {
    out << sim::to_us(a.at) << ' ' << a.client << ' ' << a.block << ' '
        << (a.is_write ? 'w' : 'r') << '\n';
  }
}

std::vector<FsAccess> read_fs_trace(std::istream& in) {
  std::vector<FsAccess> out;
  replay::FsTraceCursor cur(in);
  while (auto a = cur.next()) out.push_back(*a);
  return out;
}

void write_usage_trace(std::ostream& out, const UsageTrace& trace) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# usage trace: <node> <begin_us> <end_us>\n";
  for (std::uint32_t n = 0; n < trace.workstations(); ++n) {
    for (const BusyInterval& b : trace.intervals(n)) {
      out << n << ' ' << sim::to_us(b.begin) << ' ' << sim::to_us(b.end)
          << '\n';
    }
  }
}

std::vector<std::vector<BusyInterval>> read_usage_intervals(
    std::istream& in) {
  std::vector<std::vector<BusyInterval>> out;
  replay::UsageIntervalCursor cur(in);
  while (auto row = cur.next()) {
    if (row->node >= out.size()) out.resize(row->node + 1);
    out[row->node].push_back(row->interval);
  }
  return out;
}

void write_parallel_jobs(std::ostream& out,
                         const std::vector<ParallelJob>& jobs) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# parallel jobs: <arrival_us> <width> <work_us> <p|d>\n";
  for (const ParallelJob& j : jobs) {
    out << sim::to_us(j.arrival) << ' ' << j.width << ' '
        << sim::to_us(j.work) << ' ' << (j.development ? 'd' : 'p') << '\n';
  }
}

std::vector<ParallelJob> read_parallel_jobs(std::istream& in) {
  std::vector<ParallelJob> out;
  replay::ParallelJobCursor cur(in);
  while (auto j = cur.next()) out.push_back(*j);
  return out;
}

}  // namespace now::trace
