#include "proto/tcp.hpp"

#include <algorithm>
#include <cassert>

namespace now::proto {

TcpLayer::TcpLayer(NicMux& mux, TcpParams params)
    : mux_(mux), params_(params) {
  tag_ = mux_.register_layer(
      [this](net::Packet&& pkt) { on_packet(std::move(pkt)); });
}

void TcpLayer::listen(net::NodeId node, std::uint16_t port, Receiver rx) {
  listeners_[sock_key(node, port)] = std::move(rx);
}

void TcpLayer::send(net::NodeId src, std::uint16_t src_port, net::NodeId dst,
                    std::uint16_t dst_port, std::uint32_t bytes,
                    std::any payload, std::function<void()> on_sent) {
  os::Node* sn = mux_.node(src);
  assert(sn != nullptr);
  if (!sn->alive()) return;
  ++stats_.messages_sent;
  const sim::SimTime call_time = mux_.engine().now();
  Connection& conn = connections_[conn_key(src, src_port, dst, dst_port)];

  const std::uint32_t nsegs =
      bytes == 0 ? 1 : (bytes + params_.mtu_bytes - 1) / params_.mtu_bytes;
  std::uint32_t remaining = bytes;
  for (std::uint32_t i = 0; i < nsegs; ++i) {
    const std::uint32_t seg =
        bytes == 0 ? 0 : std::min(remaining, params_.mtu_bytes);
    remaining -= seg;
    const bool last = (i + 1 == nsegs);
    PendingSegment p;
    p.dst = dst;
    p.seg = WireSegment{src_port, dst_port, seg, bytes, last, std::any{},
                        call_time};
    if (last) {
      p.seg.payload = std::move(payload);
      p.on_sent = std::move(on_sent);
    }
    conn.queue.push_back(std::move(p));
  }
  pump(src, conn);
}

void TcpLayer::pump(net::NodeId src, Connection& conn) {
  os::Node* sn = mux_.node(src);
  assert(sn != nullptr);
  while (!conn.queue.empty() &&
         conn.in_flight + conn.queue.front().seg.seg_bytes <=
             params_.window_bytes) {
    PendingSegment p = std::move(conn.queue.front());
    conn.queue.pop_front();
    conn.in_flight += p.seg.seg_bytes;

    // Each segment pays stack CPU on the sender; the per-node stack queue
    // serializes segments, so host overhead caps throughput.
    const sim::Duration o_s = params_.costs.send_overhead(p.seg.seg_bytes);
    sn->cpu().steal(o_s);
    const sim::SimTime inject_at = mux_.reserve_stack(src, o_s);
    ++stats_.segments;

    net::Packet pkt;
    pkt.src = src;
    pkt.dst = p.dst;
    pkt.size_bytes = p.seg.seg_bytes + 40;  // TCP/IP headers
    pkt.tag = tag_;
    pkt.payload = std::move(p.seg);
    mux_.engine().schedule_at(inject_at,
                              [this, q = std::move(pkt)]() mutable {
                                mux_.send(std::move(q));
                              });
    if (p.on_sent) {
      // A blocking write() returns once the kernel accepted the last byte.
      mux_.engine().schedule_at(inject_at, std::move(p.on_sent));
    }
  }
  if (!conn.queue.empty()) ++stats_.window_stalls;
}

void TcpLayer::on_packet(net::Packet&& pkt) {
  if (auto* ack = std::any_cast<WireTcpAck>(&pkt.payload)) {
    // Ack at the data sender: open the window.
    os::Node* sn = mux_.node(pkt.dst);
    assert(sn != nullptr);
    sn->cpu().steal(params_.costs.recv_fixed / params_.ack_cost_divisor);
    Connection& conn = connections_[conn_key(pkt.dst, ack->src_port,
                                             pkt.src, ack->dst_port)];
    conn.in_flight -= std::min(conn.in_flight, ack->bytes);
    pump(pkt.dst, conn);
    return;
  }
  auto* seg = std::any_cast<WireSegment>(&pkt.payload);
  assert(seg != nullptr);
  on_data(std::move(pkt), std::move(*seg));
}

void TcpLayer::on_data(net::Packet&& pkt, WireSegment&& seg) {
  os::Node* dn = mux_.node(pkt.dst);
  assert(dn != nullptr);
  const sim::Duration o_r = params_.costs.recv_overhead(seg.seg_bytes);
  dn->cpu().steal(o_r);

  // Return the ack (kernel-level, cheap).
  ++stats_.acks;
  const sim::Duration ack_cost =
      params_.costs.send_fixed / params_.ack_cost_divisor;
  dn->cpu().steal(ack_cost);
  const sim::SimTime ack_at = mux_.reserve_stack(pkt.dst, ack_cost);
  net::Packet ack;
  ack.src = pkt.dst;
  ack.dst = pkt.src;
  ack.size_bytes = 40;
  ack.tag = tag_;
  ack.payload = WireTcpAck{seg.src_port, seg.dst_port, seg.seg_bytes};
  mux_.engine().schedule_at(ack_at, [this, a = std::move(ack)]() mutable {
    mux_.send(std::move(a));
  });

  const std::uint64_t ck =
      conn_key(pkt.src, seg.src_port, pkt.dst, seg.dst_port);
  std::uint64_t& got = partial_[ck];
  got += seg.seg_bytes;
  if (!seg.last) return;

  assert(got == seg.msg_bytes);
  got = 0;

  TcpMessage msg;
  msg.src = pkt.src;
  msg.src_port = seg.src_port;
  msg.bytes = seg.msg_bytes;
  msg.payload = std::move(seg.payload);
  const std::uint16_t dst_port = seg.dst_port;
  const net::NodeId dst = pkt.dst;
  const sim::SimTime sent_at = seg.sent_at;
  // The application sees the data after the kernel's receive processing.
  // Deliveries on one connection must stay in order even though o_r varies
  // with the final segment's size (a small message's cheap processing must
  // not overtake a big predecessor still in the kernel).
  sim::SimTime& floor = deliver_floor_[ck];
  const sim::SimTime deliver_at =
      std::max(mux_.engine().now() + o_r, floor + 1);
  floor = deliver_at;
  mux_.engine().schedule_at(
      deliver_at,
      [this, dn, dst, dst_port, sent_at, m = std::move(msg)]() mutable {
        if (!dn->alive()) return;
        ++stats_.messages_delivered;
        stats_.one_way_us.add(sim::to_us(mux_.engine().now() - sent_at));
        const auto it = listeners_.find(sock_key(dst, dst_port));
        assert(it != listeners_.end() && "no listener on destination port");
        it->second(std::move(m));
      });
}

}  // namespace now::proto
