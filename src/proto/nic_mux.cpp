#include "proto/nic_mux.hpp"

#include <algorithm>
#include <cassert>

namespace now::proto {

std::uint32_t NicMux::register_layer(LayerRx rx) {
  layers_.push_back(std::move(rx));
  return static_cast<std::uint32_t>(layers_.size() - 1);
}

void NicMux::attach_node(os::Node& node, std::uint32_t rx_buffer_bytes) {
  const net::NodeId id = node.id();
  if (id >= nodes_.size()) nodes_.resize(id + 1, nullptr);
  assert(nodes_[id] == nullptr && "node attached twice");
  nodes_[id] = &node;
  // Pre-size here (setup time) so partitioned lanes never grow the vector.
  if (id >= stack_busy_until_.size()) stack_busy_until_.resize(id + 1, 0);
  network_.attach(
      id, [this](net::Packet&& pkt) { on_delivery(std::move(pkt)); },
      rx_buffer_bytes);
}

sim::SimTime NicMux::reserve_stack(net::NodeId id, sim::Duration cpu_time) {
  if (id >= stack_busy_until_.size()) stack_busy_until_.resize(id + 1, 0);
  // The stack is per-node state touched only by that node's own events, so
  // its lane's clock is the right "now" under partitioning.
  const sim::SimTime start =
      std::max(network_.engine_for(id).now(), stack_busy_until_[id]);
  stack_busy_until_[id] = start + cpu_time;
  return stack_busy_until_[id];
}

void NicMux::require_admission(std::uint64_t expected_key) {
  enforce_admission_ = true;
  expected_key_ = expected_key;
  admitted_.assign(nodes_.size(), false);
}

bool NicMux::admit(net::NodeId node_id, std::uint64_t boot_key) {
  if (!enforce_admission_) return true;
  if (node_id >= nodes_.size() || nodes_[node_id] == nullptr) return false;
  if (boot_key != expected_key_) return false;
  if (node_id >= admitted_.size()) admitted_.resize(node_id + 1, false);
  admitted_[node_id] = true;
  return true;
}

void NicMux::expel(net::NodeId node_id) {
  if (node_id < admitted_.size()) admitted_[node_id] = false;
}

bool NicMux::admitted(net::NodeId node_id) const {
  if (!enforce_admission_) return true;
  return node_id < admitted_.size() && admitted_[node_id];
}

bool NicMux::carried(net::NodeId node_id) const {
  return !enforce_admission_ || admitted(node_id);
}

void NicMux::send(net::Packet pkt) {
  const os::Node* src = node(pkt.src);
  assert(src != nullptr && "send from unattached node");
  if (!src->alive()) return;  // a dead workstation sends nothing
  if (!carried(pkt.src) || !carried(pkt.dst)) {
    // Unattested machine: the interface stays shut.
    rejected_packets_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  network_.send(std::move(pkt));
}

void NicMux::on_delivery(net::Packet&& pkt) {
  os::Node* dst = node(pkt.dst);
  assert(dst != nullptr);
  network_.release_rx(pkt.dst, pkt.size_bytes);
  if (!dst->alive()) return;  // NIC is deaf while crashed
  if (!carried(pkt.src) || !carried(pkt.dst)) {
    rejected_packets_.fetch_add(1, std::memory_order_relaxed);  // expelled
    return;
  }
  assert(pkt.tag < layers_.size() && "packet for unregistered layer");
  layers_[pkt.tag](std::move(pkt));
}

}  // namespace now::proto
