#include "proto/am.hpp"

#include <cassert>
#include <memory>

namespace now::proto {

AmLayer::AmLayer(NicMux& mux, AmParams params, std::uint64_t seed)
    : mux_(mux), params_(params), rng_(seed, /*stream=*/0x616d6c),
      obs_sent_(&obs::metrics().counter("am.sent")),
      obs_retransmits_(&obs::metrics().counter("am.retransmits")),
      obs_handled_(&obs::metrics().counter("am.handled")),
      obs_stalls_(&obs::metrics().counter("am.credit_stalls")),
      obs_epoch_bumps_(&obs::metrics().counter("am.epoch_bumps")),
      obs_pair_failures_(&obs::metrics().counter("am.pair_failures")),
      obs_latency_us_(&obs::metrics().summary("am.msg_latency_us")),
      obs_track_(obs::tracer().track("proto")) {
  assert(params_.window > 0 && params_.mtu_bytes > 0);
  tag_ = mux_.register_layer(
      [this](net::Packet&& pkt) { on_packet(std::move(pkt)); });
}

os::Node& AmLayer::node_of(EndpointId id) { return *ep(id).node; }

EndpointId AmLayer::create_endpoint(os::Node& node, Mode mode) {
  const auto id = static_cast<EndpointId>(endpoints_.size());
  Endpoint e;
  e.node = &node;
  e.mode = mode;
  endpoints_.push_back(std::move(e));
  if (mode == Mode::kPolling) {
    const net::NodeId nid = node.id();
    if (nid >= observer_installed_.size()) {
      observer_installed_.resize(nid + 1, false);
    }
    if (!observer_installed_[nid]) {
      observer_installed_[nid] = true;
      node.cpu().add_dispatch_observer(
          [this, nid](os::ProcessId pid) { drain_polling(nid, pid); });
    }
  }
  return id;
}

void AmLayer::set_owner(EndpointId id, os::ProcessId pid) {
  Endpoint& e = ep(id);
  assert(e.mode == Mode::kPolling);
  if (e.owner != os::kNoProcess) {
    auto& owned = pollers_[e.node->id()][e.owner];
    std::erase(owned, id);
  }
  e.owner = pid;
  pollers_[e.node->id()][pid].push_back(id);
}

void AmLayer::register_handler(EndpointId id, HandlerId h, Handler fn) {
  ep(id).handlers[h] = std::move(fn);
}

sim::Duration AmLayer::unloaded_one_way(std::uint32_t bytes,
                                        sim::Duration wire_transit) const {
  return params_.costs.send_overhead(bytes) + wire_transit +
         params_.costs.recv_overhead(bytes);
}

void AmLayer::send(EndpointId src, EndpointId dst, HandlerId h,
                   std::uint32_t bytes, std::any payload,
                   std::function<void()> on_injected) {
  enqueue_fragments(src, dst, h, bytes, std::move(payload),
                    std::move(on_injected));
}

void AmLayer::send_from_process(os::ProcessId pid, EndpointId src,
                                EndpointId dst, HandlerId h,
                                std::uint32_t bytes, std::any payload,
                                std::function<void()> then) {
  // The injection callback may fire synchronously (window open) or later
  // (credits exhausted), so the flag must outlive this frame.
  auto injected = std::make_shared<bool>(false);
  enqueue_fragments(src, dst, h, bytes, std::move(payload),
                    [injected] { *injected = true; });
  if (*injected) {
    then();
    return;
  }
  {
    sim::SpinGuard g(stats_lock_);
    ++stats_.stalled_sends;
  }
  obs_stalls_->inc();
  obs::tracer().instant(ep(src).node->id(), obs_track_, "credit_stall");
  // Spin-poll until the window opens.  The process stays runnable — and
  // therefore keeps draining its own endpoint — which is both what real
  // user-level AM senders do and what prevents window-credit deadlock
  // among mutually-sending ranks.
  spin_until_injected(pid, src, injected, std::move(then));
}

void AmLayer::spin_until_injected(os::ProcessId pid, EndpointId src,
                                  std::shared_ptr<bool> injected,
                                  std::function<void()> then) {
  os::Cpu& cpu = ep(src).node->cpu();
  cpu.compute(pid, params_.send_spin_slice,
              [this, pid, src, injected = std::move(injected),
               then = std::move(then)]() mutable {
                if (*injected) {
                  then();
                  return;
                }
                spin_until_injected(pid, src, std::move(injected),
                                    std::move(then));
              });
}

void AmLayer::enqueue_fragments(EndpointId src, EndpointId dst, HandlerId h,
                                std::uint32_t bytes, std::any payload,
                                std::function<void()> on_injected) {
  PairTx& tx = ep(src).tx[dst];
  tx.failed = false;  // a fresh send retries a previously failed pair
  const std::uint32_t nfrags =
      bytes == 0 ? 1 : (bytes + params_.mtu_bytes - 1) / params_.mtu_bytes;
  std::uint32_t remaining = bytes;
  const sim::SimTime t0 = engine_of(*ep(src).node).now();
  for (std::uint32_t i = 0; i < nfrags; ++i) {
    Fragment f;
    f.handler = h;
    f.frag_bytes = std::min(remaining, params_.mtu_bytes);
    if (bytes == 0) f.frag_bytes = 0;
    remaining -= f.frag_bytes;
    f.msg_bytes = bytes;
    f.last = (i + 1 == nfrags);
    f.injected_at = t0;
    if (f.last) {
      f.payload = std::move(payload);
      f.on_injected = std::move(on_injected);
    }
    tx.pending.push_back(std::move(f));
  }
  pump_window(src, dst, tx);
}

void AmLayer::pump_window(EndpointId src, EndpointId dst, PairTx& tx) {
  while (!tx.pending.empty() &&
         tx.next_seq - tx.base < params_.window) {
    Fragment f = std::move(tx.pending.front());
    tx.pending.pop_front();
    f.seq = tx.next_seq++;
    transmit(src, dst, f);
    {
      sim::SpinGuard g(stats_lock_);
      ++stats_.sent;
    }
    obs_sent_->inc();
    if (f.on_injected) {
      auto cb = std::move(f.on_injected);
      f.on_injected = nullptr;
      tx.unacked.push_back(std::move(f));
      cb();
    } else {
      tx.unacked.push_back(std::move(f));
    }
  }
  if (!tx.unacked.empty() && tx.timer == 0) arm_timer(src, dst, tx);
}

void AmLayer::transmit(EndpointId src, EndpointId dst, const Fragment& f) {
  os::Node& sn = *ep(src).node;
  if (!sn.alive()) return;
  const sim::Duration o_s = params_.costs.send_overhead(f.frag_bytes);
  sn.cpu().steal(o_s);
  const sim::SimTime inject_at = mux_.reserve_stack(sn.id(), o_s);

  WireData d{src,          dst,         ep(src).tx[dst].epoch,
             f.seq,        f.handler,   f.frag_bytes,
             f.msg_bytes,  f.last,      f.payload,
             f.injected_at};
  net::Packet pkt;
  pkt.src = sn.id();
  pkt.dst = ep(dst).node->id();
  pkt.size_bytes = f.frag_bytes + 16;  // AM header
  pkt.tag = tag_;
  pkt.payload = std::move(d);
  engine_of(sn).schedule_at(inject_at, [this, p = std::move(pkt)]() mutable {
    mux_.send(std::move(p));
  });
}

void AmLayer::arm_timer(EndpointId src, EndpointId dst, PairTx& tx) {
  // The timer lives on the sender's lane: on_timeout touches only tx state.
  tx.timer = engine_of(*ep(src).node)
                 .schedule_in(params_.retry_timeout,
                              [this, src, dst] { on_timeout(src, dst); });
}

void AmLayer::on_timeout(EndpointId src, EndpointId dst) {
  const auto it = ep(src).tx.find(dst);
  if (it == ep(src).tx.end()) return;
  PairTx& tx = it->second;
  tx.timer = 0;
  if (tx.unacked.empty()) return;
  if (!ep(src).node->alive()) {
    // The sender itself died; abandon the window quietly.
    ep(src).tx.erase(it);
    return;
  }
  if (++tx.timeouts > params_.max_retries) {
    {
      sim::SpinGuard g(stats_lock_);
      ++stats_.pair_failures;
    }
    obs_pair_failures_->inc();
    obs_epoch_bumps_->inc();
    obs::tracer().instant(ep(src).node->id(), obs_track_, "epoch_bump");
    tx.failed = true;
    tx.unacked.clear();
    tx.pending.clear();
    // New connection generation: the next send starts at seq 0 under a
    // fresh epoch, so a peer holding stale in-order state (a reboot, or
    // simply having missed everything) resynchronizes.
    ++tx.epoch;
    tx.base = 0;
    tx.next_seq = 0;
    tx.timeouts = 0;
    if (on_failure_) on_failure_(src, dst);
    return;
  }
  // Go-back-N: retransmit everything outstanding.
  obs::tracer().instant(ep(src).node->id(), obs_track_, "go_back_n");
  for (const Fragment& f : tx.unacked) {
    transmit(src, dst, f);
    {
      sim::SpinGuard g(stats_lock_);
      ++stats_.retransmits;
    }
    obs_retransmits_->inc();
  }
  arm_timer(src, dst, tx);
}

void AmLayer::on_packet(net::Packet&& pkt) {
  if (auto* ack = std::any_cast<WireAck>(&pkt.payload)) {
    os::Node& n = *mux_.node(pkt.dst);
    n.cpu().steal(params_.costs.recv_fixed / params_.ack_cost_divisor);
    on_ack(*ack);
    return;
  }
  auto* data = std::any_cast<WireData>(&pkt.payload);
  assert(data != nullptr && "unknown AM packet");
  on_data(std::move(*data));
}

void AmLayer::on_data(WireData&& d) {
  if (params_.loss_probability > 0.0 &&
      rng_.bernoulli(params_.loss_probability)) {
    sim::SpinGuard g(stats_lock_);
    ++stats_.injected_losses;
    return;
  }
  Endpoint& e = ep(d.dst_ep);
  PairRx& rx = e.rx[d.src_ep];
  if (d.epoch != rx.epoch) {
    if (d.epoch < rx.epoch) return;  // stale generation: drop
    // The sender restarted this pair: resynchronize.
    rx.epoch = d.epoch;
    rx.delivered = 0;
    rx.handled = 0;
    rx.last_acked = 0;
  }
  if (d.seq != rx.delivered) {
    // Out of order: either a duplicate (seq < delivered) or a gap after a
    // loss.  Either way go-back-N will resend; re-advertise progress so a
    // sender that missed an ack can move on.
    if (d.seq < rx.delivered) {
      send_ack(d.dst_ep, d.src_ep, rx.epoch, rx.handled);
    }
    return;
  }
  ++rx.delivered;
  if (e.mode == Mode::kInterrupt ||
      e.node->cpu().current() == e.owner) {
    // Interrupt endpoints handle immediately; polling endpoints whose owner
    // is on the CPU right now are actively polling.
    handle_now(e, d.dst_ep, std::move(d));
  } else {
    e.rx_queue.push_back(std::move(d));
  }
}

void AmLayer::handle_now(Endpoint& e, EndpointId dst_ep, WireData&& d) {
  const sim::Duration o_r = params_.costs.recv_overhead(d.frag_bytes);
  e.node->cpu().steal(o_r);
  PairRx& rx = e.rx[d.src_ep];
  ++rx.handled;

  bool run_handler = false;
  AmMessage msg;
  if (d.msg_bytes > params_.mtu_bytes) {
    // Bulk transfer: the handler fires once the final fragment lands.
    std::uint64_t& got = e.partial_bytes[d.src_ep];
    got += d.frag_bytes;
    if (d.last) {
      assert(got == d.msg_bytes);
      got = 0;
      run_handler = true;
    }
  } else {
    run_handler = true;
  }

  // Return credit (coalesced: one ack event flushes all handling that
  // happened at this instant).
  if (!rx.ack_flush_pending) {
    rx.ack_flush_pending = true;
    const EndpointId src_ep = d.src_ep;
    engine_of(*e.node).schedule_in(0, [this, src_ep, dst_ep] {
      PairRx& r = ep(dst_ep).rx[src_ep];
      r.ack_flush_pending = false;
      if (r.handled != r.last_acked) {
        r.last_acked = r.handled;
        send_ack(dst_ep, src_ep, r.epoch, r.handled);
      }
    });
  }

  if (run_handler) {
    msg.src_ep = d.src_ep;
    msg.bytes = d.msg_bytes;
    msg.payload = std::move(d.payload);
    // The handler body runs once the receiver has spent its overhead
    // processing the message, so end-to-end times include o_recv.
    os::Node* node = e.node;
    const HandlerId h = d.handler;
    const sim::SimTime injected_at = d.injected_at;
    engine_of(*node).schedule_in(
        o_r, [this, node, dst_ep, h, injected_at, m = std::move(msg)] {
          if (!node->alive()) return;
          const sim::SimTime at = engine_of(*node).now();
          {
            sim::SpinGuard g(stats_lock_);
            ++stats_.handled;
            stats_.msg_latency_us.add(sim::to_us(at - injected_at));
          }
          obs_handled_->inc();
          obs_latency_us_->observe(sim::to_us(at - injected_at));
          // Full message lifetime, injection to handler start.
          obs::tracer().complete(node->id(), obs_track_, "am.msg", injected_at,
                                 at);
          Endpoint& e2 = ep(dst_ep);
          const auto it = e2.handlers.find(h);
          assert(it != e2.handlers.end() && "no handler registered");
          it->second(m);
        });
  }
}

void AmLayer::send_ack(EndpointId from_ep, EndpointId to_ep,
                       std::uint32_t epoch, std::uint32_t cum_seq) {
  os::Node& n = *ep(from_ep).node;
  if (!n.alive()) return;
  {
    sim::SpinGuard g(stats_lock_);
    ++stats_.acks;
  }
  const sim::Duration cost =
      params_.costs.send_fixed / params_.ack_cost_divisor;
  n.cpu().steal(cost);
  const sim::SimTime at = mux_.reserve_stack(n.id(), cost);
  net::Packet pkt;
  pkt.src = n.id();
  pkt.dst = ep(to_ep).node->id();
  pkt.size_bytes = 16;
  pkt.tag = tag_;
  pkt.payload = WireAck{from_ep, to_ep, epoch, cum_seq};
  engine_of(n).schedule_at(at, [this, p = std::move(pkt)]() mutable {
    mux_.send(std::move(p));
  });
}

void AmLayer::on_ack(const WireAck& a) {
  // Runs at ack delivery on the data sender's node — the lane owning tx.
  const auto it = ep(a.dst_ep).tx.find(a.src_ep);
  if (it == ep(a.dst_ep).tx.end()) return;
  PairTx& tx = it->second;
  if (a.epoch != tx.epoch) return;  // ack for a dead generation
  bool advanced = false;
  while (!tx.unacked.empty() && tx.base < a.cum_seq) {
    tx.unacked.pop_front();
    ++tx.base;
    advanced = true;
  }
  if (advanced) {
    tx.timeouts = 0;
    if (tx.timer != 0) {
      sim::Engine& eng = engine_of(*ep(a.dst_ep).node);
      if (tx.unacked.empty()) {
        eng.cancel(tx.timer);
        tx.timer = 0;
      } else {
        // Frames still in flight: restart the retransmit clock by moving the
        // pending timer in place — its closure already names this pair, so
        // cancel + schedule would rebuild an identical event.
        tx.timer = eng.reschedule_in(tx.timer, params_.retry_timeout);
        assert(tx.timer != 0);
      }
    }
    pump_window(a.dst_ep, a.src_ep, tx);
  }
}

void AmLayer::drain_polling(net::NodeId node, os::ProcessId pid) {
  const auto nit = pollers_.find(node);
  if (nit == pollers_.end()) return;
  const auto pit = nit->second.find(pid);
  if (pit == nit->second.end()) return;
  for (const EndpointId id : pit->second) {
    Endpoint& e = ep(id);
    while (!e.rx_queue.empty()) {
      WireData d = std::move(e.rx_queue.front());
      e.rx_queue.pop_front();
      handle_now(e, id, std::move(d));
    }
  }
}

}  // namespace now::proto
