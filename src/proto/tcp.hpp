// Kernel TCP/IP socket model — the commodity communication baseline.
//
// Semantics are a reliable in-order datagram-ish stream between (node,port)
// pairs with kernel buffering: delivery does not depend on the receiving
// *process* being scheduled (the kernel buffers), but every message pays the
// full protocol-stack CPU cost on both sides.  The underlying fabric is
// already reliable and FIFO in this simulator, so the model concentrates on
// what the paper measures: per-message overhead and copy-limited bandwidth.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "proto/costs.hpp"
#include "proto/nic_mux.hpp"
#include "sim/stats.hpp"

namespace now::proto {

struct TcpParams {
  ProtocolCosts costs = tcp_kernel();
  /// Wire MTU for segmentation (Ethernet 1500; the ATM driver uses 9180).
  std::uint32_t mtu_bytes = 1500;
  /// Sliding window: unacknowledged bytes in flight per connection before
  /// the sender stalls (classic 16-bit TCP window: 64 KB).
  std::uint32_t window_bytes = 64 * 1024;
  /// Cost divisor for ack processing relative to a data segment.
  std::uint32_t ack_cost_divisor = 4;
};

struct TcpStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t segments = 0;
  std::uint64_t acks = 0;
  std::uint64_t window_stalls = 0;  // segments that waited for the window
  sim::Summary one_way_us;  // send() call to receive callback
};

/// One message as seen by the receiver.
struct TcpMessage {
  net::NodeId src = net::kInvalidNode;
  std::uint16_t src_port = 0;
  std::uint32_t bytes = 0;
  std::any payload;
};

class TcpLayer {
 public:
  using Receiver = std::function<void(TcpMessage&&)>;

  TcpLayer(NicMux& mux, TcpParams params);
  TcpLayer(const TcpLayer&) = delete;
  TcpLayer& operator=(const TcpLayer&) = delete;

  /// Binds a receive callback to (node, port).  The callback runs in kernel
  /// context after receiver overhead has been charged.
  void listen(net::NodeId node, std::uint16_t port, Receiver rx);

  /// Sends `bytes` from (src, src_port) to (dst, dst_port).  `on_sent`
  /// fires when the last byte has left the sender (kernel buffer accepted),
  /// which is when a blocking write() would return.
  void send(net::NodeId src, std::uint16_t src_port, net::NodeId dst,
            std::uint16_t dst_port, std::uint32_t bytes, std::any payload,
            std::function<void()> on_sent = nullptr);

  const TcpParams& params() const { return params_; }
  const TcpStats& stats() const { return stats_; }

  /// Model value: unloaded one-way time for a small message (what the paper
  /// reports as "overhead plus network latency": 456 us on Ethernet).
  sim::Duration unloaded_one_way(std::uint32_t bytes,
                                 sim::Duration wire_transit) const {
    return params_.costs.send_overhead(bytes) + wire_transit +
           params_.costs.recv_overhead(bytes);
  }

 private:
  struct WireSegment {
    std::uint16_t src_port;
    std::uint16_t dst_port;
    std::uint32_t seg_bytes;
    std::uint32_t msg_bytes;
    bool last;
    std::any payload;
    sim::SimTime sent_at;
  };
  struct WireTcpAck {
    std::uint16_t src_port;  // the data sender's port being acked
    std::uint16_t dst_port;  // the data receiver's port
    std::uint32_t bytes;
  };
  struct PendingSegment {
    net::NodeId dst;
    WireSegment seg;
    std::function<void()> on_sent;  // fires with the final segment
  };
  struct Connection {
    std::uint32_t in_flight = 0;
    std::deque<PendingSegment> queue;
  };

  void on_packet(net::Packet&& pkt);
  void on_data(net::Packet&& pkt, WireSegment&& seg);
  void pump(net::NodeId src, Connection& conn);

  NicMux& mux_;
  TcpParams params_;
  std::uint32_t tag_;
  // (node << 16 | port) -> receiver
  std::unordered_map<std::uint64_t, Receiver> listeners_;
  // Reassembly per (src node, src port, dst node, dst port) is implicit:
  // the fabric is FIFO, so we track bytes per connection key.
  std::unordered_map<std::uint64_t, std::uint64_t> partial_;
  std::unordered_map<std::uint64_t, Connection> connections_;
  /// Per-connection floor keeping application deliveries in order.
  std::unordered_map<std::uint64_t, sim::SimTime> deliver_floor_;
  TcpStats stats_;

  static std::uint64_t sock_key(net::NodeId n, std::uint16_t p) {
    return (static_cast<std::uint64_t>(n) << 16) | p;
  }
  static std::uint64_t conn_key(net::NodeId sn, std::uint16_t sp,
                                net::NodeId dn, std::uint16_t dp) {
    return (sock_key(sn, sp) << 32) ^ sock_key(dn, dp);
  }
};

}  // namespace now::proto
