// Active Messages (von Eicken et al. 1992), the paper's low-overhead
// communication layer.
//
// An endpoint lives on one node and owns a table of handlers.  A message
// names a destination endpoint and handler; on arrival the handler runs with
// the message's payload.  Two endpoint modes capture the paper's two worlds:
//
//  * kInterrupt — the handler runs as soon as the message is delivered,
//    charging receive overhead as interrupt (stolen) CPU time.  System
//    services (GLUnix daemons, xFS managers, the network-RAM pager) use
//    this.
//  * kPolling — faithful user-level AM: handlers only run while the owning
//    *process* is scheduled (the process polls the NIC from its compute
//    loop).  If the process is descheduled, messages sit in the endpoint
//    queue, credits are not returned, and senders stall.  This is the entire
//    mechanism behind Figure 4: local scheduling deschedules receivers, and
//    Connect/EM3D-style programs collapse.
//
// Reliability is go-back-N per endpoint pair with cumulative acks; the ack
// doubles as credit return, so flow control is tied to *handling* (not mere
// delivery), exactly like the CM-5 AM request/reply discipline the paper
// describes.  Loss can be injected to exercise the timeout/retry path.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <memory>
#include <functional>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/costs.hpp"
#include "proto/nic_mux.hpp"
#include "sim/random.hpp"
#include "sim/spinlock.hpp"
#include "sim/stats.hpp"

namespace now::proto {

using EndpointId = std::uint32_t;
using HandlerId = std::uint16_t;
inline constexpr EndpointId kInvalidEndpoint = 0xffffffffu;

struct AmParams {
  ProtocolCosts costs = am_medusa();
  /// Per-endpoint-pair send window (messages in flight before blocking).
  std::uint32_t window = 16;
  /// Fragment size for bulk transfers.
  std::uint32_t mtu_bytes = 8192;
  /// Go-back-N retransmission timeout.  Must exceed the worst-case queueing
  /// a healthy window can see (wide bulk fan-outs share the sender's link),
  /// or spurious go-back-N retransmissions melt the wire.
  sim::Duration retry_timeout = 100 * sim::kMillisecond;
  /// Give up after this many consecutive timeouts of one window
  /// (the destination node is presumed crashed).
  std::uint32_t max_retries = 25;
  /// Injected packet-loss probability, for exercising retry in tests.
  double loss_probability = 0.0;
  /// Spin-poll granularity for senders waiting on window credits.  A
  /// credit-starved sender busy-polls its endpoint (it must: draining
  /// incoming messages is what lets its peers' credits — and eventually
  /// its own — flow again).
  sim::Duration send_spin_slice = 200 * sim::kMicrosecond;
  /// Fixed cost divisor for acks/credit packets relative to data messages.
  std::uint32_t ack_cost_divisor = 4;
};

/// What a handler receives.
struct AmMessage {
  EndpointId src_ep = kInvalidEndpoint;
  std::uint32_t bytes = 0;
  std::any payload;
};

struct AmStats {
  std::uint64_t sent = 0;        // fragments injected (first transmission)
  std::uint64_t retransmits = 0;
  std::uint64_t handled = 0;     // messages whose handler ran
  std::uint64_t acks = 0;
  std::uint64_t injected_losses = 0;
  std::uint64_t stalled_sends = 0;  // sends that waited for window space
  std::uint64_t pair_failures = 0;  // windows that exhausted max_retries
  /// Inject-to-handled latency of whole messages, microseconds.
  sim::Summary msg_latency_us;
};

class AmLayer {
 public:
  enum class Mode : std::uint8_t { kInterrupt, kPolling };
  using Handler = std::function<void(const AmMessage&)>;
  /// Called when a window gives up after max_retries (dest presumed dead).
  using FailureHandler = std::function<void(EndpointId src, EndpointId dst)>;

  AmLayer(NicMux& mux, AmParams params, std::uint64_t seed = 1);
  AmLayer(const AmLayer&) = delete;
  AmLayer& operator=(const AmLayer&) = delete;

  /// Creates an endpoint on `node`.  Polling endpoints must be given an
  /// owner process before any traffic arrives.
  EndpointId create_endpoint(os::Node& node, Mode mode);

  /// Binds a polling endpoint to the process that polls it.
  void set_owner(EndpointId ep, os::ProcessId pid);

  /// Installs `fn` for handler slot `h` on endpoint `ep`.
  void register_handler(EndpointId ep, HandlerId h, Handler fn);

  /// Sends `bytes` from `src` to `dst`, running handler `h` there.  Callable
  /// from any event context; sender overhead is charged as stolen (system)
  /// CPU time on the source node.  `on_injected`, if given, fires when the
  /// message enters the send window (use it to build blocking sends).
  void send(EndpointId src, EndpointId dst, HandlerId h, std::uint32_t bytes,
            std::any payload, std::function<void()> on_injected = nullptr);

  /// Blocking send for application processes: charges sender overhead as
  /// *process* compute time, waits for window space if the pair's credits
  /// are exhausted, then calls `then` from the process's context.
  void send_from_process(os::ProcessId pid, EndpointId src, EndpointId dst,
                         HandlerId h, std::uint32_t bytes, std::any payload,
                         std::function<void()> then);

  void set_failure_handler(FailureHandler fn) { on_failure_ = std::move(fn); }

  const AmParams& params() const { return params_; }
  const AmStats& stats() const { return stats_; }
  os::Node& node_of(EndpointId ep);
  sim::Engine& engine() { return mux_.engine(); }
  /// The engine `n`'s events run on (its partition lane, or the cluster
  /// engine serially).  Every now()/schedule in this layer — and in layers
  /// above, like RPC — is per-node.
  sim::Engine& engine_of(os::Node& n) {
    return mux_.network().engine_for(n.id());
  }

  /// Unloaded one-way small-message time (overhead + wire) for reporting:
  /// o_send + transit + o_recv, assuming an interrupt endpoint.
  sim::Duration unloaded_one_way(std::uint32_t bytes,
                                 sim::Duration wire_transit) const;

 private:
  struct Fragment {
    std::uint32_t seq = 0;
    HandlerId handler = 0;
    std::uint32_t frag_bytes = 0;
    std::uint32_t msg_bytes = 0;
    bool last = false;
    std::any payload;  // carried on the last fragment only
    sim::SimTime injected_at = 0;
    std::function<void()> on_injected;
  };

  struct WireData {
    EndpointId src_ep;
    EndpointId dst_ep;
    std::uint32_t epoch;
    std::uint32_t seq;
    HandlerId handler;
    std::uint32_t frag_bytes;
    std::uint32_t msg_bytes;
    bool last;
    std::any payload;
    sim::SimTime injected_at;
  };

  struct WireAck {
    EndpointId src_ep;  // endpoint acknowledging (the data receiver)
    EndpointId dst_ep;  // endpoint being acknowledged (the data sender)
    std::uint32_t epoch;
    std::uint32_t cum_seq;
  };

  struct PairTx {
    /// Connection generation: bumped when a window gives up, so a peer
    /// that kept stale in-order state (or a rebooted one) resynchronizes.
    std::uint32_t epoch = 0;
    std::uint32_t next_seq = 0;
    std::uint32_t base = 0;  // oldest unacked
    std::deque<Fragment> unacked;
    std::deque<Fragment> pending;  // waiting for window space
    sim::EventId timer = 0;
    std::uint32_t timeouts = 0;
    bool failed = false;
  };

  struct PairRx {
    std::uint32_t epoch = 0;
    std::uint32_t delivered = 0;   // next in-order seq expected on the wire
    std::uint32_t handled = 0;     // fragments consumed by handlers so far
    std::uint32_t last_acked = 0;  // handled value last advertised
    bool ack_flush_pending = false;
  };

  // Pair state lives inside the endpoint whose lane mutates it, so a
  // partitioned run never touches these maps from two lanes: tx is driven
  // by the data sender (sends, timers, acks arriving back at the sender's
  // node) and rx by the data receiver.
  struct Endpoint {
    os::Node* node = nullptr;
    Mode mode = Mode::kInterrupt;
    os::ProcessId owner = os::kNoProcess;
    std::unordered_map<HandlerId, Handler> handlers;
    // Polling endpoints: delivered-but-unhandled messages.
    std::deque<WireData> rx_queue;
    // Reassembly: bytes accumulated of a fragmented message, per source ep.
    std::unordered_map<EndpointId, std::uint64_t> partial_bytes;
    std::unordered_map<EndpointId, PairTx> tx;  // keyed by destination ep
    std::unordered_map<EndpointId, PairRx> rx;  // keyed by source ep
  };

  Endpoint& ep(EndpointId id) { return endpoints_[id]; }
  void enqueue_fragments(EndpointId src, EndpointId dst, HandlerId h,
                         std::uint32_t bytes, std::any payload,
                         std::function<void()> on_injected);
  void spin_until_injected(os::ProcessId pid, EndpointId src,
                           std::shared_ptr<bool> injected,
                           std::function<void()> then);
  void pump_window(EndpointId src, EndpointId dst, PairTx& tx);
  void transmit(EndpointId src, EndpointId dst, const Fragment& f);
  void arm_timer(EndpointId src, EndpointId dst, PairTx& tx);
  void on_timeout(EndpointId src, EndpointId dst);
  void on_packet(net::Packet&& pkt);
  void on_data(WireData&& d);
  void on_ack(const WireAck& a);
  void handle_now(Endpoint& e, EndpointId dst_ep, WireData&& d);
  void send_ack(EndpointId from_ep, EndpointId to_ep, std::uint32_t epoch,
                std::uint32_t cum_seq);
  void drain_polling(net::NodeId node, os::ProcessId pid);

  NicMux& mux_;
  AmParams params_;
  // Loss-injection RNG.  Only touched when loss_probability > 0, which
  // partitioned runs forbid (a shared RNG would be both a race and a
  // thread-count-dependent sequence); the Cluster enforces that.
  sim::Pcg32 rng_;
  std::uint32_t tag_;
  std::vector<Endpoint> endpoints_;
  // node -> (owner pid -> polling endpoints) for dispatch-driven draining.
  std::unordered_map<net::NodeId,
                     std::unordered_map<os::ProcessId,
                                        std::vector<EndpointId>>>
      pollers_;
  std::vector<bool> observer_installed_;  // per node
  AmStats stats_;
  // Guards stats_: sender-side fields update on source lanes, receiver-side
  // on destination lanes.  Uncontended serially.
  sim::SpinLock stats_lock_;
  FailureHandler on_failure_;
  // Cached obs handles; see src/obs/metrics.hpp for the pattern.
  obs::Counter* obs_sent_;
  obs::Counter* obs_retransmits_;
  obs::Counter* obs_handled_;
  obs::Counter* obs_stalls_;
  obs::Counter* obs_epoch_bumps_;
  obs::Counter* obs_pair_failures_;
  obs::Summary* obs_latency_us_;
  obs::TrackId obs_track_;
};

}  // namespace now::proto
