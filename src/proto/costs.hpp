// Per-protocol CPU cost models.
//
// The paper's core communications claim is that *processor overhead* — not
// wire bandwidth — dominates real communication performance, and that
// user-level Active Messages cut it by an order of magnitude versus kernel
// TCP.  ProtocolCosts captures each protocol's fixed per-message CPU cost
// plus its per-byte (copy/checksum) cost, per side.  Presets encode the
// numbers the paper reports.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace now::proto {

struct ProtocolCosts {
  /// Fixed per-message sender CPU time (syscall, protocol stack, trap).
  sim::Duration send_fixed = 0;
  /// Fixed per-message receiver CPU time (interrupt, demux, wakeup).
  sim::Duration recv_fixed = 0;
  /// Per-byte CPU time on the sender (data copies, checksum), nanoseconds
  /// per byte.
  double send_per_byte_ns = 0.0;
  /// Per-byte CPU time on the receiver, nanoseconds per byte.
  double recv_per_byte_ns = 0.0;

  sim::Duration send_overhead(std::uint64_t bytes) const {
    return send_fixed + static_cast<sim::Duration>(
                            send_per_byte_ns * static_cast<double>(bytes));
  }
  sim::Duration recv_overhead(std::uint64_t bytes) const {
    return recv_fixed + static_cast<sim::Duration>(
                            recv_per_byte_ns * static_cast<double>(bytes));
  }
};

/// One memory-to-memory copy at Table 2's rate: 250 us per 8 KB => ~30.5
/// ns/byte.  Standard TCP copies twice per side (user<->kernel<->NIC);
/// single-copy TCP once; Active Messages move data directly.
inline constexpr double kCopyNsPerByte = 250'000.0 / 8192.0;

/// Active Messages on the CM-5: ~1.7 us (50 cycles / 25 instructions) per
/// send or handle.
ProtocolCosts am_cm5();

/// User-level Active Messages on the Medusa FDDI prototype (HPAM): 8 us of
/// processor overhead per side, including timeout/retry support.
ProtocolCosts am_medusa();

/// Kernel TCP/IP on a 1994 SparcStation-class host: the paper measures
/// 456 us overhead+latency on Ethernet and 626 us on ATM, dominated by
/// system software; two data copies per side.
ProtocolCosts tcp_kernel();

/// Kernel TCP/IP through a 1994 ATM driver: *more* overhead than the
/// Ethernet path (626 us vs 456 us one-way) despite 8x the bandwidth.
ProtocolCosts tcp_kernel_atm();

/// Single-copy TCP: same control path, one less copy per side.
ProtocolCosts tcp_single_copy();

/// PVM daemon-mediated message passing: TCP plus an extra user-level hop.
ProtocolCosts pvm();

}  // namespace now::proto
