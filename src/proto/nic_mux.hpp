// NIC-level demultiplexer.
//
// One Network delivery handler exists per node; several protocol layers
// (Active Messages, the TCP model, xFS RPC traffic) share the wire.  The
// mux owns the per-node attachment, hands each layer a tag, and routes
// arriving packets by tag.  It also models a dead node's NIC going deaf:
// packets addressed to a crashed workstation vanish, which is what forces
// the timeout/retry and takeover paths above.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "net/network.hpp"
#include "os/node.hpp"

namespace now::proto {

class NicMux {
 public:
  using LayerRx = std::function<void(net::Packet&&)>;

  explicit NicMux(net::Network& network) : network_(network) {}
  NicMux(const NicMux&) = delete;
  NicMux& operator=(const NicMux&) = delete;

  /// Registers a protocol layer; returns the tag it must stamp on packets.
  std::uint32_t register_layer(LayerRx rx);

  /// Attaches a workstation's NIC to the network.
  void attach_node(os::Node& node, std::uint32_t rx_buffer_bytes = 0);

  // --- Admission control ------------------------------------------------
  // The paper's answer to "the Achilles' heel of NOWs": "a small amount of
  // hardware in the network interface can ensure that the correct
  // operating system is booted on a machine, before allowing it to connect
  // into the NOW."  With enforcement on, a node must present the expected
  // boot attestation before its traffic is carried; anything it sends (or
  // would receive) is dropped at the interface.

  /// Turns enforcement on.  `expected_key` stands in for the hash of the
  /// blessed operating-system image.  Already-attached nodes must (re-)
  /// admit before they can talk.
  void require_admission(std::uint64_t expected_key);

  /// A node presents its boot attestation; returns whether it was admitted.
  bool admit(net::NodeId node, std::uint64_t boot_key);

  /// Revokes a node's admission (e.g. it rebooted into an unknown kernel).
  void expel(net::NodeId node);

  bool admitted(net::NodeId node) const;
  std::uint64_t rejected_packets() const {
    return rejected_packets_.load(std::memory_order_relaxed);
  }

  /// Injects a packet (pkt.tag must be a registered layer's tag).
  /// Silently dropped if the source node has crashed.
  void send(net::Packet pkt);

  /// Serializes protocol-stack CPU work on a node: reserves `cpu_time` of
  /// stack processing and returns its completion time.  Layers schedule
  /// wire injection at the returned instant, so a host's protocol overhead
  /// — not just the wire — throttles its throughput (the paper's central
  /// measurement: TCP on 155 Mb/s ATM delivers only 78 Mb/s).
  sim::SimTime reserve_stack(net::NodeId id, sim::Duration cpu_time);

  os::Node* node(net::NodeId id) {
    return id < nodes_.size() ? nodes_[id] : nullptr;
  }
  net::Network& network() { return network_; }
  sim::Engine& engine() { return network_.engine(); }
  std::size_t node_count() const { return nodes_.size(); }

 private:
  void on_delivery(net::Packet&& pkt);

  bool carried(net::NodeId node) const;

  net::Network& network_;
  std::vector<LayerRx> layers_;
  std::vector<os::Node*> nodes_;
  std::vector<sim::SimTime> stack_busy_until_;
  bool enforce_admission_ = false;
  std::uint64_t expected_key_ = 0;
  std::vector<bool> admitted_;
  // Bumped from source lanes (send) and destination lanes (on_delivery).
  std::atomic<std::uint64_t> rejected_packets_{0};
};

}  // namespace now::proto
