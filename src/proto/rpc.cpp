#include "proto/rpc.hpp"

#include <cassert>

namespace now::proto {

void RpcLayer::bind(os::Node& node) {
  const net::NodeId id = node.id();
  assert(!endpoints_.contains(id) && "node bound twice");
  const EndpointId ep = am_.create_endpoint(node, AmLayer::Mode::kInterrupt);
  endpoints_[id] = ep;
  callers_.emplace(id, CallerState{});
  am_.register_handler(ep, kRequestHandler,
                       [this, id](const AmMessage& m) { on_request(id, m); });
  am_.register_handler(ep, kResponseHandler,
                       [this, id](const AmMessage& m) { on_response(id, m); });
}

RpcLayer::CallerState& RpcLayer::caller_state(net::NodeId node) {
  const auto it = callers_.find(node);
  assert(it != callers_.end() && "caller_state before bind");
  return it->second;
}

void RpcLayer::register_method(net::NodeId node, MethodId method, Method fn) {
  assert(endpoints_.contains(node) && "register_method before bind");
  methods_[node][method] = std::move(fn);
}

void RpcLayer::call(net::NodeId from, net::NodeId to, MethodId method,
                    std::uint32_t req_bytes, std::any req,
                    ResponseFn on_reply, sim::Duration timeout,
                    TimeoutFn on_timeout) {
  assert(endpoints_.contains(from) && endpoints_.contains(to));
  CallerState& cs = caller_state(from);
  // Ids are caller-scoped (high word = caller node), so concurrent lanes
  // never contend on a shared counter and a response unambiguously names
  // its caller's table.
  const std::uint64_t id =
      (static_cast<std::uint64_t>(from) << 32) | cs.next_call_id++;
  calls_sent_.fetch_add(1, std::memory_order_relaxed);

  Outstanding out;
  out.on_reply = std::move(on_reply);
  if (timeout > 0) {
    // The timer lives on the caller's lane, like everything in its table.
    out.timer = am_.engine_of(am_.node_of(endpoints_[from]))
                    .schedule_in(timeout,
                                 [this, from, id, cb = std::move(on_timeout)] {
                                   CallerState& c = caller_state(from);
                                   const auto it = c.outstanding.find(id);
                                   if (it == c.outstanding.end()) return;
                                   c.outstanding.erase(it);
                                   timeouts_.fetch_add(
                                       1, std::memory_order_relaxed);
                                   if (cb) cb();
                                 });
  }
  cs.outstanding.emplace(id, std::move(out));

  am_.send(endpoints_[from], endpoints_[to], kRequestHandler, req_bytes,
           Request{id, from, method, std::move(req)});
}

void RpcLayer::on_request(net::NodeId self, const AmMessage& m) {
  const auto* req = std::any_cast<Request>(&m.payload);
  assert(req != nullptr);
  const auto nit = methods_.find(self);
  assert(nit != methods_.end());
  const auto mit = nit->second.find(req->method);
  assert(mit != nit->second.end() && "RPC method not registered");

  const std::uint64_t call_id = req->call_id;
  const net::NodeId caller = req->caller;
  ReplyFn reply = [this, self, caller, call_id](std::uint32_t resp_bytes,
                                                std::any resp) {
    am_.send(endpoints_[self], endpoints_[caller], kResponseHandler,
             resp_bytes, Response{call_id, std::move(resp)});
  };
  mit->second(caller, req->payload, std::move(reply));
}

void RpcLayer::on_response(net::NodeId self, const AmMessage& m) {
  const auto* resp = std::any_cast<Response>(&m.payload);
  assert(resp != nullptr);
  CallerState& cs = caller_state(self);
  const auto it = cs.outstanding.find(resp->call_id);
  if (it == cs.outstanding.end()) return;  // reply after timeout: dropped
  Outstanding out = std::move(it->second);
  cs.outstanding.erase(it);
  replies_.fetch_add(1, std::memory_order_relaxed);
  if (out.timer != 0) {
    am_.engine_of(am_.node_of(endpoints_[self])).cancel(out.timer);
  }
  if (out.on_reply) out.on_reply(resp->payload);
}

}  // namespace now::proto
