#include "proto/rpc.hpp"

#include <cassert>

namespace now::proto {

void RpcLayer::bind(os::Node& node) {
  const net::NodeId id = node.id();
  assert(!endpoints_.contains(id) && "node bound twice");
  const EndpointId ep = am_.create_endpoint(node, AmLayer::Mode::kInterrupt);
  endpoints_[id] = ep;
  am_.register_handler(ep, kRequestHandler,
                       [this, id](const AmMessage& m) { on_request(id, m); });
  am_.register_handler(ep, kResponseHandler,
                       [this](const AmMessage& m) { on_response(m); });
}

void RpcLayer::register_method(net::NodeId node, MethodId method, Method fn) {
  assert(endpoints_.contains(node) && "register_method before bind");
  methods_[node][method] = std::move(fn);
}

void RpcLayer::call(net::NodeId from, net::NodeId to, MethodId method,
                    std::uint32_t req_bytes, std::any req,
                    ResponseFn on_reply, sim::Duration timeout,
                    TimeoutFn on_timeout) {
  assert(endpoints_.contains(from) && endpoints_.contains(to));
  const std::uint64_t id = next_call_id_++;
  ++calls_sent_;

  Outstanding out;
  out.on_reply = std::move(on_reply);
  if (timeout > 0) {
    out.timer = am_.engine().schedule_in(
        timeout, [this, id, cb = std::move(on_timeout)] {
          const auto it = outstanding_.find(id);
          if (it == outstanding_.end()) return;
          outstanding_.erase(it);
          ++timeouts_;
          if (cb) cb();
        });
  }
  outstanding_.emplace(id, std::move(out));

  am_.send(endpoints_[from], endpoints_[to], kRequestHandler, req_bytes,
           Request{id, from, method, std::move(req)});
}

void RpcLayer::on_request(net::NodeId self, const AmMessage& m) {
  const auto* req = std::any_cast<Request>(&m.payload);
  assert(req != nullptr);
  const auto nit = methods_.find(self);
  assert(nit != methods_.end());
  const auto mit = nit->second.find(req->method);
  assert(mit != nit->second.end() && "RPC method not registered");

  const std::uint64_t call_id = req->call_id;
  const net::NodeId caller = req->caller;
  ReplyFn reply = [this, self, caller, call_id](std::uint32_t resp_bytes,
                                                std::any resp) {
    am_.send(endpoints_[self], endpoints_[caller], kResponseHandler,
             resp_bytes, Response{call_id, std::move(resp)});
  };
  mit->second(caller, req->payload, std::move(reply));
}

void RpcLayer::on_response(const AmMessage& m) {
  const auto* resp = std::any_cast<Response>(&m.payload);
  assert(resp != nullptr);
  const auto it = outstanding_.find(resp->call_id);
  if (it == outstanding_.end()) return;  // reply after timeout: dropped
  Outstanding out = std::move(it->second);
  outstanding_.erase(it);
  ++replies_;
  if (out.timer != 0) am_.engine().cancel(out.timer);
  if (out.on_reply) out.on_reply(resp->payload);
}

}  // namespace now::proto
