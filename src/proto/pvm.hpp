// PVM-class message passing: the paper's baseline programming system.
//
// PVM routes every message through per-node daemons: task -> local pvmd ->
// remote pvmd -> task, with packing/unpacking copies at each hop.  Two
// properties matter for the paper's arguments:
//
//  * cost: the daemon path is why "replacing PVM with a low-overhead,
//    low-latency communication system further reduces the execution time
//    by an order of magnitude" (Table 4's last row);
//  * semantics: the daemon buffers in kernel/daemon space, so a message
//    can be *received* while the destination task is descheduled — the
//    task still cannot *react* until scheduled, which is the local-
//    scheduling behaviour Figure 4's discussion attributes to "parallel
//    environments such as PVM".
//
// Messages are matched by (source-agnostic) tag, as in pvm_recv(-1, tag).
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "proto/tcp.hpp"

namespace now::proto {

using PvmTaskId = std::uint32_t;
inline constexpr PvmTaskId kInvalidTask = 0xffffffffu;

struct PvmMessage {
  PvmTaskId source = kInvalidTask;
  int tag = 0;
  std::uint32_t bytes = 0;
  std::any payload;
};

struct PvmStats {
  std::uint64_t sends = 0;
  std::uint64_t delivered = 0;   // handed to a task's recv
  std::uint64_t buffered_peak = 0;
};

/// The parallel virtual machine: daemons over the kernel-TCP model.
class PvmLayer {
 public:
  using RecvFn = std::function<void(PvmMessage&&)>;

  /// Daemons talk TCP on `daemon_port`.
  PvmLayer(NicMux& mux, TcpLayer& tcp, std::uint16_t daemon_port = 3049);
  PvmLayer(const PvmLayer&) = delete;
  PvmLayer& operator=(const PvmLayer&) = delete;

  /// Enrolls a task (a process on `node`) into the virtual machine.
  PvmTaskId enroll(os::Node& node, os::ProcessId pid);

  /// Sends from a task's process context: pays the task->daemon packing
  /// copy, then the TCP path.  `then` resumes the sender once the local
  /// daemon has taken the data (PVM's asynchronous send).
  void send(PvmTaskId from, PvmTaskId to, int tag, std::uint32_t bytes,
            std::any payload, std::function<void()> then);

  /// Blocking receive from a task's process context: the first buffered
  /// message with `tag` is delivered; otherwise the process sleeps until
  /// one arrives.  (tag = -1 matches anything.)
  void recv(PvmTaskId me, int tag, RecvFn fn);

  const PvmStats& stats() const { return stats_; }
  os::Node& node_of(PvmTaskId t) { return *tasks_.at(t).node; }

 private:
  struct Wire {
    PvmTaskId from;
    PvmTaskId to;
    int tag;
    std::uint32_t bytes;
    std::any payload;
  };
  struct PendingRecv {
    int tag;
    RecvFn fn;
  };
  struct Task {
    os::Node* node = nullptr;
    os::ProcessId pid = os::kNoProcess;
    std::deque<PvmMessage> mailbox;
    std::deque<PendingRecv> waiting;
  };

  void daemon_deliver(Wire&& w);
  bool try_match(Task& task);
  static bool tag_matches(int want, int got) {
    return want == -1 || want == got;
  }

  NicMux& mux_;
  TcpLayer& tcp_;
  std::uint16_t port_;
  std::vector<Task> tasks_;
  std::unordered_map<net::NodeId, bool> daemon_installed_;
  PvmStats stats_;
};

}  // namespace now::proto
