#include "proto/costs.hpp"

namespace now::proto {

ProtocolCosts am_cm5() {
  ProtocolCosts c;
  c.send_fixed = sim::from_us(1.7);
  c.recv_fixed = sim::from_us(1.7);
  // Small messages only on the CM-5 data network; bulk moves use the same
  // single-copy path.
  c.send_per_byte_ns = kCopyNsPerByte;
  c.recv_per_byte_ns = kCopyNsPerByte;
  return c;
}

ProtocolCosts am_medusa() {
  ProtocolCosts c;
  c.send_fixed = sim::from_us(8);  // includes timeout/retry bookkeeping
  c.recv_fixed = sim::from_us(8);
  c.send_per_byte_ns = kCopyNsPerByte;  // single copy into the interface
  c.recv_per_byte_ns = kCopyNsPerByte;
  return c;
}

ProtocolCosts tcp_kernel() {
  ProtocolCosts c;
  // Calibrated so one small message one-way through the Ethernet driver
  // path costs ~456 us of overhead + unloaded latency (the paper's
  // SparcStation-10 measurement).
  c.send_fixed = sim::from_us(160);
  c.recv_fixed = sim::from_us(160);
  c.send_per_byte_ns = 2.0 * kCopyNsPerByte;
  c.recv_per_byte_ns = 2.0 * kCopyNsPerByte;
  return c;
}

ProtocolCosts tcp_kernel_atm() {
  ProtocolCosts c;
  // The Synoptics ATM driver path was *slower* per message than Ethernet
  // (626 us vs 456 us) despite eight times the bandwidth — the paper's
  // point that bandwidth upgrades alone don't fix overhead.
  c.send_fixed = sim::from_us(278);
  c.recv_fixed = sim::from_us(278);
  c.send_per_byte_ns = 2.0 * kCopyNsPerByte;
  c.recv_per_byte_ns = 2.0 * kCopyNsPerByte;
  return c;
}

ProtocolCosts tcp_single_copy() {
  ProtocolCosts c;
  // Research single-copy TCP paths cut fixed per-packet work hard as well
  // as eliminating a copy; calibrated to the paper's 760-byte half-power
  // point on the Medusa hardware.
  c.send_fixed = sim::from_us(50);
  c.recv_fixed = sim::from_us(50);
  c.send_per_byte_ns = kCopyNsPerByte;
  c.recv_per_byte_ns = kCopyNsPerByte;
  return c;
}

ProtocolCosts pvm() {
  ProtocolCosts c;
  // TCP plus PVM's user-level daemon hop and packing/unpacking.
  c.send_fixed = sim::from_us(350);
  c.recv_fixed = sim::from_us(350);
  c.send_per_byte_ns = 3.0 * kCopyNsPerByte;
  c.recv_per_byte_ns = 3.0 * kCopyNsPerByte;
  return c;
}

}  // namespace now::proto
