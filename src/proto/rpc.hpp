// Request/response RPC built on interrupt-mode Active Messages.
//
// GLUnix daemons, the network-RAM pager, and xFS managers all speak RPC.
// Calls carry simulated sizes (bytes on the wire) and opaque payloads; a
// reply closure lets the service answer asynchronously (e.g. after a disk
// access).  An optional timeout lets callers survive crashed servers — the
// path GLUnix and xFS recovery tests exercise.
#pragma once

#include <any>
#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "proto/am.hpp"

namespace now::proto {

using MethodId = std::uint16_t;

class RpcLayer {
 public:
  /// Sends the response: (resp_bytes, resp_payload).
  using ReplyFn = std::function<void(std::uint32_t, std::any)>;
  /// Service implementation: (caller node, request payload, reply closure).
  using Method =
      std::function<void(net::NodeId, std::any, ReplyFn)>;
  using ResponseFn = std::function<void(std::any)>;
  using TimeoutFn = std::function<void()>;

  explicit RpcLayer(AmLayer& am) : am_(am) {}
  RpcLayer(const RpcLayer&) = delete;
  RpcLayer& operator=(const RpcLayer&) = delete;

  /// Creates this node's RPC endpoint.  Call once per participating node.
  void bind(os::Node& node);

  /// Registers `method` on `node` (which must be bound).
  void register_method(net::NodeId node, MethodId method, Method fn);

  /// Calls `method` on `to`, sending `req_bytes`.  `on_reply` runs on the
  /// caller when the response arrives.  If `timeout` > 0 and no response
  /// arrives in time, `on_timeout` runs instead (a late response is then
  /// dropped).
  void call(net::NodeId from, net::NodeId to, MethodId method,
            std::uint32_t req_bytes, std::any req, ResponseFn on_reply,
            sim::Duration timeout = 0, TimeoutFn on_timeout = nullptr);

  sim::Engine& engine() { return am_.engine(); }

  std::uint64_t calls_sent() const {
    return calls_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t replies_received() const {
    return replies_.load(std::memory_order_relaxed);
  }
  std::uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }

 private:
  struct Request {
    std::uint64_t call_id;
    net::NodeId caller;
    MethodId method;
    std::any payload;
  };
  struct Response {
    std::uint64_t call_id;
    std::any payload;
  };
  struct Outstanding {
    ResponseFn on_reply;
    sim::EventId timer = 0;
  };
  // Caller-side call tracking, confined to the caller's lane: calls, their
  // timeout timers, and the responses (delivered to the caller's endpoint)
  // all execute there.  Created at bind (setup time), looked up afterwards.
  struct CallerState {
    std::unordered_map<std::uint64_t, Outstanding> outstanding;
    std::uint64_t next_call_id = 1;
  };

  void on_request(net::NodeId self, const AmMessage& m);
  void on_response(net::NodeId self, const AmMessage& m);
  CallerState& caller_state(net::NodeId node);

  AmLayer& am_;
  std::unordered_map<net::NodeId, EndpointId> endpoints_;
  std::unordered_map<net::NodeId,
                     std::unordered_map<MethodId, Method>>
      methods_;
  std::unordered_map<net::NodeId, CallerState> callers_;
  std::atomic<std::uint64_t> calls_sent_{0};
  std::atomic<std::uint64_t> replies_{0};
  std::atomic<std::uint64_t> timeouts_{0};

  static constexpr HandlerId kRequestHandler = 1;
  static constexpr HandlerId kResponseHandler = 2;
};

}  // namespace now::proto
