// Conventional sockets built on Active Messages.
//
// "Constructing conventional sockets on top of this layer, we see a
// one-way message time of about 25 us, nearly an order of magnitude
// faster than TCP or single-copy TCP on the same hardware."
//
// The shim keeps the TcpLayer's (node, port) datagram-stream interface so
// existing socket code ports unchanged, but rides user-level AM: per
// message it adds only a small demultiplex/copy cost on each side on top
// of the AM path.  Reliability and ordering come from AM's go-back-N.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "proto/am.hpp"

namespace now::proto {

struct AmSocketParams {
  /// Socket-layer shim cost per side per message (buffer bookkeeping,
  /// descriptor demux) — the delta between raw AM and "sockets on AM".
  sim::Duration shim_cost = 4 * sim::kMicrosecond;
};

struct AmSocketMessage {
  net::NodeId src = net::kInvalidNode;
  std::uint16_t src_port = 0;
  std::uint32_t bytes = 0;
  std::any payload;
};

class AmSockets {
 public:
  using Receiver = std::function<void(AmSocketMessage&&)>;

  AmSockets(AmLayer& am, AmSocketParams params = {});
  AmSockets(const AmSockets&) = delete;
  AmSockets& operator=(const AmSockets&) = delete;

  /// Creates this node's socket endpoint.  Once per participating node.
  void bind_node(os::Node& node);

  /// Binds a receive callback to (node, port).
  void listen(net::NodeId node, std::uint16_t port, Receiver rx);

  /// Sends `bytes` to (dst, dst_port); ordering per (src,dst) pair is
  /// AM's.
  void send(net::NodeId src, std::uint16_t src_port, net::NodeId dst,
            std::uint16_t dst_port, std::uint32_t bytes, std::any payload);

  std::uint64_t messages() const { return messages_; }

 private:
  struct Wire {
    std::uint16_t src_port;
    std::uint16_t dst_port;
    std::any payload;
  };

  AmLayer& am_;
  AmSocketParams params_;
  std::unordered_map<net::NodeId, EndpointId> endpoints_;
  std::unordered_map<std::uint64_t, Receiver> listeners_;
  std::uint64_t messages_ = 0;

  static std::uint64_t key(net::NodeId n, std::uint16_t p) {
    return (static_cast<std::uint64_t>(n) << 16) | p;
  }
  static constexpr HandlerId kData = 1;
};

}  // namespace now::proto
