#include "proto/pvm.hpp"

#include <algorithm>
#include <cassert>

namespace now::proto {

PvmLayer::PvmLayer(NicMux& mux, TcpLayer& tcp, std::uint16_t daemon_port)
    : mux_(mux), tcp_(tcp), port_(daemon_port) {}

PvmTaskId PvmLayer::enroll(os::Node& node, os::ProcessId pid) {
  const auto id = static_cast<PvmTaskId>(tasks_.size());
  Task t;
  t.node = &node;
  t.pid = pid;
  tasks_.push_back(std::move(t));
  if (!daemon_installed_[node.id()]) {
    daemon_installed_[node.id()] = true;
    tcp_.listen(node.id(), port_, [this](TcpMessage&& m) {
      auto w = std::any_cast<Wire>(std::move(m.payload));
      daemon_deliver(std::move(w));
    });
  }
  return id;
}

void PvmLayer::send(PvmTaskId from, PvmTaskId to, int tag,
                    std::uint32_t bytes, std::any payload,
                    std::function<void()> then) {
  assert(from < tasks_.size() && to < tasks_.size());
  ++stats_.sends;
  Task& src = tasks_[from];
  // Task -> daemon hop: pvm_pkint-style packing, one copy of the data.
  const sim::Duration pack = src.node->copy_cost(bytes);
  src.node->cpu().compute(src.pid, std::max<sim::Duration>(pack, 1),
                          [this, from, to, tag, bytes,
                           payload = std::move(payload),
                           then = std::move(then)]() mutable {
                            Task& s = tasks_[from];
                            Task& d = tasks_[to];
                            tcp_.send(s.node->id(), port_, d.node->id(),
                                      port_, bytes + 64,
                                      Wire{from, to, tag, bytes,
                                           std::move(payload)});
                            then();
                          });
}

void PvmLayer::daemon_deliver(Wire&& w) {
  Task& task = tasks_[w.to];
  // Daemon -> task unpacking copy, charged as system time on the node.
  task.node->cpu().steal(task.node->copy_cost(w.bytes));
  PvmMessage msg;
  msg.source = w.from;
  msg.tag = w.tag;
  msg.bytes = w.bytes;
  msg.payload = std::move(w.payload);
  task.mailbox.push_back(std::move(msg));
  stats_.buffered_peak =
      std::max<std::uint64_t>(stats_.buffered_peak, task.mailbox.size());
  if (try_match(task)) {
    // A sleeping receiver was satisfied: make it runnable.
    task.node->cpu().wake(task.pid);
  }
}

bool PvmLayer::try_match(Task& task) {
  // Pair the oldest waiting recv with the oldest matching message.
  for (auto wit = task.waiting.begin(); wit != task.waiting.end(); ++wit) {
    for (auto mit = task.mailbox.begin(); mit != task.mailbox.end();
         ++mit) {
      if (!tag_matches(wit->tag, mit->tag)) continue;
      PvmMessage msg = std::move(*mit);
      RecvFn fn = std::move(wit->fn);
      task.mailbox.erase(mit);
      task.waiting.erase(wit);
      ++stats_.delivered;
      fn(std::move(msg));
      return true;
    }
  }
  return false;
}

void PvmLayer::recv(PvmTaskId me, int tag, RecvFn fn) {
  assert(me < tasks_.size());
  Task& task = tasks_[me];
  const auto mit = std::find_if(task.mailbox.begin(), task.mailbox.end(),
                                [tag](const PvmMessage& m) {
                                  return tag_matches(tag, m.tag);
                                });
  if (mit != task.mailbox.end()) {
    PvmMessage msg = std::move(*mit);
    task.mailbox.erase(mit);
    ++stats_.delivered;
    fn(std::move(msg));
    return;
  }
  // Sleep until the daemon buffers a match.  The continuation runs when
  // the process is next dispatched after the wake — PVM's semantics: the
  // daemon can buffer while the task is descheduled, but the task only
  // *reacts* once scheduled.
  task.waiting.push_back(PendingRecv{tag, nullptr});
  PendingRecv& slot = task.waiting.back();
  auto delivered = std::make_shared<PvmMessage>();
  slot.fn = [delivered](PvmMessage&& m) { *delivered = std::move(m); };
  task.node->cpu().block(task.pid,
                         [fn = std::move(fn), delivered]() mutable {
                           fn(std::move(*delivered));
                         });
}

}  // namespace now::proto
