#include "proto/am_sockets.hpp"

#include <cassert>

namespace now::proto {

AmSockets::AmSockets(AmLayer& am, AmSocketParams params)
    : am_(am), params_(params) {}

void AmSockets::bind_node(os::Node& node) {
  const net::NodeId id = node.id();
  assert(!endpoints_.contains(id));
  const EndpointId ep = am_.create_endpoint(node, AmLayer::Mode::kInterrupt);
  endpoints_[id] = ep;
  os::Node* n = &node;
  am_.register_handler(ep, kData, [this, n, id](const AmMessage& m) {
    // Receive-side shim: demux to the socket and hand the data up.
    n->cpu().steal(params_.shim_cost);
    auto w = std::any_cast<Wire>(m.payload);
    const net::NodeId src = am_.node_of(m.src_ep).id();
    am_.engine().schedule_in(
        params_.shim_cost,
        [this, id, src, bytes = m.bytes, w = std::move(w)]() mutable {
          const auto it = listeners_.find(key(id, w.dst_port));
          assert(it != listeners_.end() && "no listener on destination port");
          AmSocketMessage msg;
          msg.src = src;
          msg.src_port = w.src_port;
          msg.bytes = bytes;
          msg.payload = std::move(w.payload);
          it->second(std::move(msg));
        });
  });
}

void AmSockets::listen(net::NodeId node, std::uint16_t port, Receiver rx) {
  listeners_[key(node, port)] = std::move(rx);
}

void AmSockets::send(net::NodeId src, std::uint16_t src_port,
                     net::NodeId dst, std::uint16_t dst_port,
                     std::uint32_t bytes, std::any payload) {
  const auto sit = endpoints_.find(src);
  const auto dit = endpoints_.find(dst);
  assert(sit != endpoints_.end() && dit != endpoints_.end());
  ++messages_;
  // Send-side shim before the AM injection.
  am_.node_of(sit->second).cpu().steal(params_.shim_cost);
  am_.send(sit->second, dit->second, kData, bytes,
           Wire{src_port, dst_port, std::move(payload)});
}

}  // namespace now::proto
