// Redundant arrays of workstation disks — the paper's software RAID.
//
// Instead of a hardware RAID box behind one (failure-prone, expensive) host,
// data is striped in software across the disks *inside* the workstations,
// with the fast network as the I/O backplane.  Aggregate bandwidth scales
// with the number of member disks up to the client's link bandwidth, and
// there is no central controller to fail: any client can drive the array,
// and a lost member is reconstructed from parity onto a replacement.
//
// Levels:
//   kRaid0 — striping only (bandwidth, no redundancy).
//   kRaid5 — striping + rotating parity: small writes do the classic
//            read-modify-write (4 I/Os); reads of a failed member
//            reconstruct from the surviving stripe units.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "proto/rpc.hpp"

namespace now::raid {

/// Abstract block storage: what the xFS log writes into.  Implemented by
/// one SoftwareRaid and by StripeGroupArray (many RAIDs behind one address
/// space).  Besides the data path, the interface carries the membership
/// operations fault injection needs, so callers (Cluster, FaultInjector)
/// treat either backend uniformly.
class Storage {
 public:
  virtual ~Storage() = default;
  using Done = std::function<void()>;
  virtual void read(net::NodeId client, std::uint64_t offset,
                    std::uint32_t bytes, Done done) = 0;
  virtual void write(net::NodeId client, std::uint64_t offset,
                     std::uint32_t bytes, Done done) = 0;

  // --- Membership / failure handling ---
  /// True if `id`'s disk holds part of this address space.
  virtual bool is_member(net::NodeId id) const = 0;
  /// Marks member `id` lost (no-op for non-members).
  virtual void member_failed(net::NodeId id) = 0;
  /// True if member `id` is currently marked lost.
  virtual bool member_down(net::NodeId id) const = 0;
  /// True if any member is down.
  virtual bool degraded() const = 0;
  /// True if a lost member can be rebuilt from redundancy (RAID-5).
  virtual bool redundant() const = 0;
  /// Rebuilds lost member `failed` onto `replacement` with real
  /// reconstruction traffic (survivor reads + replacement-disk writes);
  /// `done` fires when the array is whole again.  Requires member_down and
  /// redundant().
  virtual void reconstruct_member(net::NodeId failed, os::Node& replacement,
                                  Done done,
                                  std::uint64_t rebuild_bytes_per_member) = 0;
};

enum class Level { kRaid0, kRaid5 };

/// RPC methods served by every member's storage daemon.
inline constexpr proto::MethodId kRaidRead = 110;
inline constexpr proto::MethodId kRaidWrite = 111;

/// Installs the storage daemon on a member node: read/write requests hit
/// the local disk and reply with (or absorb) the data.
void install_storage_service(proto::RpcLayer& rpc, os::Node& node);

struct RaidParams {
  Level level = Level::kRaid5;
  /// Stripe unit (bytes of consecutive data per member before moving on).
  std::uint32_t stripe_unit = 32 * 1024;
};

struct RaidStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t degraded_reads = 0;    // served by reconstruction
  std::uint64_t parity_updates = 0;    // small-write read-modify-writes
  std::uint64_t full_stripe_writes = 0;
};

class SoftwareRaid final : public Storage {
 public:
  using Done = Storage::Done;

  /// `members` are the workstations contributing their disks.
  SoftwareRaid(proto::RpcLayer& rpc, std::vector<os::Node*> members,
               RaidParams params);
  SoftwareRaid(const SoftwareRaid&) = delete;
  SoftwareRaid& operator=(const SoftwareRaid&) = delete;

  /// Reads `bytes` at logical `offset`, issued from `client` (any node on
  /// the network, possibly itself a member).  `done` fires when every
  /// stripe unit has arrived.
  void read(net::NodeId client, std::uint64_t offset, std::uint32_t bytes,
            Done done) override;

  /// Writes `bytes` at logical `offset`.  RAID-5 charges parity I/O:
  /// full-stripe writes compute parity client-side, partial writes
  /// read-modify-write.
  void write(net::NodeId client, std::uint64_t offset, std::uint32_t bytes,
             Done done) override;

  /// Marks a member dead (its node crashed); subsequent reads touching it
  /// reconstruct from the others (RAID-5) — RAID-0 reads of it fail the
  /// assertion, as RAID-0 has no redundancy.  No-op for non-members.
  void member_failed(net::NodeId id) override;

  /// Rebuilds the failed member's contents onto `replacement` by reading
  /// every surviving member and writing reconstructed units.  `done` fires
  /// when the rebuild completes and the array is whole again.
  void reconstruct(net::NodeId failed, os::Node& replacement, Done done,
                   std::uint64_t rebuild_bytes_per_member = 8 << 20);

  bool is_member(net::NodeId id) const override;
  bool member_down(net::NodeId id) const override {
    return failed_.contains(id);
  }
  bool redundant() const override {
    return params_.level == Level::kRaid5;
  }
  void reconstruct_member(net::NodeId failed, os::Node& replacement,
                          Done done,
                          std::uint64_t rebuild_bytes_per_member) override {
    reconstruct(failed, replacement, std::move(done),
                rebuild_bytes_per_member);
  }

  bool degraded() const override { return !failed_.empty(); }
  std::size_t width() const { return members_.size(); }
  const RaidStats& stats() const { return stats_; }
  const RaidParams& params() const { return params_; }

  /// Number of data (non-parity) units per stripe row.
  std::size_t data_units_per_row() const {
    return params_.level == Level::kRaid5 ? members_.size() - 1
                                          : members_.size();
  }

 private:
  struct Target {
    std::size_t member;        // index into members_
    std::uint64_t disk_offset;
    std::uint32_t bytes;
  };

  /// Maps a logical byte range onto member stripe units.
  std::vector<Target> map_range(std::uint64_t offset,
                                std::uint32_t bytes) const;
  std::size_t parity_member(std::uint64_t row) const;
  bool is_failed(std::size_t member) const;
  void issue_read(net::NodeId client, const Target& t, Done done);
  void issue_write(net::NodeId client, const Target& t, Done done);

  proto::RpcLayer& rpc_;
  std::vector<os::Node*> members_;
  RaidParams params_;
  std::unordered_set<net::NodeId> failed_;
  RaidStats stats_;
};

}  // namespace now::raid
