#include "raid/raid.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace now::raid {

namespace {
/// Wire payload for storage-daemon requests.
struct RaidIo {
  std::uint64_t offset;
  std::uint32_t bytes;
  bool is_write;
};

/// Fires `done` once `n` sub-operations have completed.
class Join {
 public:
  Join(std::size_t n, SoftwareRaid::Done done)
      : remaining_(n), done_(std::move(done)) {
    assert(n > 0);
  }
  void arrive() {
    if (--remaining_ == 0 && done_) done_();
  }

 private:
  std::size_t remaining_;
  SoftwareRaid::Done done_;
};

std::shared_ptr<Join> make_join(std::size_t n, SoftwareRaid::Done done) {
  return std::make_shared<Join>(n, std::move(done));
}
}  // namespace

void install_storage_service(proto::RpcLayer& rpc, os::Node& node) {
  rpc.register_method(
      node.id(), kRaidRead,
      [&node](net::NodeId, std::any req, proto::RpcLayer::ReplyFn reply) {
        const auto io = std::any_cast<RaidIo>(req);
        node.disk().read(io.offset, io.bytes,
                         [reply = std::move(reply), io] {
                           reply(io.bytes, {});
                         });
      });
  rpc.register_method(
      node.id(), kRaidWrite,
      [&node](net::NodeId, std::any req, proto::RpcLayer::ReplyFn reply) {
        const auto io = std::any_cast<RaidIo>(req);
        node.disk().write(io.offset, io.bytes,
                          [reply = std::move(reply)] { reply(16, {}); });
      });
}

SoftwareRaid::SoftwareRaid(proto::RpcLayer& rpc,
                           std::vector<os::Node*> members, RaidParams params)
    : rpc_(rpc), members_(std::move(members)), params_(params) {
  assert(members_.size() >= 2);
  assert(params_.level != Level::kRaid5 || members_.size() >= 3);
}

std::size_t SoftwareRaid::parity_member(std::uint64_t row) const {
  return static_cast<std::size_t>(row % members_.size());
}

bool SoftwareRaid::is_failed(std::size_t member) const {
  return failed_.contains(members_[member]->id());
}

std::vector<SoftwareRaid::Target> SoftwareRaid::map_range(
    std::uint64_t offset, std::uint32_t bytes) const {
  std::vector<Target> out;
  const std::uint64_t unit = params_.stripe_unit;
  const std::uint64_t d = data_units_per_row();
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + bytes;
  while (pos < end) {
    const std::uint64_t u = pos / unit;  // logical data unit index
    const std::uint64_t row = u / d;
    const std::uint64_t col = u % d;
    const std::uint64_t in_unit = pos % unit;
    const auto take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(unit - in_unit, end - pos));
    auto member = static_cast<std::size_t>(col);
    if (params_.level == Level::kRaid5) {
      const std::size_t p = parity_member(row);
      if (member >= p) ++member;  // skip the parity slot in this row
    }
    out.push_back(Target{member, row * unit + in_unit, take});
    pos += take;
  }
  return out;
}

void SoftwareRaid::issue_read(net::NodeId client, const Target& t,
                              Done done) {
  rpc_.call(client, members_[t.member]->id(), kRaidRead, 64,
            RaidIo{t.disk_offset, t.bytes, false},
            [done = std::move(done)](std::any) { done(); });
}

void SoftwareRaid::issue_write(net::NodeId client, const Target& t,
                               Done done) {
  rpc_.call(client, members_[t.member]->id(), kRaidWrite, t.bytes + 64,
            RaidIo{t.disk_offset, t.bytes, true},
            [done = std::move(done)](std::any) { done(); });
}

void SoftwareRaid::read(net::NodeId client, std::uint64_t offset,
                        std::uint32_t bytes, Done done) {
  ++stats_.reads;
  stats_.bytes_read += bytes;
  const auto targets = map_range(offset, bytes);

  // Physical reads: one per healthy target; a degraded target fans out to
  // every survivor (data + parity) plus one arrival for the client XOR.
  const std::size_t survivors = members_.size() - failed_.size();
  std::size_t ops = 0;
  for (const Target& t : targets) {
    ops += is_failed(t.member) ? survivors + 1 : 1;
  }
  auto join = make_join(std::max<std::size_t>(ops, 1), std::move(done));
  if (targets.empty()) {
    join->arrive();
    return;
  }

  for (const Target& t : targets) {
    if (!is_failed(t.member)) {
      issue_read(client, t, [join] { join->arrive(); });
      continue;
    }
    assert(params_.level == Level::kRaid5 &&
           "RAID-0 cannot read a failed member");
    ++stats_.degraded_reads;
    const std::uint64_t row = t.disk_offset / params_.stripe_unit;
    for (std::size_t m = 0; m < members_.size(); ++m) {
      if (m == t.member || is_failed(m)) continue;
      issue_read(client,
                 Target{m, row * params_.stripe_unit, params_.stripe_unit},
                 [join] { join->arrive(); });
    }
    // The client-side XOR completes the reconstruction (its CPU cost is
    // folded into the RPC transfer costs).
    join->arrive();
  }
}

void SoftwareRaid::write(net::NodeId client, std::uint64_t offset,
                         std::uint32_t bytes, Done done) {
  ++stats_.writes;
  stats_.bytes_written += bytes;
  const auto targets = map_range(offset, bytes);

  if (params_.level == Level::kRaid0) {
    auto join = make_join(std::max<std::size_t>(targets.size(), 1),
                          std::move(done));
    if (targets.empty()) {
      join->arrive();
      return;
    }
    for (const Target& t : targets) {
      assert(!is_failed(t.member) && "RAID-0 write to failed member");
      issue_write(client, t, [join] { join->arrive(); });
    }
    return;
  }

  // RAID-5: group by stripe row to detect full-stripe writes.
  const std::uint64_t unit = params_.stripe_unit;
  const std::size_t d = data_units_per_row();
  std::unordered_map<std::uint64_t, std::uint64_t> row_cover;
  for (const Target& t : targets) {
    row_cover[t.disk_offset / unit] += t.bytes;
  }

  // Arrivals: full-stripe -> 1 per data target + 1 per row for parity;
  // partial -> 2 per target (data write + parity write; the preceding
  // reads gate the writes rather than joining themselves).
  std::size_t ops = 0;
  for (const Target& t : targets) {
    const bool full = row_cover[t.disk_offset / unit] == d * unit;
    ops += full ? 1 : 2;
  }
  for (const auto& [row, cover] : row_cover) {
    if (cover == d * unit) ++ops;  // the row's parity write (or skip slot)
  }

  auto join = make_join(std::max<std::size_t>(ops, 1), std::move(done));
  if (targets.empty()) {
    join->arrive();
    return;
  }

  std::unordered_set<std::uint64_t> parity_written;
  for (const Target& t : targets) {
    const std::uint64_t row = t.disk_offset / unit;
    const bool full = row_cover[row] == d * unit;
    const std::size_t p = parity_member(row);
    const Target parity_target{p, row * unit,
                               static_cast<std::uint32_t>(unit)};
    if (full) {
      ++stats_.full_stripe_writes;
      if (!is_failed(t.member)) {
        issue_write(client, t, [join] { join->arrive(); });
      } else {
        join->arrive();  // lost member: its data is implied by parity
      }
      if (parity_written.insert(row).second) {
        if (!is_failed(p)) {
          issue_write(client, parity_target, [join] { join->arrive(); });
        } else {
          join->arrive();
        }
      }
      continue;
    }
    ++stats_.parity_updates;
    if (is_failed(p) || is_failed(t.member)) {
      // Degraded small write: update whichever of {data, parity} survives.
      const Target alive = is_failed(t.member) ? parity_target : t;
      issue_write(client, alive, [join] { join->arrive(); });
      join->arrive();
      continue;
    }
    // Read-modify-write: read old data and old parity in parallel, then
    // write both.
    auto reads_left = std::make_shared<int>(2);
    const Target data_target = t;
    auto continue_writes = [this, client, data_target, parity_target, join,
                            reads_left] {
      if (--*reads_left > 0) return;
      issue_write(client, data_target, [join] { join->arrive(); });
      issue_write(client, parity_target, [join] { join->arrive(); });
    };
    issue_read(client, data_target, continue_writes);
    issue_read(client, parity_target, continue_writes);
  }
}

bool SoftwareRaid::is_member(net::NodeId id) const {
  for (const os::Node* m : members_) {
    if (m->id() == id) return true;
  }
  return false;
}

void SoftwareRaid::member_failed(net::NodeId id) {
  // Non-members must not poison the survivor count the degraded-read
  // fan-out is computed from.
  if (!is_member(id)) return;
  failed_.insert(id);
}

void SoftwareRaid::reconstruct(net::NodeId failed, os::Node& replacement,
                               Done done,
                               std::uint64_t rebuild_bytes_per_member) {
  assert(params_.level == Level::kRaid5 && "nothing to rebuild on RAID-0");
  assert(failed_.contains(failed));
  std::size_t idx = members_.size();
  for (std::size_t m = 0; m < members_.size(); ++m) {
    if (members_[m]->id() == failed) idx = m;
  }
  assert(idx < members_.size());

  const std::uint64_t unit = params_.stripe_unit;
  const std::uint64_t chunks = std::max<std::uint64_t>(
      rebuild_bytes_per_member / unit, 1);
  const net::NodeId driver = replacement.id();

  // Rebuild chunk-by-chunk: read the row from every survivor, XOR, write
  // the reconstructed unit onto the replacement's disk.
  auto row_counter = std::make_shared<std::uint64_t>(0);
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, row_counter, step, chunks, unit, idx, driver, &replacement,
           failed, done = std::move(done)]() mutable {
    if (*row_counter == chunks) {
      failed_.erase(failed);
      members_[idx] = &replacement;
      if (done) done();
      // Break the self-reference cycle, but not while this lambda is still
      // executing — destroying an active std::function is undefined.
      rpc_.engine().schedule_in(0, [step] { *step = nullptr; });
      return;
    }
    const std::uint64_t row = (*row_counter)++;
    const std::size_t survivors = members_.size() - failed_.size();
    auto join = make_join(survivors + 1, [step] {
      if (*step) (*step)();
    });
    for (std::size_t m = 0; m < members_.size(); ++m) {
      if (m == idx || is_failed(m)) continue;
      issue_read(driver,
                 Target{m, row * unit, static_cast<std::uint32_t>(unit)},
                 [join] { join->arrive(); });
    }
    replacement.disk().write(row * unit, static_cast<std::uint32_t>(unit),
                             [join] { join->arrive(); });
  };
  (*step)();
}

}  // namespace now::raid
