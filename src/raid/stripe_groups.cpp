#include "raid/stripe_groups.hpp"

#include <cassert>

namespace now::raid {

StripeGroupArray::StripeGroupArray(proto::RpcLayer& rpc,
                                   std::vector<os::Node*> members,
                                   RaidParams params, std::size_t group_size,
                                   std::uint64_t band_bytes)
    : band_bytes_(band_bytes) {
  assert(group_size >= 2 && band_bytes > 0);
  for (std::size_t start = 0; start + group_size <= members.size();
       start += group_size) {
    std::vector<os::Node*> g(members.begin() + static_cast<long>(start),
                             members.begin() +
                                 static_cast<long>(start + group_size));
    group_members_.push_back(g);
    groups_.push_back(std::make_unique<SoftwareRaid>(rpc, std::move(g),
                                                     params));
  }
  assert(!groups_.empty() && "fewer members than one stripe group");
}

StripeGroupArray::Placement StripeGroupArray::place(
    std::uint64_t offset) const {
  const std::uint64_t band = offset / band_bytes_;
  const std::uint64_t in_band = offset % band_bytes_;
  const std::size_t group =
      static_cast<std::size_t>(band % groups_.size());
  // Bands owned by a group pack densely in its private address space.
  const std::uint64_t local_band = band / groups_.size();
  return Placement{group, local_band * band_bytes_ + in_band};
}

template <typename Op>
void StripeGroupArray::split(net::NodeId client, std::uint64_t offset,
                             std::uint32_t bytes, Done done, Op op) {
  // Chop the range at band boundaries; each piece lives in one group.
  struct Piece {
    std::size_t group;
    std::uint64_t offset;
    std::uint32_t bytes;
  };
  std::vector<Piece> pieces;
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + bytes;
  while (pos < end) {
    const std::uint64_t band_end =
        (pos / band_bytes_ + 1) * band_bytes_;
    const auto take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(band_end, end) - pos);
    const Placement p = place(pos);
    pieces.push_back(Piece{p.group, p.offset, take});
    pos += take;
  }
  auto remaining = std::make_shared<std::size_t>(pieces.size());
  auto join = [remaining, done = std::move(done)]() mutable {
    if (--*remaining == 0 && done) done();
  };
  for (const Piece& p : pieces) {
    op(*groups_[p.group], client, p.offset, p.bytes, join);
  }
}

void StripeGroupArray::read(net::NodeId client, std::uint64_t offset,
                            std::uint32_t bytes, Done done) {
  split(client, offset, bytes, std::move(done),
        [](SoftwareRaid& g, net::NodeId c, std::uint64_t off,
           std::uint32_t n, std::function<void()> join) {
          g.read(c, off, n, std::move(join));
        });
}

void StripeGroupArray::write(net::NodeId client, std::uint64_t offset,
                             std::uint32_t bytes, Done done) {
  split(client, offset, bytes, std::move(done),
        [](SoftwareRaid& g, net::NodeId c, std::uint64_t off,
           std::uint32_t n, std::function<void()> join) {
          g.write(c, off, n, std::move(join));
        });
}

void StripeGroupArray::member_failed(net::NodeId id) {
  for (std::size_t g = 0; g < group_members_.size(); ++g) {
    for (const os::Node* n : group_members_[g]) {
      if (n->id() == id) {
        groups_[g]->member_failed(id);
        return;
      }
    }
  }
}

bool StripeGroupArray::is_member(net::NodeId id) const {
  for (const auto& g : groups_) {
    if (g->is_member(id)) return true;
  }
  return false;
}

bool StripeGroupArray::member_down(net::NodeId id) const {
  for (const auto& g : groups_) {
    if (g->member_down(id)) return true;
  }
  return false;
}

bool StripeGroupArray::redundant() const {
  return !groups_.empty() && groups_.front()->redundant();
}

void StripeGroupArray::reconstruct_member(
    net::NodeId failed, os::Node& replacement, Done done,
    std::uint64_t rebuild_bytes_per_member) {
  for (auto& g : groups_) {
    if (g->member_down(failed)) {
      g->reconstruct_member(failed, replacement, std::move(done),
                            rebuild_bytes_per_member);
      return;
    }
  }
  assert(false && "reconstruct_member: no group holds this failed member");
}

bool StripeGroupArray::degraded() const {
  for (const auto& g : groups_) {
    if (g->degraded()) return true;
  }
  return false;
}

RaidStats StripeGroupArray::stats() const {
  RaidStats total;
  for (const auto& g : groups_) {
    const RaidStats& s = g->stats();
    total.reads += s.reads;
    total.writes += s.writes;
    total.bytes_read += s.bytes_read;
    total.bytes_written += s.bytes_written;
    total.degraded_reads += s.degraded_reads;
    total.parity_updates += s.parity_updates;
    total.full_stripe_writes += s.full_stripe_writes;
  }
  return total;
}

}  // namespace now::raid
