// Stripe groups: xFS's answer to building-wide striping.
//
// Striping every write across all 100 workstations would make full-stripe
// writes impossible (no log segment is 99 units long) and make every
// client a hot spot for every failure.  xFS instead organizes the storage
// servers into *stripe groups* of a handful of machines; each log segment
// is striped across exactly one group, so segment-sized writes are
// full-stripe writes, and a failure degrades one group, not the building.
//
// StripeGroupArray presents the same Storage interface as one RAID but
// routes fixed-size bands of the address space round-robin across the
// groups — band k lives in group k mod G, at a densely packed offset
// within that group.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "raid/raid.hpp"

namespace now::raid {

class StripeGroupArray final : public Storage {
 public:
  /// Partitions `members` into groups of `group_size` (a trailing short
  /// group is dropped — every group has identical geometry).  Address
  /// bands of `band_bytes` rotate across groups; size bands to the log's
  /// segment so each segment is one group's full stripes.
  StripeGroupArray(proto::RpcLayer& rpc, std::vector<os::Node*> members,
                   RaidParams params, std::size_t group_size,
                   std::uint64_t band_bytes);
  StripeGroupArray(const StripeGroupArray&) = delete;
  StripeGroupArray& operator=(const StripeGroupArray&) = delete;

  void read(net::NodeId client, std::uint64_t offset, std::uint32_t bytes,
            Done done) override;
  void write(net::NodeId client, std::uint64_t offset, std::uint32_t bytes,
             Done done) override;

  /// Propagates a member failure to its group (no-op for non-members,
  /// e.g. nodes in a dropped trailing short group).
  void member_failed(net::NodeId id) override;
  /// True if any group is running degraded.
  bool degraded() const override;

  bool is_member(net::NodeId id) const override;
  bool member_down(net::NodeId id) const override;
  bool redundant() const override;
  /// Routes the rebuild to the group that lost `failed`.
  void reconstruct_member(net::NodeId failed, os::Node& replacement,
                          Done done,
                          std::uint64_t rebuild_bytes_per_member) override;

  std::size_t group_count() const { return groups_.size(); }
  const SoftwareRaid& group(std::size_t g) const { return *groups_[g]; }

  /// Aggregate stats across groups.
  RaidStats stats() const;

 private:
  struct Placement {
    std::size_t group;
    std::uint64_t offset;  // within the group
  };
  Placement place(std::uint64_t offset) const;
  template <typename Op>
  void split(net::NodeId client, std::uint64_t offset, std::uint32_t bytes,
             Done done, Op op);

  std::uint64_t band_bytes_;
  std::vector<std::unique_ptr<SoftwareRaid>> groups_;
  std::vector<std::vector<os::Node*>> group_members_;
};

}  // namespace now::raid
