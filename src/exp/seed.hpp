// Deterministic per-task seed derivation for parallel sweeps.
//
// Every task in a sweep (sweep point x seed replica) gets
// derive_seed(base_seed, task_index): the task_index-th output of the
// SplitMix64 stream seeded with base_seed.  The derived seed depends only
// on (base_seed, task_index) — never on thread count, scheduling order, or
// which worker ran the task — which is what makes a parallel sweep
// bit-identical to the serial one.  SplitMix64 (Steele et al., "Fast
// Splittable Pseudorandom Number Generators", OOPSLA'14) is a bijective
// finalizer over a Weyl sequence, so distinct task indices can never
// collide for a fixed base seed.
#pragma once

#include <cstdint>

namespace now::exp {

/// The SplitMix64 output function (a bijection on 64-bit values).
constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seed for task `task_index` of a sweep keyed by `base_seed`.
///
/// Equal to the (task_index + 1)-th output of the canonical SplitMix64
/// generator seeded with `base_seed`.  Never returns 0, because several
/// components treat a zero seed as "derive one for me" (os::CpuParams).
constexpr std::uint64_t derive_seed(std::uint64_t base_seed,
                                    std::uint64_t task_index) {
  const std::uint64_t z =
      splitmix64_mix(base_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1));
  return z != 0 ? z : 0x2545f4914f6cdd1dULL;
}

}  // namespace now::exp
