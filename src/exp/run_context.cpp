#include "exp/run_context.hpp"

namespace now::exp {

namespace {
thread_local RunContext* t_current = nullptr;
}  // namespace

ScopedRunContext::ScopedRunContext(RunContext& ctx)
    : prev_ctx_(t_current),
      prev_metrics_(obs::set_thread_metrics(&ctx.metrics)),
      prev_tracer_(obs::set_thread_tracer(&ctx.tracer)),
      prev_log_(sim::set_thread_log_config(&ctx.log)) {
  t_current = &ctx;
}

ScopedRunContext::~ScopedRunContext() {
  sim::set_thread_log_config(prev_log_);
  obs::set_thread_tracer(prev_tracer_);
  obs::set_thread_metrics(prev_metrics_);
  t_current = prev_ctx_;
}

RunContext* current_context() { return t_current; }

}  // namespace now::exp
