#include "exp/pool.hpp"

namespace now::exp {

unsigned effective_jobs(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

WorkStealingPool::WorkStealingPool(unsigned threads) {
  if (threads == 0) threads = 1;
  deques_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool WorkStealingPool::pop_or_steal(unsigned self, std::size_t* out) {
  {
    Deque& own = *deques_[self];
    std::lock_guard<std::mutex> lock(own.m);
    if (!own.tasks.empty()) {
      *out = own.tasks.front();
      own.tasks.pop_front();
      return true;
    }
  }
  const unsigned w = static_cast<unsigned>(deques_.size());
  for (unsigned k = 1; k < w; ++k) {
    Deque& victim = *deques_[(self + k) % w];
    std::lock_guard<std::mutex> lock(victim.m);
    if (!victim.tasks.empty()) {
      *out = victim.tasks.back();
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void WorkStealingPool::worker_main(unsigned self) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(m_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    std::size_t idx;
    while (pop_or_steal(self, &idx)) {
      // Re-read fn_ per task rather than caching it across the inner loop:
      // a worker draining the tail of one batch can legally pick up the
      // first tasks of the next (they are published before the generation
      // bump), and must run them with the new batch's function.
      const std::function<void(std::size_t)>* fn;
      {
        std::lock_guard<std::mutex> lock(m_);
        fn = fn_;
      }
      std::exception_ptr err;
      try {
        (*fn)(idx);
      } catch (...) {
        err = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(m_);
        if (err) failures_.emplace_back(idx, err);
        if (--remaining_ == 0) done_cv_.notify_all();
      }
    }
  }
}

void WorkStealingPool::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // One batch at a time; a second caller queues here, not on the workers.
  std::lock_guard<std::mutex> batch_lock(batch_m_);
  {
    std::lock_guard<std::mutex> lock(m_);
    fn_ = &fn;
    remaining_ = n;
    failures_.clear();
  }
  // Publish the tasks round-robin *before* bumping the generation: workers
  // still draining the previous batch may pick these up early (see
  // worker_main), and late wakers find them by the generation change.
  const std::size_t w = deques_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Deque& d = *deques_[i % w];
    std::lock_guard<std::mutex> lock(d.m);
    d.tasks.push_back(i);
  }
  std::vector<std::pair<std::size_t, std::exception_ptr>> failures;
  {
    std::unique_lock<std::mutex> lock(m_);
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    fn_ = nullptr;
    failures.swap(failures_);
  }
  if (!failures.empty()) {
    const auto* worst = &failures.front();
    for (const auto& f : failures) {
      if (f.first < worst->first) worst = &f;
    }
    std::rethrow_exception(worst->second);
  }
}

}  // namespace now::exp
