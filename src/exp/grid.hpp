// now::exp — cartesian sweep axes.
//
// Sweeps over several experimental dimensions (backend x fault plan x
// offered load, say) want to hand run_sweep a single flat task count and
// recover the per-dimension coordinates inside each task.  Grid does the
// index arithmetic once, in one place: dimensions are named sizes, flat
// indices enumerate the cartesian product in row-major order (last
// dimension fastest), and coords()/flat() convert both ways.  Pure
// arithmetic — the mapping is the same on every thread and every run, so
// it adds nothing to the determinism budget.
#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace now::exp {

class Grid {
 public:
  Grid() = default;

  /// Appends a dimension of `size` points; returns its index.
  std::size_t add(std::string name, std::size_t size) {
    assert(size > 0 && "a grid dimension needs at least one point");
    names_.push_back(std::move(name));
    sizes_.push_back(size);
    return sizes_.size() - 1;
  }

  std::size_t dims() const { return sizes_.size(); }
  const std::string& name(std::size_t dim) const { return names_.at(dim); }
  std::size_t extent(std::size_t dim) const { return sizes_.at(dim); }

  /// Total number of grid points (product of extents; 1 when empty).
  std::size_t size() const {
    std::size_t n = 1;
    for (const std::size_t s : sizes_) n *= s;
    return n;
  }

  /// Coordinates of flat index `flat`, row-major (last dimension fastest).
  std::vector<std::size_t> coords(std::size_t flat) const {
    assert(flat < size());
    std::vector<std::size_t> c(sizes_.size(), 0);
    for (std::size_t d = sizes_.size(); d-- > 0;) {
      c[d] = flat % sizes_[d];
      flat /= sizes_[d];
    }
    return c;
  }

  /// Inverse of coords().
  std::size_t flat(const std::vector<std::size_t>& coords) const {
    assert(coords.size() == sizes_.size());
    std::size_t f = 0;
    for (std::size_t d = 0; d < sizes_.size(); ++d) {
      assert(coords[d] < sizes_[d]);
      f = f * sizes_[d] + coords[d];
    }
    return f;
  }

 private:
  std::vector<std::string> names_;
  std::vector<std::size_t> sizes_;
};

}  // namespace now::exp
