// A work-stealing thread pool for independent simulation tasks.
//
// The unit of work is coarse — an entire simulation run, milliseconds to
// minutes of CPU — so the pool optimizes for predictable distribution and
// clean shutdown, not nanosecond dispatch.  Each worker owns a deque;
// for_each_index() deals task indices round-robin across the deques, the
// owner pops from the front (so low indices — usually the biggest sweep
// points — start first), and an idle worker steals from the *back* of a
// victim's deque, keeping thieves and owners on opposite ends.
//
// for_each_index blocks until every index has run.  Task exceptions are
// collected and the one thrown by the lowest task index is rethrown to the
// caller — deterministic regardless of which worker hit its exception
// first.  Workers never touch thread-local simulation state themselves;
// isolation is the runner's job (exp::ScopedRunContext inside the task).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace now::exp {

/// Workers to use when the caller asked for `requested` (0 = one per
/// hardware thread; always at least 1).
unsigned effective_jobs(unsigned requested);

class WorkStealingPool {
 public:
  /// Spawns `threads` workers (at least 1; see effective_jobs()).
  explicit WorkStealingPool(unsigned threads);
  /// Signals stop and joins.  Must not be called while a for_each_index
  /// on another thread is still running.
  ~WorkStealingPool();
  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  unsigned threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(0) .. fn(n-1), each exactly once, on the pool's workers, and
  /// blocks until all n calls returned.  If any calls threw, rethrows the
  /// exception of the lowest failing index after the batch drains.  One
  /// batch at a time: calls from concurrent threads serialize.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

 private:
  struct Deque {
    std::mutex m;
    std::deque<std::size_t> tasks;
  };

  bool pop_or_steal(unsigned self, std::size_t* out);
  void worker_main(unsigned self);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;

  std::mutex m_;                      // batch + lifecycle state below
  std::condition_variable work_cv_;   // workers: a new batch arrived
  std::condition_variable done_cv_;   // caller: the batch drained
  std::mutex batch_m_;                // serializes concurrent callers
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::pair<std::size_t, std::exception_ptr>> failures_;
  bool stop_ = false;
};

}  // namespace now::exp
