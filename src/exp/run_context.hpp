// Per-run isolation context for parallel experiments.
//
// A RunContext owns everything that used to be process-wide mutable state:
// the metrics registry, the tracer, and the log configuration — plus the
// task's derived seed.  ScopedRunContext installs those on the calling
// thread (obs::set_thread_metrics / obs::set_thread_tracer /
// sim::set_thread_log_config), so all the instrumentation and logging
// call sites deep inside the stack — which keep calling plain
// obs::metrics(), obs::tracer(), and NOW_LOG-filtered log macros — resolve
// to this run's private instances.  N concurrent simulations therefore
// never share a mutable global, which is both the thread-safety story and
// the determinism story: a run's observable output depends only on its
// context, not on what ran beside it.
//
// The runner (exp::run_sweep) creates one RunContext per task and installs
// it for exactly the task's duration; now::Cluster accepts a RunContext
// via ClusterConfig::run to seed itself from the task's derived seed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "exp/seed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"

namespace now::exp {

struct RunContext {
  /// This task's seed: derive_seed(base_seed, task_index).  Everything
  /// random in the task must be constructed from it (and only it), so the
  /// task's results are a pure function of (base_seed, task_index).
  std::uint64_t seed = 1;
  std::size_t task_index = 0;

  /// Worker threads this task may use for *intra-run* parallelism
  /// (partitioned clusters).  0 = unconstrained.  run_sweep sets it to
  /// max(1, hardware_concurrency / concurrent jobs), so a sweep of
  /// partitioned clusters does not oversubscribe the machine: inter-run
  /// times intra-run parallelism stays within the core count.
  unsigned thread_budget = 0;

  /// Private instances of the (otherwise process-wide) observability and
  /// logging state.  `log` starts as a snapshot of the process defaults,
  /// so NOW_LOG and an installed mirror sink keep working inside a task.
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  sim::LogConfig log;

  RunContext() : log(sim::snapshot_log_config()) {}
  RunContext(std::uint64_t base_seed, std::size_t index)
      : seed(derive_seed(base_seed, index)), task_index(index),
        log(sim::snapshot_log_config()) {}
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;
};

/// RAII install/restore of a RunContext's state on the calling thread.
/// Nestable (the previous bindings are restored on destruction), but a
/// context must only ever be active on one thread at a time.
class ScopedRunContext {
 public:
  explicit ScopedRunContext(RunContext& ctx);
  ~ScopedRunContext();
  ScopedRunContext(const ScopedRunContext&) = delete;
  ScopedRunContext& operator=(const ScopedRunContext&) = delete;

 private:
  RunContext* prev_ctx_;
  obs::MetricsRegistry* prev_metrics_;
  obs::Tracer* prev_tracer_;
  sim::LogConfig* prev_log_;
};

/// The RunContext active on this thread, or nullptr outside any scope.
RunContext* current_context();

}  // namespace now::exp
