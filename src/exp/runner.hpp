// The sweep/replication runner: N independent simulations on all cores,
// bit-identical to running them serially.
//
// run_sweep(n, task) executes task(ctx) for task indices 0..n-1, where each
// call gets a fresh RunContext — derived seed, private metrics registry,
// private tracer, private log config — installed on the executing thread
// for exactly the task's duration.  Results land in task-index order no
// matter which worker finished first, and because every task constructs
// all of its state from ctx.seed = derive_seed(base_seed, index), the
// result vector is invariant under the jobs count:
//
//     run_sweep(n, task, {.jobs = 1}) == run_sweep(n, task, {.jobs = 8})
//
// byte for byte (results, metrics dumps, traces).  `jobs = 1` runs inline
// on the calling thread with no pool at all — the exact serial code path —
// so the equality above is a real test oracle, exercised by
// tests/exp_test.cpp and the CI sweep-determinism diff.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "exp/pool.hpp"
#include "exp/run_context.hpp"

namespace now::exp {

struct SweepOptions {
  /// Worker threads; 0 = one per hardware thread, 1 = serial (no pool).
  unsigned jobs = 0;
  /// Sweep identity: task i seeds from derive_seed(base_seed, first_index + i).
  std::uint64_t base_seed = 1;
  /// Offset into the task-index space, for running several sweeps under
  /// one base seed without reusing indices (bench_util's Sweep threads its
  /// running count through here).
  std::size_t first_index = 0;
  /// When set, receives per-task wall-clock milliseconds (index order).
  /// Wall times are measurement, not results: they vary run to run and
  /// must never feed back into simulation state or printed output.
  std::vector<double>* wall_ms = nullptr;
};

/// Runs task(ctx) for indices 0..n-1 and returns the results in index
/// order.  Task exceptions propagate: the exception of the lowest failing
/// index is rethrown (at jobs = 1, later tasks do not run; at jobs > 1 the
/// batch drains first).
template <typename Fn>
auto run_sweep(std::size_t n, Fn&& task, const SweepOptions& opt = {})
    -> std::vector<std::invoke_result_t<Fn&, RunContext&>> {
  using R = std::invoke_result_t<Fn&, RunContext&>;
  static_assert(!std::is_void_v<R>,
                "run_sweep tasks must return their result (use a struct; "
                "side effects through shared state defeat isolation)");
  std::vector<std::optional<R>> slots(n);
  if (opt.wall_ms != nullptr) opt.wall_ms->assign(n, 0.0);

  const unsigned jobs = effective_jobs(opt.jobs);
  unsigned jobs_used = jobs;
  if (n < jobs_used) jobs_used = static_cast<unsigned>(n);
  if (jobs_used < 1) jobs_used = 1;

  const auto run_one = [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    RunContext ctx(opt.base_seed, opt.first_index + i);
    // Cap each task's *intra-run* threads so sweep jobs times partitioned
    // cluster lanes never oversubscribes the machine.
    const unsigned hw = std::thread::hardware_concurrency();
    ctx.thread_budget = jobs_used >= 1 && hw > 0
                            ? (hw / jobs_used > 0 ? hw / jobs_used : 1)
                            : 1;
    ScopedRunContext scope(ctx);
    slots[i].emplace(task(ctx));
    if (opt.wall_ms != nullptr) {
      (*opt.wall_ms)[i] =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
    }
  };

  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    WorkStealingPool pool(jobs_used);
    pool.for_each_index(n, run_one);
  }

  std::vector<R> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    results.push_back(std::move(*slots[i]));
  }
  return results;
}

}  // namespace now::exp
