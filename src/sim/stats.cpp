#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace now::sim {

void Summary::add(double x) {
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double growth)
    : lo_(lo), log_growth_(std::log(growth)) {
  assert(lo > 0 && growth > 1.0);
}

std::size_t Histogram::bin_index(double x) const {
  return static_cast<std::size_t>(std::log(x / lo_) / log_growth_);
}

double Histogram::bin_upper(std::size_t i) const {
  return lo_ * std::exp(log_growth_ * static_cast<double>(i + 1));
}

void Histogram::add(double x) {
  summary_.add(x);
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const std::size_t i = bin_index(x);
  if (i >= bins_.size()) bins_.resize(i + 1, 0);
  ++bins_[i];
}

void Histogram::merge(const Histogram& other) {
  assert(lo_ == other.lo_ && log_growth_ == other.log_growth_ &&
         "histograms must share bin geometry to merge");
  summary_.merge(other.summary_);
  total_ += other.total_;
  underflow_ += other.underflow_;
  if (other.bins_.size() > bins_.size()) bins_.resize(other.bins_.size(), 0);
  for (std::size_t i = 0; i < other.bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
}

double Histogram::percentile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1)) + 1;
  std::uint64_t seen = underflow_;
  if (seen >= target) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    seen += bins_[i];
    if (seen >= target) return bin_upper(i);
  }
  return summary_.max();
}

}  // namespace now::sim
