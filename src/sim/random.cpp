#include "sim/random.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace now::sim {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::next_double() {
  // 53 random bits -> [0, 1).
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  const std::uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * 0x1.0p-53;
}

double Pcg32::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Pcg32::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32());
  }
  if (span <= 0xffffffffULL) {
    return lo + next_below(static_cast<std::uint32_t>(span));
  }
  // Wide span: use 53-bit double; fine for simulator parameter ranges.
  return lo + static_cast<std::int64_t>(next_double() *
                                        static_cast<double>(span));
}

double Pcg32::exponential(double mean) {
  assert(mean > 0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Pcg32::pareto(double alpha, double lo, double hi) {
  assert(alpha > 0 && lo > 0 && hi > lo);
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the bounded Pareto distribution.
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

double Pcg32::normal(double mean, double stddev) {
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

bool Pcg32::bernoulli(double p) { return next_double() < p; }

void Pcg32::shuffle(std::vector<std::uint32_t>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::uint32_t j = next_below(static_cast<std::uint32_t>(i));
    std::swap(v[i - 1], v[j]);
  }
}

ZipfSampler::ZipfSampler(std::uint32_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::uint32_t ZipfSampler::sample(Pcg32& rng) const {
  const double u = rng.next_double();
  // Binary search for the first cdf entry >= u.
  std::uint32_t lo = 0, hi = static_cast<std::uint32_t>(cdf_.size()) - 1;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace now::sim
