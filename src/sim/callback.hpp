// A move-only, type-erased `void()` callable with small-buffer optimisation.
//
// `std::function<void()>` heap-allocates for any capture list larger than two
// pointers, which makes it the dominant cost on the engine's schedule path.
// `InlinedCallback` stores captures up to `kInlineSize` bytes directly inside
// the object (one cache line together with the event-pool slot header) and
// falls back to the heap only for oversized or throwing-move captures.
//
// Compared to `std::function` it drops everything the engine does not need:
// no copy, no target_type(), no allocator support — just construct, move,
// invoke, destroy.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace now::sim {

class InlinedCallback {
 public:
  /// Captures up to this many bytes live inline; larger closures heap-allocate.
  /// 48 bytes keeps the engine's pool slot (callback + generation + free-list
  /// link) at exactly one 64-byte cache line while still fitting a
  /// `std::function` (32 bytes on libstdc++) or a `this` pointer plus five
  /// words of captures.
  static constexpr std::size_t kInlineSize = 48;

  InlinedCallback() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlinedCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlinedCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  InlinedCallback(InlinedCallback&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(o.buf_, buf_);
      o.ops_ = nullptr;
    }
  }

  InlinedCallback& operator=(InlinedCallback&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(o.buf_, buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlinedCallback(const InlinedCallback&) = delete;
  InlinedCallback& operator=(const InlinedCallback&) = delete;

  ~InlinedCallback() { reset(); }

  /// Destroys the held callable (if any), leaving the object empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Constructs a callable in place in an *empty* InlinedCallback — the
  /// zero-move path the engine uses to build closures directly inside pool
  /// slots.  Precondition: !*this.
  template <typename F, typename D = std::decay_t<F>>
  void emplace(F&& fn) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// Invokes the callable and destroys it, leaving the object empty — the
  /// engine's dispatch path, fused into a single indirect call.
  void invoke_and_reset() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(buf_);
  }

  /// True if a callable of type `D` is stored inline (no heap allocation).
  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  // One static dispatch table per erased type; a single pointer compare
  // replaces std::function's vtable-per-operation indirection.
  struct Ops {
    void (*invoke)(void* self);
    // Invoke, then destroy — one indirect call on the dispatch hot path.
    void (*invoke_destroy)(void* self);
    // Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* self) { (*static_cast<D*>(self))(); },
      [](void* self) {
        D* d = static_cast<D*>(self);
        (*d)();
        d->~D();
      },
      [](void* src, void* dst) noexcept {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* self) noexcept { static_cast<D*>(self)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* self) { (**static_cast<D**>(self))(); },
      [](void* self) {
        D* d = *static_cast<D**>(self);
        (*d)();
        delete d;
      },
      [](void* src, void* dst) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* self) noexcept { delete *static_cast<D**>(self); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace now::sim
