// Statistics collection used across all experiments.
//
// Summary accumulates scalar samples (min/max/mean/variance); Histogram adds
// percentile queries over log-spaced bins, which is what the benches use to
// report p50/p95/p99 response times alongside the paper's means.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace now::sim {

/// Streaming scalar summary: count, sum, min, max, mean, stddev.
class Summary {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Sample variance (Welford).  Zero with fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Merges another summary into this one (variance merged exactly).
  void merge(const Summary& other);

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Log-spaced histogram over (0, +inf) with exact percentile bounds.
///
/// Bin i covers [lo * growth^i, lo * growth^(i+1)); values below `lo` land in
/// an underflow bin.  With growth = 1.05 the relative quantile error is < 5 %.
class Histogram {
 public:
  /// `lo` is the smallest resolvable value; `growth` the bin width ratio.
  explicit Histogram(double lo = 1.0, double growth = 1.05);

  void add(double x);
  std::uint64_t count() const { return total_; }
  double mean() const { return summary_.mean(); }
  double max() const { return summary_.max(); }
  double min() const { return summary_.min(); }

  /// Value at quantile q in [0, 1] (upper bound of the bin containing it).
  double percentile(double q) const;

  /// Merges another histogram into this one.  Both must share `lo` and
  /// `growth` (every sample keeps its exact bin, so merged percentiles are
  /// identical to single-histogram recording, whatever the grouping —
  /// which is what lets per-lane shards report thread-count-invariant
  /// quantiles).
  void merge(const Histogram& other);

  const Summary& summary() const { return summary_; }

 private:
  double lo_;
  double log_growth_;
  std::uint64_t underflow_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> bins_;
  Summary summary_;

  std::size_t bin_index(double x) const;
  double bin_upper(std::size_t i) const;
};

/// Simple monotonically increasing counter with a name, for component
/// instrumentation (messages sent, page faults, disk reads, ...).
class Counter {
 public:
  explicit Counter(std::string name = {}) : name_(std::move(name)) {}
  void inc(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::uint64_t value_ = 0;
};

}  // namespace now::sim
