// Deterministic random number generation for the simulator.
//
// PCG32 (O'Neill 2014) gives high-quality 32-bit output from 64-bit state
// with a selectable stream, so each simulated component can own an
// independent, reproducible stream derived from the run seed.
#pragma once

#include <cstdint>
#include <vector>

namespace now::sim {

/// PCG-XSH-RR 64/32 generator.  Cheap, statistically strong, reproducible.
class Pcg32 {
 public:
  /// Seeds the generator.  Distinct `stream` values give independent
  /// sequences even with the same `seed`.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Next uniformly distributed 32-bit value.
  std::uint32_t next_u32();

  /// Uniform integer in [0, bound) without modulo bias.  bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Bounded Pareto sample: heavy-tailed, shape `alpha`, support [lo, hi].
  /// Used for idle-period lengths and file sizes.
  double pareto(double alpha, double lo, double hi);

  /// Standard normal via Box-Muller (one value per call; no caching so that
  /// the stream position is predictable).
  double normal(double mean, double stddev);

  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index vector, in place.
  void shuffle(std::vector<std::uint32_t>& v);

  // std::uniform_random_bit_generator interface so the generator can drive
  // <random> adaptors if ever needed.
  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  result_type operator()() { return next_u32(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Zipf(1..n, s) sampler using precomputed cumulative weights.
/// Models file-popularity skew in the synthetic traces: a handful of shared
/// executables and font files absorb most read traffic, as in the Berkeley
/// trace behind Table 3.
class ZipfSampler {
 public:
  /// `n` ranks, exponent `s` (s = 0 is uniform; larger s is more skewed).
  ZipfSampler(std::uint32_t n, double s);

  /// Draws a rank in [0, n).
  std::uint32_t sample(Pcg32& rng) const;

  std::uint32_t size() const { return static_cast<std::uint32_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace now::sim
