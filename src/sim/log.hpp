// Minimal structured logging stamped with simulated time.
//
// Logging defaults to Warn so experiments stay quiet; tests and examples can
// lower the threshold to trace protocol behaviour.  Two ways in:
//
//  * Runtime filter: the NOW_LOG environment variable, parsed before the
//    first line is considered.  Grammar: a comma-separated list of either a
//    bare level (the global threshold) or component=level overrides, e.g.
//        NOW_LOG=debug
//        NOW_LOG=warn,net=trace,xfs=debug
//    Levels: trace, debug, info, warn, error, off.
//  * Pluggable sink: every emitted line goes through one process-wide sink
//    (default: stderr).  now::obs installs a sink that mirrors lines into
//    the trace buffer as instant events (obs::mirror_logs_to_trace), which
//    is how log output lands on the Perfetto timeline next to the spans.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace now::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Per-component threshold override (takes precedence over the global one).
void set_module_log_level(const std::string& component, LogLevel level);
void clear_module_log_levels();

/// Effective threshold for `component`: its override, else the global level.
LogLevel log_threshold(std::string_view component);
bool log_enabled(LogLevel level, std::string_view component);

/// Re-reads NOW_LOG.  Called automatically (once) before the first filter
/// query; call explicitly after changing the environment mid-process.
void init_log_from_env();

/// Receives every line that passes the filter.
using LogSink = std::function<void(LogLevel, SimTime at,
                                   const std::string& component,
                                   const std::string& message)>;

/// Installs `sink` as the process-wide destination; a null sink restores the
/// default stderr printer.
void set_log_sink(LogSink sink);

/// Formats one line "[  12.345ms] LEVEL component: message" (what the
/// default sink prints and custom sinks may reuse).
std::string format_log_line(LogLevel level, SimTime at,
                            const std::string& component,
                            const std::string& message);

/// Emits one line through the installed sink.  Does not re-check the filter.
void log_line(LogLevel level, SimTime at, const std::string& component,
              const std::string& message);

/// Convenience builder: LOG_AT(engine.now(), "xfs") << "took over manager";
class LogStream {
 public:
  LogStream(LogLevel level, SimTime at, std::string component)
      : level_(level), at_(at), component_(std::move(component)),
        enabled_(log_enabled(level_, component_)) {}
  ~LogStream() {
    if (enabled_) log_line(level_, at_, component_, os_.str());
  }
  template <typename T>
  LogStream& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  SimTime at_;
  std::string component_;
  bool enabled_;
  std::ostringstream os_;
};

}  // namespace now::sim
