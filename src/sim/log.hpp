// Minimal structured logging stamped with simulated time.
//
// Logging defaults to Warn so experiments stay quiet; tests and examples can
// lower the threshold to trace protocol behaviour.
#pragma once

#include <sstream>
#include <string>

#include "sim/time.hpp"

namespace now::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line: "[  12.345ms] component: message" to stderr.
void log_line(LogLevel level, SimTime at, const std::string& component,
              const std::string& message);

/// Convenience builder: LOG_AT(engine.now(), "xfs") << "took over manager";
class LogStream {
 public:
  LogStream(LogLevel level, SimTime at, std::string component)
      : level_(level), at_(at), component_(std::move(component)) {}
  ~LogStream() {
    if (level_ >= log_level()) log_line(level_, at_, component_, os_.str());
  }
  template <typename T>
  LogStream& operator<<(const T& v) {
    if (level_ >= log_level()) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  SimTime at_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace now::sim
