// Minimal structured logging stamped with simulated time.
//
// Logging defaults to Warn so experiments stay quiet; tests and examples can
// lower the threshold to trace protocol behaviour.  Two ways in:
//
//  * Runtime filter: the NOW_LOG environment variable, parsed before the
//    first line is considered.  Grammar: a comma-separated list of either a
//    bare level (the global threshold) or component=level overrides, e.g.
//        NOW_LOG=debug
//        NOW_LOG=warn,net=trace,xfs=debug
//    Levels: trace, debug, info, warn, error, off.
//  * Pluggable sink: every emitted line goes through the active sink
//    (default: stderr).  now::obs installs a sink that mirrors lines into
//    the trace buffer as instant events (obs::mirror_logs_to_trace), which
//    is how log output lands on the Perfetto timeline next to the spans.
//
// Threading model: the threshold, per-component overrides, and sink live in
// a LogConfig.  There is one process-default LogConfig, and each thread may
// install its own override (set_thread_log_config) — which is how
// now::exp runs concurrent simulations whose logs neither interleave nor
// race: every worker gets a private LogConfig snapshotted from the process
// default.  All accessors below act on the calling thread's *active*
// config (its override if installed, else the process default).  The
// process default itself is not locked: mutate it only from the main
// thread while no worker threads are logging (NOW_LOG parsing is guarded
// and may race-freely happen on any thread).
#pragma once

#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace now::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Receives every line that passes the filter.
using LogSink = std::function<void(LogLevel, SimTime at,
                                   const std::string& component,
                                   const std::string& message)>;

/// One complete logging configuration: global threshold, per-component
/// overrides, and the sink (null sink = the default stderr printer).
struct LogConfig {
  LogLevel level = LogLevel::kWarn;
  std::map<std::string, LogLevel, std::less<>> module_levels;
  LogSink sink;
};

/// Copy of the process-default config (NOW_LOG applied).  The starting
/// point for a per-thread override.
LogConfig snapshot_log_config();

/// Installs `cfg` as this thread's active config and returns the previous
/// override (nullptr if the thread was on the process default).  Passing
/// nullptr reverts to the process default.  The caller keeps ownership:
/// `cfg` must outlive the installation (exp::ScopedRunContext pairs the
/// install/restore with the run's lifetime).
LogConfig* set_thread_log_config(LogConfig* cfg);

/// This thread's installed override, or nullptr when on the process default.
LogConfig* thread_log_config();

/// Global log threshold of the active config; messages below it are
/// discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Per-component threshold override (takes precedence over the global one).
void set_module_log_level(const std::string& component, LogLevel level);
void clear_module_log_levels();

/// Effective threshold for `component`: its override, else the global level.
LogLevel log_threshold(std::string_view component);
bool log_enabled(LogLevel level, std::string_view component);

/// Re-reads NOW_LOG into the process default.  Called automatically (once)
/// before the first filter query; call explicitly after changing the
/// environment mid-process.
void init_log_from_env();

/// Installs `sink` as the active config's destination; a null sink restores
/// the default stderr printer.
void set_log_sink(LogSink sink);

/// Formats one line "[  12.345ms] LEVEL component: message" (what the
/// default sink prints and custom sinks may reuse).
std::string format_log_line(LogLevel level, SimTime at,
                            const std::string& component,
                            const std::string& message);

/// Emits one line through the active sink.  Does not re-check the filter.
void log_line(LogLevel level, SimTime at, const std::string& component,
              const std::string& message);

/// Convenience builder: LOG_AT(engine.now(), "xfs") << "took over manager";
class LogStream {
 public:
  LogStream(LogLevel level, SimTime at, std::string component)
      : level_(level), at_(at), component_(std::move(component)),
        enabled_(log_enabled(level_, component_)) {}
  ~LogStream() {
    if (enabled_) log_line(level_, at_, component_, os_.str());
  }
  template <typename T>
  LogStream& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  SimTime at_;
  std::string component_;
  bool enabled_;
  std::ostringstream os_;
};

}  // namespace now::sim
