// Conservative parallel discrete-event execution of ONE simulation.
//
// The serial Engine runs a whole cluster on one thread.  ParallelEngine
// partitions the cluster's nodes across P worker lanes — each lane is a
// full slab Engine (the pool/heap machinery of DESIGN.md §"Engine
// internals", instantiated per partition) — plus one *global* lane for
// cluster-level machinery (fault plans, drivers, anything scheduled on the
// Cluster's own engine).  Execution alternates between:
//
//  * Parallel epochs.  All lanes concurrently dispatch their own events
//    inside a window [T, T + W), where the lookahead W is bounded by the
//    fabric's one-way latency L: a packet handed to the wire at t cannot
//    take effect at its destination before t + L >= T + W, so every
//    cross-lane interaction generated inside an epoch lands strictly
//    beyond the barrier and intra-epoch execution is race-free by
//    construction (the hornet/DARSIM quantum discipline).
//  * Barriers.  Cross-lane messages (ExecDomain::post) accumulated during
//    the epoch are drained into their destination lanes in the
//    deterministic merge order (order_time, src_node, dst_node,
//    per-mailbox seq) — a key independent of the thread count, so results
//    are reproducible at any P >= 2.
//  * Exclusive global events.  Whenever the global lane holds the next
//    event, every partition first advances to its timestamp, then the
//    event runs alone with exclusive access to all state — a fault
//    injection can crash a node in any partition exactly as it would
//    serially.
//
// relaxed_sync > 1 widens epochs to W * relaxed_sync (DARSIM's speed knob):
// fewer barriers, but a cross-lane message can now arrive "late" — after
// the destination clock passed its timestamp — and is clamped to the
// present, skewing delivery times.  Accuracy and thread-count determinism
// caveats are documented in DESIGN.md §12; strict mode (1.0) has neither.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/exec_domain.hpp"

namespace now::sim {

struct ParallelConfig {
  /// Partition lanes (worker threads).  Must be >= 1; at 1 the runner is a
  /// plain serial loop over one lane (callers normally skip ParallelEngine
  /// entirely at 1 thread and use the Engine directly).
  unsigned threads = 2;
  /// Number of node ids to partition (block assignment: node n lives on
  /// lane n * threads / nodes).
  std::uint32_t nodes = 0;
  /// Partition-boundary alignment: lanes are assigned in blocks of `align`
  /// consecutive node ids, so a block never spans two lanes.  Hierarchical
  /// fabrics pass their rack size here — every rack's nodes (and so every
  /// rack-local interaction) stay on one lane, and only cross-rack traffic
  /// crosses lanes.  1 (the default) is the PR-5 per-node block layout.
  /// Purely a placement hint: results are lane-layout-independent either
  /// way (the merge key never mentions a lane).
  std::uint32_t align = 1;
  /// Conservative lookahead window W.  Must be > 0 and no larger than the
  /// minimum cross-node interaction latency (the fabric's one-way latency).
  Duration lookahead = 0;
  /// Epoch width multiplier >= 1.0.  1.0 = strict conservative execution.
  double relaxed_sync = 1.0;
  /// Run once on each worker thread before it executes events.  The sim
  /// layer knows nothing about observability; the Cluster passes a hook
  /// installing the run's thread-local metrics/tracer/log bindings here, so
  /// instrumentation inside partition events resolves to the same instances
  /// as on the driving thread.
  std::function<void()> worker_init;
};

class ParallelEngine final : public ExecDomain {
 public:
  /// `global` is the caller-owned global lane (the Cluster's own engine);
  /// partition lanes are created here.
  ParallelEngine(Engine& global, ParallelConfig cfg);
  ~ParallelEngine() override;
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  // --- ExecDomain -------------------------------------------------------
  unsigned lanes() const override { return static_cast<unsigned>(parts_.size()); }
  Engine& engine_for(std::uint32_t node) override {
    return *parts_[lane_of(node)];
  }
  bool same_lane(std::uint32_t a, std::uint32_t b) const override {
    return lane_of(a) == lane_of(b);
  }
  void post(std::uint32_t src_node, std::uint32_t dst_node, SimTime order_time,
            InlinedCallback fn) override;

  Engine& global_engine() { return global_; }
  /// Block assignment over alignment groups: group g (= node / align) of
  /// `groups_` total lands on lane g * lanes / groups.  align = 1 reduces
  /// to the original per-node block layout.
  unsigned lane_of(std::uint32_t node) const override {
    const std::uint64_t group = node / cfg_.align;
    return static_cast<unsigned>((group * parts_.size()) / groups_);
  }

  /// Runs until every lane (partitions + global) drains.
  std::uint64_t run();
  /// Runs until simulated time exceeds `deadline` (events at exactly
  /// `deadline` still run) or everything drains, then advances every
  /// lane's clock to `deadline` — mirroring Engine::run_until.
  std::uint64_t run_until(SimTime deadline);

  /// Epoch barriers executed so far (observability for tests/benches).
  std::uint64_t epochs() const { return epochs_; }
  /// Cross-lane messages merged so far.
  std::uint64_t messages_posted() const { return posted_; }

 private:
  struct Msg {
    SimTime time = 0;
    std::uint32_t src_node = 0;
    std::uint32_t dst_node = 0;
    std::uint32_t seq = 0;
    InlinedCallback fn;
  };
  // One mailbox per (source lane, destination lane): the source lane is its
  // only writer during an epoch, so posting is lock-free; the barrier (which
  // has exclusive access) drains all P^2 of them.  Posts from the exclusive
  // global context use the source *node*'s mailbox so the merge key stays
  // thread-count independent.
  struct Mailbox {
    std::vector<Msg> msgs;
    std::uint32_t next_seq = 0;
  };

  std::uint64_t drive(SimTime deadline, bool bounded);
  void drain_mailboxes();
  void run_epoch(SimTime bound);
  void advance_parts_to(SimTime t);
  void worker_main(unsigned lane);

  Engine& global_;
  ParallelConfig cfg_;
  std::uint64_t groups_ = 1;  // ceil(nodes / align), the lane-block count
  Duration window_ = 1;
  std::vector<std::unique_ptr<Engine>> parts_;
  std::vector<Mailbox> mail_;  // indexed [src_lane * P + dst_lane]
  std::vector<Msg> merge_buf_;

  // Barrier-synchronised worker pool: lane 0 runs on the driving thread,
  // lanes 1..P-1 on parked workers woken per epoch by generation number.
  std::vector<std::thread> workers_;
  std::mutex m_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  SimTime epoch_bound_ = 0;
  unsigned running_ = 0;
  bool shutdown_ = false;
  std::vector<std::uint64_t> lane_dispatched_;

  std::uint64_t epochs_ = 0;
  std::uint64_t posted_ = 0;
};

}  // namespace now::sim
