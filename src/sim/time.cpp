#include "sim/time.hpp"

#include <cstdio>

namespace now::sim {

std::string format_duration(Duration d) {
  char buf[64];
  const double ad = d < 0 ? -static_cast<double>(d) : static_cast<double>(d);
  if (ad < static_cast<double>(kMicrosecond)) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(d));
  } else if (ad < static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof buf, "%.2f us", to_us(d));
  } else if (ad < static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof buf, "%.2f ms", to_ms(d));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", to_sec(d));
  }
  return buf;
}

}  // namespace now::sim
