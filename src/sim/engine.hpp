// The discrete-event simulation engine at the bottom of every experiment.
//
// The engine owns a priority queue of (time, priority, sequence, closure)
// events.  Ties in time break on priority, then on insertion sequence, so a
// run is fully deterministic.  All simulated components — networks, disks,
// CPU schedulers, daemons — are driven by callbacks scheduled here.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

#include "sim/time.hpp"

namespace now::sim {

/// Handle used to cancel a pending event.  Cancelling an already-fired or
/// already-cancelled event is a harmless no-op.
using EventId = std::uint64_t;

/// The event-driven simulator core.
///
/// Typical use:
///   Engine eng;
///   eng.schedule_in(10 * kMicrosecond, [&]{ ... });
///   eng.run();
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now).  Events scheduled
  /// for the past are clamped to `now`.
  EventId schedule_at(SimTime at, std::function<void()> fn, int priority = 0);

  /// Schedules `fn` to run `delay` after the current time.
  EventId schedule_in(Duration delay, std::function<void()> fn,
                      int priority = 0);

  /// Cancels a pending event.  Returns true if it was still pending.
  bool cancel(EventId id);

  /// Runs until the queue is empty or `stop()` is called.
  /// Returns the number of events dispatched.
  std::uint64_t run();

  /// Runs until simulated time exceeds `deadline` (events at exactly
  /// `deadline` still run) or the queue drains.
  std::uint64_t run_until(SimTime deadline);

  /// Dispatches at most one event.  Returns false if the queue was empty.
  bool step();

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  /// Number of events waiting in the queue (cancelled events may still be
  /// counted until they reach the head).
  std::size_t pending() const { return queue_.size() - cancelled_count_; }

  /// Total events dispatched over the engine's lifetime.
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Event {
    SimTime time;
    int priority;
    std::uint64_t seq;
    EventId id;
    // Ordering for a max-heap (std::priority_queue): the "greatest" element
    // must be the earliest event, so compare reversed.
    bool operator<(const Event& o) const {
      if (time != o.time) return time > o.time;
      if (priority != o.priority) return priority > o.priority;
      return seq > o.seq;
    }
  };

  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t cancelled_count_ = 0;
  std::priority_queue<Event> queue_;
  // id -> closure; erased on dispatch or cancel.  Keeping closures out of the
  // heap makes cancellation O(1) without tombstone closures.
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace now::sim
