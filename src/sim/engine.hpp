// The discrete-event simulation engine at the bottom of every experiment.
//
// The engine owns a priority queue of (time, priority, sequence, closure)
// events.  Ties in time break on priority, then on insertion sequence, so a
// run is fully deterministic.  All simulated components — networks, disks,
// CPU schedulers, daemons — are driven by callbacks scheduled here.
//
// Hot-path design (see DESIGN.md, "Engine internals"):
//   * Closures live in a slab of fixed 64-byte pool slots recycled through a
//     free list; captures up to InlinedCallback::kInlineSize bytes never touch
//     the heap.  The slab grows in 512-slot chunks whose addresses are stable,
//     so growth never relocates a live closure and dispatch can invoke the
//     closure in place — a scheduled callback is never moved at all.
//   * An EventId packs `slot index : 32 | sequence : 32`.  cancel() clears the
//     slot's sequence tag — O(1), no hash map — and the stale heap entry is
//     discarded lazily when it reaches the top (or in a bulk compaction once
//     stale entries outnumber live ones).
//   * The pending queue is two-tier.  Newly scheduled events append to an
//     unsorted `future` buffer; when the current sorted run drains, the
//     buffer is filtered (shedding cancelled entries in bulk) and sorted
//     into the next run, so steady-state scheduling is a bounds check and a
//     16-byte store, and dispatch is a pointer bump — O(log n) sift work is
//     replaced by O(n log n)/n amortized sorting, which is ~3x cheaper in
//     practice because it is sequential.  Events that must fire before the
//     current run's tail (same-instant cascades, short timers) go to a
//     4-ary implicit heap of the same 16-byte entries, laid out so every
//     4-child group is one 64-byte cache line; dispatch takes the exact
//     (time, priority, seq) minimum of the run head and the heap top.
//
// Threading model: an Engine — and everything hanging off it (components,
// their RNGs, the run's metrics registry and tracer) — is *engine-confined*:
// one simulation, one thread, no locks.  Concurrent simulations are N
// engines on N threads sharing nothing; now::exp::run_sweep builds exactly
// that, giving each run thread-local observability/log state so results are
// invariant under the thread count (DESIGN.md §10).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "sim/block_cache.hpp"
#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace now::sim {

/// Handle used to cancel a pending event.  Cancelling an already-fired or
/// already-cancelled event is a harmless no-op.  0 is never a valid id, so
/// callers can use it as a "no event" sentinel.
using EventId = std::uint64_t;

/// The event-driven simulator core.
///
/// Typical use:
///   Engine eng;
///   eng.schedule_in(10 * kMicrosecond, [&]{ ... });
///   eng.run();
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now).  Events scheduled
  /// for the past are clamped to `now`.  Accepts any `void()` callable;
  /// captures up to InlinedCallback::kInlineSize bytes are stored in the
  /// event pool without any heap allocation.
  template <typename F>
  EventId schedule_at(SimTime at, F&& fn, int priority = 0) {
    if (at < now_) at = now_;
    const std::uint32_t idx = alloc_slot();
    Slot& s = slot(idx);
    const std::uint32_t seq = next_seq();
    s.seq = seq;
    s.fn.emplace(std::forward<F>(fn));
    enqueue_entry(HeapEntry{at, pack_key(priority, seq, idx)});
    ++live_count_;
    return make_id(idx, seq);
  }

  /// Schedules `fn` to run `delay` after the current time.
  template <typename F>
  EventId schedule_in(Duration delay, F&& fn, int priority = 0) {
    assert(delay >= 0);
    return schedule_at(now_ + delay, std::forward<F>(fn), priority);
  }

  /// Cancels a pending event.  Returns true if it was still pending.
  /// O(1): clears the slot's sequence tag so the heap entry dies lazily.
  bool cancel(EventId id) {
    const std::uint32_t idx = slot_index(id);
    if (idx >= num_slots_) return false;
    Slot& s = slot(idx);
    if (s.seq != seq_of(id)) return false;
    s.seq = kDeadSeq;
    s.fn.reset();
    free_slot(s, idx);
    --live_count_;
    note_stale_entry();
    return true;
  }

  /// Moves a pending event to fire at `at` instead, reusing its pool slot and
  /// closure — the zero-allocation replacement for cancel() + schedule_*()
  /// churn on periodic timers (CPU slices, retransmit timers, tick loops).
  /// Returns the event's new id, or 0 if `id` had already fired or been
  /// cancelled (the closure is gone; the caller must schedule afresh).
  EventId reschedule(EventId id, SimTime at, int priority = 0) {
    const std::uint32_t idx = slot_index(id);
    if (idx >= num_slots_) return 0;
    Slot& s = slot(idx);
    if (s.seq != seq_of(id)) return 0;
    if (at < now_) at = now_;
    // Retag the slot under a fresh sequence number; the old heap entry goes
    // stale and the slot (with its closure) stays allocated under the new id.
    const std::uint32_t seq = next_seq();
    s.seq = seq;
    note_stale_entry();
    enqueue_entry(HeapEntry{at, pack_key(priority, seq, idx)});
    return make_id(idx, seq);
  }

  /// Convenience: `delay` from now.  Same contract as reschedule().
  EventId reschedule_in(EventId id, Duration delay, int priority = 0) {
    assert(delay >= 0);
    return reschedule(id, now_ + delay, priority);
  }

  /// Pre-sizes the event pool and heap for `events` concurrently-pending
  /// events, so the steady state performs no allocations at all.
  void reserve(std::size_t events) {
    future_.reserve(events);
    run_.reserve(events);
    while (static_cast<std::size_t>(num_slots_) < events) add_chunk();
  }

  /// Runs until the queue is empty or `stop()` is called.
  /// Returns the number of events dispatched.
  std::uint64_t run();

  /// Runs until simulated time exceeds `deadline` (events at exactly
  /// `deadline` still run) or the queue drains.  If the run completes, the
  /// clock is advanced to `deadline`; if stop() halted it, the clock stays at
  /// the last dispatched event.
  std::uint64_t run_until(SimTime deadline);

  /// Dispatches every event with time strictly before `bound`, leaving the
  /// clock at the last dispatched event (never clamped forward) — the
  /// epoch-execution primitive of sim::ParallelEngine: a partition lane runs
  /// [epoch_start, epoch_end) and must not consume events at or past the
  /// barrier.
  std::uint64_t run_while_before(SimTime bound);

  /// Timestamp of the earliest pending live event, without dispatching it.
  /// Returns false when no live event is pending.
  bool peek_next(SimTime* at);

  /// Advances the clock to `t` without dispatching (no-op if t <= now).
  /// Only legal when no pending event precedes `t`; the partitioned runner
  /// uses it to line lanes up on a barrier instant.
  void advance_to(SimTime t) {
    assert(!([this, t] {
      SimTime next;
      return peek_next(&next) && next < t;
    }()) && "advance_to would skip pending events");
    if (t > now_) now_ = t;
  }

  /// Dispatches at most one event.  Returns false if the queue was empty.
  bool step();

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  /// Number of live (not cancelled, not yet fired) pending events.
  std::size_t pending() const { return live_count_; }

  /// Total events dispatched over the engine's lifetime.
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  // A pool slot: closure + the sequence tag of the event occupying it
  // (kDeadSeq when free or invalidated).  Exactly one 64-byte cache line, so
  // dispatch touches a single line per event.
  struct Slot {
    InlinedCallback fn;
    std::uint32_t seq = kDeadSeq;
    std::uint32_t next_free = kNoFreeSlot;
  };

  // Plain-data heap entry.  `key` packs (priority+128):8 | sequence:32 |
  // slot index:24, so one u64 compare resolves the priority-then-insertion
  // tie-break (index bits sit below the unique sequence and never decide).
  struct HeapEntry {
    SimTime time;
    std::uint64_t key;
  };

  // The slab grows one chunk at a time; chunk addresses never change, so a
  // callback being invoked in place survives any scheduling it performs.
  static constexpr std::uint32_t kChunkShift = 9;  // 512 slots = 32 KiB
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;
  static constexpr std::uint32_t kMaxSlots = 1u << 24;  // index field width

  static constexpr std::uint32_t kNoFreeSlot = 0xFFFFFFFFu;
  static constexpr std::uint32_t kDeadSeq = 0;  // never issued to an event
  static constexpr int kPriorityBias = 128;

  static std::uint32_t slot_index(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static std::uint32_t seq_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static EventId make_id(std::uint32_t idx, std::uint32_t seq) {
    return (static_cast<EventId>(idx) << 32) | seq;
  }
  static std::uint32_t key_slot(std::uint64_t key) {
    return static_cast<std::uint32_t>(key & 0xFFFFFFu);
  }
  static std::uint32_t key_seq(std::uint64_t key) {
    return static_cast<std::uint32_t>(key >> 24);
  }

  static std::uint64_t pack_key(int priority, std::uint32_t seq,
                                std::uint32_t idx) {
    assert(priority >= -kPriorityBias && priority < kPriorityBias &&
           "event priority outside the packed 8-bit range [-128, 127]");
    return (static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(priority + kPriorityBias))
            << 56) |
           (static_cast<std::uint64_t>(seq) << 24) | idx;
  }

  /// Sequence numbers order same-time same-priority events and tag slots
  /// against stale ids.  32 bits wrap after 4.3G schedules; a tie-break or a
  /// stale-id collision then needs two co-pending twins a full wrap apart —
  /// see DESIGN.md for why that is acceptable.
  std::uint32_t next_seq() {
    if (++seq_counter_ == kDeadSeq) ++seq_counter_;
    return seq_counter_;
  }

  Slot& slot(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }
  const Slot& slot(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }

  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  /// Routes a new entry to the right tier: anything at or past the current
  /// run's tail is only dispatchable after the run drains, so it just
  /// appends to the unsorted future buffer; anything earlier (same-instant
  /// cascades, short timers racing the run) must be merged now and goes to
  /// the 4-ary heap.
  void enqueue_entry(HeapEntry e) {
    if (run_pos_ < run_.size() && entry_less(e, run_.back())) {
      heap_push(e);
    } else {
      future_.push_back(e);
    }
  }

  void add_chunk();

  std::uint32_t alloc_slot() {
    if (free_head_ == kNoFreeSlot) add_chunk();
    const std::uint32_t idx = free_head_;
    free_head_ = slot(idx).next_free;
    return idx;
  }

  void free_slot(Slot& s, std::uint32_t idx) {
    s.next_free = free_head_;
    free_head_ = idx;
  }

  // ---- 4-ary implicit min-heap, cache-line aligned ----------------------
  //
  // Physical layout: the root lives at index 0, cells 1..3 are padding, and
  // the logical entry k >= 1 lives at physical index k + 3.  Children of the
  // root are cells 4..7; children of cell i >= 4 are cells 4i-8 .. 4i-5.
  // Every 4-child group is therefore {4m .. 4m+3} — exactly one 64-byte
  // cache line of 16-byte entries (the storage is 64-byte aligned), so each
  // sift level costs a single line fill.  Entries are PODs, grown with
  // realloc-style doubling.

  static constexpr std::size_t kHeapAlign = 64;

  static std::size_t phys(std::size_t logical) {
    return logical == 0 ? 0 : logical + 3;
  }
  static std::size_t first_child(std::size_t i) {
    return i == 0 ? 4 : 4 * i - 8;
  }
  static std::size_t parent_of(std::size_t c) {
    return c < 8 ? 0 : (c + 8) / 4;
  }

  void heap_reserve(std::size_t entries) {
    const std::size_t need = phys(entries) + 1;
    if (need <= heap_cap_) return;
    std::size_t cap = heap_cap_ == 0 ? 256 : heap_cap_;
    while (cap < need) cap *= 2;
    auto* grown =
        static_cast<HeapEntry*>(BlockCache::allocate(cap * sizeof(HeapEntry)));
    if (heap_size_ != 0) {
      std::memcpy(grown, heap_, (phys(heap_size_ - 1) + 1) * sizeof(HeapEntry));
    }
    BlockCache::deallocate(heap_, heap_cap_ * sizeof(HeapEntry));
    heap_ = grown;
    heap_cap_ = cap;
  }

  void heap_push(HeapEntry e) {
    heap_reserve(heap_size_ + 1);
    std::size_t i = phys(heap_size_++);
    while (i != 0) {
      const std::size_t parent = parent_of(i);
      if (!entry_less(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Removes the minimum (heap_[0]).  Floyd's bottom-up deletion: walk the
  /// hole down along minimal children to a leaf, then sift the displaced
  /// last entry up from there.  On a drain the last entry is large, so the
  /// upward pass almost always stops immediately — one compare per level
  /// instead of four.
  void heap_pop() {
    assert(heap_size_ > 0);
    const HeapEntry last = heap_[phys(heap_size_ - 1)];
    if (--heap_size_ == 0) return;
    const std::size_t end = phys(heap_size_ - 1) + 1;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = first_child(i);
      if (first >= end) break;
      std::size_t best = first;
      const std::size_t stop = first + 4 < end ? first + 4 : end;
      for (std::size_t c = first + 1; c < stop; ++c) {
        if (entry_less(heap_[c], heap_[best])) best = c;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    while (i != 0) {
      const std::size_t parent = parent_of(i);
      if (!entry_less(last, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = last;
  }

  /// True if the heap entry refers to an event that was cancelled,
  /// rescheduled, or dispatched after the entry was pushed.
  bool entry_stale(const HeapEntry& e) const {
    return slot(key_slot(e.key)).seq != key_seq(e.key);
  }

  /// Drops cancelled/rescheduled entries off the top of the heap.  After
  /// this, the heap is either empty or has a live event at heap_[0].
  void skim_stale() {
    while (heap_size_ != 0 && entry_stale(heap_[0])) {
      heap_pop();
      --stale_count_;
    }
  }

  std::size_t queued_entries() const {
    return heap_size_ + (run_.size() - run_pos_) + future_.size();
  }

  void note_stale_entry() {
    // When stale entries outnumber live ones, one O(n) compaction is cheaper
    // than skipping each tombstone individually at dispatch.
    if (++stale_count_ > queued_entries() / 2 && queued_entries() >= 64) {
      compact();
    }
  }

  // Which tier holds the next event to dispatch (see engine.cpp).
  enum class Source { kNone, kRun, kHeap };
  Source next_source();
  void dispatch_from(Source src);
  void build_run();
  void compact();

  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint32_t seq_counter_ = kDeadSeq;
  std::uint64_t dispatched_ = 0;
  std::size_t live_count_ = 0;
  std::size_t stale_count_ = 0;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::uint32_t num_slots_ = 0;
  HeapEntry* heap_ = nullptr;
  std::size_t heap_size_ = 0;
  std::size_t heap_cap_ = 0;
  // Current sorted run (drained by run_pos_) and the unsorted buffer that
  // becomes the next run.  See enqueue_entry() for the routing invariant.
  // Both route their buffers through BlockCache: an engine's queue storage
  // is reclaimed by the next engine instead of being trimmed back to the
  // kernel and soft-faulted in again.
  using EntryVec = std::vector<HeapEntry, BlockCacheAllocator<HeapEntry>>;
  EntryVec run_;
  std::size_t run_pos_ = 0;
  EntryVec future_;
  // Raw 64-byte-aligned chunk storage, managed manually so an engine whose
  // events have all fired (live_count_ == 0, every slot's closure already
  // destroyed) can be torn down without scanning the slab.
  std::vector<Slot*> chunks_;
};

}  // namespace now::sim
