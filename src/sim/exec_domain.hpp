// The execution domain a simulation runs in: which event lane owns which
// node, and how cross-lane interactions travel between lanes.
//
// The serial engine needs none of this — one Engine, one lane.  When a
// Cluster runs partitioned (sim::ParallelEngine), every component that
// schedules work "at node N" resolves the owning lane through this
// interface, and every interaction that crosses lanes (packet delivery on
// the switched fabric) becomes a timestamped message handed to post(),
// applied at the next epoch barrier in a deterministic merge order
// (time, source node, destination node, per-mailbox sequence).  See
// DESIGN.md §12.
#pragma once

#include <cstdint>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace now::sim {

class Engine;

class ExecDomain {
 public:
  virtual ~ExecDomain() = default;

  /// Number of partition lanes (excluding the global lane).
  virtual unsigned lanes() const = 0;

  /// The event lane that owns `node`: all of the node's timers, CPU/disk
  /// events, and protocol handlers run here.
  virtual Engine& engine_for(std::uint32_t node) = 0;

  /// Index of the lane that owns `node`, in [0, lanes()).  Drivers that
  /// keep per-lane statistic shards (merged after the run) index them with
  /// this, so hot-path recording never takes a lock.
  virtual unsigned lane_of(std::uint32_t node) const = 0;

  /// True if `a` and `b` live on the same lane (their interactions need no
  /// cross-lane message).
  virtual bool same_lane(std::uint32_t a, std::uint32_t b) const = 0;

  /// Hands `fn` to the lane owning `dst_node`.  It runs at the next epoch
  /// barrier, with exclusive access to the destination lane's state, after
  /// every message with a smaller (order_time, src_node, dst_node,
  /// sequence) key —
  /// the deterministic merge rule that makes results independent of the
  /// thread count.  `order_time` must be >= the end of the current epoch
  /// (guaranteed when it is a wire-send time plus the fabric lookahead).
  virtual void post(std::uint32_t src_node, std::uint32_t dst_node,
                    SimTime order_time, InlinedCallback fn) = 0;
};

}  // namespace now::sim
