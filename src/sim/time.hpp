// Simulated-time representation for the NOW simulator.
//
// All simulated clocks are integral nanosecond counts so that event ordering
// is exact and runs are bit-reproducible.  Helpers convert to and from the
// units the paper quotes (microseconds for communication, milliseconds for
// disk and file-system response times, seconds for whole-application runs).
#pragma once

#include <cstdint>
#include <string>

namespace now::sim {

/// Simulated time in nanoseconds since the start of the run.
using SimTime = std::int64_t;

/// A span of simulated time, also in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;

/// Builds a duration from a (possibly fractional) count of microseconds.
constexpr Duration from_us(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}

/// Builds a duration from a (possibly fractional) count of milliseconds.
constexpr Duration from_ms(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

/// Builds a duration from a (possibly fractional) count of seconds.
constexpr Duration from_sec(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Duration expressed in microseconds (the paper's unit for overhead/latency).
constexpr double to_us(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Duration expressed in milliseconds (the paper's unit for response time).
constexpr double to_ms(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Duration expressed in seconds (the paper's unit for application runtime).
constexpr double to_sec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Human-readable rendering with an auto-selected unit ("12.3 us", "4.0 s").
std::string format_duration(Duration d);

namespace literals {

constexpr Duration operator""_ns(unsigned long long v) {
  return static_cast<Duration>(v);
}
constexpr Duration operator""_us(unsigned long long v) {
  return static_cast<Duration>(v) * kMicrosecond;
}
constexpr Duration operator""_ms(unsigned long long v) {
  return static_cast<Duration>(v) * kMillisecond;
}
constexpr Duration operator""_s(unsigned long long v) {
  return static_cast<Duration>(v) * kSecond;
}
constexpr Duration operator""_min(unsigned long long v) {
  return static_cast<Duration>(v) * kMinute;
}

}  // namespace literals

}  // namespace now::sim
