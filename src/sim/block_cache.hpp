// A thread-local recycling cache for the engine's large allocations.
//
// A simulation run allocates a handful of large, long-lived blocks — the
// event-pool slab chunks (32 KiB each) and the pending-queue buffers
// (doubling up to hundreds of KiB) — and frees them all at Engine teardown.
// Handing multi-hundred-KiB blocks back to glibc puts them at the top of the
// heap, where the allocator trims them back to the kernel; the next Engine
// then soft-faults every page back in, which costs more than all the actual
// event processing (measured ~14 ns/event on a 10k-event run, ~2x the whole
// schedule path).  Experiments that build one Engine per trial — parameter
// sweeps, benchmarks, test suites — pay it over and over.
//
// BlockCache keeps freed blocks on per-size free lists instead, in
// power-of-two buckets, capped at kMaxCachedBytes per thread.  Blocks are
// 64-byte aligned (the slab and the 4-ary heap both want cache-line
// alignment).  Small requests pass straight through to operator new: glibc
// handles them without trimming, and caching them would just fragment the
// buckets.
//
// The cache is thread_local, so no locking; everything still cached at
// thread exit is released then, so leak checkers stay quiet.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace now::sim {

class BlockCache {
 public:
  /// Requests below this go to operator new/delete uncached.
  static constexpr std::size_t kMinBlockBytes = 4096;
  /// Requests above this are aligned_alloc'd/freed directly, uncached.
  static constexpr std::size_t kMaxBlockBytes = std::size_t{64} << 20;
  /// Per-thread cap on memory retained in the buckets.
  static constexpr std::size_t kMaxCachedBytes = std::size_t{32} << 20;

  /// Returns a 64-byte-aligned block of at least `bytes` (for cacheable
  /// sizes, rounded up to the next power of two).  Throws std::bad_alloc.
  static void* allocate(std::size_t bytes) {
    if (bytes < kMinBlockBytes) return ::operator new(bytes);
    const std::size_t size = std::bit_ceil(bytes);
    if (size <= kMaxBlockBytes) {
      auto& bucket = impl().buckets[bucket_of(size)];
      if (!bucket.empty()) {
        void* p = bucket.back();
        bucket.pop_back();
        impl().cached_bytes -= size;
        return p;
      }
    }
    void* p = std::aligned_alloc(kAlign, size);
    if (p == nullptr) throw std::bad_alloc();
    return p;
  }

  /// Returns a block obtained from allocate(`bytes`).  Cacheable sizes are
  /// retained for reuse until the per-thread cap; the rest are freed.
  static void deallocate(void* p, std::size_t bytes) noexcept {
    if (p == nullptr) return;
    if (bytes < kMinBlockBytes) {
      ::operator delete(p);
      return;
    }
    const std::size_t size = std::bit_ceil(bytes);
    if (size <= kMaxBlockBytes) {
      Impl& c = impl();
      if (c.cached_bytes + size <= kMaxCachedBytes) {
        c.buckets[bucket_of(size)].push_back(p);
        c.cached_bytes += size;
        return;
      }
    }
    std::free(p);
  }

  /// Bytes currently retained by this thread's cache (test/introspection).
  static std::size_t cached_bytes() { return impl().cached_bytes; }

  /// Releases everything this thread's cache holds (test hook).
  static void trim() {
    Impl& c = impl();
    for (auto& bucket : c.buckets) {
      for (void* p : bucket) std::free(p);
      bucket.clear();
    }
    c.cached_bytes = 0;
  }

 private:
  static constexpr std::size_t kAlign = 64;
  static constexpr std::size_t kNumBuckets =
      std::bit_width(kMaxBlockBytes) - std::bit_width(kMinBlockBytes) + 1;

  static std::size_t bucket_of(std::size_t pow2_size) {
    return static_cast<std::size_t>(std::bit_width(pow2_size) -
                                    std::bit_width(kMinBlockBytes));
  }

  struct Impl {
    std::vector<void*> buckets[kNumBuckets];
    std::size_t cached_bytes = 0;
    ~Impl() {
      for (auto& bucket : buckets) {
        for (void* p : bucket) std::free(p);
      }
    }
  };

  static Impl& impl() {
    thread_local Impl cache;
    return cache;
  }
};

/// Minimal std allocator routing a container's buffer through BlockCache —
/// used by the engine's pending-event vectors so their doubling growth
/// recycles instead of churning the glibc heap.
template <typename T>
struct BlockCacheAllocator {
  using value_type = T;

  BlockCacheAllocator() = default;
  template <typename U>
  BlockCacheAllocator(const BlockCacheAllocator<U>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(BlockCache::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    BlockCache::deallocate(p, n * sizeof(T));
  }

  friend bool operator==(BlockCacheAllocator, BlockCacheAllocator) {
    return true;
  }
  friend bool operator!=(BlockCacheAllocator, BlockCacheAllocator) {
    return false;
  }
};

}  // namespace now::sim
