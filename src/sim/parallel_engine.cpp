#include "sim/parallel_engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace now::sim {

namespace {
constexpr SimTime kNever = std::numeric_limits<SimTime>::max();
}  // namespace

ParallelEngine::ParallelEngine(Engine& global, ParallelConfig cfg)
    : global_(global), cfg_(cfg) {
  assert(cfg_.threads >= 1);
  assert(cfg_.nodes >= 1);
  assert(cfg_.lookahead > 0 && "partitioned execution needs lookahead > 0");
  assert(cfg_.relaxed_sync >= 1.0);
  if (cfg_.align == 0) cfg_.align = 1;
  // Lanes are dealt whole alignment groups (racks); more lanes than groups
  // would leave the extras permanently idle.
  groups_ = (static_cast<std::uint64_t>(cfg_.nodes) + cfg_.align - 1) /
            cfg_.align;
  if (cfg_.threads > groups_) {
    cfg_.threads = static_cast<unsigned>(groups_);
  }
  if (cfg_.threads > cfg_.nodes) cfg_.threads = cfg_.nodes;
  window_ = std::max<Duration>(
      1, static_cast<Duration>(static_cast<double>(cfg_.lookahead) *
                               cfg_.relaxed_sync));
  parts_.reserve(cfg_.threads);
  for (unsigned i = 0; i < cfg_.threads; ++i) {
    parts_.push_back(std::make_unique<Engine>());
  }
  mail_.resize(static_cast<std::size_t>(cfg_.threads) * cfg_.threads);
  lane_dispatched_.assign(cfg_.threads, 0);
  workers_.reserve(cfg_.threads - 1);
  for (unsigned i = 1; i < cfg_.threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
    ++generation_;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ParallelEngine::post(std::uint32_t src_node, std::uint32_t dst_node,
                          SimTime order_time, InlinedCallback fn) {
  Mailbox& box =
      mail_[static_cast<std::size_t>(lane_of(src_node)) * parts_.size() +
            lane_of(dst_node)];
  Msg m;
  m.time = order_time;
  m.src_node = src_node;
  m.dst_node = dst_node;
  m.seq = box.next_seq++;
  m.fn = std::move(fn);
  box.msgs.push_back(std::move(m));
}

// Applies every posted message, globally sorted by (time, src_node,
// dst_node, seq).  Runs between epochs with exclusive access to all lanes;
// a message's closure touches destination-lane state directly and
// schedules follow-up events on the destination engine.  The sort key
// never mentions a lane id, so the merge order — and therefore every
// downstream busy-horizon and delivery time — is identical at any thread
// count.  dst_node is part of the key because seq counts per mailbox: two
// same-instant posts from one source to *different* destinations carry
// equal seqs, and without dst_node their order would fall to the sort's
// whim (and to the lane layout).
void ParallelEngine::drain_mailboxes() {
  merge_buf_.clear();
  for (Mailbox& box : mail_) {
    if (box.msgs.empty()) continue;
    posted_ += box.msgs.size();
    std::move(box.msgs.begin(), box.msgs.end(),
              std::back_inserter(merge_buf_));
    box.msgs.clear();
  }
  if (merge_buf_.empty()) return;
  std::sort(merge_buf_.begin(), merge_buf_.end(),
            [](const Msg& a, const Msg& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.src_node != b.src_node) return a.src_node < b.src_node;
              if (a.dst_node != b.dst_node) return a.dst_node < b.dst_node;
              return a.seq < b.seq;
            });
  for (Msg& m : merge_buf_) m.fn.invoke_and_reset();
  merge_buf_.clear();
}

void ParallelEngine::advance_parts_to(SimTime t) {
  for (auto& p : parts_) p->advance_to(t);
}

void ParallelEngine::run_epoch(SimTime bound) {
  ++epochs_;
  if (parts_.size() == 1) {
    lane_dispatched_[0] += parts_[0]->run_while_before(bound);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    epoch_bound_ = bound;
    running_ = static_cast<unsigned>(parts_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  lane_dispatched_[0] += parts_[0]->run_while_before(bound);
  std::unique_lock<std::mutex> lk(m_);
  if (--running_ != 0) {
    done_cv_.wait(lk, [this] { return running_ == 0; });
  } else {
    done_cv_.notify_all();
  }
}

void ParallelEngine::worker_main(unsigned lane) {
  if (cfg_.worker_init) cfg_.worker_init();
  std::uint64_t seen = 0;
  for (;;) {
    SimTime bound;
    {
      std::unique_lock<std::mutex> lk(m_);
      work_cv_.wait(lk, [&] { return generation_ != seen; });
      seen = generation_;
      if (shutdown_) return;
      bound = epoch_bound_;
    }
    const std::uint64_t n = parts_[lane]->run_while_before(bound);
    {
      std::lock_guard<std::mutex> lk(m_);
      lane_dispatched_[lane] += n;
      if (--running_ == 0) done_cv_.notify_all();
    }
  }
}

std::uint64_t ParallelEngine::drive(SimTime deadline, bool bounded) {
  std::uint64_t dispatched = 0;
  for (auto& n : lane_dispatched_) n = 0;
  std::uint64_t global_n = 0;
  for (;;) {
    drain_mailboxes();

    SimTime g = kNever;
    const bool has_g = global_.peek_next(&g);
    if (!has_g) g = kNever;
    SimTime m = kNever;
    for (auto& p : parts_) {
      SimTime t;
      if (p->peek_next(&t) && t < m) m = t;
    }
    const SimTime next = g < m ? g : m;
    if (next == kNever || (bounded && next > deadline)) break;

    if (g <= m) {
      // The global lane holds the next event: run exactly one, alone, with
      // every partition's clock lined up on its timestamp.  Global events
      // are total barriers — fault injections, cluster drivers — and may
      // touch any lane's state.  At a time tie (g == m) the global event
      // deliberately runs first: a fault at t takes effect before node
      // activity at t.
      advance_parts_to(g);
      if (global_.step()) ++global_n;
      continue;
    }

    // Parallel epoch [m, end): every lane dispatches its own events; no
    // cross-lane interaction can land inside the window (lookahead), so the
    // lanes share nothing until the next barrier.
    SimTime end = m + window_;
    if (end > g) end = g;
    if (bounded && deadline != kNever && end > deadline + 1) {
      end = deadline + 1;  // events at exactly `deadline` still run
    }
    run_epoch(end);
  }
  drain_mailboxes();  // relaxed mode can leave tail messages behind the bound
  if (bounded) {
    advance_parts_to(deadline);
    global_.advance_to(deadline);
  }
  for (const std::uint64_t n : lane_dispatched_) dispatched += n;
  return dispatched + global_n;
}

std::uint64_t ParallelEngine::run() { return drive(kNever, /*bounded=*/false); }

std::uint64_t ParallelEngine::run_until(SimTime deadline) {
  return drive(deadline, /*bounded=*/true);
}

}  // namespace now::sim
