#include "sim/log.hpp"

#include <cstdio>

namespace now::sim {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, SimTime at, const std::string& component,
              const std::string& message) {
  std::fprintf(stderr, "[%12.3fms] %-5s %s: %s\n", to_ms(at),
               level_name(level), component.c_str(), message.c_str());
}

}  // namespace now::sim
