#include "sim/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace now::sim {

namespace {
// The process-default config plus the once-guard for NOW_LOG parsing.
// Worker threads normally never touch this: now::exp installs a per-thread
// override before running simulation code, so the default is only read
// (and only mutated) from the main thread.  The env parse alone is
// guarded, because the first log call of a process may legally come from
// any thread.
struct ProcessLog {
  std::atomic<bool> parsed{false};
  std::mutex parse_mutex;
  LogConfig cfg;
};

ProcessLog& process_log() {
  static ProcessLog p;
  return p;
}

thread_local LogConfig* t_config = nullptr;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

bool parse_level(std::string_view s, LogLevel* out) {
  if (s == "trace") *out = LogLevel::kTrace;
  else if (s == "debug") *out = LogLevel::kDebug;
  else if (s == "info") *out = LogLevel::kInfo;
  else if (s == "warn" || s == "warning") *out = LogLevel::kWarn;
  else if (s == "error") *out = LogLevel::kError;
  else if (s == "off" || s == "none") *out = LogLevel::kOff;
  else return false;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

void parse_env_into(LogConfig& cfg) {
  const char* env = std::getenv("NOW_LOG");
  if (env == nullptr) return;
  std::string_view rest(env);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (item.empty()) continue;
    LogLevel lvl;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      if (parse_level(item, &lvl)) cfg.level = lvl;
      else std::fprintf(stderr, "NOW_LOG: unknown level '%.*s'\n",
                        static_cast<int>(item.size()), item.data());
    } else {
      const std::string_view component = trim(item.substr(0, eq));
      if (parse_level(trim(item.substr(eq + 1)), &lvl)) {
        cfg.module_levels[std::string(component)] = lvl;
      } else {
        std::fprintf(stderr, "NOW_LOG: bad entry '%.*s'\n",
                     static_cast<int>(item.size()), item.data());
      }
    }
  }
}

void ensure_env_parsed() {
  ProcessLog& p = process_log();
  if (p.parsed.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(p.parse_mutex);
  if (p.parsed.load(std::memory_order_relaxed)) return;
  parse_env_into(p.cfg);
  p.parsed.store(true, std::memory_order_release);
}

/// The calling thread's active config: its override, else the (env-parsed)
/// process default.
LogConfig& active() {
  if (t_config != nullptr) return *t_config;
  ensure_env_parsed();
  return process_log().cfg;
}
}  // namespace

void init_log_from_env() {
  ProcessLog& p = process_log();
  std::lock_guard<std::mutex> lock(p.parse_mutex);
  parse_env_into(p.cfg);
  p.parsed.store(true, std::memory_order_release);
}

LogConfig snapshot_log_config() {
  ensure_env_parsed();
  return process_log().cfg;
}

LogConfig* set_thread_log_config(LogConfig* cfg) {
  LogConfig* prev = t_config;
  t_config = cfg;
  return prev;
}

LogConfig* thread_log_config() { return t_config; }

void set_log_level(LogLevel level) { active().level = level; }

LogLevel log_level() { return active().level; }

void set_module_log_level(const std::string& component, LogLevel level) {
  active().module_levels[component] = level;
}

void clear_module_log_levels() { active().module_levels.clear(); }

LogLevel log_threshold(std::string_view component) {
  const LogConfig& cfg = active();
  const auto it = cfg.module_levels.find(component);
  return it == cfg.module_levels.end() ? cfg.level : it->second;
}

bool log_enabled(LogLevel level, std::string_view component) {
  return level >= log_threshold(component);
}

void set_log_sink(LogSink s) { active().sink = std::move(s); }

std::string format_log_line(LogLevel level, SimTime at,
                            const std::string& component,
                            const std::string& message) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%12.3fms] %-5s ", to_ms(at),
                level_name(level));
  return std::string(buf) + component + ": " + message;
}

void log_line(LogLevel level, SimTime at, const std::string& component,
              const std::string& message) {
  if (const LogSink& s = active().sink) {
    s(level, at, component, message);
    return;
  }
  std::fprintf(stderr, "%s\n",
               format_log_line(level, at, component, message).c_str());
}

}  // namespace now::sim
