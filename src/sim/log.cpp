#include "sim/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>

namespace now::sim {

namespace {
LogLevel g_level = LogLevel::kWarn;
std::map<std::string, LogLevel, std::less<>>& module_levels() {
  static std::map<std::string, LogLevel, std::less<>> m;
  return m;
}
LogSink& sink() {
  static LogSink s;
  return s;
}
bool g_env_parsed = false;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

bool parse_level(std::string_view s, LogLevel* out) {
  if (s == "trace") *out = LogLevel::kTrace;
  else if (s == "debug") *out = LogLevel::kDebug;
  else if (s == "info") *out = LogLevel::kInfo;
  else if (s == "warn" || s == "warning") *out = LogLevel::kWarn;
  else if (s == "error") *out = LogLevel::kError;
  else if (s == "off" || s == "none") *out = LogLevel::kOff;
  else return false;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

void ensure_env_parsed() {
  if (g_env_parsed) return;
  g_env_parsed = true;
  const char* env = std::getenv("NOW_LOG");
  if (env == nullptr) return;
  std::string_view rest(env);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (item.empty()) continue;
    LogLevel lvl;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      if (parse_level(item, &lvl)) g_level = lvl;
      else std::fprintf(stderr, "NOW_LOG: unknown level '%.*s'\n",
                        static_cast<int>(item.size()), item.data());
    } else {
      const std::string_view component = trim(item.substr(0, eq));
      if (parse_level(trim(item.substr(eq + 1)), &lvl)) {
        module_levels()[std::string(component)] = lvl;
      } else {
        std::fprintf(stderr, "NOW_LOG: bad entry '%.*s'\n",
                     static_cast<int>(item.size()), item.data());
      }
    }
  }
}
}  // namespace

void init_log_from_env() {
  g_env_parsed = false;
  ensure_env_parsed();
}

void set_log_level(LogLevel level) {
  ensure_env_parsed();  // an explicit call wins over the environment
  g_level = level;
}

LogLevel log_level() {
  ensure_env_parsed();
  return g_level;
}

void set_module_log_level(const std::string& component, LogLevel level) {
  ensure_env_parsed();
  module_levels()[component] = level;
}

void clear_module_log_levels() { module_levels().clear(); }

LogLevel log_threshold(std::string_view component) {
  ensure_env_parsed();
  const auto& m = module_levels();
  const auto it = m.find(component);
  return it == m.end() ? g_level : it->second;
}

bool log_enabled(LogLevel level, std::string_view component) {
  return level >= log_threshold(component);
}

void set_log_sink(LogSink s) { sink() = std::move(s); }

std::string format_log_line(LogLevel level, SimTime at,
                            const std::string& component,
                            const std::string& message) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%12.3fms] %-5s ", to_ms(at),
                level_name(level));
  return std::string(buf) + component + ": " + message;
}

void log_line(LogLevel level, SimTime at, const std::string& component,
              const std::string& message) {
  if (const LogSink& s = sink()) {
    s(level, at, component, message);
    return;
  }
  std::fprintf(stderr, "%s\n",
               format_log_line(level, at, component, message).c_str());
}

}  // namespace now::sim
