#include "sim/engine.hpp"

#include <algorithm>

namespace now::sim {

Engine::~Engine() {
  // Live events still hold closures that need destroying; once drained (the
  // common case) every slot's callback is already gone and the slab can be
  // freed without touching its 64 bytes/slot.
  if (live_count_ != 0) {
    for (std::uint32_t idx = 0; idx < num_slots_; ++idx) slot(idx).fn.reset();
  }
  for (Slot* chunk : chunks_) {
    BlockCache::deallocate(chunk, kChunkSize * sizeof(Slot));
  }
  BlockCache::deallocate(heap_, heap_cap_ * sizeof(HeapEntry));
}

void Engine::add_chunk() {
  assert(num_slots_ + kChunkSize <= kMaxSlots &&
         "event pool exhausted (2^24 concurrently pending events)");
  auto* chunk =
      static_cast<Slot*>(BlockCache::allocate(kChunkSize * sizeof(Slot)));
  chunks_.push_back(chunk);
  // One init pass: empty callback, dead tag, and a free-list chain that
  // hands slots out in ascending index order, ending at the old list head.
  const std::uint32_t base = num_slots_;
  for (std::uint32_t i = 0; i < kChunkSize; ++i) {
    ::new (static_cast<void*>(&chunk[i])) Slot;
    chunk[i].next_free = base + i + 1;
  }
  chunk[kChunkSize - 1].next_free = free_head_;
  free_head_ = base;
  num_slots_ += kChunkSize;
}

// Finds the tier holding the next live event, promoting the future buffer
// into a fresh sorted run when the current one drains.  Afterwards the run
// head and heap top (when present) are both live, so the caller can compare
// them directly.
Engine::Source Engine::next_source() {
  for (;;) {
    while (run_pos_ < run_.size() && entry_stale(run_[run_pos_])) {
      ++run_pos_;
      --stale_count_;
    }
    if (run_pos_ == run_.size() && !future_.empty()) {
      build_run();
      continue;  // the new run may itself be empty after filtering
    }
    skim_stale();
    const bool has_run = run_pos_ < run_.size();
    if (!has_run && heap_size_ == 0) return Source::kNone;
    if (has_run &&
        (heap_size_ == 0 || entry_less(run_[run_pos_], heap_[0]))) {
      return Source::kRun;
    }
    return Source::kHeap;
  }
}

void Engine::dispatch_from(Source src) {
  HeapEntry top;
  if (src == Source::kRun) {
    top = run_[run_pos_++];
  } else {
    top = heap_[0];
    heap_pop();
  }
  const std::uint32_t idx = key_slot(top.key);
  Slot& s = slot(idx);
  now_ = top.time;
  // Invalidate the id *before* invoking so a self-cancel from inside the
  // callback is a stale no-op, but keep the slot off the free list until the
  // callback returns — events it schedules must not reuse the slot that is
  // currently executing.  Chunk addresses are stable, so the closure runs in
  // place even if scheduling grows the slab.
  s.seq = kDeadSeq;
  --live_count_;
  ++dispatched_;
  s.fn.invoke_and_reset();
  free_slot(s, idx);
}

bool Engine::step() {
  const Source src = next_source();
  if (src == Source::kNone) return false;
  dispatch_from(src);
  return true;
}

std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_) {
    const Source src = next_source();
    if (src == Source::kNone) break;
    dispatch_from(src);
    ++n;
  }
  return n;
}

std::uint64_t Engine::run_until(SimTime deadline) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_) {
    const Source src = next_source();
    if (src == Source::kNone) break;
    const SimTime next =
        src == Source::kRun ? run_[run_pos_].time : heap_[0].time;
    if (next > deadline) break;
    dispatch_from(src);
    ++n;
  }
  // A completed run leaves the clock at the deadline; a stop()ped run leaves
  // it at the last dispatched event so callers observe where they halted.
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Engine::run_while_before(SimTime bound) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_) {
    const Source src = next_source();
    if (src == Source::kNone) break;
    const SimTime next =
        src == Source::kRun ? run_[run_pos_].time : heap_[0].time;
    if (next >= bound) break;
    dispatch_from(src);
    ++n;
  }
  return n;
}

bool Engine::peek_next(SimTime* at) {
  const Source src = next_source();
  if (src == Source::kNone) return false;
  *at = src == Source::kRun ? run_[run_pos_].time : heap_[0].time;
  return true;
}

// Filters cancelled entries out of the future buffer and sorts the survivors
// into the next run.  Sorting PODs sequentially here is ~3x cheaper than
// sifting each event through a large implicit heap, and the filter pass is
// where cancelled-then-never-popped tombstones get shed in bulk.
void Engine::build_run() {
  run_.clear();
  run_pos_ = 0;
  // Track sortedness while filtering: schedules that arrive in ascending
  // (time, key) order — timer ticks, pipelined transfers, most benchmarks —
  // skip the sort entirely.
  bool sorted = true;
  for (const HeapEntry& e : future_) {
    if (entry_stale(e)) {
      --stale_count_;
    } else {
      if (sorted && !run_.empty() && entry_less(e, run_.back())) sorted = false;
      run_.push_back(e);
    }
  }
  future_.clear();
  if (!sorted) std::sort(run_.begin(), run_.end(), entry_less);
}

void Engine::compact() {
  // Shed stale entries from all three tiers.  The run keeps its sorted
  // order (remove_if is stable); the heap is rebuilt with Floyd's heapify.
  const auto stale = [this](const HeapEntry& e) { return entry_stale(e); };
  run_.erase(std::remove_if(run_.begin() + static_cast<std::ptrdiff_t>(run_pos_),
                            run_.end(), stale),
             run_.end());
  future_.erase(std::remove_if(future_.begin(), future_.end(), stale),
                future_.end());

  std::size_t live = 0;
  for (std::size_t j = 0; j < heap_size_; ++j) {
    const HeapEntry e = heap_[phys(j)];
    if (!entry_stale(e)) heap_[phys(live++)] = e;
  }
  heap_size_ = live;
  stale_count_ = 0;
  if (live < 2) return;

  // Floyd heapify: sift every internal node down, last parent first.
  const std::size_t end = phys(live - 1) + 1;
  for (std::size_t i = parent_of(end - 1);; --i) {
    if (i == 0 || i >= 4) {  // physical cells 1..3 are padding
      HeapEntry v = heap_[i];
      std::size_t hole = i;
      for (;;) {
        const std::size_t first = first_child(hole);
        if (first >= end) break;
        std::size_t best = first;
        const std::size_t stop = first + 4 < end ? first + 4 : end;
        for (std::size_t c = first + 1; c < stop; ++c) {
          if (entry_less(heap_[c], heap_[best])) best = c;
        }
        if (!entry_less(heap_[best], v)) break;
        heap_[hole] = heap_[best];
        hole = best;
      }
      heap_[hole] = v;
    }
    if (i == 0) break;
  }
}

}  // namespace now::sim
