#include "sim/engine.hpp"

#include <cassert>
#include <utility>

namespace now::sim {

EventId Engine::schedule_at(SimTime at, std::function<void()> fn,
                            int priority) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Event{at, priority, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId Engine::schedule_in(Duration delay, std::function<void()> fn,
                            int priority) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn), priority);
}

bool Engine::cancel(EventId id) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  ++cancelled_count_;
  return true;
}

bool Engine::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    const auto it = handlers_.find(ev.id);
    if (it == handlers_.end()) {
      // Cancelled event reached the head; drop its tombstone.
      assert(cancelled_count_ > 0);
      --cancelled_count_;
      continue;
    }
    now_ = ev.time;
    // Move the handler out before invoking: the callback may schedule or
    // cancel other events, invalidating iterators.
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    ++dispatched_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::uint64_t Engine::run_until(SimTime deadline) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty()) {
    // Peek past cancelled tombstones to find the next live event time.
    while (!queue_.empty() && !handlers_.contains(queue_.top().id)) {
      queue_.pop();
      assert(cancelled_count_ > 0);
      --cancelled_count_;
    }
    if (queue_.empty() || queue_.top().time > deadline) break;
    if (step()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace now::sim
