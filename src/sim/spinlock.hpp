// A minimal test-and-set spinlock for the few cross-lane touch points of
// the partitioned engine (shared statistics structs, the tracer ring).
//
// The critical sections it guards are a handful of arithmetic ops, orders
// of magnitude shorter than a context switch, and in the serial engine the
// lock is always uncontended — one uncontested atomic RMW per acquisition,
// cheap enough to leave unconditionally in place so the serial and
// partitioned code paths stay identical.
#pragma once

#include <atomic>

namespace now::sim {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // C++20: spin on a plain load so contended waiters don't bounce the
      // cache line with RMWs.
      while (flag_.test(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() noexcept { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// RAII guard (std::lock_guard works too; this avoids the <mutex> include
/// in hot headers).
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& l) noexcept : l_(l) { l_.lock(); }
  ~SpinGuard() { l_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& l_;
};

}  // namespace now::sim
