// now::fault — unified fault injection for a Network Of Workstations.
//
// The paper's availability argument is that a building-wide system built
// from failure-prone parts must *expect* failure: workstations crash and
// reboot, owners reclaim their machines, disks die, links flap.  Every
// subsystem in this repo already carries its own reaction machinery —
// RAID-5 degraded reads and parity rebuilds, xFS manager takeover and
// client-crash recovery, GLUnix heartbeats and checkpoint restarts, netram
// donor revocation, AM epoch resync — but nothing *caused* the failures.
//
// This module is the cause.  A FaultPlan is a schedule: scripted one-shot
// events plus seeded stochastic processes (exponential MTTF/MTTR node
// churn, link flaps, owner-return bursts).  A FaultInjector applies the
// plan to a set of targets (the subsystems of one Cluster) and drives the
// existing reactions — it never fakes an outcome; a disk replace triggers
// a real parity rebuild with real reconstruction traffic through the
// simulated disks and network.
//
// Determinism: every stochastic draw comes from a Pcg32 whose seed is
// exp::derive_seed(injector_seed, (process << 32) | node), so a plan's
// entire schedule is a pure function of the injector seed — identical
// under --jobs 1 and --jobs N, and independent of what the workload does.
// The whole schedule is materialized when apply() runs, before any
// workload event has fired.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "netram/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "os/node.hpp"
#include "raid/raid.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "xfs/xfs.hpp"

namespace now::xfs {
class CentralServerFs;
}  // namespace now::xfs

namespace now::fault {

enum class FaultKind : std::uint8_t {
  kNodeCrash,    // os::Node::crash + every subsystem reaction
  kNodeRestart,  // os::Node::reboot + background RAID rebuild
  kLinkDown,     // NIC unplugged: packets to/from the node drop
  kLinkUp,       // link restored; AM retries resync on their own
  kDiskFail,     // storage member lost, node itself stays up
  kDiskReplace,  // fresh disk: background parity rebuild
  kOwnerReturn,  // console activity: GLUnix displaces, netram revokes
};

const char* to_string(FaultKind k);

struct FaultEvent {
  sim::SimTime at = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  net::NodeId node = net::kInvalidNode;
};

/// A failure schedule: scripted events plus optional stochastic processes.
/// Builders chain:
///
///   fault::FaultPlan plan;
///   plan.crash_at(10 * sim::kSecond, 3)
///       .restart_at(25 * sim::kSecond, 3)
///       .with_node_churn(120 * sim::kSecond, 10 * sim::kSecond)
///       .until(5 * sim::kMinute);
struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Crash/restart churn: per-node exponential time-to-failure with mean
  /// `node_mttf`, then exponential repair with mean `node_mttr`.  0 = off.
  sim::Duration node_mttf = 0;
  sim::Duration node_mttr = 10 * sim::kSecond;
  /// Nodes subject to churn; empty = every target node.
  std::vector<net::NodeId> churn_nodes;

  /// Link flaps: exponential up-time with mean `link_mtbf`, down-time with
  /// mean `link_mttr`.  0 = off.
  sim::Duration link_mtbf = 0;
  sim::Duration link_mttr = 1 * sim::kSecond;
  std::vector<net::NodeId> flap_nodes;

  /// Owner-return bursts: exponential inter-arrival of console activity
  /// with this mean.  0 = off.
  sim::Duration owner_return_mean = 0;
  std::vector<net::NodeId> owner_nodes;

  /// Stochastic processes schedule no event at or past this instant, so a
  /// run with churn still drains.  Required (> 0) when any process is on;
  /// a node down at the horizon simply stays down.
  sim::SimTime horizon = 0;

  FaultPlan& crash_at(sim::SimTime t, net::NodeId n) {
    events.push_back({t, FaultKind::kNodeCrash, n});
    return *this;
  }
  FaultPlan& restart_at(sim::SimTime t, net::NodeId n) {
    events.push_back({t, FaultKind::kNodeRestart, n});
    return *this;
  }
  FaultPlan& link_down_at(sim::SimTime t, net::NodeId n) {
    events.push_back({t, FaultKind::kLinkDown, n});
    return *this;
  }
  FaultPlan& link_up_at(sim::SimTime t, net::NodeId n) {
    events.push_back({t, FaultKind::kLinkUp, n});
    return *this;
  }
  FaultPlan& disk_fail_at(sim::SimTime t, net::NodeId n) {
    events.push_back({t, FaultKind::kDiskFail, n});
    return *this;
  }
  FaultPlan& disk_replace_at(sim::SimTime t, net::NodeId n) {
    events.push_back({t, FaultKind::kDiskReplace, n});
    return *this;
  }
  FaultPlan& owner_return_at(sim::SimTime t, net::NodeId n) {
    events.push_back({t, FaultKind::kOwnerReturn, n});
    return *this;
  }
  FaultPlan& with_node_churn(sim::Duration mttf, sim::Duration mttr,
                             std::vector<net::NodeId> nodes = {}) {
    node_mttf = mttf;
    node_mttr = mttr;
    churn_nodes = std::move(nodes);
    return *this;
  }
  FaultPlan& with_link_flaps(sim::Duration mtbf, sim::Duration mttr,
                             std::vector<net::NodeId> nodes = {}) {
    link_mtbf = mtbf;
    link_mttr = mttr;
    flap_nodes = std::move(nodes);
    return *this;
  }
  FaultPlan& with_owner_returns(sim::Duration mean,
                                std::vector<net::NodeId> nodes = {}) {
    owner_return_mean = mean;
    owner_nodes = std::move(nodes);
    return *this;
  }
  FaultPlan& until(sim::SimTime t) {
    horizon = t;
    return *this;
  }

  bool stochastic() const {
    return node_mttf > 0 || link_mtbf > 0 || owner_return_mean > 0;
  }
  bool empty() const { return events.empty() && !stochastic(); }
};

struct FaultStats {
  std::uint64_t node_crashes = 0;
  std::uint64_t node_restarts = 0;
  std::uint64_t link_downs = 0;
  std::uint64_t link_ups = 0;
  std::uint64_t disk_fails = 0;
  std::uint64_t disk_replacements = 0;
  std::uint64_t owner_returns = 0;
  std::uint64_t manager_takeovers = 0;  // auto-takeovers this injector drove
  std::uint64_t rebuilds_started = 0;
  std::uint64_t rebuilds_completed = 0;
  std::uint64_t donor_revocations = 0;
};

/// The subsystems one injector drives.  `engine` and `nodes` are required;
/// everything else is optional — a null pointer just means that class of
/// reaction is skipped (e.g. no xFS, no manager takeover).  Cluster fills
/// this in from its own wiring.
struct FaultTargets {
  sim::Engine* engine = nullptr;
  std::vector<os::Node*> nodes;
  net::Network* network = nullptr;
  raid::Storage* storage = nullptr;
  xfs::Xfs* xfs = nullptr;
  netram::IdleMemoryRegistry* registry = nullptr;
  /// The incumbent file system, when a comparison runs one.  Benches build
  /// CentralServerFs after the Cluster, so this is usually attached late
  /// via FaultInjector::attach_central().
  xfs::CentralServerFs* central = nullptr;
};

/// Recovery policy: what the injector does *for* the cluster, modeling the
/// operators and daemons a real building would have.
struct FaultPolicy {
  /// When a node holding xFS manager duty crashes, re-point its duty at
  /// the next live node — after the detection delay a failure detector
  /// (heartbeat timeout) would impose.  In-flight xFS ops ride the gap out
  /// through their own timeout+retry ladder.
  bool auto_takeover = true;
  sim::Duration takeover_detection_delay = 500 * sim::kMillisecond;
  /// After a restart or disk replace, rebuild the storage member in the
  /// background (real reconstruction reads off the survivors).
  bool auto_rebuild = true;
  std::uint64_t rebuild_bytes_per_member = 1ull << 20;
};

class FaultInjector {
 public:
  FaultInjector(FaultTargets targets, std::uint64_t seed,
                FaultPolicy policy = {});
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event the plan describes (scripted + materialized
  /// stochastic draws) onto the engine.  May be called more than once;
  /// each call schedules independently.
  void apply(const FaultPlan& plan);

  // --- Direct injection (also usable without a plan, e.g. from tests) ---
  void crash_node(net::NodeId n);
  void restart_node(net::NodeId n);
  void fail_link(net::NodeId n);
  void restore_link(net::NodeId n);
  void fail_disk(net::NodeId n);
  void replace_disk(net::NodeId n);
  void owner_returned(net::NodeId n);

  /// Registers the incumbent file system so crashes of its server node
  /// drop the server cache (cold restart).  Call before the first fault
  /// fires; passing nullptr detaches.
  void attach_central(xfs::CentralServerFs* central) { t_.central = central; }

  const FaultStats& stats() const { return stats_; }
  bool node_down(net::NodeId n) const;
  std::size_t nodes_down() const;
  const FaultPolicy& policy() const { return policy_; }

 private:
  void inject(const FaultEvent& ev);
  void schedule_event(const FaultEvent& ev);
  void auto_takeover_after(net::NodeId failed);
  void start_rebuild(net::NodeId member);
  os::Node* node(net::NodeId n) const;
  /// Next live node after `after` in id order (cyclic); kInvalidNode if
  /// everyone is dead.
  net::NodeId next_alive(net::NodeId after) const;
  /// Per-(process, node) RNG, seed-derived: the schedule is a pure
  /// function of the injector seed.
  sim::Pcg32 stream_rng(std::uint64_t process, net::NodeId n) const;

  FaultTargets t_;
  std::uint64_t seed_;
  FaultPolicy policy_;
  FaultStats stats_;
  /// Crash instants of currently-down nodes, for downtime spans.
  std::unordered_map<net::NodeId, sim::SimTime> down_since_;

  obs::Counter* obs_crashes_;
  obs::Counter* obs_restarts_;
  obs::Counter* obs_link_downs_;
  obs::Counter* obs_link_ups_;
  obs::Counter* obs_disk_fails_;
  obs::Counter* obs_disk_replacements_;
  obs::Counter* obs_owner_returns_;
  obs::Counter* obs_takeovers_;
  obs::Counter* obs_rebuilds_;
  obs::Gauge* obs_nodes_down_;
  obs::Summary* obs_downtime_ms_;
  obs::Summary* obs_rebuild_ms_;
  obs::Summary* obs_takeover_ms_;
  obs::TrackId obs_track_;
};

}  // namespace now::fault
