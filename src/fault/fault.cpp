#include "fault/fault.hpp"

#include <algorithm>
#include <cassert>

#include "exp/seed.hpp"
#include "xfs/central_server.hpp"

namespace now::fault {

namespace {
// Stream ids for the per-node RNGs; the (process << 32 | node) derive index
// keeps them disjoint from each other and from the small task indices
// exp::run_sweep burns on the same base seed.
constexpr std::uint64_t kChurnStream = 1;
constexpr std::uint64_t kFlapStream = 2;
constexpr std::uint64_t kOwnerStream = 3;

sim::Duration draw_exp(sim::Pcg32& rng, sim::Duration mean) {
  return std::max<sim::Duration>(
      1, static_cast<sim::Duration>(
             rng.exponential(static_cast<double>(mean))));
}
}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kNodeRestart: return "node_restart";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kDiskFail: return "disk_fail";
    case FaultKind::kDiskReplace: return "disk_replace";
    case FaultKind::kOwnerReturn: return "owner_return";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultTargets targets, std::uint64_t seed,
                             FaultPolicy policy)
    : t_(std::move(targets)),
      seed_(seed),
      policy_(policy),
      obs_crashes_(&obs::metrics().counter("fault.node_crashes")),
      obs_restarts_(&obs::metrics().counter("fault.node_restarts")),
      obs_link_downs_(&obs::metrics().counter("fault.link_downs")),
      obs_link_ups_(&obs::metrics().counter("fault.link_ups")),
      obs_disk_fails_(&obs::metrics().counter("fault.disk_fails")),
      obs_disk_replacements_(
          &obs::metrics().counter("fault.disk_replacements")),
      obs_owner_returns_(&obs::metrics().counter("fault.owner_returns")),
      obs_takeovers_(&obs::metrics().counter("fault.takeovers")),
      obs_rebuilds_(&obs::metrics().counter("fault.rebuilds")),
      obs_nodes_down_(&obs::metrics().gauge("fault.nodes_down")),
      obs_downtime_ms_(&obs::metrics().summary("fault.downtime_ms")),
      obs_rebuild_ms_(&obs::metrics().summary("fault.rebuild_ms")),
      obs_takeover_ms_(&obs::metrics().summary("fault.takeover_ms")),
      obs_track_(obs::tracer().track("fault")) {
  assert(t_.engine != nullptr && !t_.nodes.empty());
}

os::Node* FaultInjector::node(net::NodeId n) const {
  if (n < t_.nodes.size() && t_.nodes[n]->id() == n) return t_.nodes[n];
  for (os::Node* p : t_.nodes) {
    if (p->id() == n) return p;
  }
  return nullptr;
}

net::NodeId FaultInjector::next_alive(net::NodeId after) const {
  std::size_t at = t_.nodes.size();
  for (std::size_t i = 0; i < t_.nodes.size(); ++i) {
    if (t_.nodes[i]->id() == after) at = i;
  }
  if (at == t_.nodes.size()) return net::kInvalidNode;
  for (std::size_t k = 1; k <= t_.nodes.size(); ++k) {
    os::Node* cand = t_.nodes[(at + k) % t_.nodes.size()];
    if (cand->alive()) return cand->id();
  }
  return net::kInvalidNode;
}

sim::Pcg32 FaultInjector::stream_rng(std::uint64_t process,
                                     net::NodeId n) const {
  return sim::Pcg32(exp::derive_seed(seed_, (process << 32) | n), n);
}

bool FaultInjector::node_down(net::NodeId n) const {
  return down_since_.contains(n);
}

std::size_t FaultInjector::nodes_down() const { return down_since_.size(); }

void FaultInjector::schedule_event(const FaultEvent& ev) {
  t_.engine->schedule_at(ev.at, [this, ev] { inject(ev); });
}

void FaultInjector::inject(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kNodeCrash: crash_node(ev.node); break;
    case FaultKind::kNodeRestart: restart_node(ev.node); break;
    case FaultKind::kLinkDown: fail_link(ev.node); break;
    case FaultKind::kLinkUp: restore_link(ev.node); break;
    case FaultKind::kDiskFail: fail_disk(ev.node); break;
    case FaultKind::kDiskReplace: replace_disk(ev.node); break;
    case FaultKind::kOwnerReturn: owner_returned(ev.node); break;
  }
}

void FaultInjector::apply(const FaultPlan& plan) {
  for (const FaultEvent& ev : plan.events) schedule_event(ev);
  if (!plan.stochastic()) return;
  assert(plan.horizon > 0 &&
         "a stochastic FaultPlan needs FaultPlan::horizon (see until())");

  // Materialize every draw now: the schedule depends only on the injector
  // seed, never on what the workload got up to in the meantime.
  auto targets = [&](const std::vector<net::NodeId>& list) {
    if (!list.empty()) return list;
    std::vector<net::NodeId> all;
    all.reserve(t_.nodes.size());
    for (os::Node* n : t_.nodes) all.push_back(n->id());
    return all;
  };

  if (plan.node_mttf > 0) {
    for (net::NodeId n : targets(plan.churn_nodes)) {
      sim::Pcg32 rng = stream_rng(kChurnStream, n);
      sim::SimTime t = 0;
      while (true) {
        t += draw_exp(rng, plan.node_mttf);
        if (t >= plan.horizon) break;
        schedule_event({t, FaultKind::kNodeCrash, n});
        t += draw_exp(rng, plan.node_mttr);
        if (t >= plan.horizon) break;
        schedule_event({t, FaultKind::kNodeRestart, n});
      }
    }
  }
  if (plan.link_mtbf > 0) {
    for (net::NodeId n : targets(plan.flap_nodes)) {
      sim::Pcg32 rng = stream_rng(kFlapStream, n);
      sim::SimTime t = 0;
      while (true) {
        t += draw_exp(rng, plan.link_mtbf);
        if (t >= plan.horizon) break;
        schedule_event({t, FaultKind::kLinkDown, n});
        t += draw_exp(rng, plan.link_mttr);
        if (t >= plan.horizon) break;
        schedule_event({t, FaultKind::kLinkUp, n});
      }
    }
  }
  if (plan.owner_return_mean > 0) {
    for (net::NodeId n : targets(plan.owner_nodes)) {
      sim::Pcg32 rng = stream_rng(kOwnerStream, n);
      sim::SimTime t = 0;
      while (true) {
        t += draw_exp(rng, plan.owner_return_mean);
        if (t >= plan.horizon) break;
        schedule_event({t, FaultKind::kOwnerReturn, n});
      }
    }
  }
}

void FaultInjector::crash_node(net::NodeId n) {
  os::Node* nd = node(n);
  if (nd == nullptr || !nd->alive()) return;  // already down
  nd->crash();
  down_since_[n] = t_.engine->now();
  ++stats_.node_crashes;
  obs_crashes_->inc();
  obs_nodes_down_->set(static_cast<double>(down_since_.size()));
  obs::tracer().instant(n, obs_track_, "crash");

  if (t_.storage != nullptr && t_.storage->is_member(n) &&
      !t_.storage->member_down(n)) {
    t_.storage->member_failed(n);
  }
  if (t_.xfs != nullptr) {
    t_.xfs->client_crashed(n);
    auto_takeover_after(n);
  }
  if (t_.registry != nullptr && t_.registry->is_donor(n)) {
    t_.registry->donor_crashed(n);
  }
  if (t_.central != nullptr && t_.central->server_id() == n) {
    t_.central->server_crashed();
  }
  // GLUnix is not poked: it discovers the death through missed heartbeats
  // and restarts guests from their checkpoints, exactly as it would have.
}

void FaultInjector::auto_takeover_after(net::NodeId failed) {
  if (!policy_.auto_takeover || t_.xfs == nullptr) return;
  const sim::SimTime crashed_at = t_.engine->now();
  t_.engine->schedule_in(
      policy_.takeover_detection_delay, [this, failed, crashed_at] {
        if (!node_down(failed)) return;           // rebooted first
        if (!t_.xfs->is_manager(failed)) return;  // duty already moved
        const net::NodeId succ = next_alive(failed);
        if (succ == net::kInvalidNode) return;
        t_.xfs->manager_takeover(
            failed, succ, [this, succ, crashed_at] {
              ++stats_.manager_takeovers;
              obs_takeovers_->inc();
              obs_takeover_ms_->observe(
                  sim::to_ms(t_.engine->now() - crashed_at));
              obs::tracer().complete(succ, obs_track_, "takeover",
                                     crashed_at, t_.engine->now());
            });
      });
}

void FaultInjector::restart_node(net::NodeId n) {
  os::Node* nd = node(n);
  if (nd == nullptr || nd->alive()) return;
  nd->reboot();
  auto it = down_since_.find(n);
  if (it != down_since_.end()) {
    obs_downtime_ms_->observe(sim::to_ms(t_.engine->now() - it->second));
    obs::tracer().complete(n, obs_track_, "node_down", it->second,
                           t_.engine->now());
    down_since_.erase(it);
  }
  ++stats_.node_restarts;
  obs_restarts_->inc();
  obs_nodes_down_->set(static_cast<double>(down_since_.size()));

  if (policy_.auto_rebuild && t_.storage != nullptr &&
      t_.storage->member_down(n) && t_.storage->redundant()) {
    start_rebuild(n);
  }
  if (t_.central != nullptr && t_.central->server_id() == n) {
    t_.central->server_restarted();
  }
}

void FaultInjector::start_rebuild(net::NodeId member) {
  os::Node* rep = node(member);
  if (rep == nullptr || !rep->alive()) return;
  ++stats_.rebuilds_started;
  obs_rebuilds_->inc();
  const sim::SimTime began = t_.engine->now();
  t_.storage->reconstruct_member(
      member, *rep,
      [this, member, began] {
        ++stats_.rebuilds_completed;
        obs_rebuild_ms_->observe(sim::to_ms(t_.engine->now() - began));
        obs::tracer().complete(member, obs_track_, "rebuild", began,
                               t_.engine->now());
        // The member may have crashed again while its stripe units were
        // in flight; the freshly rebuilt disk is then lost with it.
        if (node_down(member)) t_.storage->member_failed(member);
      },
      policy_.rebuild_bytes_per_member);
}

void FaultInjector::fail_link(net::NodeId n) {
  if (t_.network == nullptr || !t_.network->link_up(n)) return;
  t_.network->set_link_up(n, false);
  ++stats_.link_downs;
  obs_link_downs_->inc();
  obs::tracer().instant(n, obs_track_, "link_down");
}

void FaultInjector::restore_link(net::NodeId n) {
  if (t_.network == nullptr || t_.network->link_up(n)) return;
  t_.network->set_link_up(n, true);
  ++stats_.link_ups;
  obs_link_ups_->inc();
  obs::tracer().instant(n, obs_track_, "link_up");
}

void FaultInjector::fail_disk(net::NodeId n) {
  if (t_.storage == nullptr || !t_.storage->is_member(n) ||
      t_.storage->member_down(n)) {
    return;
  }
  t_.storage->member_failed(n);
  ++stats_.disk_fails;
  obs_disk_fails_->inc();
  obs::tracer().instant(n, obs_track_, "disk_fail");
}

void FaultInjector::replace_disk(net::NodeId n) {
  if (t_.storage == nullptr || !t_.storage->member_down(n) ||
      !t_.storage->redundant()) {
    return;
  }
  os::Node* nd = node(n);
  if (nd == nullptr || !nd->alive()) return;
  ++stats_.disk_replacements;
  obs_disk_replacements_->inc();
  obs::tracer().instant(n, obs_track_, "disk_replace");
  start_rebuild(n);
}

void FaultInjector::owner_returned(net::NodeId n) {
  os::Node* nd = node(n);
  if (nd == nullptr || !nd->alive()) return;  // nobody types on a dead box
  nd->user_activity();
  ++stats_.owner_returns;
  obs_owner_returns_->inc();
  obs::tracer().instant(n, obs_track_, "owner_return");
  // GLUnix's 2-second console poll sees the activity and displaces any
  // guest on its own; network RAM must give the DRAM back too.
  if (t_.registry != nullptr && t_.registry->is_donor(n)) {
    t_.registry->revoke_donor(n);
    ++stats_.donor_revocations;
  }
}

}  // namespace now::fault
