#!/usr/bin/env python3
"""Checks relative markdown links (and their anchors) across the repo docs.

Usage: python3 tools/check_links.py [file-or-dir ...]

With no arguments, checks the repo's top-level *.md plus everything under
docs/.  For every inline link [text](target) in each file:

  * http(s)/mailto targets are skipped (no network in CI);
  * a relative path target must exist, resolved against the linking file;
  * a `path#anchor` target must also contain a heading whose GitHub slug
    matches `anchor`; a bare `#anchor` is resolved within the same file.

Exits non-zero listing every broken link, so CI fails loudly when a doc
section is renamed out from under a cross-reference.
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    # Strip inline code/emphasis markers, then: lowercase, drop anything
    # that is not a word character, space, or hyphen, spaces -> hyphens.
    # Underscores survive (GitHub slugs them from the rendered text, so
    # `bench_serving` keeps its underscore).
    text = re.sub(r"[`*]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        body = CODE_FENCE_RE.sub("", f.read())
    slugs = set()
    counts = {}
    for m in HEADING_RE.finditer(body):
        slug = github_slug(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: str, repo_root: str) -> list:
    errors = []
    with open(path, encoding="utf-8") as f:
        body = CODE_FENCE_RE.sub("", f.read())
    base = os.path.dirname(path)
    for m in LINK_RE.finditer(body):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            dest = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(dest):
                errors.append(f"{os.path.relpath(path, repo_root)}: "
                              f"missing target {target}")
                continue
        else:
            dest = path
        if anchor and dest.endswith(".md"):
            if anchor not in anchors_of(dest):
                errors.append(f"{os.path.relpath(path, repo_root)}: "
                              f"no heading for anchor {target}")
    return errors


def collect(args, repo_root):
    if args:
        seeds = args
    else:
        seeds = [os.path.join(repo_root, n) for n in os.listdir(repo_root)
                 if n.endswith(".md")]
        seeds.append(os.path.join(repo_root, "docs"))
    files = []
    for s in seeds:
        if os.path.isdir(s):
            for dirpath, _, names in os.walk(s):
                files.extend(os.path.join(dirpath, n) for n in names
                             if n.endswith(".md"))
        elif s.endswith(".md") and os.path.exists(s):
            files.append(s)
    return sorted(set(files))


def main() -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = collect(sys.argv[1:], repo_root)
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1
    errors = []
    for path in files:
        errors.extend(check_file(path, repo_root))
    for e in errors:
        print(f"::error::{e}")
    print(f"check_links: {len(files)} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
