// Regenerates the committed sample traces under traces/ — the recordings
// tests and CI replay without any network access.
//
//   $ ./tools/make_sample_trace [output-directory]   (default: traces)
//
// Two files, both deterministic (fixed seeds, no wall clock), both small
// enough to commit:
//
//   sample_fs.trace   — the native fs line format, straight from the
//                       synthetic generator (12 clients, seed 42): the
//                       round-trip case, so replaying it exercises the
//                       same distribution the benches synthesize.
//   sample_nfs.trace  — nfsdump-style text shaped like a small
//                       departmental NFS server's morning: 10 workstation
//                       clients, Zipf-popular file handles, a
//                       getattr/lookup-heavy op mix (attribute checks
//                       dominate real NFS traffic), bursty think-time
//                       gaps.  This is the foreign-format case for the
//                       NfsTraceCursor adapter.
//
// CI regenerates both and diffs against the committed files, so edits to
// the generators here must be committed together with fresh traces.
#include <cstdio>
#include <fstream>
#include <string>

#include "sim/random.hpp"
#include "trace/fs_trace.hpp"
#include "trace/trace_io.hpp"

namespace {

// The op mix: attribute and name traffic dominates, data ops are a
// quarter of the stream, mutations are rare — the canonical departmental
// NFS profile.
struct OpShare {
  const char* name;
  double share;
  bool is_data;
};
constexpr OpShare kMix[] = {
    {"getattr", 0.30, false}, {"read", 0.24, true},
    {"lookup", 0.20, false},  {"write", 0.10, true},
    {"access", 0.06, false},  {"readdir", 0.04, false},
    {"setattr", 0.02, false}, {"create", 0.02, false},
    {"remove", 0.01, false},  {"readlink", 0.01, false},
};

int write_nfs_sample(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "# nfsdump-style sample: <time_sec> <client> <op> <fh> <offset> "
         "<bytes>\n";
  now::sim::Pcg32 rng(42, 7);
  const std::uint32_t kClients = 10;
  const std::uint32_t kFiles = 400;
  const now::sim::ZipfSampler popularity(kFiles, 1.05);
  // Per-file sequential cursor so reads walk forward like real clients.
  std::vector<std::uint32_t> next_block(kFiles, 0);
  double t = 0;
  char line[96];
  for (int i = 0; i < 3'000; ++i) {
    // Bursty arrivals: mostly sub-millisecond gaps inside a burst, with
    // occasional think-time pauses between bursts.
    t += rng.bernoulli(0.1) ? rng.exponential(0.5)
                            : rng.exponential(0.0008);
    const std::uint32_t client = rng.next_below(kClients);
    const std::uint32_t fh = popularity.sample(rng);
    double pick = rng.next_double();
    const OpShare* op = &kMix[0];
    for (const OpShare& m : kMix) {
      op = &m;
      if (pick < m.share) break;
      pick -= m.share;
    }
    std::uint64_t offset = 0;
    std::uint32_t bytes = 0;
    if (op->is_data) {
      bytes = 8'192;
      offset = std::uint64_t{next_block[fh]} * bytes;
      next_block[fh] = (next_block[fh] + 1) % 64;
    }
    std::snprintf(line, sizeof line, "%.6f ws%02u %s fh%03x %llu %u\n", t,
                  client, op->name, fh,
                  static_cast<unsigned long long>(offset), bytes);
    out << line;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace now;
  const std::string dir = argc > 1 ? argv[1] : "traces";

  trace::FsWorkloadParams p;
  p.clients = 12;
  p.accesses_per_client = 600;
  p.shared_blocks = 1'024;
  p.private_blocks = 256;
  p.seed = 42;
  const auto fs = trace::generate_fs_trace(p);
  const std::string fs_path = dir + "/sample_fs.trace";
  {
    std::ofstream out(fs_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", fs_path.c_str());
      return 1;
    }
    trace::write_fs_trace(out, fs);
  }
  std::printf("wrote %s (%zu accesses, %u clients)\n", fs_path.c_str(),
              fs.size(), p.clients);

  const std::string nfs_path = dir + "/sample_nfs.trace";
  if (int rc = write_nfs_sample(nfs_path)) return rc;
  std::printf("wrote %s (3000 records, 10 clients)\n", nfs_path.c_str());
  return 0;
}
