// Profiles a recorded trace, and optionally cross-validates the synthetic
// generator against it.
//
//   $ ./tools/trace_profile <trace>
//       One streaming pass (O(window) reader memory): op mix, inter-
//       arrival quantiles, Zipf popularity fit — printed as `key value`
//       lines.
//
//   $ ./tools/trace_profile <trace> --twin <path>
//       Additionally generates a synthetic *twin* of the trace — the fs
//       generator parameterized from the profile (client count, volume,
//       mean gap, write fraction) — writes it to <path>, profiles it the
//       same way, and prints both profiles side by side.  That table is
//       the synthetic-vs-replayed comparison EXPERIMENTS.md records: if
//       the generator models what it claims, the columns agree on shape
//       (read/write split, gap scale, popularity skew) even though the
//       twin is not a record-for-record copy.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "replay/profile.hpp"
#include "trace/fs_trace.hpp"
#include "trace/trace_io.hpp"

namespace {

void side_by_side(const now::replay::TraceProfile& replayed,
                  const now::replay::TraceProfile& twin) {
  std::printf("\n%-18s %14s %14s\n", "metric", "replayed", "synthetic");
  const auto line = [](const char* key, double a, double b,
                       const char* fmt) {
    char av[32], bv[32];
    std::snprintf(av, sizeof av, fmt, a);
    std::snprintf(bv, sizeof bv, fmt, b);
    std::printf("%-18s %14s %14s\n", key, av, bv);
  };
  line("records", static_cast<double>(replayed.records),
       static_cast<double>(twin.records), "%.0f");
  line("clients", replayed.clients, twin.clients, "%.0f");
  line("distinct_blocks", static_cast<double>(replayed.distinct_blocks),
       static_cast<double>(twin.distinct_blocks), "%.0f");
  const auto frac = [](const now::replay::TraceProfile& p,
                       std::uint64_t n) {
    return p.records ? static_cast<double>(n) /
                           static_cast<double>(p.records)
                     : 0.0;
  };
  line("read_fraction", frac(replayed, replayed.reads),
       frac(twin, twin.reads), "%.4f");
  line("write_fraction", frac(replayed, replayed.writes),
       frac(twin, twin.writes), "%.4f");
  line("mean_gap_us", replayed.mean_gap_us, twin.mean_gap_us, "%.1f");
  line("gap_p50_us", replayed.gap_p50_us, twin.gap_p50_us, "%.1f");
  line("gap_p90_us", replayed.gap_p90_us, twin.gap_p90_us, "%.1f");
  line("gap_p99_us", replayed.gap_p99_us, twin.gap_p99_us, "%.1f");
  line("zipf_s", replayed.zipf_s, twin.zipf_s, "%.3f");
  line("top1_share", replayed.top1_share, twin.top1_share, "%.4f");
  line("top10_share", replayed.top10_share, twin.top10_share, "%.4f");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace now;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_profile <trace> [--twin <path>]\n");
    return 2;
  }
  const std::string path = argv[1];
  std::string twin_path;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--twin") == 0) twin_path = argv[i + 1];
  }

  try {
    const auto p = replay::profile_trace(path);
    std::printf("%s", replay::format_profile(p).c_str());

    if (!twin_path.empty()) {
      // Parameterize the fs generator from the measured profile.  The twin
      // keeps the generator's *structure* (shared pool + private sets,
      // activity skew); only the externally measurable knobs are matched.
      trace::FsWorkloadParams wp;
      wp.clients = std::max<std::uint32_t>(p.clients, 1);
      wp.accesses_per_client =
          std::max<std::uint64_t>(p.records / wp.clients, 1);
      wp.write_fraction =
          p.records ? static_cast<double>(p.writes) /
                          static_cast<double>(p.records)
                    : 0.0;
      // Per-client gap: the aggregate stream interleaves all clients, so a
      // client's own gap is roughly clients x the aggregate mean gap.
      wp.mean_gap = sim::from_us(std::max(1.0, p.mean_gap_us) *
                                 static_cast<double>(wp.clients));
      // Heavy-client skew would shrink the active population below the
      // measured client count; the twin keeps everyone equally active.
      wp.heavy_client_fraction = 1.0;
      wp.shared_blocks = 1'024;
      wp.private_blocks = 256;
      wp.seed = 42;
      const auto t = trace::generate_fs_trace(wp);
      {
        std::ofstream out(twin_path);
        trace::write_fs_trace(out, t);
      }
      const auto tp = replay::profile_trace(twin_path);
      side_by_side(p, tp);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_profile: %s\n", e.what());
    return 1;
  }
  return 0;
}
