# Empty compiler generated dependencies file for serverless_fs.
# This may be replaced when dependencies are built.
