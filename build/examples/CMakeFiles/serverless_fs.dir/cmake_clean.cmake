file(REMOVE_RECURSE
  "CMakeFiles/serverless_fs.dir/serverless_fs.cpp.o"
  "CMakeFiles/serverless_fs.dir/serverless_fs.cpp.o.d"
  "serverless_fs"
  "serverless_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
