file(REMOVE_RECURSE
  "CMakeFiles/netram_sort.dir/netram_sort.cpp.o"
  "CMakeFiles/netram_sort.dir/netram_sort.cpp.o.d"
  "netram_sort"
  "netram_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netram_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
