# Empty compiler generated dependencies file for netram_sort.
# This may be replaced when dependencies are built.
