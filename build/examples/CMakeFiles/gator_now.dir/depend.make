# Empty dependencies file for gator_now.
# This may be replaced when dependencies are built.
