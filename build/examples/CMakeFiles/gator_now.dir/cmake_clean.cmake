file(REMOVE_RECURSE
  "CMakeFiles/gator_now.dir/gator_now.cpp.o"
  "CMakeFiles/gator_now.dir/gator_now.cpp.o.d"
  "gator_now"
  "gator_now.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_now.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
