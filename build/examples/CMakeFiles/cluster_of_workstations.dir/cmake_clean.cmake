file(REMOVE_RECURSE
  "CMakeFiles/cluster_of_workstations.dir/cluster_of_workstations.cpp.o"
  "CMakeFiles/cluster_of_workstations.dir/cluster_of_workstations.cpp.o.d"
  "cluster_of_workstations"
  "cluster_of_workstations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_of_workstations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
