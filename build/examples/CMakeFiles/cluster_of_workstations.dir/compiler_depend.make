# Empty compiler generated dependencies file for cluster_of_workstations.
# This may be replaced when dependencies are built.
