
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/berkeley_now_100.cpp" "examples/CMakeFiles/berkeley_now_100.dir/berkeley_now_100.cpp.o" "gcc" "examples/CMakeFiles/berkeley_now_100.dir/berkeley_now_100.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/now_core.dir/DependInfo.cmake"
  "/root/repo/build/src/glunix/CMakeFiles/now_glunix.dir/DependInfo.cmake"
  "/root/repo/build/src/netram/CMakeFiles/now_netram.dir/DependInfo.cmake"
  "/root/repo/build/src/xfs/CMakeFiles/now_xfs.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/now_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/now_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/now_os.dir/DependInfo.cmake"
  "/root/repo/build/src/coopcache/CMakeFiles/now_coopcache.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/now_models.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/now_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/now_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/now_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
