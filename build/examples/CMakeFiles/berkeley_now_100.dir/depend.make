# Empty dependencies file for berkeley_now_100.
# This may be replaced when dependencies are built.
