file(REMOVE_RECURSE
  "CMakeFiles/berkeley_now_100.dir/berkeley_now_100.cpp.o"
  "CMakeFiles/berkeley_now_100.dir/berkeley_now_100.cpp.o.d"
  "berkeley_now_100"
  "berkeley_now_100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/berkeley_now_100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
