# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gator_now "/root/repo/build/examples/gator_now")
set_tests_properties(example_gator_now PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_serverless_fs "/root/repo/build/examples/serverless_fs")
set_tests_properties(example_serverless_fs PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_of_workstations "/root/repo/build/examples/cluster_of_workstations")
set_tests_properties(example_cluster_of_workstations PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_netram_sort "/root/repo/build/examples/netram_sort")
set_tests_properties(example_netram_sort PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_berkeley_now_100 "/root/repo/build/examples/berkeley_now_100")
set_tests_properties(example_berkeley_now_100 PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tools "/root/repo/build/examples/trace_tools")
set_tests_properties(example_trace_tools PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
