file(REMOVE_RECURSE
  "libnow_core.a"
)
