# Empty compiler generated dependencies file for now_core.
# This may be replaced when dependencies are built.
