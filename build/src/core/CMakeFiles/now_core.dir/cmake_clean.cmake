file(REMOVE_RECURSE
  "CMakeFiles/now_core.dir/cluster.cpp.o"
  "CMakeFiles/now_core.dir/cluster.cpp.o.d"
  "libnow_core.a"
  "libnow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
