
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/am.cpp" "src/proto/CMakeFiles/now_proto.dir/am.cpp.o" "gcc" "src/proto/CMakeFiles/now_proto.dir/am.cpp.o.d"
  "/root/repo/src/proto/am_sockets.cpp" "src/proto/CMakeFiles/now_proto.dir/am_sockets.cpp.o" "gcc" "src/proto/CMakeFiles/now_proto.dir/am_sockets.cpp.o.d"
  "/root/repo/src/proto/costs.cpp" "src/proto/CMakeFiles/now_proto.dir/costs.cpp.o" "gcc" "src/proto/CMakeFiles/now_proto.dir/costs.cpp.o.d"
  "/root/repo/src/proto/nic_mux.cpp" "src/proto/CMakeFiles/now_proto.dir/nic_mux.cpp.o" "gcc" "src/proto/CMakeFiles/now_proto.dir/nic_mux.cpp.o.d"
  "/root/repo/src/proto/pvm.cpp" "src/proto/CMakeFiles/now_proto.dir/pvm.cpp.o" "gcc" "src/proto/CMakeFiles/now_proto.dir/pvm.cpp.o.d"
  "/root/repo/src/proto/rpc.cpp" "src/proto/CMakeFiles/now_proto.dir/rpc.cpp.o" "gcc" "src/proto/CMakeFiles/now_proto.dir/rpc.cpp.o.d"
  "/root/repo/src/proto/tcp.cpp" "src/proto/CMakeFiles/now_proto.dir/tcp.cpp.o" "gcc" "src/proto/CMakeFiles/now_proto.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/now_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/now_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/now_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
