file(REMOVE_RECURSE
  "libnow_proto.a"
)
