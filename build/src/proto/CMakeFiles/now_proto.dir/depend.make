# Empty dependencies file for now_proto.
# This may be replaced when dependencies are built.
