file(REMOVE_RECURSE
  "CMakeFiles/now_proto.dir/am.cpp.o"
  "CMakeFiles/now_proto.dir/am.cpp.o.d"
  "CMakeFiles/now_proto.dir/am_sockets.cpp.o"
  "CMakeFiles/now_proto.dir/am_sockets.cpp.o.d"
  "CMakeFiles/now_proto.dir/costs.cpp.o"
  "CMakeFiles/now_proto.dir/costs.cpp.o.d"
  "CMakeFiles/now_proto.dir/nic_mux.cpp.o"
  "CMakeFiles/now_proto.dir/nic_mux.cpp.o.d"
  "CMakeFiles/now_proto.dir/pvm.cpp.o"
  "CMakeFiles/now_proto.dir/pvm.cpp.o.d"
  "CMakeFiles/now_proto.dir/rpc.cpp.o"
  "CMakeFiles/now_proto.dir/rpc.cpp.o.d"
  "CMakeFiles/now_proto.dir/tcp.cpp.o"
  "CMakeFiles/now_proto.dir/tcp.cpp.o.d"
  "libnow_proto.a"
  "libnow_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
