file(REMOVE_RECURSE
  "CMakeFiles/now_xfs.dir/central_server.cpp.o"
  "CMakeFiles/now_xfs.dir/central_server.cpp.o.d"
  "CMakeFiles/now_xfs.dir/log.cpp.o"
  "CMakeFiles/now_xfs.dir/log.cpp.o.d"
  "CMakeFiles/now_xfs.dir/xfs.cpp.o"
  "CMakeFiles/now_xfs.dir/xfs.cpp.o.d"
  "libnow_xfs.a"
  "libnow_xfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_xfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
