# Empty dependencies file for now_xfs.
# This may be replaced when dependencies are built.
