file(REMOVE_RECURSE
  "libnow_xfs.a"
)
