# CMake generated Testfile for 
# Source directory: /root/repo/src/xfs
# Build directory: /root/repo/build/src/xfs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
