file(REMOVE_RECURSE
  "CMakeFiles/now_os.dir/cpu.cpp.o"
  "CMakeFiles/now_os.dir/cpu.cpp.o.d"
  "CMakeFiles/now_os.dir/disk.cpp.o"
  "CMakeFiles/now_os.dir/disk.cpp.o.d"
  "CMakeFiles/now_os.dir/node.cpp.o"
  "CMakeFiles/now_os.dir/node.cpp.o.d"
  "CMakeFiles/now_os.dir/vm.cpp.o"
  "CMakeFiles/now_os.dir/vm.cpp.o.d"
  "libnow_os.a"
  "libnow_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
