file(REMOVE_RECURSE
  "libnow_os.a"
)
