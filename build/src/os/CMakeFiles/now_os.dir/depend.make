# Empty dependencies file for now_os.
# This may be replaced when dependencies are built.
