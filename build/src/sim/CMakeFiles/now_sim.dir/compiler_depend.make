# Empty compiler generated dependencies file for now_sim.
# This may be replaced when dependencies are built.
