file(REMOVE_RECURSE
  "CMakeFiles/now_sim.dir/engine.cpp.o"
  "CMakeFiles/now_sim.dir/engine.cpp.o.d"
  "CMakeFiles/now_sim.dir/log.cpp.o"
  "CMakeFiles/now_sim.dir/log.cpp.o.d"
  "CMakeFiles/now_sim.dir/random.cpp.o"
  "CMakeFiles/now_sim.dir/random.cpp.o.d"
  "CMakeFiles/now_sim.dir/stats.cpp.o"
  "CMakeFiles/now_sim.dir/stats.cpp.o.d"
  "CMakeFiles/now_sim.dir/time.cpp.o"
  "CMakeFiles/now_sim.dir/time.cpp.o.d"
  "libnow_sim.a"
  "libnow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
