file(REMOVE_RECURSE
  "libnow_raid.a"
)
