file(REMOVE_RECURSE
  "CMakeFiles/now_raid.dir/raid.cpp.o"
  "CMakeFiles/now_raid.dir/raid.cpp.o.d"
  "CMakeFiles/now_raid.dir/stripe_groups.cpp.o"
  "CMakeFiles/now_raid.dir/stripe_groups.cpp.o.d"
  "libnow_raid.a"
  "libnow_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
