# Empty dependencies file for now_raid.
# This may be replaced when dependencies are built.
