file(REMOVE_RECURSE
  "CMakeFiles/now_coopcache.dir/coopcache.cpp.o"
  "CMakeFiles/now_coopcache.dir/coopcache.cpp.o.d"
  "libnow_coopcache.a"
  "libnow_coopcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_coopcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
