# Empty compiler generated dependencies file for now_coopcache.
# This may be replaced when dependencies are built.
