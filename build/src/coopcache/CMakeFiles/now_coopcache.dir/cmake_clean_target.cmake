file(REMOVE_RECURSE
  "libnow_coopcache.a"
)
